//! Failure injection: every layer must reject invalid input with a
//! descriptive error instead of miscompiling or panicking.

use mlb_core::{compile, full_registry, Flow, PipelineOptions};
use mlb_dialects::{arith, builtin, func, linalg};
use mlb_ir::{parse_module, AffineMap, Context, IteratorType, Type};
use mlb_isa::TCDM_BASE;
use mlb_sim::{assemble, Machine};

/// The verifier rejects a generic op whose map arity disagrees with its
/// iterator count (IR-level failure).
#[test]
fn verifier_rejects_malformed_generic() {
    let mut ctx = Context::new();
    let (module, top) = builtin::build_module(&mut ctx);
    let buf = Type::memref(vec![4], Type::F64);
    let (_f, entry) = func::build_func(&mut ctx, top, "bad", vec![buf.clone(), buf], vec![]);
    let x = ctx.block_args(entry)[0];
    let z = ctx.block_args(entry)[1];
    let g = linalg::build_generic(
        &mut ctx,
        entry,
        vec![x],
        vec![z],
        vec![AffineMap::identity(1), AffineMap::identity(1)],
        vec![IteratorType::Parallel],
        None,
        |ctx, body, args| vec![arith::binary(ctx, body, arith::ADDF, args[0], args[0])],
    );
    func::build_return(&mut ctx, entry, vec![]);
    assert!(full_registry().verify(&ctx, module).is_ok());
    // Corrupt: a 2-dim map against 1 iterator.
    ctx.op_mut(g.0).attrs.insert(
        "indexing_maps".into(),
        mlb_ir::Attribute::Array(vec![
            mlb_ir::Attribute::Map(AffineMap::identity(2)),
            mlb_ir::Attribute::Map(AffineMap::identity(1)),
        ]),
    );
    let err = full_registry().verify(&ctx, module).unwrap_err();
    assert!(err.to_string().contains("dims"), "{err}");
}

/// Non-integral float constants cannot be materialized without a
/// constant pool: the conversion pass reports it, the driver surfaces it.
#[test]
fn pipeline_rejects_non_integral_float_constants() {
    let mut ctx = Context::new();
    let (module, top) = builtin::build_module(&mut ctx);
    let buf = Type::memref(vec![4], Type::F64);
    let (_f, entry) = func::build_func(&mut ctx, top, "k", vec![buf.clone(), buf], vec![]);
    let x = ctx.block_args(entry)[0];
    let z = ctx.block_args(entry)[1];
    let c = arith::constant_float(&mut ctx, entry, 0.3, Type::F64);
    let id = AffineMap::identity(1);
    linalg::build_generic(
        &mut ctx,
        entry,
        vec![x],
        vec![z],
        vec![id.clone(), id],
        vec![IteratorType::Parallel],
        None,
        |ctx, body, args| vec![arith::binary(ctx, body, arith::MULF, args[0], c)],
    );
    func::build_return(&mut ctx, entry, vec![]);
    let err = compile(&mut ctx, module, Flow::Ours(PipelineOptions::full())).unwrap_err();
    assert_eq!(err.pass, "convert-to-rv");
    assert!(err.message.contains("integral"), "{err}");
}

/// The simulator faults cleanly on out-of-TCDM and misaligned accesses.
#[test]
fn simulator_faults_are_descriptive() {
    let program = assemble("f:\n    fld ft0, (a0)\n    ret\n").unwrap();
    let mut machine = Machine::new();
    let err = machine.call(&program, "f", &[0x10]).unwrap_err();
    assert!(err.to_string().contains("TCDM"), "{err}");

    let mut machine = Machine::new();
    let err = machine.call(&program, "f", &[TCDM_BASE + 4]).unwrap_err();
    assert!(err.to_string().contains("misaligned"), "{err}");
}

/// Calling an unknown symbol is an error, not a hang.
#[test]
fn unknown_entry_symbol() {
    let program = assemble("f:\n    ret\n").unwrap();
    let mut machine = Machine::new();
    let err = machine.call(&program, "nope", &[]).unwrap_err();
    assert!(err.to_string().contains("nope"), "{err}");
}

/// The assembler pinpoints bad lines; the parser pinpoints bad offsets.
#[test]
fn frontend_errors_carry_locations() {
    let err = assemble("f:\n    fld ft0, (a0)\n    frobnicate x1\n").unwrap_err();
    assert_eq!(err.line, 3);

    let mut ctx = Context::new();
    let err = parse_module(&mut ctx, "\"a.b\"() : () -> (\u{1F980})").unwrap_err();
    assert!(err.offset > 0);
}

/// A structured loop must not reach assembly emission: the emitter
/// refuses rather than printing garbage.
#[test]
fn emitter_rejects_unlowered_structures() {
    use mlb_riscv::{rv, rv_func, rv_scf};
    let mut ctx = Context::new();
    let module = ctx.create_detached_op(mlb_ir::OpSpec::new("builtin.module").regions(1));
    let top = ctx.create_block(ctx.op(module).regions[0], vec![]);
    let (_f, entry) = rv_func::build_func(&mut ctx, top, "k", &[]);
    let z = rv::li(&mut ctx, entry, 0);
    let n = rv::li(&mut ctx, entry, 4);
    ctx.set_value_type(z, Type::IntRegister(Some(mlb_isa::IntReg::t(0))));
    ctx.set_value_type(n, Type::IntRegister(Some(mlb_isa::IntReg::t(1))));
    rv_scf::build_for(&mut ctx, entry, z, n, z, vec![], |_, _, _, _| vec![]);
    rv_func::build_ret(&mut ctx, entry);
    let err = mlb_riscv::emit_module(&ctx, module).unwrap_err();
    assert!(err.to_string().contains("no assembly form"), "{err}");
}

/// Silences the panic hook for the deliberately-panicking `debug-panic`
/// service jobs (they run on uncaptured worker threads and would spam
/// the test output); every other panic still reports normally.
fn silence_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("panicked on purpose"));
            if !injected {
                default(info);
            }
        }));
    });
}

/// A failing job in a service batch fails alone: panics, validation
/// errors and harness errors are reported in that job's response, the
/// surrounding jobs succeed, and the worker pool keeps serving.
#[test]
fn service_isolates_failing_jobs() {
    silence_injected_panics();
    use mlb_kernels::{Instance, Kind, Precision, Shape};
    use mlbe::service::{CompileService, JobKind, JobRequest, ServiceConfig};

    let good = JobRequest {
        id: 0,
        kind: JobKind::Simulate,
        instance: Instance::new(Kind::Sum, Shape::nm(3, 4), Precision::F64),
        flow: Flow::Ours(PipelineOptions::full()),
        driver: mlb_ir::DriverMode::Worklist,
        seed: 1,
    };
    // Three distinct failure modes: a worker panic, a validation error,
    // and a harness error (operands far beyond the TCDM).
    let panicking = JobRequest { id: 1, kind: JobKind::DebugPanic, ..good };
    let invalid = JobRequest {
        id: 2,
        flow: Flow::Ours(PipelineOptions { cores: 0, ..PipelineOptions::full() }),
        ..good
    };
    let oversized = JobRequest {
        id: 3,
        instance: Instance::new(Kind::Sum, Shape::nm(1000, 1000), Precision::F64),
        ..good
    };

    let service =
        CompileService::new(ServiceConfig { workers: 2, cache_capacity: 32, telemetry: true });
    let batch = [good, panicking, invalid, oversized, JobRequest { id: 4, seed: 2, ..good }];
    let responses = service.run_batch(&batch);

    assert!(responses[0].payload.is_ok(), "{:?}", responses[0].payload);
    assert!(responses[4].payload.is_ok(), "{:?}", responses[4].payload);
    let panic_err = responses[1].payload.as_ref().unwrap_err();
    assert!(panic_err.contains("panic"), "{panic_err}");
    assert!(panic_err.contains("on purpose"), "{panic_err}");
    let invalid_err = responses[2].payload.as_ref().unwrap_err();
    assert!(invalid_err.contains("cores"), "{invalid_err}");
    let oversized_err = responses[3].payload.as_ref().unwrap_err();
    assert!(oversized_err.contains("TCDM"), "{oversized_err}");

    // The pool survived the panic: a fresh batch on the same service
    // still completes, and the good job now comes from the cache.
    let again = service.run_batch(&batch);
    assert!(again[0].cached, "succeeded job must be memoized");
    assert!(again[0].payload.is_ok());
    assert!(again[1].payload.is_err());
}

/// Failures are never inserted into the result cache: resubmitting a
/// failing job recomputes it (no cached error), and the cache's
/// insertion count only moves for successes.
#[test]
fn failed_jobs_never_poison_the_cache() {
    use mlb_kernels::{Instance, Kind, Precision, Shape};
    use mlbe::service::{CompileService, JobKind, JobRequest, ServiceConfig};

    silence_injected_panics();

    let service =
        CompileService::new(ServiceConfig { workers: 1, cache_capacity: 32, telemetry: true });
    let failing = JobRequest {
        id: 7,
        kind: JobKind::Simulate,
        instance: Instance::new(Kind::Relu, Shape::nm(900, 900), Precision::F64),
        flow: Flow::Ours(PipelineOptions::full()),
        driver: mlb_ir::DriverMode::Worklist,
        seed: 0,
    };
    let first = service.run_one(failing);
    let second = service.run_one(failing);
    assert!(first.payload.is_err() && second.payload.is_err());
    assert!(!first.cached && !second.cached, "errors must never be served from cache");
    let (_, _, results) = service.cache_stats();
    assert_eq!(results.insertions, 0, "a failed job must not populate the result cache");

    // A panicking job poisons nothing either: the same service still
    // caches and serves a subsequent success normally.
    let panicking = JobRequest { id: 8, kind: JobKind::DebugPanic, ..failing };
    assert!(service.run_one(panicking).payload.is_err());
    let good = JobRequest {
        id: 9,
        instance: Instance::new(Kind::Relu, Shape::nm(3, 4), Precision::F64),
        ..failing
    };
    assert!(service.run_one(good).payload.is_ok());
    assert!(service.run_one(good).cached);
    let (_, _, results) = service.cache_stats();
    assert_eq!(results.insertions, 1);
}

/// Panics racing against healthy jobs on a multi-worker pool corrupt
/// nothing: the healthy payloads match a panic-free reference service.
#[test]
fn panics_do_not_corrupt_concurrent_results() {
    use mlb_kernels::{Instance, Kind, Precision, Shape};
    use mlbe::service::{CompileService, JobKind, JobRequest, ServiceConfig};

    silence_injected_panics();

    let template = JobRequest {
        id: 0,
        kind: JobKind::Compile,
        instance: Instance::new(Kind::MatMul, Shape::nmk(2, 4, 3), Precision::F64),
        flow: Flow::Ours(PipelineOptions::full()),
        driver: mlb_ir::DriverMode::Worklist,
        seed: 0,
    };
    let mut batch = Vec::new();
    for i in 0..16u64 {
        let kind = if i % 3 == 1 { JobKind::DebugPanic } else { JobKind::Compile };
        batch.push(JobRequest { id: i, kind, seed: i / 3, ..template });
    }
    let noisy =
        CompileService::new(ServiceConfig { workers: 4, cache_capacity: 32, telemetry: true });
    let quiet =
        CompileService::new(ServiceConfig { workers: 1, cache_capacity: 32, telemetry: true });
    let noisy_responses = noisy.run_batch(&batch);
    for (request, response) in batch.iter().zip(&noisy_responses) {
        if request.kind == JobKind::DebugPanic {
            assert!(response.payload.is_err());
        } else {
            let reference = quiet.run_one(*request);
            assert_eq!(
                response.payload_text(),
                reference.payload_text(),
                "job {} diverged from the panic-free reference",
                request.id
            );
        }
    }
}

/// Register exhaustion surfaces as a named pass failure through the
/// public driver (with the flow's fallback where one exists).
#[test]
fn register_exhaustion_is_reported_by_pass_name() {
    use mlb_riscv::{rv, rv_func};
    let mut ctx = Context::new();
    let module = ctx.create_detached_op(mlb_ir::OpSpec::new("builtin.module").regions(1));
    let top = ctx.create_block(ctx.op(module).regions[0], vec![]);
    let (func, entry) = rv_func::build_func(&mut ctx, top, "k", &[rv_func::AbiArg::Int]);
    let base = ctx.block_args(entry)[0];
    let vs: Vec<_> = (0..25).map(|i| rv::fp_load(&mut ctx, entry, rv::FLD, base, i * 8)).collect();
    for &v in &vs {
        let _ = rv::fp_binary(&mut ctx, entry, rv::FADD_D, v, v);
    }
    rv_func::build_ret(&mut ctx, entry);
    let err = mlb_core::allocate_function(&mut ctx, func).unwrap_err();
    assert!(err.to_string().contains("spilling would be required"));
}
