//! Failure injection: every layer must reject invalid input with a
//! descriptive error instead of miscompiling or panicking.

use mlb_core::{compile, full_registry, Flow, PipelineOptions};
use mlb_dialects::{arith, builtin, func, linalg};
use mlb_ir::{parse_module, AffineMap, Context, IteratorType, Type};
use mlb_isa::TCDM_BASE;
use mlb_sim::{assemble, Machine};

/// The verifier rejects a generic op whose map arity disagrees with its
/// iterator count (IR-level failure).
#[test]
fn verifier_rejects_malformed_generic() {
    let mut ctx = Context::new();
    let (module, top) = builtin::build_module(&mut ctx);
    let buf = Type::memref(vec![4], Type::F64);
    let (_f, entry) = func::build_func(&mut ctx, top, "bad", vec![buf.clone(), buf], vec![]);
    let x = ctx.block_args(entry)[0];
    let z = ctx.block_args(entry)[1];
    let g = linalg::build_generic(
        &mut ctx,
        entry,
        vec![x],
        vec![z],
        vec![AffineMap::identity(1), AffineMap::identity(1)],
        vec![IteratorType::Parallel],
        None,
        |ctx, body, args| vec![arith::binary(ctx, body, arith::ADDF, args[0], args[0])],
    );
    func::build_return(&mut ctx, entry, vec![]);
    assert!(full_registry().verify(&ctx, module).is_ok());
    // Corrupt: a 2-dim map against 1 iterator.
    ctx.op_mut(g.0).attrs.insert(
        "indexing_maps".into(),
        mlb_ir::Attribute::Array(vec![
            mlb_ir::Attribute::Map(AffineMap::identity(2)),
            mlb_ir::Attribute::Map(AffineMap::identity(1)),
        ]),
    );
    let err = full_registry().verify(&ctx, module).unwrap_err();
    assert!(err.to_string().contains("dims"), "{err}");
}

/// Non-integral float constants cannot be materialized without a
/// constant pool: the conversion pass reports it, the driver surfaces it.
#[test]
fn pipeline_rejects_non_integral_float_constants() {
    let mut ctx = Context::new();
    let (module, top) = builtin::build_module(&mut ctx);
    let buf = Type::memref(vec![4], Type::F64);
    let (_f, entry) = func::build_func(&mut ctx, top, "k", vec![buf.clone(), buf], vec![]);
    let x = ctx.block_args(entry)[0];
    let z = ctx.block_args(entry)[1];
    let c = arith::constant_float(&mut ctx, entry, 0.3, Type::F64);
    let id = AffineMap::identity(1);
    linalg::build_generic(
        &mut ctx,
        entry,
        vec![x],
        vec![z],
        vec![id.clone(), id],
        vec![IteratorType::Parallel],
        None,
        |ctx, body, args| vec![arith::binary(ctx, body, arith::MULF, args[0], c)],
    );
    func::build_return(&mut ctx, entry, vec![]);
    let err = compile(&mut ctx, module, Flow::Ours(PipelineOptions::full())).unwrap_err();
    assert_eq!(err.pass, "convert-to-rv");
    assert!(err.message.contains("integral"), "{err}");
}

/// The simulator faults cleanly on out-of-TCDM and misaligned accesses.
#[test]
fn simulator_faults_are_descriptive() {
    let program = assemble("f:\n    fld ft0, (a0)\n    ret\n").unwrap();
    let mut machine = Machine::new();
    let err = machine.call(&program, "f", &[0x10]).unwrap_err();
    assert!(err.to_string().contains("TCDM"), "{err}");

    let mut machine = Machine::new();
    let err = machine.call(&program, "f", &[TCDM_BASE + 4]).unwrap_err();
    assert!(err.to_string().contains("misaligned"), "{err}");
}

/// Calling an unknown symbol is an error, not a hang.
#[test]
fn unknown_entry_symbol() {
    let program = assemble("f:\n    ret\n").unwrap();
    let mut machine = Machine::new();
    let err = machine.call(&program, "nope", &[]).unwrap_err();
    assert!(err.to_string().contains("nope"), "{err}");
}

/// The assembler pinpoints bad lines; the parser pinpoints bad offsets.
#[test]
fn frontend_errors_carry_locations() {
    let err = assemble("f:\n    fld ft0, (a0)\n    frobnicate x1\n").unwrap_err();
    assert_eq!(err.line, 3);

    let mut ctx = Context::new();
    let err = parse_module(&mut ctx, "\"a.b\"() : () -> (\u{1F980})").unwrap_err();
    assert!(err.offset > 0);
}

/// A structured loop must not reach assembly emission: the emitter
/// refuses rather than printing garbage.
#[test]
fn emitter_rejects_unlowered_structures() {
    use mlb_riscv::{rv, rv_func, rv_scf};
    let mut ctx = Context::new();
    let module = ctx.create_detached_op(mlb_ir::OpSpec::new("builtin.module").regions(1));
    let top = ctx.create_block(ctx.op(module).regions[0], vec![]);
    let (_f, entry) = rv_func::build_func(&mut ctx, top, "k", &[]);
    let z = rv::li(&mut ctx, entry, 0);
    let n = rv::li(&mut ctx, entry, 4);
    ctx.set_value_type(z, Type::IntRegister(Some(mlb_isa::IntReg::t(0))));
    ctx.set_value_type(n, Type::IntRegister(Some(mlb_isa::IntReg::t(1))));
    rv_scf::build_for(&mut ctx, entry, z, n, z, vec![], |_, _, _, _| vec![]);
    rv_func::build_ret(&mut ctx, entry);
    let err = mlb_riscv::emit_module(&ctx, module).unwrap_err();
    assert!(err.to_string().contains("no assembly form"), "{err}");
}

/// Register exhaustion surfaces as a named pass failure through the
/// public driver (with the flow's fallback where one exists).
#[test]
fn register_exhaustion_is_reported_by_pass_name() {
    use mlb_riscv::{rv, rv_func};
    let mut ctx = Context::new();
    let module = ctx.create_detached_op(mlb_ir::OpSpec::new("builtin.module").regions(1));
    let top = ctx.create_block(ctx.op(module).regions[0], vec![]);
    let (func, entry) = rv_func::build_func(&mut ctx, top, "k", &[rv_func::AbiArg::Int]);
    let base = ctx.block_args(entry)[0];
    let vs: Vec<_> = (0..25).map(|i| rv::fp_load(&mut ctx, entry, rv::FLD, base, i * 8)).collect();
    for &v in &vs {
        let _ = rv::fp_binary(&mut ctx, entry, rv::FADD_D, v, v);
    }
    rv_func::build_ret(&mut ctx, entry);
    let err = mlb_core::allocate_function(&mut ctx, func).unwrap_err();
    assert!(err.to_string().contains("spilling would be required"));
}
