//! Structural expectations at every stage of the progressive lowering
//! (Figure 5): each abstraction appears when it should and disappears
//! when consumed.

use mlb_core::passes::{
    canonicalize::Canonicalize, convert_linalg::ConvertLinalgToMemrefStream,
    convert_to_rv::ConvertToRv, dce::DeadCodeElimination, fuse_fill::MemrefStreamFuseFill,
    lower_streaming::LowerSnitchStream, lower_to_loops::ConvertMemrefStreamToLoops,
    peephole::RvPeephole, rv_scf_to_cf::RvScfToCf, rv_scf_to_frep::RvScfToFrep,
    scalar_replacement::MemrefStreamScalarReplacement, unroll_and_jam::MemrefStreamUnrollAndJam,
};
use mlb_core::{full_registry, regalloc};
use mlb_ir::{Context, Pass};
use mlb_kernels::{Instance, Kind, Precision, Shape};

#[test]
fn matmul_ir_structure_at_every_stage() {
    let instance = Instance::new(Kind::MatMul, Shape::nmk(1, 5, 40), Precision::F64);
    let mut ctx = Context::new();
    let module = instance.build_module(&mut ctx);
    let registry = full_registry();

    // Stage 0: linalg input — a fill plus a generic.
    assert_eq!(ctx.walk_named(module, "linalg.fill").len(), 1);
    assert_eq!(ctx.walk_named(module, "linalg.generic").len(), 1);

    ConvertLinalgToMemrefStream.run(&mut ctx, &registry, module).unwrap();
    registry.verify(&ctx, module).unwrap();
    assert!(ctx.walk_named(module, "linalg.generic").is_empty());
    assert_eq!(ctx.walk_named(module, "memref_stream.generic").len(), 2);

    MemrefStreamFuseFill.run(&mut ctx, &registry, module).unwrap();
    // The fill generic fused into the matmul generic.
    assert_eq!(ctx.walk_named(module, "memref_stream.generic").len(), 1);

    MemrefStreamScalarReplacement.run(&mut ctx, &registry, module).unwrap();
    MemrefStreamUnrollAndJam::default().run(&mut ctx, &registry, module).unwrap();
    registry.verify(&ctx, module).unwrap();
    let g = ctx.walk_named(module, "memref_stream.generic")[0];
    let s = mlb_dialects::memref_stream::StreamGenericOp(g);
    // Fully-interleaved N: bounds [1, 40, 5] as in Figure 7.
    assert_eq!(s.bounds(&ctx), vec![1, 40, 5]);
    assert_eq!(s.interleave_factor(&ctx), 5);
    assert_eq!(s.num_inits(&ctx), 1);

    ConvertMemrefStreamToLoops { streams: true }.run(&mut ctx, &registry, module).unwrap();
    Canonicalize.run(&mut ctx, &registry, module).unwrap();
    registry.verify(&ctx, module).unwrap();
    assert!(ctx.walk_named(module, "memref_stream.generic").is_empty());
    assert_eq!(
        ctx.walk_named(module, "memref_stream.streaming_region").len(),
        1,
        "one streaming region wrapping the computation"
    );
    // The single-iteration M loop was canonicalized away: only the
    // reduction loop remains.
    assert_eq!(ctx.walk_named(module, "scf.for").len(), 1);
    // Reads: 2 streams x 5 interleaved copies.
    assert_eq!(ctx.walk_named(module, "memref_stream.read").len(), 10);
    assert_eq!(ctx.walk_named(module, "memref_stream.write").len(), 5);

    ConvertToRv::default().run(&mut ctx, &registry, module).unwrap();
    RvPeephole.run(&mut ctx, &registry, module).unwrap();
    registry.verify(&ctx, module).unwrap();
    assert!(ctx.walk_named(module, "scf.for").is_empty());
    assert_eq!(ctx.walk_named(module, "rv_scf.for").len(), 1);
    assert_eq!(ctx.walk_named(module, "snitch_stream.streaming_region").len(), 1);
    // The multiply-adds fused: five per body.
    assert_eq!(ctx.walk_named(module, "rv.fmadd.d").len(), 5);
    assert!(ctx.walk_named(module, "rv.fmul.d").is_empty());

    RvScfToFrep.run(&mut ctx, &registry, module).unwrap();
    registry.verify(&ctx, module).unwrap();
    assert!(ctx.walk_named(module, "rv_scf.for").is_empty());
    assert_eq!(ctx.walk_named(module, "rv_snitch.frep_outer").len(), 1);

    LowerSnitchStream.run(&mut ctx, &registry, module).unwrap();
    DeadCodeElimination.run(&mut ctx, &registry, module).unwrap();
    registry.verify(&ctx, module).unwrap();
    assert!(ctx.walk_named(module, "snitch_stream.streaming_region").is_empty());
    assert!(!ctx.walk_named(module, "rv_snitch.scfgwi").is_empty());
    assert_eq!(ctx.walk_named(module, "rv_snitch.ssr_enable").len(), 1);
    assert_eq!(ctx.walk_named(module, "rv_snitch.ssr_disable").len(), 1);

    for func in ctx.walk_named(module, "rv_func.func") {
        let stats = regalloc::allocate_function(&mut ctx, func).unwrap();
        assert!(stats.num_fp() <= 20 && stats.num_int() <= 15);
    }
    registry.verify(&ctx, module).unwrap();

    RvScfToCf.run(&mut ctx, &registry, module).unwrap();
    registry.verify(&ctx, module).unwrap();
    let asm = mlb_riscv::emit_module(&ctx, module).unwrap();
    assert!(asm.contains("frep.o"));
    assert!(asm.contains("fmadd.d"));
    assert!(!asm.contains("fld"), "all data must flow through streams:\n{asm}");
}

#[test]
fn streaming_region_placement_depth_for_conv() {
    // Conv's 5-dimensional access cannot fit the 4 SSR dimensions at the
    // top level: the region must sit inside the outermost (row) loop.
    let instance = Instance::new(Kind::Conv3x3, Shape::nm(8, 8), Precision::F64);
    let mut ctx = Context::new();
    let module = instance.build_module(&mut ctx);
    let registry = full_registry();
    ConvertLinalgToMemrefStream.run(&mut ctx, &registry, module).unwrap();
    MemrefStreamFuseFill.run(&mut ctx, &registry, module).unwrap();
    MemrefStreamScalarReplacement.run(&mut ctx, &registry, module).unwrap();
    MemrefStreamUnrollAndJam::default().run(&mut ctx, &registry, module).unwrap();
    ConvertMemrefStreamToLoops { streams: true }.run(&mut ctx, &registry, module).unwrap();
    registry.verify(&ctx, module).unwrap();

    let regions = ctx.walk_named(module, "memref_stream.streaming_region");
    // The fill fused into the convolution, so a single region remains.
    assert_eq!(regions.len(), 1, "fused fill leaves one region");
    // The conv streaming region is nested inside an scf.for (the row
    // loop), and carries offset operands for the row-dependent bases.
    let conv_region = regions[0];
    let parent = ctx.parent_op(conv_region).unwrap();
    assert_eq!(ctx.op(parent).name, "scf.for");
    let r = mlb_dialects::memref_stream::StreamingRegionOp(conv_region);
    assert!(r.offsets(&ctx).is_some(), "row offset operands expected");
    assert_eq!(r.num_streams(&ctx), 3); // image in, weights in, out
}
