//! The paper's headline quantitative claims, as regression tests.
//!
//! These assert the *shape* of each result (who wins, instruction-mix
//! counts, monotonicity), not RTL-exact cycle numbers — see
//! EXPERIMENTS.md for the rationale.

use mlb_core::{Flow, PipelineOptions};
use mlb_kernels::{compile_and_run, run_handwritten, Instance, Kind, Precision, Shape};

fn full() -> Flow {
    Flow::Ours(PipelineOptions::full())
}

/// Table 3: the instruction-mix trajectory matches the paper exactly.
#[test]
fn table3_instruction_mix_matches_paper_exactly() {
    let instance = Instance::new(Kind::MatMul, Shape::nmk(1, 5, 200), Precision::F64);
    let ladder = PipelineOptions::ablation_ladder();
    // (loads, stores, fmadd, static frep) per rung, from the paper.
    let expected = [
        (3000, 1005, 1000, 0),
        (1000, 1000, 1000, 0),
        (5, 5, 1000, 0),
        (5, 5, 1000, 2),
        (0, 0, 1000, 1),
        (0, 0, 1000, 1),
    ];
    let mut occupancies = Vec::new();
    for ((label, opts), (loads, stores, fmadd, frep)) in ladder.into_iter().zip(expected) {
        let outcome = compile_and_run(&instance, Flow::Ours(opts), 3).unwrap();
        let c = &outcome.counters;
        assert_eq!(c.loads(), loads, "loads at rung `{label}`");
        assert_eq!(c.stores(), stores, "stores at rung `{label}`");
        assert_eq!(c.fmadd, fmadd, "fmadd at rung `{label}`");
        let static_frep = outcome.compilation.assembly.matches("frep.o").count();
        assert_eq!(static_frep, frep, "frep at rung `{label}`");
        occupancies.push(c.fpu_utilization());
    }
    // Occupancy rises from a few percent to >90% (paper: 2.49 -> 90.67).
    assert!(occupancies[0] < 0.10, "baseline occupancy {}", occupancies[0]);
    assert!(occupancies[5] > 0.90, "full-pipeline occupancy {}", occupancies[5]);
    // The full pipeline is more than an order of magnitude faster.
    let base = compile_and_run(&instance, Flow::Ours(PipelineOptions::baseline()), 3).unwrap();
    let fast = compile_and_run(&instance, full(), 3).unwrap();
    assert!(base.counters.cycles > 10 * fast.counters.cycles);
}

/// Figure 9: hand-written Sum/ReLU exceed 90% utilization and their
/// cycle overhead is constant across sizes.
#[test]
fn figure9_handwritten_overhead_is_size_independent() {
    for kind in [Kind::Sum, Kind::Relu] {
        let mut overheads = Vec::new();
        for m in [32, 64, 128] {
            let instance = Instance::new(kind, Shape::nm(8, m), Precision::F32);
            let outcome = run_handwritten(&instance, 5).unwrap();
            assert!(
                outcome.utilization() > 0.90,
                "{instance} utilization {}",
                outcome.utilization()
            );
            overheads.push(outcome.counters.cycles - instance.min_cycles());
        }
        assert!(
            overheads.windows(2).all(|w| w[0] == w[1]),
            "{kind} overheads not constant: {overheads:?}"
        );
    }
}

/// Figure 9: MatMulT sustains packed throughput near 2 FLOPs/cycle or
/// better (the paper reports 2.45 on its shapes) while Sum/ReLU sit at
/// the packed streaming limit of ~2.
#[test]
fn figure9_matmult_packed_throughput() {
    let instance = Instance::new(Kind::MatMulT, Shape::nmk(4, 16, 64), Precision::F32);
    let outcome = run_handwritten(&instance, 5).unwrap();
    assert!(outcome.counters.throughput() > 2.4, "throughput {}", outcome.counters.throughput());
}

/// Figure 10: the multi-level flow dominates both comparison flows on
/// every kernel, and parallel kernels approach peak as width grows.
#[test]
fn figure10_ordering_and_scaling() {
    for kind in [Kind::Sum, Kind::Relu, Kind::Conv3x3, Kind::MaxPool3x3] {
        let instance = Instance::new(kind, Shape::nm(4, 16), Precision::F64);
        let ours = compile_and_run(&instance, full(), 9).unwrap().utilization();
        let mlir = compile_and_run(&instance, Flow::MlirLike, 9).unwrap().utilization();
        let clang = compile_and_run(&instance, Flow::ClangLike, 9).unwrap().utilization();
        assert!(ours > 3.0 * mlir.max(clang), "{kind}: ours {ours} vs mlir {mlir} / clang {clang}");
    }
    // Monotone scaling toward peak for a parallel kernel.
    let mut last = 0.0;
    for m in [8, 16, 32, 64] {
        let instance = Instance::new(Kind::Sum, Shape::nm(4, m), Precision::F64);
        let util = compile_and_run(&instance, full(), 9).unwrap().utilization();
        assert!(util >= last, "utilization must not drop with size");
        last = util;
    }
    assert!(last > 0.95, "Sum at width 64: {last}");
}

/// Figure 11: >= 90% of peak for large shapes; small shapes stay below
/// 80% because setup dominates; throughput is monotone in both dims.
#[test]
fn figure11_throughput_regimes() {
    let t = |n: i64, k: i64| {
        let instance = Instance::new(Kind::MatMul, Shape::nmk(1, n, k), Precision::F64);
        compile_and_run(&instance, full(), 11).unwrap().counters.throughput()
    };
    assert!(t(16, 128) >= 1.80, "large shape: {}", t(16, 128));
    assert!(t(2, 8) < 1.60, "small shape: {}", t(2, 8));
    assert!(t(4, 64) > t(4, 16));
    assert!(t(16, 64) > t(4, 64) * 0.95);
}

/// Table 2: the whole suite allocates spill-free within the pools, with
/// several registers spare (compilation fails loudly otherwise, so
/// success *is* the claim; we additionally check the margins).
#[test]
fn table2_registers_within_pools_with_margin() {
    for kind in Kind::all() {
        if kind == Kind::MatMulT {
            continue; // covered by the handwritten variant below
        }
        let shape = match kind {
            Kind::MatMul => Shape::nmk(4, 16, 8),
            _ => Shape::nm(4, 4),
        };
        let instance = Instance::new(kind, shape, Precision::F64);
        let outcome = compile_and_run(&instance, full(), 13).unwrap();
        let (_, stats) = &outcome.compilation.functions[0];
        assert!(stats.num_fp() <= 10, "{kind}: {:?}", stats.fp_used);
        assert!(stats.num_int() <= 10, "{kind}: {:?}", stats.int_used);
    }
    let mmt = Instance::new(Kind::MatMulT, Shape::nmk(4, 16, 16), Precision::F32);
    let outcome = run_handwritten(&mmt, 13).unwrap();
    let (_, stats) = &outcome.compilation.functions[0];
    assert!(stats.num_fp() <= 12 && stats.num_int() <= 13);
}

/// Headline: up to 90% FPU utilization from a high-level DSL (abstract),
/// and 95% for hand-written kernels (Section 4 intro).
#[test]
fn headline_utilizations() {
    let sum = Instance::new(Kind::Sum, Shape::nm(8, 64), Precision::F64);
    assert!(compile_and_run(&sum, full(), 17).unwrap().utilization() > 0.90);
    let hw = Instance::new(Kind::Sum, Shape::nm(8, 64), Precision::F32);
    assert!(run_handwritten(&hw, 17).unwrap().utilization() > 0.95);
}
