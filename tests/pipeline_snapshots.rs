//! Golden snapshots of the IR after every stage of the full pipeline
//! (Figure 5) on a small matmul.
//!
//! Each stage's printed IR is pinned under `tests/snapshots/`; an
//! unintended change to any pass, the printer, or pass ordering shows
//! up as a readable diff. Regenerate intentionally with:
//!
//! ```sh
//! UPDATE_SNAPSHOTS=1 cargo test --test pipeline_snapshots
//! ```
//!
//! Every snapshot is additionally re-parsed, re-verified and re-printed
//! to pin the printer/parser round-trip at each abstraction level.

use std::fmt::Write as _;
use std::path::PathBuf;

use mlb_core::{compile_with_observer, full_registry, Flow, PipelineOptions};
use mlb_ir::{parse_module, print_op, Context, IrSnapshotMode, PipelineRecorder};
use mlb_kernels::{Instance, Kind, Precision, Shape};

fn snapshot_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("snapshots")
}

/// Compiles the reference matmul, recording the IR after every pass.
fn record_stages() -> Vec<(String, String)> {
    let instance = Instance::new(Kind::MatMul, Shape::nmk(1, 4, 8), Precision::F64);
    let mut ctx = Context::new();
    let module = instance.build_module(&mut ctx);
    let mut recorder = PipelineRecorder::new(IrSnapshotMode::All);
    compile_with_observer(&mut ctx, module, Flow::Ours(PipelineOptions::full()), &mut recorder)
        .expect("matmul compiles");
    recorder
        .events
        .iter()
        .enumerate()
        .map(|(n, event)| {
            // `event.index` restarts for the tail pipeline; number the
            // snapshots by overall position instead.
            let name = format!("{n:02}-{}.mlir", event.pass);
            let ir = event.ir_after.clone().expect("snapshot mode All records every pass");
            (name, ir)
        })
        .collect()
}

#[test]
fn pipeline_stages_match_golden_snapshots() {
    let dir = snapshot_dir();
    let stages = record_stages();
    assert!(stages.len() >= 6, "expected a multi-stage pipeline, got {}", stages.len());

    if std::env::var("UPDATE_SNAPSHOTS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(&dir).unwrap();
        // Drop snapshots of removed/renamed passes.
        for entry in std::fs::read_dir(&dir).unwrap() {
            std::fs::remove_file(entry.unwrap().path()).unwrap();
        }
        for (name, ir) in &stages {
            std::fs::write(dir.join(name), ir).unwrap();
        }
        return;
    }

    let mut report = String::new();
    for (name, ir) in &stages {
        let path = dir.join(name);
        match std::fs::read_to_string(&path) {
            Ok(golden) if golden == *ir => {}
            Ok(golden) => {
                let _ = writeln!(report, "stage {name} drifted from its snapshot:");
                for (g, n) in golden.lines().zip(ir.lines()) {
                    if g != n {
                        let _ = writeln!(report, "  - {g}\n  + {n}");
                    }
                }
                let (gl, nl) = (golden.lines().count(), ir.lines().count());
                if gl != nl {
                    let _ = writeln!(report, "  ({gl} golden lines vs {nl} new lines)");
                }
            }
            Err(_) => {
                let _ = writeln!(report, "missing snapshot {name}");
            }
        }
    }
    // Snapshots of passes that no longer exist are also drift.
    for entry in std::fs::read_dir(&dir).expect("snapshot dir exists") {
        let file = entry.unwrap().file_name().to_string_lossy().into_owned();
        if !stages.iter().any(|(name, _)| *name == file) {
            let _ = writeln!(report, "stale snapshot {file} (pass removed or renamed?)");
        }
    }
    assert!(
        report.is_empty(),
        "{report}\nrun `UPDATE_SNAPSHOTS=1 cargo test --test pipeline_snapshots` \
         if the change is intentional"
    );
}

/// Every pinned stage must survive a print -> parse -> verify -> print
/// round trip: the textual form is a faithful serialization at every
/// abstraction level of the pipeline.
#[test]
fn every_stage_round_trips_through_the_parser() {
    let registry = full_registry();
    for (name, ir) in record_stages() {
        let mut ctx = Context::new();
        let module =
            parse_module(&mut ctx, &ir).unwrap_or_else(|e| panic!("stage {name} reparses: {e}"));
        registry.verify(&ctx, module).unwrap_or_else(|e| panic!("stage {name} re-verifies: {e}"));
        let reprinted = print_op(&ctx, module);
        assert_eq!(reprinted, ir, "stage {name}: print/parse round trip is not a fixpoint");
    }
}
