//! Property tests for the IR infrastructure: the generic textual form
//! round-trips (print → parse → print is a fixpoint), and structural
//! invariants survive random construction.

use mlb_ir::{parse_module, print_op, Attribute, Context, OpSpec, Type};
use proptest::prelude::*;

/// A recipe for one random straight-line operation.
#[derive(Debug, Clone)]
struct OpRecipe {
    /// Selects among a few op shapes.
    shape: u8,
    /// Operand picks (indices into already-defined values, modulo).
    picks: [usize; 3],
    /// An integer attribute payload.
    payload: i64,
}

fn recipe() -> impl Strategy<Value = OpRecipe> {
    (0u8..5, [any::<usize>(), any::<usize>(), any::<usize>()], -1000i64..1000)
        .prop_map(|(shape, picks, payload)| OpRecipe { shape, picks, payload })
}

/// Builds a random (but valid) module from recipes.
fn build_module(recipes: &[OpRecipe]) -> (Context, mlb_ir::OpId) {
    let mut ctx = Context::new();
    let module = ctx.create_detached_op(OpSpec::new("builtin.module").regions(1));
    let top = ctx.create_block(ctx.op(module).regions[0], vec![]);
    let func = ctx.append_op(
        top,
        OpSpec::new("func.func").attr("sym_name", Attribute::Symbol("random".into())).regions(1),
    );
    let entry = ctx.create_block(ctx.op(func).regions[0], vec![Type::F64, Type::Index, Type::F32]);
    let mut f64s: Vec<mlb_ir::ValueId> = vec![ctx.block_args(entry)[0]];
    let mut idxs: Vec<mlb_ir::ValueId> = vec![ctx.block_args(entry)[1]];
    for r in recipes {
        match r.shape {
            0 => {
                let op = ctx.append_op(
                    entry,
                    OpSpec::new("arith.constant")
                        .attr("value", Attribute::Float(r.payload as f64))
                        .results(vec![Type::F64]),
                );
                f64s.push(ctx.op(op).results[0]);
            }
            1 => {
                let a = f64s[r.picks[0] % f64s.len()];
                let b = f64s[r.picks[1] % f64s.len()];
                let op = ctx.append_op(
                    entry,
                    OpSpec::new("arith.addf").operands(vec![a, b]).results(vec![Type::F64]),
                );
                f64s.push(ctx.op(op).results[0]);
            }
            2 => {
                let a = idxs[r.picks[0] % idxs.len()];
                let b = idxs[r.picks[1] % idxs.len()];
                let op = ctx.append_op(
                    entry,
                    OpSpec::new("arith.muli")
                        .operands(vec![a, b])
                        .attr("tag", Attribute::Int(r.payload))
                        .results(vec![Type::Index]),
                );
                idxs.push(ctx.op(op).results[0]);
            }
            3 => {
                let op = ctx.append_op(
                    entry,
                    OpSpec::new("arith.constant")
                        .attr("value", Attribute::Int(r.payload))
                        .results(vec![Type::Index]),
                );
                idxs.push(ctx.op(op).results[0]);
            }
            _ => {
                let a = f64s[r.picks[0] % f64s.len()];
                ctx.append_op(
                    entry,
                    OpSpec::new("test.sink")
                        .operands(vec![a])
                        .attr("label", Attribute::Str(format!("s{}", r.payload))),
                );
            }
        }
    }
    ctx.append_op(entry, OpSpec::new("func.return"));
    (ctx, module)
}

proptest! {
    /// print → parse → print is a fixpoint, and parsing preserves the
    /// operation count and structure.
    #[test]
    fn print_parse_roundtrip(recipes in prop::collection::vec(recipe(), 0..40)) {
        let (ctx, module) = build_module(&recipes);
        let once = print_op(&ctx, module);

        let mut ctx2 = Context::new();
        let reparsed = parse_module(&mut ctx2, &once)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{once}"));
        let twice = print_op(&ctx2, reparsed);
        prop_assert_eq!(&once, &twice);

        prop_assert_eq!(ctx.walk(module).len(), ctx2.walk(reparsed).len());
        prop_assert!(ctx2.verify_structure(reparsed).is_ok());
    }

    /// Erasing any single (unused-result) operation keeps the module
    /// structurally valid.
    #[test]
    fn erase_keeps_structure(
        recipes in prop::collection::vec(recipe(), 1..30),
        victim in any::<usize>(),
    ) {
        let (mut ctx, module) = build_module(&recipes);
        let ops = ctx.walk(module);
        let victim = ops[victim % ops.len()];
        // Only erase ops whose results are unused (as DCE would).
        let erasable = ctx
            .op(victim)
            .results
            .clone()
            .iter()
            .all(|&r| !ctx.has_uses(r));
        if erasable && ctx.op(victim).regions.is_empty() {
            ctx.erase_op(victim);
            prop_assert!(ctx.verify_structure(module).is_ok());
        }
    }
}
