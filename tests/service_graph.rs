//! Acceptance suite for the service's batched layer-graph jobs.
//!
//! The graph contract: a graph job fans its per-stage compiles out over
//! the worker pool and reduces to a batched, bit-verified inference
//! run; the payload is byte-identical no matter how many workers raced
//! the stage compiles; a warm resubmit is pure result-cache lookup; and
//! the fused plan of a graph is never slower end-to-end than the
//! unfused plan of the same graph at the same seed.

use mlb_core::Flow;
use mlb_ir::DriverMode;
use mlb_kernels::GraphPreset;
use mlbe::json::Json;
use mlbe::service::protocol::graph_instance;
use mlbe::service::{CompileService, GraphParams, JobKind, JobRequest, ServiceConfig};

fn graph_request(
    id: u64,
    preset: GraphPreset,
    batch: usize,
    fused: bool,
    cores: usize,
) -> JobRequest {
    let mut opts = mlb_core::PipelineOptions::full();
    opts.cores = cores;
    JobRequest {
        id,
        kind: JobKind::Graph(GraphParams { preset, batch, fused }),
        instance: graph_instance(),
        flow: Flow::Ours(opts),
        driver: DriverMode::Worklist,
        seed: 11,
    }
}

#[test]
fn graph_payload_is_identical_across_worker_counts() {
    let request = graph_request(5, GraphPreset::Nsnet2, 4, true, 1);
    let solo =
        CompileService::new(ServiceConfig { workers: 1, cache_capacity: 128, telemetry: true });
    let racing =
        CompileService::new(ServiceConfig { workers: 8, cache_capacity: 128, telemetry: true });
    let reference = solo.run_one(request);
    let raced = racing.run_batch(&[request]).remove(0);
    assert!(reference.payload.is_ok(), "{}", reference.payload.as_ref().unwrap_err());
    assert_eq!(reference.payload_text(), raced.payload_text());
    assert_eq!(reference.digest, raced.digest);
    assert_eq!(raced.id, 5);
}

#[test]
fn fused_graph_beats_unfused_and_outputs_agree() {
    let service =
        CompileService::new(ServiceConfig { workers: 4, cache_capacity: 256, telemetry: true });
    let fused = service
        .run_batch(&[graph_request(1, GraphPreset::Nsnet2, 2, true, 1)])
        .remove(0)
        .payload
        .expect("fused graph run succeeds");
    let unfused = service
        .run_batch(&[graph_request(2, GraphPreset::Nsnet2, 2, false, 1)])
        .remove(0)
        .payload
        .expect("unfused graph run succeeds");
    let cycles = |p: &Json| p.get("total_cycles").and_then(Json::as_u64).expect("total_cycles");
    assert!(
        cycles(&fused) < cycles(&unfused),
        "fused {} vs unfused {}",
        cycles(&fused),
        cycles(&unfused)
    );
    // Fusion relocates intermediates; it must not change the math.
    assert_eq!(
        fused.get("output_digest").and_then(Json::as_str),
        unfused.get("output_digest").and_then(Json::as_str),
    );
    // The fused plan has fewer stages (element-wise runs collapse).
    let stages = |p: &Json| match p.get("stages") {
        Some(Json::Arr(items)) => items.len(),
        _ => 0,
    };
    assert_eq!(stages(&fused), 4);
    assert_eq!(stages(&unfused), 6);
}

#[test]
fn warm_graph_resubmit_is_a_result_cache_hit() {
    let service =
        CompileService::new(ServiceConfig { workers: 2, cache_capacity: 128, telemetry: true });
    let request = graph_request(9, GraphPreset::EltwiseChain, 3, true, 1);
    let cold = service.run_batch(&[request]).remove(0);
    assert!(!cold.cached);
    assert!(cold.payload.is_ok(), "{}", cold.payload.as_ref().unwrap_err());
    let warm = service.run_batch(&[request]).remove(0);
    assert!(warm.cached, "second submission must be served from the result cache");
    assert_eq!(warm.payload_text(), cold.payload_text());
}

#[test]
fn graph_stage_compiles_share_the_artifact_cache_with_kernel_jobs() {
    use mlb_kernels::{Instance, Kind, Precision, Shape};
    let service =
        CompileService::new(ServiceConfig { workers: 2, cache_capacity: 128, telemetry: true });
    // Pre-compile the first unfused nsnet2 stage (matmult 4x32x40) as a
    // plain kernel job...
    let compile = JobRequest {
        id: 1,
        kind: JobKind::Compile,
        instance: Instance::new(Kind::MatMulT, Shape::nmk(4, 32, 40), Precision::F64),
        flow: Flow::Ours(mlb_core::PipelineOptions::full()),
        driver: DriverMode::Worklist,
        seed: 0,
    };
    assert!(service.run_one(compile).payload.is_ok());
    let (artifacts_before, _, _) = service.cache_stats();
    // ...then run the graph: its matmult stages must hit that artifact
    // rather than recompile it.
    let response =
        service.run_batch(&[graph_request(2, GraphPreset::Nsnet2, 1, true, 1)]).remove(0);
    assert!(response.payload.is_ok(), "{}", response.payload.as_ref().unwrap_err());
    let (artifacts_after, _, _) = service.cache_stats();
    assert!(
        artifacts_after.hits > artifacts_before.hits,
        "graph stages must reuse plain kernel artifacts ({artifacts_before:?} -> {artifacts_after:?})"
    );
}

#[test]
fn graph_jobs_ride_mixed_batches_in_request_order() {
    use mlb_kernels::{Instance, Kind, Precision, Shape};
    let service =
        CompileService::new(ServiceConfig { workers: 4, cache_capacity: 128, telemetry: true });
    let simulate = JobRequest {
        id: 1,
        kind: JobKind::Simulate,
        instance: Instance::new(Kind::Sum, Shape::nm(4, 4), Precision::F64),
        flow: Flow::Ours(mlb_core::PipelineOptions::full()),
        driver: DriverMode::Worklist,
        seed: 2,
    };
    let graph = graph_request(2, GraphPreset::EltwiseChain, 2, true, 2);
    let responses = service.run_batch(&[simulate, graph, JobRequest { id: 3, ..simulate }]);
    assert_eq!(responses.iter().map(|r| r.id).collect::<Vec<_>>(), vec![1, 2, 3]);
    for response in &responses {
        assert!(response.payload.is_ok(), "{}", response.payload.as_ref().unwrap_err());
    }
    // Batch 2 on 2 cores double-buffers the flowing values.
    let payload = responses[1].payload.as_ref().unwrap();
    assert_eq!(payload.get("double_buffered").and_then(Json::as_bool), Some(true));
}
