//! Graph-level differential tests: every preset and a sweep of ad-hoc
//! 2–4 layer chains must produce bit-identical outputs fused vs
//! unfused, across 1/2/4 cores, with the interpreter chained across
//! stages agreeing with the cycle-accurate batched run.

use mlb_kernels::{
    fuzz_graphs, graph_difftest, run_graph, GraphPreset, GraphRunConfig, Layer, LayerGraph,
};

fn chain(name: &str, input: (i64, i64), layers: Vec<Layer>) -> LayerGraph {
    LayerGraph::new(name, input, layers).expect("test graphs are valid")
}

fn run_cfg(fused: bool, batch: usize, cores: usize) -> GraphRunConfig {
    GraphRunConfig { fused, batch, cores, seed: 7, engine: None }
}

/// Output bit patterns of a batched run (the runner itself verifies
/// every stage against the chained host reference).
fn output_bits(graph: &LayerGraph, fused: bool, batch: usize, cores: usize) -> Vec<Vec<u64>> {
    let outcome = run_graph(graph, &run_cfg(fused, batch, cores))
        .unwrap_or_else(|e| panic!("{} fused={fused} cores={cores}: {e}", graph.name));
    outcome.outputs.iter().map(|o| o.iter().map(|v| v.to_bits()).collect()).collect()
}

#[test]
fn presets_are_bit_identical_fused_vs_unfused_across_core_counts() {
    for preset in GraphPreset::all() {
        let graph = preset.graph();
        for cores in [1usize, 2, 4] {
            let fused = output_bits(&graph, true, 2, cores);
            let unfused = output_bits(&graph, false, 2, cores);
            assert_eq!(
                fused, unfused,
                "{} must not change outputs under fusion at {cores} cores",
                graph.name
            );
        }
    }
}

#[test]
fn preset_difftests_chain_the_interpreter_across_stages() {
    for preset in GraphPreset::all() {
        let graph = preset.graph();
        for fused in [true, false] {
            let outcome = graph_difftest(&graph, fused, 1, 7)
                .unwrap_or_else(|e| panic!("{} fused={fused}: {e}", graph.name));
            assert!(outcome.graph_stages >= 1);
            assert!(outcome.pipeline_stages > outcome.graph_stages);
            // The interpreter chain must land on the simulator's output
            // — bit-for-bit when no multiply-accumulate is involved
            // (both runs verify against the same chained reference), and
            // within rounding when matmul stages may legally pick either
            // fused or unfused FMA rounding per backend.
            let sim = run_graph(&graph, &run_cfg(fused, 1, 1)).expect("sim run");
            let fma_free = !graph.layers.iter().any(|l| matches!(l, Layer::MatMulT { .. }));
            if fma_free {
                let sim_bits: Vec<u64> = sim.outputs[0].iter().map(|v| v.to_bits()).collect();
                let interp: Vec<u64> = outcome.outputs.iter().map(|v| v.to_bits()).collect();
                assert_eq!(sim_bits, interp, "{} fused={fused}", graph.name);
            } else {
                for (a, b) in sim.outputs[0].iter().zip(&outcome.outputs) {
                    assert!(
                        (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                        "{} fused={fused}: sim {a} vs interpreter {b}",
                        graph.name
                    );
                }
            }
        }
    }
}

#[test]
fn short_chains_survive_fusion_at_every_boundary() {
    // 2–4 layer chains hitting each fusion boundary: eltwise head,
    // eltwise tail, eltwise sandwiched between matmuls, and a pure
    // eltwise run longer than the fusion capacity.
    let graphs = [
        chain("head", (4, 8), vec![Layer::Sum, Layer::MatMulT { width: 4 }]),
        chain("tail", (4, 8), vec![Layer::MatMulT { width: 4 }, Layer::Sum, Layer::Relu]),
        chain(
            "sandwich",
            (2, 6),
            vec![Layer::MatMulT { width: 8 }, Layer::Relu, Layer::MatMulT { width: 4 }, Layer::Sum],
        ),
        chain("pure", (4, 4), vec![Layer::Sum, Layer::Relu, Layer::Sum, Layer::Relu]),
    ];
    for graph in &graphs {
        for cores in [1usize, 2] {
            let fused = output_bits(graph, true, 1, cores);
            let unfused = output_bits(graph, false, 1, cores);
            assert_eq!(fused, unfused, "{} at {cores} cores", graph.name);
        }
        graph_difftest(graph, true, 1, 9).unwrap_or_else(|e| panic!("{}: {e}", graph.name));
    }
}

#[test]
fn fuzzed_chains_run_clean_fused_and_unfused() {
    let report = fuzz_graphs(0xF00D, 6);
    assert!(report.is_ok(), "{}", report.unwrap_err());
}

#[test]
fn batched_nsnet2_improves_cycles_per_request_when_fused() {
    let graph = GraphPreset::Nsnet2.graph();
    let fused = run_graph(&graph, &run_cfg(true, 4, 1)).expect("fused batch");
    let unfused = run_graph(&graph, &run_cfg(false, 4, 1)).expect("unfused batch");
    assert!(
        fused.cycles_per_request < unfused.cycles_per_request,
        "fused {} vs unfused {}",
        fused.cycles_per_request,
        unfused.cycles_per_request
    );
    assert_eq!(fused.stage_symbols.len(), 4);
    assert_eq!(unfused.stage_symbols.len(), 6);
}
