//! Acceptance suite for `mlbc tune`'s service-side schedule search.
//!
//! The tune contract: for a fixed seed and budget the report is
//! byte-identical no matter how many workers raced the simulations, the
//! best schedule is never slower than any flow's hand-written default
//! (the search space opens with the defaults, so this holds by
//! construction), a warm re-tune is pure cache lookup performing no new
//! simulations, and tune jobs ride inside mixed batches without
//! disturbing request order.

use mlb_core::{Flow, PipelineOptions};
use mlb_ir::DriverMode;
use mlb_kernels::{Instance, Kind, Precision, Shape, TuneParams};
use mlbe::json::Json;
use mlbe::service::{CompileService, JobKind, JobRequest, ServiceConfig};

fn tune_request(id: u64, params: TuneParams) -> JobRequest {
    JobRequest {
        id,
        kind: JobKind::Tune(params),
        instance: Instance::new(Kind::MatMul, Shape::nmk(8, 16, 16), Precision::F64),
        flow: Flow::Ours(PipelineOptions::full()),
        driver: DriverMode::Worklist,
        seed: 0,
    }
}

fn variant_cycles(payload: &Json, label: &str) -> Option<u64> {
    match payload.get("variants") {
        Some(Json::Arr(variants)) => variants
            .iter()
            .find(|v| v.get("label").and_then(Json::as_str) == Some(label))
            .and_then(|v| v.get("cycles"))
            .and_then(Json::as_u64),
        _ => None,
    }
}

/// Fixed seed and budget give a byte-identical report whether one
/// worker runs the search or eight race it.
#[test]
fn tune_report_is_identical_across_worker_counts() {
    let request = tune_request(7, TuneParams { cores_max: 2, budget: 10 });
    let solo =
        CompileService::new(ServiceConfig { workers: 1, cache_capacity: 128, telemetry: true });
    let racing =
        CompileService::new(ServiceConfig { workers: 8, cache_capacity: 128, telemetry: true });
    let reference = solo.run_one(request);
    let raced = racing.run_batch(&[request]).remove(0);
    assert_eq!(reference.id, 7);
    assert_eq!(raced.id, 7);
    assert!(reference.payload.is_ok(), "{}", reference.payload.as_ref().unwrap_err());
    assert_eq!(
        reference.payload_text(),
        raced.payload_text(),
        "tune must be deterministic across worker counts"
    );
    assert_eq!(reference.digest, raced.digest);

    // And across repeated cold services: nothing in the payload depends
    // on wall clock or scheduling.
    let again =
        CompileService::new(ServiceConfig { workers: 3, cache_capacity: 128, telemetry: true });
    assert_eq!(again.run_one(request).payload_text(), reference.payload_text());
}

/// The acceptance criterion of the tune tentpole: on matmul-8x16x16 the
/// tuned best is at least as fast (aggregate cluster cycles) as the
/// hand-written default of *every* flow, and the defaults are present
/// in the evaluated variants to prove the comparison happened.
#[test]
fn tuned_best_beats_or_matches_every_flow_default() {
    let service =
        CompileService::new(ServiceConfig { workers: 4, cache_capacity: 256, telemetry: true });
    let response = service.run_one(tune_request(1, TuneParams::default()));
    let payload = response.payload.expect("tune succeeds");
    let best = payload.get("best").expect("best schedule").clone();
    let best_cycles = best.get("cycles").and_then(Json::as_u64).expect("best cycles");
    for reference in ["ours-default", "mlir", "clang"] {
        let cycles = variant_cycles(&payload, reference)
            .unwrap_or_else(|| panic!("default `{reference}` was not evaluated"));
        assert!(
            best_cycles <= cycles,
            "best ({best_cycles} cycles) is slower than {reference} ({cycles} cycles)"
        );
    }
    // The winner comes with single-core stall attribution from the
    // profiler, attributed to real source lines (not `<unknown>`).
    let why = payload.get("why").expect("why section");
    let Some(Json::Arr(rows)) = why.get("rows") else { panic!("why rows missing") };
    assert!(!rows.is_empty());
    assert!(
        rows.iter()
            .any(|r| r.get("location").and_then(Json::as_str).is_some_and(|l| l.contains(".mlir"))),
        "stall attribution should name source lines"
    );
    assert!(rows.iter().all(|r| r.get("stalls").is_some()), "rows carry stall histograms");
}

/// A warm re-tune is answered from the tune cache: no new simulations,
/// no new cache insertions, identical bytes.
#[test]
fn warm_retune_performs_no_simulations() {
    let service =
        CompileService::new(ServiceConfig { workers: 2, cache_capacity: 128, telemetry: true });
    let request = tune_request(3, TuneParams { cores_max: 2, budget: 8 });
    let cold = service.run_one(request);
    assert!(cold.payload.is_ok(), "{}", cold.payload.as_ref().unwrap_err());
    assert!(!cold.cached);
    let (artifacts_before, execs_before, results_before) = service.cache_stats();
    assert!(
        execs_before.insertions > 0,
        "a cold tune predecodes the schedule variants it simulates"
    );

    let warm = service.run_one(request);
    assert!(warm.cached, "warm re-tune must be a tune-cache hit");
    assert_eq!(warm.payload_text(), cold.payload_text());
    let (artifacts_after, execs_after, results_after) = service.cache_stats();
    assert_eq!(
        artifacts_after.insertions, artifacts_before.insertions,
        "a warm re-tune must not compile anything"
    );
    assert_eq!(
        execs_after.insertions, execs_before.insertions,
        "a warm re-tune must not predecode anything"
    );
    assert_eq!(
        results_after.insertions, results_before.insertions,
        "a warm re-tune must not simulate (and cache) any schedule"
    );

    // A bigger-budget tune is a *different* point in the search space:
    // its key differs, so it reruns — but its leaf simulations reuse
    // every artifact the first search compiled for the shared variants.
    let bigger = service.run_one(tune_request(4, TuneParams { cores_max: 2, budget: 10 }));
    assert!(!bigger.cached, "budget is part of the tune cache key");
    assert!(bigger.payload.is_ok());
}

/// The leaf simulations of a tune land in the shared result cache: a
/// plain simulate job for the winning schedule is served warm.
#[test]
fn tune_leaves_seed_the_result_cache() {
    let service =
        CompileService::new(ServiceConfig { workers: 2, cache_capacity: 128, telemetry: true });
    let request = tune_request(1, TuneParams { cores_max: 2, budget: 8 });
    let payload = service.run_one(request).payload.expect("tune succeeds");
    // The report embeds the winner as a ready-to-submit protocol
    // request; parsed back through the wire format, its simulate twin
    // must be a pure cache hit.
    let embedded =
        payload.get("best").and_then(|b| b.get("request")).expect("best embeds a request").pretty();
    let winner = mlbe::service::parse_request(&embedded, 2).expect("embedded request parses");
    assert_eq!(winner.kind, JobKind::Simulate, "the winner replays as a simulate job");
    let simulate = service.run_one(winner);
    assert!(simulate.payload.is_ok(), "{}", simulate.payload.as_ref().unwrap_err());
    assert!(simulate.cached, "the tune already simulated the winning schedule");
}

/// Tune jobs ride inside a mixed batch without disturbing request
/// order, and the whole batch stays deterministic across worker counts.
#[test]
fn mixed_batch_with_tune_jobs_keeps_order_and_determinism() {
    let mut requests = vec![tune_request(50, TuneParams { cores_max: 2, budget: 6 })];
    for i in 0..6 {
        requests.push(JobRequest {
            id: i,
            kind: [JobKind::Compile, JobKind::Simulate, JobKind::Profile][(i as usize) % 3],
            instance: Instance::new(Kind::Sum, Shape::nm(3, 4), Precision::F64),
            flow: Flow::Ours(PipelineOptions::full()),
            driver: DriverMode::Worklist,
            seed: i,
        });
    }
    // A second, identical tune in the same batch: deduplicated leaves,
    // identical payload.
    requests.push(tune_request(51, TuneParams { cores_max: 2, budget: 6 }));

    let solo =
        CompileService::new(ServiceConfig { workers: 1, cache_capacity: 128, telemetry: true });
    let racing =
        CompileService::new(ServiceConfig { workers: 8, cache_capacity: 128, telemetry: true });
    let reference = solo.run_batch(&requests);
    let raced = racing.run_batch(&requests);
    let got: Vec<u64> = raced.iter().map(|r| r.id).collect();
    let want: Vec<u64> = requests.iter().map(|r| r.id).collect();
    assert_eq!(got, want, "responses must keep request order");
    for ((request, seq), conc) in requests.iter().zip(&reference).zip(&raced) {
        assert!(seq.payload.is_ok(), "job {}: {}", request.id, seq.payload.as_ref().unwrap_err());
        assert_eq!(conc.payload_text(), seq.payload_text(), "job {} diverged", request.id);
    }
    assert_eq!(
        reference[0].payload_text(),
        reference[requests.len() - 1].payload_text(),
        "identical tunes in one batch must agree"
    );
}
