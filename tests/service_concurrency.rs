//! Concurrency-equivalence suite for the compile service.
//!
//! The service's contract is that scheduling is invisible: a batch run
//! over many workers must produce byte-identical payloads (assembly,
//! counters, source maps, profiles, difftest stage lists) to the same
//! batch run sequentially, and a warm resubmission must serve from the
//! content-addressed cache without changing a byte.

use mlb_core::{Flow, PipelineOptions};
use mlb_ir::DriverMode;
use mlb_kernels::{Instance, Kind, Precision, Shape};
use mlbe::service::{CompileService, JobKind, JobRequest, ServiceConfig};

/// A deterministic batch of `n` mixed jobs: every kernel, both
/// precisions, all four production job kinds, both drivers, all three
/// flows and several cluster widths (mirrors `mlbc serve
/// --emit-demo-batch`).
fn mixed_batch(n: usize) -> Vec<JobRequest> {
    let job_kinds = [JobKind::Compile, JobKind::Simulate, JobKind::Difftest, JobKind::Profile];
    (0..n)
        .map(|i| {
            let kernel = Kind::all()[i % 8];
            let shape = match kernel {
                Kind::MatMul | Kind::MatMulT => Shape::nmk(2, 4, 3),
                _ => Shape::nm(3, 4),
            };
            let precision = if (i / 8) % 2 == 0 { Precision::F64 } else { Precision::F32 };
            let kind = job_kinds[(i + i / 8) % 4];
            let driver = if i % 6 == 3 { DriverMode::LegacyRewalk } else { DriverMode::Worklist };
            let flow = if kind == JobKind::Difftest && i % 5 == 0 {
                Flow::MlirLike
            } else if kind == JobKind::Difftest && i % 7 == 0 {
                Flow::ClangLike
            } else {
                let mut opts =
                    if i % 9 == 4 { PipelineOptions::baseline() } else { PipelineOptions::full() };
                if kind == JobKind::Simulate {
                    opts.cores = [1, 2, 4][(i / 4) % 3];
                }
                Flow::Ours(opts)
            };
            JobRequest {
                id: (i + 1) as u64,
                kind,
                instance: Instance::new(kernel, shape, precision),
                flow,
                driver,
                seed: (i % 3) as u64,
            }
        })
        .collect()
}

/// The acceptance criterion of the serve tentpole: 64 mixed jobs over 8
/// workers are byte-identical to the sequential run, and resubmitting
/// the batch is served (almost entirely) from cache with identical
/// payloads.
#[test]
fn concurrent_batch_matches_sequential_byte_for_byte() {
    let requests = mixed_batch(64);

    let sequential =
        CompileService::new(ServiceConfig { workers: 1, cache_capacity: 256, telemetry: true });
    let reference = sequential.run_batch(&requests);
    for (request, response) in requests.iter().zip(&reference) {
        assert!(
            response.payload.is_ok(),
            "job {} ({:?} {}): {}",
            request.id,
            request.kind,
            request.instance,
            response.payload.as_ref().unwrap_err()
        );
    }

    let concurrent =
        CompileService::new(ServiceConfig { workers: 8, cache_capacity: 256, telemetry: true });
    assert_eq!(concurrent.workers(), 8);
    let cold = concurrent.run_batch(&requests);
    assert_eq!(cold.len(), reference.len());
    for ((request, seq), conc) in requests.iter().zip(&reference).zip(&cold) {
        assert_eq!(conc.id, request.id, "responses must keep request order");
        assert_eq!(conc.digest, seq.digest, "job {}: digest diverged", request.id);
        assert_eq!(
            conc.payload_text(),
            seq.payload_text(),
            "job {} ({:?} {}): concurrent payload diverged from sequential",
            request.id,
            request.kind,
            request.instance
        );
    }

    // Warm resubmission: ≥90% served from cache (here: all of them,
    // since every job succeeded), still byte-identical.
    let warm = concurrent.run_batch(&requests);
    let hits = warm.iter().filter(|r| r.cached).count();
    assert!(hits * 100 >= warm.len() * 90, "only {hits}/{} warm jobs were cache hits", warm.len());
    for (seq, warm) in reference.iter().zip(&warm) {
        assert_eq!(warm.payload_text(), seq.payload_text(), "warm payload diverged");
    }
}

/// Responses come back in request order even when later-submitted jobs
/// finish first (cheap jobs queued behind expensive ones).
#[test]
fn response_order_is_request_order_not_completion_order() {
    // One expensive difftest first, then trivially cheap compiles: with
    // 4 workers the compiles all finish while the difftest still runs.
    let mut requests = vec![JobRequest {
        id: 100,
        kind: JobKind::Difftest,
        instance: Instance::new(Kind::MatMul, Shape::nmk(4, 8, 8), Precision::F64),
        flow: Flow::Ours(PipelineOptions::full()),
        driver: DriverMode::Worklist,
        seed: 0,
    }];
    for i in 0..12 {
        requests.push(JobRequest {
            id: i,
            kind: JobKind::Compile,
            instance: Instance::new(Kind::Fill, Shape::nm(2, 2), Precision::F64),
            flow: Flow::Ours(PipelineOptions::full()),
            driver: DriverMode::Worklist,
            seed: i,
        });
    }
    let service =
        CompileService::new(ServiceConfig { workers: 4, cache_capacity: 64, telemetry: true });
    let responses = service.run_batch(&requests);
    let got: Vec<u64> = responses.iter().map(|r| r.id).collect();
    let want: Vec<u64> = requests.iter().map(|r| r.id).collect();
    assert_eq!(got, want);
}

/// The artifact cache is shared across job kinds: a simulate job reuses
/// the compilation a compile job produced, and the two payloads embed
/// the same artifact.
#[test]
fn simulate_reuses_the_compile_jobs_artifact() {
    let service =
        CompileService::new(ServiceConfig { workers: 1, cache_capacity: 64, telemetry: true });
    let instance = Instance::new(Kind::Sum, Shape::nm(4, 8), Precision::F64);
    let base = JobRequest {
        id: 1,
        kind: JobKind::Compile,
        instance,
        flow: Flow::Ours(PipelineOptions::full()),
        driver: DriverMode::Worklist,
        seed: 3,
    };
    let compile = service.run_one(base);
    assert!(compile.payload.is_ok());
    let (artifacts_before, _, _) = service.cache_stats();
    let simulate = service.run_one(JobRequest { id: 2, kind: JobKind::Simulate, ..base });
    assert!(simulate.payload.is_ok());
    assert!(!simulate.cached, "different job kind, different result key");
    let (artifacts_after, _, _) = service.cache_stats();
    assert_eq!(
        artifacts_after.hits,
        artifacts_before.hits + 1,
        "the simulate job must hit the artifact the compile job cached"
    );
    assert_eq!(artifacts_after.insertions, artifacts_before.insertions, "nothing recompiled");
}

/// Distinct drivers are distinct cache entries, but — by driver
/// equivalence — their artifacts agree, so the service returns the same
/// assembly under either key.
#[test]
fn drivers_are_separate_keys_with_equal_artifacts() {
    let service =
        CompileService::new(ServiceConfig { workers: 2, cache_capacity: 64, telemetry: true });
    let base = JobRequest {
        id: 1,
        kind: JobKind::Compile,
        instance: Instance::new(Kind::Conv3x3, Shape::nm(3, 4), Precision::F64),
        flow: Flow::Ours(PipelineOptions::full()),
        driver: DriverMode::Worklist,
        seed: 0,
    };
    let legacy = JobRequest { driver: DriverMode::LegacyRewalk, ..base };
    let responses = service.run_batch(&[base, legacy]);
    assert_ne!(responses[0].digest, responses[1].digest);
    assert_eq!(
        responses[0].payload_text(),
        responses[1].payload_text(),
        "worklist and legacy drivers must compile identically"
    );
}
