//! Timing-model tests for the Snitch simulator: the microarchitectural
//! effects the paper's evaluation depends on must be visible in the
//! cycle counts (Section 2.4 / 4.1).

use mlb_isa::TCDM_BASE;
use mlb_sim::{assemble, Machine};

fn cycles(src: &str) -> u64 {
    let program = assemble(src).unwrap();
    let mut machine = Machine::new();
    machine.write_f64_slice(TCDM_BASE, &[1.0; 64]).unwrap();
    machine.call(&program, "f", &[TCDM_BASE]).unwrap().cycles
}

/// A dependent FP chain pays the 3-stage pipeline latency per link; an
/// independent sequence issues one per cycle.
#[test]
fn fpu_raw_stalls_cost_three_cycles() {
    let dependent = "\
f:
    fld ft3, (a0)
    fadd.d ft3, ft3, ft3
    fadd.d ft3, ft3, ft3
    fadd.d ft3, ft3, ft3
    fadd.d ft3, ft3, ft3
    ret
";
    let independent = "\
f:
    fld ft3, (a0)
    fadd.d ft4, ft3, ft3
    fadd.d ft5, ft3, ft3
    fadd.d ft6, ft3, ft3
    fadd.d ft7, ft3, ft3
    ret
";
    let dep = cycles(dependent);
    let ind = cycles(independent);
    assert!(dep >= ind + 2 * 3, "dependent {dep} vs independent {ind}");
}

/// Under FREP the integer core runs ahead of the FPU (pseudo-dual
/// issue): integer work after `frep.o` is free.
#[test]
fn frep_overlaps_integer_work() {
    let with_int_work = "\
f:
    li t0, 49
    frep.o t0, 1, 0, 0
    fadd.d ft4, ft3, ft3
    li t1, 1
    li t2, 2
    li t3, 3
    li t4, 4
    li t5, 5
    ret
";
    let without = "\
f:
    li t0, 49
    frep.o t0, 1, 0, 0
    fadd.d ft4, ft3, ft3
    ret
";
    let a = cycles(with_int_work);
    let b = cycles(without);
    assert!(a <= b + 1, "integer work under frep must be hidden: {a} vs {b}");
}

/// The same work dispatched by the integer core (no frep) is bounded by
/// the core's single-issue rate once other instructions compete.
#[test]
fn scalar_dispatch_is_single_issue() {
    // Alternating integer + FP work: each pair costs at least 2 issue
    // slots, so 20 pairs cannot finish in fewer than 40 cycles.
    let mut src = String::from("f:\n");
    for i in 0..20 {
        src.push_str(&format!("    addi t1, t1, {i}\n"));
        src.push_str("    fadd.d ft4, ft3, ft3\n");
    }
    src.push_str("    ret\n");
    assert!(cycles(&src) >= 40);
}

/// The unpipelined divider blocks the FPU for its full occupancy.
#[test]
fn fdiv_occupies_the_fpu() {
    let divs = "\
f:
    fld ft3, (a0)
    fdiv.d ft4, ft3, ft3
    fdiv.d ft5, ft3, ft3
    ret
";
    let adds = "\
f:
    fld ft3, (a0)
    fadd.d ft4, ft3, ft3
    fadd.d ft5, ft3, ft3
    ret
";
    assert!(cycles(divs) >= cycles(adds) + 15);
}

/// Taken branches pay a redirect penalty: a counted loop of N iterations
/// costs at least N * (body + penalty).
#[test]
fn taken_branches_pay_a_penalty() {
    let src = "\
f:
    li t0, 0
    li t1, 100
loop:
    addi t0, t0, 1
    blt t0, t1, loop
    ret
";
    // 100 iterations x (2 instructions + 2 penalty) is the floor.
    assert!(cycles(src) >= 100 * 4 - 8);
}

/// Disabling SSRs restores plain register semantics for ft0-ft2.
#[test]
fn ssr_disable_restores_register_reads() {
    let src = format!(
        "\
f:
    li t1, 0
    scfgwi t1, {b0}
    li t1, 8
    scfgwi t1, {s0}
    li t1, {base}
    scfgwi t1, {rptr}
    csrrsi zero, 0x7c0, 1
    fadd.d ft3, ft0, ft4
    csrrci zero, 0x7c0, 1
    fadd.d ft5, ft0, ft0
    fsd ft5, 32(a0)
    ret
",
        b0 = mlb_isa::SsrCfgReg::Bound(0).scfg_imm(mlb_isa::SsrDataMover::new(0)),
        s0 = mlb_isa::SsrCfgReg::Stride(0).scfg_imm(mlb_isa::SsrDataMover::new(0)),
        rptr = mlb_isa::SsrCfgReg::RPtr(0).scfg_imm(mlb_isa::SsrDataMover::new(0)),
        base = TCDM_BASE,
    );
    let program = assemble(&src).unwrap();
    let mut machine = Machine::new();
    machine.write_f64_slice(TCDM_BASE, &[7.0; 8]).unwrap();
    // Preload ft0's architectural value: after disable it must be read
    // as a plain register again (the stream pop wrote nothing to it).
    machine.set_f_bits(mlb_isa::FpReg::ft(0), 2.5f64.to_bits());
    machine.call(&program, "f", &[TCDM_BASE]).unwrap();
    assert_eq!(machine.read_f64_slice(TCDM_BASE + 32, 1).unwrap(), vec![5.0]);
}

/// Cycle counts are exactly reproducible (bare-metal determinism).
#[test]
fn timing_is_deterministic() {
    let src = "\
f:
    li t0, 9
    fld ft3, (a0)
    frep.o t0, 1, 0, 0
    fmul.d ft3, ft3, ft3
    fsd ft3, 8(a0)
    ret
";
    let a = cycles(src);
    for _ in 0..5 {
        assert_eq!(cycles(src), a);
    }
}

// ---------------------------------------------------------------------
// Counter invariants across the kernel suite (observability layer).
//
// These pin the relationships between `PerfCounters`, the per-mover SSR
// pop counts and the execution trace that the `--trace-json` report
// relies on: if any of them drifts, occupancy summaries silently lie.
// ---------------------------------------------------------------------

mod counter_invariants {
    use mlb_core::{compile, Flow, PipelineOptions};
    use mlb_ir::Context;
    use mlb_isa::{FpReg, TCDM_BASE};
    use mlb_kernels::{Instance, Kind, Precision, Shape, FILL_VALUE};
    use mlb_sim::{assemble, Machine, PerfCounters, TraceEntry};

    /// Compiles `instance` with the full pipeline and runs it with the
    /// execution trace enabled, returning everything the observability
    /// layer derives its reports from.
    fn traced_run(instance: &Instance) -> (PerfCounters, Vec<TraceEntry>, [(u64, u64); 3]) {
        let mut ctx = Context::new();
        let module = instance.build_module(&mut ctx);
        let compilation = compile(&mut ctx, module, Flow::Ours(PipelineOptions::full())).unwrap();
        let program = assemble(&compilation.assembly).unwrap();

        let mut machine = Machine::new();
        machine.enable_trace();
        let sizes = instance.buffer_sizes();
        let esz = instance.precision.bits() / 8;
        let mut addrs = Vec::new();
        let mut cursor = TCDM_BASE;
        for &size in &sizes {
            addrs.push(cursor);
            machine.write_f64_slice(cursor, &vec![1.25; size]).unwrap();
            cursor += (size as u32 * esz).next_multiple_of(8);
        }
        if instance.kind == Kind::Fill {
            machine.set_f_bits(FpReg::fa(0), FILL_VALUE.to_bits());
        }
        let counters = machine.call(&program, &instance.symbol(), &addrs).unwrap();
        let trace = machine.take_trace().unwrap();
        (counters, trace, machine.ssr_pop_counts())
    }

    fn suite() -> Vec<Instance> {
        Kind::all()
            .into_iter()
            .map(|kind| {
                let shape = match kind {
                    Kind::MatMul | Kind::MatMulT => Shape::nmk(2, 8, 16),
                    _ => Shape::nm(4, 8),
                };
                Instance::new(kind, shape, Precision::F64)
            })
            .collect()
    }

    /// The FPU cannot be busy for more cycles than the run lasted, and
    /// every FPU instruction occupies it for at least one cycle.
    #[test]
    fn fpu_busy_is_bounded_by_cycles() {
        for instance in suite() {
            let (c, _, _) = traced_run(&instance);
            assert!(
                c.fpu_busy_cycles <= c.cycles,
                "{instance:?}: busy {} > cycles {}",
                c.fpu_busy_cycles,
                c.cycles
            );
            assert!(c.fpu_busy_cycles >= c.fpu_instrs, "{instance:?}");
            assert!(c.frep_fpu_instrs <= c.fpu_instrs, "{instance:?}");
        }
    }

    /// Fused multiply-adds count as two FLOPs each, so the FLOP total
    /// is at least twice the fmadd count.
    #[test]
    fn flops_account_for_fused_multiply_adds() {
        for instance in suite() {
            let (c, _, _) = traced_run(&instance);
            assert!(
                c.flops >= 2 * c.fmadd,
                "{instance:?}: flops {} < 2 * fmadd {}",
                c.flops,
                c.fmadd
            );
        }
    }

    /// The aggregate SSR counters equal the per-mover pop counts, and
    /// the trip counts match the kernel semantics: each output element
    /// pops its full window/reduction from every input stream and is
    /// written exactly once.
    #[test]
    fn ssr_counters_match_stream_trip_counts() {
        for instance in suite() {
            let (c, _, movers) = traced_run(&instance);
            let reads: u64 = movers.iter().map(|&(r, _)| r).sum();
            let writes: u64 = movers.iter().map(|&(_, w)| w).sum();
            assert_eq!(c.ssr_reads, reads, "{instance:?}: aggregate reads");
            assert_eq!(c.ssr_writes, writes, "{instance:?}: aggregate writes");

            let out = (instance.shape.n * instance.shape.m) as u64;
            let k = instance.shape.k as u64;
            let expected_reads = match instance.kind {
                Kind::Fill => 0,
                Kind::Relu => out,
                Kind::Sum => 2 * out,
                // Input window and weights, 9 elements per output each.
                Kind::Conv3x3 => 18 * out,
                Kind::MaxPool3x3 | Kind::SumPool3x3 => 9 * out,
                // A row and a B column per output element.
                Kind::MatMul | Kind::MatMulT => 2 * k * out,
            };
            assert_eq!(c.ssr_reads, expected_reads, "{instance:?}: input trip count");
            assert_eq!(c.ssr_writes, out, "{instance:?}: output trip count");
        }
    }

    /// The execution trace accounts for every cycle and instruction:
    /// the latest completion time equals the cycle counter, and each
    /// dynamically executed instruction (including FREP replays) has
    /// exactly one entry.
    #[test]
    fn trace_reconciles_with_counters() {
        for instance in suite() {
            let (c, trace, _) = traced_run(&instance);
            assert_eq!(trace.len() as u64, c.instructions, "{instance:?}: trace length");
            let last = trace.iter().map(|e| e.complete).max().unwrap();
            assert_eq!(last, c.cycles, "{instance:?}: trace-derived cycle total");
            let frep_entries = trace.iter().filter(|e| e.in_frep).count() as u64;
            assert_eq!(frep_entries, c.frep_fpu_instrs, "{instance:?}: frep entries");
        }
    }
}
