//! Property tests for the spill-free register allocator: on random
//! straight-line programs (and simple loops), no two simultaneously-live
//! values ever share a register.

use mlb_core::regalloc::allocate_function;
use mlb_ir::{Context, OpSpec, Type, ValueId};
use mlb_riscv::{rv, rv_func};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Step {
    kind: u8,
    picks: [usize; 3],
}

fn step() -> impl Strategy<Value = Step> {
    (0u8..4, [any::<usize>(), any::<usize>(), any::<usize>()])
        .prop_map(|(kind, picks)| Step { kind, picks })
}

/// Live range of every FP value in a single block: definition index to
/// last-use index.
fn fp_live_ranges(ctx: &Context, block: mlb_ir::BlockId) -> Vec<(ValueId, usize, usize)> {
    let ops = ctx.block_ops(block);
    let mut ranges: Vec<(ValueId, usize, usize)> = Vec::new();
    for (i, &op) in ops.iter().enumerate() {
        for &r in &ctx.op(op).results {
            if matches!(ctx.value_type(r), Type::FpRegister(_)) {
                ranges.push((r, i, i));
            }
        }
        for &o in &ctx.op(op).operands {
            if let Some(entry) = ranges.iter_mut().find(|(v, _, _)| *v == o) {
                entry.2 = i;
            }
        }
    }
    ranges
}

proptest! {
    /// After allocation, FP values with overlapping live ranges carry
    /// distinct physical registers (the central allocator invariant).
    #[test]
    fn no_live_overlap_shares_a_register(steps in prop::collection::vec(step(), 1..40)) {
        let mut ctx = Context::new();
        let module = ctx.create_detached_op(OpSpec::new("builtin.module").regions(1));
        let top = ctx.create_block(ctx.op(module).regions[0], vec![]);
        let (func, entry) =
            rv_func::build_func(&mut ctx, top, "f", &[rv_func::AbiArg::Int]);
        let base = ctx.block_args(entry)[0];
        let seed = rv::fp_load(&mut ctx, entry, rv::FLD, base, 0);
        let mut values = vec![seed];
        for s in &steps {
            let a = values[s.picks[0] % values.len()];
            let b = values[s.picks[1] % values.len()];
            let v = match s.kind {
                0 => rv::fp_binary(&mut ctx, entry, rv::FADD_D, a, b),
                1 => rv::fp_binary(&mut ctx, entry, rv::FMUL_D, a, b),
                2 => {
                    let c = values[s.picks[2] % values.len()];
                    rv::fp_ternary(&mut ctx, entry, rv::FMADD_D, a, b, c)
                }
                _ => rv::fp_load(&mut ctx, entry, rv::FLD, base, (s.picks[2] % 64) as i64 * 8),
            };
            values.push(v);
        }
        // Keep the last value alive to the end.
        let last = *values.last().unwrap();
        rv::fp_store(&mut ctx, entry, rv::FSD, last, base, 0);
        rv_func::build_ret(&mut ctx, entry);

        match allocate_function(&mut ctx, func) {
            Ok(_) => {}
            // Exhaustion is allowed (spill-free allocators refuse); the
            // invariant only concerns successful allocations.
            Err(_) => return Ok(()),
        }

        let ranges = fp_live_ranges(&ctx, entry);
        for (i, &(v1, d1, u1)) in ranges.iter().enumerate() {
            for &(v2, d2, u2) in &ranges[i + 1..] {
                // Overlap in the open interior: a def at another value's
                // last use is fine (read happens before write).
                let overlap = d1 < u2 && d2 < u1;
                if overlap {
                    prop_assert_ne!(
                        ctx.value_type(v1),
                        ctx.value_type(v2),
                        "values with overlapping ranges ({},{}) vs ({},{}) share a register",
                        d1, u1, d2, u2
                    );
                }
            }
        }
    }

    /// Allocation is deterministic: equal inputs give equal assignments.
    #[test]
    fn allocation_is_deterministic(steps in prop::collection::vec(step(), 1..20)) {
        let build = |steps: &[Step]| {
            let mut ctx = Context::new();
            let module = ctx.create_detached_op(OpSpec::new("builtin.module").regions(1));
            let top = ctx.create_block(ctx.op(module).regions[0], vec![]);
            let (func, entry) =
                rv_func::build_func(&mut ctx, top, "f", &[rv_func::AbiArg::Int]);
            let base = ctx.block_args(entry)[0];
            let mut values = vec![rv::fp_load(&mut ctx, entry, rv::FLD, base, 0)];
            for s in steps {
                let a = values[s.picks[0] % values.len()];
                let b = values[s.picks[1] % values.len()];
                values.push(rv::fp_binary(&mut ctx, entry, rv::FADD_D, a, b));
            }
            let last = *values.last().unwrap();
            rv::fp_store(&mut ctx, entry, rv::FSD, last, base, 0);
            rv_func::build_ret(&mut ctx, entry);
            let stats = allocate_function(&mut ctx, func).unwrap();
            (stats.fp_used, stats.int_used)
        };
        prop_assert_eq!(build(&steps), build(&steps));
    }
}
