//! Property tests over the service's content-addressed cache.
//!
//! Three properties pin the cache down: a hit is bit-identical to the
//! cold miss it memoized (and to a cold miss on a fresh service), any
//! change to any key field changes the key, and an LRU small enough to
//! thrash never serves a stale (wrong-valued) entry — it may forget,
//! never lie.

use mlb_core::{Flow, PipelineOptions};
use mlb_ir::DriverMode;
use mlb_kernels::{Instance, Kind, Precision, Shape};
use mlbe::service::{CompileService, JobKind, JobRequest, LruCache, ServiceConfig};
use proptest::prelude::*;

/// Builds a job request from raw generator draws. `kind_sel` picks the
/// job kind, `kernel_sel` the kernel, and the remaining draws fill in
/// shape, precision, flow options, driver and seed.
#[allow(clippy::too_many_arguments)]
fn request_from(
    kind_sel: usize,
    kernel_sel: usize,
    n: i64,
    m: i64,
    k: i64,
    f32p: bool,
    flow_sel: usize,
    toggles: [bool; 7],
    cores_sel: usize,
    driver_legacy: bool,
    seed: u64,
) -> JobRequest {
    let kinds = [JobKind::Compile, JobKind::Simulate, JobKind::Difftest, JobKind::Profile];
    let kernel = Kind::all()[kernel_sel % 8];
    let shape = match kernel {
        Kind::MatMul | Kind::MatMulT => Shape::nmk(n, m, k),
        _ => Shape::nm(n, m),
    };
    let flow = match flow_sel % 4 {
        0 => Flow::MlirLike,
        1 => Flow::ClangLike,
        _ => {
            let mut opts = PipelineOptions::full();
            opts.streams = toggles[0];
            opts.scalar_replacement = toggles[1];
            opts.frep = toggles[2];
            opts.fuse_fill = toggles[3];
            opts.unroll_and_jam = toggles[4];
            opts.stream_pattern_opts = toggles[5];
            opts.fuse_elementwise = toggles[6];
            opts.cores = [1, 2, 4, 8][cores_sel % 4];
            Flow::Ours(opts)
        }
    };
    JobRequest {
        id: 1,
        kind: kinds[kind_sel % 4],
        instance: Instance::new(kernel, shape, if f32p { Precision::F32 } else { Precision::F64 }),
        flow,
        driver: if driver_legacy { DriverMode::LegacyRewalk } else { DriverMode::Worklist },
        seed,
    }
}

proptest! {
    /// Flipping any single key field must change the result key (and
    /// the compile key too, when the field is part of the artifact
    /// identity). The canonical encoding is injective by construction;
    /// this hunts for fields that were forgotten or ambiguously spelled.
    #[test]
    fn every_field_flip_changes_the_key(
        (kind_sel, kernel_sel, flow_sel, cores_sel) in
            (0usize..4, 0usize..8, 0usize..4, 0usize..4),
        (nn, mm, kk) in (1i64..6, 1i64..6, 1i64..6),
        (f32p, driver_legacy) in (any::<bool>(), any::<bool>()),
        toggles in [any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>(),
                    any::<bool>(), any::<bool>(), any::<bool>()],
        seed in 0u64..1000,
        flip in 0usize..11,
    ) {
        let base = request_from(
            kind_sel, kernel_sel, nn, mm, kk, f32p, flow_sel, toggles, cores_sel,
            driver_legacy, seed,
        );
        let flipped = match flip {
            0 => request_from(kind_sel + 1, kernel_sel, nn, mm, kk, f32p, flow_sel,
                              toggles, cores_sel, driver_legacy, seed),
            1 => request_from(kind_sel, kernel_sel + 1, nn, mm, kk, f32p, flow_sel,
                              toggles, cores_sel, driver_legacy, seed),
            2 => request_from(kind_sel, kernel_sel, nn + 1, mm, kk, f32p, flow_sel,
                              toggles, cores_sel, driver_legacy, seed),
            3 => request_from(kind_sel, kernel_sel, nn, mm + 1, kk, f32p, flow_sel,
                              toggles, cores_sel, driver_legacy, seed),
            4 => request_from(kind_sel, kernel_sel, nn, mm, kk, !f32p, flow_sel,
                              toggles, cores_sel, driver_legacy, seed),
            5 => request_from(kind_sel, kernel_sel, nn, mm, kk, f32p, flow_sel + 1,
                              toggles, cores_sel, driver_legacy, seed),
            6 => {
                let mut t = toggles;
                t[seed as usize % 7] = !t[seed as usize % 7];
                request_from(kind_sel, kernel_sel, nn, mm, kk, f32p, flow_sel, t,
                             cores_sel, driver_legacy, seed)
            }
            7 => request_from(kind_sel, kernel_sel, nn, mm, kk, f32p, flow_sel,
                              toggles, cores_sel + 1, driver_legacy, seed),
            8 => request_from(kind_sel, kernel_sel, nn, mm, kk, f32p, flow_sel,
                              toggles, cores_sel, !driver_legacy, seed),
            9 => request_from(kind_sel, kernel_sel, nn, mm, kk, f32p, flow_sel,
                              toggles, cores_sel, driver_legacy, seed + 1),
            _ => request_from(kind_sel, kernel_sel, nn, mm, kk + 1, f32p, flow_sel,
                              toggles, cores_sel, driver_legacy, seed),
        };
        // Some flips are no-ops through the constructors (`k` on a
        // non-matrix kernel, toggles/cores under a comparison flow, a
        // kind/kernel/flow selector that wraps to the same variant);
        // only a flip that actually changed the request must change
        // the key.
        if flipped != base {
            prop_assert_ne!(
                flipped.result_key(),
                base.result_key(),
                "distinct requests share a key:\n  {:?}\n  {:?}",
                base,
                flipped
            );
        } else {
            prop_assert_eq!(flipped.result_key(), base.result_key());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A cache hit is bit-identical to the cold miss that filled it,
    /// and to a cold miss computed by a completely fresh service.
    #[test]
    fn hit_is_bit_identical_to_cold_miss(
        kernel_sel in 0usize..8,
        f32p in any::<bool>(),
        toggles in [any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>(),
                    any::<bool>(), any::<bool>(), any::<bool>()],
        driver_legacy in any::<bool>(),
        seed in 0u64..100,
    ) {
        let request = request_from(
            0, // Compile jobs: the artifact exercises the whole pipeline
            kernel_sel, 3, 4, 2, f32p, 2, toggles, 0, driver_legacy, seed,
        );
        let service = CompileService::new(ServiceConfig { workers: 1, cache_capacity: 16, telemetry: true });
        let cold = service.run_one(request);
        let warm = service.run_one(request);
        prop_assert!(!cold.cached);
        prop_assert!(warm.cached, "second identical request must hit");
        prop_assert_eq!(cold.payload_text(), warm.payload_text());
        prop_assert_eq!(&cold.digest, &warm.digest);

        let fresh = CompileService::new(ServiceConfig { workers: 1, cache_capacity: 16, telemetry: true });
        let other = fresh.run_one(request);
        prop_assert!(!other.cached);
        prop_assert_eq!(cold.payload_text(), other.payload_text(),
                        "cold results must agree across service instances");
        prop_assert_eq!(&cold.digest, &other.digest);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// An LRU under heavy eviction pressure may forget entries but must
    /// never serve a value that disagrees with an always-remembering
    /// model map, and must never exceed its capacity.
    #[test]
    fn thrashing_lru_never_serves_stale(
        capacity in 1usize..5,
        ops in prop::collection::vec((any::<bool>(), 0u64..12, any::<u64>()), 1..120),
    ) {
        let mut cache: LruCache<u64> = LruCache::new(capacity);
        let mut model = std::collections::HashMap::new();
        let mut lookups = 0u64;
        for (is_insert, key_id, value) in ops {
            let key = format!("key-{key_id}");
            if is_insert {
                cache.insert(key.clone(), value);
                model.insert(key, value);
            } else {
                lookups += 1;
                if let Some(&got) = cache.get(&key) {
                    // A hit must match the model exactly — eviction may
                    // lose entries, but a resurrected or stale value is
                    // a cache-correctness bug.
                    prop_assert_eq!(Some(&got), model.get(&key),
                                    "stale hit for {}", key);
                }
            }
            prop_assert!(cache.len() <= capacity,
                         "{} entries exceed capacity {}", cache.len(), capacity);
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.hits + stats.misses, lookups);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Re-inserting a key that is already live in a cache AT capacity
    /// must update that entry in place: no unrelated entry may be
    /// displaced, the eviction counter must not move, and the
    /// re-inserted key becomes most-recently-used. (Regression shape:
    /// an eviction scan that runs before the key-presence check throws
    /// out an unrelated entry on every warm artifact re-submit.)
    #[test]
    fn at_capacity_reinsert_updates_in_place(
        capacity in 1usize..6,
        reinsert_sel in 0usize..6,
        values in prop::collection::vec(any::<u64>(), 2),
    ) {
        let mut cache: LruCache<u64> = LruCache::new(capacity);
        for i in 0..capacity {
            cache.insert(format!("key-{i}"), i as u64);
        }
        prop_assert_eq!(cache.len(), capacity);
        let evictions_before = cache.stats().evictions;

        // Overwrite one live key, twice, while full.
        let target = format!("key-{}", reinsert_sel % capacity);
        for &value in &values {
            cache.insert(target.clone(), value);
            prop_assert_eq!(cache.len(), capacity);
            prop_assert_eq!(cache.stats().evictions, evictions_before,
                            "re-insert of live `{}` displaced an entry", &target);
            // Every original key is still resident with its value.
            for i in 0..capacity {
                let key = format!("key-{i}");
                let expect = if key == target { value } else { i as u64 };
                prop_assert_eq!(cache.get(&key).copied(), Some(expect), "lost `{}`", &key);
            }
        }

        // The re-inserted key is most-recently-used: inserting one new
        // key evicts some other entry, never the target.
        cache.insert(target.clone(), 99);
        cache.insert("fresh".to_string(), 100);
        prop_assert_eq!(cache.stats().evictions, evictions_before + 1);
        if capacity > 1 {
            prop_assert_eq!(cache.get(&target).copied(), Some(99),
                            "re-insert did not refresh recency of `{}`", &target);
        }
        prop_assert_eq!(cache.get("fresh").copied(), Some(100));
    }
}
