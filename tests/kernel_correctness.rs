//! End-to-end correctness: every kernel of the suite, compiled with
//! every flow (including each rung of the Table 3 ablation ladder), must
//! produce bit-exact results on the Snitch simulator.

use mlb_core::{Flow, PipelineOptions};
use mlb_kernels::{compile_and_run, Instance, Kind, Precision, Shape};

fn shapes_for(kind: Kind) -> Vec<Shape> {
    match kind {
        Kind::MatMul => vec![Shape::nmk(1, 5, 8), Shape::nmk(2, 8, 12), Shape::nmk(4, 16, 8)],
        Kind::MatMulT => vec![Shape::nmk(2, 4, 8), Shape::nmk(4, 16, 16)],
        _ => vec![Shape::nm(4, 4), Shape::nm(4, 12), Shape::nm(8, 8)],
    }
}

fn check(instance: Instance, flow: Flow) {
    match compile_and_run(&instance, flow, 0xC0FFEE) {
        Ok(outcome) => {
            assert!(outcome.counters.cycles > 0);
            assert_eq!(outcome.output.len(), *instance.buffer_sizes().last().unwrap());
        }
        Err(e) => panic!("{instance} under {flow:?}: {e}"),
    }
}

#[test]
fn all_kernels_full_pipeline() {
    for kind in Kind::all() {
        for shape in shapes_for(kind) {
            check(Instance::new(kind, shape, Precision::F64), Flow::Ours(PipelineOptions::full()));
        }
    }
}

#[test]
fn all_kernels_baseline_pipeline() {
    for kind in Kind::all() {
        for shape in shapes_for(kind) {
            check(
                Instance::new(kind, shape, Precision::F64),
                Flow::Ours(PipelineOptions::baseline()),
            );
        }
    }
}

#[test]
fn all_kernels_mlir_like_flow() {
    for kind in Kind::all() {
        for shape in shapes_for(kind) {
            check(Instance::new(kind, shape, Precision::F64), Flow::MlirLike);
        }
    }
}

#[test]
fn all_kernels_clang_like_flow() {
    for kind in Kind::all() {
        for shape in shapes_for(kind) {
            check(Instance::new(kind, shape, Precision::F64), Flow::ClangLike);
        }
    }
}

#[test]
fn matmul_ablation_ladder_is_correct_at_every_rung() {
    let instance = Instance::new(Kind::MatMul, Shape::nmk(1, 5, 40), Precision::F64);
    for (label, opts) in PipelineOptions::ablation_ladder() {
        match compile_and_run(&instance, Flow::Ours(opts), 42) {
            Ok(_) => {}
            Err(e) => panic!("ablation rung `{label}`: {e}"),
        }
    }
}

#[test]
fn f32_kernels_full_pipeline() {
    for (kind, shape) in [
        (Kind::Sum, Shape::nm(4, 8)),
        (Kind::Relu, Shape::nm(4, 8)),
        (Kind::MatMulT, Shape::nmk(4, 16, 16)),
    ] {
        check(Instance::new(kind, shape, Precision::F32), Flow::Ours(PipelineOptions::full()));
    }
}

#[test]
fn repeated_runs_are_deterministic() {
    let instance = Instance::new(Kind::Conv3x3, Shape::nm(4, 4), Precision::F64);
    let a = compile_and_run(&instance, Flow::Ours(PipelineOptions::full()), 1).unwrap();
    let b = compile_and_run(&instance, Flow::Ours(PipelineOptions::full()), 1).unwrap();
    assert_eq!(a.counters, b.counters, "bare-metal platform must be deterministic");
    assert_eq!(a.output, b.output);
}
