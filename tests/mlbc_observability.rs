//! End-to-end test of the driver's observability flags: runs the real
//! `mlbc` binary and validates the `--trace-json` report by parsing it
//! back with the same hand-rolled JSON module, plus the `--pass-timing`
//! table and `--print-ir-after-*` dumps.

use std::path::{Path, PathBuf};
use std::process::Command;

use mlbe::json::Json;

/// ReLU over 16 doubles in the generic textual syntax.
const RELU_MLIR: &str = r#"
"builtin.module"() ({
^bb0:
  "func.func"() ({
  ^bb1(%0: memref<16xf64>, %1: memref<16xf64>):
    %2 = "arith.constant"() {value = 0.0} : () -> (f64)
    "linalg.generic"(%0, %1) ({
    ^bb2(%3: f64, %4: f64):
      %5 = "arith.maximumf"(%3, %2) : (f64, f64) -> (f64)
      "linalg.yield"(%5) : (f64) -> ()
    }) {indexing_maps = [affine_map<(d0) -> (d0)>, affine_map<(d0) -> (d0)>],
        iterator_types = iterators<parallel>,
        num_inputs = 1} : (memref<16xf64>, memref<16xf64>) -> ()
    "func.return"() : () -> ()
  }) {sym_name = @relu, function_type = (memref<16xf64>, memref<16xf64>) -> ()} : () -> ()
}) : () -> ()
"#;

/// A scratch directory unique to this test binary run.
fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mlbc-obs-{}-{label}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_kernel(dir: &Path) -> PathBuf {
    let path = dir.join("relu.mlir");
    std::fs::write(&path, RELU_MLIR).unwrap();
    path
}

fn expect_num(obj: &Json, key: &str) -> f64 {
    obj.get(key).and_then(Json::as_f64).unwrap_or_else(|| panic!("number `{key}` in {obj}"))
}

#[test]
fn trace_json_report_is_valid_and_consistent() {
    let dir = scratch("trace");
    let kernel = write_kernel(&dir);
    let out_path = dir.join("out.json");

    let output = Command::new(env!("CARGO_BIN_EXE_mlbc"))
        .arg(&kernel)
        .arg("--pass-timing")
        .args(["--trace-json", out_path.to_str().unwrap()])
        .output()
        .expect("mlbc runs");
    assert!(output.status.success(), "stderr: {}", String::from_utf8_lossy(&output.stderr));

    // stdout still carries the assembly.
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(stdout.contains("relu:"), "assembly on stdout: {stdout}");
    assert!(stdout.contains("ret"), "assembly on stdout: {stdout}");

    // --pass-timing prints a human-readable table on stderr.
    let stderr = String::from_utf8(output.stderr).unwrap();
    assert!(stderr.contains("Pass execution timing"), "timing table: {stderr}");
    assert!(stderr.contains("convert-linalg-to-memref-stream"), "timing table: {stderr}");

    // The report parses back with the same JSON implementation.
    let text = std::fs::read_to_string(&out_path).unwrap();
    let report = Json::parse(&text).expect("valid JSON");

    assert_eq!(expect_num(&report, "version"), 1.0);
    assert_eq!(report.get("flow").and_then(Json::as_str), Some("ours"));

    // Per-pass timings and op-count deltas, consistent with the total.
    let passes = report.get("passes").and_then(Json::as_array).expect("passes array");
    assert!(passes.len() >= 6, "a multi-stage pipeline, got {}", passes.len());
    let mut nanos_sum = 0.0;
    for pass in passes {
        assert!(pass.get("pass").and_then(Json::as_str).is_some());
        nanos_sum += expect_num(pass, "nanos");
        let before = expect_num(pass, "ops_before");
        let after = expect_num(pass, "ops_after");
        assert!(before >= 1.0 && after >= 1.0);
        expect_num(pass, "pattern_applications");
        expect_num(pass, "dce_erased");
    }
    assert_eq!(nanos_sum, expect_num(&report, "total_pass_nanos"));
    // The lowering to loops must grow the IR; at least one pass shrinks it.
    assert!(passes.iter().any(|p| expect_num(p, "ops_after") > expect_num(p, "ops_before")));
    assert!(passes.iter().any(|p| expect_num(p, "ops_after") < expect_num(p, "ops_before")));

    // Simulated kernel counters and occupancy.
    let kernels = report.get("kernels").and_then(Json::as_array).expect("kernels array");
    assert_eq!(kernels.len(), 1);
    let relu = &kernels[0];
    assert_eq!(relu.get("name").and_then(Json::as_str), Some("relu"));
    let counters = relu.get("counters").expect("counters object");
    let cycles = expect_num(counters, "cycles");
    assert!(cycles > 0.0);
    assert!(expect_num(counters, "fpu_busy_cycles") <= cycles);
    assert_eq!(expect_num(counters, "flops"), 16.0, "one max per element");
    assert_eq!(expect_num(counters, "ssr_reads"), 16.0);
    assert_eq!(expect_num(counters, "ssr_writes"), 16.0);
    assert_eq!(expect_num(relu, "trace_length"), expect_num(counters, "instructions"));

    let occupancy = relu.get("occupancy").expect("occupancy object");
    for key in [
        "fpu_utilization",
        "flops_per_cycle",
        "frep_coverage",
        "ssr_read_density",
        "ssr_write_density",
    ] {
        let v = expect_num(occupancy, key);
        assert!((0.0..=1.0).contains(&v), "{key} = {v} out of range");
    }

    let stalls = relu.get("stall_cycles").expect("stall histogram");
    for key in ["raw-int", "raw-fp", "fpu-busy", "branch-redirect", "ssr-backpressure"] {
        expect_num(stalls, key);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn print_ir_after_all_writes_numbered_dumps() {
    let dir = scratch("dumps");
    let kernel = write_kernel(&dir);
    let dump_dir = dir.join("ir");

    let output = Command::new(env!("CARGO_BIN_EXE_mlbc"))
        .arg(&kernel)
        .arg(format!("--print-ir-after-all={}", dump_dir.display()))
        .output()
        .expect("mlbc runs");
    assert!(output.status.success(), "stderr: {}", String::from_utf8_lossy(&output.stderr));

    let mut names: Vec<String> = std::fs::read_dir(&dump_dir)
        .expect("dump dir created")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    assert!(names.len() >= 6, "one dump per pass, got {names:?}");
    assert!(names[0].starts_with("00-"), "numbered in pipeline order: {names:?}");
    assert!(names.iter().all(|n| n.ends_with(".mlir")), "{names:?}");
    // Each dump holds printable IR rooted at the module.
    for name in &names {
        let text = std::fs::read_to_string(dump_dir.join(name)).unwrap();
        assert!(text.contains("builtin.module"), "{name} is an IR dump");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn print_ir_after_change_skips_no_op_passes() {
    let dir = scratch("change");
    let kernel = write_kernel(&dir);

    let all = Command::new(env!("CARGO_BIN_EXE_mlbc"))
        .arg(&kernel)
        .arg("--print-ir-after-all")
        .output()
        .expect("mlbc runs");
    let changed = Command::new(env!("CARGO_BIN_EXE_mlbc"))
        .arg(&kernel)
        .arg("--print-ir-after-change")
        .output()
        .expect("mlbc runs");
    assert!(all.status.success() && changed.status.success());
    let count = |out: &[u8]| String::from_utf8_lossy(out).matches("IR after").count();
    let (all, changed) = (count(&all.stderr), count(&changed.stderr));
    assert!(changed < all, "on-change dumps ({changed}) must skip no-op passes ({all} total)");
    assert!(changed >= 6, "the pipeline changes the IR at least 6 times, got {changed}");
    std::fs::remove_dir_all(&dir).ok();
}
