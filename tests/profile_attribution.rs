//! End-to-end guarantees of the source-attributed profiler: every
//! retired instruction of a fully lowered kernel maps back to a source
//! location, and the per-location cycle attribution is exact (sums to
//! the cycle counter with nothing left over). Also exercises the real
//! `mlbc profile` binary and validates its JSON outputs with the same
//! hand-rolled JSON module CI uses.

use std::path::PathBuf;
use std::process::Command;

use mlb_core::pipeline::{compile, Flow};
use mlb_ir::{parse_module_with_locations, Context, DialectRegistry};
use mlb_kernels::Profile;
use mlb_sim::{assemble, Machine, TraceEntry};
use mlbe::json::Json;

const MATMUL_PATH: &str = "examples/matmul.mlir";
const MATMUL_MLIR: &str = include_str!("../examples/matmul.mlir");

fn full_registry() -> DialectRegistry {
    let mut r = DialectRegistry::new();
    mlb_dialects::register_all(&mut r);
    mlb_riscv::register_all(&mut r);
    r
}

/// Parses the example with locations, compiles it with the multi-level
/// flow, and runs it traced on a single machine.
fn compile_and_trace() -> (Vec<mlb_ir::Location>, mlb_sim::PerfCounters, Vec<TraceEntry>) {
    let mut ctx = Context::new();
    let module = parse_module_with_locations(&mut ctx, MATMUL_MLIR, MATMUL_PATH).unwrap();
    full_registry().verify(&ctx, module).unwrap();
    let compiled = compile(&mut ctx, module, Flow::Ours(Default::default())).unwrap();
    let program = assemble(&compiled.assembly).unwrap();

    // Operands: A (8x8), B (8x4), C (8x4), f64, packed from TCDM_BASE.
    let mut machine = Machine::new();
    machine.enable_trace();
    let a_base = mlb_isa::TCDM_BASE;
    let b_base = a_base + 8 * 8 * 8;
    let c_base = b_base + 8 * 4 * 8;
    let fill = |n: usize| (0..n).map(|j| (j % 17) as f64 * 0.25 - 2.0).collect::<Vec<f64>>();
    machine.write_f64_slice(a_base, &fill(64)).unwrap();
    machine.write_f64_slice(b_base, &fill(32)).unwrap();
    machine.write_f64_slice(c_base, &fill(32)).unwrap();
    let counters = machine.call(&program, "matmul", &[a_base, b_base, c_base]).unwrap();
    (compiled.source_map, counters, machine.take_trace().unwrap_or_default())
}

#[test]
fn every_retired_instruction_maps_to_a_source_location() {
    let (source_map, _counters, trace) = compile_and_trace();
    assert!(!trace.is_empty());
    for entry in &trace {
        let loc = source_map
            .get(entry.pc)
            .unwrap_or_else(|| panic!("pc {} outside the source map", entry.pc));
        assert!(
            loc.is_known(),
            "instruction `{}` at pc {} has no source location",
            entry.instr,
            entry.pc
        );
        let label = loc.source_label().expect("known locations resolve to a file:line");
        assert!(label.starts_with(MATMUL_PATH), "unexpected label {label}");
    }
}

#[test]
fn per_location_cycle_sums_equal_the_cycle_counter() {
    let (source_map, counters, trace) = compile_and_trace();
    let profile = Profile::from_trace(&trace, &source_map);
    assert_eq!(profile.total_cycles, counters.cycles, "attribution must be exact");
    assert_eq!(profile.unattributed_cycles, 0, "no cycles may land on <unknown>");
    let row_sum: u64 = profile.rows.iter().map(|(_, row)| row.cycles).sum();
    assert_eq!(row_sum, profile.total_cycles);
    let instr_sum: u64 = profile.rows.iter().map(|(_, row)| row.instructions).sum();
    assert_eq!(instr_sum, counters.instructions);
    // The FLOP-carrying row exists and is the matmul body line.
    let hot = &profile.rows[0];
    assert!(hot.1.flops > 0, "hottest row must carry the FLOPs");
    assert!(hot.0.starts_with(MATMUL_PATH));
}

/// A scratch directory unique to this test binary run.
fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mlbc-prof-{}-{label}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn mlbc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mlbc"))
}

fn run_ok(cmd: &mut Command) -> String {
    let out = cmd.output().unwrap();
    assert!(
        out.status.success(),
        "mlbc failed: {}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

#[test]
fn profile_json_is_valid_and_fully_attributed() {
    let stdout = run_ok(mlbc().current_dir(env!("CARGO_MANIFEST_DIR")).args([
        "profile",
        MATMUL_PATH,
        "--profile-json",
        "-",
    ]));
    let report = Json::parse(&stdout).expect("profile JSON must parse");
    let kernels = report.get("kernels").and_then(Json::as_array).unwrap();
    assert_eq!(kernels.len(), 1);
    let k = &kernels[0];
    assert_eq!(k.get("name").and_then(Json::as_str), Some("matmul"));
    let total = k.get("total_cycles").and_then(Json::as_u64).unwrap();
    assert!(total > 0);
    assert_eq!(k.get("unattributed_cycles").and_then(Json::as_u64), Some(0));
    let rows = k.get("rows").and_then(Json::as_array).unwrap();
    assert!(!rows.is_empty());
    let row_sum: u64 = rows.iter().map(|r| r.get("cycles").and_then(Json::as_u64).unwrap()).sum();
    assert_eq!(row_sum, total);
    for row in rows {
        let label = row.get("location").and_then(Json::as_str).unwrap();
        assert!(label.starts_with(MATMUL_PATH), "unattributed row {label}");
    }
}

#[test]
fn cluster_chrome_trace_has_per_hart_spans_and_barrier_waits() {
    // 3 cores over 8 matmul rows shard unevenly, so the lightly-loaded
    // harts genuinely wait at the final barrier while the last-arriving
    // hart is released immediately.
    let dir = scratch("chrome");
    let trace_path = dir.join("trace.json");
    run_ok(mlbc().current_dir(env!("CARGO_MANIFEST_DIR")).args([
        "profile",
        MATMUL_PATH,
        "--cores",
        "3",
        "--chrome-trace",
        trace_path.to_str().unwrap(),
    ]));
    let text = std::fs::read_to_string(&trace_path).unwrap();
    let doc = Json::parse(&text).expect("chrome trace JSON must parse");
    let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
    assert!(!events.is_empty());
    let spans: Vec<&Json> =
        events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("X")).collect();
    // Every hart of the 3-core cluster contributes spans.
    let tids: std::collections::BTreeSet<u64> =
        spans.iter().filter_map(|e| e.get("tid").and_then(Json::as_u64)).collect();
    assert_eq!(tids, (0..3).collect());
    // Barrier-wait intervals are exported per waiting hart. The last
    // hart to arrive is released immediately and must NOT contribute a
    // fabricated zero-cycle wait, so only the two early harts show one.
    let barrier_waits = spans
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("barrier wait"))
        .count();
    assert_eq!(barrier_waits, 2, "one barrier-wait span per hart that actually waited");
    for span in &spans {
        assert!(span.get("dur").and_then(Json::as_u64).unwrap() >= 1);
        let _ts = span.get("ts").and_then(Json::as_u64).expect("spans carry a timestamp");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression: a single-core profile has no barriers to wait on, so its
/// chrome trace must not fabricate zero-cycle `barrier wait` rows out
/// of the cluster merge path's empty intervals.
#[test]
fn single_core_chrome_trace_has_no_barrier_waits() {
    let dir = scratch("chrome-1core");
    let trace_path = dir.join("trace.json");
    run_ok(mlbc().current_dir(env!("CARGO_MANIFEST_DIR")).args([
        "profile",
        MATMUL_PATH,
        "--cores",
        "1",
        "--chrome-trace",
        trace_path.to_str().unwrap(),
    ]));
    let text = std::fs::read_to_string(&trace_path).unwrap();
    let doc = Json::parse(&text).expect("chrome trace JSON must parse");
    let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
    let barrier_waits = events
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("barrier wait"))
        .count();
    assert_eq!(barrier_waits, 0, "single-core runs never wait on a barrier");
    // The trace still carries real compute spans with positive widths.
    assert!(events.iter().any(|e| e.get("name").and_then(Json::as_str) == Some("compute")));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression: a zero budget is a CLI error up front, not an empty
/// schedule enumeration that panics picking a best candidate.
#[test]
fn tune_budget_zero_is_rejected_upfront() {
    let out = mlbc()
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .args(["tune", "matmul-4x4x4", "--budget", "0"])
        .output()
        .unwrap();
    assert!(!out.status.success(), "--budget 0 must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--budget") && stderr.contains("positive"),
        "error must name the flag and the constraint: {stderr}"
    );
}
