//! Telemetry suite for the compile service.
//!
//! The recorder's contract is that observation is invisible: responses
//! are byte-identical with telemetry on or off, while the recorded
//! counters reconcile exactly with the cache layers' own statistics and
//! every lifecycle span nests (submitted ≤ started ≤ finished, worker
//! busy intervals enclose the jobs they executed, the Chrome trace
//! parses with the service's own JSON parser).

use mlb_core::{Flow, PipelineOptions};
use mlb_ir::DriverMode;
use mlb_kernels::{Instance, Kind, Precision, Shape, TuneParams};
use mlbe::json::Json;
use mlbe::service::{CacheLayer, CompileService, JobKind, JobRequest, ServiceConfig};

/// A deterministic batch of `n` mixed jobs over the four production job
/// kinds (mirrors the concurrency suite's batch).
fn mixed_batch(n: usize) -> Vec<JobRequest> {
    let job_kinds = [JobKind::Compile, JobKind::Simulate, JobKind::Difftest, JobKind::Profile];
    (0..n)
        .map(|i| {
            let kernel = Kind::all()[i % 8];
            let shape = match kernel {
                Kind::MatMul | Kind::MatMulT => Shape::nmk(2, 4, 3),
                _ => Shape::nm(3, 4),
            };
            let precision = if (i / 8) % 2 == 0 { Precision::F64 } else { Precision::F32 };
            let kind = job_kinds[(i + i / 8) % 4];
            let driver = if i % 6 == 3 { DriverMode::LegacyRewalk } else { DriverMode::Worklist };
            let flow = if kind == JobKind::Difftest && i % 5 == 0 {
                Flow::MlirLike
            } else if kind == JobKind::Difftest && i % 7 == 0 {
                Flow::ClangLike
            } else {
                let mut opts =
                    if i % 9 == 4 { PipelineOptions::baseline() } else { PipelineOptions::full() };
                if kind == JobKind::Simulate {
                    opts.cores = [1, 2, 4][(i / 4) % 3];
                }
                Flow::Ours(opts)
            };
            JobRequest {
                id: (i + 1) as u64,
                kind,
                instance: Instance::new(kernel, shape, precision),
                flow,
                driver,
                seed: (i % 3) as u64,
            }
        })
        .collect()
}

/// Telemetry cache-event counts reconcile exactly with the cache
/// layers' own hit/miss statistics across a cold+warm 64-job mixed
/// batch, and every counter is monotone between the rounds.
#[test]
fn cache_events_reconcile_with_cache_stats_and_stay_monotone() {
    let requests = mixed_batch(64);
    let service =
        CompileService::new(ServiceConfig { workers: 4, cache_capacity: 256, telemetry: true });

    let cold = service.run_batch(&requests);
    assert!(cold.iter().all(|r| r.payload.is_ok()), "cold round must succeed");
    let (a1, e1, r1) = service.cache_stats();

    let warm = service.run_batch(&requests);
    assert!(warm.iter().all(|r| r.cached), "warm round must be all cache hits");
    let (a2, e2, r2) = service.cache_stats();

    // Monotonicity: a second round can only grow the counters.
    for (first, second) in [(&a1, &a2), (&e1, &e2), (&r1, &r2)] {
        assert!(second.hits >= first.hits);
        assert!(second.misses >= first.misses);
        assert!(second.insertions >= first.insertions);
        assert!(second.evictions >= first.evictions);
        assert_eq!(second.lookups(), second.hits + second.misses);
        // Errors are never cached and nothing was evicted, so every
        // miss inserted exactly one entry.
        assert_eq!(second.evictions, 0);
        assert_eq!(second.misses, second.insertions);
        assert!(second.resident_bytes > 0, "sizers must report resident bytes");
    }

    // Telemetry's per-layer event stream counts the same lookups the
    // caches counted themselves.
    let telemetry = service.telemetry().expect("telemetry enabled");
    let events = telemetry.cache_events();
    for (layer, stats) in
        [(CacheLayer::Artifact, &a2), (CacheLayer::Predecode, &e2), (CacheLayer::Result, &r2)]
    {
        let hits = events.iter().filter(|e| e.layer == layer && e.hit).count() as u64;
        let misses = events.iter().filter(|e| e.layer == layer && !e.hit).count() as u64;
        assert_eq!(hits, stats.hits, "{} hit events diverge from CacheStats", layer.name());
        assert_eq!(misses, stats.misses, "{} miss events diverge from CacheStats", layer.name());
    }

    // Job totals: every submitted job finished, none failed, and the
    // warm round's responses were all served from cache.
    let jobs = telemetry.jobs();
    assert_eq!(jobs.len(), 128, "two rounds of 64 jobs each");
    assert!(jobs.iter().all(|j| j.ok), "no recorded job may be marked failed");
    assert_eq!(jobs.iter().filter(|j| j.cached).count(), 64, "warm round served from cache");
}

/// Every job's lifecycle span nests: submitted ≤ started ≤ finished,
/// queue wait and latency are consistent, and each worker's busy
/// intervals both enclose the jobs it executed and are ≥95% accounted
/// for by job execution time.
#[test]
fn lifecycle_spans_nest_and_busy_time_is_covered_by_jobs() {
    let requests = mixed_batch(48);
    let service =
        CompileService::new(ServiceConfig { workers: 3, cache_capacity: 256, telemetry: true });
    let responses = service.run_batch(&requests);
    assert!(responses.iter().all(|r| r.payload.is_ok()));

    let telemetry = service.telemetry().expect("telemetry enabled");
    let jobs = telemetry.jobs();
    let busy = telemetry.worker_busy();
    assert_eq!(busy.len(), 3);

    let mut executed_us = vec![0u64; busy.len()];
    for job in &jobs {
        let started = job.started_us.expect("batch jobs all start");
        let finished = job.finished_us.expect("batch jobs all finish");
        assert!(job.submitted_us <= started, "job {}: queued before submitted", job.id);
        assert!(started <= finished, "job {}: finished before started", job.id);
        assert_eq!(job.queue_wait_us(), Some(started - job.submitted_us));
        assert_eq!(job.latency_us(), Some(finished - job.submitted_us));
        for &(_, phase_start, phase_end) in &job.phases {
            assert!(started <= phase_start && phase_end <= finished + 1, "phase escapes job span");
        }
        // Worker-executed jobs sit inside one of that worker's busy
        // intervals (the busy span brackets dequeue → completion).
        if let Some(worker) = job.worker {
            assert!(
                busy[worker].iter().any(|&(s, e)| s <= started && finished <= e),
                "job {} not enclosed by any busy span of worker {worker}",
                job.id
            );
            executed_us[worker] += finished - started;
        }
    }

    // ≥95% of each worker's busy time is job execution, not recorder
    // bookkeeping (the acceptance bound on telemetry's trace overhead).
    for (worker, spans) in busy.iter().enumerate() {
        let busy_us: u64 = spans.iter().map(|&(s, e)| e - s).sum();
        if busy_us == 0 {
            continue;
        }
        assert!(
            executed_us[worker] * 100 >= busy_us * 95,
            "worker {worker}: jobs cover {}/{busy_us}us of busy time",
            executed_us[worker]
        );
    }
}

/// The exported Chrome trace parses with the service's own JSON parser
/// and every complete event carries a non-negative duration and a
/// plausible track.
#[test]
fn chrome_trace_round_trips_through_the_json_parser() {
    let requests = mixed_batch(32);
    let service =
        CompileService::new(ServiceConfig { workers: 2, cache_capacity: 256, telemetry: true });
    service.run_batch(&requests);
    service.run_batch(&requests); // warm round: cache-hit instants

    let telemetry = service.telemetry().expect("telemetry enabled");
    let text = telemetry.chrome_trace().into_json().to_string();
    let doc = Json::parse(&text).expect("trace must parse");
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        panic!("trace has no traceEvents array")
    };

    let mut job_spans = 0usize;
    let mut cache_instants = 0usize;
    for event in events {
        let ph = event.get("ph").and_then(Json::as_str).expect("event has ph");
        match ph {
            "X" => {
                assert!(event.get("ts").and_then(Json::as_u64).is_some(), "span has integer ts");
                assert!(event.get("dur").and_then(Json::as_u64).is_some(), "span has dur >= 0");
                if event.get("cat").and_then(Json::as_str) == Some("job") {
                    job_spans += 1;
                }
            }
            "i" => {
                if event.get("cat").and_then(Json::as_str) == Some("cache") {
                    cache_instants += 1;
                }
            }
            "M" => {}
            other => panic!("unexpected event phase {other}"),
        }
    }
    assert_eq!(job_spans, 64, "one job span per completed job");
    assert!(cache_instants > 0, "warm round must leave cache-hit instants");
}

/// Responses are byte-identical with the recorder on or off — the
/// telemetry-transparency half of the tentpole — including through the
/// tune fan-out path.
#[test]
fn responses_are_byte_identical_with_telemetry_off() {
    let mut requests = mixed_batch(24);
    requests.push(JobRequest {
        id: 99,
        kind: JobKind::Tune(TuneParams { cores_max: 2, budget: 6 }),
        instance: Instance::new(Kind::MatMul, Shape::nmk(2, 4, 3), Precision::F64),
        flow: Flow::Ours(PipelineOptions::full()),
        driver: DriverMode::Worklist,
        seed: 0,
    });

    let on =
        CompileService::new(ServiceConfig { workers: 4, cache_capacity: 128, telemetry: true });
    let off =
        CompileService::new(ServiceConfig { workers: 4, cache_capacity: 128, telemetry: false });
    assert!(on.telemetry().is_some());
    assert!(off.telemetry().is_none());

    let with = on.run_batch(&requests);
    let without = off.run_batch(&requests);
    assert_eq!(with.len(), without.len());
    for (request, (a, b)) in requests.iter().zip(with.iter().zip(&without)) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.cached, b.cached, "job {}: cache flag diverged", request.id);
        assert_eq!(a.digest, b.digest, "job {}: digest diverged", request.id);
        assert_eq!(
            a.payload_text(),
            b.payload_text(),
            "job {} ({:?}): payload diverged under telemetry",
            request.id,
            request.kind
        );
    }
}

/// The in-band `stats` job reports the same counters the service
/// exposes out-of-band, and its response is never served from (or
/// inserted into) the result cache.
#[test]
fn stats_job_reports_live_counters_and_bypasses_the_result_cache() {
    let requests = mixed_batch(8);
    let service =
        CompileService::new(ServiceConfig { workers: 2, cache_capacity: 64, telemetry: true });
    service.run_batch(&requests);

    let stats_request = || JobRequest {
        id: 500,
        kind: JobKind::Stats,
        instance: Instance::new(Kind::Fill, Shape::nm(2, 2), Precision::F64),
        flow: Flow::Ours(PipelineOptions::full()),
        driver: DriverMode::Worklist,
        seed: 0,
    };
    let first = service.run_one(stats_request());
    let payload = first.payload.as_ref().expect("stats job succeeds");
    assert!(!first.cached, "stats must not be served from cache");

    let (artifacts, execs, results) = service.cache_stats();
    for (layer, stats) in [("artifact", artifacts), ("predecode", execs), ("result", results)] {
        let reported = payload.get("caches").and_then(|c| c.get(layer)).expect("layer reported");
        assert_eq!(reported.get("hits").and_then(Json::as_u64), Some(stats.hits), "{layer} hits");
        assert_eq!(
            reported.get("misses").and_then(Json::as_u64),
            Some(stats.misses),
            "{layer} misses"
        );
        assert_eq!(
            reported.get("insertions").and_then(Json::as_u64),
            Some(stats.insertions),
            "{layer} insertions"
        );
        assert_eq!(
            reported.get("lookups").and_then(Json::as_u64),
            Some(stats.lookups()),
            "{layer} lookups"
        );
    }
    let summary = payload.get("telemetry").expect("telemetry summary present");
    assert!(
        summary.get("jobs").and_then(|j| j.get("submitted")).and_then(Json::as_u64).is_some(),
        "summary carries job totals"
    );

    // A second stats job recomputes: the result cache saw no stats
    // insertion, so it cannot come back as a hit.
    let second = service.run_one(stats_request());
    assert!(!second.cached, "stats responses must never be cached");
    let (.., results_after) = service.cache_stats();
    assert_eq!(
        results_after.lookups(),
        service
            .run_one(stats_request())
            .payload
            .unwrap()
            .get("caches")
            .and_then(|c| c.get("result"))
            .and_then(|r| r.get("lookups"))
            .and_then(Json::as_u64)
            .unwrap(),
        "stats jobs must not probe the result cache"
    );
}
