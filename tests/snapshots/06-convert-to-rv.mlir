"builtin.module"() ({
^bb0:
  "rv_func.func"() ({
  ^bb1(%0: !rv.reg<a0>, %1: !rv.reg<a1>, %2: !rv.reg<a2>):
    %3 = "rv.get_register"() : () -> (!rv.reg<zero>)
    %4 = "rv.li"() {imm = 1} : () -> (!rv.reg)
    "snitch_stream.streaming_region"(%0, %1, %2) ({
    ^bb2(%5: !rv.freg<ft0>, %6: !rv.freg<ft1>, %7: !rv.freg<ft2>):
      %8 = "rv.get_register"() : () -> (!rv.reg<zero>)
      %9 = "rv.fcvt.d.w"(%8) : (!rv.reg<zero>) -> (!rv.freg)
      %10 = "rv.li"() {imm = 8} : () -> (!rv.reg)
      %11, %12, %13, %14 = "rv_scf.for"(%3, %10, %4, %9, %9, %9, %9) ({
      ^bb3(%15: !rv.reg, %16: !rv.freg, %17: !rv.freg, %18: !rv.freg, %19: !rv.freg):
        %20 = "rv.fmul.d"(%5, %6) : (!rv.freg<ft0>, !rv.freg<ft1>) -> (!rv.freg)
        %21 = "rv.fadd.d"(%20, %16) : (!rv.freg, !rv.freg) -> (!rv.freg)
        %22 = "rv.fmul.d"(%5, %6) : (!rv.freg<ft0>, !rv.freg<ft1>) -> (!rv.freg)
        %23 = "rv.fadd.d"(%22, %17) : (!rv.freg, !rv.freg) -> (!rv.freg)
        %24 = "rv.fmul.d"(%5, %6) : (!rv.freg<ft0>, !rv.freg<ft1>) -> (!rv.freg)
        %25 = "rv.fadd.d"(%24, %18) : (!rv.freg, !rv.freg) -> (!rv.freg)
        %26 = "rv.fmul.d"(%5, %6) : (!rv.freg<ft0>, !rv.freg<ft1>) -> (!rv.freg)
        %27 = "rv.fadd.d"(%26, %19) : (!rv.freg, !rv.freg) -> (!rv.freg)
        "rv_scf.yield"(%21, %23, %25, %27) : (!rv.freg, !rv.freg, !rv.freg, !rv.freg) -> ()
      }) : (!rv.reg<zero>, !rv.reg, !rv.reg, !rv.freg, !rv.freg, !rv.freg, !rv.freg) -> (!rv.freg, !rv.freg, !rv.freg, !rv.freg)
      "snitch_stream.write"(%11, %7) : (!rv.freg, !rv.freg<ft2>) -> ()
      "snitch_stream.write"(%12, %7) : (!rv.freg, !rv.freg<ft2>) -> ()
      "snitch_stream.write"(%13, %7) : (!rv.freg, !rv.freg<ft2>) -> ()
      "snitch_stream.write"(%14, %7) : (!rv.freg, !rv.freg<ft2>) -> ()
    }) {num_inputs = 2, patterns = [#snitch_stream.pattern<ub = [8], strides = [8], repeat = 3>, #snitch_stream.pattern<ub = [32], strides = [8], repeat = 0>, #snitch_stream.pattern<ub = [4], strides = [8], repeat = 0>]} : (!rv.reg<a0>, !rv.reg<a1>, !rv.reg<a2>) -> ()
    "rv_func.ret"() : () -> ()
  }) {sym_name = @matmul} : () -> ()
}) : () -> ()
