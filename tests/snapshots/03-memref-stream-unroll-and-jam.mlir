"builtin.module"() ({
^bb0:
  "func.func"() ({
  ^bb1(%0: memref<1x8xf64>, %1: memref<8x4xf64>, %2: memref<1x4xf64>):
    %3 = "arith.constant"() {value = 0.0} : () -> (f64)
    "memref_stream.generic"(%0, %1, %2, %3) ({
    ^bb2(%4: f64, %5: f64, %6: f64, %7: f64, %8: f64, %9: f64, %10: f64, %11: f64, %12: f64, %13: f64, %14: f64, %15: f64):
      %16 = "arith.mulf"(%4, %8) : (f64, f64) -> (f64)
      %17 = "arith.addf"(%16, %12) : (f64, f64) -> (f64)
      %18 = "arith.mulf"(%5, %9) : (f64, f64) -> (f64)
      %19 = "arith.addf"(%18, %13) : (f64, f64) -> (f64)
      %20 = "arith.mulf"(%6, %10) : (f64, f64) -> (f64)
      %21 = "arith.addf"(%20, %14) : (f64, f64) -> (f64)
      %22 = "arith.mulf"(%7, %11) : (f64, f64) -> (f64)
      %23 = "arith.addf"(%22, %15) : (f64, f64) -> (f64)
      "memref_stream.yield"(%17, %19, %21, %23) : (f64, f64, f64, f64) -> ()
    }) {bounds = dense<[1, 8, 4]>, indexing_maps = [affine_map<(d0, d1, d2) -> (d0, d1)>, affine_map<(d0, d1, d2) -> (d1, d2)>, affine_map<(d0, d1, d2) -> (d0, d2)>], iterator_types = iterators<parallel, reduction, interleaved>, num_inits = 1, num_inputs = 2, scalar_replaced = unit} : (memref<1x8xf64>, memref<8x4xf64>, memref<1x4xf64>, f64) -> ()
    "func.return"() : () -> ()
  }) {function_type = (memref<1x8xf64>, memref<8x4xf64>, memref<1x4xf64>) -> (), sym_name = @matmul} : () -> ()
}) : () -> ()
