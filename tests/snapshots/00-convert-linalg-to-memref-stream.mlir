"builtin.module"() ({
^bb0:
  "func.func"() ({
  ^bb1(%0: memref<1x8xf64>, %1: memref<8x4xf64>, %2: memref<1x4xf64>):
    %3 = "arith.constant"() {value = 0.0} : () -> (f64)
    "memref_stream.generic"(%2) ({
    ^bb2(%4: f64):
      "memref_stream.yield"(%3) : (f64) -> ()
    }) {bounds = dense<[1, 4]>, indexing_maps = [affine_map<(d0, d1) -> (d0, d1)>], iterator_types = iterators<parallel, parallel>, num_inputs = 0} : (memref<1x4xf64>) -> ()
    "memref_stream.generic"(%0, %1, %2) ({
    ^bb3(%5: f64, %6: f64, %7: f64):
      %8 = "arith.mulf"(%5, %6) : (f64, f64) -> (f64)
      %9 = "arith.addf"(%8, %7) : (f64, f64) -> (f64)
      "memref_stream.yield"(%9) : (f64) -> ()
    }) {bounds = dense<[1, 4, 8]>, indexing_maps = [affine_map<(d0, d1, d2) -> (d0, d2)>, affine_map<(d0, d1, d2) -> (d2, d1)>, affine_map<(d0, d1, d2) -> (d0, d1)>], iterator_types = iterators<parallel, parallel, reduction>, num_inputs = 2} : (memref<1x8xf64>, memref<8x4xf64>, memref<1x4xf64>) -> ()
    "func.return"() : () -> ()
  }) {function_type = (memref<1x8xf64>, memref<8x4xf64>, memref<1x4xf64>) -> (), sym_name = @matmul} : () -> ()
}) : () -> ()
