"builtin.module"() ({
^bb0:
  "func.func"() ({
  ^bb1(%0: memref<1x8xf64>, %1: memref<8x4xf64>, %2: memref<1x4xf64>):
    %3 = "arith.constant"() {value = 0} : () -> (index)
    %4 = "arith.constant"() {value = 1} : () -> (index)
    "memref_stream.streaming_region"(%0, %1, %2, %3, %3, %3) ({
    ^bb2(%5: !memref_stream.readable<f64>, %6: !memref_stream.readable<f64>, %7: !memref_stream.writable<f64>):
      %8 = "arith.constant"() {value = 0.0} : () -> (f64)
      %9 = "arith.constant"() {value = 8} : () -> (index)
      %10, %11, %12, %13 = "scf.for"(%3, %9, %4, %8, %8, %8, %8) ({
      ^bb3(%14: index, %15: f64, %16: f64, %17: f64, %18: f64):
        %19 = "memref_stream.read"(%5) : (!memref_stream.readable<f64>) -> (f64)
        %20 = "memref_stream.read"(%5) : (!memref_stream.readable<f64>) -> (f64)
        %21 = "memref_stream.read"(%5) : (!memref_stream.readable<f64>) -> (f64)
        %22 = "memref_stream.read"(%5) : (!memref_stream.readable<f64>) -> (f64)
        %23 = "memref_stream.read"(%6) : (!memref_stream.readable<f64>) -> (f64)
        %24 = "memref_stream.read"(%6) : (!memref_stream.readable<f64>) -> (f64)
        %25 = "memref_stream.read"(%6) : (!memref_stream.readable<f64>) -> (f64)
        %26 = "memref_stream.read"(%6) : (!memref_stream.readable<f64>) -> (f64)
        %27 = "arith.mulf"(%19, %23) : (f64, f64) -> (f64)
        %28 = "arith.addf"(%27, %15) : (f64, f64) -> (f64)
        %29 = "arith.mulf"(%20, %24) : (f64, f64) -> (f64)
        %30 = "arith.addf"(%29, %16) : (f64, f64) -> (f64)
        %31 = "arith.mulf"(%21, %25) : (f64, f64) -> (f64)
        %32 = "arith.addf"(%31, %17) : (f64, f64) -> (f64)
        %33 = "arith.mulf"(%22, %26) : (f64, f64) -> (f64)
        %34 = "arith.addf"(%33, %18) : (f64, f64) -> (f64)
        "scf.yield"(%28, %30, %32, %34) : (f64, f64, f64, f64) -> ()
      }) : (index, index, index, f64, f64, f64, f64) -> (f64, f64, f64, f64)
      "memref_stream.write"(%10, %7) : (f64, !memref_stream.writable<f64>) -> ()
      "memref_stream.write"(%11, %7) : (f64, !memref_stream.writable<f64>) -> ()
      "memref_stream.write"(%12, %7) : (f64, !memref_stream.writable<f64>) -> ()
      "memref_stream.write"(%13, %7) : (f64, !memref_stream.writable<f64>) -> ()
    }) {num_inputs = 2, patterns = [#memref_stream.stride_pattern<ub = [1, 8, 4], index_map = affine_map<(d0, d1, d2) -> (d0, d1)>>, #memref_stream.stride_pattern<ub = [1, 8, 4], index_map = affine_map<(d0, d1, d2) -> (d1, d2)>>, #memref_stream.stride_pattern<ub = [1, 4], index_map = affine_map<(d0, d1) -> (d0, d1)>>]} : (memref<1x8xf64>, memref<8x4xf64>, memref<1x4xf64>, index, index, index) -> ()
    "func.return"() : () -> ()
  }) {function_type = (memref<1x8xf64>, memref<8x4xf64>, memref<1x4xf64>) -> (), sym_name = @matmul} : () -> ()
}) : () -> ()
