//! End-to-end property tests: random kernel shapes compiled through the
//! full pipeline (and the baselines) must verify bit-exactly against the
//! host reference on the simulator — the harness already performs the
//! comparison, so any divergence fails the property.

use mlb_core::{Flow, PipelineOptions};
use mlb_kernels::{compile_and_run, Instance, Kind, Precision, Shape};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sum_any_shape_full_pipeline(n in 1i64..6, m in 1i64..20, seed in any::<u64>()) {
        let instance = Instance::new(Kind::Sum, Shape::nm(n, m), Precision::F64);
        compile_and_run(&instance, Flow::Ours(PipelineOptions::full()), seed)
            .unwrap_or_else(|e| panic!("{instance}: {e}"));
    }

    #[test]
    fn matmul_any_shape_full_pipeline(
        n in 1i64..4,
        m in 1i64..10,
        k in 1i64..24,
        seed in any::<u64>(),
    ) {
        let instance = Instance::new(Kind::MatMul, Shape::nmk(n, m, k), Precision::F64);
        compile_and_run(&instance, Flow::Ours(PipelineOptions::full()), seed)
            .unwrap_or_else(|e| panic!("{instance}: {e}"));
    }

    #[test]
    fn conv_any_shape_full_pipeline(n in 1i64..5, m in 1i64..10, seed in any::<u64>()) {
        let instance = Instance::new(Kind::Conv3x3, Shape::nm(n, m), Precision::F64);
        compile_and_run(&instance, Flow::Ours(PipelineOptions::full()), seed)
            .unwrap_or_else(|e| panic!("{instance}: {e}"));
    }

    #[test]
    fn maxpool_any_shape_any_rung(
        n in 1i64..5,
        m in 1i64..8,
        rung in 0usize..6,
        seed in any::<u64>(),
    ) {
        let instance = Instance::new(Kind::MaxPool3x3, Shape::nm(n, m), Precision::F64);
        let (label, opts) = PipelineOptions::ablation_ladder()[rung];
        compile_and_run(&instance, Flow::Ours(opts), seed)
            .unwrap_or_else(|e| panic!("{instance} at rung `{label}`: {e}"));
    }

    #[test]
    fn relu_f32_any_shape(n in 1i64..6, m in 1i64..16, seed in any::<u64>()) {
        let instance = Instance::new(Kind::Relu, Shape::nm(n, m), Precision::F32);
        compile_and_run(&instance, Flow::Ours(PipelineOptions::full()), seed)
            .unwrap_or_else(|e| panic!("{instance}: {e}"));
    }
}
