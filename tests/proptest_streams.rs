//! Property tests for the stream machinery — the heart of the SSR
//! lowering (Section 3.2):
//!
//! 1. the compiler-side hardware pattern ([`StreamPattern`]) generates
//!    exactly the address sequence of the affine access it was derived
//!    from, for arbitrary linear maps and bounds;
//! 2. the simulator's SSR data mover walks exactly the same sequence
//!    when programmed with the pattern's configuration words.

use mlb_core::passes::convert_to_rv::hardware_pattern;
use mlb_ir::{AffineExpr, AffineMap, MemRefType, StreamPattern, StridePattern, Type};
use mlb_sim::ssr::{DataMover, SsrDirection};
use proptest::prelude::*;

/// Random iteration bounds (outermost first) with a bounded total count.
fn bounds_strategy() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(1i64..5, 1..4)
}

/// A random linear map from `n` iteration dims into 2 memref axes:
/// each axis gets a (possibly zero) combination of dims plus a constant.
fn linear_map(n: usize) -> impl Strategy<Value = AffineMap> {
    let coeff = prop::collection::vec(0i64..3, n);
    let coeffs = (coeff.clone(), coeff, 0i64..2, 0i64..2);
    coeffs.prop_map(move |(row, col, c0, c1)| {
        let mut exprs = Vec::new();
        for (coefs, c) in [(&row, c0), (&col, c1)] {
            let mut e = AffineExpr::Const(c);
            for (d, &k) in coefs.iter().enumerate() {
                if k != 0 {
                    e = e.add(AffineExpr::dim(d).mul_const(k));
                }
            }
            exprs.push(e);
        }
        AffineMap::new(n, 0, exprs)
    })
}

proptest! {
    /// The hardware pattern visits exactly the element offsets the
    /// affine map produces over the iteration space, in iteration order.
    #[test]
    fn hardware_pattern_matches_affine_walk(
        (ub, map) in bounds_strategy().prop_flat_map(|ub| {
            let n = ub.len();
            (Just(ub), linear_map(n))
        }),
    ) {
        let n = ub.len();
        // A memref comfortably larger than the accessed window.
        let extent: i64 = 64;
        let memref = MemRefType::new(vec![extent, extent], Type::F64);
        let pattern = StridePattern::new(ub.clone(), map.clone());
        let (hw, base_offset) = match hardware_pattern(&pattern, &memref) {
            Ok(hw) => hw,
            // More dims than the SSRs support: out of scope here.
            Err(_) => return Ok(()),
        };
        // Expected byte offsets: enumerate the iteration space with the
        // innermost (last) dimension fastest and evaluate the map.
        let total: i64 = ub.iter().product();
        let mut expected = Vec::with_capacity(total as usize);
        for flat in 0..total {
            let mut idx = vec![0i64; n];
            let mut rest = flat;
            for d in (0..n).rev() {
                idx[d] = rest % ub[d];
                rest /= ub[d];
            }
            let pos = map.eval(&idx, &[]);
            expected.push((pos[0] * extent + pos[1]) * 8 - base_offset);
        }
        prop_assert_eq!(hw.offsets(), expected);
    }

    /// The simulator's data mover reproduces the pattern's offsets when
    /// programmed through the same configuration words the backend emits.
    #[test]
    fn data_mover_matches_pattern(
        ub in prop::collection::vec(1i64..5, 1..5),
        strides in prop::collection::vec(-64i64..64, 4),
        repeat in 0i64..3,
    ) {
        let strides = strides[..ub.len()].to_vec();
        let logical: Vec<i64> = strides.iter().map(|s| s * 8).collect();
        let pattern = StreamPattern::from_logical(ub.clone(), logical, repeat);
        // Base chosen so every generated address stays non-negative.
        let base: i64 = 1 << 20;
        let mut mover = DataMover::default();
        for (d, (&b, &s)) in pattern.ub.iter().zip(&pattern.strides).enumerate() {
            mover.configure(mlb_isa::SsrCfgReg::Bound(d as u8), b as u32 - 1);
            mover.configure(mlb_isa::SsrCfgReg::Stride(d as u8), s as u32);
        }
        mover.configure(mlb_isa::SsrCfgReg::Repeat, pattern.repeat as u32);
        mover.configure(mlb_isa::SsrCfgReg::RPtr(pattern.rank() as u8 - 1), base as u32);
        for offset in pattern.offsets() {
            let addr = mover.next_addr(SsrDirection::Read).unwrap();
            prop_assert_eq!(addr as i64, base + offset);
        }
        // Exhausted exactly at the end.
        prop_assert!(mover.next_addr(SsrDirection::Read).is_err());
    }

    /// Simplification in the hardware pattern never changes the number of
    /// elements delivered.
    #[test]
    fn hardware_pattern_preserves_element_count(ub in bounds_strategy()) {
        let n = ub.len();
        let map = AffineMap::new(
            n,
            0,
            vec![AffineExpr::Const(0), AffineExpr::dim(n - 1)],
        );
        let memref = MemRefType::new(vec![8, 8], Type::F64);
        let pattern = StridePattern::new(ub.clone(), map);
        if let Ok((hw, _)) = hardware_pattern(&pattern, &memref) {
            let space: i64 = ub.iter().product();
            prop_assert_eq!(hw.num_elements(), space);
        }
    }
}
