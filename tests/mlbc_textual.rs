//! End-to-end through the *textual* front door: write a kernel in the
//! generic IR syntax, parse it, compile it with the pipeline, and run it
//! on the simulator — the same path the `mlbc` driver takes.

use mlb_core::{compile, full_registry, Flow, PipelineOptions};
use mlb_ir::{parse_module, Context};
use mlb_isa::TCDM_BASE;
use mlb_sim::{assemble, Machine};

/// ReLU over 16 doubles, written by hand in the generic syntax.
const RELU_MLIR: &str = r#"
"builtin.module"() ({
^bb0:
  "func.func"() ({
  ^bb1(%0: memref<16xf64>, %1: memref<16xf64>):
    %2 = "arith.constant"() {value = 0.0} : () -> (f64)
    "linalg.generic"(%0, %1) ({
    ^bb2(%3: f64, %4: f64):
      %5 = "arith.maximumf"(%3, %2) : (f64, f64) -> (f64)
      "linalg.yield"(%5) : (f64) -> ()
    }) {indexing_maps = [affine_map<(d0) -> (d0)>, affine_map<(d0) -> (d0)>],
        iterator_types = iterators<parallel>,
        num_inputs = 1} : (memref<16xf64>, memref<16xf64>) -> ()
    "func.return"() : () -> ()
  }) {sym_name = @relu, function_type = (memref<16xf64>, memref<16xf64>) -> ()} : () -> ()
}) : () -> ()
"#;

#[test]
fn textual_relu_compiles_and_runs() {
    let mut ctx = Context::new();
    let module = parse_module(&mut ctx, RELU_MLIR).expect("parses");
    full_registry().verify(&ctx, module).expect("verifies");
    let compiled =
        compile(&mut ctx, module, Flow::Ours(PipelineOptions::full())).expect("compiles");
    assert!(compiled.assembly.contains("frep.o"), "{}", compiled.assembly);

    let program = assemble(&compiled.assembly).expect("assembles");
    let mut machine = Machine::new();
    let xs: Vec<f64> = (0..16).map(|i| (i as f64) - 8.0).collect();
    machine.write_f64_slice(TCDM_BASE, &xs).unwrap();
    machine.call(&program, "relu", &[TCDM_BASE, TCDM_BASE + 128]).expect("runs");
    let out = machine.read_f64_slice(TCDM_BASE + 128, 16).unwrap();
    let expect: Vec<f64> = xs.iter().map(|&x| x.max(0.0)).collect();
    assert_eq!(out, expect);
}

#[test]
fn textual_relu_all_flows_agree() {
    for flow in [Flow::Ours(PipelineOptions::baseline()), Flow::MlirLike, Flow::ClangLike] {
        let mut ctx = Context::new();
        let module = parse_module(&mut ctx, RELU_MLIR).expect("parses");
        let compiled = compile(&mut ctx, module, flow).expect("compiles");
        let program = assemble(&compiled.assembly).expect("assembles");
        let mut machine = Machine::new();
        let xs: Vec<f64> = (0..16).map(|i| (i as f64) * 0.5 - 4.0).collect();
        machine.write_f64_slice(TCDM_BASE, &xs).unwrap();
        machine.call(&program, "relu", &[TCDM_BASE, TCDM_BASE + 128]).expect("runs");
        let out = machine.read_f64_slice(TCDM_BASE + 128, 16).unwrap();
        let expect: Vec<f64> = xs.iter().map(|&x| x.max(0.0)).collect();
        assert_eq!(out, expect, "{flow:?}");
    }
}

#[test]
fn malformed_input_is_rejected_cleanly() {
    let mut ctx = Context::new();
    assert!(parse_module(&mut ctx, "\"builtin.module\"() ({").is_err());
    let mut ctx = Context::new();
    // Parses but does not verify: unregistered op.
    let module = parse_module(&mut ctx, "\"nope.op\"() : () -> ()").unwrap();
    assert!(full_registry().verify(&ctx, module).is_err());
}
