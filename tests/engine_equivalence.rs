//! Engine-equivalence suite for the superblock simulator engine.
//!
//! The superblock engine (CFG-predecoded, single upfront budget
//! precheck per straight-line run, unchecked inner loop) must be
//! *observationally identical* to the checked reference stepper: same
//! verified outputs, same performance counters, same stall histograms,
//! same rendered traces, same typed faults. These tests race both
//! engines over the full kernel suite, every compilation flow, several
//! cluster widths, and the difftest fuzz corpus — any drift is a bug in
//! the superblock engine, never a tolerated approximation.

use mlb_core::{compile, Compilation, Flow, PipelineOptions};
use mlb_ir::Context;
use mlb_kernels::{
    fuzz_corpus, predecode, run_predecoded_on_cluster_with_engine,
    run_predecoded_traced_with_engine, run_predecoded_with_engine, Instance, Kind, Precision,
    Shape,
};
use mlb_sim::{Engine, StallHistogram};

fn compiled(instance: &Instance, flow: Flow) -> Compilation {
    let mut ctx = Context::new();
    let module = instance.build_module(&mut ctx);
    compile(&mut ctx, module, flow).unwrap_or_else(|e| panic!("{instance} under {flow:?}: {e}"))
}

fn flows() -> [(&'static str, Flow); 4] {
    [
        ("ours-full", Flow::Ours(PipelineOptions::full())),
        ("ours-baseline", Flow::Ours(PipelineOptions::baseline())),
        ("mlir", Flow::MlirLike),
        ("clang", Flow::ClangLike),
    ]
}

fn suite() -> Vec<Instance> {
    Kind::all()
        .into_iter()
        .map(|kind| {
            let shape = match kind {
                Kind::MatMul | Kind::MatMulT => Shape::nmk(4, 8, 8),
                _ => Shape::nm(4, 8),
            };
            Instance::new(kind, shape, Precision::F64)
        })
        .collect()
}

/// Every kernel under every flow: bit-identical outputs and counters.
#[test]
fn engines_agree_across_the_kernel_suite_and_flows() {
    for instance in suite() {
        for (flow_name, flow) in flows() {
            let exec = predecode(&compiled(&instance, flow))
                .unwrap_or_else(|e| panic!("{instance} under {flow_name}: {e}"));
            let superblock = run_predecoded_with_engine(&instance, &exec, 11, Engine::Superblock)
                .unwrap_or_else(|e| panic!("{instance} under {flow_name} superblock: {e}"));
            let checked = run_predecoded_with_engine(&instance, &exec, 11, Engine::Checked)
                .unwrap_or_else(|e| panic!("{instance} under {flow_name} checked: {e}"));
            assert_eq!(
                superblock.counters, checked.counters,
                "{instance} under {flow_name}: counters diverge"
            );
            let sb: Vec<u64> = superblock.output.iter().map(|v| v.to_bits()).collect();
            let ck: Vec<u64> = checked.output.iter().map(|v| v.to_bits()).collect();
            assert_eq!(sb, ck, "{instance} under {flow_name}: outputs diverge");
        }
    }
}

/// Every kernel on 1-, 2- and 4-core clusters: identical per-core and
/// aggregate counters, barrier counts, and verified outputs.
#[test]
fn engines_agree_on_every_cluster_width() {
    for instance in suite() {
        for cores in [1usize, 2, 4] {
            let mut opts = PipelineOptions::full();
            opts.cores = cores;
            let exec = predecode(&compiled(&instance, Flow::Ours(opts)))
                .unwrap_or_else(|e| panic!("{instance} on {cores} cores: {e}"));
            let superblock = run_predecoded_on_cluster_with_engine(
                &instance,
                &exec,
                13,
                cores,
                Engine::Superblock,
            )
            .unwrap_or_else(|e| panic!("{instance} on {cores} cores superblock: {e}"));
            let checked =
                run_predecoded_on_cluster_with_engine(&instance, &exec, 13, cores, Engine::Checked)
                    .unwrap_or_else(|e| panic!("{instance} on {cores} cores checked: {e}"));
            assert_eq!(
                superblock.counters, checked.counters,
                "{instance} on {cores} cores: cluster counters diverge"
            );
            let sb: Vec<u64> = superblock.output.iter().map(|v| v.to_bits()).collect();
            let ck: Vec<u64> = checked.output.iter().map(|v| v.to_bits()).collect();
            assert_eq!(sb, ck, "{instance} on {cores} cores: outputs diverge");
        }
    }
}

/// The difftest fuzz corpus (random kinds, shapes, precisions, flows and
/// operand seeds) replayed under both engines.
#[test]
fn engines_agree_on_the_fuzz_corpus() {
    for (instance, flow, seed) in fuzz_corpus(0xC0FFEE, 24) {
        let exec = predecode(&compiled(&instance, flow))
            .unwrap_or_else(|e| panic!("{instance} under {flow:?}: {e}"));
        let superblock = run_predecoded_with_engine(&instance, &exec, seed, Engine::Superblock)
            .unwrap_or_else(|e| panic!("{instance} under {flow:?} superblock: {e}"));
        let checked = run_predecoded_with_engine(&instance, &exec, seed, Engine::Checked)
            .unwrap_or_else(|e| panic!("{instance} under {flow:?} checked: {e}"));
        assert_eq!(
            superblock.counters, checked.counters,
            "{instance} under {flow:?} seed {seed}: counters diverge"
        );
        let sb: Vec<u64> = superblock.output.iter().map(|v| v.to_bits()).collect();
        let ck: Vec<u64> = checked.output.iter().map(|v| v.to_bits()).collect();
        assert_eq!(sb, ck, "{instance} under {flow:?} seed {seed}: outputs diverge");
    }
}

/// Tracing always runs the checked stepper, so traced runs must render
/// identical traces and stall histograms under either engine setting —
/// and the traced counters must equal the untraced superblock run's.
#[test]
fn traces_and_stall_histograms_are_engine_independent() {
    for instance in [
        Instance::new(Kind::MatMul, Shape::nmk(4, 8, 8), Precision::F64),
        Instance::new(Kind::Sum, Shape::nm(4, 8), Precision::F32),
        Instance::new(Kind::Conv3x3, Shape::nm(4, 8), Precision::F64),
    ] {
        let exec = predecode(&compiled(&instance, Flow::Ours(PipelineOptions::full())))
            .unwrap_or_else(|e| panic!("{instance}: {e}"));
        let (sb_outcome, sb_trace) =
            run_predecoded_traced_with_engine(&instance, &exec, 17, Engine::Superblock)
                .unwrap_or_else(|e| panic!("{instance} superblock traced: {e}"));
        let (ck_outcome, ck_trace) =
            run_predecoded_traced_with_engine(&instance, &exec, 17, Engine::Checked)
                .unwrap_or_else(|e| panic!("{instance} checked traced: {e}"));
        assert_eq!(sb_outcome.counters, ck_outcome.counters, "{instance}: traced counters");
        let render = |t: &[mlb_sim::TraceEntry]| -> Vec<String> {
            t.iter().map(|e| e.to_string()).collect()
        };
        assert_eq!(render(&sb_trace), render(&ck_trace), "{instance}: rendered traces diverge");
        assert_eq!(
            StallHistogram::from_trace(&sb_trace),
            StallHistogram::from_trace(&ck_trace),
            "{instance}: stall histograms diverge"
        );
        // The untraced superblock run reproduces the traced counters:
        // tracing changes observability, never the modelled timing.
        let untraced = run_predecoded_with_engine(&instance, &exec, 17, Engine::Superblock)
            .unwrap_or_else(|e| panic!("{instance} superblock untraced: {e}"));
        assert_eq!(
            untraced.counters, sb_outcome.counters,
            "{instance}: untraced superblock counters diverge from the traced run"
        );
    }
}
