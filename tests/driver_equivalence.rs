//! Driver-semantics equivalence over the whole kernel suite.
//!
//! The worklist rewrite driver replaces the legacy re-walk driver as a
//! pure performance change: for every kernel of Table 1, every flow, and
//! every pipeline stage, the printed IR after each pass — and the final
//! assembly — must be byte-identical under both drivers. Running the
//! comparison per stage (not just on the final output) pins down the
//! exact pass where the drivers would first disagree.

use mlb_core::{compile_with_observer, Flow, PipelineOptions};
use mlb_ir::{Context, DriverMode, IrSnapshotMode, PipelineRecorder};
use mlb_kernels::{Instance, Kind, Precision, Shape};

/// Compiles `instance` under `flow` with the given rewrite-driver mode
/// (a per-context property), returning each pass name with its printed
/// IR, plus the assembly.
fn stages_under(
    instance: &Instance,
    flow: Flow,
    mode: DriverMode,
) -> (Vec<(String, String)>, String) {
    let mut ctx = Context::new();
    ctx.set_driver_mode(mode);
    let module = instance.build_module(&mut ctx);
    let mut recorder = PipelineRecorder::new(IrSnapshotMode::All);
    let compiled = compile_with_observer(&mut ctx, module, flow, &mut recorder)
        .unwrap_or_else(|e| panic!("{instance} under {flow:?} ({mode:?}): {e}"));
    let stages = recorder
        .events
        .iter()
        .map(|event| {
            let ir = event.ir_after.clone().expect("snapshot mode All records every pass");
            (event.pass.to_string(), ir)
        })
        .collect();
    (stages, compiled.assembly)
}

#[test]
fn drivers_agree_stage_by_stage_on_the_kernel_suite() {
    let flows = [
        ("ours", Flow::Ours(PipelineOptions::full())),
        ("mlir", Flow::MlirLike),
        ("clang", Flow::ClangLike),
    ];
    for kind in Kind::all() {
        let shape = match kind {
            Kind::MatMul | Kind::MatMulT => Shape::nmk(2, 4, 3),
            _ => Shape::nm(3, 4),
        };
        for precision in [Precision::F64, Precision::F32] {
            let instance = Instance::new(kind, shape, precision);
            for (flow_name, flow) in flows {
                let (worklist, wl_asm) = stages_under(&instance, flow, DriverMode::Worklist);
                let (legacy, lg_asm) = stages_under(&instance, flow, DriverMode::LegacyRewalk);
                assert_eq!(
                    worklist.len(),
                    legacy.len(),
                    "{instance} [{flow_name}]: stage count diverged"
                );
                for (i, (wl, lg)) in worklist.iter().zip(&legacy).enumerate() {
                    assert_eq!(
                        wl.0, lg.0,
                        "{instance} [{flow_name}] stage {i}: pass order diverged"
                    );
                    assert_eq!(
                        wl.1, lg.1,
                        "{instance} [{flow_name}] stage {i} ({}): printed IR diverged",
                        wl.0
                    );
                }
                assert_eq!(wl_asm, lg_asm, "{instance} [{flow_name}]: assembly diverged");
            }
        }
    }
}
