//! The `linalg` dialect: high-level linear algebra on shaped operands.
//!
//! `linalg.generic` concisely captures a computation via (i) explicit
//! iterator types, (ii) affine maps between iteration space and operand
//! data, (iii) an iteration space defined by the operands, and (iv) a body
//! lambda (Section 2.2). It is the entry point of the micro-kernel
//! compiler.

use mlb_ir::{
    AffineMap, Attribute, BlockId, Context, DialectRegistry, IteratorType, OpId, OpInfo, OpSpec,
    Type, ValueId, VerifyError,
};

pub use crate::structured::GenericOp;
use crate::structured::{self, body_element_type};

/// `linalg.generic`: the versatile structured computation op.
pub const GENERIC: &str = "linalg.generic";
/// `linalg.yield`: body terminator carrying per-iteration results.
pub const YIELD: &str = "linalg.yield";
/// `linalg.fill`: fills a memref with a scalar. Operands: `scalar, memref`.
pub const FILL: &str = "linalg.fill";

/// Registers the `linalg` dialect.
pub fn register(registry: &mut DialectRegistry) {
    registry.register(OpInfo::new(GENERIC).with_verify(verify_generic));
    registry.register(OpInfo::new(YIELD).terminator().with_verify(verify_yield));
    registry.register(OpInfo::new(FILL).with_verify(verify_fill));
}

fn verify_generic(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    structured::verify_generic(ctx, op)?;
    let g = GenericOp(op);
    // Body takes one scalar per operand.
    let body = g.body(ctx);
    let operands = &ctx.op(op).operands;
    if ctx.block_args(body).len() != operands.len() {
        return Err(VerifyError::new(ctx, op, "body must take one argument per operand"));
    }
    for (&arg, &operand) in ctx.block_args(body).iter().zip(operands.iter()) {
        if *ctx.value_type(arg) != body_element_type(ctx, operand) {
            return Err(VerifyError::new(ctx, op, "body argument type mismatch"));
        }
    }
    Ok(())
}

fn verify_yield(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    let Some(parent) = ctx.parent_op(op) else {
        return Err(VerifyError::new(ctx, op, "yield outside of any op"));
    };
    if ctx.op(parent).name != GENERIC {
        return Err(VerifyError::new(ctx, op, "linalg.yield must be inside linalg.generic"));
    }
    let g = GenericOp(parent);
    let num_outputs = ctx.op(parent).operands.len() - g.num_inputs(ctx);
    if ctx.op(op).operands.len() != num_outputs {
        return Err(VerifyError::new(ctx, op, "yield arity differs from output count"));
    }
    Ok(())
}

fn verify_fill(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    let o = ctx.op(op);
    if o.operands.len() != 2 || !o.results.is_empty() {
        return Err(VerifyError::new(ctx, op, "fill takes a scalar and a memref"));
    }
    let Type::MemRef(m) = ctx.value_type(o.operands[1]) else {
        return Err(VerifyError::new(ctx, op, "second operand must be a memref"));
    };
    if ctx.value_type(o.operands[0]) != m.element.as_ref() {
        return Err(VerifyError::new(ctx, op, "fill value type differs from element type"));
    }
    Ok(())
}

/// Builds a `linalg.generic`. The body callback receives the body block
/// and the scalar block arguments (inputs then outputs) and returns the
/// yielded values (one per output).
#[allow(clippy::too_many_arguments)]
pub fn build_generic(
    ctx: &mut Context,
    block: BlockId,
    inputs: Vec<ValueId>,
    outputs: Vec<ValueId>,
    indexing_maps: Vec<AffineMap>,
    iterator_types: Vec<IteratorType>,
    explicit_bounds: Option<Vec<i64>>,
    body: impl FnOnce(&mut Context, BlockId, &[ValueId]) -> Vec<ValueId>,
) -> GenericOp {
    let num_inputs = inputs.len();
    let mut operands = inputs;
    operands.extend(outputs);
    let mut spec = OpSpec::new(GENERIC)
        .operands(operands.clone())
        .attr(
            structured::INDEXING_MAPS,
            Attribute::Array(indexing_maps.into_iter().map(Attribute::Map).collect()),
        )
        .attr(structured::ITERATOR_TYPES, Attribute::Iterators(iterator_types))
        .attr(structured::NUM_INPUTS, Attribute::Int(num_inputs as i64))
        .regions(1);
    if let Some(bounds) = explicit_bounds {
        spec = spec.attr(structured::BOUNDS, Attribute::DenseI64(bounds));
    }
    let op = ctx.append_op(block, spec);
    let arg_types: Vec<Type> = operands.iter().map(|&v| body_element_type(ctx, v)).collect();
    let body_block = ctx.create_block(ctx.op(op).regions[0], arg_types);
    let args = ctx.block_args(body_block).to_vec();
    let yields = body(ctx, body_block, &args);
    ctx.append_op(body_block, OpSpec::new(YIELD).operands(yields));
    GenericOp(op)
}

/// Builds a `linalg.fill` writing `value` to every element of `target`.
pub fn build_fill(ctx: &mut Context, block: BlockId, value: ValueId, target: ValueId) -> OpId {
    ctx.append_op(block, OpSpec::new(FILL).operands(vec![value, target]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{arith, builtin, func};
    use mlb_ir::AffineExpr;

    fn setup() -> (Context, DialectRegistry, OpId, BlockId) {
        let mut ctx = Context::new();
        let mut r = DialectRegistry::new();
        builtin::register(&mut r);
        arith::register(&mut r);
        func::register(&mut r);
        register(&mut r);
        let (m, b) = builtin::build_module(&mut ctx);
        (ctx, r, m, b)
    }

    /// Builds the elementwise-sum kernel `Z[i,j] = X[i,j] + Y[i,j]`.
    fn build_sum(ctx: &mut Context, b: BlockId, n: i64, m: i64) -> (OpId, GenericOp) {
        let buf = Type::memref(vec![n, m], Type::F64);
        let (f, entry) =
            func::build_func(ctx, b, "sum", vec![buf.clone(), buf.clone(), buf], vec![]);
        let x = ctx.block_args(entry)[0];
        let y = ctx.block_args(entry)[1];
        let z = ctx.block_args(entry)[2];
        let id = AffineMap::identity(2);
        let g = build_generic(
            ctx,
            entry,
            vec![x, y],
            vec![z],
            vec![id.clone(), id.clone(), id],
            vec![IteratorType::Parallel, IteratorType::Parallel],
            None,
            |ctx, body, args| vec![arith::binary(ctx, body, arith::ADDF, args[0], args[1])],
        );
        func::build_return(ctx, entry, vec![]);
        (f, g)
    }

    #[test]
    fn build_sum_kernel_verifies() {
        let (mut ctx, r, m, b) = setup();
        let (_f, g) = build_sum(&mut ctx, b, 4, 8);
        assert!(r.verify(&ctx, m).is_ok(), "{:?}", r.verify(&ctx, m));
        assert_eq!(g.num_inputs(&ctx), 2);
        assert_eq!(g.inputs(&ctx).len(), 2);
        assert_eq!(g.outputs(&ctx).len(), 1);
        assert_eq!(g.iterator_types(&ctx).len(), 2);
        assert_eq!(g.bounds(&ctx), Some(vec![4, 8]));
    }

    #[test]
    fn bounds_inference_fails_for_window_dims_without_attr() {
        let (mut ctx, r, m, b) = setup();
        // Conv-style access: input map (d0 + d1), output map (d0) — the
        // window dimension d1 never appears bare, so inference must fail.
        let in_ty = Type::memref(vec![6], Type::F64);
        let out_ty = Type::memref(vec![4], Type::F64);
        let (_f, entry) = func::build_func(&mut ctx, b, "c", vec![in_ty, out_ty], vec![]);
        let x = ctx.block_args(entry)[0];
        let z = ctx.block_args(entry)[1];
        let in_map = AffineMap::new(2, 0, vec![AffineExpr::dim(0).add(AffineExpr::dim(1))]);
        let out_map = AffineMap::projection(2, &[0]);
        let g = build_generic(
            &mut ctx,
            entry,
            vec![x],
            vec![z],
            vec![in_map, out_map],
            vec![IteratorType::Parallel, IteratorType::Reduction],
            None,
            |ctx, body, args| vec![arith::binary(ctx, body, arith::ADDF, args[0], args[1])],
        );
        func::build_return(&mut ctx, entry, vec![]);
        assert!(r.verify(&ctx, m).is_ok());
        assert_eq!(g.bounds(&ctx), None);

        // With an explicit bounds attribute the bounds resolve.
        ctx.op_mut(g.0).attrs.insert(structured::BOUNDS.into(), Attribute::DenseI64(vec![4, 3]));
        assert_eq!(g.bounds(&ctx), Some(vec![4, 3]));
    }

    #[test]
    fn fill_builds_and_verifies() {
        let (mut ctx, r, m, b) = setup();
        let buf_ty = Type::memref(vec![5], Type::F64);
        let (_f, entry) = func::build_func(&mut ctx, b, "z", vec![buf_ty], vec![]);
        let buf = ctx.block_args(entry)[0];
        let zero = arith::constant_float(&mut ctx, entry, 0.0, Type::F64);
        build_fill(&mut ctx, entry, zero, buf);
        func::build_return(&mut ctx, entry, vec![]);
        assert!(r.verify(&ctx, m).is_ok());
    }

    #[test]
    fn verify_rejects_map_dim_mismatch() {
        let (mut ctx, r, m, b) = setup();
        let (_, g) = build_sum(&mut ctx, b, 4, 4);
        // Corrupt: replace iterator types with a single entry.
        ctx.op_mut(g.0).attrs.insert(
            structured::ITERATOR_TYPES.into(),
            Attribute::Iterators(vec![IteratorType::Parallel]),
        );
        assert!(r.verify(&ctx, m).is_err());
    }

    #[test]
    fn verify_rejects_fill_type_mismatch() {
        let (mut ctx, r, m, b) = setup();
        let buf_ty = Type::memref(vec![5], Type::F64);
        let (_f, entry) = func::build_func(&mut ctx, b, "z", vec![buf_ty], vec![]);
        let buf = ctx.block_args(entry)[0];
        let zero = arith::constant_float(&mut ctx, entry, 0.0, Type::F32);
        ctx.append_op(entry, OpSpec::new(FILL).operands(vec![zero, buf]));
        func::build_return(&mut ctx, entry, vec![]);
        assert!(r.verify(&ctx, m).is_err());
    }
}
