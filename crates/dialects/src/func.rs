//! The `func` dialect: functions passing arguments by value or reference.
//!
//! Kernels are `func.func` operations whose `memref` arguments model
//! pass-by-reference buffers (Section 2.1, Figure 2).

use mlb_ir::{
    Attribute, BlockId, Context, DialectRegistry, OpId, OpInfo, OpSpec, Type, ValueId, VerifyError,
};

/// `func.func`: a function definition with `sym_name` and `function_type`.
pub const FUNC: &str = "func.func";
/// `func.return`: terminator returning the function results.
pub const RETURN: &str = "func.return";
/// Optional `func.func` attribute: a dense list of argument indices
/// whose buffers are scratch temporaries. The caller promises never to
/// read them after the call, so passes may elide writes to them (the
/// element-wise fusion pass relies on this to erase a producer whose
/// only consumer is fused away).
pub const TEMP_ARGS: &str = "temp_args";

/// Registers the `func` dialect.
pub fn register(registry: &mut DialectRegistry) {
    registry.register(OpInfo::new(FUNC).with_verify(verify_func));
    registry.register(OpInfo::new(RETURN).terminator().with_verify(verify_return));
}

fn verify_func(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    let o = ctx.op(op);
    if o.regions.len() != 1 {
        return Err(VerifyError::new(ctx, op, "function must have exactly one region"));
    }
    let Some(Attribute::Symbol(_)) = o.attr("sym_name") else {
        return Err(VerifyError::new(ctx, op, "missing `sym_name` symbol attribute"));
    };
    let Some(Attribute::Type(Type::Function(sig))) = o.attr("function_type") else {
        return Err(VerifyError::new(ctx, op, "missing `function_type` attribute"));
    };
    let blocks = ctx.region_blocks(o.regions[0]);
    if blocks.is_empty() {
        return Err(VerifyError::new(ctx, op, "function body must have an entry block"));
    }
    let entry_args = ctx.block_args(blocks[0]);
    if entry_args.len() != sig.inputs.len() {
        return Err(VerifyError::new(ctx, op, "entry block arity differs from function type"));
    }
    for (arg, ty) in entry_args.iter().zip(&sig.inputs) {
        if ctx.value_type(*arg) != ty {
            return Err(VerifyError::new(ctx, op, "entry block argument type mismatch"));
        }
    }
    Ok(())
}

fn verify_return(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    // The enclosing function's signature must match the returned values.
    let Some(parent) = ctx.parent_op(op) else {
        return Err(VerifyError::new(ctx, op, "return outside of a function"));
    };
    if ctx.op(parent).name != FUNC {
        // Returns may appear inside other function-like ops (rv_func);
        // those dialects register their own return op, so reaching here
        // with a different parent is an error.
        return Err(VerifyError::new(ctx, op, "func.return must be directly inside func.func"));
    }
    let Some(Attribute::Type(Type::Function(sig))) = ctx.op(parent).attr("function_type") else {
        return Ok(());
    };
    let o = ctx.op(op);
    if o.operands.len() != sig.results.len() {
        return Err(VerifyError::new(ctx, op, "operand count differs from function result count"));
    }
    for (v, ty) in o.operands.iter().zip(&sig.results) {
        if ctx.value_type(*v) != ty {
            return Err(VerifyError::new(ctx, op, "returned value type mismatch"));
        }
    }
    Ok(())
}

/// Creates a `func.func` named `name` in `parent`, returning the function
/// op and its entry block (whose arguments match `inputs`).
pub fn build_func(
    ctx: &mut Context,
    parent: BlockId,
    name: &str,
    inputs: Vec<Type>,
    results: Vec<Type>,
) -> (OpId, BlockId) {
    let func = ctx.append_op(
        parent,
        OpSpec::new(FUNC)
            .attr("sym_name", Attribute::Symbol(name.to_string()))
            .attr("function_type", Attribute::Type(Type::function(inputs.clone(), results)))
            .regions(1),
    );
    let entry = ctx.create_block(ctx.op(func).regions[0], inputs);
    (func, entry)
}

/// Appends a `func.return` of `values` to `block`.
pub fn build_return(ctx: &mut Context, block: BlockId, values: Vec<ValueId>) -> OpId {
    ctx.append_op(block, OpSpec::new(RETURN).operands(values))
}

/// The symbol name of a `func.func` (or compatible) operation.
pub fn symbol_name(ctx: &Context, func: OpId) -> Option<&str> {
    ctx.op(func).attr("sym_name")?.as_symbol()
}

/// Marks the arguments at `indices` as scratch temporaries (see
/// [`TEMP_ARGS`]).
pub fn set_temp_args(ctx: &mut Context, func: OpId, indices: &[usize]) {
    let dense = indices.iter().map(|&i| i as i64).collect();
    ctx.op_mut(func).attrs.insert(TEMP_ARGS.to_string(), Attribute::DenseI64(dense));
}

/// The scratch-temporary argument indices of `func`, empty when the
/// [`TEMP_ARGS`] attribute is absent.
pub fn temp_args(ctx: &Context, func: OpId) -> Vec<usize> {
    match ctx.op(func).attr(TEMP_ARGS) {
        Some(Attribute::DenseI64(v)) => v.iter().map(|&i| i as usize).collect(),
        _ => Vec::new(),
    }
}

/// The entry block of a function-like operation with one region.
pub fn entry_block(ctx: &Context, func: OpId) -> BlockId {
    ctx.region_blocks(ctx.op(func).regions[0])[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{arith, builtin};

    fn setup() -> (Context, DialectRegistry, OpId, BlockId) {
        let mut ctx = Context::new();
        let mut r = DialectRegistry::new();
        builtin::register(&mut r);
        arith::register(&mut r);
        register(&mut r);
        let (m, b) = builtin::build_module(&mut ctx);
        (ctx, r, m, b)
    }

    #[test]
    fn build_identity_function() {
        let (mut ctx, r, m, b) = setup();
        let (f, entry) = build_func(&mut ctx, b, "id", vec![Type::F64], vec![Type::F64]);
        let arg = ctx.block_args(entry)[0];
        build_return(&mut ctx, entry, vec![arg]);
        assert!(r.verify(&ctx, m).is_ok());
        assert_eq!(symbol_name(&ctx, f), Some("id"));
        assert_eq!(entry_block(&ctx, f), entry);
    }

    #[test]
    fn verify_rejects_bad_return_arity() {
        let (mut ctx, r, m, b) = setup();
        let (_f, entry) = build_func(&mut ctx, b, "f", vec![Type::F64], vec![Type::F64]);
        build_return(&mut ctx, entry, vec![]);
        assert!(r.verify(&ctx, m).is_err());
    }

    #[test]
    fn verify_rejects_wrong_return_type() {
        let (mut ctx, r, m, b) = setup();
        let (_f, entry) = build_func(&mut ctx, b, "f", vec![], vec![Type::F64]);
        let i = arith::constant_index(&mut ctx, entry, 0);
        build_return(&mut ctx, entry, vec![i]);
        assert!(r.verify(&ctx, m).is_err());
    }

    #[test]
    fn verify_rejects_missing_symbol() {
        let (mut ctx, r, m, b) = setup();
        let bad = ctx.append_op(
            b,
            OpSpec::new(FUNC)
                .attr("function_type", Attribute::Type(Type::function(vec![], vec![])))
                .regions(1),
        );
        ctx.create_block(ctx.op(bad).regions[0], vec![]);
        assert!(r.verify(&ctx, m).is_err());
    }
}
