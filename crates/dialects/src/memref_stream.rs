//! The `memref_stream` dialect: the bridge between `linalg` abstractions
//! and the Snitch streaming hardware (Section 3.4, Figure 7).
//!
//! `memref_stream.generic` mirrors `linalg.generic` but makes the
//! iteration bounds explicit, decoupling the op from operand shapes so it
//! can compute on *streams* as well as memrefs. The scheduling passes
//! (fuse-fill, scalar replacement, unroll-and-jam) all happen at this
//! level, *before* data access is separated from execution.
//!
//! `memref_stream.streaming_region` encapsulates a stream configuration
//! (one [`mlb_ir::StridePattern`] per operand) and a region in which the
//! operands are accessed as streams.

use mlb_ir::{
    Attribute, BlockId, Context, DialectRegistry, IteratorType, OpId, OpInfo, OpSpec,
    StridePattern, Type, ValueId, VerifyError,
};

pub use crate::structured::GenericOp;
use crate::structured::{self, body_element_type};

/// `memref_stream.generic`: structured computation with explicit bounds.
pub const GENERIC: &str = "memref_stream.generic";
/// `memref_stream.yield`: generic body terminator.
pub const YIELD: &str = "memref_stream.yield";
/// `memref_stream.streaming_region`: scopes a stream configuration.
pub const STREAMING_REGION: &str = "memref_stream.streaming_region";
/// `memref_stream.read`: pops the next element from a readable stream.
pub const READ: &str = "memref_stream.read";
/// `memref_stream.write`: pushes a value to a writable stream.
pub const WRITE: &str = "memref_stream.write";

/// Attribute key for the stream patterns of a streaming region.
pub const PATTERNS: &str = "patterns";
/// Attribute key for the number of loop-carried initial values appended to
/// the operand list by the fuse-fill pass.
pub const NUM_INITS: &str = "num_inits";

/// Registers the `memref_stream` dialect.
pub fn register(registry: &mut DialectRegistry) {
    registry.register(OpInfo::new(GENERIC).with_verify(verify_generic));
    registry.register(OpInfo::new(YIELD).terminator().with_verify(verify_yield));
    registry.register(OpInfo::new(STREAMING_REGION).with_verify(verify_streaming_region));
    registry.register(OpInfo::new(READ).with_verify(verify_read));
    registry.register(OpInfo::new(WRITE).with_verify(verify_write));
}

/// Extended accessors for `memref_stream.generic`.
#[derive(Debug, Clone, Copy)]
pub struct StreamGenericOp(pub OpId);

impl StreamGenericOp {
    /// The shared structured-op view.
    pub fn generic(self) -> GenericOp {
        GenericOp(self.0)
    }

    /// Number of fused initial values (0 when fill is not fused).
    pub fn num_inits(self, ctx: &Context) -> usize {
        ctx.op(self.0).attr(NUM_INITS).and_then(Attribute::as_int).unwrap_or(0) as usize
    }

    /// The fused initial values (empty when fill is not fused).
    pub fn inits(self, ctx: &Context) -> &[ValueId] {
        let operands = &ctx.op(self.0).operands;
        &operands[operands.len() - self.num_inits(ctx)..]
    }

    /// The output operands (operands between inputs and inits).
    pub fn outputs(self, ctx: &Context) -> &[ValueId] {
        let operands = &ctx.op(self.0).operands;
        let ni = self.generic().num_inputs(ctx);
        &operands[ni..operands.len() - self.num_inits(ctx)]
    }

    /// The explicit iteration bounds.
    pub fn bounds(self, ctx: &Context) -> Vec<i64> {
        self.generic().bounds(ctx).expect("memref_stream.generic requires explicit bounds")
    }

    /// The body interleave factor: the product of the bounds of all
    /// `interleaved` iteration dimensions (1 when none). Each operand
    /// contributes this many block arguments to the body.
    pub fn interleave_factor(self, ctx: &Context) -> usize {
        let bounds = self.bounds(ctx);
        self.generic()
            .iterator_types(ctx)
            .iter()
            .zip(&bounds)
            .filter(|(it, _)| **it == IteratorType::Interleaved)
            .map(|(_, b)| *b as usize)
            .product::<usize>()
            .max(1)
    }
}

fn verify_generic(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    structured::verify_generic(ctx, op)?;
    let o = ctx.op(op);
    if o.attr(structured::BOUNDS).is_none() {
        return Err(VerifyError::new(ctx, op, "memref_stream.generic requires explicit bounds"));
    }
    let s = StreamGenericOp(op);
    let num_inits = s.num_inits(ctx);
    if num_inits > o.operands.len() {
        return Err(VerifyError::new(ctx, op, "`num_inits` exceeds operand count"));
    }
    let maps = ctx.op(op).attr(structured::INDEXING_MAPS).and_then(Attribute::as_array).unwrap();
    if maps.len() + num_inits != o.operands.len() {
        return Err(VerifyError::new(
            ctx,
            op,
            "indexing maps must cover exactly the non-init operands",
        ));
    }
    let factor = s.interleave_factor(ctx);
    let body = s.generic().body(ctx);
    let expected_args = (o.operands.len() - num_inits) * factor;
    if ctx.block_args(body).len() != expected_args {
        return Err(VerifyError::new(
            ctx,
            op,
            format!(
                "body must take {expected_args} arguments ({} operands x interleave factor {factor})",
                o.operands.len() - num_inits
            ),
        ));
    }
    Ok(())
}

fn verify_yield(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    let Some(parent) = ctx.parent_op(op) else {
        return Err(VerifyError::new(ctx, op, "yield outside of any op"));
    };
    if ctx.op(parent).name != GENERIC {
        return Err(VerifyError::new(ctx, op, "memref_stream.yield must be inside generic"));
    }
    let s = StreamGenericOp(parent);
    let expected = s.outputs(ctx).len() * s.interleave_factor(ctx);
    if ctx.op(op).operands.len() != expected {
        return Err(VerifyError::new(
            ctx,
            op,
            format!("yield must carry {expected} values (outputs x interleave factor)"),
        ));
    }
    Ok(())
}

/// Typed view over a `memref_stream.streaming_region`.
#[derive(Debug, Clone, Copy)]
pub struct StreamingRegionOp(pub OpId);

impl StreamingRegionOp {
    /// Wraps `op`, checking the name.
    pub fn new(ctx: &Context, op: OpId) -> Option<StreamingRegionOp> {
        (ctx.op(op).name == STREAMING_REGION).then_some(StreamingRegionOp(op))
    }

    /// Number of input (read) streams.
    pub fn num_inputs(self, ctx: &Context) -> usize {
        ctx.op(self.0)
            .attr(structured::NUM_INPUTS)
            .and_then(Attribute::as_int)
            .expect("streaming_region missing num_inputs") as usize
    }

    /// Number of streamed memrefs (= number of patterns).
    pub fn num_streams(self, ctx: &Context) -> usize {
        ctx.op(self.0).attr(PATTERNS).and_then(Attribute::as_array).map(|a| a.len()).unwrap_or(0)
    }

    /// The streamed memref operands.
    pub fn memrefs(self, ctx: &Context) -> &[ValueId] {
        &ctx.op(self.0).operands[..self.num_streams(ctx)]
    }

    /// The per-memref element offsets, when the region carries them.
    pub fn offsets(self, ctx: &Context) -> Option<&[ValueId]> {
        let p = self.num_streams(ctx);
        let operands = &ctx.op(self.0).operands;
        (operands.len() == 2 * p && p > 0).then(|| &operands[p..])
    }

    /// The input memref operands.
    pub fn inputs(self, ctx: &Context) -> &[ValueId] {
        &self.memrefs(ctx)[..self.num_inputs(ctx)]
    }

    /// The output memref operands.
    pub fn outputs(self, ctx: &Context) -> &[ValueId] {
        &self.memrefs(ctx)[self.num_inputs(ctx)..]
    }

    /// The access pattern for each operand.
    pub fn patterns(self, ctx: &Context) -> Vec<StridePattern> {
        ctx.op(self.0)
            .attr(PATTERNS)
            .and_then(Attribute::as_array)
            .expect("streaming_region missing patterns")
            .iter()
            .map(|a| a.as_stride_pattern().expect("pattern entry").clone())
            .collect()
    }

    /// The single body block (arguments are the streams).
    pub fn body(self, ctx: &Context) -> BlockId {
        ctx.sole_block(ctx.op(self.0).regions[0])
    }
}

fn verify_streaming_region(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    let o = ctx.op(op);
    if o.regions.len() != 1 {
        return Err(VerifyError::new(ctx, op, "streaming_region must have exactly one region"));
    }
    let Some(num_inputs) = o.attr(structured::NUM_INPUTS).and_then(Attribute::as_int) else {
        return Err(VerifyError::new(ctx, op, "missing `num_inputs` attribute"));
    };
    let Some(patterns) = o.attr(PATTERNS).and_then(Attribute::as_array) else {
        return Err(VerifyError::new(ctx, op, "missing `patterns` attribute"));
    };
    // Operands are either `P` memrefs, or `P` memrefs followed by `P`
    // index offsets (in elements) when the region sits inside outer loops
    // whose contribution to the base address is dynamic.
    let p_count = patterns.len();
    let has_offsets = o.operands.len() == 2 * p_count && p_count > 0;
    if o.operands.len() != p_count && !has_offsets {
        return Err(VerifyError::new(ctx, op, "one pattern per streamed memref required"));
    }
    for p in patterns {
        if p.as_stride_pattern().is_none() {
            return Err(VerifyError::new(ctx, op, "`patterns` entries must be stride patterns"));
        }
    }
    for &v in &o.operands[..p_count] {
        if !matches!(ctx.value_type(v), Type::MemRef(_)) {
            return Err(VerifyError::new(ctx, op, "operands must be memrefs"));
        }
    }
    if has_offsets {
        for &v in &o.operands[p_count..] {
            if *ctx.value_type(v) != Type::Index {
                return Err(VerifyError::new(ctx, op, "offsets must have index type"));
            }
        }
    }
    let body = ctx.sole_block(o.regions[0]);
    let args = ctx.block_args(body);
    if args.len() != p_count {
        return Err(VerifyError::new(ctx, op, "body must take one stream per streamed memref"));
    }
    for (i, (&arg, &operand)) in args.iter().zip(o.operands.iter()).enumerate() {
        let elem = body_element_type(ctx, operand);
        let expected = if (i as i64) < num_inputs {
            Type::ReadableStream(Box::new(elem))
        } else {
            Type::WritableStream(Box::new(elem))
        };
        if *ctx.value_type(arg) != expected {
            return Err(VerifyError::new(
                ctx,
                op,
                format!("stream argument {i} must have type {expected}"),
            ));
        }
    }
    Ok(())
}

fn verify_read(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    let o = ctx.op(op);
    if o.operands.len() != 1 || o.results.len() != 1 {
        return Err(VerifyError::new(ctx, op, "read takes one stream, produces one element"));
    }
    match ctx.value_type(o.operands[0]) {
        Type::ReadableStream(t) if t.as_ref() == ctx.value_type(o.results[0]) => Ok(()),
        Type::ReadableStream(_) => {
            Err(VerifyError::new(ctx, op, "result type differs from stream element type"))
        }
        _ => Err(VerifyError::new(ctx, op, "operand must be a readable stream")),
    }
}

fn verify_write(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    let o = ctx.op(op);
    if o.operands.len() != 2 || !o.results.is_empty() {
        return Err(VerifyError::new(ctx, op, "write takes a value and a stream"));
    }
    match ctx.value_type(o.operands[1]) {
        Type::WritableStream(t) if t.as_ref() == ctx.value_type(o.operands[0]) => Ok(()),
        Type::WritableStream(_) => {
            Err(VerifyError::new(ctx, op, "value type differs from stream element type"))
        }
        _ => Err(VerifyError::new(ctx, op, "second operand must be a writable stream")),
    }
}

/// Builds a `memref_stream.streaming_region`. The body callback receives
/// the body block and the stream block arguments (readable inputs then
/// writable outputs).
pub fn build_streaming_region(
    ctx: &mut Context,
    block: BlockId,
    inputs: Vec<ValueId>,
    outputs: Vec<ValueId>,
    patterns: Vec<StridePattern>,
    body: impl FnOnce(&mut Context, BlockId, &[ValueId]),
) -> StreamingRegionOp {
    let num_inputs = inputs.len();
    let mut operands = inputs;
    operands.extend(outputs);
    let op = ctx.append_op(
        block,
        OpSpec::new(STREAMING_REGION)
            .operands(operands.clone())
            .attr(structured::NUM_INPUTS, Attribute::Int(num_inputs as i64))
            .attr(
                PATTERNS,
                Attribute::Array(patterns.into_iter().map(Attribute::StridePattern).collect()),
            )
            .regions(1),
    );
    let arg_types: Vec<Type> = operands
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            let elem = body_element_type(ctx, v);
            if i < num_inputs {
                Type::ReadableStream(Box::new(elem))
            } else {
                Type::WritableStream(Box::new(elem))
            }
        })
        .collect();
    let body_block = ctx.create_block(ctx.op(op).regions[0], arg_types);
    let streams = ctx.block_args(body_block).to_vec();
    body(ctx, body_block, &streams);
    StreamingRegionOp(op)
}

/// Builds a `memref_stream.read` from a readable stream.
pub fn build_read(ctx: &mut Context, block: BlockId, stream: ValueId) -> ValueId {
    let elem = match ctx.value_type(stream) {
        Type::ReadableStream(t) => (**t).clone(),
        other => panic!("build_read on non-readable type {other}"),
    };
    let op = ctx.append_op(block, OpSpec::new(READ).operands(vec![stream]).results(vec![elem]));
    ctx.op(op).results[0]
}

/// Builds a `memref_stream.write` to a writable stream.
pub fn build_write(ctx: &mut Context, block: BlockId, value: ValueId, stream: ValueId) -> OpId {
    ctx.append_op(block, OpSpec::new(WRITE).operands(vec![value, stream]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{arith, builtin, func};
    use mlb_ir::AffineMap;

    fn setup() -> (Context, DialectRegistry, OpId, BlockId) {
        let mut ctx = Context::new();
        let mut r = DialectRegistry::new();
        builtin::register(&mut r);
        arith::register(&mut r);
        func::register(&mut r);
        register(&mut r);
        let (m, b) = builtin::build_module(&mut ctx);
        (ctx, r, m, b)
    }

    #[test]
    fn streaming_region_with_reads_and_writes() {
        let (mut ctx, r, m, b) = setup();
        let buf = Type::memref(vec![8], Type::F64);
        let (_f, entry) = func::build_func(&mut ctx, b, "relu", vec![buf.clone(), buf], vec![]);
        let x = ctx.block_args(entry)[0];
        let z = ctx.block_args(entry)[1];
        let pattern = StridePattern::new(vec![8], AffineMap::identity(1));
        build_streaming_region(
            &mut ctx,
            entry,
            vec![x],
            vec![z],
            vec![pattern.clone(), pattern],
            |ctx, body, streams| {
                let v = build_read(ctx, body, streams[0]);
                build_write(ctx, body, v, streams[1]);
            },
        );
        func::build_return(&mut ctx, entry, vec![]);
        assert!(r.verify(&ctx, m).is_ok(), "{:?}", r.verify(&ctx, m));
    }

    #[test]
    fn streaming_region_accessors() {
        let (mut ctx, _r, _m, b) = setup();
        let buf = Type::memref(vec![4], Type::F64);
        let (_f, entry) = func::build_func(&mut ctx, b, "k", vec![buf.clone(), buf], vec![]);
        let x = ctx.block_args(entry)[0];
        let z = ctx.block_args(entry)[1];
        let p = StridePattern::new(vec![4], AffineMap::identity(1));
        let sr = build_streaming_region(
            &mut ctx,
            entry,
            vec![x],
            vec![z],
            vec![p.clone(), p],
            |_, _, _| {},
        );
        assert_eq!(sr.num_inputs(&ctx), 1);
        assert_eq!(sr.inputs(&ctx), &[x]);
        assert_eq!(sr.outputs(&ctx), &[z]);
        assert_eq!(sr.patterns(&ctx).len(), 2);
        assert_eq!(
            *ctx.value_type(ctx.block_args(sr.body(&ctx))[0]),
            Type::ReadableStream(Box::new(Type::F64))
        );
        assert_eq!(
            *ctx.value_type(ctx.block_args(sr.body(&ctx))[1]),
            Type::WritableStream(Box::new(Type::F64))
        );
    }

    #[test]
    fn verify_rejects_read_from_writable() {
        let (mut ctx, r, m, b) = setup();
        let buf = Type::memref(vec![4], Type::F64);
        let (_f, entry) = func::build_func(&mut ctx, b, "k", vec![buf], vec![]);
        let z = ctx.block_args(entry)[0];
        let p = StridePattern::new(vec![4], AffineMap::identity(1));
        build_streaming_region(&mut ctx, entry, vec![], vec![z], vec![p], |ctx, body, streams| {
            ctx.append_op(
                body,
                OpSpec::new(READ).operands(vec![streams[0]]).results(vec![Type::F64]),
            );
        });
        func::build_return(&mut ctx, entry, vec![]);
        assert!(r.verify(&ctx, m).is_err());
    }

    #[test]
    fn verify_rejects_pattern_count_mismatch() {
        let (mut ctx, r, m, b) = setup();
        let buf = Type::memref(vec![4], Type::F64);
        let (_f, entry) = func::build_func(&mut ctx, b, "k", vec![buf], vec![]);
        let z = ctx.block_args(entry)[0];
        let op = ctx.append_op(
            entry,
            OpSpec::new(STREAMING_REGION)
                .operands(vec![z])
                .attr(structured::NUM_INPUTS, Attribute::Int(0))
                .attr(PATTERNS, Attribute::Array(vec![]))
                .regions(1),
        );
        ctx.create_block(ctx.op(op).regions[0], vec![Type::WritableStream(Box::new(Type::F64))]);
        func::build_return(&mut ctx, entry, vec![]);
        assert!(r.verify(&ctx, m).is_err());
    }

    #[test]
    fn generic_requires_bounds() {
        let (mut ctx, r, m, b) = setup();
        let buf = Type::memref(vec![4], Type::F64);
        let (_f, entry) = func::build_func(&mut ctx, b, "k", vec![buf.clone(), buf], vec![]);
        let x = ctx.block_args(entry)[0];
        let z = ctx.block_args(entry)[1];
        let id = AffineMap::identity(1);
        let g = ctx.append_op(
            entry,
            OpSpec::new(GENERIC)
                .operands(vec![x, z])
                .attr(
                    structured::INDEXING_MAPS,
                    Attribute::Array(vec![Attribute::Map(id.clone()), Attribute::Map(id)]),
                )
                .attr(
                    structured::ITERATOR_TYPES,
                    Attribute::Iterators(vec![mlb_ir::IteratorType::Parallel]),
                )
                .attr(structured::NUM_INPUTS, Attribute::Int(1))
                .regions(1),
        );
        let body = ctx.create_block(ctx.op(g).regions[0], vec![Type::F64, Type::F64]);
        let arg = ctx.block_args(body)[0];
        ctx.append_op(body, OpSpec::new(YIELD).operands(vec![arg]));
        func::build_return(&mut ctx, entry, vec![]);
        let err = r.verify(&ctx, m).unwrap_err();
        assert!(err.message.contains("bounds"), "{err}");

        // Adding bounds fixes it.
        ctx.op_mut(g).attrs.insert(structured::BOUNDS.into(), Attribute::DenseI64(vec![4]));
        assert!(r.verify(&ctx, m).is_ok(), "{:?}", r.verify(&ctx, m));
        let s = StreamGenericOp(g);
        assert_eq!(s.interleave_factor(&ctx), 1);
        assert_eq!(s.num_inits(&ctx), 0);
        assert_eq!(s.bounds(&ctx), vec![4]);
    }
}
