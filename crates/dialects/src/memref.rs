//! The `memref` dialect: loads and stores on shaped buffers.

use mlb_ir::{BlockId, Context, DialectRegistry, OpId, OpInfo, OpSpec, Type, ValueId, VerifyError};

/// `memref.load`: reads one element. Operands: `memref, indices...`.
pub const LOAD: &str = "memref.load";
/// `memref.store`: writes one element. Operands: `value, memref, indices...`.
pub const STORE: &str = "memref.store";
/// `memref.offset`: rebases a memref by an element offset. Operands:
/// `memref, offset` (in elements); result has the same memref type. The
/// `distribute-to-cores` pass uses it to hand each core its shard of a
/// buffer without changing the operand's type.
pub const OFFSET: &str = "memref.offset";

/// Registers the `memref` dialect.
pub fn register(registry: &mut DialectRegistry) {
    registry.register(OpInfo::new(LOAD).with_verify(verify_load));
    registry.register(OpInfo::new(STORE).with_verify(verify_store));
    registry.register(OpInfo::new(OFFSET).pure().with_verify(verify_offset));
}

fn memref_of(ctx: &Context, op: OpId, v: ValueId) -> Result<mlb_ir::MemRefType, VerifyError> {
    match ctx.value_type(v) {
        Type::MemRef(m) => Ok(m.clone()),
        other => Err(VerifyError::new(ctx, op, format!("expected memref operand, got {other}"))),
    }
}

fn verify_indices(
    ctx: &Context,
    op: OpId,
    m: &mlb_ir::MemRefType,
    indices: &[ValueId],
) -> Result<(), VerifyError> {
    if indices.len() != m.shape.len() {
        return Err(VerifyError::new(
            ctx,
            op,
            format!("expected {} indices, got {}", m.shape.len(), indices.len()),
        ));
    }
    for &i in indices {
        if *ctx.value_type(i) != Type::Index {
            return Err(VerifyError::new(ctx, op, "indices must have index type"));
        }
    }
    Ok(())
}

fn verify_load(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    let o = ctx.op(op);
    if o.operands.is_empty() || o.results.len() != 1 {
        return Err(VerifyError::new(ctx, op, "load takes a memref plus indices, one result"));
    }
    let m = memref_of(ctx, op, o.operands[0])?;
    verify_indices(ctx, op, &m, &o.operands[1..])?;
    if ctx.value_type(o.results[0]) != m.element.as_ref() {
        return Err(VerifyError::new(ctx, op, "result type differs from element type"));
    }
    Ok(())
}

fn verify_store(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    let o = ctx.op(op);
    if o.operands.len() < 2 || !o.results.is_empty() {
        return Err(VerifyError::new(
            ctx,
            op,
            "store takes value, memref plus indices, no results",
        ));
    }
    let m = memref_of(ctx, op, o.operands[1])?;
    verify_indices(ctx, op, &m, &o.operands[2..])?;
    if ctx.value_type(o.operands[0]) != m.element.as_ref() {
        return Err(VerifyError::new(ctx, op, "stored value type differs from element type"));
    }
    Ok(())
}

fn verify_offset(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    let o = ctx.op(op);
    if o.operands.len() != 2 || o.results.len() != 1 {
        return Err(VerifyError::new(ctx, op, "offset takes a memref and an element offset"));
    }
    let m = memref_of(ctx, op, o.operands[0])?;
    if *ctx.value_type(o.operands[1]) != Type::Index {
        return Err(VerifyError::new(ctx, op, "offset must have index type"));
    }
    match ctx.value_type(o.results[0]) {
        Type::MemRef(r) if *r == m => Ok(()),
        _ => Err(VerifyError::new(ctx, op, "result type differs from memref operand type")),
    }
}

/// Builds a `memref.offset` rebasing `memref` by `offset` elements.
pub fn build_offset(
    ctx: &mut Context,
    block: BlockId,
    memref: ValueId,
    offset: ValueId,
) -> ValueId {
    let ty = ctx.value_type(memref).clone();
    let op =
        ctx.append_op(block, OpSpec::new(OFFSET).operands(vec![memref, offset]).results(vec![ty]));
    ctx.op(op).results[0]
}

/// Builds a `memref.load`.
pub fn build_load(
    ctx: &mut Context,
    block: BlockId,
    memref: ValueId,
    indices: Vec<ValueId>,
) -> ValueId {
    let elem = match ctx.value_type(memref) {
        Type::MemRef(m) => (*m.element).clone(),
        other => panic!("build_load on non-memref type {other}"),
    };
    let mut operands = vec![memref];
    operands.extend(indices);
    let op = ctx.append_op(block, OpSpec::new(LOAD).operands(operands).results(vec![elem]));
    ctx.op(op).results[0]
}

/// Builds a `memref.store`.
pub fn build_store(
    ctx: &mut Context,
    block: BlockId,
    value: ValueId,
    memref: ValueId,
    indices: Vec<ValueId>,
) -> OpId {
    let mut operands = vec![value, memref];
    operands.extend(indices);
    ctx.append_op(block, OpSpec::new(STORE).operands(operands))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{arith, builtin, func};

    fn setup() -> (Context, DialectRegistry, OpId, BlockId) {
        let mut ctx = Context::new();
        let mut r = DialectRegistry::new();
        builtin::register(&mut r);
        arith::register(&mut r);
        func::register(&mut r);
        register(&mut r);
        let (m, b) = builtin::build_module(&mut ctx);
        (ctx, r, m, b)
    }

    #[test]
    fn load_store_round() {
        let (mut ctx, r, m, b) = setup();
        let buf_ty = Type::memref(vec![4, 8], Type::F64);
        let (_f, entry) = func::build_func(&mut ctx, b, "k", vec![buf_ty], vec![]);
        let buf = ctx.block_args(entry)[0];
        let i = arith::constant_index(&mut ctx, entry, 1);
        let j = arith::constant_index(&mut ctx, entry, 2);
        let v = build_load(&mut ctx, entry, buf, vec![i, j]);
        build_store(&mut ctx, entry, v, buf, vec![j, i]);
        func::build_return(&mut ctx, entry, vec![]);
        assert!(r.verify(&ctx, m).is_ok());
    }

    #[test]
    fn verify_rejects_wrong_index_count() {
        let (mut ctx, r, m, b) = setup();
        let buf_ty = Type::memref(vec![4, 8], Type::F64);
        let (_f, entry) = func::build_func(&mut ctx, b, "k", vec![buf_ty], vec![]);
        let buf = ctx.block_args(entry)[0];
        let i = arith::constant_index(&mut ctx, entry, 1);
        ctx.append_op(entry, OpSpec::new(LOAD).operands(vec![buf, i]).results(vec![Type::F64]));
        func::build_return(&mut ctx, entry, vec![]);
        assert!(r.verify(&ctx, m).is_err());
    }

    #[test]
    fn verify_rejects_non_index_indices() {
        let (mut ctx, r, m, b) = setup();
        let buf_ty = Type::memref(vec![4], Type::F64);
        let (_f, entry) = func::build_func(&mut ctx, b, "k", vec![buf_ty], vec![]);
        let buf = ctx.block_args(entry)[0];
        let f = arith::constant_float(&mut ctx, entry, 0.0, Type::F64);
        ctx.append_op(entry, OpSpec::new(LOAD).operands(vec![buf, f]).results(vec![Type::F64]));
        func::build_return(&mut ctx, entry, vec![]);
        assert!(r.verify(&ctx, m).is_err());
    }
}
