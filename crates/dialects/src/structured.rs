//! Shared machinery for structured ("generic") operations.
//!
//! `linalg.generic` and `memref_stream.generic` share their anatomy: a set
//! of input and output operands, one affine indexing map per operand, an
//! iterator type per iteration dimension, and a single-block body computing
//! one iteration point (Section 2.2). This module hosts the accessors and
//! verification common to both.

use mlb_ir::{
    AffineExpr, Attribute, BlockId, Context, IteratorType, OpId, Type, ValueId, VerifyError,
};

/// Attribute key holding the indexing maps.
pub const INDEXING_MAPS: &str = "indexing_maps";
/// Attribute key holding the iterator types.
pub const ITERATOR_TYPES: &str = "iterator_types";
/// Attribute key holding the number of inputs.
pub const NUM_INPUTS: &str = "num_inputs";
/// Attribute key holding explicit iteration bounds (`memref_stream` only,
/// optionally present on `linalg.generic` when inference is ambiguous).
pub const BOUNDS: &str = "bounds";

/// Typed view over a structured generic op (either dialect).
#[derive(Debug, Clone, Copy)]
pub struct GenericOp(pub OpId);

impl GenericOp {
    /// Number of input operands.
    pub fn num_inputs(self, ctx: &Context) -> usize {
        ctx.op(self.0)
            .attr(NUM_INPUTS)
            .and_then(Attribute::as_int)
            .expect("generic op missing num_inputs") as usize
    }

    /// The input operands.
    pub fn inputs(self, ctx: &Context) -> &[ValueId] {
        &ctx.op(self.0).operands[..self.num_inputs(ctx)]
    }

    /// The output operands.
    pub fn outputs(self, ctx: &Context) -> &[ValueId] {
        &ctx.op(self.0).operands[self.num_inputs(ctx)..]
    }

    /// The indexing maps, one per operand (inputs then outputs).
    pub fn indexing_maps(self, ctx: &Context) -> Vec<mlb_ir::AffineMap> {
        ctx.op(self.0)
            .attr(INDEXING_MAPS)
            .and_then(Attribute::as_array)
            .expect("generic op missing indexing_maps")
            .iter()
            .map(|a| a.as_map().expect("indexing_maps entry is not a map").clone())
            .collect()
    }

    /// The iterator types, one per iteration dimension.
    pub fn iterator_types(self, ctx: &Context) -> Vec<IteratorType> {
        ctx.op(self.0)
            .attr(ITERATOR_TYPES)
            .and_then(Attribute::as_iterators)
            .expect("generic op missing iterator_types")
            .to_vec()
    }

    /// The single body block.
    pub fn body(self, ctx: &Context) -> BlockId {
        ctx.sole_block(ctx.op(self.0).regions[0])
    }

    /// The iteration-space bounds: the explicit `bounds` attribute if
    /// present, otherwise inferred from operand shapes where a dimension
    /// appears as a bare map result.
    pub fn bounds(self, ctx: &Context) -> Option<Vec<i64>> {
        if let Some(b) = ctx.op(self.0).attr(BOUNDS).and_then(Attribute::as_dense_i64) {
            return Some(b.to_vec());
        }
        let maps = self.indexing_maps(ctx);
        let num_dims = self.iterator_types(ctx).len();
        let mut bounds = vec![None; num_dims];
        for (operand, map) in ctx.op(self.0).operands.iter().zip(&maps) {
            let Type::MemRef(m) = ctx.value_type(*operand) else { continue };
            for (result_idx, expr) in map.results.iter().enumerate() {
                if let AffineExpr::Dim(d) = expr {
                    let size = m.shape.get(result_idx).copied()?;
                    match bounds[*d] {
                        None => bounds[*d] = Some(size),
                        Some(prev) if prev != size => return None,
                        Some(_) => {}
                    }
                }
            }
        }
        bounds.into_iter().collect()
    }
}

/// Verifies the shared anatomy of a structured generic op.
pub fn verify_generic(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    let o = ctx.op(op);
    if o.regions.len() != 1 {
        return Err(VerifyError::new(ctx, op, "generic must have exactly one region"));
    }
    let Some(num_inputs) = o.attr(NUM_INPUTS).and_then(Attribute::as_int) else {
        return Err(VerifyError::new(ctx, op, "missing `num_inputs` attribute"));
    };
    let num_inputs = num_inputs as usize;
    if num_inputs > o.operands.len() {
        return Err(VerifyError::new(ctx, op, "`num_inputs` exceeds operand count"));
    }
    let Some(maps) = o.attr(INDEXING_MAPS).and_then(Attribute::as_array) else {
        return Err(VerifyError::new(ctx, op, "missing `indexing_maps` attribute"));
    };
    // Fused initial values (memref_stream fuse-fill) trail the operand
    // list and carry no indexing map.
    let num_inits = o.attr("num_inits").and_then(Attribute::as_int).unwrap_or(0) as usize;
    if maps.len() + num_inits != o.operands.len() {
        return Err(VerifyError::new(ctx, op, "one indexing map per non-init operand required"));
    }
    let Some(iterators) = o.attr(ITERATOR_TYPES).and_then(Attribute::as_iterators) else {
        return Err(VerifyError::new(ctx, op, "missing `iterator_types` attribute"));
    };
    for (i, m) in maps.iter().enumerate() {
        let Some(map) = m.as_map() else {
            return Err(VerifyError::new(
                ctx,
                op,
                format!("indexing map {i} is not an affine map"),
            ));
        };
        if map.num_dims != iterators.len() {
            return Err(VerifyError::new(
                ctx,
                op,
                format!(
                    "indexing map {i} has {} dims but there are {} iterator types",
                    map.num_dims,
                    iterators.len()
                ),
            ));
        }
    }
    if let Some(bounds) = o.attr(BOUNDS) {
        let Some(bounds) = bounds.as_dense_i64() else {
            return Err(VerifyError::new(ctx, op, "`bounds` must be a dense integer array"));
        };
        if bounds.len() != iterators.len() {
            return Err(VerifyError::new(ctx, op, "one bound per iteration dimension required"));
        }
        if bounds.iter().any(|&b| b <= 0) {
            return Err(VerifyError::new(ctx, op, "bounds must be positive"));
        }
    }
    let blocks = ctx.region_blocks(o.regions[0]);
    if blocks.len() != 1 {
        return Err(VerifyError::new(ctx, op, "generic body must be a single block"));
    }
    Ok(())
}

/// Scalar element type of an operand as seen by the body: element type for
/// memrefs and streams, the type itself for scalars.
pub fn body_element_type(ctx: &Context, v: ValueId) -> Type {
    match ctx.value_type(v) {
        Type::MemRef(m) => (*m.element).clone(),
        Type::ReadableStream(t) | Type::WritableStream(t) => (**t).clone(),
        other => other.clone(),
    }
}
