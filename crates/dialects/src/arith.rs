//! The `arith` dialect: scalar arithmetic on SSA values.

use mlb_ir::{
    Attribute, BlockId, Context, DialectRegistry, OpId, OpInfo, OpSpec, Type, ValueId, VerifyError,
};

/// `arith.constant`: materializes a compile-time constant (`value` attr).
pub const CONSTANT: &str = "arith.constant";
/// `arith.addf`: floating-point addition.
pub const ADDF: &str = "arith.addf";
/// `arith.subf`: floating-point subtraction.
pub const SUBF: &str = "arith.subf";
/// `arith.mulf`: floating-point multiplication.
pub const MULF: &str = "arith.mulf";
/// `arith.divf`: floating-point division.
pub const DIVF: &str = "arith.divf";
/// `arith.maximumf`: floating-point maximum (used by ReLU and Max Pool).
pub const MAXIMUMF: &str = "arith.maximumf";
/// `arith.addi`: integer/index addition.
pub const ADDI: &str = "arith.addi";
/// `arith.subi`: integer/index subtraction.
pub const SUBI: &str = "arith.subi";
/// `arith.muli`: integer/index multiplication.
pub const MULI: &str = "arith.muli";

/// The floating-point binary operations.
pub const FLOAT_BINARY_OPS: [&str; 5] = [ADDF, SUBF, MULF, DIVF, MAXIMUMF];
/// The integer binary operations.
pub const INT_BINARY_OPS: [&str; 3] = [ADDI, SUBI, MULI];

/// Registers the `arith` dialect.
pub fn register(registry: &mut DialectRegistry) {
    registry.register(OpInfo::new(CONSTANT).pure().with_verify(verify_constant));
    for name in FLOAT_BINARY_OPS {
        registry.register(OpInfo::new(name).pure().with_verify(verify_float_binary));
    }
    for name in INT_BINARY_OPS {
        registry.register(OpInfo::new(name).pure().with_verify(verify_int_binary));
    }
}

fn verify_binary_shape(ctx: &Context, op: OpId) -> Result<(Type, Type, Type), VerifyError> {
    let o = ctx.op(op);
    if o.operands.len() != 2 || o.results.len() != 1 {
        return Err(VerifyError::new(ctx, op, "expected two operands and one result"));
    }
    Ok((
        ctx.value_type(o.operands[0]).clone(),
        ctx.value_type(o.operands[1]).clone(),
        ctx.value_type(o.results[0]).clone(),
    ))
}

fn verify_float_binary(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    let (a, b, r) = verify_binary_shape(ctx, op)?;
    if a != b || b != r {
        return Err(VerifyError::new(ctx, op, "operand and result types must match"));
    }
    if !a.is_float() {
        return Err(VerifyError::new(ctx, op, "expected floating-point operands"));
    }
    Ok(())
}

fn verify_int_binary(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    let (a, b, r) = verify_binary_shape(ctx, op)?;
    if a != b || b != r {
        return Err(VerifyError::new(ctx, op, "operand and result types must match"));
    }
    if !matches!(a, Type::Integer(_) | Type::Index) {
        return Err(VerifyError::new(ctx, op, "expected integer or index operands"));
    }
    Ok(())
}

fn verify_constant(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    let o = ctx.op(op);
    if !o.operands.is_empty() || o.results.len() != 1 {
        return Err(VerifyError::new(ctx, op, "expected no operands and one result"));
    }
    let ty = ctx.value_type(o.results[0]);
    match o.attr("value") {
        Some(Attribute::Float(_)) if ty.is_float() => Ok(()),
        Some(Attribute::Int(_)) if matches!(ty, Type::Integer(_) | Type::Index) => Ok(()),
        Some(_) => Err(VerifyError::new(ctx, op, "`value` attribute does not match result type")),
        None => Err(VerifyError::new(ctx, op, "missing `value` attribute")),
    }
}

/// Builds a floating-point constant.
pub fn constant_float(ctx: &mut Context, block: BlockId, value: f64, ty: Type) -> ValueId {
    assert!(ty.is_float(), "constant_float requires a float type");
    let op = ctx.append_op(
        block,
        OpSpec::new(CONSTANT).attr("value", Attribute::Float(value)).results(vec![ty]),
    );
    ctx.op(op).results[0]
}

/// Builds an index-typed constant.
pub fn constant_index(ctx: &mut Context, block: BlockId, value: i64) -> ValueId {
    let op = ctx.append_op(
        block,
        OpSpec::new(CONSTANT).attr("value", Attribute::Int(value)).results(vec![Type::Index]),
    );
    ctx.op(op).results[0]
}

/// Builds a binary operation `name` on `lhs`/`rhs` of the same type.
pub fn binary(
    ctx: &mut Context,
    block: BlockId,
    name: &str,
    lhs: ValueId,
    rhs: ValueId,
) -> ValueId {
    let ty = ctx.value_type(lhs).clone();
    let op = ctx.append_op(block, OpSpec::new(name).operands(vec![lhs, rhs]).results(vec![ty]));
    ctx.op(op).results[0]
}

/// The constant value of an `arith.constant` defining `value`, if any.
pub fn constant_value(ctx: &Context, value: ValueId) -> Option<&Attribute> {
    let op = ctx.defining_op(value)?;
    if ctx.op(op).name == CONSTANT {
        ctx.op(op).attr("value")
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin;

    fn setup() -> (Context, DialectRegistry, OpId, BlockId) {
        let mut ctx = Context::new();
        let mut r = DialectRegistry::new();
        builtin::register(&mut r);
        register(&mut r);
        let (m, b) = builtin::build_module(&mut ctx);
        (ctx, r, m, b)
    }

    #[test]
    fn build_constants_and_binary() {
        let (mut ctx, r, m, b) = setup();
        let one = constant_float(&mut ctx, b, 1.0, Type::F64);
        let two = constant_float(&mut ctx, b, 2.0, Type::F64);
        let _sum = binary(&mut ctx, b, ADDF, one, two);
        let i = constant_index(&mut ctx, b, 5);
        let _prod = binary(&mut ctx, b, MULI, i, i);
        assert!(r.verify(&ctx, m).is_ok());
    }

    #[test]
    fn constant_value_lookup() {
        let (mut ctx, _r, _m, b) = setup();
        let c = constant_float(&mut ctx, b, 2.5, Type::F64);
        assert_eq!(constant_value(&ctx, c).and_then(Attribute::as_float), Some(2.5));
        let i = constant_index(&mut ctx, b, 7);
        assert_eq!(constant_value(&ctx, i).and_then(Attribute::as_int), Some(7));
        let s = binary(&mut ctx, b, ADDF, c, c);
        assert_eq!(constant_value(&ctx, s), None);
    }

    #[test]
    fn verify_rejects_mixed_types() {
        let (mut ctx, r, m, b) = setup();
        let f = constant_float(&mut ctx, b, 1.0, Type::F64);
        let i = constant_index(&mut ctx, b, 1);
        ctx.append_op(b, OpSpec::new(ADDF).operands(vec![f, i]).results(vec![Type::F64]));
        assert!(r.verify(&ctx, m).is_err());
    }

    #[test]
    fn verify_rejects_int_op_on_floats() {
        let (mut ctx, r, m, b) = setup();
        let f = constant_float(&mut ctx, b, 1.0, Type::F64);
        ctx.append_op(b, OpSpec::new(ADDI).operands(vec![f, f]).results(vec![Type::F64]));
        assert!(r.verify(&ctx, m).is_err());
    }

    #[test]
    fn verify_rejects_bad_constant_attr() {
        let (mut ctx, r, m, b) = setup();
        ctx.append_op(
            b,
            OpSpec::new(CONSTANT).attr("value", Attribute::Int(1)).results(vec![Type::F64]),
        );
        assert!(r.verify(&ctx, m).is_err());
    }
}
