//! The `scf` dialect: structured control flow.
//!
//! `scf.for` keeps loops structured all the way into the backend, which is
//! what enables the paper's direct, spill-free register allocation
//! (Section 3.3): live ranges fall out of region nesting instead of basic
//! block analysis.

use mlb_ir::{BlockId, Context, DialectRegistry, OpId, OpInfo, OpSpec, Type, ValueId, VerifyError};

/// `scf.for`: counted loop. Operands: `lb, ub, step, init...`; region block
/// args: `iv, iter...`; results: final iteration values.
pub const FOR: &str = "scf.for";
/// `scf.yield`: loop body terminator carrying next-iteration values.
pub const YIELD: &str = "scf.yield";

/// Registers the `scf` dialect.
pub fn register(registry: &mut DialectRegistry) {
    registry.register(OpInfo::new(FOR).with_verify(verify_for));
    registry.register(OpInfo::new(YIELD).terminator().with_verify(verify_yield));
}

fn verify_for(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    let o = ctx.op(op);
    if o.regions.len() != 1 {
        return Err(VerifyError::new(ctx, op, "for must have exactly one region"));
    }
    if o.operands.len() < 3 {
        return Err(VerifyError::new(ctx, op, "for needs lb, ub and step operands"));
    }
    let num_iter = o.operands.len() - 3;
    if o.results.len() != num_iter {
        return Err(VerifyError::new(ctx, op, "result count differs from iter-arg count"));
    }
    let blocks = ctx.region_blocks(o.regions[0]);
    if blocks.len() != 1 {
        return Err(VerifyError::new(ctx, op, "for body must be a single block"));
    }
    let args = ctx.block_args(blocks[0]);
    if args.len() != num_iter + 1 {
        return Err(VerifyError::new(
            ctx,
            op,
            "body must take the induction variable plus iter args",
        ));
    }
    for i in 0..num_iter {
        let init_ty = ctx.value_type(o.operands[3 + i]);
        let arg_ty = ctx.value_type(args[1 + i]);
        let res_ty = ctx.value_type(o.results[i]);
        if init_ty != arg_ty || arg_ty != res_ty {
            return Err(VerifyError::new(
                ctx,
                op,
                format!("iter arg {i}: init, block arg and result types must match"),
            ));
        }
    }
    Ok(())
}

fn verify_yield(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    let Some(parent) = ctx.parent_op(op) else {
        return Err(VerifyError::new(ctx, op, "yield outside of any op"));
    };
    if ctx.op(parent).name != FOR {
        return Err(VerifyError::new(ctx, op, "scf.yield must be inside scf.for"));
    }
    if ctx.op(op).operands.len() != ctx.op(parent).results.len() {
        return Err(VerifyError::new(ctx, op, "yield arity differs from loop results"));
    }
    Ok(())
}

/// A typed view over an `scf.for` operation.
#[derive(Debug, Clone, Copy)]
pub struct ForOp(pub OpId);

impl ForOp {
    /// Wraps `op`, checking the name.
    pub fn new(ctx: &Context, op: OpId) -> Option<ForOp> {
        (ctx.op(op).name == FOR).then_some(ForOp(op))
    }

    /// The lower bound operand.
    pub fn lower_bound(self, ctx: &Context) -> ValueId {
        ctx.op(self.0).operands[0]
    }

    /// The upper bound operand.
    pub fn upper_bound(self, ctx: &Context) -> ValueId {
        ctx.op(self.0).operands[1]
    }

    /// The step operand.
    pub fn step(self, ctx: &Context) -> ValueId {
        ctx.op(self.0).operands[2]
    }

    /// The loop-carried initial values.
    pub fn iter_inits(self, ctx: &Context) -> &[ValueId] {
        &ctx.op(self.0).operands[3..]
    }

    /// The single body block.
    pub fn body(self, ctx: &Context) -> BlockId {
        ctx.sole_block(ctx.op(self.0).regions[0])
    }

    /// The induction variable block argument.
    pub fn induction_var(self, ctx: &Context) -> ValueId {
        ctx.block_args(self.body(ctx))[0]
    }

    /// The loop-carried block arguments (excluding the induction variable).
    pub fn iter_args(self, ctx: &Context) -> &[ValueId] {
        &ctx.block_args(self.body(ctx))[1..]
    }

    /// The `scf.yield` terminator of the body.
    pub fn yield_op(self, ctx: &Context) -> OpId {
        ctx.terminator(self.body(ctx))
    }
}

/// Builds an `scf.for` loop. `body` receives the body block, the induction
/// variable and the iteration arguments, and returns the yielded values.
///
/// ```
/// use mlb_ir::{Context, Type};
/// use mlb_dialects::{arith, builtin, scf};
/// let mut ctx = Context::new();
/// let (_m, b) = builtin::build_module(&mut ctx);
/// let lb = arith::constant_index(&mut ctx, b, 0);
/// let ub = arith::constant_index(&mut ctx, b, 10);
/// let step = arith::constant_index(&mut ctx, b, 1);
/// let zero = arith::constant_float(&mut ctx, b, 0.0, Type::F64);
/// let sum = scf::build_for(&mut ctx, b, lb, ub, step, vec![zero], |ctx, body, _iv, args| {
///     let acc = args[0];
///     vec![arith::binary(ctx, body, arith::ADDF, acc, acc)]
/// });
/// assert_eq!(ctx.op(sum.0).results.len(), 1);
/// ```
pub fn build_for(
    ctx: &mut Context,
    block: BlockId,
    lb: ValueId,
    ub: ValueId,
    step: ValueId,
    inits: Vec<ValueId>,
    body: impl FnOnce(&mut Context, BlockId, ValueId, &[ValueId]) -> Vec<ValueId>,
) -> ForOp {
    let result_types: Vec<Type> = inits.iter().map(|&v| ctx.value_type(v).clone()).collect();
    let mut operands = vec![lb, ub, step];
    operands.extend(inits);
    let op = ctx.append_op(
        block,
        OpSpec::new(FOR).operands(operands).results(result_types.clone()).regions(1),
    );
    let mut arg_types = vec![Type::Index];
    arg_types.extend(result_types);
    let body_block = ctx.create_block(ctx.op(op).regions[0], arg_types);
    let iv = ctx.block_args(body_block)[0];
    let iter_args = ctx.block_args(body_block)[1..].to_vec();
    let yields = body(ctx, body_block, iv, &iter_args);
    ctx.append_op(body_block, OpSpec::new(YIELD).operands(yields));
    ForOp(op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{arith, builtin};

    fn setup() -> (Context, DialectRegistry, OpId, BlockId) {
        let mut ctx = Context::new();
        let mut r = DialectRegistry::new();
        builtin::register(&mut r);
        arith::register(&mut r);
        register(&mut r);
        let (m, b) = builtin::build_module(&mut ctx);
        (ctx, r, m, b)
    }

    #[test]
    fn build_accumulating_loop() {
        let (mut ctx, r, m, b) = setup();
        let lb = arith::constant_index(&mut ctx, b, 0);
        let ub = arith::constant_index(&mut ctx, b, 8);
        let step = arith::constant_index(&mut ctx, b, 1);
        let init = arith::constant_float(&mut ctx, b, 0.0, Type::F64);
        let f = build_for(&mut ctx, b, lb, ub, step, vec![init], |ctx, body, _iv, args| {
            vec![arith::binary(ctx, body, arith::ADDF, args[0], args[0])]
        });
        assert!(r.verify(&ctx, m).is_ok());
        assert_eq!(f.lower_bound(&ctx), lb);
        assert_eq!(f.upper_bound(&ctx), ub);
        assert_eq!(f.step(&ctx), step);
        assert_eq!(f.iter_inits(&ctx), &[init]);
        assert_eq!(f.iter_args(&ctx).len(), 1);
        assert_eq!(*ctx.value_type(f.induction_var(&ctx)), Type::Index);
        assert_eq!(ctx.op(f.yield_op(&ctx)).name, YIELD);
    }

    #[test]
    fn nested_loops_verify() {
        let (mut ctx, r, m, b) = setup();
        let lb = arith::constant_index(&mut ctx, b, 0);
        let ub = arith::constant_index(&mut ctx, b, 4);
        let step = arith::constant_index(&mut ctx, b, 1);
        build_for(&mut ctx, b, lb, ub, step, vec![], |ctx, body, _iv, _| {
            build_for(ctx, body, lb, ub, step, vec![], |_, _, _, _| vec![]);
            vec![]
        });
        assert!(r.verify(&ctx, m).is_ok());
    }

    #[test]
    fn verify_rejects_yield_arity_mismatch() {
        let (mut ctx, r, m, b) = setup();
        let lb = arith::constant_index(&mut ctx, b, 0);
        let f = build_for(&mut ctx, b, lb, lb, lb, vec![], |_, _, _, _| vec![]);
        // Manually corrupt: add an operand to the yield.
        let y = f.yield_op(&ctx);
        ctx.push_operand(y, lb);
        assert!(r.verify(&ctx, m).is_err());
    }

    #[test]
    fn for_wrapper_rejects_other_ops() {
        let (mut ctx, _r, _m, b) = setup();
        let c = arith::constant_index(&mut ctx, b, 0);
        let op = ctx.defining_op(c).unwrap();
        assert!(ForOp::new(&ctx, op).is_none());
    }
}
