//! The `builtin` dialect: the top-level module container.

use mlb_ir::{BlockId, Context, DialectRegistry, OpId, OpInfo, OpSpec, VerifyError};

/// `builtin.module`: the top-level single-region container.
pub const MODULE: &str = "builtin.module";

/// Registers the `builtin` dialect.
pub fn register(registry: &mut DialectRegistry) {
    registry.register(OpInfo::new(MODULE).with_verify(verify_module));
}

fn verify_module(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    let o = ctx.op(op);
    if o.regions.len() != 1 {
        return Err(VerifyError::new(ctx, op, "module must have exactly one region"));
    }
    if !o.operands.is_empty() || !o.results.is_empty() {
        return Err(VerifyError::new(ctx, op, "module takes no operands and produces no results"));
    }
    Ok(())
}

/// Creates an empty `builtin.module`, returning the op and its body block.
pub fn build_module(ctx: &mut Context) -> (OpId, BlockId) {
    let module = ctx.create_detached_op(OpSpec::new(MODULE).regions(1));
    let body = ctx.create_block(ctx.op(module).regions[0], vec![]);
    (module, body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_verify() {
        let mut ctx = Context::new();
        let mut r = DialectRegistry::new();
        register(&mut r);
        let (module, body) = build_module(&mut ctx);
        assert!(r.verify(&ctx, module).is_ok());
        assert!(ctx.block_ops(body).is_empty());
    }

    #[test]
    fn verify_rejects_extra_results() {
        let mut ctx = Context::new();
        let mut r = DialectRegistry::new();
        register(&mut r);
        let bad =
            ctx.create_detached_op(OpSpec::new(MODULE).regions(1).results(vec![mlb_ir::Type::F64]));
        ctx.create_block(ctx.op(bad).regions[0], vec![]);
        assert!(r.verify(&ctx, bad).is_err());
    }
}
