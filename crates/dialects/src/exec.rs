//! Execution semantics for the upstream-style dialects.
//!
//! Registers one interpreter [`Handler`](mlb_ir::interp::Handler) per
//! operation so the stage-level differential-testing harness can run a
//! module at the `linalg`, `scf`/`memref` and `memref_stream` levels of
//! the progressive lowering. A memref-typed SSA value holds the *base
//! byte address* of its buffer as an integer — the same TCDM addresses
//! the simulator harness places operands at — so interpreted outputs are
//! bit-comparable with simulated ones.
//!
//! The structured-op executor deliberately mirrors what
//! `ConvertMemrefStreamToLoops` emits: iteration points are visited
//! row-major over the non-interleaved dimensions in declared order,
//! interleaved copies bind body arguments operand-major (copy `j` of
//! operand `i` is `arg[i * factor + j]`), fused initial values seed the
//! accumulator at the start of the
//! reduction space, and outputs are written back per point. Because the
//! reduction contributions combine in the same order either way, the
//! results agree bit-for-bit with the lowered loop nest.

use mlb_ir::{
    Attribute, Context, ExecRegistry, Flow, InterpError, Interpreter, IteratorType, MemRefType,
    OpId, Type, Value, ValueId,
};

use crate::structured::GenericOp;
use crate::{arith, func, linalg, memref, memref_stream, scf, structured};

/// Registers execution semantics for every op of this crate's dialects.
pub fn register_exec(registry: &mut ExecRegistry) {
    registry.register(func::RETURN, |_, _, _, _| Ok(Flow::Return));
    registry.register(arith::CONSTANT, exec_constant);
    for name in arith::FLOAT_BINARY_OPS {
        registry.register(name, exec_float_binary);
    }
    for name in arith::INT_BINARY_OPS {
        registry.register(name, exec_int_binary);
    }
    registry.register(scf::FOR, exec_for);
    registry.register(scf::YIELD, exec_nop);
    registry.register(memref::LOAD, exec_load);
    registry.register(memref::STORE, exec_store);
    registry.register(memref::OFFSET, exec_offset);
    registry.register(linalg::FILL, exec_fill);
    registry.register(linalg::GENERIC, exec_generic);
    registry.register(linalg::YIELD, exec_nop);
    registry.register(memref_stream::GENERIC, exec_generic);
    registry.register(memref_stream::YIELD, exec_nop);
    registry.register(memref_stream::STREAMING_REGION, exec_streaming_region);
    registry.register(memref_stream::READ, exec_read);
    registry.register(memref_stream::WRITE, exec_write);
}

fn exec_nop(
    _it: &mut Interpreter,
    _ctx: &Context,
    _reg: &ExecRegistry,
    _op: OpId,
) -> Result<Flow, InterpError> {
    Ok(Flow::Continue)
}

fn exec_constant(
    it: &mut Interpreter,
    ctx: &Context,
    _reg: &ExecRegistry,
    op: OpId,
) -> Result<Flow, InterpError> {
    let o = ctx.op(op);
    let result = o.results[0];
    let value = match (o.attr("value"), ctx.value_type(result)) {
        (Some(Attribute::Float(v)), Type::F64) => Value::F64(*v),
        (Some(Attribute::Float(v)), Type::F32) => Value::F32(*v as f32),
        (Some(Attribute::Int(v)), Type::Index | Type::Integer(_)) => Value::Int(*v),
        _ => return Err(InterpError::at(op, "constant value/type mismatch")),
    };
    it.set(ctx, result, value).map_err(|m| InterpError::at(op, m))?;
    Ok(Flow::Continue)
}

fn exec_float_binary(
    it: &mut Interpreter,
    ctx: &Context,
    _reg: &ExecRegistry,
    op: OpId,
) -> Result<Flow, InterpError> {
    let e = |m: String| InterpError::at(op, m);
    let o = ctx.op(op);
    let (lhs, rhs, result) = (o.operands[0], o.operands[1], o.results[0]);
    let name = o.name.as_str();
    let a = it.get(ctx, lhs).map_err(e)?;
    let b = it.get(ctx, rhs).map_err(e)?;
    let value = match ctx.value_type(result) {
        Type::F64 => {
            let (a, b) = (a.as_f64().map_err(e)?, b.as_f64().map_err(e)?);
            Value::F64(match name {
                arith::ADDF => a + b,
                arith::SUBF => a - b,
                arith::MULF => a * b,
                arith::DIVF => a / b,
                arith::MAXIMUMF => a.max(b),
                _ => return Err(InterpError::at(op, format!("unknown float op `{name}`"))),
            })
        }
        Type::F32 => {
            let (a, b) = (a.as_f32().map_err(e)?, b.as_f32().map_err(e)?);
            Value::F32(match name {
                arith::ADDF => a + b,
                arith::SUBF => a - b,
                arith::MULF => a * b,
                arith::DIVF => a / b,
                arith::MAXIMUMF => a.max(b),
                _ => return Err(InterpError::at(op, format!("unknown float op `{name}`"))),
            })
        }
        other => {
            return Err(InterpError::at(op, format!("float op on non-float type {other}")));
        }
    };
    it.set(ctx, result, value).map_err(e)?;
    Ok(Flow::Continue)
}

fn exec_int_binary(
    it: &mut Interpreter,
    ctx: &Context,
    _reg: &ExecRegistry,
    op: OpId,
) -> Result<Flow, InterpError> {
    let e = |m: String| InterpError::at(op, m);
    let o = ctx.op(op);
    let a = it.get(ctx, o.operands[0]).map_err(e)?.as_int().map_err(e)?;
    let b = it.get(ctx, o.operands[1]).map_err(e)?.as_int().map_err(e)?;
    let value = match o.name.as_str() {
        arith::ADDI => a.wrapping_add(b),
        arith::SUBI => a.wrapping_sub(b),
        arith::MULI => a.wrapping_mul(b),
        name => return Err(InterpError::at(op, format!("unknown int op `{name}`"))),
    };
    it.set(ctx, o.results[0], Value::Int(value)).map_err(e)?;
    Ok(Flow::Continue)
}

fn exec_for(
    it: &mut Interpreter,
    ctx: &Context,
    reg: &ExecRegistry,
    op: OpId,
) -> Result<Flow, InterpError> {
    let e = |m: String| InterpError::at(op, m);
    let f = scf::ForOp::new(ctx, op).ok_or_else(|| InterpError::at(op, "not an scf.for"))?;
    let lb = it.get(ctx, f.lower_bound(ctx)).map_err(e)?.as_int().map_err(e)?;
    let ub = it.get(ctx, f.upper_bound(ctx)).map_err(e)?.as_int().map_err(e)?;
    let step = it.get(ctx, f.step(ctx)).map_err(e)?.as_int().map_err(e)?;
    if step <= 0 {
        return Err(InterpError::at(op, format!("non-positive loop step {step}")));
    }
    let mut iters: Vec<Value> = f
        .iter_inits(ctx)
        .to_vec()
        .into_iter()
        .map(|v| it.get(ctx, v))
        .collect::<Result<_, _>>()
        .map_err(e)?;
    let body = f.body(ctx);
    let mut iv = lb;
    while iv < ub {
        it.set(ctx, f.induction_var(ctx), Value::Int(iv)).map_err(e)?;
        for (&arg, &val) in f.iter_args(ctx).to_vec().iter().zip(&iters) {
            it.set(ctx, arg, val).map_err(e)?;
        }
        match reg.run_block(it, ctx, body)? {
            Flow::Continue => {}
            other => {
                return Err(InterpError::at(op, format!("unexpected {other:?} in a loop body")))
            }
        }
        iters = ctx
            .op(f.yield_op(ctx))
            .operands
            .iter()
            .map(|&v| it.get(ctx, v))
            .collect::<Result<_, _>>()
            .map_err(e)?;
        iv += step;
    }
    for (&res, &val) in ctx.op(op).results.to_vec().iter().zip(&iters) {
        it.set(ctx, res, val).map_err(e)?;
    }
    Ok(Flow::Continue)
}

/// The memref type of `v`, or an interpreter error.
fn memref_type(ctx: &Context, op: OpId, v: ValueId) -> Result<MemRefType, InterpError> {
    match ctx.value_type(v) {
        Type::MemRef(m) => Ok(m.clone()),
        other => Err(InterpError::at(op, format!("expected a memref operand, got {other}"))),
    }
}

/// The byte address of element `indices` of the memref `base` value.
fn element_addr(
    it: &mut Interpreter,
    ctx: &Context,
    op: OpId,
    memref: ValueId,
    m: &MemRefType,
    indices: &[i64],
) -> Result<u32, InterpError> {
    let e = |m: String| InterpError::at(op, m);
    let base = it.get(ctx, memref).map_err(e)?.as_int().map_err(e)?;
    let strides = m.element_strides();
    let elem_off: i64 = indices.iter().zip(&strides).map(|(i, s)| i * s).sum();
    let addr = base + elem_off * m.element.size_in_bytes() as i64;
    u32::try_from(addr).map_err(|_| InterpError::at(op, format!("address {addr:#x} out of range")))
}

fn exec_offset(
    it: &mut Interpreter,
    ctx: &Context,
    _reg: &ExecRegistry,
    op: OpId,
) -> Result<Flow, InterpError> {
    let o = ctx.op(op);
    let (memref, offset, result) = (o.operands[0], o.operands[1], o.results[0]);
    let e = |m: String| InterpError::at(op, m);
    let esz = match ctx.value_type(memref) {
        Type::MemRef(m) => m.element.size_in_bytes() as i64,
        other => return Err(e(format!("expected memref operand, got {other}"))),
    };
    let base = it.get(ctx, memref).map_err(e)?.as_int().map_err(e)?;
    let off = it.get(ctx, offset).map_err(e)?.as_int().map_err(e)?;
    it.set(ctx, result, Value::Int(base + off * esz)).map_err(e)?;
    Ok(Flow::Continue)
}

fn load_element(
    it: &mut Interpreter,
    op: OpId,
    elem: &Type,
    addr: u32,
) -> Result<Value, InterpError> {
    let e = |m: String| InterpError::at(op, m);
    match elem {
        Type::F64 => Ok(Value::F64(it.read_f64(addr).map_err(e)?)),
        Type::F32 => Ok(Value::F32(it.read_f32(addr).map_err(e)?)),
        other => Err(InterpError::at(op, format!("cannot load element type {other}"))),
    }
}

fn store_element(
    it: &mut Interpreter,
    op: OpId,
    elem: &Type,
    addr: u32,
    value: Value,
) -> Result<(), InterpError> {
    let e = |m: String| InterpError::at(op, m);
    match elem {
        Type::F64 => it.write_f64(addr, value.as_f64().map_err(e)?).map_err(e),
        Type::F32 => it.write_f32(addr, value.as_f32().map_err(e)?).map_err(e),
        other => Err(InterpError::at(op, format!("cannot store element type {other}"))),
    }
}

fn exec_load(
    it: &mut Interpreter,
    ctx: &Context,
    _reg: &ExecRegistry,
    op: OpId,
) -> Result<Flow, InterpError> {
    let e = |m: String| InterpError::at(op, m);
    let o = ctx.op(op);
    let (memref, result) = (o.operands[0], o.results[0]);
    let m = memref_type(ctx, op, memref)?;
    let indices: Vec<i64> = o.operands[1..]
        .iter()
        .map(|&v| it.get(ctx, v).and_then(|x| x.as_int()))
        .collect::<Result<_, _>>()
        .map_err(e)?;
    let addr = element_addr(it, ctx, op, memref, &m, &indices)?;
    let value = load_element(it, op, &m.element, addr)?;
    it.set(ctx, result, value).map_err(e)?;
    Ok(Flow::Continue)
}

fn exec_store(
    it: &mut Interpreter,
    ctx: &Context,
    _reg: &ExecRegistry,
    op: OpId,
) -> Result<Flow, InterpError> {
    let e = |m: String| InterpError::at(op, m);
    let o = ctx.op(op);
    let (value, memref) = (o.operands[0], o.operands[1]);
    let m = memref_type(ctx, op, memref)?;
    let indices: Vec<i64> = o.operands[2..]
        .iter()
        .map(|&v| it.get(ctx, v).and_then(|x| x.as_int()))
        .collect::<Result<_, _>>()
        .map_err(e)?;
    let addr = element_addr(it, ctx, op, memref, &m, &indices)?;
    let v = it.get(ctx, value).map_err(e)?;
    store_element(it, op, &m.element, addr, v)?;
    Ok(Flow::Continue)
}

fn exec_fill(
    it: &mut Interpreter,
    ctx: &Context,
    _reg: &ExecRegistry,
    op: OpId,
) -> Result<Flow, InterpError> {
    let e = |m: String| InterpError::at(op, m);
    let o = ctx.op(op);
    let (scalar, target) = (o.operands[0], o.operands[1]);
    let m = memref_type(ctx, op, target)?;
    let value = it.get(ctx, scalar).map_err(e)?;
    let base = it.get(ctx, target).map_err(e)?.as_int().map_err(e)?;
    let esz = m.element.size_in_bytes() as i64;
    for i in 0..m.num_elements() {
        let addr = u32::try_from(base + i * esz)
            .map_err(|_| InterpError::at(op, "fill address out of range"))?;
        store_element(it, op, &m.element, addr, value)?;
    }
    Ok(Flow::Continue)
}

/// Calls `f` for every point of the `bounds` space in row-major order
/// (last dimension fastest). An empty space is the single empty point.
fn for_each_point(
    bounds: &[i64],
    mut f: impl FnMut(&[i64]) -> Result<(), InterpError>,
) -> Result<(), InterpError> {
    if bounds.iter().any(|&b| b <= 0) {
        return Ok(());
    }
    let mut point = vec![0i64; bounds.len()];
    loop {
        f(&point)?;
        let mut d = bounds.len();
        loop {
            if d == 0 {
                return Ok(());
            }
            d -= 1;
            point[d] += 1;
            if point[d] < bounds[d] {
                break;
            }
            point[d] = 0;
        }
    }
}

/// Executes `linalg.generic` and `memref_stream.generic` alike.
fn exec_generic(
    it: &mut Interpreter,
    ctx: &Context,
    reg: &ExecRegistry,
    op: OpId,
) -> Result<Flow, InterpError> {
    let e = |m: String| InterpError::at(op, m);
    let g = GenericOp(op);
    let o = ctx.op(op);
    let num_inputs = o
        .attr(structured::NUM_INPUTS)
        .and_then(Attribute::as_int)
        .ok_or_else(|| InterpError::at(op, "generic is missing `num_inputs`"))?
        as usize;
    let num_inits =
        o.attr(memref_stream::NUM_INITS).and_then(Attribute::as_int).unwrap_or(0) as usize;
    let bounds = g
        .bounds(ctx)
        .ok_or_else(|| InterpError::at(op, "generic iteration bounds cannot be determined"))?;
    let maps = g.indexing_maps(ctx);
    let iterators = g.iterator_types(ctx);
    let body = g.body(ctx);
    let operands = o.operands.clone();
    let mapped = operands.len() - num_inits;
    let num_outputs = mapped - num_inputs;

    // Split dimensions: interleaved ones become body-copy factors, all
    // others are iterated in declared order (row-major).
    let inter_dims: Vec<usize> =
        (0..iterators.len()).filter(|&d| iterators[d] == IteratorType::Interleaved).collect();
    if inter_dims.len() > 1 {
        return Err(InterpError::at(op, "more than one interleaved dimension"));
    }
    let loop_dims: Vec<usize> =
        (0..iterators.len()).filter(|&d| iterators[d] != IteratorType::Interleaved).collect();
    let red_dims: Vec<usize> =
        (0..iterators.len()).filter(|&d| iterators[d] == IteratorType::Reduction).collect();
    let factor = inter_dims.first().map_or(1, |&d| bounds[d] as usize).max(1);
    let loop_bounds: Vec<i64> = loop_dims.iter().map(|&d| bounds[d]).collect();

    let args = ctx.block_args(body).to_vec();
    if args.len() != mapped * factor {
        return Err(InterpError::at(
            op,
            format!("generic body takes {} arguments, expected {}", args.len(), mapped * factor),
        ));
    }
    let term = ctx.terminator(body);
    let yields = ctx.op(term).operands.clone();
    if yields.len() != num_outputs * factor {
        return Err(InterpError::at(
            op,
            format!("generic yields {} values, expected {}", yields.len(), num_outputs * factor),
        ));
    }
    let body_ops: Vec<OpId> = ctx.block_ops(body).iter().copied().filter(|&o| o != term).collect();

    let mut full = vec![0i64; iterators.len()];
    for_each_point(&loop_bounds, |point| {
        for (&d, &p) in loop_dims.iter().zip(point) {
            full[d] = p;
        }
        let at_red_start = red_dims.iter().all(|&d| full[d] == 0);
        // Bind one body argument per (operand, copy): loaded elements
        // for memrefs, the value itself for scalars, and the fused
        // initial value at the start of the reduction space. All copies
        // bind before the body runs once — each op of the (unrolled)
        // body belongs to one copy and reads only that copy's arguments.
        for j in 0..factor {
            if let Some(&d) = inter_dims.first() {
                full[d] = j as i64;
            }
            for (i, &operand) in operands[..mapped].iter().enumerate() {
                let value = match ctx.value_type(operand) {
                    Type::MemRef(m) => {
                        let m = m.clone();
                        let o_rel = i.checked_sub(num_inputs);
                        let seeded = o_rel.is_some_and(|o_rel| o_rel < num_inits) && at_red_start;
                        if seeded {
                            let init = operands[mapped + o_rel.unwrap_or(0)];
                            it.get(ctx, init).map_err(e)?
                        } else {
                            let idx = maps[i].eval(&full, &[]);
                            let addr = element_addr(it, ctx, op, operand, &m, &idx)?;
                            load_element(it, op, &m.element, addr)?
                        }
                    }
                    _ => it.get(ctx, operand).map_err(e)?,
                };
                it.set(ctx, args[i * factor + j], value).map_err(e)?;
            }
        }
        for &body_op in &body_ops {
            match reg.run_op(it, ctx, body_op)? {
                Flow::Continue => {}
                other => {
                    return Err(InterpError::at(
                        op,
                        format!("unexpected {other:?} in a generic body"),
                    ))
                }
            }
        }
        for j in 0..factor {
            if let Some(&d) = inter_dims.first() {
                full[d] = j as i64;
            }
            for o_rel in 0..num_outputs {
                let operand = operands[num_inputs + o_rel];
                let m = memref_type(ctx, op, operand)?;
                let idx = maps[num_inputs + o_rel].eval(&full, &[]);
                let addr = element_addr(it, ctx, op, operand, &m, &idx)?;
                let value = it.get(ctx, yields[o_rel * factor + j]).map_err(e)?;
                store_element(it, op, &m.element, addr, value)?;
            }
        }
        Ok(())
    })?;
    Ok(Flow::Continue)
}

fn exec_streaming_region(
    it: &mut Interpreter,
    ctx: &Context,
    reg: &ExecRegistry,
    op: OpId,
) -> Result<Flow, InterpError> {
    let e = |m: String| InterpError::at(op, m);
    let o = ctx.op(op);
    let num_inputs = o
        .attr(structured::NUM_INPUTS)
        .and_then(Attribute::as_int)
        .ok_or_else(|| InterpError::at(op, "streaming_region is missing `num_inputs`"))?
        as usize;
    let patterns: Vec<_> = o
        .attr(memref_stream::PATTERNS)
        .and_then(Attribute::as_array)
        .ok_or_else(|| InterpError::at(op, "streaming_region is missing `patterns`"))?
        .iter()
        .map(|a| {
            a.as_stride_pattern()
                .cloned()
                .ok_or_else(|| InterpError::at(op, "`patterns` entry is not a stride pattern"))
        })
        .collect::<Result<_, _>>()?;
    let p_count = patterns.len();
    let operands = o.operands.clone();
    let has_offsets = operands.len() == 2 * p_count && p_count > 0;
    let body = ctx.sole_block(o.regions[0]);
    let args = ctx.block_args(body).to_vec();
    if args.len() != p_count {
        return Err(InterpError::at(op, "streaming_region arity mismatch"));
    }

    for (k, pattern) in patterns.iter().enumerate() {
        let memref = operands[k];
        let m = memref_type(ctx, op, memref)?;
        let strides = m.element_strides();
        let esz = m.element.size_in_bytes() as i64;
        let base = it.get(ctx, memref).map_err(e)?.as_int().map_err(e)?;
        let offset = if has_offsets {
            it.get(ctx, operands[p_count + k]).map_err(e)?.as_int().map_err(e)?
        } else {
            0
        };
        let mut addrs = Vec::new();
        for_each_point(&pattern.ub, |point| {
            let idx = pattern.index_map.eval(point, &[]);
            let elem_off: i64 = offset + idx.iter().zip(&strides).map(|(i, s)| i * s).sum::<i64>();
            let addr = base + elem_off * esz;
            addrs.push(u32::try_from(addr).map_err(|_| {
                InterpError::at(op, format!("stream address {addr:#x} out of range"))
            })?);
            Ok(())
        })?;
        let handle = it.open_stream(addrs, k >= num_inputs, *m.element == Type::F32);
        it.set(ctx, args[k], Value::Stream(handle)).map_err(e)?;
    }
    match reg.run_block(it, ctx, body)? {
        Flow::Continue => Ok(Flow::Continue),
        other => Err(InterpError::at(op, format!("unexpected {other:?} in a streaming region"))),
    }
}

fn exec_read(
    it: &mut Interpreter,
    ctx: &Context,
    _reg: &ExecRegistry,
    op: OpId,
) -> Result<Flow, InterpError> {
    let e = |m: String| InterpError::at(op, m);
    let o = ctx.op(op);
    let handle = it.get(ctx, o.operands[0]).map_err(e)?.as_stream().map_err(e)?;
    let value = it.stream_pop(handle).map_err(e)?;
    it.set(ctx, o.results[0], value).map_err(e)?;
    Ok(Flow::Continue)
}

fn exec_write(
    it: &mut Interpreter,
    ctx: &Context,
    _reg: &ExecRegistry,
    op: OpId,
) -> Result<Flow, InterpError> {
    let e = |m: String| InterpError::at(op, m);
    let o = ctx.op(op);
    let handle = it.get(ctx, o.operands[1]).map_err(e)?.as_stream().map_err(e)?;
    let value = it.get(ctx, o.operands[0]).map_err(e)?;
    it.stream_push(handle, value).map_err(e)?;
    Ok(Flow::Continue)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{builtin, func, memref_stream, scf};
    use mlb_ir::{AffineMap, OpSpec, StridePattern};
    use mlb_isa::TCDM_BASE;

    fn setup() -> (Context, ExecRegistry, mlb_ir::BlockId) {
        let mut ctx = Context::new();
        let mut reg = ExecRegistry::new();
        register_exec(&mut reg);
        let (_m, b) = builtin::build_module(&mut ctx);
        (ctx, reg, b)
    }

    /// Runs the body of function `f` with `args` bound to its entry block
    /// arguments.
    fn run_func(
        it: &mut Interpreter,
        ctx: &Context,
        reg: &ExecRegistry,
        f: mlb_ir::OpId,
        args: &[Value],
    ) {
        let entry = func::entry_block(ctx, f);
        for (&arg, &val) in ctx.block_args(entry).iter().zip(args) {
            it.set(ctx, arg, val).unwrap();
        }
        assert_eq!(reg.run_block(it, ctx, entry).unwrap(), Flow::Return);
    }

    #[test]
    fn linalg_sum_matches_elementwise_reference() {
        let (mut ctx, reg, b) = setup();
        let buf = Type::memref(vec![2, 3], Type::F64);
        let (f, entry) =
            func::build_func(&mut ctx, b, "sum", vec![buf.clone(), buf.clone(), buf], vec![]);
        let (x, y, z) =
            (ctx.block_args(entry)[0], ctx.block_args(entry)[1], ctx.block_args(entry)[2]);
        let id = AffineMap::identity(2);
        crate::linalg::build_generic(
            &mut ctx,
            entry,
            vec![x, y],
            vec![z],
            vec![id.clone(), id.clone(), id],
            vec![IteratorType::Parallel, IteratorType::Parallel],
            None,
            |ctx, body, args| vec![arith::binary(ctx, body, arith::ADDF, args[0], args[1])],
        );
        func::build_return(&mut ctx, entry, vec![]);

        let mut it = Interpreter::new();
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let ys = [0.5, -1.5, 2.5, -3.5, 4.5, -5.5];
        it.write_f64_slice(TCDM_BASE, &xs).unwrap();
        it.write_f64_slice(TCDM_BASE + 48, &ys).unwrap();
        let addrs = [
            Value::Int(TCDM_BASE as i64),
            Value::Int(TCDM_BASE as i64 + 48),
            Value::Int(TCDM_BASE as i64 + 96),
        ];
        run_func(&mut it, &ctx, &reg, f, &addrs);
        let out = it.read_f64_slice(TCDM_BASE + 96, 6).unwrap();
        let expect: Vec<f64> = xs.iter().zip(&ys).map(|(a, b)| a + b).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn fused_init_seeds_the_reduction() {
        // Z[i] = init + sum_k X[i, k] over a 2x3 input, as fuse-fill
        // shapes it: trailing init operand, `num_inits = 1`.
        let (mut ctx, reg, b) = setup();
        let in_ty = Type::memref(vec![2, 3], Type::F64);
        let out_ty = Type::memref(vec![2], Type::F64);
        let (f, entry) = func::build_func(&mut ctx, b, "rowsum", vec![in_ty, out_ty], vec![]);
        let (x, z) = (ctx.block_args(entry)[0], ctx.block_args(entry)[1]);
        let init = arith::constant_float(&mut ctx, entry, 10.0, Type::F64);
        let g = ctx.append_op(
            entry,
            OpSpec::new(memref_stream::GENERIC)
                .operands(vec![x, z, init])
                .attr(
                    structured::INDEXING_MAPS,
                    Attribute::Array(vec![
                        Attribute::Map(AffineMap::identity(2)),
                        Attribute::Map(AffineMap::projection(2, &[0])),
                    ]),
                )
                .attr(
                    structured::ITERATOR_TYPES,
                    Attribute::Iterators(vec![IteratorType::Parallel, IteratorType::Reduction]),
                )
                .attr(structured::NUM_INPUTS, Attribute::Int(1))
                .attr(structured::BOUNDS, Attribute::DenseI64(vec![2, 3]))
                .attr(memref_stream::NUM_INITS, Attribute::Int(1))
                .regions(1),
        );
        let body = ctx.create_block(ctx.op(g).regions[0], vec![Type::F64, Type::F64]);
        let (xe, acc) = (ctx.block_args(body)[0], ctx.block_args(body)[1]);
        let sum = arith::binary(&mut ctx, body, arith::ADDF, acc, xe);
        ctx.append_op(body, OpSpec::new(memref_stream::YIELD).operands(vec![sum]));
        func::build_return(&mut ctx, entry, vec![]);

        let mut it = Interpreter::new();
        it.write_f64_slice(TCDM_BASE, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        // Poison the output so a missed seeding is caught.
        it.write_f64_slice(TCDM_BASE + 48, &[99.0, 99.0]).unwrap();
        run_func(
            &mut it,
            &ctx,
            &reg,
            f,
            &[Value::Int(TCDM_BASE as i64), Value::Int(TCDM_BASE as i64 + 48)],
        );
        assert_eq!(it.read_f64_slice(TCDM_BASE + 48, 2).unwrap(), vec![16.0, 25.0]);
    }

    #[test]
    fn interleaved_generic_binds_all_copies_before_the_body_runs() {
        // Z[i, j] = 2 * X[i, j] over 2x2 with the second dimension
        // interleaved (factor 2), as unroll-and-jam shapes it. Copy 1's
        // ops run in the same body execution as copy 0's, so every
        // copy's arguments must be bound up front.
        let (mut ctx, reg, b) = setup();
        let buf = Type::memref(vec![2, 2], Type::F64);
        let (f, entry) = func::build_func(&mut ctx, b, "dbl2", vec![buf.clone(), buf], vec![]);
        let (x, z) = (ctx.block_args(entry)[0], ctx.block_args(entry)[1]);
        let id = AffineMap::identity(2);
        let g = ctx.append_op(
            entry,
            OpSpec::new(memref_stream::GENERIC)
                .operands(vec![x, z])
                .attr(
                    structured::INDEXING_MAPS,
                    Attribute::Array(vec![Attribute::Map(id.clone()), Attribute::Map(id)]),
                )
                .attr(
                    structured::ITERATOR_TYPES,
                    Attribute::Iterators(vec![IteratorType::Parallel, IteratorType::Interleaved]),
                )
                .attr(structured::NUM_INPUTS, Attribute::Int(1))
                .attr(structured::BOUNDS, Attribute::DenseI64(vec![2, 2]))
                .regions(1),
        );
        let body = ctx.create_block(ctx.op(g).regions[0], vec![Type::F64; 4]);
        let args = ctx.block_args(body).to_vec();
        // Deliberately compute copy 1 first: a per-copy body execution
        // would hit copy 1's unbound arguments here.
        let y1 = arith::binary(&mut ctx, body, arith::ADDF, args[1], args[1]);
        let y0 = arith::binary(&mut ctx, body, arith::ADDF, args[0], args[0]);
        ctx.append_op(body, OpSpec::new(memref_stream::YIELD).operands(vec![y0, y1]));
        func::build_return(&mut ctx, entry, vec![]);

        let mut it = Interpreter::new();
        it.write_f64_slice(TCDM_BASE, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        run_func(
            &mut it,
            &ctx,
            &reg,
            f,
            &[Value::Int(TCDM_BASE as i64), Value::Int(TCDM_BASE as i64 + 32)],
        );
        assert_eq!(it.read_f64_slice(TCDM_BASE + 32, 4).unwrap(), vec![2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn scf_loop_accumulates_through_memory() {
        let (mut ctx, reg, b) = setup();
        let buf = Type::memref(vec![4], Type::F64);
        let (f, entry) = func::build_func(&mut ctx, b, "acc", vec![buf.clone(), buf], vec![]);
        let (x, z) = (ctx.block_args(entry)[0], ctx.block_args(entry)[1]);
        let lb = arith::constant_index(&mut ctx, entry, 0);
        let ub = arith::constant_index(&mut ctx, entry, 4);
        let step = arith::constant_index(&mut ctx, entry, 1);
        let zero = arith::constant_float(&mut ctx, entry, 0.0, Type::F64);
        let loop_op =
            scf::build_for(&mut ctx, entry, lb, ub, step, vec![zero], |ctx, body, iv, args| {
                let v = memref::build_load(ctx, body, x, vec![iv]);
                vec![arith::binary(ctx, body, arith::ADDF, args[0], v)]
            });
        let total = ctx.op(loop_op.0).results[0];
        let i0 = arith::constant_index(&mut ctx, entry, 0);
        memref::build_store(&mut ctx, entry, total, z, vec![i0]);
        func::build_return(&mut ctx, entry, vec![]);

        let mut it = Interpreter::new();
        it.write_f64_slice(TCDM_BASE, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        run_func(
            &mut it,
            &ctx,
            &reg,
            f,
            &[Value::Int(TCDM_BASE as i64), Value::Int(TCDM_BASE as i64 + 32)],
        );
        assert_eq!(it.read_f64(TCDM_BASE + 32).unwrap(), 10.0);
    }

    #[test]
    fn streaming_region_pops_and_pushes_in_pattern_order() {
        let (mut ctx, reg, b) = setup();
        let buf = Type::memref(vec![4], Type::F64);
        let (f, entry) = func::build_func(&mut ctx, b, "dbl", vec![buf.clone(), buf], vec![]);
        let (x, z) = (ctx.block_args(entry)[0], ctx.block_args(entry)[1]);
        let p = StridePattern::new(vec![4], AffineMap::identity(1));
        memref_stream::build_streaming_region(
            &mut ctx,
            entry,
            vec![x],
            vec![z],
            vec![p.clone(), p],
            |ctx, body, streams| {
                let lb = arith::constant_index(ctx, body, 0);
                let ub = arith::constant_index(ctx, body, 4);
                let step = arith::constant_index(ctx, body, 1);
                scf::build_for(ctx, body, lb, ub, step, vec![], |ctx, inner, _iv, _| {
                    let v = memref_stream::build_read(ctx, inner, streams[0]);
                    let d = arith::binary(ctx, inner, arith::ADDF, v, v);
                    memref_stream::build_write(ctx, inner, d, streams[1]);
                    vec![]
                });
            },
        );
        func::build_return(&mut ctx, entry, vec![]);

        let mut it = Interpreter::new();
        it.write_f64_slice(TCDM_BASE, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        run_func(
            &mut it,
            &ctx,
            &reg,
            f,
            &[Value::Int(TCDM_BASE as i64), Value::Int(TCDM_BASE as i64 + 32)],
        );
        assert_eq!(it.read_f64_slice(TCDM_BASE + 32, 4).unwrap(), vec![2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn fill_writes_every_element() {
        let (mut ctx, reg, b) = setup();
        let buf = Type::memref(vec![2, 2], Type::F32);
        let (f, entry) = func::build_func(&mut ctx, b, "fill", vec![buf], vec![]);
        let z = ctx.block_args(entry)[0];
        let c = arith::constant_float(&mut ctx, entry, 2.5, Type::F32);
        crate::linalg::build_fill(&mut ctx, entry, c, z);
        func::build_return(&mut ctx, entry, vec![]);

        let mut it = Interpreter::new();
        run_func(&mut it, &ctx, &reg, f, &[Value::Int(TCDM_BASE as i64)]);
        assert_eq!(it.read_f32_slice(TCDM_BASE, 4).unwrap(), vec![2.5; 4]);
    }
}
