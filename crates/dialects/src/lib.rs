#![warn(missing_docs)]

//! Upstream-style MLIR dialects: `builtin`, `arith`, `func`, `scf`,
//! `memref`, `linalg`, and the bridging `memref_stream` dialect.
//!
//! These dialects model the input abstractions of the multi-level backend
//! (Section 2 of the paper): kernels enter as `linalg.generic` operations
//! over `memref` operands, are scheduled and streamified at the
//! `memref_stream` level (Section 3.4, Figure 7), and only then lowered to
//! the RISC-V dialects of `mlb-riscv`.

pub mod arith;
pub mod builtin;
pub mod exec;
pub mod func;
pub mod linalg;
pub mod memref;
pub mod memref_stream;
pub mod scf;
pub mod structured;

use mlb_ir::DialectRegistry;

pub use exec::register_exec;

/// Registers every dialect in this crate.
pub fn register_all(registry: &mut DialectRegistry) {
    builtin::register(registry);
    arith::register(registry);
    func::register(registry);
    scf::register(registry);
    memref::register(registry);
    linalg::register(registry);
    memref_stream::register(registry);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_all_is_nonempty_and_conflict_free() {
        let mut r = DialectRegistry::new();
        register_all(&mut r);
        assert!(r.len() > 20);
        assert!(r.info("arith.mulf").is_some());
        assert!(r.info("linalg.generic").is_some());
        assert!(r.info("memref_stream.streaming_region").is_some());
    }
}
