//! Decoded instruction representation.
//!
//! The simulator executes the textual assembly produced by the backend
//! (or written by hand), parsed by [`crate::asm`] into this decoded form.
//! Branch targets are resolved to instruction indices at assembly time.

use mlb_isa::{FpReg, IntReg};

/// Integer register-register operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntOp {
    /// `add`
    Add,
    /// `sub`
    Sub,
    /// `mul`
    Mul,
}

/// Integer register-immediate operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntImmOp {
    /// `addi`
    Addi,
    /// `slli`
    Slli,
}

/// Floating-point binary operations (one FPU issue slot each).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FpBinOp {
    /// `fadd.d`
    FaddD,
    /// `fsub.d`
    FsubD,
    /// `fmul.d`
    FmulD,
    /// `fdiv.d`
    FdivD,
    /// `fmax.d`
    FmaxD,
    /// `fadd.s`
    FaddS,
    /// `fsub.s`
    FsubS,
    /// `fmul.s`
    FmulS,
    /// `fmax.s`
    FmaxS,
    /// `vfadd.s` (packed, 2 lanes)
    VfaddS,
    /// `vfmul.s` (packed, 2 lanes)
    VfmulS,
    /// `vfmax.s` (packed, 2 lanes)
    VfmaxS,
    /// `vfcpka.s.s` (pack two singles)
    VfcpkaSS,
}

impl FpBinOp {
    /// FLOPs this instruction performs.
    pub fn flops(self) -> u64 {
        match self {
            FpBinOp::FaddD
            | FpBinOp::FsubD
            | FpBinOp::FmulD
            | FpBinOp::FdivD
            | FpBinOp::FmaxD
            | FpBinOp::FaddS
            | FpBinOp::FsubS
            | FpBinOp::FmulS
            | FpBinOp::FmaxS => 1,
            FpBinOp::VfaddS | FpBinOp::VfmulS | FpBinOp::VfmaxS => 2,
            FpBinOp::VfcpkaSS => 0,
        }
    }
}

/// Branch conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchCond {
    /// `blt` (signed)
    Lt,
    /// `bge` (signed)
    Ge,
    /// `bne`
    Ne,
    /// `beq`
    Eq,
}

/// FP memory access width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FpWidth {
    /// 32-bit (`flw`/`fsw`)
    Single,
    /// 64-bit (`fld`/`fsd`)
    Double,
}

/// A decoded instruction.
///
/// Variant fields follow the standard RISC-V operand names: `rd` is the
/// destination register, `rs1`/`rs2`/`rs3` are sources, `base` + `imm`
/// form a memory address, and `target` is a resolved instruction index.
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instr {
    /// `li rd, imm`
    Li { rd: IntReg, imm: i64 },
    /// `mv rd, rs`
    Mv { rd: IntReg, rs: IntReg },
    /// `add/sub/mul rd, rs1, rs2`
    IntOp { op: IntOp, rd: IntReg, rs1: IntReg, rs2: IntReg },
    /// `addi/slli rd, rs1, imm`
    IntImm { op: IntImmOp, rd: IntReg, rs1: IntReg, imm: i64 },
    /// `lw rd, imm(base)`
    Lw { rd: IntReg, base: IntReg, imm: i64 },
    /// `sw rs2, imm(base)`
    Sw { rs2: IntReg, base: IntReg, imm: i64 },
    /// `fld/flw rd, imm(base)`
    FpLoad { width: FpWidth, rd: FpReg, base: IntReg, imm: i64 },
    /// `fsd/fsw rs2, imm(base)`
    FpStore { width: FpWidth, rs2: FpReg, base: IntReg, imm: i64 },
    /// FP binary arithmetic
    FpBin { op: FpBinOp, rd: FpReg, rs1: FpReg, rs2: FpReg },
    /// `fmadd.d/fmadd.s rd, rs1, rs2, rs3` (`rd = rs1 * rs2 + rs3`)
    Fmadd { width: FpWidth, rd: FpReg, rs1: FpReg, rs2: FpReg, rs3: FpReg },
    /// `fmv.d rd, rs`
    FmvD { rd: FpReg, rs: FpReg },
    /// `vfmac.s rd, rs1, rs2` (`rd.lane[i] += rs1.lane[i] * rs2.lane[i]`)
    VfmacS { rd: FpReg, rs1: FpReg, rs2: FpReg },
    /// `vfsum.s rd, rs1` (`rd.lane[0] += rs1.lane[0] + rs1.lane[1]`)
    VfsumS { rd: FpReg, rs1: FpReg },
    /// `fcvt.d.w rd, rs` / `fcvt.s.w rd, rs`
    Fcvt { width: FpWidth, rd: FpReg, rs: IntReg },
    /// `csrrsi zero, csr, imm`
    Csrrsi { csr: u16, imm: u32 },
    /// `csrrci zero, csr, imm`
    Csrrci { csr: u16, imm: u32 },
    /// `csrr rd, csr` — reads a CSR (`mhartid` for the core index, the
    /// cluster barrier CSR with `rd = zero` to synchronize).
    Csrr { rd: IntReg, csr: u16 },
    /// `scfgwi rs1, imm`
    Scfgwi { rs1: IntReg, imm: u16 },
    /// `frep.o rs1, n_instr, stagger_max, stagger_mask` — repeats the
    /// following `n_instr` instructions `x[rs1] + 1` times.
    FrepO { rs1: IntReg, n_instr: u32 },
    /// Conditional branch to an instruction index.
    Branch { cond: BranchCond, rs1: IntReg, rs2: IntReg, target: usize },
    /// Unconditional jump to an instruction index.
    J { target: usize },
    /// Return from the kernel.
    Ret,
}

impl Instr {
    /// Whether this instruction is issued to the FPU (arithmetic on FP
    /// registers; loads/stores go through the integer-core LSU).
    pub fn is_fpu(&self) -> bool {
        matches!(
            self,
            Instr::FpBin { .. }
                | Instr::Fmadd { .. }
                | Instr::FmvD { .. }
                | Instr::VfmacS { .. }
                | Instr::VfsumS { .. }
                | Instr::Fcvt { .. }
        )
    }

    /// FLOPs performed by this instruction.
    pub fn flops(&self) -> u64 {
        match self {
            Instr::FpBin { op, .. } => op.flops(),
            Instr::Fmadd { width: FpWidth::Double, .. } => 2,
            Instr::Fmadd { width: FpWidth::Single, .. } => 2,
            Instr::VfmacS { .. } => 4,
            Instr::VfsumS { .. } => 2,
            _ => 0,
        }
    }
}

impl std::fmt::Display for FpBinOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mnemonic = match self {
            FpBinOp::FaddD => "fadd.d",
            FpBinOp::FsubD => "fsub.d",
            FpBinOp::FmulD => "fmul.d",
            FpBinOp::FdivD => "fdiv.d",
            FpBinOp::FmaxD => "fmax.d",
            FpBinOp::FaddS => "fadd.s",
            FpBinOp::FsubS => "fsub.s",
            FpBinOp::FmulS => "fmul.s",
            FpBinOp::FmaxS => "fmax.s",
            FpBinOp::VfaddS => "vfadd.s",
            FpBinOp::VfmulS => "vfmul.s",
            FpBinOp::VfmaxS => "vfmax.s",
            FpBinOp::VfcpkaSS => "vfcpka.s.s",
        };
        f.write_str(mnemonic)
    }
}

/// Disassembles the instruction in the assembler's syntax. Control-flow
/// targets, already resolved to instruction indices, print as `@index`.
impl std::fmt::Display for Instr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Instr::Li { rd, imm } => write!(f, "li {rd}, {imm}"),
            Instr::Mv { rd, rs } => write!(f, "mv {rd}, {rs}"),
            Instr::IntOp { op, rd, rs1, rs2 } => {
                let m = match op {
                    IntOp::Add => "add",
                    IntOp::Sub => "sub",
                    IntOp::Mul => "mul",
                };
                write!(f, "{m} {rd}, {rs1}, {rs2}")
            }
            Instr::IntImm { op, rd, rs1, imm } => {
                let m = match op {
                    IntImmOp::Addi => "addi",
                    IntImmOp::Slli => "slli",
                };
                write!(f, "{m} {rd}, {rs1}, {imm}")
            }
            Instr::Lw { rd, base, imm } => write!(f, "lw {rd}, {imm}({base})"),
            Instr::Sw { rs2, base, imm } => write!(f, "sw {rs2}, {imm}({base})"),
            Instr::FpLoad { width, rd, base, imm } => {
                let m = match width {
                    FpWidth::Double => "fld",
                    FpWidth::Single => "flw",
                };
                write!(f, "{m} {rd}, {imm}({base})")
            }
            Instr::FpStore { width, rs2, base, imm } => {
                let m = match width {
                    FpWidth::Double => "fsd",
                    FpWidth::Single => "fsw",
                };
                write!(f, "{m} {rs2}, {imm}({base})")
            }
            Instr::FpBin { op, rd, rs1, rs2 } => write!(f, "{op} {rd}, {rs1}, {rs2}"),
            Instr::Fmadd { width, rd, rs1, rs2, rs3 } => {
                let m = match width {
                    FpWidth::Double => "fmadd.d",
                    FpWidth::Single => "fmadd.s",
                };
                write!(f, "{m} {rd}, {rs1}, {rs2}, {rs3}")
            }
            Instr::FmvD { rd, rs } => write!(f, "fmv.d {rd}, {rs}"),
            Instr::VfmacS { rd, rs1, rs2 } => write!(f, "vfmac.s {rd}, {rs1}, {rs2}"),
            Instr::VfsumS { rd, rs1 } => write!(f, "vfsum.s {rd}, {rs1}"),
            Instr::Fcvt { width, rd, rs } => {
                let m = match width {
                    FpWidth::Double => "fcvt.d.w",
                    FpWidth::Single => "fcvt.s.w",
                };
                write!(f, "{m} {rd}, {rs}")
            }
            Instr::Csrrsi { csr, imm } => write!(f, "csrrsi zero, {csr:#x}, {imm}"),
            Instr::Csrrci { csr, imm } => write!(f, "csrrci zero, {csr:#x}, {imm}"),
            Instr::Csrr { rd, csr } => {
                if csr == mlb_isa::CSR_MHARTID {
                    write!(f, "csrr {rd}, mhartid")
                } else {
                    write!(f, "csrr {rd}, {csr:#x}")
                }
            }
            Instr::Scfgwi { rs1, imm } => write!(f, "scfgwi {rs1}, {imm}"),
            Instr::FrepO { rs1, n_instr } => write!(f, "frep.o {rs1}, {n_instr}, 0, 0"),
            Instr::Branch { cond, rs1, rs2, target } => {
                let m = match cond {
                    BranchCond::Lt => "blt",
                    BranchCond::Ge => "bge",
                    BranchCond::Ne => "bne",
                    BranchCond::Eq => "beq",
                };
                write!(f, "{m} {rs1}, {rs2}, @{target}")
            }
            Instr::J { target } => write!(f, "j @{target}"),
            Instr::Ret => f.write_str("ret"),
        }
    }
}

/// A program: instructions plus symbol table.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Decoded instructions in order.
    pub instrs: Vec<Instr>,
    /// Symbol name to instruction index.
    pub symbols: std::collections::HashMap<String, usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fpu_classification() {
        let ft0 = FpReg::ft(0);
        let a0 = IntReg::a(0);
        assert!(Instr::FpBin { op: FpBinOp::FaddD, rd: ft0, rs1: ft0, rs2: ft0 }.is_fpu());
        assert!(Instr::FmvD { rd: ft0, rs: ft0 }.is_fpu());
        assert!(!Instr::FpLoad { width: FpWidth::Double, rd: ft0, base: a0, imm: 0 }.is_fpu());
        assert!(!Instr::Li { rd: a0, imm: 0 }.is_fpu());
    }

    #[test]
    fn disassembly_matches_assembler_syntax() {
        let a0 = IntReg::a(0);
        let t0 = IntReg::t(0);
        let ft0 = FpReg::ft(0);
        let ft1 = FpReg::ft(1);
        let cases = [
            (Instr::Li { rd: t0, imm: -3 }, "li t0, -3"),
            (Instr::Lw { rd: t0, base: a0, imm: 8 }, "lw t0, 8(a0)"),
            (Instr::FpLoad { width: FpWidth::Double, rd: ft0, base: a0, imm: 0 }, "fld ft0, 0(a0)"),
            (
                Instr::FpBin { op: FpBinOp::FaddD, rd: ft1, rs1: ft0, rs2: ft0 },
                "fadd.d ft1, ft0, ft0",
            ),
            (
                Instr::Fmadd { width: FpWidth::Double, rd: ft1, rs1: ft0, rs2: ft0, rs3: ft1 },
                "fmadd.d ft1, ft0, ft0, ft1",
            ),
            (Instr::FrepO { rs1: t0, n_instr: 2 }, "frep.o t0, 2, 0, 0"),
            (Instr::Csrrsi { csr: 0x7c0, imm: 1 }, "csrrsi zero, 0x7c0, 1"),
            (
                Instr::Branch { cond: BranchCond::Lt, rs1: t0, rs2: a0, target: 12 },
                "blt t0, a0, @12",
            ),
            (Instr::Ret, "ret"),
        ];
        for (instr, expect) in cases {
            assert_eq!(instr.to_string(), expect);
        }
    }

    #[test]
    fn flop_counts() {
        let ft0 = FpReg::ft(0);
        assert_eq!(
            Instr::Fmadd { width: FpWidth::Double, rd: ft0, rs1: ft0, rs2: ft0, rs3: ft0 }.flops(),
            2
        );
        assert_eq!(Instr::VfmacS { rd: ft0, rs1: ft0, rs2: ft0 }.flops(), 4);
        assert_eq!(Instr::VfsumS { rd: ft0, rs1: ft0 }.flops(), 2);
        assert_eq!(Instr::FpBin { op: FpBinOp::VfaddS, rd: ft0, rs1: ft0, rs2: ft0 }.flops(), 2);
        assert_eq!(Instr::FpBin { op: FpBinOp::VfcpkaSS, rd: ft0, rs1: ft0, rs2: ft0 }.flops(), 0);
        assert_eq!(Instr::FmvD { rd: ft0, rs: ft0 }.flops(), 0);
    }
}
