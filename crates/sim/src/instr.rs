//! Decoded instruction representation.
//!
//! The simulator executes the textual assembly produced by the backend
//! (or written by hand), parsed by [`crate::asm`] into this decoded form.
//! Branch targets are resolved to instruction indices at assembly time.

use mlb_isa::{FpReg, IntReg};

/// Integer register-register operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntOp {
    /// `add`
    Add,
    /// `sub`
    Sub,
    /// `mul`
    Mul,
}

/// Integer register-immediate operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntImmOp {
    /// `addi`
    Addi,
    /// `slli`
    Slli,
}

/// Floating-point binary operations (one FPU issue slot each).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FpBinOp {
    /// `fadd.d`
    FaddD,
    /// `fsub.d`
    FsubD,
    /// `fmul.d`
    FmulD,
    /// `fdiv.d`
    FdivD,
    /// `fmax.d`
    FmaxD,
    /// `fadd.s`
    FaddS,
    /// `fsub.s`
    FsubS,
    /// `fmul.s`
    FmulS,
    /// `fmax.s`
    FmaxS,
    /// `vfadd.s` (packed, 2 lanes)
    VfaddS,
    /// `vfmul.s` (packed, 2 lanes)
    VfmulS,
    /// `vfmax.s` (packed, 2 lanes)
    VfmaxS,
    /// `vfcpka.s.s` (pack two singles)
    VfcpkaSS,
}

impl FpBinOp {
    /// FLOPs this instruction performs.
    pub fn flops(self) -> u64 {
        match self {
            FpBinOp::FaddD
            | FpBinOp::FsubD
            | FpBinOp::FmulD
            | FpBinOp::FdivD
            | FpBinOp::FmaxD
            | FpBinOp::FaddS
            | FpBinOp::FsubS
            | FpBinOp::FmulS
            | FpBinOp::FmaxS => 1,
            FpBinOp::VfaddS | FpBinOp::VfmulS | FpBinOp::VfmaxS => 2,
            FpBinOp::VfcpkaSS => 0,
        }
    }
}

/// Branch conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchCond {
    /// `blt` (signed)
    Lt,
    /// `bge` (signed)
    Ge,
    /// `bne`
    Ne,
    /// `beq`
    Eq,
}

/// FP memory access width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FpWidth {
    /// 32-bit (`flw`/`fsw`)
    Single,
    /// 64-bit (`fld`/`fsd`)
    Double,
}

/// A decoded instruction.
///
/// Variant fields follow the standard RISC-V operand names: `rd` is the
/// destination register, `rs1`/`rs2`/`rs3` are sources, `base` + `imm`
/// form a memory address, and `target` is a resolved instruction index.
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instr {
    /// `li rd, imm`
    Li { rd: IntReg, imm: i64 },
    /// `mv rd, rs`
    Mv { rd: IntReg, rs: IntReg },
    /// `add/sub/mul rd, rs1, rs2`
    IntOp { op: IntOp, rd: IntReg, rs1: IntReg, rs2: IntReg },
    /// `addi/slli rd, rs1, imm`
    IntImm { op: IntImmOp, rd: IntReg, rs1: IntReg, imm: i64 },
    /// `lw rd, imm(base)`
    Lw { rd: IntReg, base: IntReg, imm: i64 },
    /// `sw rs2, imm(base)`
    Sw { rs2: IntReg, base: IntReg, imm: i64 },
    /// `fld/flw rd, imm(base)`
    FpLoad { width: FpWidth, rd: FpReg, base: IntReg, imm: i64 },
    /// `fsd/fsw rs2, imm(base)`
    FpStore { width: FpWidth, rs2: FpReg, base: IntReg, imm: i64 },
    /// FP binary arithmetic
    FpBin { op: FpBinOp, rd: FpReg, rs1: FpReg, rs2: FpReg },
    /// `fmadd.d/fmadd.s rd, rs1, rs2, rs3` (`rd = rs1 * rs2 + rs3`)
    Fmadd { width: FpWidth, rd: FpReg, rs1: FpReg, rs2: FpReg, rs3: FpReg },
    /// `fmv.d rd, rs`
    FmvD { rd: FpReg, rs: FpReg },
    /// `vfmac.s rd, rs1, rs2` (`rd.lane[i] += rs1.lane[i] * rs2.lane[i]`)
    VfmacS { rd: FpReg, rs1: FpReg, rs2: FpReg },
    /// `vfsum.s rd, rs1` (`rd.lane[0] += rs1.lane[0] + rs1.lane[1]`)
    VfsumS { rd: FpReg, rs1: FpReg },
    /// `fcvt.d.w rd, rs` / `fcvt.s.w rd, rs`
    Fcvt { width: FpWidth, rd: FpReg, rs: IntReg },
    /// `csrrsi zero, csr, imm`
    Csrrsi { csr: u16, imm: u32 },
    /// `csrrci zero, csr, imm`
    Csrrci { csr: u16, imm: u32 },
    /// `scfgwi rs1, imm`
    Scfgwi { rs1: IntReg, imm: u16 },
    /// `frep.o rs1, n_instr, stagger_max, stagger_mask` — repeats the
    /// following `n_instr` instructions `x[rs1] + 1` times.
    FrepO { rs1: IntReg, n_instr: u32 },
    /// Conditional branch to an instruction index.
    Branch { cond: BranchCond, rs1: IntReg, rs2: IntReg, target: usize },
    /// Unconditional jump to an instruction index.
    J { target: usize },
    /// Return from the kernel.
    Ret,
}

impl Instr {
    /// Whether this instruction is issued to the FPU (arithmetic on FP
    /// registers; loads/stores go through the integer-core LSU).
    pub fn is_fpu(&self) -> bool {
        matches!(
            self,
            Instr::FpBin { .. }
                | Instr::Fmadd { .. }
                | Instr::FmvD { .. }
                | Instr::VfmacS { .. }
                | Instr::VfsumS { .. }
                | Instr::Fcvt { .. }
        )
    }

    /// FLOPs performed by this instruction.
    pub fn flops(&self) -> u64 {
        match self {
            Instr::FpBin { op, .. } => op.flops(),
            Instr::Fmadd { width: FpWidth::Double, .. } => 2,
            Instr::Fmadd { width: FpWidth::Single, .. } => 2,
            Instr::VfmacS { .. } => 4,
            Instr::VfsumS { .. } => 2,
            _ => 0,
        }
    }
}

/// A program: instructions plus symbol table.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Decoded instructions in order.
    pub instrs: Vec<Instr>,
    /// Symbol name to instruction index.
    pub symbols: std::collections::HashMap<String, usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fpu_classification() {
        let ft0 = FpReg::ft(0);
        let a0 = IntReg::a(0);
        assert!(Instr::FpBin { op: FpBinOp::FaddD, rd: ft0, rs1: ft0, rs2: ft0 }.is_fpu());
        assert!(Instr::FmvD { rd: ft0, rs: ft0 }.is_fpu());
        assert!(!Instr::FpLoad { width: FpWidth::Double, rd: ft0, base: a0, imm: 0 }.is_fpu());
        assert!(!Instr::Li { rd: a0, imm: 0 }.is_fpu());
    }

    #[test]
    fn flop_counts() {
        let ft0 = FpReg::ft(0);
        assert_eq!(
            Instr::Fmadd { width: FpWidth::Double, rd: ft0, rs1: ft0, rs2: ft0, rs3: ft0 }.flops(),
            2
        );
        assert_eq!(Instr::VfmacS { rd: ft0, rs1: ft0, rs2: ft0 }.flops(), 4);
        assert_eq!(Instr::VfsumS { rd: ft0, rs1: ft0 }.flops(), 2);
        assert_eq!(Instr::FpBin { op: FpBinOp::VfaddS, rd: ft0, rs1: ft0, rs2: ft0 }.flops(), 2);
        assert_eq!(Instr::FpBin { op: FpBinOp::VfcpkaSS, rd: ft0, rs1: ft0, rs2: ft0 }.flops(), 0);
        assert_eq!(Instr::FmvD { rd: ft0, rs: ft0 }.flops(), 0);
    }
}
