//! Opt-in execution tracing.
//!
//! When enabled with [`crate::Machine::enable_trace`], the machine
//! records one [`TraceEntry`] per dynamically executed instruction
//! (FREP replays included): where it sat in the program, when it issued
//! on its unit's timeline, when its effect completed, and why it issued
//! later than back-to-back execution would allow ([`StallReason`]).
//!
//! The completion times are exact with respect to the timing model: the
//! maximum `complete` over a call's trace equals the call's
//! [`crate::PerfCounters::cycles`], and the trace length equals its
//! `instructions` count — invariants pinned by `tests/sim_timing.rs`.

use crate::instr::Instr;

/// Why an instruction issued later than the previous one allowed.
///
/// Integer-core instructions ideally issue one per cycle; FPU
/// instructions ideally issue at dispatch (or back-to-back from the
/// sequencer inside an FREP body).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallReason {
    /// No stall: the instruction issued at its ideal cycle.
    None,
    /// Waited for an integer register written by an earlier instruction
    /// (load-use or `mul` latency).
    RawInt,
    /// Waited for an FP register still in the FPU pipeline (RAW on an
    /// FP value, including FP stores waiting on the stored value).
    RawFp,
    /// The FPU issue slot was still occupied (e.g. behind an `fdiv`).
    FpuBusy,
    /// Redirect penalty of a taken branch or jump.
    BranchRedirect,
    /// Reserved: SSR stream stalled on memory. The model's TCDM serves
    /// every access in a single cycle, so this is never emitted today;
    /// it keeps the trace schema stable for banked-memory models.
    SsrBackpressure,
}

impl std::fmt::Display for StallReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StallReason::None => "none",
            StallReason::RawInt => "raw-int",
            StallReason::RawFp => "raw-fp",
            StallReason::FpuBusy => "fpu-busy",
            StallReason::BranchRedirect => "branch-redirect",
            StallReason::SsrBackpressure => "ssr-backpressure",
        })
    }
}

/// One dynamically executed instruction in the trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEntry {
    /// Instruction index in the program (the simulator's pc).
    pub pc: usize,
    /// The executed instruction (disassembles via `Display`).
    pub instr: Instr,
    /// Whether the FREP sequencer issued it (no integer-core dispatch).
    pub in_frep: bool,
    /// Cycle the instruction issued on its unit's timeline.
    pub issue: u64,
    /// Cycle its effect completed (integer core: retire; FPU: the later
    /// of pipeline drain and issue-slot release).
    pub complete: u64,
    /// Why it issued later than the ideal cycle.
    pub stall: StallReason,
    /// How many cycles later than the ideal cycle it issued.
    pub stall_cycles: u64,
}

impl std::fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:>8} {:>8}  {}{:<28}",
            self.issue,
            self.complete,
            if self.in_frep { "frep " } else { "" },
            self.instr,
        )?;
        if self.stall != StallReason::None {
            write!(f, "  ; stall {} ({} cycles)", self.stall, self.stall_cycles)?;
        }
        write!(f, "  [pc {}]", self.pc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlb_isa::IntReg;

    #[test]
    fn entry_formats_stall_and_pc() {
        let e = TraceEntry {
            pc: 7,
            instr: Instr::Li { rd: IntReg::t(0), imm: 1 },
            in_frep: false,
            issue: 10,
            complete: 11,
            stall: StallReason::RawInt,
            stall_cycles: 2,
        };
        let text = e.to_string();
        assert!(text.contains("li t0, 1"), "{text}");
        assert!(text.contains("stall raw-int (2 cycles)"), "{text}");
        assert!(text.contains("[pc 7]"), "{text}");
    }
}
