//! Performance counters, mirroring the measurement methodology of the
//! paper (Section 4.1): cycle count, throughput (FLOPs/cycle) and FPU
//! utilization, plus instruction-mix counters used by the ablation table.

/// Counters collected during one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerfCounters {
    /// Total execution latency in cycles (kernel entry to `ret`,
    /// including accelerator setup and draining the FPU pipeline).
    pub cycles: u64,
    /// Dynamically executed instructions (FREP repetitions included).
    pub instructions: u64,
    /// Cycles the FPU issue slot was busy with arithmetic instructions.
    pub fpu_busy_cycles: u64,
    /// Floating-point operations performed (FMA counts 2, packed SIMD
    /// counts per lane).
    pub flops: u64,
    /// Explicit integer loads (`lw`).
    pub int_loads: u64,
    /// Explicit integer stores (`sw`).
    pub int_stores: u64,
    /// Explicit FP loads (`fld`/`flw`).
    pub fp_loads: u64,
    /// Explicit FP stores (`fsd`/`fsw`).
    pub fp_stores: u64,
    /// `fmadd` instructions executed.
    pub fmadd: u64,
    /// `frep.o` instructions executed (static occurrences at runtime).
    pub frep: u64,
    /// Taken branches and jumps.
    pub taken_branches: u64,
    /// Stream configuration writes (`scfgwi`).
    pub scfgwi: u64,
    /// Elements popped from read streams.
    pub ssr_reads: u64,
    /// Elements pushed to write streams.
    pub ssr_writes: u64,
}

impl PerfCounters {
    /// Explicit memory loads of any kind.
    pub fn loads(&self) -> u64 {
        self.int_loads + self.fp_loads
    }

    /// Explicit memory stores of any kind.
    pub fn stores(&self) -> u64 {
        self.int_stores + self.fp_stores
    }

    /// FPU utilization: the fraction of cycles the FPU executed
    /// arithmetic instructions.
    pub fn fpu_utilization(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.fpu_busy_cycles as f64 / self.cycles as f64
        }
    }

    /// Throughput in FLOPs per cycle.
    pub fn throughput(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.flops as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let c = PerfCounters {
            cycles: 200,
            fpu_busy_cycles: 100,
            flops: 300,
            int_loads: 2,
            fp_loads: 3,
            int_stores: 1,
            fp_stores: 4,
            ..PerfCounters::default()
        };
        assert!((c.fpu_utilization() - 0.5).abs() < 1e-12);
        assert!((c.throughput() - 1.5).abs() < 1e-12);
        assert_eq!(c.loads(), 5);
        assert_eq!(c.stores(), 5);
    }

    #[test]
    fn zero_cycles_is_safe() {
        let c = PerfCounters::default();
        assert_eq!(c.fpu_utilization(), 0.0);
        assert_eq!(c.throughput(), 0.0);
    }
}
