//! Performance counters, mirroring the measurement methodology of the
//! paper (Section 4.1): cycle count, throughput (FLOPs/cycle) and FPU
//! utilization, plus instruction-mix counters used by the ablation table.

use crate::trace::{StallReason, TraceEntry};

/// Counters collected during one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerfCounters {
    /// Total execution latency in cycles (kernel entry to `ret`,
    /// including accelerator setup and draining the FPU pipeline).
    pub cycles: u64,
    /// Dynamically executed instructions (FREP repetitions included).
    pub instructions: u64,
    /// Cycles the FPU issue slot was busy with arithmetic instructions.
    pub fpu_busy_cycles: u64,
    /// Floating-point operations performed (FMA counts 2, packed SIMD
    /// counts per lane).
    pub flops: u64,
    /// Explicit integer loads (`lw`).
    pub int_loads: u64,
    /// Explicit integer stores (`sw`).
    pub int_stores: u64,
    /// Explicit FP loads (`fld`/`flw`).
    pub fp_loads: u64,
    /// Explicit FP stores (`fsd`/`fsw`).
    pub fp_stores: u64,
    /// `fmadd` instructions executed.
    pub fmadd: u64,
    /// `frep.o` instructions executed (static occurrences at runtime).
    pub frep: u64,
    /// Taken branches and jumps.
    pub taken_branches: u64,
    /// Stream configuration writes (`scfgwi`).
    pub scfgwi: u64,
    /// Elements popped from read streams.
    pub ssr_reads: u64,
    /// Elements pushed to write streams.
    pub ssr_writes: u64,
    /// FPU arithmetic instructions issued (from any source).
    pub fpu_instrs: u64,
    /// FPU arithmetic instructions issued by the FREP sequencer (no
    /// integer-core dispatch; subset of [`PerfCounters::fpu_instrs`]).
    pub frep_fpu_instrs: u64,
}

impl PerfCounters {
    /// Explicit memory loads of any kind.
    pub fn loads(&self) -> u64 {
        self.int_loads + self.fp_loads
    }

    /// Explicit memory stores of any kind.
    pub fn stores(&self) -> u64 {
        self.int_stores + self.fp_stores
    }

    /// FPU utilization: the fraction of cycles the FPU executed
    /// arithmetic instructions.
    pub fn fpu_utilization(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.fpu_busy_cycles as f64 / self.cycles as f64
        }
    }

    /// Throughput in FLOPs per cycle.
    pub fn throughput(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.flops as f64 / self.cycles as f64
        }
    }

    /// Counter-wise difference `self - before`.
    ///
    /// The exhaustive destructuring makes adding a counter field a
    /// compile error here, so call-delta computations cannot silently
    /// miss new counters.
    #[must_use]
    pub fn delta_since(&self, before: &PerfCounters) -> PerfCounters {
        let PerfCounters {
            cycles,
            instructions,
            fpu_busy_cycles,
            flops,
            int_loads,
            int_stores,
            fp_loads,
            fp_stores,
            fmadd,
            frep,
            taken_branches,
            scfgwi,
            ssr_reads,
            ssr_writes,
            fpu_instrs,
            frep_fpu_instrs,
        } = *before;
        PerfCounters {
            cycles: self.cycles - cycles,
            instructions: self.instructions - instructions,
            fpu_busy_cycles: self.fpu_busy_cycles - fpu_busy_cycles,
            flops: self.flops - flops,
            int_loads: self.int_loads - int_loads,
            int_stores: self.int_stores - int_stores,
            fp_loads: self.fp_loads - fp_loads,
            fp_stores: self.fp_stores - fp_stores,
            fmadd: self.fmadd - fmadd,
            frep: self.frep - frep,
            taken_branches: self.taken_branches - taken_branches,
            scfgwi: self.scfgwi - scfgwi,
            ssr_reads: self.ssr_reads - ssr_reads,
            ssr_writes: self.ssr_writes - ssr_writes,
            fpu_instrs: self.fpu_instrs - fpu_instrs,
            frep_fpu_instrs: self.frep_fpu_instrs - frep_fpu_instrs,
        }
    }

    /// Adds `other` into `self`, field by field.
    ///
    /// Same exhaustive-destructuring discipline as
    /// [`PerfCounters::delta_since`]: a new counter field is a compile
    /// error here, so cluster aggregation cannot silently drop it.
    pub fn accumulate(&mut self, other: &PerfCounters) {
        let PerfCounters {
            cycles,
            instructions,
            fpu_busy_cycles,
            flops,
            int_loads,
            int_stores,
            fp_loads,
            fp_stores,
            fmadd,
            frep,
            taken_branches,
            scfgwi,
            ssr_reads,
            ssr_writes,
            fpu_instrs,
            frep_fpu_instrs,
        } = *other;
        self.cycles += cycles;
        self.instructions += instructions;
        self.fpu_busy_cycles += fpu_busy_cycles;
        self.flops += flops;
        self.int_loads += int_loads;
        self.int_stores += int_stores;
        self.fp_loads += fp_loads;
        self.fp_stores += fp_stores;
        self.fmadd += fmadd;
        self.frep += frep;
        self.taken_branches += taken_branches;
        self.scfgwi += scfgwi;
        self.ssr_reads += ssr_reads;
        self.ssr_writes += ssr_writes;
        self.fpu_instrs += fpu_instrs;
        self.frep_fpu_instrs += frep_fpu_instrs;
    }

    /// Derives the occupancy summary for these counters.
    pub fn occupancy(&self) -> OccupancySummary {
        let frac = |num: u64, den: u64| if den == 0 { 0.0 } else { num as f64 / den as f64 };
        OccupancySummary {
            cycles: self.cycles,
            fpu_utilization: self.fpu_utilization(),
            flops_per_cycle: self.throughput(),
            frep_coverage: frac(self.frep_fpu_instrs, self.fpu_instrs),
            ssr_read_density: frac(self.ssr_reads, self.cycles),
            ssr_write_density: frac(self.ssr_writes, self.cycles),
        }
    }
}

/// Cycles lost to each [`StallReason`], folded from an execution trace.
///
/// Computed from a traced run (tracing forces the exact generic
/// interpreter loop, so the histogram is cycle-accurate) rather than
/// maintained inside [`PerfCounters`], which the untraced frep fast path
/// must be able to reproduce bit-for-bit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallHistogram {
    /// Cycles waiting on integer RAW hazards (load-use, `mul` latency).
    pub raw_int: u64,
    /// Cycles waiting on FP values still in the FPU pipeline.
    pub raw_fp: u64,
    /// Cycles the FPU issue slot was still occupied.
    pub fpu_busy: u64,
    /// Redirect penalties of taken branches and jumps.
    pub branch_redirect: u64,
    /// Reserved: SSR memory backpressure (never non-zero today).
    pub ssr_backpressure: u64,
}

impl StallHistogram {
    /// Folds a trace into per-reason stall-cycle sums.
    pub fn from_trace(trace: &[TraceEntry]) -> StallHistogram {
        let mut h = StallHistogram::default();
        for e in trace {
            h.record(e.stall, e.stall_cycles);
        }
        h
    }

    /// Adds `cycles` to the bucket for `reason`.
    pub fn record(&mut self, reason: StallReason, cycles: u64) {
        match reason {
            StallReason::None => {}
            StallReason::RawInt => self.raw_int += cycles,
            StallReason::RawFp => self.raw_fp += cycles,
            StallReason::FpuBusy => self.fpu_busy += cycles,
            StallReason::BranchRedirect => self.branch_redirect += cycles,
            StallReason::SsrBackpressure => self.ssr_backpressure += cycles,
        }
    }

    /// Adds `other` into `self`, bucket by bucket.
    pub fn accumulate(&mut self, other: &StallHistogram) {
        let StallHistogram { raw_int, raw_fp, fpu_busy, branch_redirect, ssr_backpressure } =
            *other;
        self.raw_int += raw_int;
        self.raw_fp += raw_fp;
        self.fpu_busy += fpu_busy;
        self.branch_redirect += branch_redirect;
        self.ssr_backpressure += ssr_backpressure;
    }

    /// Total stall cycles across all reasons.
    pub fn total(&self) -> u64 {
        self.raw_int + self.raw_fp + self.fpu_busy + self.branch_redirect + self.ssr_backpressure
    }

    /// `(reason name, cycles)` pairs in a stable display order, using
    /// the same names [`StallReason`] displays with.
    pub fn named(&self) -> [(&'static str, u64); 5] {
        [
            ("raw-int", self.raw_int),
            ("raw-fp", self.raw_fp),
            ("fpu-busy", self.fpu_busy),
            ("branch-redirect", self.branch_redirect),
            ("ssr-backpressure", self.ssr_backpressure),
        ]
    }
}

/// Execution-unit occupancy, derived from [`PerfCounters`].
///
/// The view `mlbc --trace-json` emits next to per-pass timings: how busy
/// the FPU was, how much of its work the FREP sequencer issued, and how
/// dense the SSR memory traffic was.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OccupancySummary {
    /// Total cycles of the measured run.
    pub cycles: u64,
    /// Fraction of cycles the FPU issue slot was busy.
    pub fpu_utilization: f64,
    /// FLOPs per cycle.
    pub flops_per_cycle: f64,
    /// Fraction of FPU instructions issued by the FREP sequencer rather
    /// than dispatched by the integer core.
    pub frep_coverage: f64,
    /// Read-stream elements popped per cycle (over all three movers).
    pub ssr_read_density: f64,
    /// Write-stream elements pushed per cycle (over all three movers).
    pub ssr_write_density: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let c = PerfCounters {
            cycles: 200,
            fpu_busy_cycles: 100,
            flops: 300,
            int_loads: 2,
            fp_loads: 3,
            int_stores: 1,
            fp_stores: 4,
            ..PerfCounters::default()
        };
        assert!((c.fpu_utilization() - 0.5).abs() < 1e-12);
        assert!((c.throughput() - 1.5).abs() < 1e-12);
        assert_eq!(c.loads(), 5);
        assert_eq!(c.stores(), 5);
    }

    #[test]
    fn zero_cycles_is_safe() {
        let c = PerfCounters::default();
        assert_eq!(c.fpu_utilization(), 0.0);
        assert_eq!(c.throughput(), 0.0);
        let occ = c.occupancy();
        assert_eq!(occ.fpu_utilization, 0.0);
        assert_eq!(occ.frep_coverage, 0.0);
        assert_eq!(occ.ssr_read_density, 0.0);
    }

    #[test]
    fn delta_since_subtracts_every_field() {
        let before =
            PerfCounters { cycles: 10, ssr_reads: 4, fpu_instrs: 3, ..PerfCounters::default() };
        let mut after = before;
        after.cycles = 25;
        after.ssr_reads = 9;
        after.fpu_instrs = 7;
        after.frep_fpu_instrs = 2;
        let d = after.delta_since(&before);
        assert_eq!(d.cycles, 15);
        assert_eq!(d.ssr_reads, 5);
        assert_eq!(d.fpu_instrs, 4);
        assert_eq!(d.frep_fpu_instrs, 2);
        assert_eq!(d.instructions, 0);
    }

    #[test]
    fn occupancy_ratios() {
        let c = PerfCounters {
            cycles: 100,
            fpu_busy_cycles: 80,
            flops: 160,
            fpu_instrs: 50,
            frep_fpu_instrs: 40,
            ssr_reads: 100,
            ssr_writes: 50,
            ..PerfCounters::default()
        };
        let occ = c.occupancy();
        assert!((occ.fpu_utilization - 0.8).abs() < 1e-12);
        assert!((occ.flops_per_cycle - 1.6).abs() < 1e-12);
        assert!((occ.frep_coverage - 0.8).abs() < 1e-12);
        assert!((occ.ssr_read_density - 1.0).abs() < 1e-12);
        assert!((occ.ssr_write_density - 0.5).abs() < 1e-12);
    }
}
