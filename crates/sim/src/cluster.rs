//! A multi-core Snitch cluster: N [`Machine`] cores sharing one TCDM
//! image, synchronized by the cluster hardware barrier.
//!
//! # Execution model
//!
//! The cores are simulated **sequentially in hart order** against the
//! single shared TCDM image. This is functionally exact for the
//! programs the `distribute-to-cores` pass produces — each core writes
//! a disjoint shard of the output and only barrier-separated phases
//! could observe another core's writes — and it keeps every core's
//! timing model untouched.
//!
//! Barrier timing is reconstructed afterwards from the local arrival
//! times each core recorded (see [`Machine::barrier_arrivals`]): for
//! barrier `k`, the release time is the latest adjusted arrival across
//! cores, and each core's clock is shifted forward by the wait it would
//! have spent stalled. A core's reported `cycles` therefore includes
//! its barrier stalls, and the cluster's aggregate cycle count is the
//! completion time of the slowest core.

use mlb_isa::TCDM_SIZE;

use crate::counters::{OccupancySummary, PerfCounters};
use crate::machine::{Engine, ExecProgram, Machine, SimError};
use crate::trace::TraceEntry;
use crate::Program;

/// Counters of one cluster call: per-core detail plus the merged view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterCounters {
    /// Counters of each core, in hart order. `cycles` is the core's
    /// barrier-adjusted completion time.
    pub per_core: Vec<PerfCounters>,
    /// Merged counters: `cycles` is the maximum per-core completion
    /// time (the cluster's latency); every other field is the sum over
    /// cores (the cluster's work).
    pub aggregate: PerfCounters,
    /// Number of cluster barriers each core passed during the call.
    pub barriers: usize,
    /// Barrier-wait intervals in cluster time: `barrier_intervals[h][k]`
    /// is `(arrival, release)` of core `h` at barrier `k`, where
    /// `arrival` is the core's shift-adjusted arrival cycle and
    /// `release - arrival` is the wait it spent stalled. Outer length is
    /// the core count, inner length is [`ClusterCounters::barriers`].
    pub barrier_intervals: Vec<Vec<(u64, u64)>>,
}

impl ClusterCounters {
    /// Occupancy of the whole cluster (from the merged counters, so the
    /// utilization ratios are work-per-latency across all cores).
    pub fn occupancy(&self) -> OccupancySummary {
        self.aggregate.occupancy()
    }

    /// Occupancy of each core, in hart order.
    pub fn per_core_occupancy(&self) -> Vec<OccupancySummary> {
        self.per_core.iter().map(PerfCounters::occupancy).collect()
    }
}

/// N Snitch cores sharing one TCDM image.
#[derive(Debug, Clone)]
pub struct Cluster {
    cores: Vec<Machine>,
    /// The shared TCDM image, swapped into each core for its turn.
    mem: Vec<u8>,
}

impl Cluster {
    /// Creates a cluster of `num_cores` cores (hart ids `0..num_cores`)
    /// with a zeroed shared TCDM.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero.
    pub fn new(num_cores: usize) -> Cluster {
        assert!(num_cores > 0, "a cluster needs at least one core");
        let cores = (0..num_cores)
            .map(|h| {
                let mut m = Machine::new();
                m.set_hart_id(h as u32);
                // The per-core images are dead weight; the shared image
                // below is the one every core executes against.
                *m.mem_mut() = Vec::new();
                m
            })
            .collect();
        Cluster { cores, mem: vec![0; TCDM_SIZE] }
    }

    /// Number of cores in the cluster.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Sets the dynamic-instruction budget of every core.
    pub fn set_instruction_budget(&mut self, budget: u64) {
        for core in &mut self.cores {
            core.set_instruction_budget(budget);
        }
    }

    /// Selects the execution engine on every core (see [`Engine`]).
    pub fn set_engine(&mut self, engine: Engine) {
        for core in &mut self.cores {
            core.set_engine(engine);
        }
    }

    /// Enables execution tracing on every core (see
    /// [`Machine::enable_trace`]; disables the frep fast path so every
    /// retired instruction is recorded).
    pub fn enable_trace(&mut self) {
        for core in &mut self.cores {
            core.enable_trace();
        }
    }

    /// Takes each core's trace of the last call, in hart order.
    ///
    /// Timestamps are core-local; to place a core's entries on the
    /// cluster timeline, shift every entry at or after barrier `k`'s
    /// local arrival by that barrier's accumulated wait (reconstruct
    /// the shifts from [`ClusterCounters::barrier_intervals`]).
    pub fn take_traces(&mut self) -> Vec<Option<Vec<TraceEntry>>> {
        self.cores.iter_mut().map(Machine::take_trace).collect()
    }

    /// Read-only access to core `hart` (architectural state inspection).
    pub fn core(&self, hart: usize) -> &Machine {
        &self.cores[hart]
    }

    // ----- shared-memory access (delegates to a core holding the image) ----

    /// Runs `f` with core 0 temporarily owning the shared TCDM image.
    fn with_image<T>(&mut self, f: impl FnOnce(&mut Machine) -> T) -> T {
        std::mem::swap(self.cores[0].mem_mut(), &mut self.mem);
        let out = f(&mut self.cores[0]);
        std::mem::swap(self.cores[0].mem_mut(), &mut self.mem);
        out
    }

    /// Writes an `f64` slice into the shared TCDM at `addr`.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if the destination range overflows or
    /// lies outside the TCDM.
    pub fn write_f64_slice(&mut self, addr: u32, values: &[f64]) -> Result<(), SimError> {
        self.with_image(|m| m.write_f64_slice(addr, values))
    }

    /// Reads an `f64` slice from the shared TCDM at `addr`.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if the source range overflows or lies
    /// outside the TCDM.
    pub fn read_f64_slice(&mut self, addr: u32, len: usize) -> Result<Vec<f64>, SimError> {
        self.with_image(|m| m.read_f64_slice(addr, len))
    }

    /// Writes an `f32` slice into the shared TCDM at `addr`.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if the destination range overflows or
    /// lies outside the TCDM.
    pub fn write_f32_slice(&mut self, addr: u32, values: &[f32]) -> Result<(), SimError> {
        self.with_image(|m| m.write_f32_slice(addr, values))
    }

    /// Reads an `f32` slice from the shared TCDM at `addr`.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if the source range overflows or lies
    /// outside the TCDM.
    pub fn read_f32_slice(&mut self, addr: u32, len: usize) -> Result<Vec<f32>, SimError> {
        self.with_image(|m| m.read_f32_slice(addr, len))
    }

    /// Writes the raw bits of an FP register on every core (the harness
    /// broadcasts kernel scalar arguments this way).
    pub fn broadcast_f_bits(&mut self, r: mlb_isa::FpReg, value: u64) {
        for core in &mut self.cores {
            core.set_f_bits(r, value);
        }
    }

    // ----- execution --------------------------------------------------------

    /// Calls `entry` on every core of the cluster (same program, same
    /// integer arguments; each core distinguishes itself via `mhartid`).
    ///
    /// # Errors
    ///
    /// Propagates the first failing core's error, and fails if the
    /// cores disagree on how many barriers the program executes.
    pub fn call(
        &mut self,
        program: &Program,
        entry: &str,
        args: &[u32],
    ) -> Result<ClusterCounters, SimError> {
        self.call_predecoded(&ExecProgram::new(program.clone()), entry, args)
    }

    /// Like [`Cluster::call`], but runs an already-predecoded program,
    /// amortizing the predecode scan over cores and repeated calls.
    ///
    /// # Errors
    ///
    /// Propagates the first failing core's error, and fails if the
    /// cores disagree on how many barriers the program executes.
    pub fn call_predecoded(
        &mut self,
        exec: &ExecProgram,
        entry: &str,
        args: &[u32],
    ) -> Result<ClusterCounters, SimError> {
        let mut per_core = Vec::with_capacity(self.cores.len());
        let mut arrivals = Vec::with_capacity(self.cores.len());
        for (hart, core) in self.cores.iter_mut().enumerate() {
            std::mem::swap(core.mem_mut(), &mut self.mem);
            let result = core.call_predecoded(exec, entry, args);
            std::mem::swap(core.mem_mut(), &mut self.mem);
            let counters = result
                .map_err(|e| SimError::Exec { pc: None, message: format!("core {hart}: {e}") })?;
            per_core.push(counters);
            arrivals.push(core.barrier_arrivals().to_vec());
        }
        let barriers = arrivals[0].len();
        if arrivals.iter().any(|a| a.len() != barriers) {
            let counts: Vec<usize> = arrivals.iter().map(Vec::len).collect();
            return Err(SimError::exec(format!("cores disagree on barrier count: {counts:?}")));
        }
        // Reconstruct the barrier waits: per barrier, the release time is
        // the latest adjusted arrival; each core's clock shifts forward by
        // its wait and the shift carries into its later barriers.
        let mut adj = vec![0u64; self.cores.len()];
        let mut barrier_intervals = vec![Vec::with_capacity(barriers); self.cores.len()];
        for k in 0..barriers {
            let release = arrivals
                .iter()
                .zip(adj.iter())
                .map(|(a, &shift)| a[k] + shift)
                .max()
                .expect("at least one core");
            for (h, (a, shift)) in arrivals.iter().zip(adj.iter_mut()).enumerate() {
                barrier_intervals[h].push((a[k] + *shift, release));
                *shift = release - a[k];
            }
        }
        let mut aggregate = PerfCounters::default();
        for (h, c) in per_core.iter_mut().enumerate() {
            c.cycles += adj[h];
            aggregate.accumulate(c);
        }
        aggregate.cycles = per_core.iter().map(|c| c.cycles).max().expect("at least one core");
        Ok(ClusterCounters { per_core, aggregate, barriers, barrier_intervals })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use mlb_isa::TCDM_BASE;

    #[test]
    fn single_core_cluster_matches_machine() {
        let src = "\
f:
    fld ft0, (a0)
    fld ft1, 8(a0)
    fadd.d ft2, ft0, ft1
    fsd ft2, 16(a0)
    ret
";
        let prog = assemble(src).unwrap();
        let mut m = Machine::new();
        m.write_f64_slice(TCDM_BASE, &[3.0, 4.0, 0.0]).unwrap();
        let mc = m.call(&prog, "f", &[TCDM_BASE]).unwrap();

        let mut cluster = Cluster::new(1);
        cluster.write_f64_slice(TCDM_BASE, &[3.0, 4.0, 0.0]).unwrap();
        let cc = cluster.call(&prog, "f", &[TCDM_BASE]).unwrap();
        assert_eq!(cc.per_core, vec![mc]);
        assert_eq!(cc.aggregate, mc);
        assert_eq!(cc.barriers, 0);
        assert_eq!(cluster.read_f64_slice(TCDM_BASE + 16, 1).unwrap(), vec![7.0]);
    }

    #[test]
    fn cores_share_one_tcdm_and_shard_by_hartid() {
        // Each core stores its own hart id into out[hart].
        let src = "\
f:
    csrr t0, mhartid
    slli t1, t0, 2
    add t1, t1, a0
    sw t0, (t1)
    ret
";
        let prog = assemble(src).unwrap();
        let mut cluster = Cluster::new(4);
        let cc = cluster.call(&prog, "f", &[TCDM_BASE]).unwrap();
        let mut got = Vec::new();
        for h in 0..4u32 {
            got.push(cluster.with_image(|m| m.read_u32(TCDM_BASE + 4 * h)).unwrap());
        }
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert_eq!(cc.per_core.len(), 4);
        // Work counters sum across cores.
        assert_eq!(cc.aggregate.instructions, cc.per_core.iter().map(|c| c.instructions).sum());
    }

    #[test]
    fn barrier_aligns_core_completion_times() {
        // Core 1 runs a long dependent-load chain before the barrier;
        // core 0 arrives almost immediately. After alignment both
        // cores' completion times are pulled up to the slow core's
        // arrival, and the aggregate is their max.
        let src = "\
f:
    csrr t0, mhartid
    li t1, 1
    blt t0, t1, join
    lw t2, (a0)
    lw t2, (a0)
    lw t2, (a0)
    lw t2, (a0)
    lw t2, (a0)
    lw t2, (a0)
join:
    csrr zero, 0x7c2
    ret
";
        let prog = assemble(src).unwrap();
        let mut cluster = Cluster::new(2);
        let cc = cluster.call(&prog, "f", &[TCDM_BASE]).unwrap();
        assert_eq!(cc.barriers, 1);
        assert_eq!(cc.aggregate.cycles, cc.per_core.iter().map(|c| c.cycles).max().unwrap());
        // Barrier-adjusted: the fast core's completion is pulled up to
        // at least the slow core's barrier arrival.
        let spread = cc.per_core[0].cycles.abs_diff(cc.per_core[1].cycles);
        assert!(spread <= 1, "barrier should align completions: {:?}", cc.per_core);
    }

    #[test]
    fn mismatched_barrier_counts_are_an_error() {
        // Core 0 skips the barrier, core 1 executes it.
        let src = "\
f:
    csrr t0, mhartid
    li t1, 1
    blt t0, t1, skip
    csrr zero, 0x7c2
skip:
    ret
";
        let prog = assemble(src).unwrap();
        let mut cluster = Cluster::new(2);
        let err = cluster.call(&prog, "f", &[TCDM_BASE]).unwrap_err();
        assert!(err.to_string().contains("disagree on barrier count"), "{err}");
    }

    #[test]
    fn core_errors_name_the_failing_hart() {
        let src = "\
f:
    csrr t0, mhartid
    li t1, 1
    blt t0, t1, ok
    lw t2, (zero)
ok:
    ret
";
        let prog = assemble(src).unwrap();
        let mut cluster = Cluster::new(2);
        let err = cluster.call(&prog, "f", &[]).unwrap_err();
        assert!(err.to_string().contains("core 1"), "{err}");
        assert!(err.to_string().contains("outside TCDM"), "{err}");
    }
}
