//! Stream semantic register (SSR) data movers.
//!
//! Each data mover is a hardware address generator over a nested loop of
//! up to four dimensions with byte strides and an innermost repetition
//! count, exactly as programmed through `scfgwi` (see [`mlb_isa::ssr`]).
//! Reading the mapped register pops the next element of a read job;
//! writing it pushes to a write job.

use mlb_isa::{SsrCfgReg, SSR_MAX_DIMS};

/// Direction of an armed stream job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SsrDirection {
    /// Stream reads memory into the register.
    Read,
    /// Stream writes register values to memory.
    Write,
}

/// One SSR data mover.
#[derive(Debug, Clone)]
pub struct DataMover {
    bounds: [u32; SSR_MAX_DIMS],
    strides: [i64; SSR_MAX_DIMS],
    repeat: u32,
    /// Armed job, if any.
    job: Option<Job>,
    /// Elements popped from read jobs over the mover's lifetime.
    reads: u64,
    /// Elements pushed to write jobs over the mover's lifetime.
    writes: u64,
}

#[derive(Debug, Clone)]
struct Job {
    direction: SsrDirection,
    dims: usize,
    addr: i64,
    idx: [u32; SSR_MAX_DIMS],
    rep: u32,
    done: bool,
    /// Loop configuration captured when the job was armed.
    bounds: [u32; SSR_MAX_DIMS],
    strides: [i64; SSR_MAX_DIMS],
    repeat: u32,
}

impl Default for DataMover {
    fn default() -> DataMover {
        DataMover {
            bounds: [0; SSR_MAX_DIMS],
            strides: [0; SSR_MAX_DIMS],
            repeat: 0,
            job: None,
            reads: 0,
            writes: 0,
        }
    }
}

impl DataMover {
    /// Applies an `scfgwi` write to this data mover.
    pub fn configure(&mut self, reg: SsrCfgReg, value: u32) {
        match reg {
            SsrCfgReg::Status => self.job = None,
            SsrCfgReg::Repeat => self.repeat = value,
            SsrCfgReg::Bound(d) => self.bounds[d as usize] = value,
            SsrCfgReg::Stride(d) => self.strides[d as usize] = value as i32 as i64,
            SsrCfgReg::RPtr(d) => self.arm(SsrDirection::Read, d as usize + 1, value),
            SsrCfgReg::WPtr(d) => self.arm(SsrDirection::Write, d as usize + 1, value),
        }
    }

    fn arm(&mut self, direction: SsrDirection, dims: usize, base: u32) {
        self.job = Some(Job {
            direction,
            dims,
            addr: base as i64,
            idx: [0; SSR_MAX_DIMS],
            rep: 0,
            done: false,
            bounds: self.bounds,
            strides: self.strides,
            repeat: self.repeat,
        });
    }

    /// The direction of the armed job, if any.
    pub fn direction(&self) -> Option<SsrDirection> {
        self.job.as_ref().map(|j| j.direction)
    }

    /// Whether a job is armed (even if already exhausted — an exhausted
    /// stream must fault on further access, not fall back to the plain
    /// register).
    pub fn is_active(&self) -> bool {
        self.job.is_some()
    }

    /// Cumulative (reads, writes) popped from this mover.
    pub fn pop_counts(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }

    /// Pops the next address of the job.
    ///
    /// # Errors
    ///
    /// Returns `Err` if no job is armed, the job is exhausted, or the
    /// direction does not match.
    pub fn next_addr(&mut self, direction: SsrDirection) -> Result<u32, String> {
        let job = self.job.as_mut().ok_or("SSR access with no armed job")?;
        if job.direction != direction {
            return Err(format!("SSR {direction:?} access on a {:?} job", job.direction));
        }
        if job.done {
            return Err("SSR access beyond the end of the stream".to_string());
        }
        let addr = job.addr;
        // Advance: innermost repetition first, then the dimension counters.
        if job.rep < job.repeat {
            job.rep += 1;
        } else {
            job.rep = 0;
            let mut d = 0;
            loop {
                if d == job.dims {
                    job.done = true;
                    break;
                }
                // `bounds[d]` holds iterations - 1, as programmed.
                if job.idx[d] < job.bounds[d] {
                    job.idx[d] += 1;
                    job.addr += job.strides[d];
                    break;
                }
                job.idx[d] = 0;
                d += 1;
            }
        }
        match direction {
            SsrDirection::Read => self.reads += 1,
            SsrDirection::Write => self.writes += 1,
        }
        u32::try_from(addr).map_err(|_| "SSR address out of range".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mover_1d(n: u32, stride: i64, repeat: u32, base: u32) -> DataMover {
        let mut m = DataMover::default();
        m.configure(SsrCfgReg::Bound(0), n - 1);
        m.configure(SsrCfgReg::Stride(0), stride as u32);
        m.configure(SsrCfgReg::Repeat, repeat);
        m.configure(SsrCfgReg::RPtr(0), base);
        m
    }

    #[test]
    fn one_dimensional_walk() {
        let mut m = mover_1d(4, 8, 0, 1000);
        let addrs: Vec<u32> = (0..4).map(|_| m.next_addr(SsrDirection::Read).unwrap()).collect();
        assert_eq!(addrs, vec![1000, 1008, 1016, 1024]);
        assert!(m.next_addr(SsrDirection::Read).is_err());
    }

    #[test]
    fn repeat_delivers_elements_multiple_times() {
        let mut m = mover_1d(2, 8, 2, 0);
        let addrs: Vec<u32> = (0..6).map(|_| m.next_addr(SsrDirection::Read).unwrap()).collect();
        assert_eq!(addrs, vec![0, 0, 0, 8, 8, 8]);
        assert!(m.next_addr(SsrDirection::Read).is_err());
    }

    #[test]
    fn two_dimensional_walk_with_negative_stride() {
        let mut m = DataMover::default();
        m.configure(SsrCfgReg::Bound(0), 2); // 3 iterations
        m.configure(SsrCfgReg::Bound(1), 1); // 2 iterations
        m.configure(SsrCfgReg::Stride(0), 16);
        m.configure(SsrCfgReg::Stride(1), (-24i64) as u32);
        m.configure(SsrCfgReg::WPtr(1), 100);
        let addrs: Vec<u32> = (0..6).map(|_| m.next_addr(SsrDirection::Write).unwrap()).collect();
        assert_eq!(addrs, vec![100, 116, 132, 108, 124, 140]);
    }

    #[test]
    fn matches_stream_pattern_offsets() {
        // Cross-check against the compiler-side pattern model.
        let pattern = mlb_ir::StreamPattern::from_logical(vec![3, 4], vec![8, 40], 1);
        let mut m = DataMover::default();
        for (d, (&ub, &st)) in pattern.ub.iter().zip(&pattern.strides).enumerate() {
            m.configure(SsrCfgReg::Bound(d as u8), ub as u32 - 1);
            m.configure(SsrCfgReg::Stride(d as u8), st as u32);
        }
        m.configure(SsrCfgReg::Repeat, pattern.repeat as u32);
        m.configure(SsrCfgReg::RPtr(pattern.rank() as u8 - 1), 0);
        for expect in pattern.offsets() {
            assert_eq!(m.next_addr(SsrDirection::Read).unwrap() as i64, expect);
        }
        assert!(m.next_addr(SsrDirection::Read).is_err());
    }

    #[test]
    fn direction_mismatch_is_an_error() {
        let mut m = mover_1d(4, 8, 0, 0);
        assert!(m.next_addr(SsrDirection::Write).is_err());
    }

    #[test]
    fn status_write_disarms() {
        let mut m = mover_1d(4, 8, 0, 0);
        assert!(m.is_active());
        m.configure(SsrCfgReg::Status, 0);
        assert!(!m.is_active());
        assert!(m.next_addr(SsrDirection::Read).is_err());
    }

    #[test]
    fn zero_bound_streams_a_single_element() {
        // `bounds[d]` is iterations - 1: a zero bound is one element,
        // not an empty stream.
        let mut m = mover_1d(1, 8, 0, 256);
        assert_eq!(m.next_addr(SsrDirection::Read).unwrap(), 256);
        assert!(m.next_addr(SsrDirection::Read).is_err());
    }

    #[test]
    fn negative_stride_walks_downward() {
        let mut m = mover_1d(3, -8, 0, 1016);
        let addrs: Vec<u32> = (0..3).map(|_| m.next_addr(SsrDirection::Read).unwrap()).collect();
        assert_eq!(addrs, vec![1016, 1008, 1000]);
        assert!(m.next_addr(SsrDirection::Read).is_err());
    }

    #[test]
    fn repeat_survives_into_later_dimensions() {
        // Repeat applies at every dimension step, not just within the
        // innermost dimension's first element.
        let mut m = DataMover::default();
        m.configure(SsrCfgReg::Bound(0), 1); // 2 iterations
        m.configure(SsrCfgReg::Bound(1), 1); // 2 iterations
        m.configure(SsrCfgReg::Stride(0), 8);
        m.configure(SsrCfgReg::Stride(1), 64);
        m.configure(SsrCfgReg::Repeat, 1);
        m.configure(SsrCfgReg::RPtr(1), 0);
        let addrs: Vec<u32> = (0..8).map(|_| m.next_addr(SsrDirection::Read).unwrap()).collect();
        // Strides are relative increments applied on each wrap, so the
        // second row starts at 8 + 64, not at 64.
        assert_eq!(addrs, vec![0, 0, 8, 8, 72, 72, 80, 80]);
        assert!(m.next_addr(SsrDirection::Read).is_err());
    }

    #[test]
    fn re_arming_while_active_restarts_with_the_new_configuration() {
        let mut m = mover_1d(4, 8, 0, 0);
        assert_eq!(m.next_addr(SsrDirection::Read).unwrap(), 0);
        assert_eq!(m.next_addr(SsrDirection::Read).unwrap(), 8);
        // Re-arm mid-stream with a new base and direction: the old job's
        // progress is discarded entirely.
        m.configure(SsrCfgReg::WPtr(0), 512);
        assert_eq!(m.direction(), Some(SsrDirection::Write));
        let addrs: Vec<u32> = (0..4).map(|_| m.next_addr(SsrDirection::Write).unwrap()).collect();
        assert_eq!(addrs, vec![512, 520, 528, 536]);
        assert!(m.next_addr(SsrDirection::Write).is_err());
    }

    #[test]
    fn configuration_writes_after_arming_do_not_affect_the_running_job() {
        // The job snapshots bounds/strides/repeat when armed, as the
        // hardware latches them; reprogramming only affects the next arm.
        let mut m = mover_1d(4, 8, 0, 0);
        assert_eq!(m.next_addr(SsrDirection::Read).unwrap(), 0);
        m.configure(SsrCfgReg::Bound(0), 0);
        m.configure(SsrCfgReg::Stride(0), 1000);
        m.configure(SsrCfgReg::Repeat, 7);
        let rest: Vec<u32> = (0..3).map(|_| m.next_addr(SsrDirection::Read).unwrap()).collect();
        assert_eq!(rest, vec![8, 16, 24]);
        assert!(m.next_addr(SsrDirection::Read).is_err());
        // The next arm picks up the reprogrammed single-element loop.
        m.configure(SsrCfgReg::RPtr(0), 64);
        let repeated: Vec<u32> = (0..8).map(|_| m.next_addr(SsrDirection::Read).unwrap()).collect();
        assert_eq!(repeated, vec![64; 8]);
        assert!(m.next_addr(SsrDirection::Read).is_err());
    }

    #[test]
    fn status_write_clears_a_job_mid_stream() {
        let mut m = mover_1d(8, 8, 0, 0);
        assert_eq!(m.next_addr(SsrDirection::Read).unwrap(), 0);
        assert_eq!(m.next_addr(SsrDirection::Read).unwrap(), 8);
        m.configure(SsrCfgReg::Status, 0);
        assert!(!m.is_active());
        assert!(m.next_addr(SsrDirection::Read).is_err());
        // Pop counters keep the elements delivered before the clear.
        assert_eq!(m.pop_counts(), (2, 0));
    }
}
