//! Stream semantic register (SSR) data movers.
//!
//! Each data mover is a hardware address generator over a nested loop of
//! up to four dimensions with byte strides and an innermost repetition
//! count, exactly as programmed through `scfgwi` (see [`mlb_isa::ssr`]).
//! Reading the mapped register pops the next element of a read job;
//! writing it pushes to a write job.

use mlb_isa::{SsrCfgReg, SSR_MAX_DIMS};

/// Direction of an armed stream job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SsrDirection {
    /// Stream reads memory into the register.
    Read,
    /// Stream writes register values to memory.
    Write,
}

/// One SSR data mover.
#[derive(Debug, Clone)]
pub struct DataMover {
    bounds: [u32; SSR_MAX_DIMS],
    strides: [i64; SSR_MAX_DIMS],
    repeat: u32,
    /// Armed job, if any.
    job: Option<Job>,
    /// Elements popped from read jobs over the mover's lifetime.
    reads: u64,
    /// Elements pushed to write jobs over the mover's lifetime.
    writes: u64,
}

#[derive(Debug, Clone)]
struct Job {
    direction: SsrDirection,
    dims: usize,
    addr: i64,
    idx: [u32; SSR_MAX_DIMS],
    rep: u32,
    done: bool,
    /// Loop configuration captured when the job was armed.
    bounds: [u32; SSR_MAX_DIMS],
    strides: [i64; SSR_MAX_DIMS],
    repeat: u32,
}

impl Default for DataMover {
    fn default() -> DataMover {
        DataMover {
            bounds: [0; SSR_MAX_DIMS],
            strides: [0; SSR_MAX_DIMS],
            repeat: 0,
            job: None,
            reads: 0,
            writes: 0,
        }
    }
}

impl DataMover {
    /// Applies an `scfgwi` write to this data mover.
    pub fn configure(&mut self, reg: SsrCfgReg, value: u32) {
        match reg {
            SsrCfgReg::Status => self.job = None,
            SsrCfgReg::Repeat => self.repeat = value,
            SsrCfgReg::Bound(d) => self.bounds[d as usize] = value,
            SsrCfgReg::Stride(d) => self.strides[d as usize] = value as i32 as i64,
            SsrCfgReg::RPtr(d) => self.arm(SsrDirection::Read, d as usize + 1, value),
            SsrCfgReg::WPtr(d) => self.arm(SsrDirection::Write, d as usize + 1, value),
        }
    }

    fn arm(&mut self, direction: SsrDirection, dims: usize, base: u32) {
        self.job = Some(Job {
            direction,
            dims,
            addr: base as i64,
            idx: [0; SSR_MAX_DIMS],
            rep: 0,
            done: false,
            bounds: self.bounds,
            strides: self.strides,
            repeat: self.repeat,
        });
    }

    /// The direction of the armed job, if any.
    pub fn direction(&self) -> Option<SsrDirection> {
        self.job.as_ref().map(|j| j.direction)
    }

    /// Whether a job is armed (even if already exhausted — an exhausted
    /// stream must fault on further access, not fall back to the plain
    /// register).
    pub fn is_active(&self) -> bool {
        self.job.is_some()
    }

    /// Cumulative (reads, writes) popped from this mover.
    pub fn pop_counts(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }

    /// Pops the next address of the job.
    ///
    /// # Errors
    ///
    /// Returns `Err` if no job is armed, the job is exhausted, or the
    /// direction does not match.
    pub fn next_addr(&mut self, direction: SsrDirection) -> Result<u32, String> {
        let job = self.job.as_mut().ok_or("SSR access with no armed job")?;
        if job.direction != direction {
            return Err(format!("SSR {direction:?} access on a {:?} job", job.direction));
        }
        if job.done {
            return Err("SSR access beyond the end of the stream".to_string());
        }
        let addr = job.addr;
        // Advance: innermost repetition first, then the dimension counters.
        if job.rep < job.repeat {
            job.rep += 1;
        } else {
            job.rep = 0;
            let mut d = 0;
            loop {
                if d == job.dims {
                    job.done = true;
                    break;
                }
                // `bounds[d]` holds iterations - 1, as programmed.
                if job.idx[d] < job.bounds[d] {
                    job.idx[d] += 1;
                    job.addr += job.strides[d];
                    break;
                }
                job.idx[d] = 0;
                d += 1;
            }
        }
        match direction {
            SsrDirection::Read => self.reads += 1,
            SsrDirection::Write => self.writes += 1,
        }
        u32::try_from(addr).map_err(|_| "SSR address out of range".to_string())
    }

    /// Proves that the next `needed` pops in `direction` must all succeed
    /// with every generated address 8-byte aligned and inside
    /// `[lo, hi - 8]`.
    ///
    /// Used by the simulator's frep fast path to license an unchecked
    /// streaming loop ([`DataMover::pop_unchecked`]): the walk is a pure
    /// function of the armed job, so enough remaining elements plus a
    /// conservative whole-walk address envelope rule out every per-pop
    /// fault upfront. Returns `false` whenever the proof does not go
    /// through (wrong direction, exhausted, misaligned, envelope outside
    /// the window, or arithmetic overflow) — the caller then keeps the
    /// per-pop checked path, it does not fault.
    pub fn can_stream_unchecked(
        &self,
        direction: SsrDirection,
        needed: u64,
        lo: i64,
        hi: i64,
    ) -> bool {
        let Some(job) = self.job.as_ref() else { return false };
        if job.direction != direction || job.done || self.remaining(job) < needed {
            return false;
        }
        // All strides a multiple of 8 keep every address congruent to the
        // current one; the whole walk stays 8-byte aligned.
        if job.addr % 8 != 0 || job.strides[..job.dims].iter().any(|s| s % 8 != 0) {
            return false;
        }
        // Exact envelope of the whole walk. Configured strides are
        // *relative* increments applied when the inner dimensions wrap,
        // so one dim-`d` step displaces the address by the *logical*
        // stride `eff[d] = stride[d] + Σ_{i<d} eff[i] * bounds[i]` (the
        // wrap stride on top of the net displacement of a full inner
        // walk), and the walk visits exactly the lattice
        // `Σ_d idx[d] * eff[d]` over the independent index ranges. The
        // envelope of that lattice is the sum of each dimension's
        // `[min(0, eff * bound), max(0, eff * bound)]`, and the armed
        // base is recovered from the current address by subtracting the
        // current indices' displacement.
        let mut env_lo = 0i64;
        let mut env_hi = 0i64;
        let mut net = 0i64;
        let mut here = 0i64;
        for d in 0..job.dims {
            let Some(eff) = net.checked_add(job.strides[d]) else { return false };
            let Some(span) = eff.checked_mul(i64::from(job.bounds[d])) else { return false };
            let at = eff.checked_mul(i64::from(job.idx[d])).and_then(|v| here.checked_add(v));
            let Some(at) = at else { return false };
            here = at;
            let (Some(lo_d), Some(hi_d)) =
                (env_lo.checked_add(span.min(0)), env_hi.checked_add(span.max(0)))
            else {
                return false;
            };
            env_lo = lo_d;
            env_hi = hi_d;
            let Some(next_net) = net.checked_add(span) else { return false };
            net = next_net;
        }
        let Some(base) = job.addr.checked_sub(here) else { return false };
        let (Some(walk_lo), Some(walk_hi)) = (base.checked_add(env_lo), base.checked_add(env_hi))
        else {
            return false;
        };
        lo <= walk_lo && walk_hi <= hi - 8
    }

    /// Elements left to pop from a not-yet-done `job` (its walk visits
    /// `(repeat + 1) * Π(bounds[d] + 1)` addresses in total). Saturates
    /// on the astronomical configurations `scfgwi` can express — an
    /// undercount only ever sends the caller to the checked path.
    fn remaining(&self, job: &Job) -> u64 {
        // Linear positions not yet fully consumed, current one included.
        let mut rem_lin: u128 = 1;
        let mut scale: u128 = 1;
        for d in 0..job.dims {
            rem_lin = rem_lin
                .saturating_add(u128::from(job.bounds[d] - job.idx[d]).saturating_mul(scale));
            scale = scale.saturating_mul(u128::from(job.bounds[d]) + 1);
        }
        let total =
            rem_lin.saturating_mul(u128::from(job.repeat) + 1).saturating_sub(u128::from(job.rep));
        u64::try_from(total).unwrap_or(u64::MAX)
    }

    /// Pops the next address of a job pre-validated by
    /// [`DataMover::can_stream_unchecked`]: identical state machine to
    /// [`DataMover::next_addr`] minus the per-pop fault checks.
    #[inline]
    pub fn pop_unchecked(&mut self, direction: SsrDirection) -> u32 {
        let addr = self.pop_turbo();
        match direction {
            SsrDirection::Read => self.reads += 1,
            SsrDirection::Write => self.writes += 1,
        }
        addr
    }

    /// [`DataMover::pop_unchecked`] with the pop-count bookkeeping
    /// deferred: the simulator's turbo loop advances the walk per pop but
    /// credits all pops in one [`DataMover::credit_pops`] call afterwards,
    /// keeping the per-element path down to the address generator itself.
    #[inline]
    pub fn pop_turbo(&mut self) -> u32 {
        let job = self.job.as_mut().expect("turbo pop without an armed job");
        let addr = job.addr;
        if job.rep < job.repeat {
            job.rep += 1;
        } else {
            job.rep = 0;
            let mut d = 0;
            loop {
                if d == job.dims {
                    job.done = true;
                    break;
                }
                if job.idx[d] < job.bounds[d] {
                    job.idx[d] += 1;
                    job.addr += job.strides[d];
                    break;
                }
                job.idx[d] = 0;
                d += 1;
            }
        }
        addr as u32
    }

    /// Credits `n` pops performed through [`DataMover::pop_turbo`], so
    /// the lifetime pop counts stay identical to a per-pop checked walk.
    pub fn credit_pops(&mut self, direction: SsrDirection, n: u64) {
        match direction {
            SsrDirection::Read => self.reads += n,
            SsrDirection::Write => self.writes += n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mover_1d(n: u32, stride: i64, repeat: u32, base: u32) -> DataMover {
        let mut m = DataMover::default();
        m.configure(SsrCfgReg::Bound(0), n - 1);
        m.configure(SsrCfgReg::Stride(0), stride as u32);
        m.configure(SsrCfgReg::Repeat, repeat);
        m.configure(SsrCfgReg::RPtr(0), base);
        m
    }

    #[test]
    fn one_dimensional_walk() {
        let mut m = mover_1d(4, 8, 0, 1000);
        let addrs: Vec<u32> = (0..4).map(|_| m.next_addr(SsrDirection::Read).unwrap()).collect();
        assert_eq!(addrs, vec![1000, 1008, 1016, 1024]);
        assert!(m.next_addr(SsrDirection::Read).is_err());
    }

    #[test]
    fn repeat_delivers_elements_multiple_times() {
        let mut m = mover_1d(2, 8, 2, 0);
        let addrs: Vec<u32> = (0..6).map(|_| m.next_addr(SsrDirection::Read).unwrap()).collect();
        assert_eq!(addrs, vec![0, 0, 0, 8, 8, 8]);
        assert!(m.next_addr(SsrDirection::Read).is_err());
    }

    #[test]
    fn two_dimensional_walk_with_negative_stride() {
        let mut m = DataMover::default();
        m.configure(SsrCfgReg::Bound(0), 2); // 3 iterations
        m.configure(SsrCfgReg::Bound(1), 1); // 2 iterations
        m.configure(SsrCfgReg::Stride(0), 16);
        m.configure(SsrCfgReg::Stride(1), (-24i64) as u32);
        m.configure(SsrCfgReg::WPtr(1), 100);
        let addrs: Vec<u32> = (0..6).map(|_| m.next_addr(SsrDirection::Write).unwrap()).collect();
        assert_eq!(addrs, vec![100, 116, 132, 108, 124, 140]);
    }

    #[test]
    fn matches_stream_pattern_offsets() {
        // Cross-check against the compiler-side pattern model.
        let pattern = mlb_ir::StreamPattern::from_logical(vec![3, 4], vec![8, 40], 1);
        let mut m = DataMover::default();
        for (d, (&ub, &st)) in pattern.ub.iter().zip(&pattern.strides).enumerate() {
            m.configure(SsrCfgReg::Bound(d as u8), ub as u32 - 1);
            m.configure(SsrCfgReg::Stride(d as u8), st as u32);
        }
        m.configure(SsrCfgReg::Repeat, pattern.repeat as u32);
        m.configure(SsrCfgReg::RPtr(pattern.rank() as u8 - 1), 0);
        for expect in pattern.offsets() {
            assert_eq!(m.next_addr(SsrDirection::Read).unwrap() as i64, expect);
        }
        assert!(m.next_addr(SsrDirection::Read).is_err());
    }

    #[test]
    fn pop_unchecked_matches_next_addr() {
        // The unchecked pop drives the same state machine as the checked
        // one: identical addresses, pop counts and final job state over a
        // two-dimensional walk with an inner repeat.
        let mk = || {
            let mut m = DataMover::default();
            m.configure(SsrCfgReg::Bound(0), 2);
            m.configure(SsrCfgReg::Bound(1), 1);
            m.configure(SsrCfgReg::Stride(0), 16);
            m.configure(SsrCfgReg::Stride(1), (-24i64) as u32);
            m.configure(SsrCfgReg::Repeat, 1);
            m.configure(SsrCfgReg::RPtr(1), 100);
            m
        };
        let (mut checked, mut unchecked) = (mk(), mk());
        for _ in 0..12 {
            assert_eq!(
                checked.next_addr(SsrDirection::Read).unwrap(),
                unchecked.pop_unchecked(SsrDirection::Read)
            );
        }
        assert_eq!(checked.pop_counts(), unchecked.pop_counts());
        // Both walks end exactly exhausted.
        assert!(checked.next_addr(SsrDirection::Read).is_err());
        assert!(!unchecked.can_stream_unchecked(SsrDirection::Read, 1, 0, 1 << 20));
    }

    #[test]
    fn can_stream_unchecked_proof_boundaries() {
        let window = (1000, 1032);
        let mut m = mover_1d(4, 8, 0, 1000);
        // Addresses 1000..=1024: exactly 4 remaining elements fit the
        // window (1024 + 8 == hi), 5 do not exist.
        assert!(m.can_stream_unchecked(SsrDirection::Read, 4, window.0, window.1));
        assert!(!m.can_stream_unchecked(SsrDirection::Read, 5, window.0, window.1));
        // Wrong direction and too-small windows are rejected.
        assert!(!m.can_stream_unchecked(SsrDirection::Write, 1, window.0, window.1));
        assert!(!m.can_stream_unchecked(SsrDirection::Read, 4, window.0, window.1 - 1));
        assert!(!m.can_stream_unchecked(SsrDirection::Read, 4, window.0 + 1, window.1));
        // Mid-walk the remaining count shrinks but the envelope (from
        // the walk's initial base) still proves the full window.
        m.next_addr(SsrDirection::Read).unwrap();
        assert!(m.can_stream_unchecked(SsrDirection::Read, 3, window.0, window.1));
        assert!(!m.can_stream_unchecked(SsrDirection::Read, 4, window.0, window.1));
        // 4-byte strides cannot prove 8-byte alignment.
        let narrow = mover_1d(4, 4, 0, 1000);
        assert!(!narrow.can_stream_unchecked(SsrDirection::Read, 1, 0, 1 << 20));
        // A misaligned base cannot either.
        let offset = mover_1d(4, 8, 0, 1004);
        assert!(!offset.can_stream_unchecked(SsrDirection::Read, 1, 0, 1 << 20));
        // No armed job, or a disarmed one, never qualifies.
        assert!(!DataMover::default().can_stream_unchecked(SsrDirection::Read, 1, 0, 1 << 20));
    }

    #[test]
    fn direction_mismatch_is_an_error() {
        let mut m = mover_1d(4, 8, 0, 0);
        assert!(m.next_addr(SsrDirection::Write).is_err());
    }

    #[test]
    fn status_write_disarms() {
        let mut m = mover_1d(4, 8, 0, 0);
        assert!(m.is_active());
        m.configure(SsrCfgReg::Status, 0);
        assert!(!m.is_active());
        assert!(m.next_addr(SsrDirection::Read).is_err());
    }

    #[test]
    fn zero_bound_streams_a_single_element() {
        // `bounds[d]` is iterations - 1: a zero bound is one element,
        // not an empty stream.
        let mut m = mover_1d(1, 8, 0, 256);
        assert_eq!(m.next_addr(SsrDirection::Read).unwrap(), 256);
        assert!(m.next_addr(SsrDirection::Read).is_err());
    }

    #[test]
    fn negative_stride_walks_downward() {
        let mut m = mover_1d(3, -8, 0, 1016);
        let addrs: Vec<u32> = (0..3).map(|_| m.next_addr(SsrDirection::Read).unwrap()).collect();
        assert_eq!(addrs, vec![1016, 1008, 1000]);
        assert!(m.next_addr(SsrDirection::Read).is_err());
    }

    #[test]
    fn repeat_survives_into_later_dimensions() {
        // Repeat applies at every dimension step, not just within the
        // innermost dimension's first element.
        let mut m = DataMover::default();
        m.configure(SsrCfgReg::Bound(0), 1); // 2 iterations
        m.configure(SsrCfgReg::Bound(1), 1); // 2 iterations
        m.configure(SsrCfgReg::Stride(0), 8);
        m.configure(SsrCfgReg::Stride(1), 64);
        m.configure(SsrCfgReg::Repeat, 1);
        m.configure(SsrCfgReg::RPtr(1), 0);
        let addrs: Vec<u32> = (0..8).map(|_| m.next_addr(SsrDirection::Read).unwrap()).collect();
        // Strides are relative increments applied on each wrap, so the
        // second row starts at 8 + 64, not at 64.
        assert_eq!(addrs, vec![0, 0, 8, 8, 72, 72, 80, 80]);
        assert!(m.next_addr(SsrDirection::Read).is_err());
    }

    #[test]
    fn re_arming_while_active_restarts_with_the_new_configuration() {
        let mut m = mover_1d(4, 8, 0, 0);
        assert_eq!(m.next_addr(SsrDirection::Read).unwrap(), 0);
        assert_eq!(m.next_addr(SsrDirection::Read).unwrap(), 8);
        // Re-arm mid-stream with a new base and direction: the old job's
        // progress is discarded entirely.
        m.configure(SsrCfgReg::WPtr(0), 512);
        assert_eq!(m.direction(), Some(SsrDirection::Write));
        let addrs: Vec<u32> = (0..4).map(|_| m.next_addr(SsrDirection::Write).unwrap()).collect();
        assert_eq!(addrs, vec![512, 520, 528, 536]);
        assert!(m.next_addr(SsrDirection::Write).is_err());
    }

    #[test]
    fn configuration_writes_after_arming_do_not_affect_the_running_job() {
        // The job snapshots bounds/strides/repeat when armed, as the
        // hardware latches them; reprogramming only affects the next arm.
        let mut m = mover_1d(4, 8, 0, 0);
        assert_eq!(m.next_addr(SsrDirection::Read).unwrap(), 0);
        m.configure(SsrCfgReg::Bound(0), 0);
        m.configure(SsrCfgReg::Stride(0), 1000);
        m.configure(SsrCfgReg::Repeat, 7);
        let rest: Vec<u32> = (0..3).map(|_| m.next_addr(SsrDirection::Read).unwrap()).collect();
        assert_eq!(rest, vec![8, 16, 24]);
        assert!(m.next_addr(SsrDirection::Read).is_err());
        // The next arm picks up the reprogrammed single-element loop.
        m.configure(SsrCfgReg::RPtr(0), 64);
        let repeated: Vec<u32> = (0..8).map(|_| m.next_addr(SsrDirection::Read).unwrap()).collect();
        assert_eq!(repeated, vec![64; 8]);
        assert!(m.next_addr(SsrDirection::Read).is_err());
    }

    #[test]
    fn status_write_clears_a_job_mid_stream() {
        let mut m = mover_1d(8, 8, 0, 0);
        assert_eq!(m.next_addr(SsrDirection::Read).unwrap(), 0);
        assert_eq!(m.next_addr(SsrDirection::Read).unwrap(), 8);
        m.configure(SsrCfgReg::Status, 0);
        assert!(!m.is_active());
        assert!(m.next_addr(SsrDirection::Read).is_err());
        // Pop counters keep the elements delivered before the clear.
        assert_eq!(m.pop_counts(), (2, 0));
    }
}
