#![warn(missing_docs)]

//! Cycle-approximate simulator for the Snitch RISC-V core.
//!
//! This crate plays the role of the Verilator RTL simulation in the
//! paper's evaluation (Section 4.1): it executes the assembly produced by
//! the backend on an instruction-level model of the Snitch
//! microarchitecture — in-order single-issue integer core, 3-stage FPU
//! behind a sequencer (pseudo-dual-issue under FREP), three SSR data
//! movers, and a 128 KiB single-cycle TCDM — and reports the paper's
//! metrics: cycle count, FLOPs/cycle throughput and FPU utilization.
//!
//! Absolute cycle counts are not RTL-exact, but the first-order effects
//! the paper measures (explicit memory operations, loop overheads,
//! FPU RAW stalls, accelerator setup costs) are all modelled.
//!
//! # Example
//!
//! ```
//! use mlb_sim::{assemble, Machine};
//! use mlb_isa::TCDM_BASE;
//!
//! let program = assemble(
//!     "double:\n    fld ft0, (a0)\n    fadd.d ft1, ft0, ft0\n    fsd ft1, 8(a0)\n    ret\n",
//! )?;
//! let mut machine = Machine::new();
//! machine.write_f64_slice(TCDM_BASE, &[21.0, 0.0])?;
//! let counters = machine.call(&program, "double", &[TCDM_BASE])?;
//! assert_eq!(machine.read_f64_slice(TCDM_BASE + 8, 1)?, vec![42.0]);
//! assert_eq!(counters.flops, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod asm;
pub mod cluster;
pub mod counters;
pub mod instr;
pub mod machine;
pub mod pipeline;
pub mod ssr;
pub mod trace;

pub use asm::{assemble, AsmError};
pub use cluster::{Cluster, ClusterCounters};
pub use counters::{OccupancySummary, PerfCounters, StallHistogram};
pub use instr::{Instr, Program};
pub use machine::{Engine, ExecProgram, Machine, SimError};
pub use pipeline::{pipeline_estimate, PipelineEstimate};
pub use trace::{StallReason, TraceEntry};
