//! Two-pass textual assembler for the RV32IMAFD subset plus Snitch
//! extensions emitted by the backend.
//!
//! Accepts exactly the at&t-free, GNU-flavoured syntax the backend's
//! emitter produces: one instruction per line, `label:` definitions,
//! `.text`/`.globl` directives, and `#`/`//` comments.

use std::collections::HashMap;
use std::fmt;

use mlb_isa::{FpReg, IntReg};

use crate::instr::{BranchCond, FpBinOp, FpWidth, Instr, IntImmOp, IntOp, Program};

/// Error produced while assembling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "assembly error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

/// Assembles `source` into a [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] identifying the offending source line.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    // Pass 1: collect label addresses.
    let mut symbols = HashMap::new();
    let mut index = 0usize;
    for (lineno, raw) in source.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() || line.starts_with('.') && !line.ends_with(':') {
            continue;
        }
        if let Some(label) = line.strip_suffix(':') {
            let prev = symbols.insert(label.trim().to_string(), index);
            if prev.is_some() {
                return Err(AsmError {
                    line: lineno + 1,
                    message: format!("label `{}` defined twice", label.trim()),
                });
            }
        } else {
            index += 1;
        }
    }

    // Pass 2: parse instructions.
    let mut instrs = Vec::with_capacity(index);
    for (lineno, raw) in source.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() || line.ends_with(':') || line.starts_with('.') && !line.ends_with(':') {
            continue;
        }
        let instr = parse_instr(line, &symbols)
            .map_err(|message| AsmError { line: lineno + 1, message })?;
        instrs.push(instr);
    }
    Ok(Program { instrs, symbols })
}

fn strip_comment(line: &str) -> &str {
    let line = line.split('#').next().unwrap_or(line);
    line.split("//").next().unwrap_or(line)
}

fn parse_int_reg(s: &str) -> Result<IntReg, String> {
    s.trim().parse().map_err(|e| format!("{e}"))
}

fn parse_fp_reg(s: &str) -> Result<FpReg, String> {
    s.trim().parse().map_err(|e| format!("{e}"))
}

fn parse_imm(s: &str) -> Result<i64, String> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).map_err(|_| format!("bad hex immediate `{s}`"))
    } else if let Some(hex) = s.strip_prefix("-0x") {
        i64::from_str_radix(hex, 16).map(|v| -v).map_err(|_| format!("bad hex immediate `{s}`"))
    } else {
        s.parse().map_err(|_| format!("bad immediate `{s}`"))
    }
}

/// Parses `imm(base)` into its parts.
fn parse_mem(s: &str) -> Result<(i64, IntReg), String> {
    let s = s.trim();
    let open = s.find('(').ok_or_else(|| format!("expected imm(reg), got `{s}`"))?;
    let close = s.rfind(')').ok_or_else(|| format!("expected imm(reg), got `{s}`"))?;
    let imm = if open == 0 { 0 } else { parse_imm(&s[..open])? };
    let base = parse_int_reg(&s[open + 1..close])?;
    Ok((imm, base))
}

fn parse_target(s: &str, symbols: &HashMap<String, usize>) -> Result<usize, String> {
    symbols.get(s.trim()).copied().ok_or_else(|| format!("unknown label `{}`", s.trim()))
}

fn parse_instr(line: &str, symbols: &HashMap<String, usize>) -> Result<Instr, String> {
    let (mn, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
    let ops: Vec<&str> =
        if rest.trim().is_empty() { Vec::new() } else { rest.split(',').map(str::trim).collect() };
    let need = |n: usize| -> Result<(), String> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(format!("`{mn}` expects {n} operands, got {}", ops.len()))
        }
    };
    let int_bin = |op: IntOp, ops: &[&str]| -> Result<Instr, String> {
        Ok(Instr::IntOp {
            op,
            rd: parse_int_reg(ops[0])?,
            rs1: parse_int_reg(ops[1])?,
            rs2: parse_int_reg(ops[2])?,
        })
    };
    let int_imm = |op: IntImmOp, ops: &[&str]| -> Result<Instr, String> {
        Ok(Instr::IntImm {
            op,
            rd: parse_int_reg(ops[0])?,
            rs1: parse_int_reg(ops[1])?,
            imm: parse_imm(ops[2])?,
        })
    };
    let fp_bin = |op: FpBinOp, ops: &[&str]| -> Result<Instr, String> {
        Ok(Instr::FpBin {
            op,
            rd: parse_fp_reg(ops[0])?,
            rs1: parse_fp_reg(ops[1])?,
            rs2: parse_fp_reg(ops[2])?,
        })
    };
    let branch = |cond: BranchCond, ops: &[&str]| -> Result<Instr, String> {
        Ok(Instr::Branch {
            cond,
            rs1: parse_int_reg(ops[0])?,
            rs2: parse_int_reg(ops[1])?,
            target: parse_target(ops[2], symbols)?,
        })
    };
    match mn {
        "li" => {
            need(2)?;
            Ok(Instr::Li { rd: parse_int_reg(ops[0])?, imm: parse_imm(ops[1])? })
        }
        "mv" => {
            need(2)?;
            Ok(Instr::Mv { rd: parse_int_reg(ops[0])?, rs: parse_int_reg(ops[1])? })
        }
        "add" => {
            need(3)?;
            int_bin(IntOp::Add, &ops)
        }
        "sub" => {
            need(3)?;
            int_bin(IntOp::Sub, &ops)
        }
        "mul" => {
            need(3)?;
            int_bin(IntOp::Mul, &ops)
        }
        "addi" => {
            need(3)?;
            int_imm(IntImmOp::Addi, &ops)
        }
        "slli" => {
            need(3)?;
            int_imm(IntImmOp::Slli, &ops)
        }
        "lw" => {
            need(2)?;
            let (imm, base) = parse_mem(ops[1])?;
            Ok(Instr::Lw { rd: parse_int_reg(ops[0])?, base, imm })
        }
        "sw" => {
            need(2)?;
            let (imm, base) = parse_mem(ops[1])?;
            Ok(Instr::Sw { rs2: parse_int_reg(ops[0])?, base, imm })
        }
        "fld" | "flw" => {
            need(2)?;
            let width = if mn == "fld" { FpWidth::Double } else { FpWidth::Single };
            let (imm, base) = parse_mem(ops[1])?;
            Ok(Instr::FpLoad { width, rd: parse_fp_reg(ops[0])?, base, imm })
        }
        "fsd" | "fsw" => {
            need(2)?;
            let width = if mn == "fsd" { FpWidth::Double } else { FpWidth::Single };
            let (imm, base) = parse_mem(ops[1])?;
            Ok(Instr::FpStore { width, rs2: parse_fp_reg(ops[0])?, base, imm })
        }
        "fadd.d" => {
            need(3)?;
            fp_bin(FpBinOp::FaddD, &ops)
        }
        "fsub.d" => {
            need(3)?;
            fp_bin(FpBinOp::FsubD, &ops)
        }
        "fmul.d" => {
            need(3)?;
            fp_bin(FpBinOp::FmulD, &ops)
        }
        "fdiv.d" => {
            need(3)?;
            fp_bin(FpBinOp::FdivD, &ops)
        }
        "fmax.d" => {
            need(3)?;
            fp_bin(FpBinOp::FmaxD, &ops)
        }
        "fadd.s" => {
            need(3)?;
            fp_bin(FpBinOp::FaddS, &ops)
        }
        "fsub.s" => {
            need(3)?;
            fp_bin(FpBinOp::FsubS, &ops)
        }
        "fmul.s" => {
            need(3)?;
            fp_bin(FpBinOp::FmulS, &ops)
        }
        "fmax.s" => {
            need(3)?;
            fp_bin(FpBinOp::FmaxS, &ops)
        }
        "vfadd.s" => {
            need(3)?;
            fp_bin(FpBinOp::VfaddS, &ops)
        }
        "vfmul.s" => {
            need(3)?;
            fp_bin(FpBinOp::VfmulS, &ops)
        }
        "vfmax.s" => {
            need(3)?;
            fp_bin(FpBinOp::VfmaxS, &ops)
        }
        "vfcpka.s.s" => {
            need(3)?;
            fp_bin(FpBinOp::VfcpkaSS, &ops)
        }
        "fmadd.d" | "fmadd.s" => {
            need(4)?;
            let width = if mn == "fmadd.d" { FpWidth::Double } else { FpWidth::Single };
            Ok(Instr::Fmadd {
                width,
                rd: parse_fp_reg(ops[0])?,
                rs1: parse_fp_reg(ops[1])?,
                rs2: parse_fp_reg(ops[2])?,
                rs3: parse_fp_reg(ops[3])?,
            })
        }
        "fmv.d" => {
            need(2)?;
            Ok(Instr::FmvD { rd: parse_fp_reg(ops[0])?, rs: parse_fp_reg(ops[1])? })
        }
        "vfmac.s" => {
            need(3)?;
            Ok(Instr::VfmacS {
                rd: parse_fp_reg(ops[0])?,
                rs1: parse_fp_reg(ops[1])?,
                rs2: parse_fp_reg(ops[2])?,
            })
        }
        "vfsum.s" => {
            need(2)?;
            Ok(Instr::VfsumS { rd: parse_fp_reg(ops[0])?, rs1: parse_fp_reg(ops[1])? })
        }
        "fcvt.d.w" | "fcvt.s.w" => {
            need(2)?;
            let width = if mn == "fcvt.d.w" { FpWidth::Double } else { FpWidth::Single };
            Ok(Instr::Fcvt { width, rd: parse_fp_reg(ops[0])?, rs: parse_int_reg(ops[1])? })
        }
        "csrr" => {
            need(2)?;
            let rd = parse_int_reg(ops[0])?;
            let csr =
                if ops[1] == "mhartid" { mlb_isa::CSR_MHARTID } else { parse_imm(ops[1])? as u16 };
            Ok(Instr::Csrr { rd, csr })
        }
        "csrrsi" | "csrrci" => {
            need(3)?;
            // csrrsi zero, csr, imm
            let csr = parse_imm(ops[1])? as u16;
            let imm = parse_imm(ops[2])? as u32;
            if mn == "csrrsi" {
                Ok(Instr::Csrrsi { csr, imm })
            } else {
                Ok(Instr::Csrrci { csr, imm })
            }
        }
        "scfgwi" => {
            need(2)?;
            Ok(Instr::Scfgwi { rs1: parse_int_reg(ops[0])?, imm: parse_imm(ops[1])? as u16 })
        }
        "frep.o" => {
            need(4)?;
            Ok(Instr::FrepO { rs1: parse_int_reg(ops[0])?, n_instr: parse_imm(ops[1])? as u32 })
        }
        "blt" => {
            need(3)?;
            branch(BranchCond::Lt, &ops)
        }
        "bge" => {
            need(3)?;
            branch(BranchCond::Ge, &ops)
        }
        "bne" => {
            need(3)?;
            branch(BranchCond::Ne, &ops)
        }
        "beq" => {
            need(3)?;
            branch(BranchCond::Eq, &ops)
        }
        "j" => {
            need(1)?;
            Ok(Instr::J { target: parse_target(ops[0], symbols)? })
        }
        "ret" => {
            need(0)?;
            Ok(Instr::Ret)
        }
        other => Err(format!("unknown mnemonic `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_basic_program() {
        let src = "\
.text
.globl f
f:
    li t0, 5        # a comment
    addi t0, t0, -1
    blt zero, t0, f
    ret
";
        let p = assemble(src).unwrap();
        assert_eq!(p.instrs.len(), 4);
        assert_eq!(p.symbols["f"], 0);
        assert_eq!(p.instrs[0], Instr::Li { rd: IntReg::t(0), imm: 5 });
        assert_eq!(
            p.instrs[2],
            Instr::Branch { cond: BranchCond::Lt, rs1: IntReg::ZERO, rs2: IntReg::t(0), target: 0 }
        );
    }

    #[test]
    fn assembles_memory_and_fp() {
        let src = "\
k:
    fld ft0, 8(a0)
    fmadd.d ft3, ft0, ft0, ft3
    fsd ft3, (a1)
    vfmac.s ft4, ft0, ft1
    vfsum.s ft5, ft4
    scfgwi t1, 64
    csrrsi zero, 0x7c0, 1
    frep.o t0, 2, 0, 0
    ret
";
        let p = assemble(src).unwrap();
        assert_eq!(
            p.instrs[0],
            Instr::FpLoad { width: FpWidth::Double, rd: FpReg::ft(0), base: IntReg::a(0), imm: 8 }
        );
        assert_eq!(
            p.instrs[2],
            Instr::FpStore {
                width: FpWidth::Double,
                rs2: FpReg::ft(3),
                base: IntReg::a(1),
                imm: 0
            }
        );
        assert_eq!(p.instrs[5], Instr::Scfgwi { rs1: IntReg::t(1), imm: 64 });
        assert_eq!(p.instrs[6], Instr::Csrrsi { csr: 0x7c0, imm: 1 });
        assert_eq!(p.instrs[7], Instr::FrepO { rs1: IntReg::t(0), n_instr: 2 });
    }

    #[test]
    fn forward_labels_resolve() {
        let src = "\
start:
    j end
    li a0, 1
end:
    ret
";
        let p = assemble(src).unwrap();
        assert_eq!(p.instrs[0], Instr::J { target: 2 });
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = assemble("  li t0, 1\n  bogus t1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bogus"));
    }

    #[test]
    fn duplicate_labels_rejected() {
        let err = assemble("a:\n  ret\na:\n  ret\n").unwrap_err();
        assert!(err.message.contains("defined twice"));
    }

    #[test]
    fn unknown_label_rejected() {
        let err = assemble("  j nowhere\n").unwrap_err();
        assert!(err.message.contains("nowhere"));
    }

    #[test]
    fn wrong_arity_rejected() {
        let err = assemble("  add t0, t1\n").unwrap_err();
        assert!(err.message.contains("expects 3"));
    }
}
