//! The Snitch core model: functional execution plus a cycle-approximate
//! timing model.
//!
//! # Microarchitecture model
//!
//! Two units with their own timelines, coupled by a register scoreboard:
//!
//! - the **integer core** executes one instruction per cycle in order
//!   (loads have a 2-cycle use latency, `mul` 3, taken control transfers
//!   pay a redirect penalty);
//! - the **FPU** accepts one arithmetic instruction per cycle from the
//!   sequencer FIFO and has a 3-stage pipeline: a dependent consumer
//!   stalls until `issue + 3` ([`mlb_isa::FPU_PIPELINE_DEPTH`]).
//!
//! FP instructions are *dispatched* by the integer core (one cycle each),
//! which makes plain scalar code single-issue. Inside an `frep.o`
//! hardware loop the sequencer replays the buffered instructions without
//! the integer core, making the core pseudo-dual-issue (Section 2.4).
//! Stream semantic registers turn `ft0`–`ft2` accesses into implicit
//! memory traffic served by the data movers in [`crate::ssr`].

use mlb_isa::{FpReg, IntReg, SsrCfgReg, CSR_SSR, FPU_PIPELINE_DEPTH, TCDM_BASE, TCDM_SIZE};

use crate::counters::PerfCounters;
use crate::instr::{BranchCond, FpBinOp, FpWidth, Instr, IntImmOp, IntOp, Program};
use crate::ssr::{DataMover, SsrDirection};
use crate::trace::{StallReason, TraceEntry};

/// Use latency of integer loads.
const LOAD_LATENCY: u64 = 2;
/// Use latency of integer multiplication.
const MUL_LATENCY: u64 = 3;
/// Extra cycles lost on a taken control transfer.
const BRANCH_PENALTY: u64 = 2;
/// Occupancy of the (unpipelined) FP divider.
const FDIV_OCCUPANCY: u64 = 11;

/// Error produced during simulation.
///
/// Memory faults carry the offending address and access size as data;
/// everything else (SSR misuse, budget exhaustion, malformed frep
/// bodies, ...) is an [`SimError::Exec`] with a description. Each
/// variant records the index of the faulting instruction when it is
/// known — harness-level memory accesses happen outside any program, so
/// their `pc` is `None`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A memory access fell outside the TCDM address range.
    OutsideTcdm {
        /// Index of the instruction that failed, if known.
        pc: Option<usize>,
        /// The faulting byte address.
        addr: u32,
        /// Size of the attempted access in bytes.
        size: usize,
    },
    /// A memory access was not aligned to its own size.
    Misaligned {
        /// Index of the instruction that failed, if known.
        pc: Option<usize>,
        /// The faulting byte address.
        addr: u32,
        /// Size of the attempted access in bytes.
        size: usize,
    },
    /// Any other execution failure, described by a message.
    Exec {
        /// Index of the instruction that failed, if known.
        pc: Option<usize>,
        /// Description of the failure.
        message: String,
    },
}

impl SimError {
    /// An [`SimError::Exec`] with no instruction attribution (yet).
    pub(crate) fn exec(message: impl Into<String>) -> SimError {
        SimError::Exec { pc: None, message: message.into() }
    }

    /// An [`SimError::Exec`] attributed to the instruction at `pc`.
    fn exec_at(pc: usize, message: impl Into<String>) -> SimError {
        SimError::Exec { pc: Some(pc), message: message.into() }
    }

    /// The index of the instruction that failed, if known.
    pub fn pc(&self) -> Option<usize> {
        match *self {
            SimError::OutsideTcdm { pc, .. }
            | SimError::Misaligned { pc, .. }
            | SimError::Exec { pc, .. } => pc,
        }
    }

    /// Attributes the error to the instruction at `pc` if it has no
    /// attribution yet (a fault already pinned to an inner pc keeps it).
    fn with_pc(mut self, at: usize) -> SimError {
        let (SimError::OutsideTcdm { pc, .. }
        | SimError::Misaligned { pc, .. }
        | SimError::Exec { pc, .. }) = &mut self;
        if pc.is_none() {
            *pc = Some(at);
        }
        self
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.pc() {
            Some(pc) => write!(f, "simulation error at instruction {pc}: ")?,
            None => write!(f, "simulation error: ")?,
        }
        match *self {
            SimError::OutsideTcdm { addr, .. } => write!(f, "address {addr:#x} outside TCDM"),
            SimError::Misaligned { addr, size, .. } => {
                write!(f, "misaligned {size}-byte access at {addr:#x}")
            }
            SimError::Exec { ref message, .. } => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Which execution engine [`Machine::call_predecoded`] drives.
///
/// Both engines are observably identical: results, counters, traces and
/// [`SimError`] faults agree bit for bit (pinned by the
/// engine-equivalence suite). The process-wide default is read once from
/// the `MLB_SIM_ENGINE` environment variable — `checked` selects the
/// reference stepper, anything else (or unset) the superblock engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// CFG-predecoded superblock execution: straight-line runs execute
    /// with a single upfront budget precheck per superblock, eligible
    /// frep bodies go through the pre-resolved stream fast path, and no
    /// per-step trace plumbing exists on the path at all. Falls back to
    /// [`Engine::Checked`] stepping whenever a precheck fails — and for
    /// whole calls when tracing is enabled — so faults stay exact.
    #[default]
    Superblock,
    /// The fully-checked reference stepper: per-instruction fetch and
    /// budget checks, per-iteration frep body validation, per-pop
    /// stream checks. Only useful to benchmark the difference and to
    /// cross-check the superblock engine.
    Checked,
}

impl Engine {
    /// The process-wide default engine, from `MLB_SIM_ENGINE` (read
    /// once; later environment changes have no effect).
    pub fn from_env() -> Engine {
        static DEFAULT: std::sync::OnceLock<Engine> = std::sync::OnceLock::new();
        *DEFAULT.get_or_init(|| match std::env::var("MLB_SIM_ENGINE").as_deref() {
            Ok("checked") => Engine::Checked,
            _ => Engine::Superblock,
        })
    }
}

/// Validity of an `frep.o` body, established once at predecode time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FrepBody {
    /// Not an `frep.o` instruction.
    None,
    /// Every body instruction is an FPU instruction.
    Fpu,
    /// The body runs off the end of the program.
    OffEnd,
    /// The body contains a non-FPU instruction. The validating loop
    /// reproduces the exact per-iteration error (preceding FPU body
    /// instructions still execute first).
    NonFpu,
}

/// One predecoded execution step, parallel to the instruction stream.
///
/// Control transfers carry their pre-resolved targets and operands,
/// freps their body classification, and everything else routes to the
/// shared [`Machine::exec_straight`] semantic core — the superblock
/// engine dispatches on this dense plan instead of re-deriving structure
/// from [`Instr`] on every visit.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// A non-control-flow instruction (shared semantic core).
    Straight(Instr),
    /// Function return.
    Ret,
    /// Unconditional jump to a pre-resolved instruction index.
    Jump { target: u32 },
    /// Conditional branch with pre-extracted condition and operands.
    Branch { cond: BranchCond, rs1: IntReg, rs2: IntReg, target: u32 },
    /// `frep.o` with its body classified at predecode time; `n` body
    /// instructions follow this pc.
    Frep { rs1: IntReg, n: u32, body: FrepBody },
}

/// A [`Program`] predecoded into a dense, execute-ready CFG artifact.
///
/// Predecoding partitions the program into superblocks (straight-line
/// runs from an entry point — a symbol, branch/jump target, or branch
/// fall-through — to the next control transfer), pre-resolves every
/// instruction into a [`Step`], classifies every `frep.o` body, and
/// precomputes each pc's straight-line tail weight for the superblock
/// engine's single upfront budget precheck per block. The artifact owns
/// its [`Program`], so callers can cache it (e.g. as an
/// `Arc<ExecProgram>`) and amortize the predecode across arbitrarily
/// many runs; build one with [`ExecProgram::new`] and run it via
/// [`Machine::call_predecoded`] ([`Machine::call`] predecodes
/// internally, once per call).
#[derive(Debug, Clone)]
pub struct ExecProgram {
    program: Program,
    /// Per-pc frep-body classification, parallel to `program.instrs`.
    frep: Vec<FrepBody>,
    /// Dense step plan, parallel to `program.instrs`.
    steps: Vec<Step>,
    /// `tail_weight[pc]`: instructions retired by the straight-line run
    /// from `pc` through its terminating control transfer (or program
    /// end), counting each `frep.o` dispatch once and its body
    /// repetitions not at all (those budget-check themselves per
    /// repetition). If `executed + tail_weight[pc]` stays within budget,
    /// no scalar step up to the terminator can exhaust it — that is the
    /// superblock precheck.
    tail_weight: Vec<u64>,
    /// The superblock partition: `(start, end)` instruction-index ranges
    /// (`end` exclusive of nothing — one past the terminator, clamped to
    /// the program length). Diagnostic view; the engine walks
    /// `steps`/`tail_weight` directly.
    blocks: Vec<(usize, usize)>,
}

impl ExecProgram {
    /// Predecodes `program`, taking ownership so the artifact is
    /// self-contained and cacheable.
    pub fn new(program: Program) -> ExecProgram {
        let len = program.instrs.len();
        let mut frep = Vec::with_capacity(len);
        let mut steps = Vec::with_capacity(len);
        for (pc, instr) in program.instrs.iter().enumerate() {
            let body = match *instr {
                Instr::FrepO { n_instr, .. } => {
                    let n = n_instr as usize;
                    if pc + n >= len {
                        FrepBody::OffEnd
                    } else if program.instrs[pc + 1..=pc + n].iter().all(Instr::is_fpu) {
                        FrepBody::Fpu
                    } else {
                        FrepBody::NonFpu
                    }
                }
                _ => FrepBody::None,
            };
            frep.push(body);
            steps.push(match *instr {
                Instr::Ret => Step::Ret,
                Instr::J { target } => Step::Jump { target: target as u32 },
                Instr::Branch { cond, rs1, rs2, target } => {
                    Step::Branch { cond, rs1, rs2, target: target as u32 }
                }
                Instr::FrepO { rs1, n_instr } => Step::Frep { rs1, n: n_instr, body },
                other => Step::Straight(other),
            });
        }
        // Straight-line tail weights, computed backwards so every pc
        // reuses its successor's tail.
        let mut tail_weight = vec![0u64; len];
        for pc in (0..len).rev() {
            tail_weight[pc] = match steps[pc] {
                Step::Ret | Step::Jump { .. } | Step::Branch { .. } => 1,
                Step::Frep { n, body, .. } => {
                    let resume = pc + n as usize + 1;
                    if body == FrepBody::OffEnd || resume >= len {
                        1
                    } else {
                        1 + tail_weight[resume]
                    }
                }
                Step::Straight(_) => 1 + tail_weight.get(pc + 1).copied().unwrap_or(0),
            };
        }
        // The superblock partition: every entry pc starts a block
        // running to the next control transfer (overlapping tails are
        // shared between blocks, exactly like the engine executes them).
        let mut leaders: Vec<usize> = program.symbols.values().copied().collect();
        for (pc, step) in steps.iter().enumerate() {
            match *step {
                Step::Jump { target } => leaders.push(target as usize),
                Step::Branch { target, .. } => {
                    leaders.push(target as usize);
                    leaders.push(pc + 1);
                }
                _ => {}
            }
        }
        leaders.sort_unstable();
        leaders.dedup();
        let mut blocks = Vec::with_capacity(leaders.len());
        for start in leaders {
            if start >= len {
                continue;
            }
            let mut end = start;
            while end < len {
                match steps[end] {
                    Step::Ret | Step::Jump { .. } | Step::Branch { .. } => {
                        end += 1;
                        break;
                    }
                    Step::Frep { n, .. } => end += n as usize + 1,
                    Step::Straight(_) => end += 1,
                }
            }
            blocks.push((start, end.min(len)));
        }
        ExecProgram { program, frep, steps, tail_weight, blocks }
    }

    /// The underlying program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The superblock partition as `(start, end)` instruction-index
    /// ranges (`end` one past the block's last instruction). Diagnostic
    /// view for tests and tooling.
    pub fn blocks(&self) -> &[(usize, usize)] {
        &self.blocks
    }
}

/// An FPU source operand pre-resolved for the frep fast path: either a
/// pop from a read stream or a register read.
#[derive(Debug, Clone, Copy)]
enum FpSrc {
    /// Pop the next element from this data mover.
    Stream(u8),
    /// Read FP register file entry `f[i]`.
    Reg(u8),
}

/// An FPU destination pre-resolved for the frep fast path.
#[derive(Debug, Clone, Copy)]
enum FpDst {
    /// Push the result to this data mover.
    Stream(u8),
    /// Write FP register file entry `f[i]`.
    Reg(u8),
}

/// One FPU instruction of an frep body with its operand routing
/// pre-resolved. Stream-vs-register classification is stable for the
/// whole frep: it depends only on `ssr_enabled` and each mover's job,
/// and neither can change from inside an (FPU-only) frep body.
#[derive(Debug, Clone, Copy)]
enum FpuStep {
    /// FP binary arithmetic.
    Bin { op: FpBinOp, a: FpSrc, b: FpSrc, d: FpDst },
    /// Fused multiply-add (`d = a * b + c`).
    Fmadd { width: FpWidth, a: FpSrc, b: FpSrc, c: FpSrc, d: FpDst },
    /// FP register move.
    Fmv { a: FpSrc, d: FpDst },
    /// Packed multiply-accumulate; `acc` is always a plain register.
    Vfmac { a: FpSrc, b: FpSrc, acc: u8, d: FpDst },
    /// Packed lane sum; `acc` is always a plain register.
    Vfsum { a: FpSrc, acc: u8, d: FpDst },
    /// Integer-to-FP conversion.
    Fcvt { width: FpWidth, rs: IntReg, d: FpDst },
}

/// The simulated Snitch core with its TCDM.
#[derive(Debug, Clone)]
pub struct Machine {
    x: [u32; 32],
    f: [u64; 32],
    mem: Vec<u8>,
    movers: [DataMover; 3],
    ssr_enabled: bool,
    counters: PerfCounters,
    /// Index of this core within its cluster, read via `mhartid`.
    hart_id: u32,
    /// Local arrival time of each cluster-barrier read in the current
    /// call, in program order. [`crate::cluster::Cluster`] aligns these
    /// across cores after the (sequential) per-core runs.
    barrier_arrivals: Vec<u64>,
    // Timing state.
    int_time: u64,
    fpu_time: u64,
    int_ready: [u64; 32],
    fp_ready: [u64; 32],
    max_completion: u64,
    /// Dynamic instruction budget to catch runaway loops.
    budget: u64,
    /// Execution trace of the current call, when enabled.
    trace: Option<Vec<TraceEntry>>,
    /// Which execution engine drives [`Machine::call_predecoded`].
    engine: Engine,
    /// Reusable buffer of pre-resolved steps for the current frep body.
    plan: Vec<FpuStep>,
}

impl Default for Machine {
    fn default() -> Machine {
        Machine::new()
    }
}

impl Machine {
    /// Creates a machine with a zeroed TCDM.
    pub fn new() -> Machine {
        Machine {
            x: [0; 32],
            f: [0; 32],
            mem: vec![0; TCDM_SIZE],
            movers: [DataMover::default(), DataMover::default(), DataMover::default()],
            ssr_enabled: false,
            counters: PerfCounters::default(),
            hart_id: 0,
            barrier_arrivals: Vec::new(),
            int_time: 0,
            fpu_time: 0,
            int_ready: [0; 32],
            fp_ready: [0; 32],
            max_completion: 0,
            budget: 200_000_000,
            trace: None,
            engine: Engine::from_env(),
            plan: Vec::new(),
        }
    }

    /// The performance counters accumulated so far.
    pub fn counters(&self) -> &PerfCounters {
        &self.counters
    }

    /// Sets the core index returned by `csrr rd, mhartid`.
    pub fn set_hart_id(&mut self, id: u32) {
        self.hart_id = id;
    }

    /// The core index returned by `csrr rd, mhartid`.
    pub fn hart_id(&self) -> u32 {
        self.hart_id
    }

    /// Local arrival times of the cluster-barrier reads executed by the
    /// most recent call, in program order.
    pub fn barrier_arrivals(&self) -> &[u64] {
        &self.barrier_arrivals
    }

    /// Mutable access to the TCDM image, for the cluster to swap its
    /// shared image in and out around each core's turn.
    pub(crate) fn mem_mut(&mut self) -> &mut Vec<u8> {
        &mut self.mem
    }

    /// Enables execution tracing. Each subsequent [`Machine::call`]
    /// restarts the trace; read it with [`Machine::trace`] or drain it
    /// with [`Machine::take_trace`].
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// The trace of the most recent call, if tracing is enabled.
    pub fn trace(&self) -> Option<&[TraceEntry]> {
        self.trace.as_deref()
    }

    /// Takes the recorded trace, leaving tracing enabled (empty).
    pub fn take_trace(&mut self) -> Option<Vec<TraceEntry>> {
        self.trace.as_mut().map(std::mem::take)
    }

    /// Cumulative (reads, writes) element counts popped by each of the
    /// three SSR data movers (`ft0`–`ft2`).
    pub fn ssr_pop_counts(&self) -> [(u64, u64); 3] {
        [self.movers[0].pop_counts(), self.movers[1].pop_counts(), self.movers[2].pop_counts()]
    }

    fn record(&mut self, entry: TraceEntry) {
        if let Some(trace) = &mut self.trace {
            trace.push(entry);
        }
    }

    /// Sets the dynamic-instruction budget (runaway-loop guard).
    pub fn set_instruction_budget(&mut self, budget: u64) {
        self.budget = budget;
    }

    /// Selects the execution engine (see [`Engine`]; the default comes
    /// from the `MLB_SIM_ENGINE` environment variable, superblock if
    /// unset). The engines are value-, counter- and error-exact with
    /// each other; [`Engine::Checked`] is only useful to benchmark the
    /// difference and to cross-check the superblock engine. Tracing
    /// always runs on the checked stepper.
    pub fn set_engine(&mut self, engine: Engine) {
        self.engine = engine;
    }

    /// The currently selected execution engine.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    // ----- architectural state access ---------------------------------------

    /// Reads an integer register.
    pub fn x(&self, r: IntReg) -> u32 {
        if r.index() == 0 {
            0
        } else {
            self.x[r.index() as usize]
        }
    }

    /// Writes an integer register (writes to `zero` are ignored).
    pub fn set_x(&mut self, r: IntReg, value: u32) {
        if r.index() != 0 {
            self.x[r.index() as usize] = value;
        }
    }

    /// Reads the raw bits of an FP register.
    pub fn f_bits(&self, r: FpReg) -> u64 {
        self.f[r.index() as usize]
    }

    /// Writes the raw bits of an FP register.
    pub fn set_f_bits(&mut self, r: FpReg, value: u64) {
        self.f[r.index() as usize] = value;
    }

    // ----- memory access -----------------------------------------------------

    fn mem_index(&self, addr: u32, size: usize) -> Result<usize, SimError> {
        let offset = addr.wrapping_sub(TCDM_BASE) as usize;
        if addr < TCDM_BASE || offset + size > TCDM_SIZE {
            return Err(SimError::OutsideTcdm { pc: None, addr, size });
        }
        if !(addr as usize).is_multiple_of(size) {
            return Err(SimError::Misaligned { pc: None, addr, size });
        }
        Ok(offset)
    }

    /// Reads a little-endian value of `SIZE` bytes at `addr`.
    fn read_bytes<const SIZE: usize>(&self, addr: u32) -> Result<[u8; SIZE], SimError> {
        let i = self.mem_index(addr, SIZE)?;
        let mut out = [0u8; SIZE];
        out.copy_from_slice(&self.mem[i..i + SIZE]);
        Ok(out)
    }

    fn write_bytes(&mut self, addr: u32, bytes: &[u8]) -> Result<(), SimError> {
        let i = self.mem_index(addr, bytes.len())?;
        self.mem[i..i + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Reads a `u32` from TCDM.
    pub fn read_u32(&self, addr: u32) -> Result<u32, SimError> {
        self.read_bytes::<4>(addr).map(u32::from_le_bytes)
    }

    /// Reads a `u64` from TCDM.
    pub fn read_u64(&self, addr: u32) -> Result<u64, SimError> {
        self.read_bytes::<8>(addr).map(u64::from_le_bytes)
    }

    /// Computes `addr + index * stride` for a slice element, rejecting
    /// address-space overflow instead of wrapping.
    fn slice_addr(addr: u32, index: usize, stride: usize) -> Result<u32, SimError> {
        let offset = (index as u64).checked_mul(stride as u64);
        offset
            .and_then(|o| (addr as u64).checked_add(o))
            .and_then(|a| u32::try_from(a).ok())
            .ok_or_else(|| {
                SimError::exec(format!(
                    "address overflow accessing element {index} of a slice at {addr:#x}"
                ))
            })
    }

    /// Writes an `f64` slice into TCDM at `addr`.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if the destination range overflows or lies
    /// outside the TCDM.
    pub fn write_f64_slice(&mut self, addr: u32, values: &[f64]) -> Result<(), SimError> {
        for (i, v) in values.iter().enumerate() {
            let a = Self::slice_addr(addr, i, 8)?;
            self.write_bytes(a, &v.to_le_bytes())?;
        }
        Ok(())
    }

    /// Reads an `f64` slice from TCDM at `addr`.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if the source range overflows or lies
    /// outside the TCDM.
    pub fn read_f64_slice(&self, addr: u32, len: usize) -> Result<Vec<f64>, SimError> {
        (0..len)
            .map(|i| {
                let a = Self::slice_addr(addr, i, 8)?;
                self.read_bytes::<8>(a).map(f64::from_le_bytes)
            })
            .collect()
    }

    /// Writes an `f32` slice into TCDM at `addr`.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if the destination range overflows or lies
    /// outside the TCDM.
    pub fn write_f32_slice(&mut self, addr: u32, values: &[f32]) -> Result<(), SimError> {
        for (i, v) in values.iter().enumerate() {
            let a = Self::slice_addr(addr, i, 4)?;
            self.write_bytes(a, &v.to_le_bytes())?;
        }
        Ok(())
    }

    /// Reads an `f32` slice from TCDM at `addr`.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if the source range overflows or lies
    /// outside the TCDM.
    pub fn read_f32_slice(&self, addr: u32, len: usize) -> Result<Vec<f32>, SimError> {
        (0..len)
            .map(|i| {
                let a = Self::slice_addr(addr, i, 4)?;
                self.read_bytes::<4>(a).map(f32::from_le_bytes)
            })
            .collect()
    }

    // ----- execution ----------------------------------------------------------

    /// Calls the function at symbol `entry` with the given integer
    /// arguments in `a0..`, running until its `ret`. Returns the counters
    /// for this call (also accumulated into [`Machine::counters`]).
    ///
    /// # Errors
    ///
    /// Propagates memory faults, SSR misuse, and budget exhaustion.
    pub fn call(
        &mut self,
        program: &Program,
        entry: &str,
        args: &[u32],
    ) -> Result<PerfCounters, SimError> {
        self.call_predecoded(&ExecProgram::new(program.clone()), entry, args)
    }

    /// Like [`Machine::call`], but runs an already-predecoded program,
    /// amortizing the predecode scan over repeated calls.
    ///
    /// # Errors
    ///
    /// Propagates memory faults, SSR misuse, and budget exhaustion.
    pub fn call_predecoded(
        &mut self,
        exec: &ExecProgram,
        entry: &str,
        args: &[u32],
    ) -> Result<PerfCounters, SimError> {
        let start = *exec
            .program
            .symbols
            .get(entry)
            .ok_or_else(|| SimError::exec(format!("unknown entry symbol `{entry}`")))?;
        assert!(args.len() <= 8, "at most 8 integer arguments");
        for (i, &a) in args.iter().enumerate() {
            self.set_x(IntReg::a(i as u8), a);
        }
        // Fresh timing epoch for this call; the trace restarts with it.
        self.int_time = 0;
        self.fpu_time = 0;
        self.int_ready = [0; 32];
        self.fp_ready = [0; 32];
        self.max_completion = 0;
        self.barrier_arrivals.clear();
        if let Some(trace) = &mut self.trace {
            trace.clear();
        }
        let before = self.counters;
        if self.engine == Engine::Superblock && self.trace.is_none() {
            self.run_superblock(exec, start)?;
        } else {
            self.run_checked(exec, start, 0, self.engine == Engine::Superblock)?;
        }
        let cycles = self.int_time.max(self.fpu_time).max(self.max_completion);
        self.counters.cycles += cycles;
        Ok(self.counters.delta_since(&before))
    }

    /// The fully-checked reference stepper: fetches, budget-checks and
    /// dispatches one instruction at a time from `start`, with
    /// `executed` instructions already retired. The superblock engine
    /// defers to this loop whenever a precheck fails — handing over the
    /// whole remaining execution — which is why its semantics are the
    /// bit-identity contract both engines satisfy. `frep_fast` allows
    /// eligible (untraced) frep bodies onto the pre-resolved stream fast
    /// path; [`Engine::Checked`] runs with it off.
    fn run_checked(
        &mut self,
        exec: &ExecProgram,
        start: usize,
        mut executed: u64,
        frep_fast: bool,
    ) -> Result<(), SimError> {
        let instrs = &exec.program.instrs;
        let mut pc = start;
        loop {
            let instr = *instrs
                .get(pc)
                .ok_or_else(|| SimError::exec_at(pc, "program counter ran off the end"))?;
            executed += 1;
            if executed > self.budget {
                return Err(SimError::exec_at(pc, "instruction budget exhausted"));
            }
            match instr {
                Instr::Ret => {
                    let issue = self.int_time;
                    self.int_time += 1;
                    self.counters.instructions += 1;
                    if self.trace.is_some() {
                        self.record(TraceEntry {
                            pc,
                            instr,
                            in_frep: false,
                            issue,
                            complete: issue + 1,
                            stall: StallReason::None,
                            stall_cycles: 0,
                        });
                    }
                    return Ok(());
                }
                Instr::J { target } => {
                    let issue = self.int_time;
                    self.int_time += 1 + BRANCH_PENALTY;
                    self.counters.instructions += 1;
                    self.counters.taken_branches += 1;
                    if self.trace.is_some() {
                        self.record(TraceEntry {
                            pc,
                            instr,
                            in_frep: false,
                            issue,
                            complete: issue + 1 + BRANCH_PENALTY,
                            stall: StallReason::BranchRedirect,
                            stall_cycles: BRANCH_PENALTY,
                        });
                    }
                    pc = target;
                }
                Instr::Branch { cond, rs1, rs2, target } => {
                    let int_before = self.int_time;
                    let t = self
                        .int_time
                        .max(self.int_ready[rs1.index() as usize])
                        .max(self.int_ready[rs2.index() as usize]);
                    self.int_time = t + 1;
                    self.counters.instructions += 1;
                    let a = self.x(rs1) as i32;
                    let b = self.x(rs2) as i32;
                    let taken = match cond {
                        BranchCond::Lt => a < b,
                        BranchCond::Ge => a >= b,
                        BranchCond::Ne => a != b,
                        BranchCond::Eq => a == b,
                    };
                    if taken {
                        self.int_time += BRANCH_PENALTY;
                        self.counters.taken_branches += 1;
                    }
                    if self.trace.is_some() {
                        let wait = t - int_before;
                        let stall = if wait > 0 {
                            StallReason::RawInt
                        } else if taken {
                            StallReason::BranchRedirect
                        } else {
                            StallReason::None
                        };
                        self.record(TraceEntry {
                            pc,
                            instr,
                            in_frep: false,
                            issue: t,
                            complete: self.int_time,
                            stall,
                            stall_cycles: wait + if taken { BRANCH_PENALTY } else { 0 },
                        });
                    }
                    pc = if taken { target } else { pc + 1 };
                }
                Instr::FrepO { rs1, n_instr } => {
                    let int_before = self.int_time;
                    let t = self.int_time.max(self.int_ready[rs1.index() as usize]);
                    self.int_time = t + 1;
                    self.counters.instructions += 1;
                    self.counters.frep += 1;
                    if self.trace.is_some() {
                        self.record(TraceEntry {
                            pc,
                            instr,
                            in_frep: false,
                            issue: t,
                            complete: t + 1,
                            stall: if t > int_before {
                                StallReason::RawInt
                            } else {
                                StallReason::None
                            },
                            stall_cycles: t - int_before,
                        });
                    }
                    let reps = self.x(rs1) as u64 + 1;
                    let n = n_instr as usize;
                    match exec.frep[pc] {
                        FrepBody::OffEnd => {
                            return Err(SimError::exec_at(
                                pc,
                                "frep body runs off the end of the program",
                            ));
                        }
                        FrepBody::Fpu if frep_fast && self.trace.is_none() => {
                            self.resolve_frep_plan(&instrs[pc + 1..=pc + n]);
                            executed = self.run_frep_fast(pc, n, reps, executed)?;
                        }
                        _ => {
                            for _ in 0..reps {
                                for i in 1..=n {
                                    let body = instrs[pc + i];
                                    if !body.is_fpu() {
                                        return Err(SimError::exec_at(
                                            pc + i,
                                            "frep body contains a non-FPU instruction",
                                        ));
                                    }
                                    executed += 1;
                                    self.exec_straight(body, true, pc + i)
                                        .map_err(|e| e.with_pc(pc + i))?;
                                }
                                if executed > self.budget {
                                    return Err(SimError::exec_at(
                                        pc,
                                        "instruction budget exhausted",
                                    ));
                                }
                            }
                        }
                    }
                    pc += n + 1;
                }
                other => {
                    self.exec_straight(other, false, pc).map_err(|e| e.with_pc(pc))?;
                    pc += 1;
                }
            }
        }
    }

    /// The superblock engine: executes the predecoded CFG one
    /// straight-line run at a time. Each superblock entry performs a
    /// single upfront budget precheck (`executed + tail_weight[pc]`
    /// against the budget) — when it passes, no scalar step up to the
    /// block's terminator can exhaust the budget, so the per-step fetch
    /// and budget checks of the checked stepper drop out of the loop
    /// entirely and `executed` becomes a compare-free add. Freps
    /// budget-check per repetition as always and re-precheck the block's
    /// remaining tail afterwards (their dynamic repetition count is not
    /// part of the tail weight). On any precheck failure the *whole*
    /// remaining execution is handed to [`Machine::run_checked`] from
    /// the current pc, which reproduces the exact fault (variant, pc,
    /// message) and final state — the fallback is the reference.
    ///
    /// Only entered with tracing off, so no [`TraceEntry`] construction
    /// exists anywhere on this path.
    fn run_superblock(&mut self, exec: &ExecProgram, start: usize) -> Result<(), SimError> {
        let instrs = &exec.program.instrs;
        let len = instrs.len();
        let mut pc = start;
        let mut executed: u64 = 0;
        'superblock: loop {
            if pc >= len {
                return Err(SimError::exec_at(pc, "program counter ran off the end"));
            }
            if executed.saturating_add(exec.tail_weight[pc]) > self.budget {
                return self.run_checked(exec, pc, executed, true);
            }
            loop {
                match exec.steps[pc] {
                    Step::Straight(instr) => {
                        executed += 1;
                        self.exec_straight(instr, false, pc).map_err(|e| e.with_pc(pc))?;
                        pc += 1;
                        if pc == len {
                            return Err(SimError::exec_at(pc, "program counter ran off the end"));
                        }
                    }
                    Step::Ret => {
                        self.int_time += 1;
                        self.counters.instructions += 1;
                        return Ok(());
                    }
                    Step::Jump { target } => {
                        executed += 1;
                        self.int_time += 1 + BRANCH_PENALTY;
                        self.counters.instructions += 1;
                        self.counters.taken_branches += 1;
                        pc = target as usize;
                        continue 'superblock;
                    }
                    Step::Branch { cond, rs1, rs2, target } => {
                        executed += 1;
                        let t = self
                            .int_time
                            .max(self.int_ready[rs1.index() as usize])
                            .max(self.int_ready[rs2.index() as usize]);
                        self.int_time = t + 1;
                        self.counters.instructions += 1;
                        let a = self.x(rs1) as i32;
                        let b = self.x(rs2) as i32;
                        let taken = match cond {
                            BranchCond::Lt => a < b,
                            BranchCond::Ge => a >= b,
                            BranchCond::Ne => a != b,
                            BranchCond::Eq => a == b,
                        };
                        if taken {
                            self.int_time += BRANCH_PENALTY;
                            self.counters.taken_branches += 1;
                            pc = target as usize;
                        } else {
                            pc += 1;
                        }
                        continue 'superblock;
                    }
                    Step::Frep { rs1, n, body } => {
                        executed += 1;
                        let t = self.int_time.max(self.int_ready[rs1.index() as usize]);
                        self.int_time = t + 1;
                        self.counters.instructions += 1;
                        self.counters.frep += 1;
                        let reps = self.x(rs1) as u64 + 1;
                        let n = n as usize;
                        match body {
                            FrepBody::OffEnd => {
                                return Err(SimError::exec_at(
                                    pc,
                                    "frep body runs off the end of the program",
                                ));
                            }
                            FrepBody::Fpu => {
                                self.resolve_frep_plan(&instrs[pc + 1..=pc + n]);
                                executed = self.run_frep_fast(pc, n, reps, executed)?;
                            }
                            FrepBody::NonFpu => {
                                for _ in 0..reps {
                                    for i in 1..=n {
                                        let body = instrs[pc + i];
                                        if !body.is_fpu() {
                                            return Err(SimError::exec_at(
                                                pc + i,
                                                "frep body contains a non-FPU instruction",
                                            ));
                                        }
                                        executed += 1;
                                        self.exec_straight(body, true, pc + i)
                                            .map_err(|e| e.with_pc(pc + i))?;
                                    }
                                    if executed > self.budget {
                                        return Err(SimError::exec_at(
                                            pc,
                                            "instruction budget exhausted",
                                        ));
                                    }
                                }
                            }
                            FrepBody::None => unreachable!("Step::Frep carries an frep body"),
                        }
                        pc += n + 1;
                        if pc >= len {
                            return Err(SimError::exec_at(pc, "program counter ran off the end"));
                        }
                        // The frep grew `executed` by a dynamic amount;
                        // re-precheck the rest of this superblock.
                        if executed.saturating_add(exec.tail_weight[pc]) > self.budget {
                            return self.run_checked(exec, pc, executed, true);
                        }
                    }
                }
            }
        }
    }

    /// Pre-resolves the operand routing of an (FPU-only) frep body into
    /// the reusable plan buffer.
    fn resolve_frep_plan(&mut self, body: &[Instr]) {
        let mut plan = std::mem::take(&mut self.plan);
        plan.clear();
        plan.extend(body.iter().map(|&instr| self.resolve_step(instr)));
        self.plan = plan;
    }

    /// Classifies an FPU source operand exactly as
    /// [`Machine::read_fp_operand`] would on every iteration.
    fn resolve_src(&self, r: FpReg) -> FpSrc {
        let i = r.index() as usize;
        if self.ssr_enabled
            && r.is_ssr()
            && self.movers[i].is_active()
            && self.movers[i].direction() == Some(SsrDirection::Read)
        {
            FpSrc::Stream(r.index())
        } else {
            FpSrc::Reg(r.index())
        }
    }

    /// Classifies an FPU destination exactly as
    /// [`Machine::write_fp_result`] would on every iteration.
    fn resolve_dst(&self, r: FpReg) -> FpDst {
        let i = r.index() as usize;
        if self.ssr_enabled
            && r.is_ssr()
            && self.movers[i].is_active()
            && self.movers[i].direction() == Some(SsrDirection::Write)
        {
            FpDst::Stream(r.index())
        } else {
            FpDst::Reg(r.index())
        }
    }

    fn resolve_step(&self, instr: Instr) -> FpuStep {
        match instr {
            Instr::FpBin { op, rd, rs1, rs2 } => FpuStep::Bin {
                op,
                a: self.resolve_src(rs1),
                b: self.resolve_src(rs2),
                d: self.resolve_dst(rd),
            },
            Instr::Fmadd { width, rd, rs1, rs2, rs3 } => FpuStep::Fmadd {
                width,
                a: self.resolve_src(rs1),
                b: self.resolve_src(rs2),
                c: self.resolve_src(rs3),
                d: self.resolve_dst(rd),
            },
            Instr::FmvD { rd, rs } => {
                FpuStep::Fmv { a: self.resolve_src(rs), d: self.resolve_dst(rd) }
            }
            Instr::VfmacS { rd, rs1, rs2 } => FpuStep::Vfmac {
                a: self.resolve_src(rs1),
                b: self.resolve_src(rs2),
                acc: rd.index(),
                d: self.resolve_dst(rd),
            },
            Instr::VfsumS { rd, rs1 } => FpuStep::Vfsum {
                a: self.resolve_src(rs1),
                acc: rd.index(),
                d: self.resolve_dst(rd),
            },
            Instr::Fcvt { width, rd, rs } => FpuStep::Fcvt { width, rs, d: self.resolve_dst(rd) },
            _ => unreachable!("non-FPU instruction in a validated frep body"),
        }
    }

    /// Replays the pre-resolved frep body `reps` times without
    /// re-dispatching the sequencer state machine per iteration.
    ///
    /// Counter updates, timing and error attribution are exact with the
    /// generic loop: `executed` grows by the body length per repetition
    /// with the budget checked after each repetition (attributed to the
    /// frep's pc), and a faulting body instruction reports its own pc.
    fn run_frep_fast(
        &mut self,
        frep_pc: usize,
        n: usize,
        reps: u64,
        mut executed: u64,
    ) -> Result<u64, SimError> {
        if n > 0 && self.frep_precheck(reps) {
            return self.run_frep_turbo(frep_pc, n, reps, executed);
        }
        for _ in 0..reps {
            for i in 0..n {
                let step = self.plan[i];
                self.exec_step(step).map_err(|e| e.with_pc(frep_pc + 1 + i))?;
            }
            executed += n as u64;
            if executed > self.budget {
                return Err(SimError::exec_at(frep_pc, "instruction budget exhausted"));
            }
        }
        Ok(executed)
    }

    /// Proves upfront that `reps` repetitions of the resolved plan cannot
    /// fault: every stream popped by the plan has enough remaining
    /// elements, all of them 8-byte aligned inside TCDM
    /// ([`DataMover::can_stream_unchecked`]), and register-only steps are
    /// infallible by construction. A `false` answer merely keeps the
    /// per-pop checked loop.
    fn frep_precheck(&self, reps: u64) -> bool {
        let mut reads = [0u64; 3];
        let mut writes = [0u64; 3];
        for step in &self.plan {
            let mut src = |s: FpSrc| {
                if let FpSrc::Stream(dm) = s {
                    reads[dm as usize] += 1;
                }
            };
            let dst = match *step {
                FpuStep::Bin { a, b, d, .. } => {
                    src(a);
                    src(b);
                    d
                }
                FpuStep::Fmadd { a, b, c, d, .. } => {
                    src(a);
                    src(b);
                    src(c);
                    d
                }
                FpuStep::Fmv { a, d } => {
                    src(a);
                    d
                }
                FpuStep::Vfmac { a, b, d, .. } => {
                    src(a);
                    src(b);
                    d
                }
                FpuStep::Vfsum { a, d, .. } => {
                    src(a);
                    d
                }
                FpuStep::Fcvt { d, .. } => d,
            };
            if let FpDst::Stream(dm) = dst {
                writes[dm as usize] += 1;
            }
        }
        let lo = i64::from(TCDM_BASE);
        let hi = i64::from(TCDM_BASE) + TCDM_SIZE as i64;
        for dm in 0..3 {
            for (per_iter, direction) in
                [(reads[dm], SsrDirection::Read), (writes[dm], SsrDirection::Write)]
            {
                if per_iter == 0 {
                    continue;
                }
                let Some(needed) = per_iter.checked_mul(reps) else { return false };
                if !self.movers[dm].can_stream_unchecked(direction, needed, lo, hi) {
                    return false;
                }
            }
        }
        true
    }

    /// Replays a pre-validated plan with no per-pop checks: the precheck
    /// proved every stream access of every repetition succeeds, and the
    /// repetition at which the instruction budget faults (the generic
    /// loop checks it after each full repetition, so the faulting
    /// repetition itself still executes) is computed upfront — the inner
    /// loop is straight-line.
    ///
    /// Every per-step quantity that is a pure function of the plan —
    /// instruction, fmadd, flop, occupancy and stream pop counts — is
    /// summed once upfront and committed in bulk after the loop, so the
    /// per-element work is only the address generators, the arithmetic
    /// and the exact issue-time recurrence ([`Machine::exec_step_turbo`]).
    /// The bulk totals equal the per-step increments of the checked loop
    /// by construction, which the engine-equivalence suite pins down.
    fn run_frep_turbo(
        &mut self,
        frep_pc: usize,
        n: usize,
        reps: u64,
        mut executed: u64,
    ) -> Result<u64, SimError> {
        let remaining = self.budget.saturating_sub(executed);
        let full = remaining / n as u64;
        let faults = full < reps;
        let run = if faults { full + 1 } else { reps };
        // One static pass over the plan: per-iteration counter deltas.
        let mut fmadds = 0u64;
        let mut flops = 0u64;
        let mut occupancy = 0u64;
        let mut reads = [0u64; 3];
        let mut writes = [0u64; 3];
        for step in &self.plan {
            let mut src = |s: FpSrc| {
                if let FpSrc::Stream(dm) = s {
                    reads[dm as usize] += 1;
                }
            };
            let dst = match *step {
                FpuStep::Bin { op, a, b, d } => {
                    src(a);
                    src(b);
                    occupancy += if op == FpBinOp::FdivD { FDIV_OCCUPANCY } else { 1 };
                    flops += op.flops();
                    d
                }
                FpuStep::Fmadd { a, b, c, d, .. } => {
                    src(a);
                    src(b);
                    src(c);
                    fmadds += 1;
                    occupancy += 1;
                    flops += 2;
                    d
                }
                FpuStep::Fmv { a, d } => {
                    src(a);
                    occupancy += 1;
                    d
                }
                FpuStep::Vfmac { a, b, d, .. } => {
                    src(a);
                    src(b);
                    occupancy += 1;
                    flops += 4;
                    d
                }
                FpuStep::Vfsum { a, d, .. } => {
                    src(a);
                    occupancy += 1;
                    flops += 2;
                    d
                }
                FpuStep::Fcvt { d, .. } => {
                    occupancy += 1;
                    d
                }
            };
            if let FpDst::Stream(dm) = dst {
                writes[dm as usize] += 1;
            }
        }
        let plan = std::mem::take(&mut self.plan);
        let mut last_ready = 0u64;
        for _ in 0..run {
            for &step in &plan {
                last_ready = self.exec_step_turbo(step);
            }
        }
        self.plan = plan;
        // Bulk bookkeeping: identical totals to per-step accounting.
        let steps = run * n as u64;
        self.counters.instructions += steps;
        self.counters.fpu_instrs += steps;
        self.counters.frep_fpu_instrs += steps;
        self.counters.fmadd += run * fmadds;
        self.counters.flops += run * flops;
        self.counters.fpu_busy_cycles += run * occupancy;
        for dm in 0..3 {
            if reads[dm] > 0 {
                self.movers[dm].credit_pops(SsrDirection::Read, run * reads[dm]);
                self.counters.ssr_reads += run * reads[dm];
            }
            if writes[dm] > 0 {
                self.movers[dm].credit_pops(SsrDirection::Write, run * writes[dm]);
                self.counters.ssr_writes += run * writes[dm];
            }
        }
        // `ready` grows monotonically with the issue time, so the last
        // step's value is the maximum the per-step loop would have folded.
        self.max_completion = self.max_completion.max(self.int_time).max(last_ready);
        executed += steps;
        if faults {
            return Err(SimError::exec_at(frep_pc, "instruction budget exhausted"));
        }
        Ok(executed)
    }

    /// Pops the next element from a read stream.
    ///
    /// The SSR data path is 64 bits wide: 8-byte-aligned elements are
    /// fetched whole (f64 or two packed f32 lanes); a 4-byte-aligned
    /// element is fetched alone into the low lane (scalar f32 streaming
    /// with stride 4).
    fn stream_pop_read(&mut self, dm: usize) -> Result<u64, SimError> {
        let addr = self.movers[dm].next_addr(SsrDirection::Read).map_err(SimError::exec)?;
        self.counters.ssr_reads += 1;
        if addr % 8 == 0 {
            Ok(u64::from_le_bytes(self.read_bytes::<8>(addr)?))
        } else {
            Ok(u32::from_le_bytes(self.read_bytes::<4>(addr)?) as u64)
        }
    }

    /// Pushes a result element to a write stream (64-bit data path, same
    /// alignment rule as [`Machine::stream_pop_read`]).
    fn stream_push_write(&mut self, dm: usize, bits: u64) -> Result<(), SimError> {
        let addr = self.movers[dm].next_addr(SsrDirection::Write).map_err(SimError::exec)?;
        self.counters.ssr_writes += 1;
        if addr % 8 == 0 {
            self.write_bytes(addr, &bits.to_le_bytes())
        } else {
            self.write_bytes(addr, &(bits as u32).to_le_bytes())
        }
    }

    /// Reads an FP source operand, popping from its stream when streaming.
    /// Returns (bits, ready_time).
    fn read_fp_operand(&mut self, r: FpReg) -> Result<(u64, u64), SimError> {
        if self.ssr_enabled && r.is_ssr() {
            let dm = r.index() as usize;
            if self.movers[dm].is_active()
                && self.movers[dm].direction() == Some(SsrDirection::Read)
            {
                return Ok((self.stream_pop_read(dm)?, 0));
            }
        }
        Ok((self.f[r.index() as usize], self.fp_ready[r.index() as usize]))
    }

    /// Writes an FP destination, pushing to its stream when streaming.
    fn write_fp_result(&mut self, r: FpReg, bits: u64, ready: u64) -> Result<(), SimError> {
        if self.ssr_enabled && r.is_ssr() {
            let dm = r.index() as usize;
            if self.movers[dm].is_active()
                && self.movers[dm].direction() == Some(SsrDirection::Write)
            {
                self.stream_push_write(dm, bits)?;
                self.max_completion = self.max_completion.max(ready);
                return Ok(());
            }
        }
        self.f[r.index() as usize] = bits;
        self.fp_ready[r.index() as usize] = ready;
        self.max_completion = self.max_completion.max(ready);
        Ok(())
    }

    /// Reads a pre-resolved source (no per-iteration classification).
    fn read_step_src(&mut self, s: FpSrc) -> Result<(u64, u64), SimError> {
        match s {
            FpSrc::Stream(dm) => Ok((self.stream_pop_read(dm as usize)?, 0)),
            FpSrc::Reg(r) => Ok((self.f[r as usize], self.fp_ready[r as usize])),
        }
    }

    /// Writes a pre-resolved destination.
    fn write_step_dst(&mut self, d: FpDst, bits: u64, ready: u64) -> Result<(), SimError> {
        match d {
            FpDst::Stream(dm) => self.stream_push_write(dm as usize, bits)?,
            FpDst::Reg(r) => {
                self.f[r as usize] = bits;
                self.fp_ready[r as usize] = ready;
            }
        }
        self.max_completion = self.max_completion.max(ready);
        Ok(())
    }

    /// [`Machine::stream_pop_read`] for a pop pre-validated by
    /// [`Machine::frep_precheck`]: the address is known 8-byte aligned
    /// and inside TCDM, so the alignment branch and bounds checks drop
    /// out of the hot loop; the pop-count bookkeeping is credited in
    /// bulk by [`Machine::run_frep_turbo`].
    #[inline]
    fn stream_pop_read_turbo(&mut self, dm: usize) -> u64 {
        let addr = self.movers[dm].pop_turbo();
        let i = (addr - TCDM_BASE) as usize;
        u64::from_le_bytes(self.mem[i..i + 8].try_into().expect("8-byte TCDM read"))
    }

    /// [`Machine::stream_push_write`] for a pre-validated push.
    #[inline]
    fn stream_push_write_turbo(&mut self, dm: usize, bits: u64) {
        let addr = self.movers[dm].pop_turbo();
        let i = (addr - TCDM_BASE) as usize;
        self.mem[i..i + 8].copy_from_slice(&bits.to_le_bytes());
    }

    /// Executes one pre-resolved FPU step of an frep body, turbo
    /// variant: only entered after [`Machine::frep_precheck`] proved no
    /// stream access of the whole run can fault, so the per-pop checks
    /// are gone and the step is infallible. Counter updates and the
    /// `max_completion` fold are *not* performed here — they are pure
    /// functions of the plan and the repetition count, committed in bulk
    /// by [`Machine::run_frep_turbo`]. Returns this step's completion
    /// time (monotonic across a turbo run). The issue-time recurrence
    /// and arithmetic are bit-identical to [`Machine::exec_step`].
    #[inline]
    fn exec_step_turbo(&mut self, step: FpuStep) -> u64 {
        let read = |m: &mut Machine, s: FpSrc| -> (u64, u64) {
            match s {
                FpSrc::Stream(dm) => (m.stream_pop_read_turbo(dm as usize), 0),
                FpSrc::Reg(r) => (m.f[r as usize], m.fp_ready[r as usize]),
            }
        };
        let (dst, bits, operands_ready, occupancy) = match step {
            FpuStep::Bin { op, a, b, d } => {
                let (av, t1) = read(self, a);
                let (bv, t2) = read(self, b);
                let occ = if op == FpBinOp::FdivD { FDIV_OCCUPANCY } else { 1 };
                (d, eval_fp_bin(op, av, bv), t1.max(t2), occ)
            }
            FpuStep::Fmadd { width, a, b, c, d } => {
                let (av, t1) = read(self, a);
                let (bv, t2) = read(self, b);
                let (cv, t3) = read(self, c);
                let bits = match width {
                    FpWidth::Double => f64::to_bits(
                        f64::from_bits(av).mul_add(f64::from_bits(bv), f64::from_bits(cv)),
                    ),
                    FpWidth::Single => f32::to_bits(
                        f32::from_bits(av as u32)
                            .mul_add(f32::from_bits(bv as u32), f32::from_bits(cv as u32)),
                    ) as u64,
                };
                (d, bits, t1.max(t2).max(t3), 1)
            }
            FpuStep::Fmv { a, d } => {
                let (av, t1) = read(self, a);
                (d, av, t1, 1)
            }
            FpuStep::Vfmac { a, b, acc, d } => {
                let (av, t1) = read(self, a);
                let (bv, t2) = read(self, b);
                let accv = self.f[acc as usize];
                let t3 = self.fp_ready[acc as usize];
                let lo = f32::from_bits(av as u32)
                    .mul_add(f32::from_bits(bv as u32), f32::from_bits(accv as u32));
                let hi = f32::from_bits((av >> 32) as u32).mul_add(
                    f32::from_bits((bv >> 32) as u32),
                    f32::from_bits((accv >> 32) as u32),
                );
                let bits = (lo.to_bits() as u64) | ((hi.to_bits() as u64) << 32);
                (d, bits, t1.max(t2).max(t3), 1)
            }
            FpuStep::Vfsum { a, acc, d } => {
                let (av, t1) = read(self, a);
                let accv = self.f[acc as usize];
                let t2 = self.fp_ready[acc as usize];
                let sum = f32::from_bits(accv as u32)
                    + f32::from_bits(av as u32)
                    + f32::from_bits((av >> 32) as u32);
                let bits = (accv & 0xFFFF_FFFF_0000_0000) | sum.to_bits() as u64;
                (d, bits, t1.max(t2), 1)
            }
            FpuStep::Fcvt { width, rs, d } => {
                let t1 = self.int_ready[rs.index() as usize];
                let v = self.x(rs) as i32;
                let bits = match width {
                    FpWidth::Double => (v as f64).to_bits(),
                    FpWidth::Single => (v as f32).to_bits() as u64 | 0xFFFF_FFFF_0000_0000,
                };
                (d, bits, t1, 1)
            }
        };
        let issue = self.fpu_time.max(operands_ready);
        self.fpu_time = issue + occupancy;
        let ready = issue + u64::from(FPU_PIPELINE_DEPTH);
        match dst {
            FpDst::Stream(dm) => self.stream_push_write_turbo(dm as usize, bits),
            FpDst::Reg(r) => {
                self.f[r as usize] = bits;
                self.fp_ready[r as usize] = ready;
            }
        }
        ready
    }

    /// Executes one pre-resolved FPU step of an frep body.
    ///
    /// Mirrors [`Machine::exec_straight`] → [`Machine::exec_fpu`] with
    /// `in_frep = true` and tracing off: the counter-update order, timing
    /// math and fault points are identical, which the engine-equivalence
    /// equivalence tests pin down.
    #[inline]
    fn exec_step(&mut self, step: FpuStep) -> Result<(), SimError> {
        let read =
            |m: &mut Machine, s: FpSrc| -> Result<(u64, u64), SimError> { m.read_step_src(s) };
        self.counters.instructions += 1;
        let (dst, bits, operands_ready, occupancy, flops) = match step {
            FpuStep::Bin { op, a, b, d } => {
                let (av, t1) = read(self, a)?;
                let (bv, t2) = read(self, b)?;
                let occ = if op == FpBinOp::FdivD { FDIV_OCCUPANCY } else { 1 };
                (d, eval_fp_bin(op, av, bv), t1.max(t2), occ, op.flops())
            }
            FpuStep::Fmadd { width, a, b, c, d } => {
                let (av, t1) = read(self, a)?;
                let (bv, t2) = read(self, b)?;
                let (cv, t3) = read(self, c)?;
                let bits = match width {
                    FpWidth::Double => f64::to_bits(
                        f64::from_bits(av).mul_add(f64::from_bits(bv), f64::from_bits(cv)),
                    ),
                    FpWidth::Single => f32::to_bits(
                        f32::from_bits(av as u32)
                            .mul_add(f32::from_bits(bv as u32), f32::from_bits(cv as u32)),
                    ) as u64,
                };
                self.counters.fmadd += 1;
                (d, bits, t1.max(t2).max(t3), 1, 2)
            }
            FpuStep::Fmv { a, d } => {
                let (av, t1) = read(self, a)?;
                (d, av, t1, 1, 0)
            }
            FpuStep::Vfmac { a, b, acc, d } => {
                let (av, t1) = read(self, a)?;
                let (bv, t2) = read(self, b)?;
                let accv = self.f[acc as usize];
                let t3 = self.fp_ready[acc as usize];
                let lo = f32::from_bits(av as u32)
                    .mul_add(f32::from_bits(bv as u32), f32::from_bits(accv as u32));
                let hi = f32::from_bits((av >> 32) as u32).mul_add(
                    f32::from_bits((bv >> 32) as u32),
                    f32::from_bits((accv >> 32) as u32),
                );
                let bits = (lo.to_bits() as u64) | ((hi.to_bits() as u64) << 32);
                (d, bits, t1.max(t2).max(t3), 1, 4)
            }
            FpuStep::Vfsum { a, acc, d } => {
                let (av, t1) = read(self, a)?;
                let accv = self.f[acc as usize];
                let t2 = self.fp_ready[acc as usize];
                let sum = f32::from_bits(accv as u32)
                    + f32::from_bits(av as u32)
                    + f32::from_bits((av >> 32) as u32);
                let bits = (accv & 0xFFFF_FFFF_0000_0000) | sum.to_bits() as u64;
                (d, bits, t1.max(t2), 1, 2)
            }
            FpuStep::Fcvt { width, rs, d } => {
                let t1 = self.int_ready[rs.index() as usize];
                let v = self.x(rs) as i32;
                let bits = match width {
                    FpWidth::Double => (v as f64).to_bits(),
                    FpWidth::Single => (v as f32).to_bits() as u64 | 0xFFFF_FFFF_0000_0000,
                };
                (d, bits, t1, 1, 0)
            }
        };
        // The sequencer replays without integer-core dispatch.
        let issue = self.fpu_time.max(operands_ready);
        self.fpu_time = issue + occupancy;
        self.counters.fpu_busy_cycles += occupancy;
        self.counters.flops += flops;
        self.counters.fpu_instrs += 1;
        self.counters.frep_fpu_instrs += 1;
        let ready = issue + u64::from(FPU_PIPELINE_DEPTH);
        self.write_step_dst(dst, bits, ready)?;
        self.max_completion = self.max_completion.max(self.int_time);
        Ok(())
    }

    /// Executes one non-control-flow instruction, updating state, timing
    /// and counters. `in_frep` suppresses the integer-core dispatch cost.
    fn exec_straight(&mut self, instr: Instr, in_frep: bool, pc: usize) -> Result<(), SimError> {
        self.counters.instructions += 1;
        if instr.is_fpu() {
            self.exec_fpu(instr, in_frep, pc)?;
            self.max_completion = self.max_completion.max(self.int_time);
            return Ok(());
        }
        let int_before = self.int_time;
        match instr {
            Instr::Li { rd, imm } => {
                let t = self.int_time;
                self.int_time = t + 1;
                self.set_x(rd, imm as u32);
                self.int_ready[rd.index() as usize] = t + 1;
            }
            Instr::Mv { rd, rs } => {
                let t = self.int_time.max(self.int_ready[rs.index() as usize]);
                self.int_time = t + 1;
                self.set_x(rd, self.x(rs));
                self.int_ready[rd.index() as usize] = t + 1;
            }
            Instr::IntOp { op, rd, rs1, rs2 } => {
                let t = self
                    .int_time
                    .max(self.int_ready[rs1.index() as usize])
                    .max(self.int_ready[rs2.index() as usize]);
                self.int_time = t + 1;
                let a = self.x(rs1);
                let b = self.x(rs2);
                let (value, latency) = match op {
                    IntOp::Add => (a.wrapping_add(b), 1),
                    IntOp::Sub => (a.wrapping_sub(b), 1),
                    IntOp::Mul => (a.wrapping_mul(b), MUL_LATENCY),
                };
                self.set_x(rd, value);
                self.int_ready[rd.index() as usize] = t + latency;
            }
            Instr::IntImm { op, rd, rs1, imm } => {
                let t = self.int_time.max(self.int_ready[rs1.index() as usize]);
                self.int_time = t + 1;
                let a = self.x(rs1);
                let value = match op {
                    IntImmOp::Addi => a.wrapping_add(imm as u32),
                    IntImmOp::Slli => a.wrapping_shl(imm as u32),
                };
                self.set_x(rd, value);
                self.int_ready[rd.index() as usize] = t + 1;
            }
            Instr::Lw { rd, base, imm } => {
                let t = self.int_time.max(self.int_ready[base.index() as usize]);
                self.int_time = t + 1;
                let addr = self.x(base).wrapping_add(imm as u32);
                let value = u32::from_le_bytes(self.read_bytes::<4>(addr)?);
                self.set_x(rd, value);
                self.int_ready[rd.index() as usize] = t + LOAD_LATENCY;
                self.counters.int_loads += 1;
            }
            Instr::Sw { rs2, base, imm } => {
                let t = self
                    .int_time
                    .max(self.int_ready[base.index() as usize])
                    .max(self.int_ready[rs2.index() as usize]);
                self.int_time = t + 1;
                let addr = self.x(base).wrapping_add(imm as u32);
                self.write_bytes(addr, &self.x(rs2).to_le_bytes())?;
                self.counters.int_stores += 1;
            }
            Instr::FpLoad { width, rd, base, imm } => {
                let t = self.int_time.max(self.int_ready[base.index() as usize]);
                self.int_time = t + 1;
                let addr = self.x(base).wrapping_add(imm as u32);
                let bits = match width {
                    FpWidth::Double => u64::from_le_bytes(self.read_bytes::<8>(addr)?),
                    FpWidth::Single => {
                        u32::from_le_bytes(self.read_bytes::<4>(addr)?) as u64
                            | 0xFFFF_FFFF_0000_0000
                    }
                };
                self.f[rd.index() as usize] = bits;
                self.fp_ready[rd.index() as usize] = t + LOAD_LATENCY;
                self.counters.fp_loads += 1;
            }
            Instr::FpStore { width, rs2, base, imm } => {
                let t = self
                    .int_time
                    .max(self.int_ready[base.index() as usize])
                    .max(self.fp_ready[rs2.index() as usize]);
                self.int_time = t + 1;
                let addr = self.x(base).wrapping_add(imm as u32);
                let bits = self.f[rs2.index() as usize];
                match width {
                    FpWidth::Double => self.write_bytes(addr, &bits.to_le_bytes())?,
                    FpWidth::Single => self.write_bytes(addr, &(bits as u32).to_le_bytes())?,
                }
                self.counters.fp_stores += 1;
            }
            Instr::Csrrsi { csr, imm } => {
                self.int_time += 1;
                if csr == CSR_SSR && imm & 1 == 1 {
                    self.ssr_enabled = true;
                }
            }
            Instr::Csrrci { csr, imm } => {
                self.int_time += 1;
                if csr == CSR_SSR && imm & 1 == 1 {
                    self.ssr_enabled = false;
                }
            }
            Instr::Csrr { rd, csr } => match csr {
                mlb_isa::CSR_MHARTID => {
                    let t = self.int_time;
                    self.int_time = t + 1;
                    self.set_x(rd, self.hart_id);
                    self.int_ready[rd.index() as usize] = t + 1;
                }
                mlb_isa::CSR_BARRIER => {
                    // The core cannot pass the barrier before all of its
                    // own outstanding work has completed; the cross-core
                    // wait is reconstructed by the cluster afterwards.
                    let arrival = (self.int_time + 1).max(self.fpu_time).max(self.max_completion);
                    self.int_time = arrival;
                    self.fpu_time = arrival;
                    self.barrier_arrivals.push(arrival);
                }
                other => {
                    return Err(SimError::exec(format!("unsupported CSR read {other:#x}")));
                }
            },
            Instr::Scfgwi { rs1, imm } => {
                let t = self.int_time.max(self.int_ready[rs1.index() as usize]);
                self.int_time = t + 1;
                let (reg, dm) = SsrCfgReg::from_scfg_imm(imm)
                    .ok_or_else(|| SimError::exec(format!("invalid scfgwi immediate {imm}")))?;
                let value = self.x(rs1);
                self.movers[dm.index() as usize].configure(reg, value);
                self.counters.scfgwi += 1;
            }
            Instr::FpBin { .. }
            | Instr::Fmadd { .. }
            | Instr::FmvD { .. }
            | Instr::VfmacS { .. }
            | Instr::VfsumS { .. }
            | Instr::Fcvt { .. } => unreachable!("FPU instructions handled by exec_fpu"),
            Instr::Ret | Instr::J { .. } | Instr::Branch { .. } | Instr::FrepO { .. } => {
                unreachable!("control flow handled by the driver loop")
            }
        }
        if self.trace.is_some() {
            // Every integer-core arm advances `int_time` by exactly one
            // cycle past its issue time.
            let issue = self.int_time - 1;
            let stall_cycles = issue - int_before;
            let stall = if stall_cycles == 0 {
                StallReason::None
            } else if matches!(instr, Instr::FpStore { .. }) {
                // Approximation: an FP store's wait is attributed to the
                // stored value (the common case), not the base address.
                StallReason::RawFp
            } else {
                StallReason::RawInt
            };
            self.record(TraceEntry {
                pc,
                instr,
                in_frep: false,
                issue,
                complete: self.int_time,
                stall,
                stall_cycles,
            });
        }
        self.max_completion = self.max_completion.max(self.int_time);
        Ok(())
    }

    fn exec_fpu(&mut self, instr: Instr, in_frep: bool, pc: usize) -> Result<(), SimError> {
        // Dispatch: the integer core spends a cycle feeding the FPU unless
        // the sequencer replays the instruction inside an frep.
        let dispatch = if in_frep {
            0
        } else {
            let t = self.int_time;
            self.int_time = t + 1;
            t
        };
        let (result_reg, bits, operands_ready, occupancy, flops) = match instr {
            Instr::FpBin { op, rd, rs1, rs2 } => {
                let (a, t1) = self.read_fp_operand(rs1)?;
                let (b, t2) = self.read_fp_operand(rs2)?;
                let bits = eval_fp_bin(op, a, b);
                let occ = if op == FpBinOp::FdivD { FDIV_OCCUPANCY } else { 1 };
                (rd, bits, t1.max(t2), occ, op.flops())
            }
            Instr::Fmadd { width, rd, rs1, rs2, rs3 } => {
                let (a, t1) = self.read_fp_operand(rs1)?;
                let (b, t2) = self.read_fp_operand(rs2)?;
                let (c, t3) = self.read_fp_operand(rs3)?;
                let bits = match width {
                    FpWidth::Double => f64::to_bits(
                        f64::from_bits(a).mul_add(f64::from_bits(b), f64::from_bits(c)),
                    ),
                    FpWidth::Single => f32::to_bits(
                        f32::from_bits(a as u32)
                            .mul_add(f32::from_bits(b as u32), f32::from_bits(c as u32)),
                    ) as u64,
                };
                self.counters.fmadd += 1;
                (rd, bits, t1.max(t2).max(t3), 1, 2)
            }
            Instr::FmvD { rd, rs } => {
                let (a, t1) = self.read_fp_operand(rs)?;
                (rd, a, t1, 1, 0)
            }
            Instr::VfmacS { rd, rs1, rs2 } => {
                let (a, t1) = self.read_fp_operand(rs1)?;
                let (b, t2) = self.read_fp_operand(rs2)?;
                // The accumulator is read as a plain register (it is the
                // destination; stream destinations cannot accumulate).
                let acc = self.f[rd.index() as usize];
                let t3 = self.fp_ready[rd.index() as usize];
                let lo = f32::from_bits(a as u32)
                    .mul_add(f32::from_bits(b as u32), f32::from_bits(acc as u32));
                let hi = f32::from_bits((a >> 32) as u32)
                    .mul_add(f32::from_bits((b >> 32) as u32), f32::from_bits((acc >> 32) as u32));
                let bits = (lo.to_bits() as u64) | ((hi.to_bits() as u64) << 32);
                (rd, bits, t1.max(t2).max(t3), 1, 4)
            }
            Instr::VfsumS { rd, rs1 } => {
                let (a, t1) = self.read_fp_operand(rs1)?;
                let acc = self.f[rd.index() as usize];
                let t2 = self.fp_ready[rd.index() as usize];
                let sum = f32::from_bits(acc as u32)
                    + f32::from_bits(a as u32)
                    + f32::from_bits((a >> 32) as u32);
                let bits = (acc & 0xFFFF_FFFF_0000_0000) | sum.to_bits() as u64;
                (rd, bits, t1.max(t2), 1, 2)
            }
            Instr::Fcvt { width, rd, rs } => {
                let t1 = self.int_ready[rs.index() as usize];
                let v = self.x(rs) as i32;
                let bits = match width {
                    FpWidth::Double => (v as f64).to_bits(),
                    FpWidth::Single => (v as f32).to_bits() as u64 | 0xFFFF_FFFF_0000_0000,
                };
                (rd, bits, t1, 1, 0)
            }
            _ => unreachable!("non-FPU instruction in exec_fpu"),
        };
        let fpu_before = self.fpu_time;
        let issue = self.fpu_time.max(dispatch).max(operands_ready);
        self.fpu_time = issue + occupancy;
        self.counters.fpu_busy_cycles += occupancy;
        self.counters.flops += flops;
        self.counters.fpu_instrs += 1;
        if in_frep {
            self.counters.frep_fpu_instrs += 1;
        }
        let ready = issue + u64::from(FPU_PIPELINE_DEPTH);
        if self.trace.is_some() {
            // Ideal issue: the sequencer replays back-to-back inside an
            // frep; a dispatched instruction ideally issues the cycle the
            // integer core hands it over.
            let ideal = if in_frep { fpu_before } else { dispatch };
            let stall_cycles = issue - ideal;
            let stall = if stall_cycles == 0 {
                StallReason::None
            } else if operands_ready >= fpu_before.max(dispatch) {
                StallReason::RawFp
            } else {
                StallReason::FpuBusy
            };
            self.record(TraceEntry {
                pc,
                instr,
                in_frep,
                issue,
                complete: self.fpu_time.max(ready),
                stall,
                stall_cycles,
            });
        }
        self.write_fp_result(result_reg, bits, ready)?;
        Ok(())
    }
}

fn eval_fp_bin(op: FpBinOp, a: u64, b: u64) -> u64 {
    let d = |x: u64| f64::from_bits(x);
    let s = |x: u64| f32::from_bits(x as u32);
    let lane1 = |x: u64| f32::from_bits((x >> 32) as u32);
    let pack = |lo: f32, hi: f32| (lo.to_bits() as u64) | ((hi.to_bits() as u64) << 32);
    let scalar_s = |v: f32| v.to_bits() as u64 | 0xFFFF_FFFF_0000_0000;
    match op {
        FpBinOp::FaddD => (d(a) + d(b)).to_bits(),
        FpBinOp::FsubD => (d(a) - d(b)).to_bits(),
        FpBinOp::FmulD => (d(a) * d(b)).to_bits(),
        FpBinOp::FdivD => (d(a) / d(b)).to_bits(),
        FpBinOp::FmaxD => d(a).max(d(b)).to_bits(),
        FpBinOp::FaddS => scalar_s(s(a) + s(b)),
        FpBinOp::FsubS => scalar_s(s(a) - s(b)),
        FpBinOp::FmulS => scalar_s(s(a) * s(b)),
        FpBinOp::FmaxS => scalar_s(s(a).max(s(b))),
        FpBinOp::VfaddS => pack(s(a) + s(b), lane1(a) + lane1(b)),
        FpBinOp::VfmulS => pack(s(a) * s(b), lane1(a) * lane1(b)),
        FpBinOp::VfmaxS => pack(s(a).max(s(b)), lane1(a).max(lane1(b))),
        FpBinOp::VfcpkaSS => pack(s(a), s(b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run(
        src: &str,
        entry: &str,
        args: &[u32],
        setup: impl FnOnce(&mut Machine),
    ) -> (Machine, PerfCounters) {
        let prog = assemble(src).unwrap();
        let mut m = Machine::new();
        setup(&mut m);
        let c = m.call(&prog, entry, args).unwrap();
        (m, c)
    }

    #[test]
    fn integer_arithmetic_works() {
        let src = "\
f:
    li t0, 6
    li t1, 7
    mul t2, t0, t1
    addi t2, t2, 8
    slli t2, t2, 1
    sub t2, t2, t0
    ret
";
        let (m, c) = run(src, "f", &[], |_| {});
        assert_eq!(m.x(IntReg::t(2)), (6 * 7 + 8) * 2 - 6);
        assert!(c.cycles >= 6);
    }

    #[test]
    fn fp_scalar_pipeline() {
        let src = "\
f:
    fld ft0, (a0)
    fld ft1, 8(a0)
    fmul.d ft2, ft0, ft1
    fadd.d ft3, ft2, ft0
    fsd ft3, 16(a0)
    ret
";
        let (m, c) = run(src, "f", &[TCDM_BASE], |m| {
            m.write_f64_slice(TCDM_BASE, &[3.0, 4.0, 0.0]).unwrap();
        });
        assert_eq!(m.read_f64_slice(TCDM_BASE + 16, 1).unwrap(), vec![15.0]);
        assert_eq!(c.fp_loads, 2);
        assert_eq!(c.fp_stores, 1);
        assert_eq!(c.flops, 2);
        // The dependent chain pays the FPU latency twice.
        assert!(c.cycles >= 8, "cycles = {}", c.cycles);
    }

    #[test]
    fn loop_sums_memory() {
        // Sum 8 doubles the scalar way.
        let src = "\
sum:
    li t0, 0
    li t1, 8
    fld ft1, (a0)
    fsub.d ft0, ft1, ft1
loop:
    fld ft1, (a0)
    fadd.d ft0, ft0, ft1
    addi a0, a0, 8
    addi t0, t0, 1
    blt t0, t1, loop
    fsd ft0, (a1)
    ret
";
        let data: Vec<f64> = (1..=8).map(f64::from).collect();
        let out = TCDM_BASE + 1024;
        let (m, c) = run(src, "sum", &[TCDM_BASE, out], |m| {
            m.write_f64_slice(TCDM_BASE, &data).unwrap();
        });
        assert_eq!(m.read_f64_slice(out, 1).unwrap(), vec![36.0]);
        assert_eq!(c.fp_loads, 9);
        assert_eq!(c.taken_branches, 7);
    }

    #[test]
    fn frep_repeats_fpu_instructions() {
        let src = "\
f:
    li t0, 9
    fld ft3, (a0)
    fld ft4, 8(a0)
    frep.o t0, 1, 0, 0
    fadd.d ft3, ft3, ft4
    fsd ft3, 16(a0)
    ret
";
        let (m, c) = run(src, "f", &[TCDM_BASE], |m| {
            m.write_f64_slice(TCDM_BASE, &[0.0, 2.0, 0.0]).unwrap();
        });
        // 10 iterations of ft3 += 2.0.
        assert_eq!(m.read_f64_slice(TCDM_BASE + 16, 1).unwrap(), vec![20.0]);
        assert_eq!(c.frep, 1);
        assert_eq!(c.flops, 10);
    }

    #[test]
    fn frep_rejects_integer_body() {
        let src = "\
f:
    li t0, 1
    frep.o t0, 1, 0, 0
    addi t1, t1, 1
    ret
";
        let prog = assemble(src).unwrap();
        let mut m = Machine::new();
        let err = m.call(&prog, "f", &[]).unwrap_err();
        assert!(err.to_string().contains("non-FPU"), "{err}");
    }

    #[test]
    fn ssr_streams_feed_fpu() {
        // z[i] = x[i] + y[i] over 4 doubles, with both reads and the
        // write all streamed; the body is a single frep'd fadd.
        let x = TCDM_BASE;
        let y = TCDM_BASE + 64;
        let z = TCDM_BASE + 128;
        let src = format!(
            "\
vecadd:
    li t1, 3
    scfgwi t1, {b0_dm0}     # bound dim0, dm0
    scfgwi t1, {b0_dm1}
    scfgwi t1, {b0_dm2}
    li t1, 8
    scfgwi t1, {s0_dm0}     # stride dim0
    scfgwi t1, {s0_dm1}
    scfgwi t1, {s0_dm2}
    li t1, {x}
    scfgwi t1, {rptr_dm0}
    li t1, {y}
    scfgwi t1, {rptr_dm1}
    li t1, {z}
    scfgwi t1, {wptr_dm2}
    csrrsi zero, 0x7c0, 1
    li t0, 3
    frep.o t0, 1, 0, 0
    fadd.d ft2, ft0, ft1
    csrrci zero, 0x7c0, 1
    ret
",
            b0_dm0 = SsrCfgReg::Bound(0).scfg_imm(mlb_isa::SsrDataMover::new(0)),
            b0_dm1 = SsrCfgReg::Bound(0).scfg_imm(mlb_isa::SsrDataMover::new(1)),
            b0_dm2 = SsrCfgReg::Bound(0).scfg_imm(mlb_isa::SsrDataMover::new(2)),
            s0_dm0 = SsrCfgReg::Stride(0).scfg_imm(mlb_isa::SsrDataMover::new(0)),
            s0_dm1 = SsrCfgReg::Stride(0).scfg_imm(mlb_isa::SsrDataMover::new(1)),
            s0_dm2 = SsrCfgReg::Stride(0).scfg_imm(mlb_isa::SsrDataMover::new(2)),
            rptr_dm0 = SsrCfgReg::RPtr(0).scfg_imm(mlb_isa::SsrDataMover::new(0)),
            rptr_dm1 = SsrCfgReg::RPtr(0).scfg_imm(mlb_isa::SsrDataMover::new(1)),
            wptr_dm2 = SsrCfgReg::WPtr(0).scfg_imm(mlb_isa::SsrDataMover::new(2)),
            x = x,
            y = y,
            z = z,
        );
        let (m, c) = run(&src, "vecadd", &[], |m| {
            m.write_f64_slice(x, &[1.0, 2.0, 3.0, 4.0]).unwrap();
            m.write_f64_slice(y, &[10.0, 20.0, 30.0, 40.0]).unwrap();
        });
        assert_eq!(m.read_f64_slice(z, 4).unwrap(), vec![11.0, 22.0, 33.0, 44.0]);
        assert_eq!(c.ssr_reads, 8);
        assert_eq!(c.ssr_writes, 4);
        assert_eq!(c.fp_loads, 0);
        assert_eq!(c.fp_stores, 0);
        assert_eq!(c.flops, 4);
    }

    #[test]
    fn ssr_overread_is_an_error() {
        let src = format!(
            "\
f:
    li t1, 0
    scfgwi t1, {b0}
    li t1, 8
    scfgwi t1, {s0}
    li t1, {base}
    scfgwi t1, {rptr}
    csrrsi zero, 0x7c0, 1
    fadd.d ft3, ft0, ft0
    ret
",
            b0 = SsrCfgReg::Bound(0).scfg_imm(mlb_isa::SsrDataMover::new(0)),
            s0 = SsrCfgReg::Stride(0).scfg_imm(mlb_isa::SsrDataMover::new(0)),
            rptr = SsrCfgReg::RPtr(0).scfg_imm(mlb_isa::SsrDataMover::new(0)),
            base = TCDM_BASE,
        );
        // A 1-element stream read twice by one fadd: second pop must fail.
        let prog = assemble(&src).unwrap();
        let mut m = Machine::new();
        let err = m.call(&prog, "f", &[]).unwrap_err();
        assert!(err.to_string().contains("beyond the end"), "{err}");
    }

    #[test]
    fn packed_simd_semantics() {
        let src = "\
f:
    fld ft3, (a0)
    fld ft4, 8(a0)
    vfadd.s ft5, ft3, ft4
    fsd ft5, 16(a0)
    vfmac.s ft6, ft3, ft4
    vfsum.s ft7, ft6
    fsd ft7, 24(a0)
    ret
";
        let (m, _c) = run(src, "f", &[TCDM_BASE], |m| {
            m.write_f32_slice(TCDM_BASE, &[1.0, 2.0, 10.0, 20.0]).unwrap();
            // Zero the accumulators' storage.
            m.write_f64_slice(TCDM_BASE + 16, &[0.0, 0.0]).unwrap();
        });
        assert_eq!(m.read_f32_slice(TCDM_BASE + 16, 2).unwrap(), vec![11.0, 22.0]);
        // vfmac into zeroed ft6: lanes = [10, 40]; vfsum into zeroed ft7:
        // lane0 = 50.
        assert_eq!(m.read_f32_slice(TCDM_BASE + 24, 1).unwrap(), vec![50.0]);
    }

    #[test]
    fn out_of_bounds_memory_faults() {
        let src = "\
f:
    lw t0, (a0)
    ret
";
        let prog = assemble(src).unwrap();
        let mut m = Machine::new();
        let err = m.call(&prog, "f", &[0x100]).unwrap_err();
        assert!(err.to_string().contains("TCDM"), "{err}");
    }

    #[test]
    fn sub_tcdm_base_access_is_a_typed_fault() {
        let src = "\
f:
    lw t0, (a0)
    ret
";
        let prog = assemble(src).unwrap();
        let mut m = Machine::new();
        let err = m.call(&prog, "f", &[TCDM_BASE - 4]).unwrap_err();
        assert_eq!(err, SimError::OutsideTcdm { pc: Some(0), addr: TCDM_BASE - 4, size: 4 });
        assert!(err.to_string().contains("outside TCDM"), "{err}");
        // Harness-level accesses carry no instruction attribution.
        let err = m.read_u32(TCDM_BASE - 4).unwrap_err();
        assert_eq!(err, SimError::OutsideTcdm { pc: None, addr: TCDM_BASE - 4, size: 4 });
    }

    #[test]
    fn misaligned_access_is_a_typed_fault() {
        let src = "\
f:
    fld ft0, 4(a0)
    ret
";
        let prog = assemble(src).unwrap();
        let mut m = Machine::new();
        let err = m.call(&prog, "f", &[TCDM_BASE]).unwrap_err();
        assert_eq!(err, SimError::Misaligned { pc: Some(0), addr: TCDM_BASE + 4, size: 8 });
        assert!(err.to_string().contains("misaligned 8-byte access"), "{err}");
    }

    #[test]
    fn hartid_reads_the_configured_core_index() {
        let src = "\
f:
    csrr t0, mhartid
    ret
";
        let prog = assemble(src).unwrap();
        let mut m = Machine::new();
        m.call(&prog, "f", &[]).unwrap();
        assert_eq!(m.x(IntReg::t(0)), 0);
        m.set_hart_id(3);
        m.call(&prog, "f", &[]).unwrap();
        assert_eq!(m.x(IntReg::t(0)), 3);
    }

    #[test]
    fn barrier_records_local_arrival_times() {
        let src = "\
f:
    csrr zero, 0x7c2
    li t0, 1
    li t1, 2
    csrr zero, 0x7c2
    ret
";
        let prog = assemble(src).unwrap();
        let mut m = Machine::new();
        m.call(&prog, "f", &[]).unwrap();
        let arrivals = m.barrier_arrivals().to_vec();
        assert_eq!(arrivals.len(), 2);
        assert!(arrivals[0] < arrivals[1], "{arrivals:?}");
        // A fresh call restarts the record.
        m.call(&prog, "f", &[]).unwrap();
        assert_eq!(m.barrier_arrivals(), &arrivals[..]);
    }

    #[test]
    fn unknown_csr_read_is_an_error() {
        let src = "\
f:
    csrr t0, 0xb00
    ret
";
        let prog = assemble(src).unwrap();
        let mut m = Machine::new();
        let err = m.call(&prog, "f", &[]).unwrap_err();
        assert!(err.to_string().contains("unsupported CSR"), "{err}");
    }

    #[test]
    fn budget_guards_infinite_loops() {
        let src = "\
f:
    j f
";
        let prog = assemble(src).unwrap();
        let mut m = Machine::new();
        m.set_instruction_budget(1000);
        let err = m.call(&prog, "f", &[]).unwrap_err();
        assert!(err.to_string().contains("budget"), "{err}");
    }

    #[test]
    fn trace_accounts_for_every_cycle_and_instruction() {
        let src = "\
f:
    fld ft0, (a0)
    fld ft1, 8(a0)
    fmul.d ft2, ft0, ft1
    fadd.d ft3, ft2, ft0
    fsd ft3, 16(a0)
    ret
";
        let prog = assemble(src).unwrap();
        let mut m = Machine::new();
        m.enable_trace();
        m.write_f64_slice(TCDM_BASE, &[3.0, 4.0, 0.0]).unwrap();
        let c = m.call(&prog, "f", &[TCDM_BASE]).unwrap();
        let trace = m.trace().unwrap();
        assert_eq!(trace.len() as u64, c.instructions);
        let derived = trace.iter().map(|e| e.complete).max().unwrap();
        assert_eq!(derived, c.cycles);
        // The dependent fadd waits on fmul's pipeline latency.
        let fadd = trace.iter().find(|e| e.instr.to_string().starts_with("fadd.d")).unwrap();
        assert_eq!(fadd.stall, StallReason::RawFp);
        assert!(fadd.stall_cycles > 0);
        // The store waits on the fadd result.
        let fsd = trace.iter().find(|e| matches!(e.instr, Instr::FpStore { .. })).unwrap();
        assert_eq!(fsd.stall, StallReason::RawFp);
    }

    #[test]
    fn trace_marks_frep_issued_instructions() {
        let src = "\
f:
    li t0, 3
    frep.o t0, 1, 0, 0
    fadd.d ft3, ft4, ft5
    ret
";
        let prog = assemble(src).unwrap();
        let mut m = Machine::new();
        m.enable_trace();
        let c = m.call(&prog, "f", &[]).unwrap();
        let trace = m.take_trace().unwrap();
        assert_eq!(trace.len() as u64, c.instructions);
        let frep_issued: Vec<_> = trace.iter().filter(|e| e.in_frep).collect();
        assert_eq!(frep_issued.len(), 4);
        assert_eq!(frep_issued.len() as u64, c.frep_fpu_instrs);
        assert_eq!(c.fpu_instrs, 4);
        // Sequencer replays issue back-to-back on the FPU timeline.
        for pair in frep_issued.windows(2) {
            assert_eq!(pair[1].issue, pair[0].issue + 1);
        }
        // The next call restarts the (drained) trace.
        let c2 = m.call(&prog, "f", &[]).unwrap();
        assert_eq!(m.trace().unwrap().len() as u64, c2.instructions);
    }

    #[test]
    fn mover_pop_counts_match_counters() {
        let src = format!(
            "\
f:
    li t1, 7
    scfgwi t1, {b0}
    li t1, 8
    scfgwi t1, {s0}
    li t1, {base}
    scfgwi t1, {rptr}
    csrrsi zero, 0x7c0, 1
    li t0, 3
    frep.o t0, 1, 0, 0
    fadd.d ft3, ft0, ft0
    csrrci zero, 0x7c0, 1
    ret
",
            b0 = SsrCfgReg::Bound(0).scfg_imm(mlb_isa::SsrDataMover::new(0)),
            s0 = SsrCfgReg::Stride(0).scfg_imm(mlb_isa::SsrDataMover::new(0)),
            rptr = SsrCfgReg::RPtr(0).scfg_imm(mlb_isa::SsrDataMover::new(0)),
            base = TCDM_BASE,
        );
        // 4 fadds each pop ft0 twice: 8 reads from mover 0.
        let prog = assemble(&src).unwrap();
        let mut m = Machine::new();
        m.write_f64_slice(TCDM_BASE, &[1.0; 8]).unwrap();
        let c = m.call(&prog, "f", &[]).unwrap();
        let pops = m.ssr_pop_counts();
        let total_reads: u64 = pops.iter().map(|&(r, _)| r).sum();
        let total_writes: u64 = pops.iter().map(|&(_, w)| w).sum();
        assert_eq!(total_reads, c.ssr_reads);
        assert_eq!(total_writes, c.ssr_writes);
        assert_eq!(pops[0].0, 8);
        assert_eq!(pops[1], (0, 0));
    }

    /// Runs `src` on both engines — superblock and checked — and asserts
    /// the entire observable machine state (registers, memory, counters,
    /// pop counts) and the call result are identical.
    fn assert_fast_matches_generic(
        src: &str,
        entry: &str,
        args: &[u32],
        budget: Option<u64>,
        setup: impl Fn(&mut Machine),
    ) -> (Machine, Result<PerfCounters, SimError>) {
        let prog = assemble(src).unwrap();
        let mut fast = Machine::new();
        fast.set_engine(Engine::Superblock);
        let mut generic = Machine::new();
        generic.set_engine(Engine::Checked);
        for m in [&mut fast, &mut generic] {
            if let Some(b) = budget {
                m.set_instruction_budget(b);
            }
            setup(m);
        }
        let rf = fast.call(&prog, entry, args);
        let rg = generic.call(&prog, entry, args);
        assert_eq!(rf, rg);
        assert_eq!(fast.counters(), generic.counters());
        assert_eq!(fast.ssr_pop_counts(), generic.ssr_pop_counts());
        assert_eq!(fast.x, generic.x);
        assert_eq!(fast.f, generic.f);
        assert_eq!(fast.mem, generic.mem);
        (fast, rf)
    }

    #[test]
    fn fast_path_matches_generic_on_streamed_frep() {
        // Streamed vecadd: two read streams, one write stream, frep body
        // of one fadd — the canonical fast-path shape.
        let x = TCDM_BASE;
        let y = TCDM_BASE + 64;
        let z = TCDM_BASE + 128;
        let src = format!(
            "\
vecadd:
    li t1, 3
    scfgwi t1, {b0_dm0}
    scfgwi t1, {b0_dm1}
    scfgwi t1, {b0_dm2}
    li t1, 8
    scfgwi t1, {s0_dm0}
    scfgwi t1, {s0_dm1}
    scfgwi t1, {s0_dm2}
    li t1, {x}
    scfgwi t1, {rptr_dm0}
    li t1, {y}
    scfgwi t1, {rptr_dm1}
    li t1, {z}
    scfgwi t1, {wptr_dm2}
    csrrsi zero, 0x7c0, 1
    li t0, 3
    frep.o t0, 1, 0, 0
    fadd.d ft2, ft0, ft1
    csrrci zero, 0x7c0, 1
    ret
",
            b0_dm0 = SsrCfgReg::Bound(0).scfg_imm(mlb_isa::SsrDataMover::new(0)),
            b0_dm1 = SsrCfgReg::Bound(0).scfg_imm(mlb_isa::SsrDataMover::new(1)),
            b0_dm2 = SsrCfgReg::Bound(0).scfg_imm(mlb_isa::SsrDataMover::new(2)),
            s0_dm0 = SsrCfgReg::Stride(0).scfg_imm(mlb_isa::SsrDataMover::new(0)),
            s0_dm1 = SsrCfgReg::Stride(0).scfg_imm(mlb_isa::SsrDataMover::new(1)),
            s0_dm2 = SsrCfgReg::Stride(0).scfg_imm(mlb_isa::SsrDataMover::new(2)),
            rptr_dm0 = SsrCfgReg::RPtr(0).scfg_imm(mlb_isa::SsrDataMover::new(0)),
            rptr_dm1 = SsrCfgReg::RPtr(0).scfg_imm(mlb_isa::SsrDataMover::new(1)),
            wptr_dm2 = SsrCfgReg::WPtr(0).scfg_imm(mlb_isa::SsrDataMover::new(2)),
        );
        let (m, r) = assert_fast_matches_generic(&src, "vecadd", &[], None, |m| {
            m.write_f64_slice(x, &[1.0, 2.0, 3.0, 4.0]).unwrap();
            m.write_f64_slice(y, &[10.0, 20.0, 30.0, 40.0]).unwrap();
        });
        assert_eq!(m.read_f64_slice(z, 4).unwrap(), vec![11.0, 22.0, 33.0, 44.0]);
        assert_eq!(r.unwrap().ssr_reads, 8);
    }

    #[test]
    fn fast_path_matches_generic_on_loop_carried_accumulator() {
        // Dot-product shape: the fmadd accumulator is a plain register
        // carried across iterations, so per-iteration `fp_ready` reads
        // must match the generic path cycle for cycle.
        let src = format!(
            "\
dot:
    li t1, 7
    scfgwi t1, {b0_dm0}
    scfgwi t1, {b0_dm1}
    li t1, 8
    scfgwi t1, {s0_dm0}
    scfgwi t1, {s0_dm1}
    li t1, {x}
    scfgwi t1, {rptr_dm0}
    li t1, {y}
    scfgwi t1, {rptr_dm1}
    csrrsi zero, 0x7c0, 1
    fld ft3, {acc}(zero)
    li t0, 7
    frep.o t0, 1, 0, 0
    fmadd.d ft3, ft0, ft1, ft3
    csrrci zero, 0x7c0, 1
    fsd ft3, {out}(zero)
    ret
",
            b0_dm0 = SsrCfgReg::Bound(0).scfg_imm(mlb_isa::SsrDataMover::new(0)),
            b0_dm1 = SsrCfgReg::Bound(0).scfg_imm(mlb_isa::SsrDataMover::new(1)),
            s0_dm0 = SsrCfgReg::Stride(0).scfg_imm(mlb_isa::SsrDataMover::new(0)),
            s0_dm1 = SsrCfgReg::Stride(0).scfg_imm(mlb_isa::SsrDataMover::new(1)),
            rptr_dm0 = SsrCfgReg::RPtr(0).scfg_imm(mlb_isa::SsrDataMover::new(0)),
            rptr_dm1 = SsrCfgReg::RPtr(0).scfg_imm(mlb_isa::SsrDataMover::new(1)),
            x = TCDM_BASE,
            y = TCDM_BASE + 64,
            acc = TCDM_BASE + 128,
            out = TCDM_BASE + 136,
        );
        let (m, r) = assert_fast_matches_generic(&src, "dot", &[], None, |m| {
            m.write_f64_slice(TCDM_BASE, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]).unwrap();
            m.write_f64_slice(TCDM_BASE + 64, &[1.0; 8]).unwrap();
            m.write_f64_slice(TCDM_BASE + 128, &[0.0]).unwrap();
        });
        assert_eq!(m.read_f64_slice(TCDM_BASE + 136, 1).unwrap(), vec![36.0]);
        let c = r.unwrap();
        assert_eq!(c.fmadd, 8);
        // The loop-carried RAW dependency spaces iterations by the FPU
        // pipeline depth on both paths.
        assert!(c.cycles >= 8 * u64::from(FPU_PIPELINE_DEPTH), "cycles = {}", c.cycles);
    }

    #[test]
    fn fast_path_matches_generic_on_packed_simd_frep() {
        let src = "\
f:
    fld ft3, (a0)
    fld ft4, 8(a0)
    li t0, 3
    frep.o t0, 2, 0, 0
    vfmac.s ft5, ft3, ft4
    vfsum.s ft6, ft5
    ret
";
        let (_m, r) = assert_fast_matches_generic(src, "f", &[TCDM_BASE], None, |m| {
            m.write_f32_slice(TCDM_BASE, &[1.0, 2.0, 10.0, 20.0]).unwrap();
        });
        assert_eq!(r.unwrap().frep_fpu_instrs, 8);
    }

    #[test]
    fn fast_path_matches_generic_on_stream_overread_fault() {
        // An exhausted read stream faults mid-frep: the error pc and
        // message, and every counter mutated before the fault, must be
        // identical on both paths.
        let src = format!(
            "\
f:
    li t1, 2
    scfgwi t1, {b0}
    li t1, 8
    scfgwi t1, {s0}
    li t1, {base}
    scfgwi t1, {rptr}
    csrrsi zero, 0x7c0, 1
    li t0, 7
    frep.o t0, 1, 0, 0
    fadd.d ft3, ft0, ft0
    ret
",
            b0 = SsrCfgReg::Bound(0).scfg_imm(mlb_isa::SsrDataMover::new(0)),
            s0 = SsrCfgReg::Stride(0).scfg_imm(mlb_isa::SsrDataMover::new(0)),
            rptr = SsrCfgReg::RPtr(0).scfg_imm(mlb_isa::SsrDataMover::new(0)),
            base = TCDM_BASE,
        );
        let (_m, r) = assert_fast_matches_generic(&src, "f", &[], None, |m| {
            m.write_f64_slice(TCDM_BASE, &[1.0; 3]).unwrap();
        });
        let err = r.unwrap_err();
        assert!(err.to_string().contains("beyond the end"), "{err}");
        assert!(err.pc().is_some());
    }

    #[test]
    fn engines_agree_on_misaligned_stream_fault() {
        // A stream whose base pointer is not element-aligned: the turbo
        // precheck must refuse the plan (no alignment proof) and the
        // per-pop checked loop then faults with the exact same typed
        // error under both engines.
        let src = format!(
            "\
f:
    li t1, 3
    scfgwi t1, {b0}
    li t1, 8
    scfgwi t1, {s0}
    li t1, {base}
    scfgwi t1, {rptr}
    csrrsi zero, 0x7c0, 1
    li t0, 3
    frep.o t0, 1, 0, 0
    fadd.d ft3, ft0, ft0
    ret
",
            b0 = SsrCfgReg::Bound(0).scfg_imm(mlb_isa::SsrDataMover::new(0)),
            s0 = SsrCfgReg::Stride(0).scfg_imm(mlb_isa::SsrDataMover::new(0)),
            rptr = SsrCfgReg::RPtr(0).scfg_imm(mlb_isa::SsrDataMover::new(0)),
            base = TCDM_BASE + 1,
        );
        let (_m, r) = assert_fast_matches_generic(&src, "f", &[], None, |m| {
            m.write_f64_slice(TCDM_BASE, &[1.0; 8]).unwrap();
        });
        let err = r.unwrap_err();
        assert!(err.to_string().contains("misaligned"), "{err}");
        assert!(err.pc().is_some());
    }

    #[test]
    fn fast_path_matches_generic_on_budget_exhaustion() {
        let src = "\
f:
    li t0, 9999
    frep.o t0, 1, 0, 0
    fadd.d ft3, ft4, ft5
    ret
";
        let (_m, r) = assert_fast_matches_generic(src, "f", &[], Some(100), |_| {});
        let err = r.unwrap_err();
        assert!(err.to_string().contains("budget"), "{err}");
        // The budget check is attributed to the frep instruction itself.
        assert_eq!(err.pc(), Some(1));
    }

    #[test]
    fn predecoded_program_is_reusable_across_calls() {
        let src = "\
f:
    li t0, 3
    frep.o t0, 1, 0, 0
    fadd.d ft3, ft4, ft5
    ret
";
        let prog = assemble(src).unwrap();
        let exec = ExecProgram::new(prog);
        let mut m = Machine::new();
        let c1 = m.call_predecoded(&exec, "f", &[]).unwrap();
        let c2 = m.call_predecoded(&exec, "f", &[]).unwrap();
        assert_eq!(c1.fpu_instrs, 4);
        assert_eq!(c1.fpu_instrs, c2.fpu_instrs);
    }

    #[test]
    fn predecode_partitions_superblocks() {
        let src = "\
f:
    li t0, 0
    li t1, 8
loop:
    addi t0, t0, 1
    blt t0, t1, loop
    ret
";
        let exec = ExecProgram::new(assemble(src).unwrap());
        // Entries: symbol `f` (pc 0), branch target `loop` (pc 2), and
        // the branch fall-through (pc 4); each runs to its terminator.
        assert_eq!(exec.blocks(), &[(0, 4), (2, 4), (4, 5)]);
        // Tail weights count straight-line instructions through the
        // terminator: 4 from the entry, 1 at the terminators.
        assert_eq!(exec.tail_weight, vec![4, 3, 2, 1, 1]);
    }

    #[test]
    fn predecode_weighs_frep_bodies_once() {
        let src = "\
f:
    li t0, 9
    frep.o t0, 1, 0, 0
    fadd.d ft3, ft3, ft4
    ret
";
        let exec = ExecProgram::new(assemble(src).unwrap());
        // The frep dispatch counts once and its body repetitions not at
        // all — those budget-check themselves per repetition. (The body
        // pc's own weight is irrelevant: the engine never enters a
        // superblock at a body pc, it steps over the body as a unit.)
        assert_eq!(exec.tail_weight, vec![3, 2, 2, 1]);
        assert_eq!(exec.blocks(), &[(0, 4)]);
    }

    #[test]
    fn engines_agree_on_scalar_branch_loops() {
        let src = "\
sum:
    li t0, 0
    li t1, 8
    fld ft1, (a0)
    fsub.d ft0, ft1, ft1
loop:
    fld ft1, (a0)
    fadd.d ft0, ft0, ft1
    addi a0, a0, 8
    addi t0, t0, 1
    blt t0, t1, loop
    fsd ft0, (a1)
    ret
";
        let data: Vec<f64> = (1..=8).map(f64::from).collect();
        let out = TCDM_BASE + 1024;
        let (m, r) = assert_fast_matches_generic(src, "sum", &[TCDM_BASE, out], None, |m| {
            m.write_f64_slice(TCDM_BASE, &data).unwrap();
        });
        assert_eq!(m.read_f64_slice(out, 1).unwrap(), vec![36.0]);
        assert_eq!(r.unwrap().taken_branches, 7);
    }

    #[test]
    fn engines_agree_on_scalar_budget_exhaustion() {
        // The superblock precheck fails once the budget nears; the
        // checked fallback must report the identical error at pc 0.
        let src = "\
f:
    j f
";
        let (_m, r) = assert_fast_matches_generic(src, "f", &[], Some(1000), |_| {});
        let err = r.unwrap_err();
        assert!(err.to_string().contains("budget"), "{err}");
        assert_eq!(err.pc(), Some(0));
    }

    #[test]
    fn engines_agree_on_mid_block_memory_fault() {
        // A fault in the middle of a prechecked superblock: the precheck
        // only proves budget safety, memory faults must still surface
        // with the exact pc and partial state.
        let src = "\
f:
    li t0, 5
    lw t1, (zero)
    ret
";
        let (_m, r) = assert_fast_matches_generic(src, "f", &[], None, |_| {});
        let err = r.unwrap_err();
        assert_eq!(err, SimError::OutsideTcdm { pc: Some(1), addr: 0, size: 4 });
    }

    #[test]
    fn engines_agree_when_pc_runs_off_the_end() {
        let src = "\
f:
    li t0, 1
";
        let (_m, r) = assert_fast_matches_generic(src, "f", &[], None, |_| {});
        let err = r.unwrap_err();
        assert!(err.to_string().contains("ran off the end"), "{err}");
        assert_eq!(err.pc(), Some(1));
    }

    #[test]
    fn engines_agree_on_unknown_csr_fault() {
        let src = "\
f:
    li t0, 3
    csrr t1, 0xb00
    ret
";
        let (_m, r) = assert_fast_matches_generic(src, "f", &[], None, |_| {});
        let err = r.unwrap_err();
        assert!(err.to_string().contains("unsupported CSR"), "{err}");
        assert_eq!(err.pc(), Some(1));
    }

    #[test]
    fn fast_path_matches_generic_on_stride4_scalar_f32_stream() {
        // 4-byte strides defeat the turbo precheck's alignment proof, so
        // the fast path must stay on its per-pop checked loop; scalar f32
        // streaming alternates 8- and 4-byte element fetches and both
        // paths must agree on every one of them.
        let src = format!(
            "\
f:
    li t1, 7
    scfgwi t1, {b0}
    li t1, 4
    scfgwi t1, {s0}
    li t1, {base}
    scfgwi t1, {rptr}
    csrrsi zero, 0x7c0, 1
    li t0, 3
    frep.o t0, 1, 0, 0
    fadd.s ft3, ft0, ft0
    csrrci zero, 0x7c0, 1
    ret
",
            b0 = SsrCfgReg::Bound(0).scfg_imm(mlb_isa::SsrDataMover::new(0)),
            s0 = SsrCfgReg::Stride(0).scfg_imm(mlb_isa::SsrDataMover::new(0)),
            rptr = SsrCfgReg::RPtr(0).scfg_imm(mlb_isa::SsrDataMover::new(0)),
            base = TCDM_BASE,
        );
        let (_m, r) = assert_fast_matches_generic(&src, "f", &[], None, |m| {
            m.write_f32_slice(TCDM_BASE, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]).unwrap();
        });
        assert_eq!(r.unwrap().ssr_reads, 8);
    }

    #[test]
    fn fast_path_matches_generic_on_multidim_repeat_stream() {
        // A two-dimensional walk with an inner repeat: the turbo loop's
        // unchecked pop must track the odometer exactly, including the
        // dimension rollover and the final transition to `done`.
        let src = format!(
            "\
f:
    li t1, 1
    scfgwi t1, {b0}
    scfgwi t1, {b1}
    scfgwi t1, {rep}
    li t1, 8
    scfgwi t1, {s0}
    li t1, 16
    scfgwi t1, {s1}
    li t1, {base}
    scfgwi t1, {rptr1}
    csrrsi zero, 0x7c0, 1
    li t0, 3
    frep.o t0, 1, 0, 0
    fadd.d ft3, ft0, ft0
    csrrci zero, 0x7c0, 1
    fsd ft3, {out}(zero)
    ret
",
            b0 = SsrCfgReg::Bound(0).scfg_imm(mlb_isa::SsrDataMover::new(0)),
            b1 = SsrCfgReg::Bound(1).scfg_imm(mlb_isa::SsrDataMover::new(0)),
            rep = SsrCfgReg::Repeat.scfg_imm(mlb_isa::SsrDataMover::new(0)),
            s0 = SsrCfgReg::Stride(0).scfg_imm(mlb_isa::SsrDataMover::new(0)),
            s1 = SsrCfgReg::Stride(1).scfg_imm(mlb_isa::SsrDataMover::new(0)),
            rptr1 = SsrCfgReg::RPtr(1).scfg_imm(mlb_isa::SsrDataMover::new(0)),
            base = TCDM_BASE,
            out = TCDM_BASE + 64,
        );
        // 2 x 2 iterations x repeat 2 = 8 pops, consumed by 4 fadds
        // popping ft0 twice each: the job ends exactly exhausted.
        let (m, r) = assert_fast_matches_generic(&src, "f", &[], None, |m| {
            m.write_f64_slice(TCDM_BASE, &[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        });
        assert_eq!(r.unwrap().ssr_reads, 8);
        // Walk: 1.0 1.0 2.0 2.0 4.0 4.0 5.0 5.0 — last fadd doubles 5.0.
        assert_eq!(m.read_f64_slice(TCDM_BASE + 64, 1).unwrap(), vec![10.0]);
    }

    #[test]
    fn frep_overlaps_integer_work() {
        // The same FP work with and without frep: with frep the integer
        // core does not dispatch each iteration, so the independent-chain
        // version is at least as fast and the FPU stays busier.
        let with_frep = "\
f:
    li t0, 99
    frep.o t0, 1, 0, 0
    fadd.d ft3, ft4, ft5
    ret
";
        let without = format!("f:\n{}    ret\n", "    fadd.d ft3, ft4, ft5\n".repeat(100));
        let (_m1, c1) = run(with_frep, "f", &[], |_| {});
        let (_m2, c2) = run(&without, "f", &[], |_| {});
        assert_eq!(c1.flops, c2.flops);
        assert!(c1.cycles <= c2.cycles, "frep {} vs scalar {}", c1.cycles, c2.cycles);
        assert!(c1.fpu_utilization() > 0.9, "util = {}", c1.fpu_utilization());
    }
}
