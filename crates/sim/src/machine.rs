//! The Snitch core model: functional execution plus a cycle-approximate
//! timing model.
//!
//! # Microarchitecture model
//!
//! Two units with their own timelines, coupled by a register scoreboard:
//!
//! - the **integer core** executes one instruction per cycle in order
//!   (loads have a 2-cycle use latency, `mul` 3, taken control transfers
//!   pay a redirect penalty);
//! - the **FPU** accepts one arithmetic instruction per cycle from the
//!   sequencer FIFO and has a 3-stage pipeline: a dependent consumer
//!   stalls until `issue + 3` ([`mlb_isa::FPU_PIPELINE_DEPTH`]).
//!
//! FP instructions are *dispatched* by the integer core (one cycle each),
//! which makes plain scalar code single-issue. Inside an `frep.o`
//! hardware loop the sequencer replays the buffered instructions without
//! the integer core, making the core pseudo-dual-issue (Section 2.4).
//! Stream semantic registers turn `ft0`–`ft2` accesses into implicit
//! memory traffic served by the data movers in [`crate::ssr`].

use mlb_isa::{FpReg, IntReg, SsrCfgReg, CSR_SSR, FPU_PIPELINE_DEPTH, TCDM_BASE, TCDM_SIZE};

use crate::counters::PerfCounters;
use crate::instr::{BranchCond, FpBinOp, FpWidth, Instr, IntImmOp, IntOp, Program};
use crate::ssr::{DataMover, SsrDirection};
use crate::trace::{StallReason, TraceEntry};

/// Use latency of integer loads.
const LOAD_LATENCY: u64 = 2;
/// Use latency of integer multiplication.
const MUL_LATENCY: u64 = 3;
/// Extra cycles lost on a taken control transfer.
const BRANCH_PENALTY: u64 = 2;
/// Occupancy of the (unpipelined) FP divider.
const FDIV_OCCUPANCY: u64 = 11;

/// Error produced during simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimError {
    /// Index of the instruction that failed, if known.
    pub pc: Option<usize>,
    /// Description of the failure.
    pub message: String,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.pc {
            Some(pc) => write!(f, "simulation error at instruction {pc}: {}", self.message),
            None => write!(f, "simulation error: {}", self.message),
        }
    }
}

impl std::error::Error for SimError {}

/// The simulated Snitch core with its TCDM.
#[derive(Debug, Clone)]
pub struct Machine {
    x: [u32; 32],
    f: [u64; 32],
    mem: Vec<u8>,
    movers: [DataMover; 3],
    ssr_enabled: bool,
    counters: PerfCounters,
    // Timing state.
    int_time: u64,
    fpu_time: u64,
    int_ready: [u64; 32],
    fp_ready: [u64; 32],
    max_completion: u64,
    /// Dynamic instruction budget to catch runaway loops.
    budget: u64,
    /// Execution trace of the current call, when enabled.
    trace: Option<Vec<TraceEntry>>,
}

impl Default for Machine {
    fn default() -> Machine {
        Machine::new()
    }
}

impl Machine {
    /// Creates a machine with a zeroed TCDM.
    pub fn new() -> Machine {
        Machine {
            x: [0; 32],
            f: [0; 32],
            mem: vec![0; TCDM_SIZE],
            movers: [DataMover::default(), DataMover::default(), DataMover::default()],
            ssr_enabled: false,
            counters: PerfCounters::default(),
            int_time: 0,
            fpu_time: 0,
            int_ready: [0; 32],
            fp_ready: [0; 32],
            max_completion: 0,
            budget: 200_000_000,
            trace: None,
        }
    }

    /// The performance counters accumulated so far.
    pub fn counters(&self) -> &PerfCounters {
        &self.counters
    }

    /// Enables execution tracing. Each subsequent [`Machine::call`]
    /// restarts the trace; read it with [`Machine::trace`] or drain it
    /// with [`Machine::take_trace`].
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// The trace of the most recent call, if tracing is enabled.
    pub fn trace(&self) -> Option<&[TraceEntry]> {
        self.trace.as_deref()
    }

    /// Takes the recorded trace, leaving tracing enabled (empty).
    pub fn take_trace(&mut self) -> Option<Vec<TraceEntry>> {
        self.trace.as_mut().map(std::mem::take)
    }

    /// Cumulative (reads, writes) element counts popped by each of the
    /// three SSR data movers (`ft0`–`ft2`).
    pub fn ssr_pop_counts(&self) -> [(u64, u64); 3] {
        [self.movers[0].pop_counts(), self.movers[1].pop_counts(), self.movers[2].pop_counts()]
    }

    fn record(&mut self, entry: TraceEntry) {
        if let Some(trace) = &mut self.trace {
            trace.push(entry);
        }
    }

    /// Sets the dynamic-instruction budget (runaway-loop guard).
    pub fn set_instruction_budget(&mut self, budget: u64) {
        self.budget = budget;
    }

    // ----- architectural state access ---------------------------------------

    /// Reads an integer register.
    pub fn x(&self, r: IntReg) -> u32 {
        if r.index() == 0 {
            0
        } else {
            self.x[r.index() as usize]
        }
    }

    /// Writes an integer register (writes to `zero` are ignored).
    pub fn set_x(&mut self, r: IntReg, value: u32) {
        if r.index() != 0 {
            self.x[r.index() as usize] = value;
        }
    }

    /// Reads the raw bits of an FP register.
    pub fn f_bits(&self, r: FpReg) -> u64 {
        self.f[r.index() as usize]
    }

    /// Writes the raw bits of an FP register.
    pub fn set_f_bits(&mut self, r: FpReg, value: u64) {
        self.f[r.index() as usize] = value;
    }

    // ----- memory access -----------------------------------------------------

    fn mem_index(&self, addr: u32, size: usize) -> Result<usize, String> {
        let offset = addr.wrapping_sub(TCDM_BASE) as usize;
        if addr < TCDM_BASE || offset + size > TCDM_SIZE {
            return Err(format!("address {addr:#x} outside TCDM"));
        }
        if !(addr as usize).is_multiple_of(size) {
            return Err(format!("misaligned {size}-byte access at {addr:#x}"));
        }
        Ok(offset)
    }

    /// Reads a little-endian value of `SIZE` bytes at `addr`.
    fn read_bytes<const SIZE: usize>(&self, addr: u32) -> Result<[u8; SIZE], String> {
        let i = self.mem_index(addr, SIZE)?;
        let mut out = [0u8; SIZE];
        out.copy_from_slice(&self.mem[i..i + SIZE]);
        Ok(out)
    }

    fn write_bytes(&mut self, addr: u32, bytes: &[u8]) -> Result<(), String> {
        let i = self.mem_index(addr, bytes.len())?;
        self.mem[i..i + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Reads a `u32` from TCDM.
    pub fn read_u32(&self, addr: u32) -> Result<u32, SimError> {
        self.read_bytes::<4>(addr)
            .map(u32::from_le_bytes)
            .map_err(|m| SimError { pc: None, message: m })
    }

    /// Reads a `u64` from TCDM.
    pub fn read_u64(&self, addr: u32) -> Result<u64, SimError> {
        self.read_bytes::<8>(addr)
            .map(u64::from_le_bytes)
            .map_err(|m| SimError { pc: None, message: m })
    }

    /// Computes `addr + index * stride` for a slice element, rejecting
    /// address-space overflow instead of wrapping.
    fn slice_addr(addr: u32, index: usize, stride: usize) -> Result<u32, SimError> {
        let offset = (index as u64).checked_mul(stride as u64);
        offset
            .and_then(|o| (addr as u64).checked_add(o))
            .and_then(|a| u32::try_from(a).ok())
            .ok_or_else(|| SimError {
                pc: None,
                message: format!(
                    "address overflow accessing element {index} of a slice at {addr:#x}"
                ),
            })
    }

    /// Writes an `f64` slice into TCDM at `addr`.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if the destination range overflows or lies
    /// outside the TCDM.
    pub fn write_f64_slice(&mut self, addr: u32, values: &[f64]) -> Result<(), SimError> {
        for (i, v) in values.iter().enumerate() {
            let a = Self::slice_addr(addr, i, 8)?;
            self.write_bytes(a, &v.to_le_bytes()).map_err(|m| SimError { pc: None, message: m })?;
        }
        Ok(())
    }

    /// Reads an `f64` slice from TCDM at `addr`.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if the source range overflows or lies
    /// outside the TCDM.
    pub fn read_f64_slice(&self, addr: u32, len: usize) -> Result<Vec<f64>, SimError> {
        (0..len)
            .map(|i| {
                let a = Self::slice_addr(addr, i, 8)?;
                self.read_bytes::<8>(a)
                    .map(f64::from_le_bytes)
                    .map_err(|m| SimError { pc: None, message: m })
            })
            .collect()
    }

    /// Writes an `f32` slice into TCDM at `addr`.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if the destination range overflows or lies
    /// outside the TCDM.
    pub fn write_f32_slice(&mut self, addr: u32, values: &[f32]) -> Result<(), SimError> {
        for (i, v) in values.iter().enumerate() {
            let a = Self::slice_addr(addr, i, 4)?;
            self.write_bytes(a, &v.to_le_bytes()).map_err(|m| SimError { pc: None, message: m })?;
        }
        Ok(())
    }

    /// Reads an `f32` slice from TCDM at `addr`.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if the source range overflows or lies
    /// outside the TCDM.
    pub fn read_f32_slice(&self, addr: u32, len: usize) -> Result<Vec<f32>, SimError> {
        (0..len)
            .map(|i| {
                let a = Self::slice_addr(addr, i, 4)?;
                self.read_bytes::<4>(a)
                    .map(f32::from_le_bytes)
                    .map_err(|m| SimError { pc: None, message: m })
            })
            .collect()
    }

    // ----- execution ----------------------------------------------------------

    /// Calls the function at symbol `entry` with the given integer
    /// arguments in `a0..`, running until its `ret`. Returns the counters
    /// for this call (also accumulated into [`Machine::counters`]).
    ///
    /// # Errors
    ///
    /// Propagates memory faults, SSR misuse, and budget exhaustion.
    pub fn call(
        &mut self,
        program: &Program,
        entry: &str,
        args: &[u32],
    ) -> Result<PerfCounters, SimError> {
        let start = *program.symbols.get(entry).ok_or_else(|| SimError {
            pc: None,
            message: format!("unknown entry symbol `{entry}`"),
        })?;
        assert!(args.len() <= 8, "at most 8 integer arguments");
        for (i, &a) in args.iter().enumerate() {
            self.set_x(IntReg::a(i as u8), a);
        }
        // Fresh timing epoch for this call; the trace restarts with it.
        self.int_time = 0;
        self.fpu_time = 0;
        self.int_ready = [0; 32];
        self.fp_ready = [0; 32];
        self.max_completion = 0;
        if let Some(trace) = &mut self.trace {
            trace.clear();
        }
        let before = self.counters;
        self.run(program, start)?;
        let cycles = self.int_time.max(self.fpu_time).max(self.max_completion);
        self.counters.cycles += cycles;
        Ok(self.counters.delta_since(&before))
    }

    fn run(&mut self, program: &Program, start: usize) -> Result<(), SimError> {
        let mut pc = start;
        let mut executed: u64 = 0;
        loop {
            let instr = *program.instrs.get(pc).ok_or_else(|| SimError {
                pc: Some(pc),
                message: "program counter ran off the end".to_string(),
            })?;
            executed += 1;
            if executed > self.budget {
                return Err(SimError {
                    pc: Some(pc),
                    message: "instruction budget exhausted".into(),
                });
            }
            match instr {
                Instr::Ret => {
                    let issue = self.int_time;
                    self.int_time += 1;
                    self.counters.instructions += 1;
                    self.record(TraceEntry {
                        pc,
                        instr,
                        in_frep: false,
                        issue,
                        complete: issue + 1,
                        stall: StallReason::None,
                        stall_cycles: 0,
                    });
                    return Ok(());
                }
                Instr::J { target } => {
                    let issue = self.int_time;
                    self.int_time += 1 + BRANCH_PENALTY;
                    self.counters.instructions += 1;
                    self.counters.taken_branches += 1;
                    self.record(TraceEntry {
                        pc,
                        instr,
                        in_frep: false,
                        issue,
                        complete: issue + 1 + BRANCH_PENALTY,
                        stall: StallReason::BranchRedirect,
                        stall_cycles: BRANCH_PENALTY,
                    });
                    pc = target;
                }
                Instr::Branch { cond, rs1, rs2, target } => {
                    let int_before = self.int_time;
                    let t = self
                        .int_time
                        .max(self.int_ready[rs1.index() as usize])
                        .max(self.int_ready[rs2.index() as usize]);
                    self.int_time = t + 1;
                    self.counters.instructions += 1;
                    let a = self.x(rs1) as i32;
                    let b = self.x(rs2) as i32;
                    let taken = match cond {
                        BranchCond::Lt => a < b,
                        BranchCond::Ge => a >= b,
                        BranchCond::Ne => a != b,
                        BranchCond::Eq => a == b,
                    };
                    if taken {
                        self.int_time += BRANCH_PENALTY;
                        self.counters.taken_branches += 1;
                    }
                    let wait = t - int_before;
                    let stall = if wait > 0 {
                        StallReason::RawInt
                    } else if taken {
                        StallReason::BranchRedirect
                    } else {
                        StallReason::None
                    };
                    self.record(TraceEntry {
                        pc,
                        instr,
                        in_frep: false,
                        issue: t,
                        complete: self.int_time,
                        stall,
                        stall_cycles: wait + if taken { BRANCH_PENALTY } else { 0 },
                    });
                    pc = if taken { target } else { pc + 1 };
                }
                Instr::FrepO { rs1, n_instr } => {
                    let int_before = self.int_time;
                    let t = self.int_time.max(self.int_ready[rs1.index() as usize]);
                    self.int_time = t + 1;
                    self.counters.instructions += 1;
                    self.counters.frep += 1;
                    self.record(TraceEntry {
                        pc,
                        instr,
                        in_frep: false,
                        issue: t,
                        complete: t + 1,
                        stall: if t > int_before { StallReason::RawInt } else { StallReason::None },
                        stall_cycles: t - int_before,
                    });
                    let reps = self.x(rs1) as u64 + 1;
                    let n = n_instr as usize;
                    if pc + n >= program.instrs.len() {
                        return Err(SimError {
                            pc: Some(pc),
                            message: "frep body runs off the end of the program".into(),
                        });
                    }
                    for _ in 0..reps {
                        for i in 1..=n {
                            let body = program.instrs[pc + i];
                            if !body.is_fpu() {
                                return Err(SimError {
                                    pc: Some(pc + i),
                                    message: "frep body contains a non-FPU instruction".into(),
                                });
                            }
                            executed += 1;
                            self.exec_straight(body, true, pc + i)
                                .map_err(|message| SimError { pc: Some(pc + i), message })?;
                        }
                        if executed > self.budget {
                            return Err(SimError {
                                pc: Some(pc),
                                message: "instruction budget exhausted".into(),
                            });
                        }
                    }
                    pc += n + 1;
                }
                other => {
                    self.exec_straight(other, false, pc)
                        .map_err(|message| SimError { pc: Some(pc), message })?;
                    pc += 1;
                }
            }
        }
    }

    /// Reads an FP source operand, popping from its stream when streaming.
    /// Returns (bits, ready_time).
    fn read_fp_operand(&mut self, r: FpReg) -> Result<(u64, u64), String> {
        if self.ssr_enabled && r.is_ssr() && self.movers[r.index() as usize].is_active() {
            let dm = r.index() as usize;
            if self.movers[dm].direction() == Some(SsrDirection::Read) {
                let addr = self.movers[dm].next_addr(SsrDirection::Read)?;
                self.counters.ssr_reads += 1;
                // The SSR data path is 64 bits wide: 8-byte-aligned
                // elements are fetched whole (f64 or two packed f32
                // lanes); a 4-byte-aligned element is fetched alone into
                // the low lane (scalar f32 streaming with stride 4).
                let value = if addr % 8 == 0 {
                    u64::from_le_bytes(self.read_bytes::<8>(addr)?)
                } else {
                    u32::from_le_bytes(self.read_bytes::<4>(addr)?) as u64
                };
                return Ok((value, 0));
            }
        }
        Ok((self.f[r.index() as usize], self.fp_ready[r.index() as usize]))
    }

    /// Writes an FP destination, pushing to its stream when streaming.
    fn write_fp_result(&mut self, r: FpReg, bits: u64, ready: u64) -> Result<(), String> {
        if self.ssr_enabled && r.is_ssr() && self.movers[r.index() as usize].is_active() {
            let dm = r.index() as usize;
            if self.movers[dm].direction() == Some(SsrDirection::Write) {
                let addr = self.movers[dm].next_addr(SsrDirection::Write)?;
                self.counters.ssr_writes += 1;
                if addr % 8 == 0 {
                    self.write_bytes(addr, &bits.to_le_bytes())?;
                } else {
                    self.write_bytes(addr, &(bits as u32).to_le_bytes())?;
                }
                self.max_completion = self.max_completion.max(ready);
                return Ok(());
            }
        }
        self.f[r.index() as usize] = bits;
        self.fp_ready[r.index() as usize] = ready;
        self.max_completion = self.max_completion.max(ready);
        Ok(())
    }

    /// Executes one non-control-flow instruction, updating state, timing
    /// and counters. `in_frep` suppresses the integer-core dispatch cost.
    fn exec_straight(&mut self, instr: Instr, in_frep: bool, pc: usize) -> Result<(), String> {
        self.counters.instructions += 1;
        if instr.is_fpu() {
            self.exec_fpu(instr, in_frep, pc)?;
            self.max_completion = self.max_completion.max(self.int_time);
            return Ok(());
        }
        let int_before = self.int_time;
        match instr {
            Instr::Li { rd, imm } => {
                let t = self.int_time;
                self.int_time = t + 1;
                self.set_x(rd, imm as u32);
                self.int_ready[rd.index() as usize] = t + 1;
            }
            Instr::Mv { rd, rs } => {
                let t = self.int_time.max(self.int_ready[rs.index() as usize]);
                self.int_time = t + 1;
                self.set_x(rd, self.x(rs));
                self.int_ready[rd.index() as usize] = t + 1;
            }
            Instr::IntOp { op, rd, rs1, rs2 } => {
                let t = self
                    .int_time
                    .max(self.int_ready[rs1.index() as usize])
                    .max(self.int_ready[rs2.index() as usize]);
                self.int_time = t + 1;
                let a = self.x(rs1);
                let b = self.x(rs2);
                let (value, latency) = match op {
                    IntOp::Add => (a.wrapping_add(b), 1),
                    IntOp::Sub => (a.wrapping_sub(b), 1),
                    IntOp::Mul => (a.wrapping_mul(b), MUL_LATENCY),
                };
                self.set_x(rd, value);
                self.int_ready[rd.index() as usize] = t + latency;
            }
            Instr::IntImm { op, rd, rs1, imm } => {
                let t = self.int_time.max(self.int_ready[rs1.index() as usize]);
                self.int_time = t + 1;
                let a = self.x(rs1);
                let value = match op {
                    IntImmOp::Addi => a.wrapping_add(imm as u32),
                    IntImmOp::Slli => a.wrapping_shl(imm as u32),
                };
                self.set_x(rd, value);
                self.int_ready[rd.index() as usize] = t + 1;
            }
            Instr::Lw { rd, base, imm } => {
                let t = self.int_time.max(self.int_ready[base.index() as usize]);
                self.int_time = t + 1;
                let addr = self.x(base).wrapping_add(imm as u32);
                let value = u32::from_le_bytes(self.read_bytes::<4>(addr)?);
                self.set_x(rd, value);
                self.int_ready[rd.index() as usize] = t + LOAD_LATENCY;
                self.counters.int_loads += 1;
            }
            Instr::Sw { rs2, base, imm } => {
                let t = self
                    .int_time
                    .max(self.int_ready[base.index() as usize])
                    .max(self.int_ready[rs2.index() as usize]);
                self.int_time = t + 1;
                let addr = self.x(base).wrapping_add(imm as u32);
                self.write_bytes(addr, &self.x(rs2).to_le_bytes())?;
                self.counters.int_stores += 1;
            }
            Instr::FpLoad { width, rd, base, imm } => {
                let t = self.int_time.max(self.int_ready[base.index() as usize]);
                self.int_time = t + 1;
                let addr = self.x(base).wrapping_add(imm as u32);
                let bits = match width {
                    FpWidth::Double => u64::from_le_bytes(self.read_bytes::<8>(addr)?),
                    FpWidth::Single => {
                        u32::from_le_bytes(self.read_bytes::<4>(addr)?) as u64
                            | 0xFFFF_FFFF_0000_0000
                    }
                };
                self.f[rd.index() as usize] = bits;
                self.fp_ready[rd.index() as usize] = t + LOAD_LATENCY;
                self.counters.fp_loads += 1;
            }
            Instr::FpStore { width, rs2, base, imm } => {
                let t = self
                    .int_time
                    .max(self.int_ready[base.index() as usize])
                    .max(self.fp_ready[rs2.index() as usize]);
                self.int_time = t + 1;
                let addr = self.x(base).wrapping_add(imm as u32);
                let bits = self.f[rs2.index() as usize];
                match width {
                    FpWidth::Double => self.write_bytes(addr, &bits.to_le_bytes())?,
                    FpWidth::Single => self.write_bytes(addr, &(bits as u32).to_le_bytes())?,
                }
                self.counters.fp_stores += 1;
            }
            Instr::Csrrsi { csr, imm } => {
                self.int_time += 1;
                if csr == CSR_SSR && imm & 1 == 1 {
                    self.ssr_enabled = true;
                }
            }
            Instr::Csrrci { csr, imm } => {
                self.int_time += 1;
                if csr == CSR_SSR && imm & 1 == 1 {
                    self.ssr_enabled = false;
                }
            }
            Instr::Scfgwi { rs1, imm } => {
                let t = self.int_time.max(self.int_ready[rs1.index() as usize]);
                self.int_time = t + 1;
                let (reg, dm) = SsrCfgReg::from_scfg_imm(imm)
                    .ok_or_else(|| format!("invalid scfgwi immediate {imm}"))?;
                let value = self.x(rs1);
                self.movers[dm.index() as usize].configure(reg, value);
                self.counters.scfgwi += 1;
            }
            Instr::FpBin { .. }
            | Instr::Fmadd { .. }
            | Instr::FmvD { .. }
            | Instr::VfmacS { .. }
            | Instr::VfsumS { .. }
            | Instr::Fcvt { .. } => unreachable!("FPU instructions handled by exec_fpu"),
            Instr::Ret | Instr::J { .. } | Instr::Branch { .. } | Instr::FrepO { .. } => {
                unreachable!("control flow handled by the driver loop")
            }
        }
        if self.trace.is_some() {
            // Every integer-core arm advances `int_time` by exactly one
            // cycle past its issue time.
            let issue = self.int_time - 1;
            let stall_cycles = issue - int_before;
            let stall = if stall_cycles == 0 {
                StallReason::None
            } else if matches!(instr, Instr::FpStore { .. }) {
                // Approximation: an FP store's wait is attributed to the
                // stored value (the common case), not the base address.
                StallReason::RawFp
            } else {
                StallReason::RawInt
            };
            self.record(TraceEntry {
                pc,
                instr,
                in_frep: false,
                issue,
                complete: self.int_time,
                stall,
                stall_cycles,
            });
        }
        self.max_completion = self.max_completion.max(self.int_time);
        Ok(())
    }

    fn exec_fpu(&mut self, instr: Instr, in_frep: bool, pc: usize) -> Result<(), String> {
        // Dispatch: the integer core spends a cycle feeding the FPU unless
        // the sequencer replays the instruction inside an frep.
        let dispatch = if in_frep {
            0
        } else {
            let t = self.int_time;
            self.int_time = t + 1;
            t
        };
        let (result_reg, bits, operands_ready, occupancy, flops) = match instr {
            Instr::FpBin { op, rd, rs1, rs2 } => {
                let (a, t1) = self.read_fp_operand(rs1)?;
                let (b, t2) = self.read_fp_operand(rs2)?;
                let bits = eval_fp_bin(op, a, b);
                let occ = if op == FpBinOp::FdivD { FDIV_OCCUPANCY } else { 1 };
                (rd, bits, t1.max(t2), occ, op.flops())
            }
            Instr::Fmadd { width, rd, rs1, rs2, rs3 } => {
                let (a, t1) = self.read_fp_operand(rs1)?;
                let (b, t2) = self.read_fp_operand(rs2)?;
                let (c, t3) = self.read_fp_operand(rs3)?;
                let bits = match width {
                    FpWidth::Double => f64::to_bits(
                        f64::from_bits(a).mul_add(f64::from_bits(b), f64::from_bits(c)),
                    ),
                    FpWidth::Single => f32::to_bits(
                        f32::from_bits(a as u32)
                            .mul_add(f32::from_bits(b as u32), f32::from_bits(c as u32)),
                    ) as u64,
                };
                self.counters.fmadd += 1;
                (rd, bits, t1.max(t2).max(t3), 1, 2)
            }
            Instr::FmvD { rd, rs } => {
                let (a, t1) = self.read_fp_operand(rs)?;
                (rd, a, t1, 1, 0)
            }
            Instr::VfmacS { rd, rs1, rs2 } => {
                let (a, t1) = self.read_fp_operand(rs1)?;
                let (b, t2) = self.read_fp_operand(rs2)?;
                // The accumulator is read as a plain register (it is the
                // destination; stream destinations cannot accumulate).
                let acc = self.f[rd.index() as usize];
                let t3 = self.fp_ready[rd.index() as usize];
                let lo = f32::from_bits(a as u32)
                    .mul_add(f32::from_bits(b as u32), f32::from_bits(acc as u32));
                let hi = f32::from_bits((a >> 32) as u32)
                    .mul_add(f32::from_bits((b >> 32) as u32), f32::from_bits((acc >> 32) as u32));
                let bits = (lo.to_bits() as u64) | ((hi.to_bits() as u64) << 32);
                (rd, bits, t1.max(t2).max(t3), 1, 4)
            }
            Instr::VfsumS { rd, rs1 } => {
                let (a, t1) = self.read_fp_operand(rs1)?;
                let acc = self.f[rd.index() as usize];
                let t2 = self.fp_ready[rd.index() as usize];
                let sum = f32::from_bits(acc as u32)
                    + f32::from_bits(a as u32)
                    + f32::from_bits((a >> 32) as u32);
                let bits = (acc & 0xFFFF_FFFF_0000_0000) | sum.to_bits() as u64;
                (rd, bits, t1.max(t2), 1, 2)
            }
            Instr::Fcvt { width, rd, rs } => {
                let t1 = self.int_ready[rs.index() as usize];
                let v = self.x(rs) as i32;
                let bits = match width {
                    FpWidth::Double => (v as f64).to_bits(),
                    FpWidth::Single => (v as f32).to_bits() as u64 | 0xFFFF_FFFF_0000_0000,
                };
                (rd, bits, t1, 1, 0)
            }
            _ => unreachable!("non-FPU instruction in exec_fpu"),
        };
        let fpu_before = self.fpu_time;
        let issue = self.fpu_time.max(dispatch).max(operands_ready);
        self.fpu_time = issue + occupancy;
        self.counters.fpu_busy_cycles += occupancy;
        self.counters.flops += flops;
        self.counters.fpu_instrs += 1;
        if in_frep {
            self.counters.frep_fpu_instrs += 1;
        }
        let ready = issue + u64::from(FPU_PIPELINE_DEPTH);
        if self.trace.is_some() {
            // Ideal issue: the sequencer replays back-to-back inside an
            // frep; a dispatched instruction ideally issues the cycle the
            // integer core hands it over.
            let ideal = if in_frep { fpu_before } else { dispatch };
            let stall_cycles = issue - ideal;
            let stall = if stall_cycles == 0 {
                StallReason::None
            } else if operands_ready >= fpu_before.max(dispatch) {
                StallReason::RawFp
            } else {
                StallReason::FpuBusy
            };
            self.record(TraceEntry {
                pc,
                instr,
                in_frep,
                issue,
                complete: self.fpu_time.max(ready),
                stall,
                stall_cycles,
            });
        }
        self.write_fp_result(result_reg, bits, ready)?;
        Ok(())
    }
}

fn eval_fp_bin(op: FpBinOp, a: u64, b: u64) -> u64 {
    let d = |x: u64| f64::from_bits(x);
    let s = |x: u64| f32::from_bits(x as u32);
    let lane1 = |x: u64| f32::from_bits((x >> 32) as u32);
    let pack = |lo: f32, hi: f32| (lo.to_bits() as u64) | ((hi.to_bits() as u64) << 32);
    let scalar_s = |v: f32| v.to_bits() as u64 | 0xFFFF_FFFF_0000_0000;
    match op {
        FpBinOp::FaddD => (d(a) + d(b)).to_bits(),
        FpBinOp::FsubD => (d(a) - d(b)).to_bits(),
        FpBinOp::FmulD => (d(a) * d(b)).to_bits(),
        FpBinOp::FdivD => (d(a) / d(b)).to_bits(),
        FpBinOp::FmaxD => d(a).max(d(b)).to_bits(),
        FpBinOp::FaddS => scalar_s(s(a) + s(b)),
        FpBinOp::FsubS => scalar_s(s(a) - s(b)),
        FpBinOp::FmulS => scalar_s(s(a) * s(b)),
        FpBinOp::FmaxS => scalar_s(s(a).max(s(b))),
        FpBinOp::VfaddS => pack(s(a) + s(b), lane1(a) + lane1(b)),
        FpBinOp::VfmulS => pack(s(a) * s(b), lane1(a) * lane1(b)),
        FpBinOp::VfmaxS => pack(s(a).max(s(b)), lane1(a).max(lane1(b))),
        FpBinOp::VfcpkaSS => pack(s(a), s(b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run(
        src: &str,
        entry: &str,
        args: &[u32],
        setup: impl FnOnce(&mut Machine),
    ) -> (Machine, PerfCounters) {
        let prog = assemble(src).unwrap();
        let mut m = Machine::new();
        setup(&mut m);
        let c = m.call(&prog, entry, args).unwrap();
        (m, c)
    }

    #[test]
    fn integer_arithmetic_works() {
        let src = "\
f:
    li t0, 6
    li t1, 7
    mul t2, t0, t1
    addi t2, t2, 8
    slli t2, t2, 1
    sub t2, t2, t0
    ret
";
        let (m, c) = run(src, "f", &[], |_| {});
        assert_eq!(m.x(IntReg::t(2)), (6 * 7 + 8) * 2 - 6);
        assert!(c.cycles >= 6);
    }

    #[test]
    fn fp_scalar_pipeline() {
        let src = "\
f:
    fld ft0, (a0)
    fld ft1, 8(a0)
    fmul.d ft2, ft0, ft1
    fadd.d ft3, ft2, ft0
    fsd ft3, 16(a0)
    ret
";
        let (m, c) = run(src, "f", &[TCDM_BASE], |m| {
            m.write_f64_slice(TCDM_BASE, &[3.0, 4.0, 0.0]).unwrap();
        });
        assert_eq!(m.read_f64_slice(TCDM_BASE + 16, 1).unwrap(), vec![15.0]);
        assert_eq!(c.fp_loads, 2);
        assert_eq!(c.fp_stores, 1);
        assert_eq!(c.flops, 2);
        // The dependent chain pays the FPU latency twice.
        assert!(c.cycles >= 8, "cycles = {}", c.cycles);
    }

    #[test]
    fn loop_sums_memory() {
        // Sum 8 doubles the scalar way.
        let src = "\
sum:
    li t0, 0
    li t1, 8
    fld ft1, (a0)
    fsub.d ft0, ft1, ft1
loop:
    fld ft1, (a0)
    fadd.d ft0, ft0, ft1
    addi a0, a0, 8
    addi t0, t0, 1
    blt t0, t1, loop
    fsd ft0, (a1)
    ret
";
        let data: Vec<f64> = (1..=8).map(f64::from).collect();
        let out = TCDM_BASE + 1024;
        let (m, c) = run(src, "sum", &[TCDM_BASE, out], |m| {
            m.write_f64_slice(TCDM_BASE, &data).unwrap();
        });
        assert_eq!(m.read_f64_slice(out, 1).unwrap(), vec![36.0]);
        assert_eq!(c.fp_loads, 9);
        assert_eq!(c.taken_branches, 7);
    }

    #[test]
    fn frep_repeats_fpu_instructions() {
        let src = "\
f:
    li t0, 9
    fld ft3, (a0)
    fld ft4, 8(a0)
    frep.o t0, 1, 0, 0
    fadd.d ft3, ft3, ft4
    fsd ft3, 16(a0)
    ret
";
        let (m, c) = run(src, "f", &[TCDM_BASE], |m| {
            m.write_f64_slice(TCDM_BASE, &[0.0, 2.0, 0.0]).unwrap();
        });
        // 10 iterations of ft3 += 2.0.
        assert_eq!(m.read_f64_slice(TCDM_BASE + 16, 1).unwrap(), vec![20.0]);
        assert_eq!(c.frep, 1);
        assert_eq!(c.flops, 10);
    }

    #[test]
    fn frep_rejects_integer_body() {
        let src = "\
f:
    li t0, 1
    frep.o t0, 1, 0, 0
    addi t1, t1, 1
    ret
";
        let prog = assemble(src).unwrap();
        let mut m = Machine::new();
        let err = m.call(&prog, "f", &[]).unwrap_err();
        assert!(err.message.contains("non-FPU"), "{err}");
    }

    #[test]
    fn ssr_streams_feed_fpu() {
        // z[i] = x[i] + y[i] over 4 doubles, with both reads and the
        // write all streamed; the body is a single frep'd fadd.
        let x = TCDM_BASE;
        let y = TCDM_BASE + 64;
        let z = TCDM_BASE + 128;
        let src = format!(
            "\
vecadd:
    li t1, 3
    scfgwi t1, {b0_dm0}     # bound dim0, dm0
    scfgwi t1, {b0_dm1}
    scfgwi t1, {b0_dm2}
    li t1, 8
    scfgwi t1, {s0_dm0}     # stride dim0
    scfgwi t1, {s0_dm1}
    scfgwi t1, {s0_dm2}
    li t1, {x}
    scfgwi t1, {rptr_dm0}
    li t1, {y}
    scfgwi t1, {rptr_dm1}
    li t1, {z}
    scfgwi t1, {wptr_dm2}
    csrrsi zero, 0x7c0, 1
    li t0, 3
    frep.o t0, 1, 0, 0
    fadd.d ft2, ft0, ft1
    csrrci zero, 0x7c0, 1
    ret
",
            b0_dm0 = SsrCfgReg::Bound(0).scfg_imm(mlb_isa::SsrDataMover::new(0)),
            b0_dm1 = SsrCfgReg::Bound(0).scfg_imm(mlb_isa::SsrDataMover::new(1)),
            b0_dm2 = SsrCfgReg::Bound(0).scfg_imm(mlb_isa::SsrDataMover::new(2)),
            s0_dm0 = SsrCfgReg::Stride(0).scfg_imm(mlb_isa::SsrDataMover::new(0)),
            s0_dm1 = SsrCfgReg::Stride(0).scfg_imm(mlb_isa::SsrDataMover::new(1)),
            s0_dm2 = SsrCfgReg::Stride(0).scfg_imm(mlb_isa::SsrDataMover::new(2)),
            rptr_dm0 = SsrCfgReg::RPtr(0).scfg_imm(mlb_isa::SsrDataMover::new(0)),
            rptr_dm1 = SsrCfgReg::RPtr(0).scfg_imm(mlb_isa::SsrDataMover::new(1)),
            wptr_dm2 = SsrCfgReg::WPtr(0).scfg_imm(mlb_isa::SsrDataMover::new(2)),
            x = x,
            y = y,
            z = z,
        );
        let (m, c) = run(&src, "vecadd", &[], |m| {
            m.write_f64_slice(x, &[1.0, 2.0, 3.0, 4.0]).unwrap();
            m.write_f64_slice(y, &[10.0, 20.0, 30.0, 40.0]).unwrap();
        });
        assert_eq!(m.read_f64_slice(z, 4).unwrap(), vec![11.0, 22.0, 33.0, 44.0]);
        assert_eq!(c.ssr_reads, 8);
        assert_eq!(c.ssr_writes, 4);
        assert_eq!(c.fp_loads, 0);
        assert_eq!(c.fp_stores, 0);
        assert_eq!(c.flops, 4);
    }

    #[test]
    fn ssr_overread_is_an_error() {
        let src = format!(
            "\
f:
    li t1, 0
    scfgwi t1, {b0}
    li t1, 8
    scfgwi t1, {s0}
    li t1, {base}
    scfgwi t1, {rptr}
    csrrsi zero, 0x7c0, 1
    fadd.d ft3, ft0, ft0
    ret
",
            b0 = SsrCfgReg::Bound(0).scfg_imm(mlb_isa::SsrDataMover::new(0)),
            s0 = SsrCfgReg::Stride(0).scfg_imm(mlb_isa::SsrDataMover::new(0)),
            rptr = SsrCfgReg::RPtr(0).scfg_imm(mlb_isa::SsrDataMover::new(0)),
            base = TCDM_BASE,
        );
        // A 1-element stream read twice by one fadd: second pop must fail.
        let prog = assemble(&src).unwrap();
        let mut m = Machine::new();
        let err = m.call(&prog, "f", &[]).unwrap_err();
        assert!(err.message.contains("beyond the end"), "{err}");
    }

    #[test]
    fn packed_simd_semantics() {
        let src = "\
f:
    fld ft3, (a0)
    fld ft4, 8(a0)
    vfadd.s ft5, ft3, ft4
    fsd ft5, 16(a0)
    vfmac.s ft6, ft3, ft4
    vfsum.s ft7, ft6
    fsd ft7, 24(a0)
    ret
";
        let (m, _c) = run(src, "f", &[TCDM_BASE], |m| {
            m.write_f32_slice(TCDM_BASE, &[1.0, 2.0, 10.0, 20.0]).unwrap();
            // Zero the accumulators' storage.
            m.write_f64_slice(TCDM_BASE + 16, &[0.0, 0.0]).unwrap();
        });
        assert_eq!(m.read_f32_slice(TCDM_BASE + 16, 2).unwrap(), vec![11.0, 22.0]);
        // vfmac into zeroed ft6: lanes = [10, 40]; vfsum into zeroed ft7:
        // lane0 = 50.
        assert_eq!(m.read_f32_slice(TCDM_BASE + 24, 1).unwrap(), vec![50.0]);
    }

    #[test]
    fn out_of_bounds_memory_faults() {
        let src = "\
f:
    lw t0, (a0)
    ret
";
        let prog = assemble(src).unwrap();
        let mut m = Machine::new();
        let err = m.call(&prog, "f", &[0x100]).unwrap_err();
        assert!(err.message.contains("TCDM"), "{err}");
    }

    #[test]
    fn budget_guards_infinite_loops() {
        let src = "\
f:
    j f
";
        let prog = assemble(src).unwrap();
        let mut m = Machine::new();
        m.set_instruction_budget(1000);
        let err = m.call(&prog, "f", &[]).unwrap_err();
        assert!(err.message.contains("budget"), "{err}");
    }

    #[test]
    fn trace_accounts_for_every_cycle_and_instruction() {
        let src = "\
f:
    fld ft0, (a0)
    fld ft1, 8(a0)
    fmul.d ft2, ft0, ft1
    fadd.d ft3, ft2, ft0
    fsd ft3, 16(a0)
    ret
";
        let prog = assemble(src).unwrap();
        let mut m = Machine::new();
        m.enable_trace();
        m.write_f64_slice(TCDM_BASE, &[3.0, 4.0, 0.0]).unwrap();
        let c = m.call(&prog, "f", &[TCDM_BASE]).unwrap();
        let trace = m.trace().unwrap();
        assert_eq!(trace.len() as u64, c.instructions);
        let derived = trace.iter().map(|e| e.complete).max().unwrap();
        assert_eq!(derived, c.cycles);
        // The dependent fadd waits on fmul's pipeline latency.
        let fadd = trace.iter().find(|e| e.instr.to_string().starts_with("fadd.d")).unwrap();
        assert_eq!(fadd.stall, StallReason::RawFp);
        assert!(fadd.stall_cycles > 0);
        // The store waits on the fadd result.
        let fsd = trace.iter().find(|e| matches!(e.instr, Instr::FpStore { .. })).unwrap();
        assert_eq!(fsd.stall, StallReason::RawFp);
    }

    #[test]
    fn trace_marks_frep_issued_instructions() {
        let src = "\
f:
    li t0, 3
    frep.o t0, 1, 0, 0
    fadd.d ft3, ft4, ft5
    ret
";
        let prog = assemble(src).unwrap();
        let mut m = Machine::new();
        m.enable_trace();
        let c = m.call(&prog, "f", &[]).unwrap();
        let trace = m.take_trace().unwrap();
        assert_eq!(trace.len() as u64, c.instructions);
        let frep_issued: Vec<_> = trace.iter().filter(|e| e.in_frep).collect();
        assert_eq!(frep_issued.len(), 4);
        assert_eq!(frep_issued.len() as u64, c.frep_fpu_instrs);
        assert_eq!(c.fpu_instrs, 4);
        // Sequencer replays issue back-to-back on the FPU timeline.
        for pair in frep_issued.windows(2) {
            assert_eq!(pair[1].issue, pair[0].issue + 1);
        }
        // The next call restarts the (drained) trace.
        let c2 = m.call(&prog, "f", &[]).unwrap();
        assert_eq!(m.trace().unwrap().len() as u64, c2.instructions);
    }

    #[test]
    fn mover_pop_counts_match_counters() {
        let src = format!(
            "\
f:
    li t1, 7
    scfgwi t1, {b0}
    li t1, 8
    scfgwi t1, {s0}
    li t1, {base}
    scfgwi t1, {rptr}
    csrrsi zero, 0x7c0, 1
    li t0, 3
    frep.o t0, 1, 0, 0
    fadd.d ft3, ft0, ft0
    csrrci zero, 0x7c0, 1
    ret
",
            b0 = SsrCfgReg::Bound(0).scfg_imm(mlb_isa::SsrDataMover::new(0)),
            s0 = SsrCfgReg::Stride(0).scfg_imm(mlb_isa::SsrDataMover::new(0)),
            rptr = SsrCfgReg::RPtr(0).scfg_imm(mlb_isa::SsrDataMover::new(0)),
            base = TCDM_BASE,
        );
        // 4 fadds each pop ft0 twice: 8 reads from mover 0.
        let prog = assemble(&src).unwrap();
        let mut m = Machine::new();
        m.write_f64_slice(TCDM_BASE, &[1.0; 8]).unwrap();
        let c = m.call(&prog, "f", &[]).unwrap();
        let pops = m.ssr_pop_counts();
        let total_reads: u64 = pops.iter().map(|&(r, _)| r).sum();
        let total_writes: u64 = pops.iter().map(|&(_, w)| w).sum();
        assert_eq!(total_reads, c.ssr_reads);
        assert_eq!(total_writes, c.ssr_writes);
        assert_eq!(pops[0].0, 8);
        assert_eq!(pops[1], (0, 0));
    }

    #[test]
    fn frep_overlaps_integer_work() {
        // The same FP work with and without frep: with frep the integer
        // core does not dispatch each iteration, so the independent-chain
        // version is at least as fast and the FPU stays busier.
        let with_frep = "\
f:
    li t0, 99
    frep.o t0, 1, 0, 0
    fadd.d ft3, ft4, ft5
    ret
";
        let without = format!("f:\n{}    ret\n", "    fadd.d ft3, ft4, ft5\n".repeat(100));
        let (_m1, c1) = run(with_frep, "f", &[], |_| {});
        let (_m2, c2) = run(&without, "f", &[], |_| {});
        assert_eq!(c1.flops, c2.flops);
        assert!(c1.cycles <= c2.cycles, "frep {} vs scalar {}", c1.cycles, c2.cycles);
        assert!(c1.fpu_utilization() > 0.9, "util = {}", c1.fpu_utilization());
    }
}
