//! Deterministic cluster-pipelining estimate for batched layer graphs.
//!
//! A batched inference run executes the same stage chain once per
//! request. On a cluster with double-buffered intermediates, request
//! `b+1` can enter stage `s` while request `b` occupies stage `s+1`, so
//! the steady-state makespan is bounded by the slowest stage rather
//! than the whole chain. This module turns measured per-stage cycle
//! counts into that classic pipeline model:
//!
//! `pipelined = sum(stages) + (batch - 1) * max(stages)`
//!
//! The numbers are a model, not a measurement — the simulator executes
//! stages back to back — but they are deterministic functions of
//! measured counters, so the bench gate can regress on them.

/// Pipelining estimate derived from per-stage cycle measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineEstimate {
    /// Cycles for one request through every stage (sum of stages).
    pub fill_cycles: u64,
    /// Cycles of the slowest stage (the steady-state initiation
    /// interval).
    pub bottleneck_cycles: u64,
    /// Back-to-back execution of the whole batch (no overlap).
    pub sequential_cycles: u64,
    /// Overlapped makespan: fill the pipeline once, then one request
    /// completes every bottleneck interval.
    pub pipelined_cycles: u64,
}

impl PipelineEstimate {
    /// Sequential-over-pipelined speedup (1.0 when nothing overlaps).
    pub fn overlap_speedup(&self) -> f64 {
        if self.pipelined_cycles == 0 {
            return 1.0;
        }
        self.sequential_cycles as f64 / self.pipelined_cycles as f64
    }
}

/// Computes the pipeline model for `batch` requests over stages with
/// the given per-request cycle counts. Empty stages or a zero batch
/// yield an all-zero estimate.
pub fn pipeline_estimate(stage_cycles: &[u64], batch: u64) -> PipelineEstimate {
    let fill: u64 = stage_cycles.iter().sum();
    let bottleneck = stage_cycles.iter().copied().max().unwrap_or(0);
    if batch == 0 {
        return PipelineEstimate {
            fill_cycles: fill,
            bottleneck_cycles: bottleneck,
            sequential_cycles: 0,
            pipelined_cycles: 0,
        };
    }
    PipelineEstimate {
        fill_cycles: fill,
        bottleneck_cycles: bottleneck,
        sequential_cycles: fill * batch,
        pipelined_cycles: fill + (batch - 1) * bottleneck,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_request_has_no_overlap() {
        let e = pipeline_estimate(&[100, 300, 200], 1);
        assert_eq!(e.fill_cycles, 600);
        assert_eq!(e.bottleneck_cycles, 300);
        assert_eq!(e.sequential_cycles, 600);
        assert_eq!(e.pipelined_cycles, 600);
        assert_eq!(e.overlap_speedup(), 1.0);
    }

    #[test]
    fn batch_amortizes_to_the_bottleneck() {
        let e = pipeline_estimate(&[100, 300, 200], 8);
        assert_eq!(e.sequential_cycles, 4800);
        assert_eq!(e.pipelined_cycles, 600 + 7 * 300);
        assert!(e.overlap_speedup() > 1.7, "{}", e.overlap_speedup());
    }

    #[test]
    fn degenerate_inputs_are_total() {
        let e = pipeline_estimate(&[], 4);
        assert_eq!(e.pipelined_cycles, 0);
        assert_eq!(e.overlap_speedup(), 1.0);
        let e = pipeline_estimate(&[10], 0);
        assert_eq!(e.sequential_cycles, 0);
        assert_eq!(e.fill_cycles, 10);
    }

    #[test]
    fn balanced_stages_approach_stage_count_speedup() {
        let e = pipeline_estimate(&[100, 100, 100, 100], 64);
        // 4 stages, large batch: speedup tends to 4.
        assert!(e.overlap_speedup() > 3.5, "{}", e.overlap_speedup());
    }
}
