//! Assembly emission.
//!
//! Prints a fully register-allocated, control-flow-lowered module as
//! RISC-V assembly text. The IR is walked in order and each operation
//! prints according to its own convention (Section 3.1: "assembly is
//! printed using an interface-based design").
//!
//! Accepted operations: everything in `rv`, `rv_cf` branches between the
//! blocks of an `rv_func.func` body, and `rv_snitch.frep_outer` regions
//! (hardware loops print inline). Structured `rv_scf` loops and
//! `snitch_stream.streaming_region`s must have been lowered before
//! emission.

use std::fmt;
use std::fmt::Write;

use mlb_ir::{Attribute, BlockId, Context, Location, OpId, Type, ValueId};

use crate::{rv, rv_cf, rv_func, rv_snitch, snitch_stream};

/// Assembly text under construction, with a parallel record of the
/// [`Location`] effective when each line was written. The record is what
/// [`emit_module_with_source_map`] folds into a per-instruction source
/// map after non-instruction lines (directives, labels) are filtered out.
struct AsmText {
    text: String,
    line_locs: Vec<Location>,
    cur: Location,
}

impl AsmText {
    fn new() -> AsmText {
        AsmText { text: String::new(), line_locs: Vec::new(), cur: Location::Unknown }
    }

    /// Sets the provenance attached to subsequently completed lines,
    /// returning the previous one so callers can restore it.
    fn set_loc(&mut self, loc: Location) -> Location {
        std::mem::replace(&mut self.cur, loc)
    }
}

impl Write for AsmText {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        for b in s.bytes() {
            if b == b'\n' {
                self.line_locs.push(self.cur.clone());
            }
        }
        self.text.push_str(s);
        Ok(())
    }
}

/// Error produced during assembly emission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmitError {
    /// Description of what could not be emitted.
    pub message: String,
}

impl fmt::Display for EmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "emit error: {}", self.message)
    }
}

impl std::error::Error for EmitError {}

fn err(message: impl Into<String>) -> EmitError {
    EmitError { message: message.into() }
}

/// Emits a whole module (every `rv_func.func` in it) as assembly text.
///
/// # Errors
///
/// Fails on unallocated registers or operations that have no assembly
/// form (structured loops, streaming regions).
pub fn emit_module(ctx: &Context, module: OpId) -> Result<String, EmitError> {
    emit_module_with_source_map(ctx, module).map(|(text, _)| text)
}

/// Emits a whole module like [`emit_module`] and additionally returns a
/// per-instruction source map: entry `i` is the [`Location`] effective
/// at the operation that printed instruction index `i`, where indices
/// count exactly the lines the `mlb-sim` assembler decodes (directives,
/// labels, comments and blank lines excluded).
///
/// Operations without their own provenance fall back to the nearest
/// enclosing operation's location ([`Context::effective_loc`]), so when
/// the module came from `parse_module_with_locations` every instruction
/// maps to a known location.
///
/// # Errors
///
/// Fails exactly as [`emit_module`] does.
pub fn emit_module_with_source_map(
    ctx: &Context,
    module: OpId,
) -> Result<(String, Vec<Location>), EmitError> {
    let mut out = AsmText::new();
    let _ = out.write_str(".text\n");
    for &block in ctx.region_blocks(ctx.op(module).regions[0]) {
        for &op in ctx.block_ops(block) {
            if ctx.op(op).name == rv_func::FUNC {
                emit_function(ctx, op, &mut out)?;
            }
        }
    }
    let map = instruction_locations(&out.text, &out.line_locs);
    Ok((out.text, map))
}

/// Filters the per-line location record down to instruction lines,
/// classifying lines exactly as the `mlb-sim` assembler does so that
/// source-map indices coincide with decoded instruction indices.
fn instruction_locations(text: &str, line_locs: &[Location]) -> Vec<Location> {
    let mut map = Vec::new();
    for (raw, loc) in text.lines().zip(line_locs) {
        let line = raw.split('#').next().unwrap_or(raw);
        let line = line.split("//").next().unwrap_or(line);
        let line = line.trim();
        if line.is_empty() || line.ends_with(':') || line.starts_with('.') {
            continue;
        }
        map.push(loc.clone());
    }
    map
}

/// Emits a single `rv_func.func`.
fn emit_function(ctx: &Context, func: OpId, out: &mut AsmText) -> Result<(), EmitError> {
    let name = rv_func::symbol_name(ctx, func)
        .ok_or_else(|| err("function without a symbol name"))?
        .to_string();
    let _ = writeln!(out, ".globl {name}");
    let _ = writeln!(out, "{name}:");
    let blocks: Vec<BlockId> = ctx.region_blocks(ctx.op(func).regions[0]).to_vec();
    let label = |b: BlockId| -> String {
        let idx = blocks.iter().position(|&x| x == b).expect("successor outside function");
        format!(".L{name}_{idx}")
    };
    for (i, &block) in blocks.iter().enumerate() {
        if i > 0 {
            let _ = writeln!(out, "{}:", label(block));
        }
        let next = blocks.get(i + 1).copied();
        for &op in ctx.block_ops(block) {
            emit_op(ctx, op, out, &label, next)?;
        }
    }
    Ok(())
}

fn int_reg_of(ctx: &Context, v: ValueId) -> Result<&'static str, EmitError> {
    match ctx.value_type(v) {
        Type::IntRegister(Some(r)) => Ok(r.abi_name()),
        other => Err(err(format!("expected allocated integer register, got {other}"))),
    }
}

fn fp_reg_of(ctx: &Context, v: ValueId) -> Result<&'static str, EmitError> {
    match ctx.value_type(v) {
        Type::FpRegister(Some(r)) => Ok(r.abi_name()),
        other => Err(err(format!("expected allocated FP register, got {other}"))),
    }
}

fn imm_of(ctx: &Context, op: OpId) -> Result<i64, EmitError> {
    ctx.op(op)
        .attr("imm")
        .and_then(Attribute::as_int)
        .ok_or_else(|| err(format!("{} missing imm", ctx.op(op).name)))
}

fn emit_op(
    ctx: &Context,
    op: OpId,
    out: &mut AsmText,
    label: &dyn Fn(BlockId) -> String,
    fallthrough: Option<BlockId>,
) -> Result<(), EmitError> {
    let saved = out.set_loc(ctx.effective_loc(op).clone());
    let o = ctx.op(op);
    let name = o.name.as_str();
    let mn = rv::mnemonic(name);
    match name {
        rv::GET_REGISTER => {} // SSA bridge only; nothing to print.
        rv::LI => {
            let _ =
                writeln!(out, "    li {}, {}", int_reg_of(ctx, o.results[0])?, imm_of(ctx, op)?);
        }
        rv::MV => {
            let rd = int_reg_of(ctx, o.results[0])?;
            let rs = int_reg_of(ctx, o.operands[0])?;
            if rd != rs {
                let _ = writeln!(out, "    mv {rd}, {rs}");
            }
        }
        rv::FMV_D => {
            let rd = fp_reg_of(ctx, o.results[0])?;
            let rs = fp_reg_of(ctx, o.operands[0])?;
            if rd != rs {
                let _ = writeln!(out, "    fmv.d {rd}, {rs}");
            }
        }
        _ if rv::INT_BINARY.contains(&name) => {
            let _ = writeln!(
                out,
                "    {mn} {}, {}, {}",
                int_reg_of(ctx, o.results[0])?,
                int_reg_of(ctx, o.operands[0])?,
                int_reg_of(ctx, o.operands[1])?
            );
        }
        _ if rv::INT_IMM.contains(&name) => {
            let _ = writeln!(
                out,
                "    {mn} {}, {}, {}",
                int_reg_of(ctx, o.results[0])?,
                int_reg_of(ctx, o.operands[0])?,
                imm_of(ctx, op)?
            );
        }
        rv::LW => {
            let _ = writeln!(
                out,
                "    lw {}, {}({})",
                int_reg_of(ctx, o.results[0])?,
                imm_of(ctx, op)?,
                int_reg_of(ctx, o.operands[0])?
            );
        }
        rv::SW => {
            let _ = writeln!(
                out,
                "    sw {}, {}({})",
                int_reg_of(ctx, o.operands[0])?,
                imm_of(ctx, op)?,
                int_reg_of(ctx, o.operands[1])?
            );
        }
        _ if rv::FP_LOADS.contains(&name) => {
            let _ = writeln!(
                out,
                "    {mn} {}, {}({})",
                fp_reg_of(ctx, o.results[0])?,
                imm_of(ctx, op)?,
                int_reg_of(ctx, o.operands[0])?
            );
        }
        _ if rv::FP_STORES.contains(&name) => {
            let _ = writeln!(
                out,
                "    {mn} {}, {}({})",
                fp_reg_of(ctx, o.operands[0])?,
                imm_of(ctx, op)?,
                int_reg_of(ctx, o.operands[1])?
            );
        }
        _ if rv::FP_BINARY.contains(&name) || rv_snitch::SIMD_BINARY.contains(&name) => {
            let _ = writeln!(
                out,
                "    {mn} {}, {}, {}",
                fp_reg_of(ctx, o.results[0])?,
                fp_reg_of(ctx, o.operands[0])?,
                fp_reg_of(ctx, o.operands[1])?
            );
        }
        _ if rv::FP_TERNARY.contains(&name) => {
            let _ = writeln!(
                out,
                "    {mn} {}, {}, {}, {}",
                fp_reg_of(ctx, o.results[0])?,
                fp_reg_of(ctx, o.operands[0])?,
                fp_reg_of(ctx, o.operands[1])?,
                fp_reg_of(ctx, o.operands[2])?
            );
        }
        rv_snitch::VFMAC_S => {
            // vfmac.s rd, rs1, rs2 — rd is both source and destination;
            // the allocator guarantees operand 2 and the result share a
            // register.
            let rd = fp_reg_of(ctx, o.results[0])?;
            let acc = fp_reg_of(ctx, o.operands[2])?;
            if rd != acc {
                return Err(err("vfmac.s accumulator not allocated in place"));
            }
            let _ = writeln!(
                out,
                "    vfmac.s {rd}, {}, {}",
                fp_reg_of(ctx, o.operands[0])?,
                fp_reg_of(ctx, o.operands[1])?
            );
        }
        rv_snitch::VFSUM_S => {
            let rd = fp_reg_of(ctx, o.results[0])?;
            let acc = fp_reg_of(ctx, o.operands[1])?;
            if rd != acc {
                return Err(err("vfsum.s accumulator not allocated in place"));
            }
            let _ = writeln!(out, "    vfsum.s {rd}, {}", fp_reg_of(ctx, o.operands[0])?);
        }
        rv_snitch::VFCPKA_S_S => {
            let _ = writeln!(
                out,
                "    vfcpka.s.s {}, {}, {}",
                fp_reg_of(ctx, o.results[0])?,
                fp_reg_of(ctx, o.operands[0])?,
                fp_reg_of(ctx, o.operands[1])?
            );
        }
        rv::FCVT_D_W | rv::FCVT_S_W => {
            let _ = writeln!(
                out,
                "    {mn} {}, {}",
                fp_reg_of(ctx, o.results[0])?,
                int_reg_of(ctx, o.operands[0])?
            );
        }
        rv::CSRRSI | rv::CSRRCI => {
            let csr =
                o.attr("csr").and_then(Attribute::as_int).ok_or_else(|| err("missing csr"))?;
            let _ = writeln!(out, "    {mn} zero, {csr:#x}, {}", imm_of(ctx, op)?);
        }
        rv_snitch::HARTID => {
            let _ = writeln!(out, "    csrr {}, mhartid", int_reg_of(ctx, o.results[0])?);
        }
        rv_snitch::BARRIER => {
            let _ = writeln!(out, "    csrr zero, {:#x}", mlb_isa::CSR_BARRIER);
        }
        rv_snitch::SSR_ENABLE => {
            let _ = writeln!(out, "    csrrsi zero, {:#x}, 1", mlb_isa::CSR_SSR);
        }
        rv_snitch::SSR_DISABLE => {
            let _ = writeln!(out, "    csrrci zero, {:#x}, 1", mlb_isa::CSR_SSR);
        }
        rv_snitch::SCFGWI => {
            let _ = writeln!(
                out,
                "    scfgwi {}, {}",
                int_reg_of(ctx, o.operands[0])?,
                imm_of(ctx, op)?
            );
        }
        rv_snitch::FREP_OUTER => {
            let frep = rv_snitch::FrepOp(op);
            let count = int_reg_of(ctx, frep.count(ctx))?;
            let n = frep.num_instructions(ctx);
            // Shared init values that were not unified into the carried
            // register chain transfer on entry.
            let args: Vec<ValueId> = frep.iter_args(ctx).to_vec();
            for (&init, &arg) in frep.iter_inits(ctx).iter().zip(&args) {
                let rd = fp_reg_of(ctx, arg)?;
                let rs = fp_reg_of(ctx, init)?;
                if rd != rs {
                    let _ = writeln!(out, "    fmv.d {rd}, {rs}");
                }
            }
            let _ = writeln!(out, "    frep.o {count}, {n}, 0, 0");
            let body = frep.body(ctx);
            let ops = ctx.block_ops(body);
            for &inner in &ops[..ops.len() - 1] {
                emit_op(ctx, inner, out, label, None)?;
            }
        }
        crate::rv_scf::YIELD => {} // Carried registers already match.
        snitch_stream::WRITE => {
            let rd = fp_reg_of(ctx, o.operands[1])?;
            let rs = fp_reg_of(ctx, o.operands[0])?;
            if rd != rs {
                let _ = writeln!(out, "    fmv.d {rd}, {rs}");
            }
        }
        rv_func::RET => {
            let _ = writeln!(out, "    ret");
        }
        rv_cf::J => {
            let target = o.successors[0];
            if fallthrough != Some(target) {
                let _ = writeln!(out, "    j {}", label(target));
            }
        }
        _ if rv_cf::CONDITIONAL_BRANCHES.contains(&name) => {
            let taken = o.successors[0];
            let other = o.successors[1];
            let _ = writeln!(
                out,
                "    {mn} {}, {}, {}",
                int_reg_of(ctx, o.operands[0])?,
                int_reg_of(ctx, o.operands[1])?,
                label(taken)
            );
            if fallthrough != Some(other) {
                let _ = writeln!(out, "    j {}", label(other));
            }
        }
        other => return Err(err(format!("operation {other} has no assembly form"))),
    }
    out.cur = saved;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{rv, rv_func};
    use mlb_ir::OpSpec;
    use mlb_isa::{FpReg, IntReg};

    fn alloc_fp(ctx: &mut Context, v: ValueId, r: FpReg) {
        ctx.set_value_type(v, Type::FpRegister(Some(r)));
    }

    fn alloc_int(ctx: &mut Context, v: ValueId, r: IntReg) {
        ctx.set_value_type(v, Type::IntRegister(Some(r)));
    }

    #[test]
    fn emit_simple_function() {
        let mut ctx = Context::new();
        let module = ctx.create_detached_op(OpSpec::new("builtin.module").regions(1));
        let top = ctx.create_block(ctx.op(module).regions[0], vec![]);
        let (_f, entry) = rv_func::build_func(&mut ctx, top, "axpy", &[rv_func::AbiArg::Int]);
        let base = ctx.block_args(entry)[0];
        let x = rv::fp_load(&mut ctx, entry, rv::FLD, base, 0);
        let y = rv::fp_load(&mut ctx, entry, rv::FLD, base, 8);
        let s = rv::fp_ternary(&mut ctx, entry, rv::FMADD_D, x, y, y);
        rv::fp_store(&mut ctx, entry, rv::FSD, s, base, 16);
        rv_func::build_ret(&mut ctx, entry);
        alloc_fp(&mut ctx, x, FpReg::ft(3));
        alloc_fp(&mut ctx, y, FpReg::ft(4));
        alloc_fp(&mut ctx, s, FpReg::ft(5));
        let asm = emit_module(&ctx, module).unwrap();
        let expected = "\
.text
.globl axpy
axpy:
    fld ft3, 0(a0)
    fld ft4, 8(a0)
    fmadd.d ft5, ft3, ft4, ft4
    fsd ft5, 16(a0)
    ret
";
        assert_eq!(asm, expected);
    }

    #[test]
    fn emit_branches_with_labels() {
        let mut ctx = Context::new();
        let module = ctx.create_detached_op(OpSpec::new("builtin.module").regions(1));
        let top = ctx.create_block(ctx.op(module).regions[0], vec![]);
        let (f, entry) = rv_func::build_func(&mut ctx, top, "loop", &[rv_func::AbiArg::Int]);
        let region = ctx.op(f).regions[0];
        let body = ctx.create_block(region, vec![]);
        let exit = ctx.create_block(region, vec![]);
        let n = ctx.block_args(entry)[0];
        let i = rv::li(&mut ctx, entry, 0);
        alloc_int(&mut ctx, i, IntReg::t(0));
        crate::rv_cf::build_j(&mut ctx, entry, body);
        let i2 = rv::int_imm(&mut ctx, body, rv::ADDI, i, 1);
        alloc_int(&mut ctx, i2, IntReg::t(0));
        crate::rv_cf::build_branch(&mut ctx, body, crate::rv_cf::BLT, i2, n, body, exit);
        rv_func::build_ret(&mut ctx, exit);
        let asm = emit_module(&ctx, module).unwrap();
        let expected = "\
.text
.globl loop
loop:
    li t0, 0
.Lloop_1:
    addi t0, t0, 1
    blt t0, a0, .Lloop_1
.Lloop_2:
    ret
";
        assert_eq!(asm, expected);
    }

    #[test]
    fn emit_frep_inline() {
        let mut ctx = Context::new();
        let module = ctx.create_detached_op(OpSpec::new("builtin.module").regions(1));
        let top = ctx.create_block(ctx.op(module).regions[0], vec![]);
        let (_f, entry) = rv_func::build_func(&mut ctx, top, "dot", &[]);
        let count = rv::li(&mut ctx, entry, 200);
        alloc_int(&mut ctx, count, IntReg::t(0));
        let ft0 = rv::get_register(&mut ctx, entry, Type::FpRegister(Some(FpReg::ft(0))));
        let ft1 = rv::get_register(&mut ctx, entry, Type::FpRegister(Some(FpReg::ft(1))));
        let acc0 = rv::get_register(&mut ctx, entry, Type::FpRegister(Some(FpReg::ft(3))));
        let frep =
            crate::rv_snitch::build_frep(&mut ctx, entry, count, vec![acc0], |ctx, body, args| {
                vec![rv::fp_ternary(ctx, body, rv::FMADD_D, ft0, ft1, args[0])]
            });
        // Allocate the carried value chain to ft3 throughout.
        let arg = frep.iter_args(&ctx)[0];
        alloc_fp(&mut ctx, arg, FpReg::ft(3));
        let yielded = ctx.op(frep.yield_op(&ctx)).operands[0];
        alloc_fp(&mut ctx, yielded, FpReg::ft(3));
        let res = ctx.op(frep.0).results[0];
        alloc_fp(&mut ctx, res, FpReg::ft(3));
        rv_func::build_ret(&mut ctx, entry);
        let asm = emit_module(&ctx, module).unwrap();
        assert!(asm.contains("frep.o t0, 1, 0, 0"), "{asm}");
        assert!(asm.contains("fmadd.d ft3, ft0, ft1, ft3"), "{asm}");
    }

    #[test]
    fn unallocated_register_is_an_error() {
        let mut ctx = Context::new();
        let module = ctx.create_detached_op(OpSpec::new("builtin.module").regions(1));
        let top = ctx.create_block(ctx.op(module).regions[0], vec![]);
        let (_f, entry) = rv_func::build_func(&mut ctx, top, "f", &[]);
        let _x = rv::li(&mut ctx, entry, 3); // left unallocated
        rv_func::build_ret(&mut ctx, entry);
        let e = emit_module(&ctx, module).unwrap_err();
        assert!(e.message.contains("allocated"), "{e}");
    }

    #[test]
    fn redundant_moves_are_elided() {
        let mut ctx = Context::new();
        let module = ctx.create_detached_op(OpSpec::new("builtin.module").regions(1));
        let top = ctx.create_block(ctx.op(module).regions[0], vec![]);
        let (_f, entry) = rv_func::build_func(&mut ctx, top, "f", &[rv_func::AbiArg::Int]);
        let a = ctx.block_args(entry)[0];
        let op = ctx.append_op(
            entry,
            OpSpec::new(rv::MV)
                .operands(vec![a])
                .results(vec![Type::IntRegister(Some(IntReg::a(0)))]),
        );
        let _ = op;
        rv_func::build_ret(&mut ctx, entry);
        let asm = emit_module(&ctx, module).unwrap();
        assert!(!asm.contains("mv"), "{asm}");
    }
}
