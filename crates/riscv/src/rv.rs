//! The `rv` dialect: RISC-V assembly instructions as SSA operations.
//!
//! Each operation denotes one assembly instruction; source and destination
//! registers correspond to operands and results (Section 3.1, Figure 6).
//! Values carry register *types* ([`mlb_ir::Type::IntRegister`] /
//! [`mlb_ir::Type::FpRegister`]), either unallocated (`!rv.reg`) or pinned
//! to a physical register (`!rv.reg<a0>`); register allocation refines the
//! former into the latter in place.
//!
//! The assembly mnemonic of every instruction op is its name without the
//! dialect prefix (`rv.fmadd.d` prints as `fmadd.d`).

use mlb_ir::{
    Attribute, BlockId, Context, DialectRegistry, OpId, OpInfo, OpSpec, Type, ValueId, VerifyError,
};

// ----- integer computational instructions -----------------------------------

/// `rv.add`: integer addition.
pub const ADD: &str = "rv.add";
/// `rv.sub`: integer subtraction.
pub const SUB: &str = "rv.sub";
/// `rv.mul`: integer multiplication (M extension).
pub const MUL: &str = "rv.mul";
/// `rv.addi`: add immediate (`imm` attribute).
pub const ADDI: &str = "rv.addi";
/// `rv.slli`: shift left logical immediate (`imm` attribute).
pub const SLLI: &str = "rv.slli";
/// `rv.li`: load immediate pseudo-instruction (`imm` attribute).
pub const LI: &str = "rv.li";
/// `rv.mv`: register move pseudo-instruction.
pub const MV: &str = "rv.mv";

// ----- memory instructions ---------------------------------------------------

/// `rv.lw`: load 32-bit word. Operands: base; `imm` attribute.
pub const LW: &str = "rv.lw";
/// `rv.sw`: store 32-bit word. Operands: value, base; `imm` attribute.
pub const SW: &str = "rv.sw";
/// `rv.fld`: load double to FP register.
pub const FLD: &str = "rv.fld";
/// `rv.fsd`: store double from FP register.
pub const FSD: &str = "rv.fsd";
/// `rv.flw`: load single to FP register.
pub const FLW: &str = "rv.flw";
/// `rv.fsw`: store single from FP register.
pub const FSW: &str = "rv.fsw";

// ----- floating-point computational instructions -----------------------------

/// `rv.fadd.d`: double-precision addition.
pub const FADD_D: &str = "rv.fadd.d";
/// `rv.fsub.d`: double-precision subtraction.
pub const FSUB_D: &str = "rv.fsub.d";
/// `rv.fmul.d`: double-precision multiplication.
pub const FMUL_D: &str = "rv.fmul.d";
/// `rv.fdiv.d`: double-precision division.
pub const FDIV_D: &str = "rv.fdiv.d";
/// `rv.fmax.d`: double-precision maximum.
pub const FMAX_D: &str = "rv.fmax.d";
/// `rv.fmadd.d`: double-precision fused multiply-add (2 FLOPs).
pub const FMADD_D: &str = "rv.fmadd.d";
/// `rv.fadd.s`: single-precision addition.
pub const FADD_S: &str = "rv.fadd.s";
/// `rv.fsub.s`: single-precision subtraction.
pub const FSUB_S: &str = "rv.fsub.s";
/// `rv.fmul.s`: single-precision multiplication.
pub const FMUL_S: &str = "rv.fmul.s";
/// `rv.fmax.s`: single-precision maximum.
pub const FMAX_S: &str = "rv.fmax.s";
/// `rv.fmadd.s`: single-precision fused multiply-add.
pub const FMADD_S: &str = "rv.fmadd.s";
/// `rv.fmv.d`: FP register move (prints `fmv.d`).
pub const FMV_D: &str = "rv.fmv.d";
/// `rv.fcvt.d.w`: convert integer register to double.
pub const FCVT_D_W: &str = "rv.fcvt.d.w";
/// `rv.fcvt.s.w`: convert integer register to single.
pub const FCVT_S_W: &str = "rv.fcvt.s.w";

// ----- system ----------------------------------------------------------------

/// `rv.csrrsi`: CSR set-bits immediate (`csr`, `imm` attributes).
pub const CSRRSI: &str = "rv.csrrsi";
/// `rv.csrrci`: CSR clear-bits immediate (`csr`, `imm` attributes).
pub const CSRRCI: &str = "rv.csrrci";

// ----- SSA bridging (not printed) ---------------------------------------------

/// `rv.get_register`: materializes an SSA value for a pre-assigned
/// register (e.g. an ABI argument register). Not printed in assembly.
pub const GET_REGISTER: &str = "rv.get_register";

/// Two-FP-source, one-FP-destination instructions.
pub const FP_BINARY: [&str; 9] =
    [FADD_D, FSUB_D, FMUL_D, FDIV_D, FMAX_D, FADD_S, FSUB_S, FMUL_S, FMAX_S];
/// Three-FP-source fused instructions.
pub const FP_TERNARY: [&str; 2] = [FMADD_D, FMADD_S];
/// Integer register-register instructions.
pub const INT_BINARY: [&str; 3] = [ADD, SUB, MUL];
/// Integer register-immediate instructions.
pub const INT_IMM: [&str; 2] = [ADDI, SLLI];
/// FP load instructions.
pub const FP_LOADS: [&str; 2] = [FLD, FLW];
/// FP store instructions.
pub const FP_STORES: [&str; 2] = [FSD, FSW];

/// Whether `name` is an instruction executed by the FPU (arithmetic on FP
/// registers, excluding loads/stores). Used by FREP conversion and the
/// utilization model.
pub fn is_fpu_op(name: &str) -> bool {
    FP_BINARY.contains(&name)
        || FP_TERNARY.contains(&name)
        || name == FMV_D
        || name == FCVT_D_W
        || name == FCVT_S_W
        || name.starts_with("rv_snitch.v")
        // A stream write prints as `fmv.d` into the stream register.
        || name == "snitch_stream.write"
}

/// Whether `name` is a memory load.
pub fn is_load(name: &str) -> bool {
    name == LW || FP_LOADS.contains(&name)
}

/// Whether `name` is a memory store.
pub fn is_store(name: &str) -> bool {
    name == SW || FP_STORES.contains(&name)
}

/// The assembly mnemonic for an `rv`/`rv_snitch` instruction op name.
pub fn mnemonic(name: &str) -> &str {
    name.split_once('.').map(|(_, m)| m).unwrap_or(name)
}

/// Shorthand for the unallocated integer register type.
pub fn reg() -> Type {
    Type::IntRegister(None)
}

/// The compile-time integer value of `v`, when it comes from `rv.li` or
/// from `rv.get_register` of the hard-wired `zero` register.
pub fn constant_int_value(ctx: &Context, v: ValueId) -> Option<i64> {
    let def = ctx.defining_op(v)?;
    let op = ctx.op(def);
    match op.name.as_str() {
        LI => op.attr("imm").and_then(Attribute::as_int),
        GET_REGISTER => {
            if *ctx.value_type(v) == Type::IntRegister(Some(mlb_isa::IntReg::ZERO)) {
                Some(0)
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Shorthand for the unallocated FP register type.
pub fn freg() -> Type {
    Type::FpRegister(None)
}

/// Registers the `rv` dialect.
pub fn register(registry: &mut DialectRegistry) {
    for name in INT_BINARY {
        registry.register(OpInfo::new(name).pure().with_verify(verify_int_binary));
    }
    for name in INT_IMM {
        registry.register(OpInfo::new(name).pure().with_verify(verify_int_unary_imm));
    }
    registry.register(OpInfo::new(LI).pure().with_verify(verify_li));
    registry.register(OpInfo::new(MV).pure().with_verify(verify_mv));
    registry.register(OpInfo::new(LW).with_verify(verify_load_int));
    registry.register(OpInfo::new(SW).with_verify(verify_store_int));
    for name in FP_LOADS {
        registry.register(OpInfo::new(name).with_verify(verify_load_fp));
    }
    for name in FP_STORES {
        registry.register(OpInfo::new(name).with_verify(verify_store_fp));
    }
    for name in FP_BINARY {
        registry.register(OpInfo::new(name).pure().with_verify(verify_fp_binary));
    }
    for name in FP_TERNARY {
        registry.register(OpInfo::new(name).pure().with_verify(verify_fp_ternary));
    }
    registry.register(OpInfo::new(FMV_D).pure().with_verify(verify_fmv));
    registry.register(OpInfo::new(FCVT_D_W).pure().with_verify(verify_fcvt));
    registry.register(OpInfo::new(FCVT_S_W).pure().with_verify(verify_fcvt));
    registry.register(OpInfo::new(CSRRSI).with_verify(verify_csr));
    registry.register(OpInfo::new(CSRRCI).with_verify(verify_csr));
    registry.register(OpInfo::new(GET_REGISTER).with_verify(verify_get_register));
}

fn is_int_reg(ty: &Type) -> bool {
    matches!(ty, Type::IntRegister(_))
}

fn is_fp_reg(ty: &Type) -> bool {
    matches!(ty, Type::FpRegister(_))
}

fn check_shape(
    ctx: &Context,
    op: OpId,
    operands: &[fn(&Type) -> bool],
    results: &[fn(&Type) -> bool],
) -> Result<(), VerifyError> {
    let o = ctx.op(op);
    if o.operands.len() != operands.len() {
        return Err(VerifyError::new(
            ctx,
            op,
            format!("expected {} operands, got {}", operands.len(), o.operands.len()),
        ));
    }
    if o.results.len() != results.len() {
        return Err(VerifyError::new(
            ctx,
            op,
            format!("expected {} results, got {}", results.len(), o.results.len()),
        ));
    }
    for (i, (&v, check)) in o.operands.iter().zip(operands).enumerate() {
        if !check(ctx.value_type(v)) {
            return Err(VerifyError::new(ctx, op, format!("operand {i} has wrong register class")));
        }
    }
    for (i, (&v, check)) in o.results.iter().zip(results).enumerate() {
        if !check(ctx.value_type(v)) {
            return Err(VerifyError::new(ctx, op, format!("result {i} has wrong register class")));
        }
    }
    Ok(())
}

fn require_imm(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    match ctx.op(op).attr("imm") {
        Some(Attribute::Int(_)) => Ok(()),
        _ => Err(VerifyError::new(ctx, op, "missing integer `imm` attribute")),
    }
}

fn verify_int_binary(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    check_shape(ctx, op, &[is_int_reg, is_int_reg], &[is_int_reg])
}

fn verify_int_unary_imm(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    check_shape(ctx, op, &[is_int_reg], &[is_int_reg])?;
    require_imm(ctx, op)
}

fn verify_li(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    check_shape(ctx, op, &[], &[is_int_reg])?;
    require_imm(ctx, op)
}

fn verify_mv(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    check_shape(ctx, op, &[is_int_reg], &[is_int_reg])
}

fn verify_load_int(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    check_shape(ctx, op, &[is_int_reg], &[is_int_reg])?;
    require_imm(ctx, op)
}

fn verify_store_int(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    check_shape(ctx, op, &[is_int_reg, is_int_reg], &[])?;
    require_imm(ctx, op)
}

fn verify_load_fp(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    check_shape(ctx, op, &[is_int_reg], &[is_fp_reg])?;
    require_imm(ctx, op)
}

fn verify_store_fp(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    check_shape(ctx, op, &[is_fp_reg, is_int_reg], &[])?;
    require_imm(ctx, op)
}

fn verify_fp_binary(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    check_shape(ctx, op, &[is_fp_reg, is_fp_reg], &[is_fp_reg])
}

fn verify_fp_ternary(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    check_shape(ctx, op, &[is_fp_reg, is_fp_reg, is_fp_reg], &[is_fp_reg])
}

fn verify_fmv(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    check_shape(ctx, op, &[is_fp_reg], &[is_fp_reg])
}

fn verify_fcvt(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    check_shape(ctx, op, &[is_int_reg], &[is_fp_reg])
}

fn verify_csr(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    check_shape(ctx, op, &[], &[])?;
    match (ctx.op(op).attr("csr"), ctx.op(op).attr("imm")) {
        (Some(Attribute::Int(_)), Some(Attribute::Int(_))) => Ok(()),
        _ => Err(VerifyError::new(ctx, op, "missing `csr`/`imm` integer attributes")),
    }
}

fn verify_get_register(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    let o = ctx.op(op);
    if !o.operands.is_empty() || o.results.len() != 1 {
        return Err(VerifyError::new(ctx, op, "expected no operands and one result"));
    }
    if !ctx.value_type(o.results[0]).is_allocated_register() {
        return Err(VerifyError::new(ctx, op, "result must be an allocated register"));
    }
    Ok(())
}

// ----- builders --------------------------------------------------------------

/// Builds an integer register-register instruction.
pub fn int_binary(
    ctx: &mut Context,
    block: BlockId,
    name: &str,
    a: ValueId,
    b: ValueId,
) -> ValueId {
    let op = ctx.append_op(block, OpSpec::new(name).operands(vec![a, b]).results(vec![reg()]));
    ctx.op(op).results[0]
}

/// Builds an integer register-immediate instruction.
pub fn int_imm(ctx: &mut Context, block: BlockId, name: &str, a: ValueId, imm: i64) -> ValueId {
    let op = ctx.append_op(
        block,
        OpSpec::new(name).operands(vec![a]).attr("imm", Attribute::Int(imm)).results(vec![reg()]),
    );
    ctx.op(op).results[0]
}

/// Builds `rv.li` (load immediate).
pub fn li(ctx: &mut Context, block: BlockId, imm: i64) -> ValueId {
    let op =
        ctx.append_op(block, OpSpec::new(LI).attr("imm", Attribute::Int(imm)).results(vec![reg()]));
    ctx.op(op).results[0]
}

/// Builds an FP binary instruction.
pub fn fp_binary(ctx: &mut Context, block: BlockId, name: &str, a: ValueId, b: ValueId) -> ValueId {
    let op = ctx.append_op(block, OpSpec::new(name).operands(vec![a, b]).results(vec![freg()]));
    ctx.op(op).results[0]
}

/// Builds an FP fused ternary instruction (`rd = a * b + c`).
pub fn fp_ternary(
    ctx: &mut Context,
    block: BlockId,
    name: &str,
    a: ValueId,
    b: ValueId,
    c: ValueId,
) -> ValueId {
    let op = ctx.append_op(block, OpSpec::new(name).operands(vec![a, b, c]).results(vec![freg()]));
    ctx.op(op).results[0]
}

/// Builds an FP load (`name` is [`FLD`] or [`FLW`]).
pub fn fp_load(ctx: &mut Context, block: BlockId, name: &str, base: ValueId, imm: i64) -> ValueId {
    let op = ctx.append_op(
        block,
        OpSpec::new(name)
            .operands(vec![base])
            .attr("imm", Attribute::Int(imm))
            .results(vec![freg()]),
    );
    ctx.op(op).results[0]
}

/// Builds an FP store (`name` is [`FSD`] or [`FSW`]).
pub fn fp_store(
    ctx: &mut Context,
    block: BlockId,
    name: &str,
    value: ValueId,
    base: ValueId,
    imm: i64,
) -> OpId {
    ctx.append_op(
        block,
        OpSpec::new(name).operands(vec![value, base]).attr("imm", Attribute::Int(imm)),
    )
}

/// Builds `rv.get_register` for a pre-assigned register type.
///
/// # Panics
///
/// Panics if `ty` is not an allocated register type.
pub fn get_register(ctx: &mut Context, block: BlockId, ty: Type) -> ValueId {
    assert!(ty.is_allocated_register(), "get_register requires an allocated register type");
    let op = ctx.append_op(block, OpSpec::new(GET_REGISTER).results(vec![ty]));
    ctx.op(op).results[0]
}

/// Builds a CSR immediate instruction ([`CSRRSI`] or [`CSRRCI`]).
pub fn csr_imm(ctx: &mut Context, block: BlockId, name: &str, csr: u16, imm: i64) -> OpId {
    ctx.append_op(
        block,
        OpSpec::new(name).attr("csr", Attribute::Int(csr as i64)).attr("imm", Attribute::Int(imm)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlb_isa::{FpReg, IntReg};

    fn setup() -> (Context, DialectRegistry, OpId, BlockId) {
        let mut ctx = Context::new();
        let mut r = DialectRegistry::new();
        r.register(OpInfo::new("test.wrap"));
        register(&mut r);
        let m = ctx.create_detached_op(OpSpec::new("test.wrap").regions(1));
        let b = ctx.create_block(ctx.op(m).regions[0], vec![]);
        (ctx, r, m, b)
    }

    #[test]
    fn mnemonics_strip_dialect() {
        assert_eq!(mnemonic(FMADD_D), "fmadd.d");
        assert_eq!(mnemonic(ADD), "add");
        assert_eq!(mnemonic("rv_snitch.vfmac.s"), "vfmac.s");
    }

    #[test]
    fn classification() {
        assert!(is_fpu_op(FMADD_D));
        assert!(is_fpu_op(FMV_D));
        assert!(is_fpu_op("rv_snitch.vfadd.s"));
        assert!(!is_fpu_op(FLD));
        assert!(!is_fpu_op(ADD));
        assert!(is_load(FLD) && is_load(LW) && !is_load(SW));
        assert!(is_store(FSD) && is_store(SW) && !is_store(FLD));
    }

    #[test]
    fn build_and_verify_arithmetic() {
        let (mut ctx, r, m, b) = setup();
        let x = li(&mut ctx, b, 5);
        let y = int_imm(&mut ctx, b, ADDI, x, 3);
        let _z = int_binary(&mut ctx, b, MUL, x, y);
        let a = get_register(&mut ctx, b, Type::FpRegister(Some(FpReg::fa(0))));
        let p = fp_binary(&mut ctx, b, FMUL_D, a, a);
        let _q = fp_ternary(&mut ctx, b, FMADD_D, a, a, p);
        assert!(r.verify(&ctx, m).is_ok(), "{:?}", r.verify(&ctx, m));
    }

    #[test]
    fn build_and_verify_memory() {
        let (mut ctx, r, m, b) = setup();
        let base = get_register(&mut ctx, b, Type::IntRegister(Some(IntReg::a(0))));
        let v = fp_load(&mut ctx, b, FLD, base, 8);
        fp_store(&mut ctx, b, FSD, v, base, 16);
        let w = {
            let op = ctx.append_op(
                b,
                OpSpec::new(LW)
                    .operands(vec![base])
                    .attr("imm", Attribute::Int(0))
                    .results(vec![reg()]),
            );
            ctx.op(op).results[0]
        };
        ctx.append_op(b, OpSpec::new(SW).operands(vec![w, base]).attr("imm", Attribute::Int(4)));
        assert!(r.verify(&ctx, m).is_ok(), "{:?}", r.verify(&ctx, m));
    }

    #[test]
    fn verify_rejects_class_mismatch() {
        let (mut ctx, r, m, b) = setup();
        let x = li(&mut ctx, b, 1);
        // fadd.d on integer registers must fail.
        ctx.append_op(b, OpSpec::new(FADD_D).operands(vec![x, x]).results(vec![freg()]));
        assert!(r.verify(&ctx, m).is_err());
    }

    #[test]
    fn verify_rejects_missing_imm() {
        let (mut ctx, r, m, b) = setup();
        let x = li(&mut ctx, b, 1);
        ctx.append_op(b, OpSpec::new(ADDI).operands(vec![x]).results(vec![reg()]));
        assert!(r.verify(&ctx, m).is_err());
    }

    #[test]
    fn verify_rejects_unallocated_get_register() {
        let (mut ctx, r, m, b) = setup();
        ctx.append_op(b, OpSpec::new(GET_REGISTER).results(vec![reg()]));
        assert!(r.verify(&ctx, m).is_err());
    }

    #[test]
    fn csr_ops_verify() {
        let (mut ctx, r, m, b) = setup();
        csr_imm(&mut ctx, b, CSRRSI, mlb_isa::CSR_SSR, 1);
        csr_imm(&mut ctx, b, CSRRCI, mlb_isa::CSR_SSR, 1);
        assert!(r.verify(&ctx, m).is_ok());
    }
}
