//! The `rv_scf` dialect: structured control flow over register values.
//!
//! `rv_scf.for` mirrors `scf.for` but its bounds and iteration values are
//! register-typed, "easing optimizations and live range construction
//! during register allocation" (Section 3.1). It is lowered to `rv_cf`
//! branches only after registers have been allocated.

use mlb_ir::{BlockId, Context, DialectRegistry, OpId, OpInfo, OpSpec, Type, ValueId, VerifyError};

/// `rv_scf.for`: counted loop over registers. Operands: `lb, ub, step,
/// init...`; body args: `iv, iter...`; results mirror the iter values.
pub const FOR: &str = "rv_scf.for";
/// `rv_scf.yield`: body terminator.
pub const YIELD: &str = "rv_scf.yield";

/// Registers the `rv_scf` dialect.
pub fn register(registry: &mut DialectRegistry) {
    registry.register(OpInfo::new(FOR).with_verify(verify_for));
    registry.register(OpInfo::new(YIELD).terminator().with_verify(verify_yield));
}

fn verify_for(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    let o = ctx.op(op);
    if o.regions.len() != 1 {
        return Err(VerifyError::new(ctx, op, "for must have exactly one region"));
    }
    if o.operands.len() < 3 {
        return Err(VerifyError::new(ctx, op, "for needs lb, ub and step operands"));
    }
    for i in 0..3 {
        if !matches!(ctx.value_type(o.operands[i]), Type::IntRegister(_)) {
            return Err(VerifyError::new(ctx, op, "loop bounds must be integer registers"));
        }
    }
    let num_iter = o.operands.len() - 3;
    if o.results.len() != num_iter {
        return Err(VerifyError::new(ctx, op, "result count differs from iter-arg count"));
    }
    let blocks = ctx.region_blocks(o.regions[0]);
    if blocks.len() != 1 {
        return Err(VerifyError::new(ctx, op, "for body must be a single block"));
    }
    let args = ctx.block_args(blocks[0]);
    if args.len() != num_iter + 1 {
        return Err(VerifyError::new(ctx, op, "body must take iv plus iter args"));
    }
    if !matches!(ctx.value_type(args[0]), Type::IntRegister(_)) {
        return Err(VerifyError::new(ctx, op, "induction variable must be an integer register"));
    }
    for i in 0..num_iter {
        let init = ctx.value_type(o.operands[3 + i]);
        let arg = ctx.value_type(args[1 + i]);
        let res = ctx.value_type(o.results[i]);
        if !init.is_register() || !arg.is_register() || !res.is_register() {
            return Err(VerifyError::new(ctx, op, "iteration values must be registers"));
        }
        let same_class = matches!(
            (init, arg, res),
            (Type::IntRegister(_), Type::IntRegister(_), Type::IntRegister(_))
                | (Type::FpRegister(_), Type::FpRegister(_), Type::FpRegister(_))
        );
        if !same_class {
            return Err(VerifyError::new(ctx, op, "iteration value register classes must match"));
        }
    }
    Ok(())
}

fn verify_yield(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    let Some(parent) = ctx.parent_op(op) else {
        return Err(VerifyError::new(ctx, op, "yield outside of any op"));
    };
    let pname = &ctx.op(parent).name;
    if pname != FOR && pname != crate::rv_snitch::FREP_OUTER {
        return Err(VerifyError::new(ctx, op, "rv_scf.yield must be inside rv_scf.for or frep"));
    }
    if ctx.op(op).operands.len() != ctx.op(parent).results.len() {
        return Err(VerifyError::new(ctx, op, "yield arity differs from loop results"));
    }
    Ok(())
}

/// Typed view over an `rv_scf.for` operation.
#[derive(Debug, Clone, Copy)]
pub struct RvForOp(pub OpId);

impl RvForOp {
    /// Wraps `op`, checking the name.
    pub fn new(ctx: &Context, op: OpId) -> Option<RvForOp> {
        (ctx.op(op).name == FOR).then_some(RvForOp(op))
    }

    /// The lower bound register value.
    pub fn lower_bound(self, ctx: &Context) -> ValueId {
        ctx.op(self.0).operands[0]
    }

    /// The upper bound register value.
    pub fn upper_bound(self, ctx: &Context) -> ValueId {
        ctx.op(self.0).operands[1]
    }

    /// The step register value.
    pub fn step(self, ctx: &Context) -> ValueId {
        ctx.op(self.0).operands[2]
    }

    /// The loop-carried initial values.
    pub fn iter_inits(self, ctx: &Context) -> &[ValueId] {
        &ctx.op(self.0).operands[3..]
    }

    /// The single body block.
    pub fn body(self, ctx: &Context) -> BlockId {
        ctx.sole_block(ctx.op(self.0).regions[0])
    }

    /// The induction variable block argument.
    pub fn induction_var(self, ctx: &Context) -> ValueId {
        ctx.block_args(self.body(ctx))[0]
    }

    /// The loop-carried block arguments.
    pub fn iter_args(self, ctx: &Context) -> &[ValueId] {
        &ctx.block_args(self.body(ctx))[1..]
    }

    /// The body terminator.
    pub fn yield_op(self, ctx: &Context) -> OpId {
        ctx.terminator(self.body(ctx))
    }
}

/// Builds an `rv_scf.for` loop; `body` returns the yielded values.
pub fn build_for(
    ctx: &mut Context,
    block: BlockId,
    lb: ValueId,
    ub: ValueId,
    step: ValueId,
    inits: Vec<ValueId>,
    body: impl FnOnce(&mut Context, BlockId, ValueId, &[ValueId]) -> Vec<ValueId>,
) -> RvForOp {
    let result_types: Vec<Type> = inits.iter().map(|&v| ctx.value_type(v).clone()).collect();
    let mut operands = vec![lb, ub, step];
    operands.extend(inits);
    let op = ctx.append_op(
        block,
        OpSpec::new(FOR).operands(operands).results(result_types.clone()).regions(1),
    );
    let mut arg_types = vec![Type::IntRegister(None)];
    arg_types.extend(result_types);
    let body_block = ctx.create_block(ctx.op(op).regions[0], arg_types);
    let iv = ctx.block_args(body_block)[0];
    let iter_args = ctx.block_args(body_block)[1..].to_vec();
    let yields = body(ctx, body_block, iv, &iter_args);
    ctx.append_op(body_block, OpSpec::new(YIELD).operands(yields));
    RvForOp(op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rv;

    fn setup() -> (Context, DialectRegistry, OpId, BlockId) {
        let mut ctx = Context::new();
        let mut r = DialectRegistry::new();
        r.register(OpInfo::new("test.wrap"));
        rv::register(&mut r);
        crate::rv_snitch::register(&mut r);
        register(&mut r);
        let m = ctx.create_detached_op(OpSpec::new("test.wrap").regions(1));
        let b = ctx.create_block(ctx.op(m).regions[0], vec![]);
        (ctx, r, m, b)
    }

    #[test]
    fn build_register_loop() {
        let (mut ctx, r, m, b) = setup();
        let lb = rv::li(&mut ctx, b, 0);
        let ub = rv::li(&mut ctx, b, 8);
        let step = rv::li(&mut ctx, b, 1);
        let init = rv::li(&mut ctx, b, 0);
        let f = build_for(&mut ctx, b, lb, ub, step, vec![init], |ctx, body, _iv, args| {
            vec![rv::int_imm(ctx, body, rv::ADDI, args[0], 2)]
        });
        assert!(r.verify(&ctx, m).is_ok(), "{:?}", r.verify(&ctx, m));
        assert_eq!(f.iter_args(&ctx).len(), 1);
        assert_eq!(f.iter_inits(&ctx).len(), 1);
        assert_eq!(*ctx.value_type(f.induction_var(&ctx)), Type::IntRegister(None));
    }

    #[test]
    fn verify_rejects_non_register_bounds() {
        let (mut ctx, r, m, b) = setup();
        let bad = {
            let op = ctx.append_op(
                b,
                OpSpec::new("rv.li")
                    .attr("imm", mlb_ir::Attribute::Int(0))
                    .results(vec![Type::Index]),
            );
            ctx.op(op).results[0]
        };
        let op = ctx.append_op(b, OpSpec::new(FOR).operands(vec![bad, bad, bad]).regions(1));
        let body = ctx.create_block(ctx.op(op).regions[0], vec![Type::IntRegister(None)]);
        ctx.append_op(body, OpSpec::new(YIELD));
        assert!(r.verify(&ctx, m).is_err());
    }
}
