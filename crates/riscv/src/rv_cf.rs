//! The `rv_cf` dialect: unstructured control flow (jumps and branches)
//! between basic blocks, the final control-flow form before assembly
//! emission (Section 3.1).

use mlb_ir::{BlockId, Context, DialectRegistry, OpId, OpInfo, OpSpec, Type, ValueId, VerifyError};

/// `rv_cf.j`: unconditional jump. One successor.
pub const J: &str = "rv_cf.j";
/// `rv_cf.blt`: branch if `rs1 < rs2` (signed). Successors: taken, else.
pub const BLT: &str = "rv_cf.blt";
/// `rv_cf.bge`: branch if `rs1 >= rs2` (signed). Successors: taken, else.
pub const BGE: &str = "rv_cf.bge";
/// `rv_cf.bne`: branch if `rs1 != rs2`. Successors: taken, else.
pub const BNE: &str = "rv_cf.bne";
/// `rv_cf.beq`: branch if `rs1 == rs2`. Successors: taken, else.
pub const BEQ: &str = "rv_cf.beq";

/// The conditional branch operations.
pub const CONDITIONAL_BRANCHES: [&str; 4] = [BLT, BGE, BNE, BEQ];

/// Registers the `rv_cf` dialect.
pub fn register(registry: &mut DialectRegistry) {
    registry.register(OpInfo::new(J).terminator().with_verify(verify_j));
    for name in CONDITIONAL_BRANCHES {
        registry.register(OpInfo::new(name).terminator().with_verify(verify_branch));
    }
}

fn verify_j(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    let o = ctx.op(op);
    if o.successors.len() != 1 {
        return Err(VerifyError::new(ctx, op, "jump must have exactly one successor"));
    }
    if !o.operands.is_empty() {
        return Err(VerifyError::new(ctx, op, "jump carries no operands"));
    }
    Ok(())
}

fn verify_branch(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    let o = ctx.op(op);
    if o.successors.len() != 2 {
        return Err(VerifyError::new(ctx, op, "branch must have taken and fallthrough successors"));
    }
    if o.operands.len() != 2 {
        return Err(VerifyError::new(ctx, op, "branch compares exactly two registers"));
    }
    for &v in &o.operands {
        if !matches!(ctx.value_type(v), Type::IntRegister(_)) {
            return Err(VerifyError::new(ctx, op, "branch operands must be integer registers"));
        }
    }
    Ok(())
}

/// Appends an unconditional jump to `target`.
pub fn build_j(ctx: &mut Context, block: BlockId, target: BlockId) -> OpId {
    ctx.append_op(block, OpSpec::new(J).successors(vec![target]))
}

/// Appends a conditional branch comparing `rs1` and `rs2`.
pub fn build_branch(
    ctx: &mut Context,
    block: BlockId,
    name: &str,
    rs1: ValueId,
    rs2: ValueId,
    taken: BlockId,
    fallthrough: BlockId,
) -> OpId {
    ctx.append_op(
        block,
        OpSpec::new(name).operands(vec![rs1, rs2]).successors(vec![taken, fallthrough]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rv;

    #[test]
    fn build_two_block_loop() {
        let mut ctx = Context::new();
        let mut r = DialectRegistry::new();
        r.register(OpInfo::new("test.wrap"));
        rv::register(&mut r);
        register(&mut r);
        let m = ctx.create_detached_op(OpSpec::new("test.wrap").regions(1));
        let region = ctx.op(m).regions[0];
        let entry = ctx.create_block(region, vec![]);
        let body = ctx.create_block(region, vec![]);
        let exit = ctx.create_block(region, vec![]);
        let i = rv::li(&mut ctx, entry, 0);
        let n = rv::li(&mut ctx, entry, 8);
        build_j(&mut ctx, entry, body);
        build_branch(&mut ctx, body, BLT, i, n, body, exit);
        ctx.append_op(
            exit,
            OpSpec::new("rv.li").attr("imm", mlb_ir::Attribute::Int(0)).results(vec![rv::reg()]),
        );
        assert!(r.verify(&ctx, m).is_ok(), "{:?}", r.verify(&ctx, m));
    }

    #[test]
    fn verify_rejects_branch_with_one_successor() {
        let mut ctx = Context::new();
        let mut r = DialectRegistry::new();
        r.register(OpInfo::new("test.wrap"));
        rv::register(&mut r);
        register(&mut r);
        let m = ctx.create_detached_op(OpSpec::new("test.wrap").regions(1));
        let region = ctx.op(m).regions[0];
        let entry = ctx.create_block(region, vec![]);
        let i = rv::li(&mut ctx, entry, 0);
        ctx.append_op(entry, OpSpec::new(BLT).operands(vec![i, i]).successors(vec![entry]));
        assert!(r.verify(&ctx, m).is_err());
    }
}
