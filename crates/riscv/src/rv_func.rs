//! The `rv_func` dialect: functions under the RISC-V calling convention.
//!
//! `rv_func.func` encodes the ABI constraint that arguments arrive in `a`
//! registers (Figure 6, step 3): its entry block arguments are required to
//! be *allocated* register types `a0`, `a1`, … / `fa0`, `fa1`, ….

use mlb_ir::{
    Attribute, BlockId, Context, DialectRegistry, OpId, OpInfo, OpSpec, Type, ValueId, VerifyError,
};
use mlb_isa::{FpReg, IntReg};

/// `rv_func.func`: a function with register-typed arguments.
pub const FUNC: &str = "rv_func.func";
/// `rv_func.ret`: return terminator (prints `ret`).
pub const RET: &str = "rv_func.ret";

/// Registers the `rv_func` dialect.
pub fn register(registry: &mut DialectRegistry) {
    registry.register(OpInfo::new(FUNC).with_verify(verify_func));
    registry.register(OpInfo::new(RET).terminator().with_verify(verify_ret));
}

fn verify_func(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    let o = ctx.op(op);
    if o.regions.len() != 1 {
        return Err(VerifyError::new(ctx, op, "function must have exactly one region"));
    }
    let Some(Attribute::Symbol(_)) = o.attr("sym_name") else {
        return Err(VerifyError::new(ctx, op, "missing `sym_name` symbol attribute"));
    };
    let blocks = ctx.region_blocks(o.regions[0]);
    if blocks.is_empty() {
        return Err(VerifyError::new(ctx, op, "function body must have an entry block"));
    }
    // ABI: integer args in a0.., FP args in fa0.., in order of appearance.
    let mut next_int = 0u8;
    let mut next_fp = 0u8;
    for (i, &arg) in ctx.block_args(blocks[0]).iter().enumerate() {
        match ctx.value_type(arg) {
            Type::IntRegister(Some(r)) => {
                if *r != IntReg::a(next_int) {
                    return Err(VerifyError::new(
                        ctx,
                        op,
                        format!("argument {i} must be in {}", IntReg::a(next_int)),
                    ));
                }
                next_int += 1;
            }
            Type::FpRegister(Some(r)) => {
                if *r != FpReg::fa(next_fp) {
                    return Err(VerifyError::new(
                        ctx,
                        op,
                        format!("argument {i} must be in {}", FpReg::fa(next_fp)),
                    ));
                }
                next_fp += 1;
            }
            other => {
                return Err(VerifyError::new(
                    ctx,
                    op,
                    format!("argument {i} must be an allocated register, got {other}"),
                ))
            }
        }
    }
    Ok(())
}

fn verify_ret(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    let o = ctx.op(op);
    if !o.operands.is_empty() || !o.results.is_empty() {
        // Results live in a0/fa0 by convention; the op itself carries none.
        return Err(VerifyError::new(ctx, op, "ret carries no explicit operands"));
    }
    Ok(())
}

/// Argument classes for [`build_func`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbiArg {
    /// An integer-register argument (pointers, sizes).
    Int,
    /// A floating-point-register argument.
    Fp,
}

/// Creates an `rv_func.func` named `name` whose entry block arguments are
/// pinned to the ABI argument registers in order.
pub fn build_func(
    ctx: &mut Context,
    parent: BlockId,
    name: &str,
    args: &[AbiArg],
) -> (OpId, BlockId) {
    let mut next_int = 0u8;
    let mut next_fp = 0u8;
    let arg_types: Vec<Type> = args
        .iter()
        .map(|a| match a {
            AbiArg::Int => {
                let r = IntReg::a(next_int);
                next_int += 1;
                Type::IntRegister(Some(r))
            }
            AbiArg::Fp => {
                let r = FpReg::fa(next_fp);
                next_fp += 1;
                Type::FpRegister(Some(r))
            }
        })
        .collect();
    let func = ctx.append_op(
        parent,
        OpSpec::new(FUNC).attr("sym_name", Attribute::Symbol(name.to_string())).regions(1),
    );
    let entry = ctx.create_block(ctx.op(func).regions[0], arg_types);
    (func, entry)
}

/// Appends the `rv_func.ret` terminator.
pub fn build_ret(ctx: &mut Context, block: BlockId) -> OpId {
    ctx.append_op(block, OpSpec::new(RET))
}

/// The entry block of an `rv_func.func`.
pub fn entry_block(ctx: &Context, func: OpId) -> BlockId {
    ctx.region_blocks(ctx.op(func).regions[0])[0]
}

/// The symbol name of an `rv_func.func`.
pub fn symbol_name(ctx: &Context, func: OpId) -> Option<&str> {
    ctx.op(func).attr("sym_name")?.as_symbol()
}

/// The argument values of the function entry block.
pub fn arguments(ctx: &Context, func: OpId) -> &[ValueId] {
    ctx.block_args(entry_block(ctx, func))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Context, DialectRegistry, OpId, BlockId) {
        let mut ctx = Context::new();
        let mut r = DialectRegistry::new();
        r.register(OpInfo::new("test.wrap"));
        register(&mut r);
        let m = ctx.create_detached_op(OpSpec::new("test.wrap").regions(1));
        let b = ctx.create_block(ctx.op(m).regions[0], vec![]);
        (ctx, r, m, b)
    }

    #[test]
    fn abi_args_are_assigned_in_order() {
        let (mut ctx, r, m, b) = setup();
        let (f, entry) =
            build_func(&mut ctx, b, "k", &[AbiArg::Int, AbiArg::Fp, AbiArg::Int, AbiArg::Fp]);
        build_ret(&mut ctx, entry);
        assert!(r.verify(&ctx, m).is_ok(), "{:?}", r.verify(&ctx, m));
        let args = arguments(&ctx, f);
        assert_eq!(*ctx.value_type(args[0]), Type::IntRegister(Some(IntReg::a(0))));
        assert_eq!(*ctx.value_type(args[1]), Type::FpRegister(Some(FpReg::fa(0))));
        assert_eq!(*ctx.value_type(args[2]), Type::IntRegister(Some(IntReg::a(1))));
        assert_eq!(*ctx.value_type(args[3]), Type::FpRegister(Some(FpReg::fa(1))));
        assert_eq!(symbol_name(&ctx, f), Some("k"));
    }

    #[test]
    fn verify_rejects_out_of_order_args() {
        let (mut ctx, r, m, b) = setup();
        let func = ctx.append_op(
            b,
            OpSpec::new(FUNC).attr("sym_name", Attribute::Symbol("bad".into())).regions(1),
        );
        let entry =
            ctx.create_block(ctx.op(func).regions[0], vec![Type::IntRegister(Some(IntReg::a(1)))]);
        build_ret(&mut ctx, entry);
        assert!(r.verify(&ctx, m).is_err());
    }

    #[test]
    fn verify_rejects_unallocated_args() {
        let (mut ctx, r, m, b) = setup();
        let func = ctx.append_op(
            b,
            OpSpec::new(FUNC).attr("sym_name", Attribute::Symbol("bad".into())).regions(1),
        );
        let entry = ctx.create_block(ctx.op(func).regions[0], vec![Type::IntRegister(None)]);
        build_ret(&mut ctx, entry);
        assert!(r.verify(&ctx, m).is_err());
    }
}
