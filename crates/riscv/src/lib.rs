#![warn(missing_docs)]

//! RISC-V and Snitch target dialects plus assembly emission.
//!
//! This crate is the target half of the multi-level backend
//! (Sections 3.1–3.2 of the paper): a family of SSA-based IRs modelling
//! the RISC-V ISA and the Snitch accelerator extensions at several
//! abstraction levels, and the printer that turns fully-lowered IR into
//! assembly text.
//!
//! | dialect | models |
//! |---|---|
//! | [`rv`] | base ISA instructions; registers as value types |
//! | [`rv_cf`] | unstructured control flow (jumps/branches) |
//! | [`rv_scf`] | structured `for` loops over register values |
//! | [`rv_func`] | functions under the RISC-V calling convention |
//! | [`rv_snitch`] | FREP hardware loops, SSR config, packed SIMD |
//! | [`snitch_stream`] | hardware-level streaming regions |

pub mod emit;
pub mod exec;
pub mod rv;
pub mod rv_cf;
pub mod rv_func;
pub mod rv_scf;
pub mod rv_snitch;
pub mod snitch_stream;

use mlb_ir::DialectRegistry;

/// Registers every dialect in this crate.
pub fn register_all(registry: &mut DialectRegistry) {
    rv::register(registry);
    rv_cf::register(registry);
    rv_func::register(registry);
    rv_scf::register(registry);
    rv_snitch::register(registry);
    snitch_stream::register(registry);
}

pub use emit::{emit_module, emit_module_with_source_map, EmitError};
pub use exec::register_exec;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_all_is_conflict_free() {
        let mut r = DialectRegistry::new();
        register_all(&mut r);
        assert!(r.info("rv.fmadd.d").is_some());
        assert!(r.info("rv_snitch.frep_outer").is_some());
        assert!(r.info("snitch_stream.streaming_region").is_some());
        assert!(r.is_terminator("rv_cf.j"));
        assert!(r.is_terminator("rv_func.ret"));
    }
}
