//! The `rv_snitch` dialect: Snitch ISA extension instructions
//! (Section 3.2) — the FREP hardware loop, SSR configuration and packed
//! SIMD instructions.

use mlb_ir::{
    Attribute, BlockId, Context, DialectRegistry, OpId, OpInfo, OpSpec, Type, ValueId, VerifyError,
};

/// `rv_snitch.frep_outer`: the `frep.o` hardware loop. Operand 0 is the
/// iteration-count register (executes `count` times); remaining operands
/// are loop-carried FP initial values mirrored by the results. The body
/// region takes one FP block argument per carried value (no induction
/// variable — the sequencer replays the instruction buffer).
pub const FREP_OUTER: &str = "rv_snitch.frep_outer";
/// `rv_snitch.scfgwi`: write a stream configuration word. Operand: value
/// register; `imm` attribute selects data mover and config register.
pub const SCFGWI: &str = "rv_snitch.scfgwi";
/// `rv_snitch.ssr_enable`: turn on stream semantics (csrrsi on 0x7C0).
pub const SSR_ENABLE: &str = "rv_snitch.ssr_enable";
/// `rv_snitch.ssr_disable`: turn off stream semantics (csrrci on 0x7C0).
pub const SSR_DISABLE: &str = "rv_snitch.ssr_disable";
/// `rv_snitch.vfadd.s`: packed SIMD lane-wise single addition.
pub const VFADD_S: &str = "rv_snitch.vfadd.s";
/// `rv_snitch.vfmul.s`: packed SIMD lane-wise single multiplication.
pub const VFMUL_S: &str = "rv_snitch.vfmul.s";
/// `rv_snitch.vfmax.s`: packed SIMD lane-wise single maximum.
pub const VFMAX_S: &str = "rv_snitch.vfmax.s";
/// `rv_snitch.vfmac.s`: packed SIMD lane-wise multiply-accumulate
/// (`rd.lane[i] += rs1.lane[i] * rs2.lane[i]`). Operands: rs1, rs2, rd-in.
pub const VFMAC_S: &str = "rv_snitch.vfmac.s";
/// `rv_snitch.vfsum.s`: packed SIMD reduction
/// (`rd.lane[0] += rs1.lane[0] + rs1.lane[1]`). Operands: rs1, rd-in.
pub const VFSUM_S: &str = "rv_snitch.vfsum.s";
/// `rv_snitch.vfcpka.s.s`: packs two singles into the two lanes of `rd`.
pub const VFCPKA_S_S: &str = "rv_snitch.vfcpka.s.s";
/// `rv_snitch.hartid`: reads the core's index within the cluster
/// (`csrr rd, mhartid`). The result is `index`-typed when the
/// `distribute-to-cores` pass inserts it at the `memref_stream` level
/// and an integer register after conversion to the `rv` dialects.
pub const HARTID: &str = "rv_snitch.hartid";
/// `rv_snitch.barrier`: blocks until every core of the cluster has
/// reached it (`csrr zero` on the cluster barrier CSR).
pub const BARRIER: &str = "rv_snitch.barrier";

/// Packed SIMD lane-wise binary instructions.
pub const SIMD_BINARY: [&str; 3] = [VFADD_S, VFMUL_S, VFMAX_S];

/// Registers the `rv_snitch` dialect.
pub fn register(registry: &mut DialectRegistry) {
    registry.register(OpInfo::new(FREP_OUTER).with_verify(verify_frep));
    registry.register(OpInfo::new(SCFGWI).with_verify(verify_scfgwi));
    registry.register(OpInfo::new(SSR_ENABLE).with_verify(verify_ssr_toggle));
    registry.register(OpInfo::new(SSR_DISABLE).with_verify(verify_ssr_toggle));
    for name in SIMD_BINARY {
        registry.register(OpInfo::new(name).pure().with_verify(verify_fp_binary));
    }
    registry.register(OpInfo::new(VFMAC_S).pure().with_verify(verify_fp_ternary));
    registry.register(OpInfo::new(VFSUM_S).pure().with_verify(verify_fp_binary));
    registry.register(OpInfo::new(VFCPKA_S_S).pure().with_verify(verify_fp_binary));
    registry.register(OpInfo::new(HARTID).pure().with_verify(verify_hartid));
    registry.register(OpInfo::new(BARRIER).with_verify(verify_barrier));
}

fn is_fp_reg(ctx: &Context, v: ValueId) -> bool {
    matches!(ctx.value_type(v), Type::FpRegister(_))
}

fn verify_fp_binary(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    let o = ctx.op(op);
    if o.operands.len() != 2 || o.results.len() != 1 {
        return Err(VerifyError::new(ctx, op, "expected two operands and one result"));
    }
    if !o.operands.iter().all(|&v| is_fp_reg(ctx, v)) || !is_fp_reg(ctx, o.results[0]) {
        return Err(VerifyError::new(ctx, op, "expected FP register operands and result"));
    }
    Ok(())
}

fn verify_fp_ternary(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    let o = ctx.op(op);
    if o.operands.len() != 3 || o.results.len() != 1 {
        return Err(VerifyError::new(ctx, op, "expected three operands and one result"));
    }
    if !o.operands.iter().all(|&v| is_fp_reg(ctx, v)) || !is_fp_reg(ctx, o.results[0]) {
        return Err(VerifyError::new(ctx, op, "expected FP register operands and result"));
    }
    Ok(())
}

fn verify_scfgwi(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    let o = ctx.op(op);
    if o.operands.len() != 1 || !o.results.is_empty() {
        return Err(VerifyError::new(ctx, op, "scfgwi takes one value register"));
    }
    if !matches!(ctx.value_type(o.operands[0]), Type::IntRegister(_)) {
        return Err(VerifyError::new(ctx, op, "scfgwi value must be an integer register"));
    }
    match o.attr("imm") {
        Some(Attribute::Int(imm)) => {
            if mlb_isa::SsrCfgReg::from_scfg_imm(*imm as u16).is_none() {
                return Err(VerifyError::new(ctx, op, "invalid scfgwi immediate"));
            }
            Ok(())
        }
        _ => Err(VerifyError::new(ctx, op, "missing integer `imm` attribute")),
    }
}

fn verify_ssr_toggle(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    let o = ctx.op(op);
    if !o.operands.is_empty() || !o.results.is_empty() {
        return Err(VerifyError::new(ctx, op, "SSR toggles take no operands"));
    }
    Ok(())
}

fn verify_hartid(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    let o = ctx.op(op);
    if !o.operands.is_empty() || o.results.len() != 1 {
        return Err(VerifyError::new(ctx, op, "hartid takes no operands and has one result"));
    }
    if !matches!(ctx.value_type(o.results[0]), Type::Index | Type::IntRegister(_)) {
        return Err(VerifyError::new(ctx, op, "hartid result must be index or integer register"));
    }
    Ok(())
}

fn verify_barrier(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    let o = ctx.op(op);
    if !o.operands.is_empty() || !o.results.is_empty() {
        return Err(VerifyError::new(ctx, op, "barrier takes no operands and has no results"));
    }
    Ok(())
}

fn verify_frep(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    let o = ctx.op(op);
    if o.regions.len() != 1 {
        return Err(VerifyError::new(ctx, op, "frep must have exactly one region"));
    }
    if o.operands.is_empty() {
        return Err(VerifyError::new(ctx, op, "frep needs an iteration count operand"));
    }
    if !matches!(ctx.value_type(o.operands[0]), Type::IntRegister(_)) {
        return Err(VerifyError::new(ctx, op, "iteration count must be an integer register"));
    }
    let carried = &o.operands[1..];
    if o.results.len() != carried.len() {
        return Err(VerifyError::new(ctx, op, "result count differs from carried value count"));
    }
    for &v in carried {
        if !is_fp_reg(ctx, v) {
            return Err(VerifyError::new(ctx, op, "carried values must be FP registers"));
        }
    }
    let blocks = ctx.region_blocks(o.regions[0]);
    if blocks.len() != 1 {
        return Err(VerifyError::new(ctx, op, "frep body must be a single block"));
    }
    let args = ctx.block_args(blocks[0]);
    if args.len() != carried.len() {
        return Err(VerifyError::new(ctx, op, "body takes one argument per carried value"));
    }
    // The body may only contain FPU instructions (plus its terminator):
    // the sequencer replays the buffer without the integer core.
    let ops = ctx.block_ops(blocks[0]);
    for (i, &nested) in ops.iter().enumerate() {
        let name = ctx.op(nested).name.clone();
        let is_last = i + 1 == ops.len();
        if is_last && name == crate::rv_scf::YIELD {
            continue;
        }
        if !crate::rv::is_fpu_op(&name) {
            return Err(VerifyError::new(
                ctx,
                op,
                format!("frep body may only contain FPU instructions, found {name}"),
            ));
        }
    }
    Ok(())
}

/// Typed view over an `rv_snitch.frep_outer` operation.
#[derive(Debug, Clone, Copy)]
pub struct FrepOp(pub OpId);

impl FrepOp {
    /// Wraps `op`, checking the name.
    pub fn new(ctx: &Context, op: OpId) -> Option<FrepOp> {
        (ctx.op(op).name == FREP_OUTER).then_some(FrepOp(op))
    }

    /// The iteration count register (loop executes this many times).
    pub fn count(self, ctx: &Context) -> ValueId {
        ctx.op(self.0).operands[0]
    }

    /// The loop-carried initial values.
    pub fn iter_inits(self, ctx: &Context) -> &[ValueId] {
        &ctx.op(self.0).operands[1..]
    }

    /// The single body block.
    pub fn body(self, ctx: &Context) -> BlockId {
        ctx.sole_block(ctx.op(self.0).regions[0])
    }

    /// The loop-carried block arguments.
    pub fn iter_args(self, ctx: &Context) -> &[ValueId] {
        ctx.block_args(self.body(ctx))
    }

    /// The body terminator (an `rv_scf.yield`).
    pub fn yield_op(self, ctx: &Context) -> OpId {
        ctx.terminator(self.body(ctx))
    }

    /// Number of FPU instructions in the body (the `frep.o` length field).
    pub fn num_instructions(self, ctx: &Context) -> usize {
        ctx.block_ops(self.body(ctx)).len() - 1
    }
}

/// Builds an `rv_snitch.frep_outer`; `body` returns the yielded values.
pub fn build_frep(
    ctx: &mut Context,
    block: BlockId,
    count: ValueId,
    inits: Vec<ValueId>,
    body: impl FnOnce(&mut Context, BlockId, &[ValueId]) -> Vec<ValueId>,
) -> FrepOp {
    let result_types: Vec<Type> = inits.iter().map(|&v| ctx.value_type(v).clone()).collect();
    let mut operands = vec![count];
    operands.extend(inits);
    let op = ctx.append_op(
        block,
        OpSpec::new(FREP_OUTER).operands(operands).results(result_types.clone()).regions(1),
    );
    let body_block = ctx.create_block(ctx.op(op).regions[0], result_types);
    let args = ctx.block_args(body_block).to_vec();
    let yields = body(ctx, body_block, &args);
    ctx.append_op(body_block, OpSpec::new(crate::rv_scf::YIELD).operands(yields));
    FrepOp(op)
}

/// Builds an `rv_snitch.scfgwi` writing `value` to the configuration word
/// of (`reg`, `dm`).
pub fn build_scfgwi(
    ctx: &mut Context,
    block: BlockId,
    value: ValueId,
    reg: mlb_isa::SsrCfgReg,
    dm: mlb_isa::SsrDataMover,
) -> OpId {
    ctx.append_op(
        block,
        OpSpec::new(SCFGWI)
            .operands(vec![value])
            .attr("imm", Attribute::Int(reg.scfg_imm(dm) as i64)),
    )
}

/// Builds an `rv_snitch.hartid` with a result of type `ty` (`index` or
/// an integer register, depending on the abstraction level).
pub fn build_hartid(ctx: &mut Context, block: BlockId, ty: Type) -> ValueId {
    let op = ctx.append_op(block, OpSpec::new(HARTID).results(vec![ty]));
    ctx.op(op).results[0]
}

/// Builds an `rv_snitch.barrier`.
pub fn build_barrier(ctx: &mut Context, block: BlockId) -> OpId {
    ctx.append_op(block, OpSpec::new(BARRIER))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rv;
    use mlb_isa::{SsrCfgReg, SsrDataMover};

    fn setup() -> (Context, DialectRegistry, OpId, BlockId) {
        let mut ctx = Context::new();
        let mut r = DialectRegistry::new();
        r.register(OpInfo::new("test.wrap"));
        rv::register(&mut r);
        crate::rv_scf::register(&mut r);
        register(&mut r);
        let m = ctx.create_detached_op(OpSpec::new("test.wrap").regions(1));
        let b = ctx.create_block(ctx.op(m).regions[0], vec![]);
        (ctx, r, m, b)
    }

    #[test]
    fn build_frep_dot_product_body() {
        let (mut ctx, r, m, b) = setup();
        let count = rv::li(&mut ctx, b, 200);
        let ft0 = rv::get_register(&mut ctx, b, Type::FpRegister(Some(mlb_isa::FpReg::ft(0))));
        let ft1 = rv::get_register(&mut ctx, b, Type::FpRegister(Some(mlb_isa::FpReg::ft(1))));
        let zero = rv::fp_binary(&mut ctx, b, rv::FSUB_D, ft0, ft0);
        let frep = build_frep(&mut ctx, b, count, vec![zero], |ctx, body, args| {
            vec![rv::fp_ternary(ctx, body, rv::FMADD_D, ft0, ft1, args[0])]
        });
        assert!(r.verify(&ctx, m).is_ok(), "{:?}", r.verify(&ctx, m));
        assert_eq!(frep.num_instructions(&ctx), 1);
        assert_eq!(frep.count(&ctx), count);
        assert_eq!(frep.iter_inits(&ctx).len(), 1);
        assert_eq!(frep.iter_args(&ctx).len(), 1);
    }

    #[test]
    fn frep_rejects_integer_ops_in_body() {
        let (mut ctx, r, m, b) = setup();
        let count = rv::li(&mut ctx, b, 4);
        build_frep(&mut ctx, b, count, vec![], |ctx, body, _| {
            // An integer instruction is not allowed inside frep.
            let op = ctx.append_op(
                body,
                OpSpec::new(rv::LI).attr("imm", Attribute::Int(0)).results(vec![rv::reg()]),
            );
            let _ = ctx.op(op).results[0];
            vec![]
        });
        let err = r.verify(&ctx, m).unwrap_err();
        assert!(err.message.contains("FPU instructions"), "{err}");
    }

    #[test]
    fn scfgwi_builds_and_validates_imm() {
        let (mut ctx, r, m, b) = setup();
        let v = rv::li(&mut ctx, b, 199);
        build_scfgwi(&mut ctx, b, v, SsrCfgReg::Bound(0), SsrDataMover::new(0));
        ctx.append_op(b, OpSpec::new(SSR_ENABLE));
        ctx.append_op(b, OpSpec::new(SSR_DISABLE));
        assert!(r.verify(&ctx, m).is_ok(), "{:?}", r.verify(&ctx, m));

        // Invalid immediate (data mover 7) is rejected.
        ctx.append_op(
            b,
            OpSpec::new(SCFGWI).operands(vec![v]).attr("imm", Attribute::Int((2 << 5) | 7)),
        );
        assert!(r.verify(&ctx, m).is_err());
    }

    #[test]
    fn simd_ops_verify() {
        let (mut ctx, r, m, b) = setup();
        let a = rv::get_register(&mut ctx, b, Type::FpRegister(Some(mlb_isa::FpReg::ft(3))));
        let prod = rv::fp_binary(&mut ctx, b, VFMUL_S, a, a);
        let acc = rv::fp_ternary(&mut ctx, b, VFMAC_S, a, a, prod);
        let _sum = rv::fp_binary(&mut ctx, b, VFSUM_S, acc, a);
        let _packed = rv::fp_binary(&mut ctx, b, VFCPKA_S_S, a, a);
        assert!(r.verify(&ctx, m).is_ok(), "{:?}", r.verify(&ctx, m));
    }
}
