//! The `snitch_stream` dialect: hardware-level streaming regions
//! (Section 3.2, Figure 6 step c).
//!
//! `snitch_stream.streaming_region` encapsulates a concrete SSR
//! configuration — one [`mlb_ir::StreamPattern`] (bounds, byte strides and
//! repetition, in hardware terms) per operand — together with the region
//! in which streaming is enabled. Its block arguments are the stream
//! registers `ft0`–`ft2`: reads of a read-stream argument pop elements,
//! and the write-stream argument is written by using it as an
//! instruction destination via `snitch_stream.write`.

use mlb_ir::{
    Attribute, BlockId, Context, DialectRegistry, OpId, OpInfo, OpSpec, StreamPattern, Type,
    ValueId, VerifyError,
};
use mlb_isa::FpReg;

/// `snitch_stream.streaming_region`: scopes an armed SSR configuration.
pub const STREAMING_REGION: &str = "snitch_stream.streaming_region";
/// `snitch_stream.write`: pushes an FP register value into the write
/// stream (prints as `fmv.d ft2, rs`, elided when the producing
/// instruction can target `ft2` directly).
pub const WRITE: &str = "snitch_stream.write";

/// Attribute key for the hardware stream patterns.
pub const PATTERNS: &str = "patterns";
/// Attribute key for the number of read streams.
pub const NUM_INPUTS: &str = "num_inputs";

/// Registers the `snitch_stream` dialect.
pub fn register(registry: &mut DialectRegistry) {
    registry.register(OpInfo::new(STREAMING_REGION).with_verify(verify_streaming_region));
    registry.register(OpInfo::new(WRITE).with_verify(verify_write));
}

fn verify_streaming_region(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    let o = ctx.op(op);
    if o.regions.len() != 1 {
        return Err(VerifyError::new(ctx, op, "streaming_region must have exactly one region"));
    }
    let Some(num_inputs) = o.attr(NUM_INPUTS).and_then(Attribute::as_int) else {
        return Err(VerifyError::new(ctx, op, "missing `num_inputs` attribute"));
    };
    if o.operands.len() > mlb_isa::NUM_SSR_DATA_MOVERS {
        return Err(VerifyError::new(
            ctx,
            op,
            format!("at most {} streams are supported", mlb_isa::NUM_SSR_DATA_MOVERS),
        ));
    }
    if num_inputs as usize > o.operands.len() {
        return Err(VerifyError::new(ctx, op, "`num_inputs` exceeds operand count"));
    }
    let Some(patterns) = o.attr(PATTERNS).and_then(Attribute::as_array) else {
        return Err(VerifyError::new(ctx, op, "missing `patterns` attribute"));
    };
    if patterns.len() != o.operands.len() {
        return Err(VerifyError::new(ctx, op, "one pattern per operand required"));
    }
    for (i, p) in patterns.iter().enumerate() {
        let Some(p) = p.as_stream_pattern() else {
            return Err(VerifyError::new(ctx, op, "pattern entries must be stream patterns"));
        };
        if p.rank() > mlb_isa::SSR_MAX_DIMS {
            return Err(VerifyError::new(
                ctx,
                op,
                format!("pattern {i} exceeds {} dimensions", mlb_isa::SSR_MAX_DIMS),
            ));
        }
    }
    for &v in &o.operands {
        if !matches!(ctx.value_type(v), Type::IntRegister(_)) {
            return Err(VerifyError::new(ctx, op, "base pointers must be integer registers"));
        }
    }
    // Block arguments are the stream registers ft0..ftN in order.
    let body = ctx.sole_block(o.regions[0]);
    let args = ctx.block_args(body);
    if args.len() != o.operands.len() {
        return Err(VerifyError::new(ctx, op, "body takes one stream register per operand"));
    }
    for (i, &arg) in args.iter().enumerate() {
        let expected = Type::FpRegister(Some(FpReg::ft(i as u8)));
        if *ctx.value_type(arg) != expected {
            return Err(VerifyError::new(
                ctx,
                op,
                format!("stream argument {i} must have type {expected}"),
            ));
        }
    }
    Ok(())
}

fn verify_write(ctx: &Context, op: OpId) -> Result<(), VerifyError> {
    let o = ctx.op(op);
    if o.operands.len() != 2 || !o.results.is_empty() {
        return Err(VerifyError::new(ctx, op, "write takes a value and a stream register"));
    }
    for &v in &o.operands {
        if !matches!(ctx.value_type(v), Type::FpRegister(_)) {
            return Err(VerifyError::new(ctx, op, "write operands must be FP registers"));
        }
    }
    Ok(())
}

/// Typed view over a `snitch_stream.streaming_region`.
#[derive(Debug, Clone, Copy)]
pub struct StreamingRegionOp(pub OpId);

impl StreamingRegionOp {
    /// Wraps `op`, checking the name.
    pub fn new(ctx: &Context, op: OpId) -> Option<StreamingRegionOp> {
        (ctx.op(op).name == STREAMING_REGION).then_some(StreamingRegionOp(op))
    }

    /// Number of read streams.
    pub fn num_inputs(self, ctx: &Context) -> usize {
        ctx.op(self.0).attr(NUM_INPUTS).and_then(Attribute::as_int).unwrap_or(0) as usize
    }

    /// The hardware access pattern per operand.
    pub fn patterns(self, ctx: &Context) -> Vec<StreamPattern> {
        ctx.op(self.0)
            .attr(PATTERNS)
            .and_then(Attribute::as_array)
            .expect("streaming_region missing patterns")
            .iter()
            .map(|a| a.as_stream_pattern().expect("pattern entry").clone())
            .collect()
    }

    /// The base-pointer operands.
    pub fn base_pointers(self, ctx: &Context) -> &[ValueId] {
        &ctx.op(self.0).operands
    }

    /// The single body block.
    pub fn body(self, ctx: &Context) -> BlockId {
        ctx.sole_block(ctx.op(self.0).regions[0])
    }
}

/// Builds a `snitch_stream.streaming_region`. The body callback receives
/// the body block and the stream register arguments (`ft0..`).
pub fn build_streaming_region(
    ctx: &mut Context,
    block: BlockId,
    input_ptrs: Vec<ValueId>,
    output_ptrs: Vec<ValueId>,
    patterns: Vec<StreamPattern>,
    body: impl FnOnce(&mut Context, BlockId, &[ValueId]),
) -> StreamingRegionOp {
    let num_inputs = input_ptrs.len();
    let mut operands = input_ptrs;
    operands.extend(output_ptrs);
    assert!(
        operands.len() <= mlb_isa::NUM_SSR_DATA_MOVERS,
        "at most {} streams",
        mlb_isa::NUM_SSR_DATA_MOVERS
    );
    let op = ctx.append_op(
        block,
        OpSpec::new(STREAMING_REGION)
            .operands(operands.clone())
            .attr(NUM_INPUTS, Attribute::Int(num_inputs as i64))
            .attr(
                PATTERNS,
                Attribute::Array(patterns.into_iter().map(Attribute::StreamPattern).collect()),
            )
            .regions(1),
    );
    let arg_types: Vec<Type> =
        (0..operands.len()).map(|i| Type::FpRegister(Some(FpReg::ft(i as u8)))).collect();
    let body_block = ctx.create_block(ctx.op(op).regions[0], arg_types);
    let streams = ctx.block_args(body_block).to_vec();
    body(ctx, body_block, &streams);
    StreamingRegionOp(op)
}

/// Builds a `snitch_stream.write` of `value` into `stream`.
pub fn build_write(ctx: &mut Context, block: BlockId, value: ValueId, stream: ValueId) -> OpId {
    ctx.append_op(block, OpSpec::new(WRITE).operands(vec![value, stream]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rv;
    use mlb_isa::IntReg;

    fn setup() -> (Context, DialectRegistry, OpId, BlockId) {
        let mut ctx = Context::new();
        let mut r = DialectRegistry::new();
        r.register(OpInfo::new("test.wrap"));
        rv::register(&mut r);
        register(&mut r);
        let m = ctx.create_detached_op(OpSpec::new("test.wrap").regions(1));
        let b = ctx.create_block(ctx.op(m).regions[0], vec![]);
        (ctx, r, m, b)
    }

    #[test]
    fn build_relu_style_region() {
        let (mut ctx, r, m, b) = setup();
        let x = rv::get_register(&mut ctx, b, Type::IntRegister(Some(IntReg::a(0))));
        let z = rv::get_register(&mut ctx, b, Type::IntRegister(Some(IntReg::a(1))));
        let p = StreamPattern::new(vec![32], vec![8], 0);
        let sr = build_streaming_region(
            &mut ctx,
            b,
            vec![x],
            vec![z],
            vec![p.clone(), p],
            |ctx, body, streams| {
                let zero = rv::fp_binary(ctx, body, rv::FSUB_D, streams[0], streams[0]);
                let v = rv::fp_binary(ctx, body, rv::FMAX_D, streams[0], zero);
                build_write(ctx, body, v, streams[1]);
            },
        );
        assert!(r.verify(&ctx, m).is_ok(), "{:?}", r.verify(&ctx, m));
        assert_eq!(sr.num_inputs(&ctx), 1);
        assert_eq!(sr.patterns(&ctx).len(), 2);
        assert_eq!(sr.base_pointers(&ctx).len(), 2);
        assert_eq!(
            *ctx.value_type(ctx.block_args(sr.body(&ctx))[1]),
            Type::FpRegister(Some(FpReg::ft(1)))
        );
    }

    #[test]
    fn verify_rejects_too_many_streams() {
        let (mut ctx, r, m, b) = setup();
        let ptr = rv::get_register(&mut ctx, b, Type::IntRegister(Some(IntReg::a(0))));
        let p = StreamPattern::new(vec![4], vec![8], 0);
        let op = ctx.append_op(
            b,
            OpSpec::new(STREAMING_REGION)
                .operands(vec![ptr, ptr, ptr, ptr])
                .attr(NUM_INPUTS, Attribute::Int(4))
                .attr(PATTERNS, Attribute::Array(vec![Attribute::StreamPattern(p); 4]))
                .regions(1),
        );
        let args = (0..4).map(|i| Type::FpRegister(Some(FpReg::new(i)))).collect();
        ctx.create_block(ctx.op(op).regions[0], args);
        assert!(r.verify(&ctx, m).is_err());
    }

    #[test]
    fn verify_rejects_too_many_dims() {
        let (mut ctx, r, m, b) = setup();
        let ptr = rv::get_register(&mut ctx, b, Type::IntRegister(Some(IntReg::a(0))));
        let p = StreamPattern::new(vec![2; 5], vec![8; 5], 0);
        let op = ctx.append_op(
            b,
            OpSpec::new(STREAMING_REGION)
                .operands(vec![ptr])
                .attr(NUM_INPUTS, Attribute::Int(1))
                .attr(PATTERNS, Attribute::Array(vec![Attribute::StreamPattern(p)]))
                .regions(1),
        );
        ctx.create_block(ctx.op(op).regions[0], vec![Type::FpRegister(Some(FpReg::ft(0)))]);
        assert!(r.verify(&ctx, m).is_err());
    }
}
