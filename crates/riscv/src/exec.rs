//! Execution semantics for the RISC-V dialects.
//!
//! Registers one interpreter handler per op so the stage-level
//! differential harness can run `riscv`-level modules — structured
//! (`rv_scf.for`, `rv_snitch.frep_outer`, `snitch_stream`) or fully
//! lowered to basic blocks (`rv_cf`) — with semantics that mirror the
//! simulator bit-for-bit:
//!
//! - Integer values are canonicalized to their 32-bit register pattern;
//!   comparisons are signed 32-bit, exactly like the machine's branches.
//! - FP operands of compute ops pop from armed read streams and results
//!   push to write streams (when SSR semantics are enabled), while
//!   `rv.fld`/`rv.fsd` and the SIMD accumulator operands bypass streams,
//!   just as the hardware model does.
//! - Register-to-register moves between identical physical registers are
//!   elided exactly where the assembly emitter elides them, so no
//!   spurious stream pops happen.

use mlb_ir::{
    Attribute, Context, ExecRegistry, Flow, InterpError, Interpreter, OpId, Type, Value, ValueId,
};
use mlb_isa::{SsrCfgReg, CSR_SSR, NUM_SSR_DATA_MOVERS};

use crate::rv_scf::RvForOp;
use crate::rv_snitch::FrepOp;
use crate::snitch_stream::StreamingRegionOp;
use crate::{rv, rv_cf, rv_func, rv_scf, rv_snitch, snitch_stream};

/// Registers execution semantics for every op of this crate's dialects.
pub fn register_exec(registry: &mut ExecRegistry) {
    registry.register(rv_func::RET, |_, _, _, _| Ok(Flow::Return));
    registry.register(rv::GET_REGISTER, exec_nop);
    registry.register(rv::LI, exec_li);
    registry.register(rv::MV, exec_move);
    for name in rv::INT_BINARY {
        registry.register(name, exec_int_binary);
    }
    for name in rv::INT_IMM {
        registry.register(name, exec_int_imm);
    }
    registry.register(rv::LW, exec_lw);
    registry.register(rv::SW, exec_sw);
    for name in rv::FP_LOADS {
        registry.register(name, exec_fp_load);
    }
    for name in rv::FP_STORES {
        registry.register(name, exec_fp_store);
    }
    for name in rv::FP_BINARY {
        registry.register(name, exec_fp_binary);
    }
    for name in rv::FP_TERNARY {
        registry.register(name, exec_fmadd);
    }
    registry.register(rv::FMV_D, exec_move);
    registry.register(rv::FCVT_D_W, exec_fcvt);
    registry.register(rv::FCVT_S_W, exec_fcvt);
    registry.register(rv::CSRRSI, exec_csr);
    registry.register(rv::CSRRCI, exec_csr);
    for name in rv_snitch::SIMD_BINARY {
        registry.register(name, exec_fp_binary);
    }
    registry.register(rv_snitch::VFCPKA_S_S, exec_fp_binary);
    registry.register(rv_snitch::VFMAC_S, exec_vfmac);
    registry.register(rv_snitch::VFSUM_S, exec_vfsum);
    registry.register(rv_snitch::SCFGWI, exec_scfgwi);
    registry.register(rv_snitch::SSR_ENABLE, exec_ssr_toggle);
    registry.register(rv_snitch::SSR_DISABLE, exec_ssr_toggle);
    registry.register(rv_snitch::HARTID, exec_hartid);
    registry.register(rv_snitch::BARRIER, exec_nop);
    registry.register(rv_snitch::FREP_OUTER, exec_frep);
    registry.register(snitch_stream::STREAMING_REGION, exec_streaming_region);
    registry.register(snitch_stream::WRITE, exec_stream_write);
    registry.register(rv_scf::FOR, exec_rv_for);
    registry.register(rv_scf::YIELD, exec_nop);
    registry.register(rv_cf::J, exec_j);
    for name in rv_cf::CONDITIONAL_BRANCHES {
        registry.register(name, exec_branch);
    }
}

fn exec_nop(
    _it: &mut Interpreter,
    _ctx: &Context,
    _reg: &ExecRegistry,
    _op: OpId,
) -> Result<Flow, InterpError> {
    Ok(Flow::Continue)
}

/// Canonical integer-register value: the 32-bit pattern, zero-extended.
fn canon(v: u32) -> Value {
    Value::Int(i64::from(v))
}

fn get_u32(it: &mut Interpreter, ctx: &Context, op: OpId, v: ValueId) -> Result<u32, InterpError> {
    let value = it.get(ctx, v).map_err(|m| InterpError::at(op, m))?;
    Ok(value.as_int().map_err(|m| InterpError::at(op, m))? as u32)
}

fn imm_attr(ctx: &Context, op: OpId, key: &str) -> Result<i64, InterpError> {
    ctx.op(op)
        .attr(key)
        .and_then(Attribute::as_int)
        .ok_or_else(|| InterpError::at(op, format!("missing integer `{key}` attribute")))
}

/// Reads the raw bits of an FP value, bypassing stream semantics when it
/// is pinned to a physical register — the paths the machine reads
/// directly from the register file (`fsd`/`fsw` sources, SIMD
/// accumulators).
fn fp_bits_direct(
    it: &mut Interpreter,
    ctx: &Context,
    op: OpId,
    v: ValueId,
) -> Result<u64, InterpError> {
    match ctx.value_type(v) {
        Type::FpRegister(Some(r)) => Ok(it.f[r.index() as usize]),
        _ => {
            let value = it.get(ctx, v).map_err(|m| InterpError::at(op, m))?;
            value.as_bits().map_err(|m| InterpError::at(op, m))
        }
    }
}

/// Writes raw FP bits, bypassing stream semantics when the destination is
/// pinned (the `fld`/`flw` path: loads never push to streams).
fn set_fp_bits_direct(
    it: &mut Interpreter,
    ctx: &Context,
    op: OpId,
    v: ValueId,
    bits: u64,
) -> Result<(), InterpError> {
    match ctx.value_type(v) {
        Type::FpRegister(Some(r)) => {
            it.f[r.index() as usize] = bits;
            Ok(())
        }
        _ => it.set(ctx, v, Value::Bits(bits)).map_err(|m| InterpError::at(op, m)),
    }
}

fn exec_li(
    it: &mut Interpreter,
    ctx: &Context,
    _reg: &ExecRegistry,
    op: OpId,
) -> Result<Flow, InterpError> {
    let imm = imm_attr(ctx, op, "imm")?;
    it.set(ctx, ctx.op(op).results[0], canon(imm as u32)).map_err(|m| InterpError::at(op, m))?;
    Ok(Flow::Continue)
}

fn exec_move(
    it: &mut Interpreter,
    ctx: &Context,
    _reg: &ExecRegistry,
    op: OpId,
) -> Result<Flow, InterpError> {
    let o = ctx.op(op);
    it.bind(ctx, o.results[0], o.operands[0]).map_err(|m| InterpError::at(op, m))?;
    Ok(Flow::Continue)
}

fn exec_int_binary(
    it: &mut Interpreter,
    ctx: &Context,
    _reg: &ExecRegistry,
    op: OpId,
) -> Result<Flow, InterpError> {
    let o = ctx.op(op);
    let (lhs, rhs, result) = (o.operands[0], o.operands[1], o.results[0]);
    let name = o.name.clone();
    let a = get_u32(it, ctx, op, lhs)?;
    let b = get_u32(it, ctx, op, rhs)?;
    let value = match name.as_str() {
        rv::ADD => a.wrapping_add(b),
        rv::SUB => a.wrapping_sub(b),
        rv::MUL => a.wrapping_mul(b),
        other => return Err(InterpError::at(op, format!("unknown int op `{other}`"))),
    };
    it.set(ctx, result, canon(value)).map_err(|m| InterpError::at(op, m))?;
    Ok(Flow::Continue)
}

fn exec_int_imm(
    it: &mut Interpreter,
    ctx: &Context,
    _reg: &ExecRegistry,
    op: OpId,
) -> Result<Flow, InterpError> {
    let o = ctx.op(op);
    let (src, result) = (o.operands[0], o.results[0]);
    let name = o.name.clone();
    let a = get_u32(it, ctx, op, src)?;
    let imm = imm_attr(ctx, op, "imm")?;
    let value = match name.as_str() {
        rv::ADDI => a.wrapping_add(imm as u32),
        rv::SLLI => a.wrapping_shl(imm as u32),
        other => return Err(InterpError::at(op, format!("unknown int-imm op `{other}`"))),
    };
    it.set(ctx, result, canon(value)).map_err(|m| InterpError::at(op, m))?;
    Ok(Flow::Continue)
}

fn exec_lw(
    it: &mut Interpreter,
    ctx: &Context,
    _reg: &ExecRegistry,
    op: OpId,
) -> Result<Flow, InterpError> {
    let o = ctx.op(op);
    let (base, result) = (o.operands[0], o.results[0]);
    let addr = get_u32(it, ctx, op, base)?.wrapping_add(imm_attr(ctx, op, "imm")? as u32);
    let bytes = it.read_bytes::<4>(addr).map_err(|m| InterpError::at(op, m))?;
    it.set(ctx, result, canon(u32::from_le_bytes(bytes))).map_err(|m| InterpError::at(op, m))?;
    Ok(Flow::Continue)
}

fn exec_sw(
    it: &mut Interpreter,
    ctx: &Context,
    _reg: &ExecRegistry,
    op: OpId,
) -> Result<Flow, InterpError> {
    let o = ctx.op(op);
    let (value, base) = (o.operands[0], o.operands[1]);
    let v = get_u32(it, ctx, op, value)?;
    let addr = get_u32(it, ctx, op, base)?.wrapping_add(imm_attr(ctx, op, "imm")? as u32);
    it.write_bytes(addr, v.to_le_bytes()).map_err(|m| InterpError::at(op, m))?;
    Ok(Flow::Continue)
}

fn exec_fp_load(
    it: &mut Interpreter,
    ctx: &Context,
    _reg: &ExecRegistry,
    op: OpId,
) -> Result<Flow, InterpError> {
    let o = ctx.op(op);
    let (base, result) = (o.operands[0], o.results[0]);
    let name = o.name.clone();
    let addr = get_u32(it, ctx, op, base)?.wrapping_add(imm_attr(ctx, op, "imm")? as u32);
    let e = |m: String| InterpError::at(op, m);
    let bits = match name.as_str() {
        rv::FLD => u64::from_le_bytes(it.read_bytes::<8>(addr).map_err(e)?),
        rv::FLW => {
            u64::from(u32::from_le_bytes(it.read_bytes::<4>(addr).map_err(e)?))
                | 0xFFFF_FFFF_0000_0000
        }
        other => return Err(InterpError::at(op, format!("unknown FP load `{other}`"))),
    };
    set_fp_bits_direct(it, ctx, op, result, bits)?;
    Ok(Flow::Continue)
}

fn exec_fp_store(
    it: &mut Interpreter,
    ctx: &Context,
    _reg: &ExecRegistry,
    op: OpId,
) -> Result<Flow, InterpError> {
    let o = ctx.op(op);
    let (value, base) = (o.operands[0], o.operands[1]);
    let name = o.name.clone();
    let addr = get_u32(it, ctx, op, base)?.wrapping_add(imm_attr(ctx, op, "imm")? as u32);
    let bits = fp_bits_direct(it, ctx, op, value)?;
    let e = |m: String| InterpError::at(op, m);
    match name.as_str() {
        rv::FSD => it.write_bytes(addr, bits.to_le_bytes()).map_err(e)?,
        rv::FSW => it.write_bytes(addr, (bits as u32).to_le_bytes()).map_err(e)?,
        other => return Err(InterpError::at(op, format!("unknown FP store `{other}`"))),
    }
    Ok(Flow::Continue)
}

fn s_lane0(x: u64) -> f32 {
    f32::from_bits(x as u32)
}

fn s_lane1(x: u64) -> f32 {
    f32::from_bits((x >> 32) as u32)
}

fn pack(lo: f32, hi: f32) -> u64 {
    u64::from(lo.to_bits()) | (u64::from(hi.to_bits()) << 32)
}

fn scalar_s(v: f32) -> u64 {
    u64::from(v.to_bits()) | 0xFFFF_FFFF_0000_0000
}

fn exec_fp_binary(
    it: &mut Interpreter,
    ctx: &Context,
    _reg: &ExecRegistry,
    op: OpId,
) -> Result<Flow, InterpError> {
    let o = ctx.op(op);
    let (lhs, rhs, result) = (o.operands[0], o.operands[1], o.results[0]);
    let name = o.name.clone();
    let e = |m: String| InterpError::at(op, m);
    let a = it.get(ctx, lhs).map_err(e)?.as_bits().map_err(e)?;
    let b = it.get(ctx, rhs).map_err(e)?.as_bits().map_err(e)?;
    let d = f64::from_bits;
    let bits = match name.as_str() {
        rv::FADD_D => (d(a) + d(b)).to_bits(),
        rv::FSUB_D => (d(a) - d(b)).to_bits(),
        rv::FMUL_D => (d(a) * d(b)).to_bits(),
        rv::FDIV_D => (d(a) / d(b)).to_bits(),
        rv::FMAX_D => d(a).max(d(b)).to_bits(),
        rv::FADD_S => scalar_s(s_lane0(a) + s_lane0(b)),
        rv::FSUB_S => scalar_s(s_lane0(a) - s_lane0(b)),
        rv::FMUL_S => scalar_s(s_lane0(a) * s_lane0(b)),
        rv::FMAX_S => scalar_s(s_lane0(a).max(s_lane0(b))),
        rv_snitch::VFADD_S => pack(s_lane0(a) + s_lane0(b), s_lane1(a) + s_lane1(b)),
        rv_snitch::VFMUL_S => pack(s_lane0(a) * s_lane0(b), s_lane1(a) * s_lane1(b)),
        rv_snitch::VFMAX_S => pack(s_lane0(a).max(s_lane0(b)), s_lane1(a).max(s_lane1(b))),
        rv_snitch::VFCPKA_S_S => pack(s_lane0(a), s_lane0(b)),
        other => return Err(InterpError::at(op, format!("unknown FP op `{other}`"))),
    };
    it.set(ctx, result, Value::Bits(bits)).map_err(e)?;
    Ok(Flow::Continue)
}

fn exec_fmadd(
    it: &mut Interpreter,
    ctx: &Context,
    _reg: &ExecRegistry,
    op: OpId,
) -> Result<Flow, InterpError> {
    let o = ctx.op(op);
    let (ra, rb, rc, result) = (o.operands[0], o.operands[1], o.operands[2], o.results[0]);
    let name = o.name.clone();
    let e = |m: String| InterpError::at(op, m);
    let a = it.get(ctx, ra).map_err(e)?.as_bits().map_err(e)?;
    let b = it.get(ctx, rb).map_err(e)?.as_bits().map_err(e)?;
    let c = it.get(ctx, rc).map_err(e)?.as_bits().map_err(e)?;
    let bits = match name.as_str() {
        rv::FMADD_D => f64::from_bits(a).mul_add(f64::from_bits(b), f64::from_bits(c)).to_bits(),
        rv::FMADD_S => u64::from(
            f32::from_bits(a as u32)
                .mul_add(f32::from_bits(b as u32), f32::from_bits(c as u32))
                .to_bits(),
        ),
        other => return Err(InterpError::at(op, format!("unknown fmadd `{other}`"))),
    };
    it.set(ctx, result, Value::Bits(bits)).map_err(e)?;
    Ok(Flow::Continue)
}

fn exec_vfmac(
    it: &mut Interpreter,
    ctx: &Context,
    _reg: &ExecRegistry,
    op: OpId,
) -> Result<Flow, InterpError> {
    let o = ctx.op(op);
    let (rs1, rs2, rd_in, result) = (o.operands[0], o.operands[1], o.operands[2], o.results[0]);
    let e = |m: String| InterpError::at(op, m);
    let a = it.get(ctx, rs1).map_err(e)?.as_bits().map_err(e)?;
    let b = it.get(ctx, rs2).map_err(e)?.as_bits().map_err(e)?;
    // The accumulator is the destination register: the machine reads it
    // directly from the register file, never from a stream.
    let acc = fp_bits_direct(it, ctx, op, rd_in)?;
    let lo = s_lane0(a).mul_add(s_lane0(b), s_lane0(acc));
    let hi = s_lane1(a).mul_add(s_lane1(b), s_lane1(acc));
    it.set(ctx, result, Value::Bits(pack(lo, hi))).map_err(e)?;
    Ok(Flow::Continue)
}

fn exec_vfsum(
    it: &mut Interpreter,
    ctx: &Context,
    _reg: &ExecRegistry,
    op: OpId,
) -> Result<Flow, InterpError> {
    let o = ctx.op(op);
    let (rs1, rd_in, result) = (o.operands[0], o.operands[1], o.results[0]);
    let e = |m: String| InterpError::at(op, m);
    let a = it.get(ctx, rs1).map_err(e)?.as_bits().map_err(e)?;
    let acc = fp_bits_direct(it, ctx, op, rd_in)?;
    let sum = s_lane0(acc) + s_lane0(a) + s_lane1(a);
    let bits = (acc & 0xFFFF_FFFF_0000_0000) | u64::from(sum.to_bits());
    it.set(ctx, result, Value::Bits(bits)).map_err(e)?;
    Ok(Flow::Continue)
}

fn exec_fcvt(
    it: &mut Interpreter,
    ctx: &Context,
    _reg: &ExecRegistry,
    op: OpId,
) -> Result<Flow, InterpError> {
    let o = ctx.op(op);
    let (src, result) = (o.operands[0], o.results[0]);
    let name = o.name.clone();
    let v = get_u32(it, ctx, op, src)? as i32;
    let bits = match name.as_str() {
        rv::FCVT_D_W => f64::from(v).to_bits(),
        rv::FCVT_S_W => u64::from((v as f32).to_bits()) | 0xFFFF_FFFF_0000_0000,
        other => return Err(InterpError::at(op, format!("unknown fcvt `{other}`"))),
    };
    it.set(ctx, result, Value::Bits(bits)).map_err(|m| InterpError::at(op, m))?;
    Ok(Flow::Continue)
}

fn exec_csr(
    it: &mut Interpreter,
    ctx: &Context,
    _reg: &ExecRegistry,
    op: OpId,
) -> Result<Flow, InterpError> {
    let csr = imm_attr(ctx, op, "csr")?;
    let imm = imm_attr(ctx, op, "imm")?;
    if csr == i64::from(CSR_SSR) && imm & 1 == 1 {
        it.ssr_enabled = ctx.op(op).name == rv::CSRRSI;
    }
    Ok(Flow::Continue)
}

fn exec_scfgwi(
    it: &mut Interpreter,
    ctx: &Context,
    _reg: &ExecRegistry,
    op: OpId,
) -> Result<Flow, InterpError> {
    let value = get_u32(it, ctx, op, ctx.op(op).operands[0])?;
    let imm = imm_attr(ctx, op, "imm")?;
    let (reg, dm) = SsrCfgReg::from_scfg_imm(imm as u16)
        .ok_or_else(|| InterpError::at(op, format!("invalid scfgwi immediate {imm}")))?;
    it.movers[dm.index() as usize].configure(reg, value);
    Ok(Flow::Continue)
}

fn exec_hartid(
    it: &mut Interpreter,
    ctx: &Context,
    _reg: &ExecRegistry,
    op: OpId,
) -> Result<Flow, InterpError> {
    let hart = it.hart;
    it.set(ctx, ctx.op(op).results[0], Value::Int(hart)).map_err(|m| InterpError::at(op, m))?;
    Ok(Flow::Continue)
}

fn exec_ssr_toggle(
    it: &mut Interpreter,
    ctx: &Context,
    _reg: &ExecRegistry,
    op: OpId,
) -> Result<Flow, InterpError> {
    it.ssr_enabled = ctx.op(op).name == rv_snitch::SSR_ENABLE;
    Ok(Flow::Continue)
}

/// Runs the non-terminator body ops of a structured loop iteration.
fn run_body_ops(
    it: &mut Interpreter,
    ctx: &Context,
    reg: &ExecRegistry,
    op: OpId,
    body_ops: &[OpId],
) -> Result<(), InterpError> {
    for &body_op in body_ops {
        match reg.run_op(it, ctx, body_op)? {
            Flow::Continue => {}
            other => {
                return Err(InterpError::at(op, format!("unexpected {other:?} in a loop body")))
            }
        }
    }
    Ok(())
}

fn exec_frep(
    it: &mut Interpreter,
    ctx: &Context,
    reg: &ExecRegistry,
    op: OpId,
) -> Result<Flow, InterpError> {
    let f =
        FrepOp::new(ctx, op).ok_or_else(|| InterpError::at(op, "not an rv_snitch.frep_outer"))?;
    let e = |m: String| InterpError::at(op, m);
    // The machine executes the body `x(rs1) + 1` times; the lowering
    // materializes `count = iterations - 1` accordingly.
    let reps = u64::from(get_u32(it, ctx, op, f.count(ctx))?) + 1;
    let args = f.iter_args(ctx).to_vec();
    let inits = f.iter_inits(ctx).to_vec();
    for (&arg, &init) in args.iter().zip(&inits) {
        it.bind(ctx, arg, init).map_err(e)?;
    }
    let body = f.body(ctx);
    let term = f.yield_op(ctx);
    let body_ops: Vec<OpId> = ctx.block_ops(body).iter().copied().filter(|&o| o != term).collect();
    let yields = ctx.op(term).operands.clone();
    for _ in 0..reps {
        run_body_ops(it, ctx, reg, op, &body_ops)?;
        for (&arg, &y) in args.iter().zip(&yields) {
            it.bind(ctx, arg, y).map_err(e)?;
        }
    }
    for (&res, &arg) in ctx.op(op).results.to_vec().iter().zip(&args) {
        it.bind(ctx, res, arg).map_err(e)?;
    }
    Ok(Flow::Continue)
}

/// Evaluates a structured-loop bound the way the control-flow lowering
/// does: bounds with constant defining ops fold to their immediate (the
/// register allocator may clobber their registers before the loop runs);
/// only genuinely dynamic bounds are read from the live value.
fn loop_bound(
    it: &mut Interpreter,
    ctx: &Context,
    op: OpId,
    v: mlb_ir::ValueId,
) -> Result<i32, InterpError> {
    if let Some(c) = crate::rv::constant_int_value(ctx, v) {
        return Ok(c as u32 as i32);
    }
    Ok(get_u32(it, ctx, op, v)? as i32)
}

fn exec_rv_for(
    it: &mut Interpreter,
    ctx: &Context,
    reg: &ExecRegistry,
    op: OpId,
) -> Result<Flow, InterpError> {
    let f = RvForOp::new(ctx, op).ok_or_else(|| InterpError::at(op, "not an rv_scf.for"))?;
    let e = |m: String| InterpError::at(op, m);
    // Loop comparisons lower to `blt`, which the machine evaluates on
    // signed 32-bit register contents.
    let lb = loop_bound(it, ctx, op, f.lower_bound(ctx))?;
    let ub = loop_bound(it, ctx, op, f.upper_bound(ctx))?;
    let step = loop_bound(it, ctx, op, f.step(ctx))?;
    if step <= 0 {
        return Err(InterpError::at(op, format!("non-positive loop step {step}")));
    }
    let args = f.iter_args(ctx).to_vec();
    let inits = f.iter_inits(ctx).to_vec();
    for (&arg, &init) in args.iter().zip(&inits) {
        it.bind(ctx, arg, init).map_err(e)?;
    }
    let body = f.body(ctx);
    let term = f.yield_op(ctx);
    let body_ops: Vec<OpId> = ctx.block_ops(body).iter().copied().filter(|&o| o != term).collect();
    let yields = ctx.op(term).operands.clone();
    let iv = f.induction_var(ctx);
    let mut i = lb;
    while i < ub {
        it.set(ctx, iv, canon(i as u32)).map_err(e)?;
        run_body_ops(it, ctx, reg, op, &body_ops)?;
        for (&arg, &y) in args.iter().zip(&yields) {
            it.bind(ctx, arg, y).map_err(e)?;
        }
        i = i.wrapping_add(step);
    }
    for (&res, &arg) in ctx.op(op).results.to_vec().iter().zip(&args) {
        it.bind(ctx, res, arg).map_err(e)?;
    }
    Ok(Flow::Continue)
}

fn exec_streaming_region(
    it: &mut Interpreter,
    ctx: &Context,
    reg: &ExecRegistry,
    op: OpId,
) -> Result<Flow, InterpError> {
    let sr = StreamingRegionOp::new(ctx, op)
        .ok_or_else(|| InterpError::at(op, "not a snitch_stream.streaming_region"))?;
    let num_inputs = sr.num_inputs(ctx);
    let patterns: Vec<_> = ctx
        .op(op)
        .attr(snitch_stream::PATTERNS)
        .and_then(Attribute::as_array)
        .ok_or_else(|| InterpError::at(op, "streaming_region is missing `patterns`"))?
        .iter()
        .map(|a| {
            a.as_stream_pattern()
                .cloned()
                .ok_or_else(|| InterpError::at(op, "`patterns` entry is not a stream pattern"))
        })
        .collect::<Result<_, _>>()?;
    if patterns.len() > NUM_SSR_DATA_MOVERS {
        return Err(InterpError::at(op, "more streams than data movers"));
    }
    let base_ptrs = sr.base_pointers(ctx).to_vec();
    for (dm, (pattern, &ptr)) in patterns.iter().zip(&base_ptrs).enumerate() {
        let base = get_u32(it, ctx, op, ptr)?;
        let rank = pattern.ub.len();
        for (d, (&ub, &stride)) in pattern.ub.iter().zip(&pattern.strides).enumerate() {
            it.movers[dm].configure(SsrCfgReg::Bound(d as u8), ub as u32 - 1);
            it.movers[dm].configure(SsrCfgReg::Stride(d as u8), stride as u32);
        }
        it.movers[dm].configure(SsrCfgReg::Repeat, pattern.repeat as u32);
        let ptr_reg = if dm < num_inputs {
            SsrCfgReg::RPtr(rank as u8 - 1)
        } else {
            SsrCfgReg::WPtr(rank as u8 - 1)
        };
        it.movers[dm].configure(ptr_reg, base);
    }
    // Body arguments are pinned to `ft0..`; reads route through the armed
    // movers automatically, so there is nothing to bind.
    it.ssr_enabled = true;
    let flow = reg.run_block(it, ctx, sr.body(ctx))?;
    it.ssr_enabled = false;
    match flow {
        Flow::Continue => Ok(Flow::Continue),
        other => Err(InterpError::at(op, format!("unexpected {other:?} in a streaming region"))),
    }
}

fn exec_stream_write(
    it: &mut Interpreter,
    ctx: &Context,
    _reg: &ExecRegistry,
    op: OpId,
) -> Result<Flow, InterpError> {
    let o = ctx.op(op);
    // `snitch_stream.write value -> stream` emits `fmv.d stream, value`,
    // elided when both are the same register.
    it.bind(ctx, o.operands[1], o.operands[0]).map_err(|m| InterpError::at(op, m))?;
    Ok(Flow::Continue)
}

fn exec_j(
    _it: &mut Interpreter,
    ctx: &Context,
    _reg: &ExecRegistry,
    op: OpId,
) -> Result<Flow, InterpError> {
    Ok(Flow::Branch(ctx.op(op).successors[0]))
}

fn exec_branch(
    it: &mut Interpreter,
    ctx: &Context,
    _reg: &ExecRegistry,
    op: OpId,
) -> Result<Flow, InterpError> {
    let o = ctx.op(op);
    let (lhs, rhs) = (o.operands[0], o.operands[1]);
    let name = o.name.clone();
    let a = get_u32(it, ctx, op, lhs)? as i32;
    let b = get_u32(it, ctx, op, rhs)? as i32;
    let taken = match name.as_str() {
        rv_cf::BLT => a < b,
        rv_cf::BGE => a >= b,
        rv_cf::BNE => a != b,
        rv_cf::BEQ => a == b,
        other => return Err(InterpError::at(op, format!("unknown branch `{other}`"))),
    };
    let successors = &ctx.op(op).successors;
    Ok(Flow::Branch(successors[if taken { 0 } else { 1 }]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlb_ir::{OpSpec, StreamPattern};
    use mlb_isa::{FpReg, IntReg, TCDM_BASE};

    fn setup() -> (Context, ExecRegistry, mlb_ir::BlockId) {
        let mut ctx = Context::new();
        let mut reg = ExecRegistry::new();
        register_exec(&mut reg);
        let m = ctx.create_detached_op(OpSpec::new("test.wrap").regions(1));
        let b = ctx.create_block(ctx.op(m).regions[0], vec![]);
        (ctx, reg, b)
    }

    #[test]
    fn integer_and_fp_round_trip() {
        let (mut ctx, reg, b) = setup();
        let base = rv::li(&mut ctx, b, TCDM_BASE as i64);
        let off = rv::int_imm(&mut ctx, b, rv::ADDI, base, 8);
        let a = rv::fp_load(&mut ctx, b, rv::FLD, base, 0);
        let sum = rv::fp_binary(&mut ctx, b, rv::FADD_D, a, a);
        rv::fp_store(&mut ctx, b, rv::FSD, sum, off, 0);
        let mut it = Interpreter::new();
        it.write_f64_slice(TCDM_BASE, &[21.0, 0.0]).unwrap();
        assert_eq!(reg.run_block(&mut it, &ctx, b).unwrap(), Flow::Continue);
        assert_eq!(it.read_f64(TCDM_BASE + 8).unwrap(), 42.0);
    }

    #[test]
    fn negative_immediates_wrap_like_the_machine() {
        let (mut ctx, reg, b) = setup();
        let x = rv::li(&mut ctx, b, 5);
        let y = rv::int_imm(&mut ctx, b, rv::ADDI, x, -7);
        let z = rv::int_binary(&mut ctx, b, rv::SUB, x, y);
        let mut it = Interpreter::new();
        reg.run_block(&mut it, &ctx, b).unwrap();
        let vy = it.get(&ctx, y).unwrap().as_int().unwrap();
        let vz = it.get(&ctx, z).unwrap().as_int().unwrap();
        assert_eq!(vy as u32, (-2i32) as u32);
        assert_eq!(vz, 7);
    }

    #[test]
    fn frep_repeats_count_plus_one_times() {
        let (mut ctx, reg, b) = setup();
        let count = rv::li(&mut ctx, b, 2);
        let base = rv::li(&mut ctx, b, TCDM_BASE as i64);
        let x = rv::fp_load(&mut ctx, b, rv::FLD, base, 0);
        let acc = rv::fp_load(&mut ctx, b, rv::FLD, base, 8);
        let f = rv_snitch::build_frep(&mut ctx, b, count, vec![acc], |ctx, body, args| {
            vec![rv::fp_binary(ctx, body, rv::FADD_D, args[0], x)]
        });
        let total = ctx.op(f.0).results[0];
        rv::fp_store(&mut ctx, b, rv::FSD, total, base, 16);
        let mut it = Interpreter::new();
        it.write_f64_slice(TCDM_BASE, &[1.5, 10.0, 0.0]).unwrap();
        reg.run_block(&mut it, &ctx, b).unwrap();
        // count = 2 -> 3 iterations, 10 + 3 * 1.5.
        assert_eq!(it.read_f64(TCDM_BASE + 16).unwrap(), 14.5);
    }

    #[test]
    fn rv_loop_uses_signed_32_bit_compare() {
        let (mut ctx, reg, b) = setup();
        let lb = rv::li(&mut ctx, b, -2);
        let ub = rv::li(&mut ctx, b, 2);
        let step = rv::li(&mut ctx, b, 1);
        let zero = rv::li(&mut ctx, b, 0);
        let f = rv_scf::build_for(&mut ctx, b, lb, ub, step, vec![zero], |ctx, body, _iv, args| {
            vec![rv::int_imm(ctx, body, rv::ADDI, args[0], 1)]
        });
        let n = ctx.op(f.0).results[0];
        let mut it = Interpreter::new();
        reg.run_block(&mut it, &ctx, b).unwrap();
        // -2..2 runs 4 iterations; an unsigned compare would run none.
        assert_eq!(it.get(&ctx, n).unwrap().as_int().unwrap(), 4);
    }

    #[test]
    fn streaming_region_arms_movers_and_streams() {
        let (mut ctx, reg, b) = setup();
        let x_ptr = rv::li(&mut ctx, b, TCDM_BASE as i64);
        let z_ptr = rv::li(&mut ctx, b, (TCDM_BASE + 64) as i64);
        // `fadd.d ftX, ft0, ft0` pops the read stream twice per
        // iteration, so count = 1 (two iterations) consumes exactly the
        // four streamed elements, pairwise.
        let count = rv::li(&mut ctx, b, 1);
        let pattern = StreamPattern::from_logical(vec![4], vec![8], 0);
        snitch_stream::build_streaming_region(
            &mut ctx,
            b,
            vec![x_ptr],
            vec![z_ptr],
            vec![pattern.clone(), pattern],
            |ctx, body, streams| {
                rv_snitch::build_frep(ctx, body, count, vec![], |ctx, inner, _| {
                    let doubled = rv::fp_binary(ctx, inner, rv::FADD_D, streams[0], streams[0]);
                    snitch_stream::build_write(ctx, inner, doubled, streams[1]);
                    vec![]
                });
            },
        );
        let mut it = Interpreter::new();
        it.write_f64_slice(TCDM_BASE, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        reg.run_block(&mut it, &ctx, b).unwrap();
        let out = it.read_f64_slice(TCDM_BASE + 64, 2).unwrap();
        assert_eq!(out, vec![3.0, 7.0]);
        assert!(!it.ssr_enabled);
    }

    #[test]
    fn stream_write_to_same_register_is_elided() {
        let (mut ctx, reg, b) = setup();
        let ft1 = Type::FpRegister(Some(FpReg::ft(1)));
        let a = ctx.append_op(b, OpSpec::new(rv::GET_REGISTER).results(vec![ft1.clone()]));
        let av = ctx.op(a).results[0];
        let w = ctx.append_op(b, OpSpec::new(snitch_stream::WRITE).operands(vec![av, av]));
        let mut it = Interpreter::new();
        it.f[1] = 4.0f64.to_bits();
        reg.run_op(&mut it, &ctx, a).unwrap();
        reg.run_op(&mut it, &ctx, w).unwrap();
        assert_eq!(it.f[1], 4.0f64.to_bits());
    }

    #[test]
    fn branches_follow_machine_conditions() {
        let (mut ctx, reg, _b) = setup();
        let m = ctx.create_detached_op(OpSpec::new("test.wrap").regions(1));
        let region = ctx.op(m).regions[0];
        let entry = ctx.create_block(region, vec![]);
        let body = ctx.create_block(region, vec![]);
        let exit = ctx.create_block(region, vec![]);
        // i starts at 0; loop stores i to TCDM_BASE + 4*i and increments
        // until i == 3.
        let zero = rv::li(&mut ctx, entry, 0);
        let a1 = ctx.append_op(
            entry,
            OpSpec::new(rv::MV)
                .operands(vec![zero])
                .results(vec![Type::IntRegister(Some(IntReg::a(1)))]),
        );
        let i_reg = ctx.op(a1).results[0];
        rv_cf::build_j(&mut ctx, entry, body);
        let base = rv::li(&mut ctx, body, TCDM_BASE as i64);
        let four = rv::li(&mut ctx, body, 4);
        let off = rv::int_binary(&mut ctx, body, rv::MUL, i_reg, four);
        let addr = rv::int_binary(&mut ctx, body, rv::ADD, base, off);
        ctx.append_op(
            body,
            OpSpec::new(rv::SW).operands(vec![i_reg, addr]).attr("imm", Attribute::Int(0)),
        );
        let inc = rv::int_imm(&mut ctx, body, rv::ADDI, i_reg, 1);
        let upd = ctx.append_op(
            body,
            OpSpec::new(rv::MV)
                .operands(vec![inc])
                .results(vec![Type::IntRegister(Some(IntReg::a(1)))]),
        );
        let _ = upd;
        let limit = rv::li(&mut ctx, body, 3);
        rv_cf::build_branch(&mut ctx, body, rv_cf::BLT, i_reg, limit, body, exit);
        ctx.append_op(exit, OpSpec::new(rv_func::RET));
        let mut it = Interpreter::new();
        reg.run_cfg(&mut it, &ctx, region).unwrap();
        let words: Vec<u32> = (0..3)
            .map(|k| u32::from_le_bytes(it.read_bytes::<4>(TCDM_BASE + 4 * k).unwrap()))
            .collect();
        assert_eq!(words, vec![0, 1, 2]);
    }
}
