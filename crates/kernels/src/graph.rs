//! Layer graphs: chains of kernel layers compiled as a pipeline of
//! stages (one compiled artifact per stage), with adjacent element-wise
//! layers fused into one `memref_stream.generic`, intermediate buffers
//! placed in the TCDM by interval liveness ([`mlb_core::bufplace`]),
//! and a batched-inference cluster runner that reports end-to-end
//! cycles per request.
//!
//! This is the graph-of-kernels level sitting above the single-kernel
//! suite of Table 1: an NSNet2-like feed-forward block is a
//! `MatMulT → Sum(bias) → ReLU` chain repeated per layer, and the win
//! of the multi-level backend compounds when the element-wise tail is
//! fused into the producer's streamed loop nest instead of round-
//! tripping every intermediate through the TCDM.

use std::fmt;

use mlb_core::{compile, compile_with_stages, place, BufRequest, Flow, PipelineOptions, Stage};
use mlb_dialects::{arith, builtin, func, linalg};
use mlb_ir::{
    AffineMap, Context, ExecRegistry, Flow as ExecFlow, Interpreter, IteratorType, OpId, Type,
    Value,
};
use mlb_isa::{TCDM_BASE, TCDM_SIZE};
use mlb_sim::{pipeline_estimate, Cluster, Engine, ExecProgram, PipelineEstimate};

use crate::difftest::{exec_registry, find_kernel};
use crate::harness::{predecode, random_inputs_f64, FILL_VALUE};
use crate::reference::{reference_with, FmaMode};
use crate::suite::{Instance, Kind, Precision, Shape};

/// One layer of a [`LayerGraph`] (all layers are f64).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layer {
    /// Element-wise sum with a per-layer external operand (a bias of the
    /// same shape as the flowing value).
    Sum,
    /// Element-wise rectified linear unit.
    Relu,
    /// Matrix multiplication with transposed external weights
    /// `W(width × k)`: maps a flowing `(rows × k)` value to
    /// `(rows × width)`.
    MatMulT {
        /// Output columns (the layer's neuron count).
        width: i64,
    },
}

impl Layer {
    /// Whether the layer is element-wise (fusable into a neighbour).
    pub fn is_elementwise(self) -> bool {
        matches!(self, Layer::Sum | Layer::Relu)
    }

    /// Shape of the layer's output for a `(rows, cols)` input.
    pub fn out_shape(self, input: (i64, i64)) -> (i64, i64) {
        match self {
            Layer::Sum | Layer::Relu => input,
            Layer::MatMulT { width } => (input.0, width),
        }
    }

    /// Element count of the layer's external operand (bias or weights),
    /// `None` for layers without one.
    pub fn external_elems(self, input: (i64, i64)) -> Option<usize> {
        match self {
            Layer::Sum => Some((input.0 * input.1) as usize),
            Layer::Relu => None,
            Layer::MatMulT { width } => Some((width * input.1) as usize),
        }
    }

    /// The suite [`Instance`] computing this layer on a `(rows, cols)`
    /// input.
    pub fn instance(self, input: (i64, i64)) -> Instance {
        let (r, c) = input;
        match self {
            Layer::Sum => Instance::new(Kind::Sum, Shape::nm(r, c), Precision::F64),
            Layer::Relu => Instance::new(Kind::Relu, Shape::nm(r, c), Precision::F64),
            // matmult computes C(n×m) = A(n×k) · B(m×k): the flowing
            // value is A(r×c), the weights are B(width×c).
            Layer::MatMulT { width } => {
                Instance::new(Kind::MatMulT, Shape::nmk(r, width, c), Precision::F64)
            }
        }
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Layer::Sum => f.write_str("sum"),
            Layer::Relu => f.write_str("relu"),
            Layer::MatMulT { width } => write!(f, "matmult{width}"),
        }
    }
}

/// A linear graph of layers: one flowing value enters at `input` shape
/// and passes through `layers` in order. External operands (biases,
/// weights) are per-layer constants, written to the TCDM once per
/// batch.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LayerGraph {
    /// Graph name (used in bench scenario names and error messages).
    pub name: String,
    /// Shape `(rows, cols)` of the graph input.
    pub input: (i64, i64),
    /// The layer chain, in execution order.
    pub layers: Vec<Layer>,
}

impl LayerGraph {
    /// Creates a validated graph.
    ///
    /// # Errors
    ///
    /// When the graph is empty or any dimension is non-positive.
    pub fn new(
        name: impl Into<String>,
        input: (i64, i64),
        layers: Vec<Layer>,
    ) -> Result<LayerGraph, String> {
        if layers.is_empty() {
            return Err("a layer graph needs at least one layer".into());
        }
        if input.0 < 1 || input.1 < 1 {
            return Err(format!("graph input shape {}x{} is degenerate", input.0, input.1));
        }
        for (i, layer) in layers.iter().enumerate() {
            if let Layer::MatMulT { width } = layer {
                if *width < 1 {
                    return Err(format!("layer {i} has degenerate width {width}"));
                }
            }
        }
        Ok(LayerGraph { name: name.into(), input, layers })
    }

    /// Shapes of the values flowing between layers: entry `i` is the
    /// input of layer `i`, the last entry is the graph output.
    pub fn value_shapes(&self) -> Vec<(i64, i64)> {
        let mut shapes = Vec::with_capacity(self.layers.len() + 1);
        let mut cur = self.input;
        shapes.push(cur);
        for layer in &self.layers {
            cur = layer.out_shape(cur);
            shapes.push(cur);
        }
        shapes
    }

    /// Plans the graph: groups layers into stages (fusing maximal runs
    /// of adjacent element-wise layers when `fused`), and places every
    /// buffer in the TCDM with interval-liveness reuse.
    ///
    /// # Errors
    ///
    /// When the working set does not fit in the TCDM.
    pub fn plan(&self, fused: bool, double_buffer: bool) -> Result<GraphPlan, String> {
        GraphPlan::build(self, fused, double_buffer)
    }
}

impl fmt::Display for LayerGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}x{})", self.name, self.input.0, self.input.1)?;
        for layer in &self.layers {
            write!(f, " -> {layer}")?;
        }
        Ok(())
    }
}

/// One compiled stage of a planned graph: either a single layer or a
/// fused run of adjacent element-wise layers.
#[derive(Debug, Clone)]
pub struct GraphStage {
    /// Index of the stage's first layer in the graph.
    pub first_layer: usize,
    /// The layers this stage computes (more than one only for fused
    /// element-wise runs).
    pub layers: Vec<Layer>,
    /// Shape of the stage input.
    pub input_shape: (i64, i64),
    /// Kernel symbol of the stage's compiled artifact.
    pub symbol: String,
}

impl GraphStage {
    /// Whether the stage is a fused element-wise run.
    pub fn is_fused(&self) -> bool {
        self.layers.len() > 1
    }

    /// Shape of the stage output.
    pub fn output_shape(&self) -> (i64, i64) {
        let mut cur = self.input_shape;
        for layer in &self.layers {
            cur = layer.out_shape(cur);
        }
        cur
    }

    /// Element counts of the stage's external operands, in layer order.
    pub fn external_sizes(&self) -> Vec<usize> {
        let mut sizes = Vec::new();
        let mut shape = self.input_shape;
        for layer in &self.layers {
            if let Some(elems) = layer.external_elems(shape) {
                sizes.push(elems);
            }
            shape = layer.out_shape(shape);
        }
        sizes
    }

    /// Builds the stage's `linalg`-level module. Single-layer stages
    /// reuse the suite builder (so the compile service shares cached
    /// artifacts with plain kernel jobs); fused stages chain one
    /// generic per layer through scratch temporaries marked with
    /// [`func::TEMP_ARGS`], which the `memref-stream-fuse-elementwise`
    /// pass then collapses into a single generic.
    pub fn build_module(&self, ctx: &mut Context) -> OpId {
        if !self.is_fused() {
            return self.layers[0].instance(self.input_shape).build_module(ctx);
        }
        let (module, top) = builtin::build_module(ctx);
        let (r, c) = self.input_shape;
        let buf = Type::memref(vec![r, c], Type::F64);
        let n_ext = self.external_sizes().len();
        let n_temp = self.layers.len() - 1;
        let arg_tys = vec![buf; 1 + n_ext + n_temp + 1];
        let (f, entry) = func::build_func(ctx, top, &self.symbol, arg_tys, vec![]);
        let args = ctx.block_args(entry).to_vec();
        let temp_base = 1 + n_ext;
        let temp_indices: Vec<usize> = (temp_base..temp_base + n_temp).collect();
        func::set_temp_args(ctx, f, &temp_indices);
        let out = args[temp_base + n_temp];
        let mut cur = args[0];
        let mut next_ext = 1;
        let id = AffineMap::identity(2);
        for (j, layer) in self.layers.clone().into_iter().enumerate() {
            let target = if j + 1 == self.layers.len() { out } else { args[temp_base + j] };
            match layer {
                Layer::Sum => {
                    let y = args[next_ext];
                    next_ext += 1;
                    linalg::build_generic(
                        ctx,
                        entry,
                        vec![cur, y],
                        vec![target],
                        vec![id.clone(), id.clone(), id.clone()],
                        vec![IteratorType::Parallel, IteratorType::Parallel],
                        None,
                        |ctx, body, a| vec![arith::binary(ctx, body, arith::ADDF, a[0], a[1])],
                    );
                }
                Layer::Relu => {
                    let zero = arith::constant_float(ctx, entry, 0.0, Type::F64);
                    linalg::build_generic(
                        ctx,
                        entry,
                        vec![cur],
                        vec![target],
                        vec![id.clone(), id.clone()],
                        vec![IteratorType::Parallel, IteratorType::Parallel],
                        None,
                        |ctx, body, a| vec![arith::binary(ctx, body, arith::MAXIMUMF, a[0], zero)],
                    );
                }
                Layer::MatMulT { .. } => unreachable!("fused stages are element-wise only"),
            }
            cur = target;
        }
        func::build_return(ctx, entry, vec![]);
        module
    }

    /// The host reference of this stage for one request, chaining the
    /// per-layer suite references.
    pub fn reference(&self, input: &[f64], externals: &[Vec<f64>], mode: FmaMode) -> Vec<f64> {
        let mut cur = input.to_vec();
        let mut shape = self.input_shape;
        let mut next_ext = 0;
        for layer in &self.layers {
            let inst = layer.instance(shape);
            let inputs: Vec<Vec<f64>> = match layer {
                Layer::Relu => vec![cur.clone()],
                _ => {
                    let e = externals[next_ext].clone();
                    next_ext += 1;
                    vec![cur.clone(), e]
                }
            };
            cur = reference_with(&inst, &inputs, FILL_VALUE, mode);
            shape = layer.out_shape(shape);
        }
        cur
    }
}

impl fmt::Display for GraphStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[", self.symbol)?;
        for (i, layer) in self.layers.iter().enumerate() {
            if i > 0 {
                f.write_str("+")?;
            }
            write!(f, "{layer}")?;
        }
        f.write_str("]")
    }
}

/// A planned graph: the stage grouping plus the TCDM placement of every
/// flowing value, external operand, and fused-stage temporary.
#[derive(Debug, Clone)]
pub struct GraphPlan {
    /// The graph this plan was built from.
    pub graph: LayerGraph,
    /// The stages, in execution order.
    pub stages: Vec<GraphStage>,
    /// Whether flowing values are double-buffered (two copies, one per
    /// batch parity) so a pipelined cluster can overlap adjacent
    /// requests.
    pub double_buffered: bool,
    /// Total TCDM bytes of the placement.
    pub total_bytes: u64,
    /// Element counts of the flowing values (stage boundaries):
    /// entry `s` is the input of stage `s`.
    pub value_elems: Vec<usize>,
    value_addrs: Vec<[u32; 2]>,
    external_addrs: Vec<Vec<u32>>,
    temp_addrs: Vec<Vec<u32>>,
}

impl GraphPlan {
    fn build(graph: &LayerGraph, fused: bool, double_buffer: bool) -> Result<GraphPlan, String> {
        // Stage grouping: maximal runs of adjacent element-wise layers
        // become one fused stage; everything else is a single-layer
        // stage.
        let mut stages: Vec<GraphStage> = Vec::new();
        let mut shape = graph.input;
        let mut i = 0;
        while i < graph.layers.len() {
            let run_end = if fused && graph.layers[i].is_elementwise() {
                let mut j = i + 1;
                while j < graph.layers.len() && graph.layers[j].is_elementwise() {
                    j += 1;
                }
                j
            } else {
                i + 1
            };
            let layers: Vec<Layer> = graph.layers[i..run_end].to_vec();
            let symbol = if layers.len() > 1 {
                let names: Vec<String> = layers.iter().map(|l| l.to_string()).collect();
                format!("fused_{}", names.join("_"))
            } else {
                layers[0].instance(shape).symbol()
            };
            let stage = GraphStage { first_layer: i, layers, input_shape: shape, symbol };
            shape = stage.output_shape();
            stages.push(stage);
            i = run_end;
        }

        let num_stages = stages.len();
        let copies = if double_buffer { 2 } else { 1 };
        // In double-buffered mode adjacent requests are skewed by one
        // stage, so every lifetime is widened by one stage to stay
        // disjoint from the overlapping request's working set.
        let widen = u32::from(double_buffer);

        // Value v is written during stage v-1 and read during stage v
        // (v = 0 is the graph input, v = num_stages the output, which
        // stays live one step past its producer for readback).
        let mut value_elems = Vec::with_capacity(num_stages + 1);
        let mut cur = graph.input;
        value_elems.push((cur.0 * cur.1) as usize);
        for stage in &stages {
            cur = stage.output_shape();
            value_elems.push((cur.0 * cur.1) as usize);
        }

        let mut requests: Vec<BufRequest> = Vec::new();
        for (v, &elems) in value_elems.iter().enumerate() {
            let start = (v as u32).saturating_sub(1);
            let end = v as u32 + 1 + widen;
            for _ in 0..copies {
                requests.push(BufRequest::new(elems as u64 * 8, start, end));
            }
        }
        // Externals are written once before the batch and read by every
        // request: live for the whole schedule.
        for stage in &stages {
            for elems in stage.external_sizes() {
                requests.push(BufRequest::new(elems as u64 * 8, 0, num_stages as u32 + 1));
            }
        }
        // Fused-stage temporaries are scratch within their stage; after
        // fusion the compiled kernel never touches them, but the
        // unfused interpreter snapshots and the legality fallback do,
        // so they get real (stage-local) storage.
        for (s, stage) in stages.iter().enumerate() {
            if stage.is_fused() {
                let (r, c) = stage.input_shape;
                for _ in 0..stage.layers.len() - 1 {
                    requests.push(BufRequest::new(
                        (r * c) as u64 * 8,
                        s as u32,
                        s as u32 + 1 + widen,
                    ));
                }
            }
        }

        let placement = place(&requests);
        if placement.total_bytes > TCDM_SIZE as u64 {
            return Err(format!(
                "graph `{}` needs {} TCDM bytes but the cluster has {}",
                graph.name, placement.total_bytes, TCDM_SIZE
            ));
        }
        let addr = |offset: u64| TCDM_BASE + offset as u32;

        let mut offsets = placement.offsets.into_iter();
        let mut value_addrs = Vec::with_capacity(num_stages + 1);
        for _ in 0..=num_stages {
            let a = addr(offsets.next().unwrap());
            let b = if copies == 2 { addr(offsets.next().unwrap()) } else { a };
            value_addrs.push([a, b]);
        }
        let mut external_addrs = Vec::with_capacity(num_stages);
        for stage in &stages {
            external_addrs.push(
                stage.external_sizes().iter().map(|_| addr(offsets.next().unwrap())).collect(),
            );
        }
        let mut temp_addrs = Vec::with_capacity(num_stages);
        for stage in &stages {
            let n_temp = if stage.is_fused() { stage.layers.len() - 1 } else { 0 };
            temp_addrs.push((0..n_temp).map(|_| addr(offsets.next().unwrap())).collect());
        }

        Ok(GraphPlan {
            graph: graph.clone(),
            stages,
            double_buffered: double_buffer,
            total_bytes: placement.total_bytes,
            value_elems,
            value_addrs,
            external_addrs,
            temp_addrs,
        })
    }

    /// TCDM address of the graph input for batch parity `parity`.
    pub fn input_addr(&self, parity: usize) -> u32 {
        self.value_addrs[0][parity & 1]
    }

    /// TCDM address of the graph output for batch parity `parity`.
    pub fn output_addr(&self, parity: usize) -> u32 {
        self.value_addrs[self.stages.len()][parity & 1]
    }

    /// TCDM addresses of stage `stage`'s external operands.
    pub fn external_addrs(&self, stage: usize) -> &[u32] {
        &self.external_addrs[stage]
    }

    /// The kernel argument addresses of stage `stage` for batch parity
    /// `parity`, in the stage module's argument order: flowing input,
    /// externals, fused temporaries, flowing output.
    pub fn stage_args(&self, stage: usize, parity: usize) -> Vec<u32> {
        let p = parity & 1;
        let mut args = vec![self.value_addrs[stage][p]];
        args.extend_from_slice(&self.external_addrs[stage]);
        args.extend_from_slice(&self.temp_addrs[stage]);
        args.push(self.value_addrs[stage + 1][p]);
        args
    }
}

/// Configuration of a batched graph run.
#[derive(Debug, Clone, Copy)]
pub struct GraphRunConfig {
    /// Fuse adjacent element-wise layers into single stages.
    pub fused: bool,
    /// Number of requests to run back to back.
    pub batch: usize,
    /// Cluster width each stage is compiled for.
    pub cores: usize,
    /// Operand seed (inputs and externals derive from it).
    pub seed: u64,
    /// Simulator engine override (`None` = process default).
    pub engine: Option<Engine>,
}

/// Everything measured in one verified batched graph run.
#[derive(Debug)]
pub struct GraphRunOutcome {
    /// Stage symbols, in execution order.
    pub stage_symbols: Vec<String>,
    /// Cycles per stage, summed over the whole batch.
    pub stage_cycles: Vec<u64>,
    /// End-to-end cycles of the batch (sum over stages and requests).
    pub total_cycles: u64,
    /// `total_cycles / batch`.
    pub cycles_per_request: f64,
    /// Pipeline-overlap model over the mean per-request stage cycles.
    pub estimate: PipelineEstimate,
    /// Verified graph outputs, one per request.
    pub outputs: Vec<Vec<f64>>,
    /// TCDM bytes of the buffer placement.
    pub tcdm_bytes: u64,
    /// Whether flowing values were double-buffered.
    pub double_buffered: bool,
}

/// Runs `graph` for a batch of requests on one cluster, verifying every
/// stage of every request bit-for-bit against the chained host
/// reference (accepting either multiply-accumulate rounding for
/// reduction stages, like the kernel difftest).
///
/// Stages are compiled once and re-invoked per request; flowing values
/// are double-buffered when both `batch > 1` and `cores > 1`.
///
/// # Errors
///
/// Any planning, compilation, simulation or verification failure.
pub fn run_graph(graph: &LayerGraph, cfg: &GraphRunConfig) -> Result<GraphRunOutcome, String> {
    if cfg.batch == 0 {
        return Err("batch must be at least 1".into());
    }
    if cfg.cores == 0 {
        return Err("cores must be at least 1".into());
    }
    let double = cfg.batch > 1 && cfg.cores > 1;
    let plan = graph.plan(cfg.fused, double)?;

    let mut execs = Vec::with_capacity(plan.stages.len());
    for stage in &plan.stages {
        let mut ctx = Context::new();
        let module = stage.build_module(&mut ctx);
        let compilation = compile(&mut ctx, module, Flow::Ours(stage_options(stage, cfg.cores)))
            .map_err(|e| format!("stage `{}`: compile: {e}", stage.symbol))?;
        let exec = predecode(&compilation).map_err(|e| format!("stage `{}`: {e}", stage.symbol))?;
        execs.push(exec);
    }
    let refs: Vec<&ExecProgram> = execs.iter().collect();
    run_planned(&plan, cfg, &refs)
}

/// The pipeline options a graph stage is compiled with at cluster width
/// `cores`: the full pipeline, plus element-wise fusion exactly when
/// the stage is a fused run (single-layer stages keep the default
/// options so their artifacts are shared with plain kernel jobs).
pub fn stage_options(stage: &GraphStage, cores: usize) -> PipelineOptions {
    let mut opts = PipelineOptions::full();
    opts.cores = cores;
    opts.fuse_elementwise = stage.is_fused();
    opts
}

/// Runs an already-planned graph over already-compiled stage programs
/// (one per plan stage, in order). This is the execution half of
/// [`run_graph`]; the compile service calls it directly with execs
/// fetched from its content-addressed caches.
///
/// # Errors
///
/// Any configuration, simulation or verification failure.
pub fn run_planned(
    plan: &GraphPlan,
    cfg: &GraphRunConfig,
    execs: &[&ExecProgram],
) -> Result<GraphRunOutcome, String> {
    if cfg.batch == 0 {
        return Err("batch must be at least 1".into());
    }
    if cfg.cores == 0 {
        return Err("cores must be at least 1".into());
    }
    let double = cfg.batch > 1 && cfg.cores > 1;
    if double != plan.double_buffered {
        return Err(format!(
            "plan double-buffering ({}) does not match the run configuration ({})",
            plan.double_buffered, double
        ));
    }
    if execs.len() != plan.stages.len() {
        return Err(format!(
            "{} stage programs supplied for a {}-stage plan",
            execs.len(),
            plan.stages.len()
        ));
    }

    let mut cluster = Cluster::new(cfg.cores);
    if let Some(engine) = cfg.engine {
        cluster.set_engine(engine);
    }

    // Externals once per batch; inputs per request.
    let externals = graph_externals(plan, cfg.seed);
    for (s, stage_ext) in externals.iter().enumerate() {
        for (data, &addr) in stage_ext.iter().zip(plan.external_addrs(s)) {
            cluster.write_f64_slice(addr, data).map_err(|e| format!("write externals: {e}"))?;
        }
    }

    let mut stage_cycles = vec![0u64; plan.stages.len()];
    let mut outputs = Vec::with_capacity(cfg.batch);
    for b in 0..cfg.batch {
        let parity = if double { b % 2 } else { 0 };
        let input = graph_input(plan, cfg.seed, b);
        cluster
            .write_f64_slice(plan.input_addr(parity), &input)
            .map_err(|e| format!("request {b}: write input: {e}"))?;
        let mut cur = input;
        for (s, stage) in plan.stages.iter().enumerate() {
            let addrs = plan.stage_args(s, parity);
            let counters = cluster
                .call_predecoded(execs[s], &stage.symbol, &addrs)
                .map_err(|e| format!("request {b} stage `{}`: {e}", stage.symbol))?;
            stage_cycles[s] += counters.aggregate.cycles;
            let out_elems = plan.value_elems[s + 1];
            let actual = cluster
                .read_f64_slice(plan.value_addrs[s + 1][parity], out_elems)
                .map_err(|e| format!("request {b} stage `{}`: read output: {e}", stage.symbol))?;
            verify_stage_output(stage, &cur, &externals[s], &actual)
                .map_err(|e| format!("request {b}: {e}"))?;
            cur = actual;
        }
        outputs.push(cur);
    }

    let total_cycles: u64 = stage_cycles.iter().sum();
    let per_request: Vec<u64> = stage_cycles.iter().map(|&c| c / cfg.batch as u64).collect();
    Ok(GraphRunOutcome {
        stage_symbols: plan.stages.iter().map(|s| s.symbol.clone()).collect(),
        stage_cycles,
        total_cycles,
        cycles_per_request: total_cycles as f64 / cfg.batch as f64,
        estimate: pipeline_estimate(&per_request, cfg.batch as u64),
        outputs,
        tcdm_bytes: plan.total_bytes,
        double_buffered: double,
    })
}

/// Deterministic external operands for every stage of `plan`, grouped
/// per stage but seeded per *graph layer* — so fused and unfused plans
/// of the same graph see identical biases and weights.
fn graph_externals(plan: &GraphPlan, seed: u64) -> Vec<Vec<Vec<f64>>> {
    plan.stages
        .iter()
        .map(|stage| {
            let mut shape = stage.input_shape;
            let mut data = Vec::new();
            for (offset, layer) in stage.layers.iter().enumerate() {
                if let Some(elems) = layer.external_elems(shape) {
                    let layer_index = stage.first_layer + offset;
                    let layer_seed = seed.wrapping_add(
                        0x9E37_79B9_7F4A_7C15u64.wrapping_mul(layer_index as u64 + 1),
                    );
                    data.push(random_inputs_f64(&[elems], layer_seed).remove(0));
                }
                shape = layer.out_shape(shape);
            }
            data
        })
        .collect()
}

/// Deterministic graph input for request `b` of a batch seeded with
/// `seed`.
fn graph_input(plan: &GraphPlan, seed: u64, b: usize) -> Vec<f64> {
    let request_seed = seed ^ 0xB5AD_4ECE_DA1C_E2A9u64.wrapping_add(b as u64);
    random_inputs_f64(&[plan.value_elems[0]], request_seed).remove(0)
}

/// Checks one stage output against the chained host reference, under
/// either multiply-accumulate rounding.
fn verify_stage_output(
    stage: &GraphStage,
    input: &[f64],
    externals: &[Vec<f64>],
    actual: &[f64],
) -> Result<(), String> {
    let fused_ref = stage.reference(input, externals, FmaMode::Fused);
    let got: Vec<u64> = actual.iter().map(|v| v.to_bits()).collect();
    let want_f: Vec<u64> = fused_ref.iter().map(|v| v.to_bits()).collect();
    if got == want_f {
        return Ok(());
    }
    let unfused_ref = stage.reference(input, externals, FmaMode::Unfused);
    let want_u: Vec<u64> = unfused_ref.iter().map(|v| v.to_bits()).collect();
    if got == want_u {
        return Ok(());
    }
    let (index, _) = got.iter().enumerate().find(|&(i, &b)| b != want_f[i]).unwrap_or((0, &0));
    Err(format!(
        "stage `{}`: output mismatch at {index}: got {}, expected {}",
        stage.symbol, actual[index], fused_ref[index]
    ))
}

/// A clean graph-level differential run.
#[derive(Debug)]
pub struct GraphDifftestOutcome {
    /// Number of graph stages checked.
    pub graph_stages: usize,
    /// Total pipeline snapshots interpreted across all stages.
    pub pipeline_stages: usize,
    /// The verified graph output.
    pub outputs: Vec<f64>,
}

/// Graph-level differential test: compiles every stage of `graph` with
/// the full pipeline (recording every pass snapshot), then advances ONE
/// interpreter memory image across the stage chain — each stage's every
/// snapshot is interpreted over a copy of the incoming image and must
/// reproduce the chained host reference bit-for-bit before the last
/// snapshot's image is committed as the next stage's input.
///
/// # Errors
///
/// A message naming the stage, snapshot, and first divergent element.
pub fn graph_difftest(
    graph: &LayerGraph,
    fused: bool,
    cores: usize,
    seed: u64,
) -> Result<GraphDifftestOutcome, String> {
    if cores == 0 {
        return Err("cores must be at least 1".into());
    }
    let plan = graph.plan(fused, false)?;
    let reg = exec_registry();
    let externals = graph_externals(&plan, seed);
    let input = graph_input(&plan, seed, 0);

    // Seed the shared image: graph input plus every external.
    let mut image: Vec<u8> = Vec::new();
    {
        let mut it = Interpreter::new();
        it.write_f64_slice(plan.input_addr(0), &input).map_err(|e| e.to_string())?;
        for (s, stage_ext) in externals.iter().enumerate() {
            for (data, &addr) in stage_ext.iter().zip(plan.external_addrs(s)) {
                it.write_f64_slice(addr, data).map_err(|e| e.to_string())?;
            }
        }
        it.swap_mem(&mut image);
    }

    let mut cur = input;
    let mut pipeline_stages = 0;
    for (s, stage) in plan.stages.iter().enumerate() {
        let mut opts = PipelineOptions::full();
        opts.cores = cores;
        opts.fuse_elementwise = stage.is_fused();
        let mut ctx = Context::new();
        let module = stage.build_module(&mut ctx);
        let (_compilation, stages) = compile_with_stages(&mut ctx, module, Flow::Ours(opts))
            .map_err(|e| format!("stage `{}`: compile: {e}", stage.symbol))?;

        let addrs = plan.stage_args(s, 0);
        let out_addr = plan.value_addrs[s + 1][0];
        let out_elems = plan.value_elems[s + 1];
        let want_f: Vec<u64> = stage
            .reference(&cur, &externals[s], FmaMode::Fused)
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let want_u: Vec<u64> = stage
            .reference(&cur, &externals[s], FmaMode::Unfused)
            .iter()
            .map(|v| v.to_bits())
            .collect();

        let mut committed: Option<Vec<u8>> = None;
        for (snap_index, snap) in stages.iter().enumerate() {
            let mut img = image.clone();
            interpret_stage_module(&reg, snap, &stage.symbol, &addrs, &mut img, cores).map_err(
                |e| {
                    format!(
                        "stage `{}` snapshot {snap_index} (after `{}`): {e}",
                        stage.symbol, snap.pass
                    )
                },
            )?;
            let got = read_f64_bits(&mut img, out_addr, out_elems)?;
            if got != want_f && got != want_u {
                let (index, &bits) =
                    got.iter().enumerate().find(|&(i, &b)| b != want_f[i]).unwrap_or((0, &0));
                return Err(format!(
                    "stage `{}` diverges after pass `{}` (snapshot {snap_index}/{}, seed \
                     {seed}): output[{index}] = {}, reference {}",
                    stage.symbol,
                    snap.pass,
                    stages.len() - 1,
                    f64::from_bits(bits),
                    f64::from_bits(want_f[index]),
                ));
            }
            pipeline_stages += 1;
            committed = Some(img);
        }
        image = committed.expect("a pipeline always produces at least the input snapshot");
        cur = read_f64_bits(&mut image, out_addr, out_elems)?
            .into_iter()
            .map(f64::from_bits)
            .collect();
    }

    Ok(GraphDifftestOutcome { graph_stages: plan.stages.len(), pipeline_stages, outputs: cur })
}

/// Interprets one pipeline snapshot of a graph stage over `image`
/// (re-run once per hart iff the snapshot reads the hart id, exactly
/// like the kernel difftest).
fn interpret_stage_module(
    reg: &ExecRegistry,
    snap: &Stage,
    symbol: &str,
    addrs: &[u32],
    image: &mut Vec<u8>,
    cores: usize,
) -> Result<(), String> {
    let ctx = &snap.ctx;
    let func_op = find_kernel(ctx, snap.module, symbol)
        .ok_or_else(|| format!("no function `{symbol}` in the module"))?;
    let harts =
        if cores > 1 && !ctx.walk_named(snap.module, mlb_riscv::rv_snitch::HARTID).is_empty() {
            cores
        } else {
            1
        };
    for hart in 0..harts {
        let mut it = Interpreter::new();
        it.hart = hart as i64;
        it.swap_mem(image);
        let entry =
            *ctx.region_blocks(ctx.op(func_op).regions[0]).first().ok_or("empty function")?;
        let mut next_addr = addrs.iter();
        for arg in ctx.block_args(entry).to_vec() {
            match ctx.value_type(arg) {
                Type::MemRef(_) | Type::IntRegister(_) => {
                    let &addr =
                        next_addr.next().ok_or("more pointer arguments than planned buffers")?;
                    it.set(ctx, arg, Value::Int(i64::from(addr)))?;
                }
                other => return Err(format!("unsupported graph stage argument type {other}")),
            }
        }
        let region = ctx.op(func_op).regions[0];
        let blocks = ctx.region_blocks(region).to_vec();
        if blocks.len() == 1 {
            match reg.run_block(&mut it, ctx, blocks[0]).map_err(|e| e.to_string())? {
                ExecFlow::Return => {}
                other => return Err(format!("function body ended with {other:?}, not a return")),
            }
        } else {
            reg.run_cfg(&mut it, ctx, region).map_err(|e| e.to_string())?;
        }
        it.swap_mem(image);
    }
    Ok(())
}

/// Reads `len` f64 bit patterns at `addr` from a raw interpreter image.
fn read_f64_bits(image: &mut Vec<u8>, addr: u32, len: usize) -> Result<Vec<u64>, String> {
    let mut it = Interpreter::new();
    it.swap_mem(image);
    let mut out = Vec::with_capacity(len);
    for i in 0..len {
        out.push(u64::from_le_bytes(it.read_bytes::<8>(addr + 8 * i as u32)?));
    }
    it.swap_mem(image);
    Ok(out)
}

/// Named graph presets used by the CLI, the compile service, and the
/// bench suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphPreset {
    /// An NSNet2-like feed-forward block: two `MatMulT → Sum → ReLU`
    /// layers (4 stages fused, 6 unfused).
    Nsnet2,
    /// A pure element-wise chain (`Sum → ReLU → Sum → ReLU`): fuses to
    /// a single stage, the extreme case for intermediate elimination.
    EltwiseChain,
}

impl GraphPreset {
    /// All presets.
    pub fn all() -> [GraphPreset; 2] {
        [GraphPreset::Nsnet2, GraphPreset::EltwiseChain]
    }

    /// The preset's CLI/service name.
    pub fn name(self) -> &'static str {
        match self {
            GraphPreset::Nsnet2 => "nsnet2",
            GraphPreset::EltwiseChain => "eltwise-chain",
        }
    }

    /// Parses a CLI/service name.
    pub fn parse(name: &str) -> Option<GraphPreset> {
        GraphPreset::all().into_iter().find(|p| p.name() == name)
    }

    /// Builds the preset's graph.
    pub fn graph(self) -> LayerGraph {
        match self {
            GraphPreset::Nsnet2 => LayerGraph::new(
                "nsnet2",
                (4, 40),
                vec![
                    Layer::MatMulT { width: 32 },
                    Layer::Sum,
                    Layer::Relu,
                    Layer::MatMulT { width: 16 },
                    Layer::Sum,
                    Layer::Relu,
                ],
            )
            .expect("preset graphs are valid"),
            GraphPreset::EltwiseChain => LayerGraph::new(
                "eltwise-chain",
                (8, 16),
                vec![Layer::Sum, Layer::Relu, Layer::Sum, Layer::Relu],
            )
            .expect("preset graphs are valid"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fused_plan_groups_elementwise_runs() {
        let graph = GraphPreset::Nsnet2.graph();
        let fused = graph.plan(true, false).unwrap();
        assert_eq!(fused.stages.len(), 4);
        assert_eq!(fused.stages[1].symbol, "fused_sum_relu");
        assert!(fused.stages[1].is_fused());
        let unfused = graph.plan(false, false).unwrap();
        assert_eq!(unfused.stages.len(), 6);
        assert!(unfused.stages.iter().all(|s| !s.is_fused()));
    }

    #[test]
    fn eltwise_chain_fuses_to_one_stage() {
        let graph = GraphPreset::EltwiseChain.graph();
        let plan = graph.plan(true, false).unwrap();
        assert_eq!(plan.stages.len(), 1);
        assert_eq!(plan.stages[0].layers.len(), 4);
        assert_eq!(plan.stages[0].symbol, "fused_sum_relu_sum_relu");
    }

    #[test]
    fn plan_reuses_tcdm_and_respects_double_buffering() {
        let graph = GraphPreset::Nsnet2.graph();
        let single = graph.plan(true, false).unwrap();
        let double = graph.plan(true, true).unwrap();
        assert!(single.total_bytes < TCDM_SIZE as u64);
        assert!(double.total_bytes > single.total_bytes);
        // Single-buffered plans alias both parities to one copy.
        assert_eq!(single.input_addr(0), single.input_addr(1));
        assert_ne!(double.input_addr(0), double.input_addr(1));
        // Naive back-to-back placement of every value + external would
        // cost more than the interval-reused plan.
        let naive: u64 = single.value_elems.iter().map(|&e| e as u64 * 8).sum::<u64>()
            + single
                .stages
                .iter()
                .flat_map(|s| s.external_sizes())
                .map(|e| e as u64 * 8)
                .sum::<u64>();
        assert!(single.total_bytes <= naive);
    }

    #[test]
    fn stage_args_follow_module_argument_order() {
        let graph = GraphPreset::Nsnet2.graph();
        let plan = graph.plan(true, false).unwrap();
        // Stage 0 is matmult: [input, weights, output].
        let args = plan.stage_args(0, 0);
        assert_eq!(args.len(), 3);
        assert_eq!(args[0], plan.input_addr(0));
        // Stage 1 is fused sum+relu: [in, bias, temp, out].
        let args = plan.stage_args(1, 0);
        assert_eq!(args.len(), 4);
    }

    #[test]
    fn fused_stage_module_verifies_and_compiles_to_one_generic() {
        let graph = GraphPreset::EltwiseChain.graph();
        let plan = graph.plan(true, false).unwrap();
        let mut ctx = Context::new();
        let module = plan.stages[0].build_module(&mut ctx);
        mlb_core::full_registry().verify(&ctx, module).unwrap();
        let mut opts = PipelineOptions::full();
        opts.fuse_elementwise = true;
        let compilation = compile(&mut ctx, module, Flow::Ours(opts)).unwrap();
        assert!(compilation.assembly.contains("fused_sum_relu_sum_relu"));
    }

    #[test]
    fn batched_run_verifies_and_reports_per_request_cycles() {
        let graph = GraphPreset::EltwiseChain.graph();
        let cfg = GraphRunConfig { fused: true, batch: 3, cores: 1, seed: 7, engine: None };
        let outcome = run_graph(&graph, &cfg).unwrap();
        assert_eq!(outcome.outputs.len(), 3);
        assert_eq!(outcome.stage_symbols.len(), 1);
        assert!(outcome.total_cycles > 0);
        assert!(outcome.cycles_per_request > 0.0);
        assert!(!outcome.double_buffered);
    }

    #[test]
    fn fused_run_beats_unfused_end_to_end() {
        let graph = GraphPreset::EltwiseChain.graph();
        let fused = run_graph(
            &graph,
            &GraphRunConfig { fused: true, batch: 2, cores: 1, seed: 3, engine: None },
        )
        .unwrap();
        let unfused = run_graph(
            &graph,
            &GraphRunConfig { fused: false, batch: 2, cores: 1, seed: 3, engine: None },
        )
        .unwrap();
        assert!(
            fused.total_cycles < unfused.total_cycles,
            "fused {} vs unfused {}",
            fused.total_cycles,
            unfused.total_cycles
        );
        // Same math, same rounding: outputs must agree bit for bit.
        for (a, b) in fused.outputs.iter().zip(&unfused.outputs) {
            let a: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
            let b: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn graph_difftest_passes_fused_and_unfused() {
        let graph = GraphPreset::EltwiseChain.graph();
        let fused = graph_difftest(&graph, true, 1, 11).unwrap();
        let unfused = graph_difftest(&graph, false, 1, 11).unwrap();
        assert_eq!(fused.graph_stages, 1);
        assert_eq!(unfused.graph_stages, 4);
        assert!(fused.pipeline_stages > 5);
        let a: Vec<u64> = fused.outputs.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = unfused.outputs.iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn presets_roundtrip_names() {
        for preset in GraphPreset::all() {
            assert_eq!(GraphPreset::parse(preset.name()), Some(preset));
            preset.graph().plan(true, false).unwrap();
        }
        assert_eq!(GraphPreset::parse("nope"), None);
    }

    #[test]
    fn degenerate_graphs_are_rejected() {
        assert!(LayerGraph::new("empty", (4, 4), vec![]).is_err());
        assert!(LayerGraph::new("bad", (0, 4), vec![Layer::Relu]).is_err());
        assert!(LayerGraph::new("bad", (4, 4), vec![Layer::MatMulT { width: 0 }]).is_err());
        assert!(run_graph(
            &GraphPreset::EltwiseChain.graph(),
            &GraphRunConfig { fused: true, batch: 0, cores: 1, seed: 1, engine: None },
        )
        .is_err());
    }
}
