//! The kernel suite of Table 1: representative DNN micro-kernels from
//! NSNet2 and AlexNet, grouped by computational and memory-access traits.

use std::fmt;

/// Numeric precision of a kernel instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// 64-bit IEEE-754.
    F64,
    /// 32-bit IEEE-754.
    F32,
}

impl Precision {
    /// Bits per element.
    pub fn bits(self) -> u32 {
        match self {
            Precision::F64 => 64,
            Precision::F32 => 32,
        }
    }
}

/// The kernels of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kind {
    /// Element-wise fill of a buffer with a scalar (memory-bound,
    /// parallel, linear access).
    Fill,
    /// Element-wise sum of two buffers (memory-bound, parallel).
    Sum,
    /// Element-wise rectified linear unit (parallel).
    Relu,
    /// 3×3 convolution (non-affine-looking window access, fixed-size
    /// reduction).
    Conv3x3,
    /// 3×3 max pooling (sparse access, fixed-size reduction).
    MaxPool3x3,
    /// 3×3 sum pooling (sparse access, fixed-size reduction).
    SumPool3x3,
    /// Matrix multiplication (nested loops, reduction).
    MatMul,
    /// Matrix multiplication with a transposed second operand.
    MatMulT,
}

impl Kind {
    /// All kernels, in Table 1 order.
    pub fn all() -> [Kind; 8] {
        [
            Kind::Fill,
            Kind::Sum,
            Kind::Relu,
            Kind::Conv3x3,
            Kind::MaxPool3x3,
            Kind::SumPool3x3,
            Kind::MatMul,
            Kind::MatMulT,
        ]
    }

    /// The Table 1 "Characteristics" column.
    pub fn characteristics(self) -> &'static str {
        match self {
            Kind::Fill => "element-wise, linear access, memory-bound, parallel",
            Kind::Sum => "element-wise, linear access, memory-bound, parallel",
            Kind::Relu => "element-wise, non-linear access, parallel",
            Kind::Conv3x3 => "non-affine access, fixed-size reduction",
            Kind::MaxPool3x3 | Kind::SumPool3x3 => "sparse access, fixed-size reduction",
            Kind::MatMul | Kind::MatMulT => "nested loops, reduction",
        }
    }

    /// Whether the kernel contains a reduction.
    pub fn has_reduction(self) -> bool {
        matches!(
            self,
            Kind::Conv3x3 | Kind::MaxPool3x3 | Kind::SumPool3x3 | Kind::MatMul | Kind::MatMulT
        )
    }
}

impl fmt::Display for Kind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Kind::Fill => "Fill",
            Kind::Sum => "Sum",
            Kind::Relu => "ReLU",
            Kind::Conv3x3 => "Conv 3x3",
            Kind::MaxPool3x3 => "Max Pool 3x3",
            Kind::SumPool3x3 => "Sum Pool 3x3",
            Kind::MatMul => "MatMul",
            Kind::MatMulT => "MatMulT",
        })
    }
}

/// Shape parameters. Meaning per kernel: element-wise and pooling
/// kernels use `n × m` outputs; matrix kernels compute `C(n×m) =
/// A(n×k) · B(k×m)` (`B(m×k)` for [`Kind::MatMulT`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    /// Rows of the output.
    pub n: i64,
    /// Columns of the output.
    pub m: i64,
    /// Reduction extent for matrix kernels (unused otherwise).
    pub k: i64,
}

impl Shape {
    /// An `n × m` shape (element-wise and pooling kernels).
    pub fn nm(n: i64, m: i64) -> Shape {
        Shape { n, m, k: 0 }
    }

    /// An `n × m × k` matrix shape.
    pub fn nmk(n: i64, m: i64, k: i64) -> Shape {
        Shape { n, m, k }
    }
}

/// One concrete kernel instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instance {
    /// Which kernel.
    pub kind: Kind,
    /// Its shape.
    pub shape: Shape,
    /// Its element precision.
    pub precision: Precision,
}

impl Instance {
    /// Creates an instance.
    pub fn new(kind: Kind, shape: Shape, precision: Precision) -> Instance {
        Instance { kind, shape, precision }
    }

    /// The kernel symbol name in the generated assembly.
    pub fn symbol(&self) -> String {
        match self.kind {
            Kind::Fill => "fill".into(),
            Kind::Sum => "sum".into(),
            Kind::Relu => "relu".into(),
            Kind::Conv3x3 => "conv3x3".into(),
            Kind::MaxPool3x3 => "maxpool3x3".into(),
            Kind::SumPool3x3 => "sumpool3x3".into(),
            Kind::MatMul => "matmul".into(),
            Kind::MatMulT => "matmult".into(),
        }
    }

    /// Useful floating-point operations (Table 1 "FLOPs" column).
    pub fn flops(&self) -> u64 {
        let Shape { n, m, k } = self.shape;
        let (n, m, k) = (n as u64, m as u64, k as u64);
        match self.kind {
            Kind::Fill => 0,
            Kind::Sum | Kind::Relu => n * m,
            Kind::Conv3x3 => 18 * n * m,
            Kind::MaxPool3x3 | Kind::SumPool3x3 => 9 * n * m,
            Kind::MatMul | Kind::MatMulT => 2 * n * m * k,
        }
    }

    /// Lower bound on cycles for this computation on Snitch: the FPU
    /// retires one instruction per cycle, two FLOPs when fused (and per
    /// lane when packed).
    pub fn min_cycles(&self) -> u64 {
        let lanes = match self.precision {
            Precision::F64 => 1,
            Precision::F32 => 2,
        };
        match self.kind {
            // One fill write per element, one lane-wide op per cycle.
            Kind::Fill => (self.shape.n * self.shape.m) as u64 / lanes,
            // Element-wise: one op per element.
            Kind::Sum | Kind::Relu => self.flops() / lanes,
            // Pools: one max/add per window element.
            Kind::MaxPool3x3 | Kind::SumPool3x3 => self.flops() / lanes,
            // FMA-based kernels: two FLOPs per instruction.
            Kind::Conv3x3 | Kind::MatMul | Kind::MatMulT => self.flops() / (2 * lanes),
        }
    }

    /// Buffer element counts in argument order (inputs then output).
    pub fn buffer_sizes(&self) -> Vec<usize> {
        let Shape { n, m, k } = self.shape;
        let (n, m, k) = (n as usize, m as usize, k as usize);
        match self.kind {
            Kind::Fill => vec![n * m],
            Kind::Sum => vec![n * m, n * m, n * m],
            Kind::Relu => vec![n * m, n * m],
            Kind::Conv3x3 => vec![(n + 2) * (m + 2), 9, n * m],
            Kind::MaxPool3x3 | Kind::SumPool3x3 => vec![(n + 2) * (m + 2), n * m],
            Kind::MatMul => vec![n * k, k * m, n * m],
            Kind::MatMulT => vec![n * k, m * k, n * m],
        }
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let Shape { n, m, k } = self.shape;
        if self.kind == Kind::MatMul || self.kind == Kind::MatMulT {
            write!(f, "{} {}x{}x{} f{}", self.kind, n, m, k, self.precision.bits())
        } else {
            write!(f, "{} {}x{} f{}", self.kind, n, m, self.precision.bits())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_flop_formulas() {
        let s = Shape::nm(4, 8);
        assert_eq!(Instance::new(Kind::Sum, s, Precision::F64).flops(), 32);
        assert_eq!(Instance::new(Kind::Relu, s, Precision::F64).flops(), 32);
        assert_eq!(Instance::new(Kind::Conv3x3, s, Precision::F64).flops(), 18 * 32);
        assert_eq!(Instance::new(Kind::MaxPool3x3, s, Precision::F64).flops(), 9 * 32);
        let mm = Instance::new(Kind::MatMul, Shape::nmk(1, 5, 200), Precision::F64);
        assert_eq!(mm.flops(), 2000);
        assert_eq!(mm.min_cycles(), 1000);
    }

    #[test]
    fn buffer_sizes_cover_padding() {
        let conv = Instance::new(Kind::Conv3x3, Shape::nm(4, 4), Precision::F64);
        assert_eq!(conv.buffer_sizes(), vec![36, 9, 16]);
        let mmt = Instance::new(Kind::MatMulT, Shape::nmk(4, 16, 16), Precision::F32);
        assert_eq!(mmt.buffer_sizes(), vec![64, 256, 64]);
    }

    #[test]
    fn display_names() {
        let i = Instance::new(Kind::MatMul, Shape::nmk(1, 5, 200), Precision::F64);
        assert_eq!(i.to_string(), "MatMul 1x5x200 f64");
        let i = Instance::new(Kind::Relu, Shape::nm(4, 8), Precision::F32);
        assert_eq!(i.to_string(), "ReLU 4x8 f32");
    }

    #[test]
    fn packed_min_cycles_halve() {
        let f64s = Instance::new(Kind::Sum, Shape::nm(4, 8), Precision::F64);
        let f32s = Instance::new(Kind::Sum, Shape::nm(4, 8), Precision::F32);
        assert_eq!(f64s.min_cycles(), 32);
        assert_eq!(f32s.min_cycles(), 16);
    }
}
