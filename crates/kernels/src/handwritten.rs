//! Hand-written low-level kernels (Section 4.2, RQ1).
//!
//! These kernels are written directly in the `rv`, `rv_snitch` and
//! `snitch_stream` dialects "in a partially register-allocated form":
//! stream registers and ABI registers are pinned, everything else is left
//! to the allocator. They use the Snitch packed-SIMD instructions on
//! 32-bit data, which the high-level pipeline does not generate — this is
//! exactly the expert-tuned code the paper uses to answer whether the
//! assembly-level dialects are expressive enough for peak performance.

use mlb_core::regalloc::allocate_function;
use mlb_core::Compilation;
use mlb_ir::{Context, OpId, PassError, StreamPattern, Type};
use mlb_riscv::{rv, rv_func, rv_scf, rv_snitch, snitch_stream};

use crate::suite::{Instance, Kind, Precision, Shape};

/// Which handwritten kernels exist (the Figure 9 set).
pub fn supported(kind: Kind) -> bool {
    matches!(kind, Kind::Sum | Kind::Relu | Kind::MatMulT)
}

/// Builds, allocates and emits the handwritten variant of `instance`.
///
/// # Errors
///
/// Fails when the instance has no handwritten form ([`supported`]) or on
/// allocation/lowering errors.
///
/// # Panics
///
/// Panics if the shape violates the kernel's layout requirements (packed
/// SIMD needs even element counts).
pub fn build_handwritten(instance: &Instance) -> Result<Compilation, PassError> {
    assert_eq!(instance.precision, Precision::F32, "handwritten kernels use packed 32-bit SIMD");
    let mut ctx = Context::new();
    let module = match instance.kind {
        Kind::Sum => build_sum(&mut ctx, instance.shape),
        Kind::Relu => build_relu(&mut ctx, instance.shape),
        Kind::MatMulT => build_matmult(&mut ctx, instance.shape),
        other => {
            return Err(PassError::new("handwritten", format!("no handwritten variant of {other}")))
        }
    };
    finalize(&mut ctx, module)
}

/// Allocates registers, lowers control flow and emits assembly for a
/// module written at the `rv` level.
pub fn finalize(ctx: &mut Context, module: OpId) -> Result<Compilation, PassError> {
    let registry = mlb_core::full_registry();
    let mut pre = mlb_ir::PassManager::new();
    pre.add(mlb_core::passes::lower_streaming::LowerSnitchStream);
    pre.run(ctx, &registry, module)?;
    let mut functions = Vec::new();
    for func in ctx.walk_named(module, rv_func::FUNC) {
        allocate_function(ctx, func)
            .map_err(|e| PassError::new("allocate-registers", e.to_string()))?;
        let name = rv_func::symbol_name(ctx, func).unwrap_or("?").to_string();
        functions.push((name, mlb_core::regalloc::collect_stats(ctx, func)));
    }
    registry.verify(ctx, module)?;
    let mut pm = mlb_ir::PassManager::new();
    pm.add(mlb_core::passes::rv_scf_to_cf::RvScfToCf);
    pm.run(ctx, &registry, module)?;
    let (assembly, source_map) = mlb_riscv::emit_module_with_source_map(ctx, module)
        .map_err(|e| PassError::new("emit-assembly", e.to_string()))?;
    Ok(Compilation {
        assembly,
        functions,
        passes: vec!["handwritten", "lower-snitch-stream", "allocate-registers", "rv-scf-to-cf"],
        source_map,
    })
}

/// Runs a handwritten kernel on random data and verifies against the
/// matching reference (packed accumulation order for MatMulT).
///
/// # Errors
///
/// Any build, assembly, simulation or verification failure.
pub fn run_handwritten(
    instance: &Instance,
    seed: u64,
) -> Result<crate::harness::RunOutcome, crate::harness::HarnessError> {
    use crate::harness::HarnessError;

    let compilation = build_handwritten(instance).map_err(HarnessError::Compile)?;
    let program = mlb_sim::assemble(&compilation.assembly).map_err(HarnessError::Assemble)?;
    let sizes = instance.buffer_sizes();
    let num_inputs = sizes.len() - 1;
    let mut machine = mlb_sim::Machine::new();
    let addrs = crate::harness::place_buffers(&sizes, 4)?;
    let inputs = crate::harness::random_inputs_f32(&sizes[..num_inputs], seed);
    for (input, &addr) in inputs.iter().zip(&addrs) {
        machine.write_f32_slice(addr, input).map_err(HarnessError::Sim)?;
    }
    let expected: Vec<f32> = match instance.kind {
        Kind::MatMulT => packed_matmult_reference(
            &inputs[0],
            &inputs[1],
            instance.shape.n as usize,
            instance.shape.m as usize,
            instance.shape.k as usize,
        ),
        _ => crate::reference::reference(instance, &inputs, 0.0f32),
    };
    let symbol = format!("{}_hw", instance.symbol());
    let counters = machine.call(&program, &symbol, &addrs).map_err(HarnessError::Sim)?;
    let out =
        machine.read_f32_slice(addrs[num_inputs], sizes[num_inputs]).map_err(HarnessError::Sim)?;
    for (index, (&g, &e)) in out.iter().zip(&expected).enumerate() {
        if g.to_bits() != e.to_bits() {
            return Err(HarnessError::Mismatch {
                index,
                got: f64::from(g),
                expected: f64::from(e),
            });
        }
    }
    Ok(crate::harness::RunOutcome {
        counters,
        compilation,
        output: out.into_iter().map(f64::from).collect(),
    })
}

/// Reference matching the packed kernel's accumulation order: fused
/// multiply-adds per lane over even/odd `k`, then `(0 + lane0) + lane1`.
pub fn packed_matmult_reference(a: &[f32], b: &[f32], n: usize, m: usize, k: usize) -> Vec<f32> {
    let mut out = Vec::with_capacity(n * m);
    for r in 0..n {
        for c in 0..m {
            let mut lane0 = 0.0f32;
            let mut lane1 = 0.0f32;
            for chunk in 0..k / 2 {
                lane0 = a[r * k + 2 * chunk].mul_add(b[c * k + 2 * chunk], lane0);
                lane1 = a[r * k + 2 * chunk + 1].mul_add(b[c * k + 2 * chunk + 1], lane1);
            }
            out.push(0.0f32 + lane0 + lane1);
        }
    }
    out
}

fn module_top(ctx: &mut Context) -> (OpId, mlb_ir::BlockId) {
    let m = ctx.create_detached_op(mlb_ir::OpSpec::new("builtin.module").regions(1));
    let top = ctx.create_block(ctx.op(m).regions[0], vec![]);
    (m, top)
}

/// Packed f32 Sum: `Z = X + Y` over `n*m` singles processed two per
/// `vfadd.s`, all three operands streamed, the whole body one `frep`.
fn build_sum(ctx: &mut Context, shape: Shape) -> OpId {
    let elems = shape.n * shape.m;
    assert!(elems % 2 == 0, "packed kernel needs an even element count");
    let chunks = elems / 2;
    let (module, top) = module_top(ctx);
    let (_f, entry) = ctx_build_func(ctx, top, "sum_hw", 3);
    let x = ctx.block_args(entry)[0];
    let y = ctx.block_args(entry)[1];
    let z = ctx.block_args(entry)[2];
    let pattern = StreamPattern::new(vec![chunks], vec![8], 0);
    let count = rv::li(ctx, entry, chunks - 1);
    snitch_stream::build_streaming_region(
        ctx,
        entry,
        vec![x, y],
        vec![z],
        vec![pattern.clone(), pattern.clone(), pattern],
        |ctx, body, streams| {
            let (ft0, ft1, ft2_ty) = (streams[0], streams[1], ctx.value_type(streams[2]).clone());
            rv_snitch::build_frep(ctx, body, count, vec![], |ctx, fbody, _| {
                // The result register is the write stream: each vfadd
                // pushes one packed pair to Z.
                ctx.append_op(
                    fbody,
                    mlb_ir::OpSpec::new(rv_snitch::VFADD_S)
                        .operands(vec![ft0, ft1])
                        .results(vec![ft2_ty.clone()]),
                );
                vec![]
            });
        },
    );
    rv_func::build_ret(ctx, entry);
    module
}

/// Packed f32 ReLU: `Z = max(X, 0)` two lanes at a time.
fn build_relu(ctx: &mut Context, shape: Shape) -> OpId {
    let elems = shape.n * shape.m;
    assert!(elems % 2 == 0, "packed kernel needs an even element count");
    let chunks = elems / 2;
    let (module, top) = module_top(ctx);
    let (_f, entry) = ctx_build_func(ctx, top, "relu_hw", 2);
    let x = ctx.block_args(entry)[0];
    let z = ctx.block_args(entry)[1];
    // Packed zero: both lanes 0.0f32.
    let zero_i = rv::get_register(ctx, entry, Type::IntRegister(Some(mlb_isa::IntReg::ZERO)));
    let zero_s = {
        let op = ctx.append_op(
            entry,
            mlb_ir::OpSpec::new(rv::FCVT_S_W).operands(vec![zero_i]).results(vec![rv::freg()]),
        );
        ctx.op(op).results[0]
    };
    let packed_zero = rv::fp_binary(ctx, entry, rv_snitch::VFCPKA_S_S, zero_s, zero_s);
    let count = rv::li(ctx, entry, chunks - 1);
    let pattern = StreamPattern::new(vec![chunks], vec![8], 0);
    snitch_stream::build_streaming_region(
        ctx,
        entry,
        vec![x],
        vec![z],
        vec![pattern.clone(), pattern],
        |ctx, body, streams| {
            let ft0 = streams[0];
            let ft1_ty = ctx.value_type(streams[1]).clone();
            rv_snitch::build_frep(ctx, body, count, vec![], |ctx, fbody, _| {
                ctx.append_op(
                    fbody,
                    mlb_ir::OpSpec::new(rv_snitch::VFMAX_S)
                        .operands(vec![ft0, packed_zero])
                        .results(vec![ft1_ty.clone()]),
                );
                vec![]
            });
        },
    );
    rv_func::build_ret(ctx, entry);
    module
}

/// Packed f32 MatMulT: `C(n x m) = A(n x k) * B(m x k)^T`, dot products
/// over packed pairs with `vfmac.s`, four result columns interleaved
/// (Section 4.3: 4 reduction + 4 result + 1 zero + 2 streaming
/// registers).
fn build_matmult(ctx: &mut Context, shape: Shape) -> OpId {
    let Shape { n, m, k } = shape;
    assert!(k % 2 == 0, "packed dot products need an even inner dimension");
    assert!(m % 4 == 0, "the kernel interleaves four result columns");
    let chunks = k / 2;
    let (module, top) = module_top(ctx);
    let (_f, entry) = ctx_build_func(ctx, top, "matmult_hw", 3);
    let a = ctx.block_args(entry)[0];
    let b = ctx.block_args(entry)[1];
    let c = ctx.block_args(entry)[2];

    // Stream A: per (row, tile): the row's chunks, each delivered four
    // times (one per interleaved column) via the repeat register.
    let a_pattern = StreamPattern::from_logical(vec![chunks, m / 4, n], vec![8, 0, k * 4], 3);
    // Stream B: per chunk, the four tile rows' chunks; then chunks; then
    // tiles; repeated for every A row (stride 0).
    let b_pattern =
        StreamPattern::from_logical(vec![4, chunks, m / 4, n], vec![k * 4, 8, 4 * k * 4, 0], 0);
    let zero_i = rv::get_register(ctx, entry, Type::IntRegister(Some(mlb_isa::IntReg::ZERO)));
    let zero_s = {
        let op = ctx.append_op(
            entry,
            mlb_ir::OpSpec::new(rv::FCVT_S_W).operands(vec![zero_i]).results(vec![rv::freg()]),
        );
        ctx.op(op).results[0]
    };
    let count = rv::li(ctx, entry, chunks - 1);
    let lb = rv::get_register(ctx, entry, Type::IntRegister(Some(mlb_isa::IntReg::ZERO)));
    let one = rv::li(ctx, entry, 1);
    let n_reg = rv::li(ctx, entry, n);
    let tiles = rv::li(ctx, entry, m / 4);

    snitch_stream::build_streaming_region(
        ctx,
        entry,
        vec![a, b],
        vec![],
        vec![a_pattern, b_pattern],
        |ctx, body, streams| {
            let (ft0, ft1) = (streams[0], streams[1]);
            // Row loop carries the output pointer for C.
            rv_scf::build_for(
                ctx,
                body,
                lb,
                n_reg,
                one,
                vec![c],
                |ctx, row_body, _riv, row_args| {
                    let c_row = row_args[0];
                    let tile_loop = rv_scf::build_for(
                        ctx,
                        row_body,
                        lb,
                        tiles,
                        one,
                        vec![c_row],
                        |ctx, tile_body, _tiv, tile_args| {
                            let c_ptr = tile_args[0];
                            // Fresh packed-zero accumulators per tile.
                            let accs: Vec<_> = (0..4)
                                .map(|_| {
                                    rv::fp_binary(
                                        ctx,
                                        tile_body,
                                        rv_snitch::VFCPKA_S_S,
                                        zero_s,
                                        zero_s,
                                    )
                                })
                                .collect();
                            let frep = rv_snitch::build_frep(
                                ctx,
                                tile_body,
                                count,
                                accs,
                                |ctx, fbody, args| {
                                    args.iter()
                                        .map(|&acc| {
                                            rv::fp_ternary(
                                                ctx,
                                                fbody,
                                                rv_snitch::VFMAC_S,
                                                ft0,
                                                ft1,
                                                acc,
                                            )
                                        })
                                        .collect()
                                },
                            );
                            // Horizontal sums into scalar results, stored to C.
                            let frep_results = ctx.op(frep.0).results.clone();
                            for (j, &packed) in frep_results.iter().enumerate() {
                                let seed = rv::fp_binary(
                                    ctx,
                                    tile_body,
                                    rv_snitch::VFCPKA_S_S,
                                    zero_s,
                                    zero_s,
                                );
                                let sum =
                                    rv::fp_binary(ctx, tile_body, rv_snitch::VFSUM_S, packed, seed);
                                rv::fp_store(ctx, tile_body, rv::FSW, sum, c_ptr, (j as i64) * 4);
                            }
                            vec![rv::int_imm(ctx, tile_body, rv::ADDI, c_ptr, 16)]
                        },
                    );
                    // After all tiles the pointer has advanced one full row.
                    vec![ctx.op(tile_loop.0).results[0]]
                },
            );
        },
    );
    rv_func::build_ret(ctx, entry);
    module
}

fn ctx_build_func(
    ctx: &mut Context,
    top: mlb_ir::BlockId,
    name: &str,
    num_ptr_args: usize,
) -> (OpId, mlb_ir::BlockId) {
    let abi = vec![rv_func::AbiArg::Int; num_ptr_args];
    rv_func::build_func(ctx, top, name, &abi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handwritten_sum_is_correct_and_fast() {
        let i = Instance::new(Kind::Sum, Shape::nm(8, 16), Precision::F32);
        let outcome = run_handwritten(&i, 9).unwrap();
        // Packed SIMD: two FLOPs per cycle peak; utilization near 1.
        assert!(outcome.utilization() > 0.8, "util = {}", outcome.utilization());
        assert!(outcome.counters.throughput() > 1.5);
    }

    #[test]
    fn handwritten_relu_is_correct() {
        let i = Instance::new(Kind::Relu, Shape::nm(8, 16), Precision::F32);
        let outcome = run_handwritten(&i, 10).unwrap();
        assert!(outcome.utilization() > 0.8, "util = {}", outcome.utilization());
    }

    #[test]
    fn handwritten_matmult_is_correct() {
        let i = Instance::new(Kind::MatMulT, Shape::nmk(4, 16, 16), Precision::F32);
        let compiled = build_handwritten(&i).unwrap();
        let (_, stats) = &compiled.functions[0];
        // Paper (Table 2): 11 FP and 12 integer registers for MatMulT.
        assert!(stats.num_fp() <= 12, "FP registers: {:?}", stats.fp_used);
        assert!(stats.num_int() <= 13, "int registers: {:?}", stats.int_used);
        let outcome = run_handwritten(&i, 11).unwrap();
        assert!(
            outcome.counters.throughput() > 1.5,
            "throughput = {}",
            outcome.counters.throughput()
        );
    }

    #[test]
    fn unsupported_kind_is_rejected() {
        let i = Instance::new(Kind::Fill, Shape::nm(4, 4), Precision::F32);
        assert!(build_handwritten(&i).is_err());
    }
}
