//! Source-attributed cycle profiles.
//!
//! Folds an execution trace and the compiler's per-instruction source
//! map (see `mlb_riscv::emit_module_with_source_map`) into a
//! hierarchical profile: kernel → source op → instruction class. Every
//! simulated cycle is charged to exactly one source location, so the
//! per-location sums reproduce the machine's cycle counter exactly.
//!
//! # Cycle attribution
//!
//! The trace records, per retired instruction, the cycle its effect
//! completed on its unit's timeline. Walking the trace in issue order
//! with a running watermark of the latest completion, each instruction
//! is charged `complete - watermark` cycles (zero when it finished in
//! the shadow of earlier work — e.g. integer AGU instructions retiring
//! under a long FPU pipeline). The charges telescope to the maximum
//! completion time, which the simulator pins to equal
//! [`PerfCounters::cycles`](mlb_sim::PerfCounters::cycles).

use std::collections::BTreeMap;

use mlb_ir::Location;
use mlb_sim::{StallHistogram, TraceEntry};

/// Cycles and work charged to one instruction class (mnemonic) within a
/// source op.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassProfile {
    /// Dynamically executed instructions of this class.
    pub instructions: u64,
    /// Critical-path cycles charged to this class.
    pub cycles: u64,
}

/// Everything attributed to one source location.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LocationProfile {
    /// Critical-path cycles charged to this location. Summing this
    /// field over all rows of a [`Profile`] yields the run's total
    /// cycle count exactly.
    pub cycles: u64,
    /// Dynamically executed instructions.
    pub instructions: u64,
    /// Floating-point operations performed.
    pub flops: u64,
    /// Dynamically executed FPU instructions.
    pub fpu_instructions: u64,
    /// Stall cycles by reason.
    pub stalls: StallHistogram,
    /// Breakdown by instruction mnemonic.
    pub classes: BTreeMap<String, ClassProfile>,
}

impl LocationProfile {
    /// FPU issue-slot utilization of this row: FPU instructions per
    /// charged cycle (1.0 means the row kept the FPU busy every cycle
    /// it owned).
    pub fn fpu_utilization(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.fpu_instructions as f64 / self.cycles as f64
        }
    }

    fn charge(&mut self, entry: &TraceEntry, cycles: u64) {
        self.cycles += cycles;
        self.instructions += 1;
        self.flops += entry.instr.flops();
        if entry.instr.is_fpu() {
            self.fpu_instructions += 1;
        }
        self.stalls.record(entry.stall, entry.stall_cycles);
        let mnemonic =
            entry.instr.to_string().split_whitespace().next().unwrap_or("<unknown>").to_string();
        let class = self.classes.entry(mnemonic).or_default();
        class.instructions += 1;
        class.cycles += cycles;
    }
}

/// A source-attributed profile of one kernel run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    /// Rows keyed by source label (`file:line`, a `fused<...>` form for
    /// pattern-created ops without a file-attributed root, or
    /// `<unknown>`), sorted by descending cycle count.
    pub rows: Vec<(String, LocationProfile)>,
    /// Total cycles across all rows (== the run's cycle counter).
    pub total_cycles: u64,
    /// Cycles charged to instructions with no known source location.
    pub unattributed_cycles: u64,
}

impl Profile {
    /// Folds one core's trace into a profile. `source_map[pc]` is the
    /// provenance of instruction `pc` (see
    /// `mlb_core::Compilation::source_map`); instructions past the end
    /// of the map, or mapped to an unknown location, are charged to the
    /// `<unknown>` row.
    pub fn from_trace(trace: &[TraceEntry], source_map: &[Location]) -> Profile {
        Profile::from_traces(std::slice::from_ref(&trace.to_vec()), source_map)
    }

    /// Folds the traces of several harts into one merged profile.
    /// Cycles are charged per hart (work, not wall-clock), so the total
    /// equals the sum of the harts' cycle counters.
    pub fn from_traces(traces: &[Vec<TraceEntry>], source_map: &[Location]) -> Profile {
        let mut by_label: BTreeMap<String, LocationProfile> = BTreeMap::new();
        let mut total = 0u64;
        let mut unattributed = 0u64;
        for trace in traces {
            let mut watermark = 0u64;
            for entry in trace {
                let charged = entry.complete.saturating_sub(watermark);
                watermark = watermark.max(entry.complete);
                total += charged;
                let label = label_for(source_map.get(entry.pc));
                if label == UNKNOWN_LABEL {
                    unattributed += charged;
                }
                by_label.entry(label).or_default().charge(entry, charged);
            }
        }
        let mut rows: Vec<(String, LocationProfile)> = by_label.into_iter().collect();
        rows.sort_by(|a, b| b.1.cycles.cmp(&a.1.cycles).then_with(|| a.0.cmp(&b.0)));
        Profile { rows, total_cycles: total, unattributed_cycles: unattributed }
    }

    /// Stall cycles summed over all rows, by reason.
    pub fn stalls(&self) -> StallHistogram {
        let mut h = StallHistogram::default();
        for (_, row) in &self.rows {
            h.accumulate(&row.stalls);
        }
        h
    }
}

/// The row label used for cycles with no known source location.
pub const UNKNOWN_LABEL: &str = "<unknown>";

fn label_for(loc: Option<&Location>) -> String {
    match loc {
        None | Some(Location::Unknown) => UNKNOWN_LABEL.to_string(),
        Some(loc) => match loc.source_label() {
            Some(label) => label,
            // A fused location whose chain bottoms out without a file:
            // keep the fused form so the pattern is still visible.
            None => loc.to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlb_sim::StallReason;

    fn entry(pc: usize, issue: u64, complete: u64) -> TraceEntry {
        TraceEntry {
            pc,
            instr: mlb_sim::Instr::Li { rd: mlb_isa::IntReg::t(0), imm: 1 },
            in_frep: false,
            issue,
            complete,
            stall: StallReason::None,
            stall_cycles: 0,
        }
    }

    #[test]
    fn charges_telescope_to_max_completion() {
        let map = vec![Location::file("k.mlir", 1), Location::file("k.mlir", 2)];
        // Entry at pc 1 completes in the shadow of pc 0's long latency.
        let trace = vec![entry(0, 0, 10), entry(1, 1, 2), entry(0, 11, 12)];
        let p = Profile::from_trace(&trace, &map);
        assert_eq!(p.total_cycles, 12);
        assert_eq!(p.rows.iter().map(|(_, r)| r.cycles).sum::<u64>(), 12);
        assert_eq!(p.unattributed_cycles, 0);
        let line1 = &p.rows.iter().find(|(l, _)| l == "k.mlir:1").unwrap().1;
        assert_eq!(line1.cycles, 12);
        assert_eq!(line1.instructions, 2);
        let line2 = &p.rows.iter().find(|(l, _)| l == "k.mlir:2").unwrap().1;
        assert_eq!(line2.cycles, 0, "shadowed instruction charges nothing");
    }

    #[test]
    fn unmapped_pcs_fall_into_the_unknown_row() {
        let map = vec![Location::file("k.mlir", 1)];
        let trace = vec![entry(0, 0, 1), entry(7, 1, 2)];
        let p = Profile::from_trace(&trace, &map);
        assert_eq!(p.total_cycles, 2);
        assert_eq!(p.unattributed_cycles, 1);
        assert!(p.rows.iter().any(|(l, _)| l == UNKNOWN_LABEL));
    }

    #[test]
    fn multi_hart_totals_sum_work() {
        let map = vec![Location::file("k.mlir", 1)];
        let traces = vec![vec![entry(0, 0, 5)], vec![entry(0, 0, 7)]];
        let p = Profile::from_traces(&traces, &map);
        assert_eq!(p.total_cycles, 12);
    }
}
