#![warn(missing_docs)]

//! The micro-kernel suite of the paper's evaluation (Table 1), with
//! `linalg`-level builders, bit-exact host references, hand-written
//! low-level kernel variants (Section 4.2), and a compile-and-simulate
//! harness.

pub mod builders;
pub mod difftest;
pub mod fuzz;
pub mod graph;
pub mod handwritten;
pub mod harness;
pub mod profile;
pub mod reference;
pub mod suite;
pub mod tune;

pub use difftest::{
    difftest_instance, difftest_instance_tweaked, exec_registry, DifftestError, DifftestOutcome,
    Divergence,
};
pub use fuzz::{fuzz, fuzz_corpus, fuzz_graphs, FuzzFailure, SplitMix64};
pub use graph::{
    graph_difftest, run_graph, run_planned, stage_options, GraphDifftestOutcome, GraphPlan,
    GraphPreset, GraphRunConfig, GraphRunOutcome, GraphStage, Layer, LayerGraph,
};
pub use handwritten::{build_handwritten, run_handwritten};
pub use harness::{
    compile_and_run, compile_and_run_on_cluster, predecode, run_compiled, run_compiled_on_cluster,
    run_compiled_traced, run_predecoded, run_predecoded_on_cluster,
    run_predecoded_on_cluster_with_engine, run_predecoded_traced,
    run_predecoded_traced_with_engine, run_predecoded_with_engine, ClusterExecOutcome,
    ClusterRunOutcome, ExecOutcome, HarnessError, RunOutcome, FILL_VALUE,
};
pub use profile::{ClassProfile, LocationProfile, Profile};
pub use reference::{reference, reference_with, FmaMode, Scalar};
pub use suite::{Instance, Kind, Precision, Shape};
pub use tune::{
    best_point, enumerate_schedules, pareto_front, tcdm_footprint, ScheduleVariant, TuneParams,
    TunePoint, SEARCH_SPACE_VERSION,
};
