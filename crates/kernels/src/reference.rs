//! Host reference implementations used to validate compiled kernels.
//!
//! References follow exactly the operation order and rounding of the
//! generated code (fused multiply-add included), so f64 results compare
//! bit-for-bit and f32 results compare bit-for-bit per lane.

use crate::builders::MAX_POOL_INIT;
use crate::suite::{Instance, Kind, Shape};

/// Scalar abstraction so the reference runs at either precision.
pub trait Scalar: Copy + PartialEq + std::fmt::Debug {
    /// Additive identity.
    fn zero() -> Self;
    /// `self + rhs`.
    fn add(self, rhs: Self) -> Self;
    /// `self * rhs`.
    fn mul(self, rhs: Self) -> Self;
    /// Fused `self * a + b` with single rounding (matches `fmadd`).
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// IEEE maximum.
    fn max(self, rhs: Self) -> Self;
    /// Conversion from `f64` (used for init constants).
    fn from_f64(v: f64) -> Self;
}

impl Scalar for f64 {
    fn zero() -> f64 {
        0.0
    }
    fn add(self, rhs: f64) -> f64 {
        self + rhs
    }
    fn mul(self, rhs: f64) -> f64 {
        self * rhs
    }
    fn mul_add(self, a: f64, b: f64) -> f64 {
        f64::mul_add(self, a, b)
    }
    fn max(self, rhs: f64) -> f64 {
        f64::max(self, rhs)
    }
    fn from_f64(v: f64) -> f64 {
        v
    }
}

impl Scalar for f32 {
    fn zero() -> f32 {
        0.0
    }
    fn add(self, rhs: f32) -> f32 {
        self + rhs
    }
    fn mul(self, rhs: f32) -> f32 {
        self * rhs
    }
    fn mul_add(self, a: f32, b: f32) -> f32 {
        f32::mul_add(self, a, b)
    }
    fn max(self, rhs: f32) -> f32 {
        f32::max(self, rhs)
    }
    fn from_f64(v: f64) -> f32 {
        v as f32
    }
}

/// Rounding of multiply-accumulate chains in the reference.
///
/// The generated code computes `x * w + acc` with two roundings until
/// the peephole pass fuses the pair into a single-rounding `fmadd`; the
/// stage-level differential tester therefore needs both variants. For
/// kernels without a multiply-accumulate the two are identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FmaMode {
    /// Single rounding (`fmadd`), matching fully-optimized code.
    Fused,
    /// Separate multiply and add roundings, matching pre-fusion stages.
    Unfused,
}

/// Computes the expected output of `instance` for `inputs` (in the
/// argument order of [`Instance::buffer_sizes`], without the output) and
/// the scalar argument (only used by Fill).
///
/// Multiply-accumulate chains round once, as `fmadd` does; see
/// [`reference_with`] for the pre-fusion rounding.
///
/// # Panics
///
/// Panics if the input lengths do not match the instance shape.
pub fn reference<T: Scalar>(instance: &Instance, inputs: &[Vec<T>], scalar: T) -> Vec<T> {
    reference_with(instance, inputs, scalar, FmaMode::Fused)
}

/// [`reference`] with an explicit multiply-accumulate rounding mode.
///
/// # Panics
///
/// Panics if the input lengths do not match the instance shape.
pub fn reference_with<T: Scalar>(
    instance: &Instance,
    inputs: &[Vec<T>],
    scalar: T,
    fma: FmaMode,
) -> Vec<T> {
    let mac = |x: T, w: T, acc: T| match fma {
        FmaMode::Fused => x.mul_add(w, acc),
        FmaMode::Unfused => x.mul(w).add(acc),
    };
    let Shape { n, m, k } = instance.shape;
    let (n, m, k) = (n as usize, m as usize, k as usize);
    let sizes = instance.buffer_sizes();
    for (input, &size) in inputs.iter().zip(&sizes) {
        assert_eq!(input.len(), size, "input buffer size mismatch");
    }
    match instance.kind {
        Kind::Fill => vec![scalar; n * m],
        Kind::Sum => inputs[0].iter().zip(&inputs[1]).map(|(&a, &b)| a.add(b)).collect(),
        Kind::Relu => inputs[0].iter().map(|&a| a.max(T::zero())).collect(),
        Kind::Conv3x3 => {
            let x = &inputs[0];
            let w = &inputs[1];
            let width = m + 2;
            let mut out = Vec::with_capacity(n * m);
            for r in 0..n {
                for c in 0..m {
                    let mut acc = T::zero();
                    for kh in 0..3 {
                        for kw in 0..3 {
                            acc = mac(x[(r + kh) * width + c + kw], w[kh * 3 + kw], acc);
                        }
                    }
                    out.push(acc);
                }
            }
            out
        }
        Kind::MaxPool3x3 | Kind::SumPool3x3 => {
            let x = &inputs[0];
            let width = m + 2;
            let is_max = instance.kind == Kind::MaxPool3x3;
            let mut out = Vec::with_capacity(n * m);
            for r in 0..n {
                for c in 0..m {
                    let mut acc = if is_max { T::from_f64(MAX_POOL_INIT) } else { T::zero() };
                    for kh in 0..3 {
                        for kw in 0..3 {
                            let v = x[(r + kh) * width + c + kw];
                            acc = if is_max { acc.max(v) } else { v.add(acc) };
                        }
                    }
                    out.push(acc);
                }
            }
            out
        }
        Kind::MatMul | Kind::MatMulT => {
            let a = &inputs[0];
            let b = &inputs[1];
            let mut out = Vec::with_capacity(n * m);
            for r in 0..n {
                for c in 0..m {
                    let mut acc = T::zero();
                    for kk in 0..k {
                        let bv = if instance.kind == Kind::MatMul {
                            b[kk * m + c]
                        } else {
                            b[c * k + kk]
                        };
                        acc = mac(a[r * k + kk], bv, acc);
                    }
                    out.push(acc);
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::Precision;

    #[test]
    fn sum_reference() {
        let i = Instance::new(Kind::Sum, Shape::nm(2, 2), Precision::F64);
        let out = reference(&i, &[vec![1.0, 2.0, 3.0, 4.0], vec![10.0, 20.0, 30.0, 40.0]], 0.0);
        assert_eq!(out, vec![11.0, 22.0, 33.0, 44.0]);
    }

    #[test]
    fn relu_reference() {
        let i = Instance::new(Kind::Relu, Shape::nm(1, 4), Precision::F64);
        let out = reference(&i, &[vec![-1.0, 2.0, -3.0, 4.0]], 0.0);
        assert_eq!(out, vec![0.0, 2.0, 0.0, 4.0]);
    }

    #[test]
    fn conv_reference_identity_kernel() {
        // A kernel with a single 1.0 at the center copies the interior.
        let i = Instance::new(Kind::Conv3x3, Shape::nm(2, 2), Precision::F64);
        let x: Vec<f64> = (0..16).map(f64::from).collect();
        let mut w = vec![0.0; 9];
        w[4] = 1.0;
        let out = reference(&i, &[x.clone(), w], 0.0);
        // Interior elements of the 4x4 input: rows 1..3, cols 1..3.
        assert_eq!(out, vec![x[5], x[6], x[9], x[10]]);
    }

    #[test]
    fn pool_references() {
        let i = Instance::new(Kind::MaxPool3x3, Shape::nm(1, 1), Precision::F64);
        let x: Vec<f64> = (0..9).map(f64::from).collect();
        assert_eq!(reference(&i, std::slice::from_ref(&x), 0.0), vec![8.0]);
        let i = Instance::new(Kind::SumPool3x3, Shape::nm(1, 1), Precision::F64);
        assert_eq!(reference(&i, &[x], 0.0), vec![36.0]);
    }

    #[test]
    fn matmul_and_transposed_agree() {
        let i = Instance::new(Kind::MatMul, Shape::nmk(2, 2, 3), Precision::F64);
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 2x3
        let b = vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]; // 3x2
        let c = reference(&i, &[a.clone(), b.clone()], 0.0);
        assert_eq!(c, vec![58.0, 64.0, 139.0, 154.0]);

        // Transpose b (3x2 -> 2x3) and use MatMulT.
        let bt = vec![7.0, 9.0, 11.0, 8.0, 10.0, 12.0];
        let it = Instance::new(Kind::MatMulT, Shape::nmk(2, 2, 3), Precision::F64);
        assert_eq!(reference(&it, &[a, bt], 0.0), c);
    }

    #[test]
    fn fill_reference_uses_scalar() {
        let i = Instance::new(Kind::Fill, Shape::nm(2, 3), Precision::F64);
        assert_eq!(reference::<f64>(&i, &[], 2.5), vec![2.5; 6]);
    }
}
