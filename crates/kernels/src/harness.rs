//! Compile-and-simulate harness: builds a kernel, compiles it with a
//! chosen flow, places randomized operands in the TCDM, runs the Snitch
//! simulator, and checks the output against the host reference.

use std::fmt;

use mlb_core::{compile, Compilation, Flow};
use mlb_ir::Context;
use mlb_isa::{FpReg, TCDM_BASE};
use mlb_sim::{assemble, Machine, PerfCounters};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::reference::reference;
use crate::suite::{Instance, Kind, Precision};

/// Error produced by the harness.
#[derive(Debug)]
pub enum HarnessError {
    /// Compilation failed.
    Compile(mlb_ir::PassError),
    /// The generated assembly did not assemble.
    Assemble(mlb_sim::AsmError),
    /// The simulation faulted.
    Sim(mlb_sim::SimError),
    /// The output differed from the reference.
    Mismatch {
        /// First differing element.
        index: usize,
        /// Value the kernel produced.
        got: f64,
        /// Value the reference produced.
        expected: f64,
    },
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::Compile(e) => write!(f, "compile: {e}"),
            HarnessError::Assemble(e) => write!(f, "assemble: {e}"),
            HarnessError::Sim(e) => write!(f, "simulate: {e}"),
            HarnessError::Mismatch { index, got, expected } => {
                write!(f, "output mismatch at {index}: got {got}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for HarnessError {}

/// Everything measured in one verified kernel run.
#[derive(Debug)]
pub struct RunOutcome {
    /// Performance counters of the kernel call.
    pub counters: PerfCounters,
    /// Compilation artifacts (assembly, register statistics, passes).
    pub compilation: Compilation,
    /// The verified kernel output (widened to `f64` for f32 kernels).
    pub output: Vec<f64>,
}

impl RunOutcome {
    /// FPU utilization of the run.
    pub fn utilization(&self) -> f64 {
        self.counters.fpu_utilization()
    }
}

/// The scalar argument value used for Fill runs.
pub const FILL_VALUE: f64 = 2.5;

/// Compiles `instance` with `flow`, runs it on random inputs derived
/// from `seed`, verifies the result bit-for-bit against the reference,
/// and returns the measurements.
///
/// # Errors
///
/// Any compilation, assembly, simulation or verification failure.
pub fn compile_and_run(
    instance: &Instance,
    flow: Flow,
    seed: u64,
) -> Result<RunOutcome, HarnessError> {
    let mut ctx = Context::new();
    let module = instance.build_module(&mut ctx);
    let compilation = compile(&mut ctx, module, flow).map_err(HarnessError::Compile)?;
    run_compiled(instance, compilation, seed)
}

/// Runs an already-compiled kernel (see [`compile_and_run`]).
///
/// # Errors
///
/// Any assembly, simulation or verification failure.
pub fn run_compiled(
    instance: &Instance,
    compilation: Compilation,
    seed: u64,
) -> Result<RunOutcome, HarnessError> {
    let program = assemble(&compilation.assembly).map_err(HarnessError::Assemble)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let sizes = instance.buffer_sizes();
    let esz = instance.precision.bits() / 8;
    let mut machine = Machine::new();

    // Place buffers back to back, 8-byte aligned.
    let mut addrs = Vec::new();
    let mut cursor = TCDM_BASE;
    for &size in &sizes {
        addrs.push(cursor);
        cursor += (size as u32 * esz).next_multiple_of(8);
    }
    let num_inputs = sizes.len() - 1;
    let out_addr = addrs[num_inputs];
    let out_len = sizes[num_inputs];

    // Randomized inputs in [-1, 1); weights for pooling stay the same.
    let (output, counters) = match instance.precision {
        Precision::F64 => {
            let inputs: Vec<Vec<f64>> = sizes[..num_inputs]
                .iter()
                .map(|&s| (0..s).map(|_| rng.gen_range(-1.0..1.0)).collect())
                .collect();
            for (input, &addr) in inputs.iter().zip(&addrs) {
                machine.write_f64_slice(addr, input);
            }
            let expected = reference(instance, &inputs, FILL_VALUE);
            if instance.kind == Kind::Fill {
                machine.set_f_bits(FpReg::fa(0), FILL_VALUE.to_bits());
            }
            let int_args: Vec<u32> = addrs.clone();
            let counters =
                machine.call(&program, &instance.symbol(), &int_args).map_err(HarnessError::Sim)?;
            let output = machine.read_f64_slice(out_addr, out_len);
            verify_f64(&output, &expected)?;
            (output, counters)
        }
        Precision::F32 => {
            let inputs: Vec<Vec<f32>> = sizes[..num_inputs]
                .iter()
                .map(|&s| (0..s).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
                .collect();
            for (input, &addr) in inputs.iter().zip(&addrs) {
                machine.write_f32_slice(addr, input);
            }
            let expected = reference(instance, &inputs, FILL_VALUE as f32);
            if instance.kind == Kind::Fill {
                machine.set_f_bits(
                    FpReg::fa(0),
                    ((FILL_VALUE as f32).to_bits() as u64) | 0xFFFF_FFFF_0000_0000,
                );
            }
            let int_args: Vec<u32> = addrs.clone();
            let counters =
                machine.call(&program, &instance.symbol(), &int_args).map_err(HarnessError::Sim)?;
            let output = machine.read_f32_slice(out_addr, out_len);
            verify_f32(&output, &expected)?;
            (output.into_iter().map(f64::from).collect(), counters)
        }
    };
    Ok(RunOutcome { counters, compilation, output })
}

fn verify_f64(got: &[f64], expected: &[f64]) -> Result<(), HarnessError> {
    for (index, (&g, &e)) in got.iter().zip(expected).enumerate() {
        if g.to_bits() != e.to_bits() {
            return Err(HarnessError::Mismatch { index, got: g, expected: e });
        }
    }
    Ok(())
}

fn verify_f32(got: &[f32], expected: &[f32]) -> Result<(), HarnessError> {
    for (index, (&g, &e)) in got.iter().zip(expected).enumerate() {
        if g.to_bits() != e.to_bits() {
            return Err(HarnessError::Mismatch {
                index,
                got: f64::from(g),
                expected: f64::from(e),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::Shape;
    use mlb_core::PipelineOptions;

    #[test]
    fn sum_runs_under_all_flows() {
        let i = Instance::new(Kind::Sum, Shape::nm(4, 8), Precision::F64);
        for flow in [
            Flow::Ours(PipelineOptions::full()),
            Flow::Ours(PipelineOptions::baseline()),
            Flow::MlirLike,
            Flow::ClangLike,
        ] {
            let outcome = compile_and_run(&i, flow, 7).unwrap_or_else(|e| panic!("{flow:?}: {e}"));
            assert_eq!(outcome.output.len(), 32);
        }
    }

    #[test]
    fn fill_passes_the_scalar_argument() {
        let i = Instance::new(Kind::Fill, Shape::nm(4, 4), Precision::F64);
        let outcome = compile_and_run(&i, Flow::Ours(PipelineOptions::full()), 3).unwrap();
        assert_eq!(outcome.output, vec![FILL_VALUE; 16]);
    }
}
