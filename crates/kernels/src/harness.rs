//! Compile-and-simulate harness: builds a kernel, compiles it with a
//! chosen flow, places randomized operands in the TCDM, runs the Snitch
//! simulator, and checks the output against the host reference.

use std::fmt;

use mlb_core::{compile, Compilation, Flow, PipelineOptions};
use mlb_ir::Context;
use mlb_isa::{FpReg, TCDM_BASE, TCDM_SIZE};
use mlb_sim::{
    assemble, Cluster, ClusterCounters, Engine, ExecProgram, Machine, PerfCounters, TraceEntry,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::reference::reference;
use crate::suite::{Instance, Kind, Precision};

/// Error produced by the harness.
#[derive(Debug)]
pub enum HarnessError {
    /// Compilation failed.
    Compile(mlb_ir::PassError),
    /// The generated assembly did not assemble.
    Assemble(mlb_sim::AsmError),
    /// The operand buffers do not fit in the TCDM.
    Placement(String),
    /// The simulation faulted.
    Sim(mlb_sim::SimError),
    /// The output differed from the reference.
    Mismatch {
        /// First differing element.
        index: usize,
        /// Value the kernel produced.
        got: f64,
        /// Value the reference produced.
        expected: f64,
    },
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::Compile(e) => write!(f, "compile: {e}"),
            HarnessError::Assemble(e) => write!(f, "assemble: {e}"),
            HarnessError::Placement(e) => write!(f, "place operands: {e}"),
            HarnessError::Sim(e) => write!(f, "simulate: {e}"),
            HarnessError::Mismatch { index, got, expected } => {
                write!(f, "output mismatch at {index}: got {got}, expected {expected}")
            }
        }
    }
}

/// Places buffers of `sizes` elements (`elem_bytes` each) back to back in
/// the TCDM, 8-byte aligned, validating that the total footprint fits.
///
/// Both the simulator harness and the stage-level interpreter use this
/// layout, so interpreted stages see exactly the operand addresses the
/// simulated kernel does.
///
/// # Errors
///
/// When the address arithmetic overflows or the footprint exceeds
/// [`TCDM_SIZE`].
pub fn place_buffers(sizes: &[usize], elem_bytes: u32) -> Result<Vec<u32>, HarnessError> {
    let mut addrs = Vec::with_capacity(sizes.len());
    let mut cursor: u32 = TCDM_BASE;
    for (i, &size) in sizes.iter().enumerate() {
        addrs.push(cursor);
        let bytes = (size as u64)
            .checked_mul(u64::from(elem_bytes))
            .and_then(|b| u32::try_from(b).ok())
            .map(|b| b.next_multiple_of(8))
            .and_then(|b| cursor.checked_add(b))
            .ok_or_else(|| {
                HarnessError::Placement(format!(
                    "buffer {i} of {size} elements overflows the address space"
                ))
            })?;
        cursor = bytes;
    }
    let footprint = cursor - TCDM_BASE;
    if footprint as usize > TCDM_SIZE {
        return Err(HarnessError::Placement(format!(
            "operands need {footprint} bytes but the TCDM holds {TCDM_SIZE}"
        )));
    }
    Ok(addrs)
}

/// The randomized f64 input buffers the harness feeds a kernel for
/// `seed` (one buffer per entry of `sizes`, values in `[-1, 1)`).
pub fn random_inputs_f64(sizes: &[usize], seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    sizes.iter().map(|&s| (0..s).map(|_| rng.gen_range(-1.0..1.0)).collect()).collect()
}

/// The randomized f32 input buffers the harness feeds a kernel for
/// `seed` (one buffer per entry of `sizes`, values in `[-1, 1)`).
pub fn random_inputs_f32(sizes: &[usize], seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    sizes.iter().map(|&s| (0..s).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect()
}

impl std::error::Error for HarnessError {}

/// Everything measured in one verified kernel run.
#[derive(Debug)]
pub struct RunOutcome {
    /// Performance counters of the kernel call.
    pub counters: PerfCounters,
    /// Compilation artifacts (assembly, register statistics, passes).
    pub compilation: Compilation,
    /// The verified kernel output (widened to `f64` for f32 kernels).
    pub output: Vec<f64>,
}

impl RunOutcome {
    /// FPU utilization of the run.
    pub fn utilization(&self) -> f64 {
        self.counters.fpu_utilization()
    }
}

/// The scalar argument value used for Fill runs.
pub const FILL_VALUE: f64 = 2.5;

/// Compiles `instance` with `flow`, runs it on random inputs derived
/// from `seed`, verifies the result bit-for-bit against the reference,
/// and returns the measurements.
///
/// # Errors
///
/// Any compilation, assembly, simulation or verification failure.
pub fn compile_and_run(
    instance: &Instance,
    flow: Flow,
    seed: u64,
) -> Result<RunOutcome, HarnessError> {
    let mut ctx = Context::new();
    let module = instance.build_module(&mut ctx);
    let compilation = compile(&mut ctx, module, flow).map_err(HarnessError::Compile)?;
    run_compiled(instance, compilation, seed)
}

/// Runs an already-compiled kernel (see [`compile_and_run`]).
///
/// # Errors
///
/// Any assembly, simulation or verification failure.
pub fn run_compiled(
    instance: &Instance,
    compilation: Compilation,
    seed: u64,
) -> Result<RunOutcome, HarnessError> {
    let exec = predecode(&compilation)?;
    let outcome = run_predecoded(instance, &exec, seed)?;
    Ok(RunOutcome { counters: outcome.counters, compilation, output: outcome.output })
}

/// [`run_compiled`] with execution tracing on: additionally returns the
/// per-instruction [`TraceEntry`] list, which together with the
/// compilation's source map feeds [`crate::profile::Profile`].
///
/// # Errors
///
/// Any assembly, simulation or verification failure.
pub fn run_compiled_traced(
    instance: &Instance,
    compilation: Compilation,
    seed: u64,
) -> Result<(RunOutcome, Vec<TraceEntry>), HarnessError> {
    let exec = predecode(&compilation)?;
    let (outcome, trace) = run_predecoded_traced(instance, &exec, seed)?;
    Ok((RunOutcome { counters: outcome.counters, compilation, output: outcome.output }, trace))
}

/// Assembles and predecodes a compilation into the simulator's dense
/// CFG-level execution artifact, once. Repeat runs of the same artifact
/// ([`run_predecoded`], [`run_predecoded_traced`],
/// [`run_predecoded_on_cluster`]) then skip both the assembly scan and
/// the predecode entirely — the compile service caches these next to the
/// compilations they were derived from.
///
/// # Errors
///
/// When the compilation's assembly does not assemble.
pub fn predecode(compilation: &Compilation) -> Result<ExecProgram, HarnessError> {
    let program = assemble(&compilation.assembly).map_err(HarnessError::Assemble)?;
    Ok(ExecProgram::new(program))
}

/// Counters and verified output of one predecoded kernel run. Carries no
/// compilation artifacts: callers that predecode hold the
/// [`Compilation`] themselves (typically behind an `Arc` in a cache).
#[derive(Debug)]
pub struct ExecOutcome {
    /// Performance counters of the kernel call.
    pub counters: PerfCounters,
    /// The verified kernel output (widened to `f64` for f32 kernels).
    pub output: Vec<f64>,
}

/// Runs an already-predecoded kernel (see [`predecode`]) on random
/// inputs derived from `seed` and verifies the result bit-for-bit
/// against the host reference.
///
/// # Errors
///
/// Any simulation or verification failure.
pub fn run_predecoded(
    instance: &Instance,
    exec: &ExecProgram,
    seed: u64,
) -> Result<ExecOutcome, HarnessError> {
    run_predecoded_inner(instance, exec, seed, false, None).map(|(outcome, _)| outcome)
}

/// [`run_predecoded`] pinned to a specific execution [`Engine`] instead
/// of the process default (`MLB_SIM_ENGINE`). The engine-equivalence
/// suite and the `sim-throughput-*` benches race both engines inside
/// one process, which the `OnceLock`-cached env default cannot express.
///
/// # Errors
///
/// Any simulation or verification failure.
pub fn run_predecoded_with_engine(
    instance: &Instance,
    exec: &ExecProgram,
    seed: u64,
    engine: Engine,
) -> Result<ExecOutcome, HarnessError> {
    run_predecoded_inner(instance, exec, seed, false, Some(engine)).map(|(outcome, _)| outcome)
}

/// [`run_predecoded`] with execution tracing on.
///
/// # Errors
///
/// Any simulation or verification failure.
pub fn run_predecoded_traced(
    instance: &Instance,
    exec: &ExecProgram,
    seed: u64,
) -> Result<(ExecOutcome, Vec<TraceEntry>), HarnessError> {
    run_predecoded_inner(instance, exec, seed, true, None)
        .map(|(outcome, trace)| (outcome, trace.unwrap_or_default()))
}

/// [`run_predecoded_traced`] pinned to a specific execution [`Engine`]
/// (see [`run_predecoded_with_engine`]). Tracing always executes on the
/// checked stepper, so the rendered traces must come out identical no
/// matter the engine — which is exactly what the equivalence suite
/// asserts with this entry point.
///
/// # Errors
///
/// Any simulation or verification failure.
pub fn run_predecoded_traced_with_engine(
    instance: &Instance,
    exec: &ExecProgram,
    seed: u64,
    engine: Engine,
) -> Result<(ExecOutcome, Vec<TraceEntry>), HarnessError> {
    run_predecoded_inner(instance, exec, seed, true, Some(engine))
        .map(|(outcome, trace)| (outcome, trace.unwrap_or_default()))
}

fn run_predecoded_inner(
    instance: &Instance,
    exec: &ExecProgram,
    seed: u64,
    trace: bool,
    engine: Option<Engine>,
) -> Result<(ExecOutcome, Option<Vec<TraceEntry>>), HarnessError> {
    let sizes = instance.buffer_sizes();
    let esz = instance.precision.bits() / 8;
    let mut machine = Machine::new();
    if let Some(engine) = engine {
        machine.set_engine(engine);
    }
    if trace {
        machine.enable_trace();
    }

    let addrs = place_buffers(&sizes, esz)?;
    let num_inputs = sizes.len() - 1;
    let out_addr = addrs[num_inputs];
    let out_len = sizes[num_inputs];

    // Randomized inputs in [-1, 1); weights for pooling stay the same.
    let (output, counters) = match instance.precision {
        Precision::F64 => {
            let inputs = random_inputs_f64(&sizes[..num_inputs], seed);
            for (input, &addr) in inputs.iter().zip(&addrs) {
                machine.write_f64_slice(addr, input).map_err(HarnessError::Sim)?;
            }
            let expected = reference(instance, &inputs, FILL_VALUE);
            if instance.kind == Kind::Fill {
                machine.set_f_bits(FpReg::fa(0), FILL_VALUE.to_bits());
            }
            let int_args: Vec<u32> = addrs.clone();
            let counters = machine
                .call_predecoded(exec, &instance.symbol(), &int_args)
                .map_err(HarnessError::Sim)?;
            let output = machine.read_f64_slice(out_addr, out_len).map_err(HarnessError::Sim)?;
            verify_f64(&output, &expected)?;
            (output, counters)
        }
        Precision::F32 => {
            let inputs = random_inputs_f32(&sizes[..num_inputs], seed);
            for (input, &addr) in inputs.iter().zip(&addrs) {
                machine.write_f32_slice(addr, input).map_err(HarnessError::Sim)?;
            }
            let expected = reference(instance, &inputs, FILL_VALUE as f32);
            if instance.kind == Kind::Fill {
                machine.set_f_bits(
                    FpReg::fa(0),
                    ((FILL_VALUE as f32).to_bits() as u64) | 0xFFFF_FFFF_0000_0000,
                );
            }
            let int_args: Vec<u32> = addrs.clone();
            let counters = machine
                .call_predecoded(exec, &instance.symbol(), &int_args)
                .map_err(HarnessError::Sim)?;
            let output = machine.read_f32_slice(out_addr, out_len).map_err(HarnessError::Sim)?;
            verify_f32(&output, &expected)?;
            (output.into_iter().map(f64::from).collect(), counters)
        }
    };
    let trace = machine.take_trace();
    Ok((ExecOutcome { counters, output }, trace))
}

/// Everything measured in one verified multi-core cluster run.
#[derive(Debug)]
pub struct ClusterRunOutcome {
    /// Per-core and aggregate counters of the cluster call.
    pub counters: ClusterCounters,
    /// Compilation artifacts (assembly, register statistics, passes).
    pub compilation: Compilation,
    /// The verified kernel output (widened to `f64` for f32 kernels).
    pub output: Vec<f64>,
}

/// Compiles `instance` for a `cores`-wide cluster (the multi-level flow
/// with `distribute-to-cores`), runs it on all cores against one shared
/// TCDM image, verifies the result bit-for-bit against the host
/// reference, and returns the merged measurements.
///
/// # Errors
///
/// Any compilation, assembly, simulation or verification failure.
pub fn compile_and_run_on_cluster(
    instance: &Instance,
    mut opts: PipelineOptions,
    seed: u64,
    cores: usize,
) -> Result<ClusterRunOutcome, HarnessError> {
    opts.cores = cores;
    let mut ctx = Context::new();
    let module = instance.build_module(&mut ctx);
    let compilation = compile(&mut ctx, module, Flow::Ours(opts)).map_err(HarnessError::Compile)?;
    run_compiled_on_cluster(instance, compilation, seed, cores)
}

/// Runs an already-compiled kernel on a `cores`-wide cluster (see
/// [`compile_and_run_on_cluster`]). The compilation must have been
/// produced with `PipelineOptions::cores == cores`, otherwise the
/// sharded loop bounds will not match the cluster width.
///
/// # Errors
///
/// Any assembly, simulation or verification failure.
pub fn run_compiled_on_cluster(
    instance: &Instance,
    compilation: Compilation,
    seed: u64,
    cores: usize,
) -> Result<ClusterRunOutcome, HarnessError> {
    let exec = predecode(&compilation)?;
    let outcome = run_predecoded_on_cluster(instance, &exec, seed, cores)?;
    Ok(ClusterRunOutcome { counters: outcome.counters, compilation, output: outcome.output })
}

/// Counters and verified output of one predecoded cluster run. Like
/// [`ExecOutcome`], carries no compilation artifacts.
#[derive(Debug)]
pub struct ClusterExecOutcome {
    /// Per-core and aggregate counters of the cluster call.
    pub counters: ClusterCounters,
    /// The verified kernel output (widened to `f64` for f32 kernels).
    pub output: Vec<f64>,
}

/// Runs an already-predecoded kernel (see [`predecode`]) on a
/// `cores`-wide cluster. The compilation must have been produced with
/// `PipelineOptions::cores == cores`, otherwise the sharded loop bounds
/// will not match the cluster width.
///
/// # Errors
///
/// Any simulation or verification failure.
pub fn run_predecoded_on_cluster(
    instance: &Instance,
    exec: &ExecProgram,
    seed: u64,
    cores: usize,
) -> Result<ClusterExecOutcome, HarnessError> {
    run_predecoded_on_cluster_inner(instance, exec, seed, cores, None)
}

/// [`run_predecoded_on_cluster`] pinned to a specific execution
/// [`Engine`] on every core (see [`run_predecoded_with_engine`]).
///
/// # Errors
///
/// Any simulation or verification failure.
pub fn run_predecoded_on_cluster_with_engine(
    instance: &Instance,
    exec: &ExecProgram,
    seed: u64,
    cores: usize,
    engine: Engine,
) -> Result<ClusterExecOutcome, HarnessError> {
    run_predecoded_on_cluster_inner(instance, exec, seed, cores, Some(engine))
}

fn run_predecoded_on_cluster_inner(
    instance: &Instance,
    exec: &ExecProgram,
    seed: u64,
    cores: usize,
    engine: Option<Engine>,
) -> Result<ClusterExecOutcome, HarnessError> {
    let sizes = instance.buffer_sizes();
    let esz = instance.precision.bits() / 8;
    let mut cluster = Cluster::new(cores);
    if let Some(engine) = engine {
        cluster.set_engine(engine);
    }

    let addrs = place_buffers(&sizes, esz)?;
    let num_inputs = sizes.len() - 1;
    let out_addr = addrs[num_inputs];
    let out_len = sizes[num_inputs];

    let (output, counters) = match instance.precision {
        Precision::F64 => {
            let inputs = random_inputs_f64(&sizes[..num_inputs], seed);
            for (input, &addr) in inputs.iter().zip(&addrs) {
                cluster.write_f64_slice(addr, input).map_err(HarnessError::Sim)?;
            }
            let expected = reference(instance, &inputs, FILL_VALUE);
            if instance.kind == Kind::Fill {
                cluster.broadcast_f_bits(FpReg::fa(0), FILL_VALUE.to_bits());
            }
            let counters = cluster
                .call_predecoded(exec, &instance.symbol(), &addrs)
                .map_err(HarnessError::Sim)?;
            let output = cluster.read_f64_slice(out_addr, out_len).map_err(HarnessError::Sim)?;
            verify_f64(&output, &expected)?;
            (output, counters)
        }
        Precision::F32 => {
            let inputs = random_inputs_f32(&sizes[..num_inputs], seed);
            for (input, &addr) in inputs.iter().zip(&addrs) {
                cluster.write_f32_slice(addr, input).map_err(HarnessError::Sim)?;
            }
            let expected = reference(instance, &inputs, FILL_VALUE as f32);
            if instance.kind == Kind::Fill {
                cluster.broadcast_f_bits(
                    FpReg::fa(0),
                    ((FILL_VALUE as f32).to_bits() as u64) | 0xFFFF_FFFF_0000_0000,
                );
            }
            let counters = cluster
                .call_predecoded(exec, &instance.symbol(), &addrs)
                .map_err(HarnessError::Sim)?;
            let output = cluster.read_f32_slice(out_addr, out_len).map_err(HarnessError::Sim)?;
            verify_f32(&output, &expected)?;
            (output.into_iter().map(f64::from).collect(), counters)
        }
    };
    Ok(ClusterExecOutcome { counters, output })
}

fn verify_f64(got: &[f64], expected: &[f64]) -> Result<(), HarnessError> {
    for (index, (&g, &e)) in got.iter().zip(expected).enumerate() {
        if g.to_bits() != e.to_bits() {
            return Err(HarnessError::Mismatch { index, got: g, expected: e });
        }
    }
    Ok(())
}

fn verify_f32(got: &[f32], expected: &[f32]) -> Result<(), HarnessError> {
    for (index, (&g, &e)) in got.iter().zip(expected).enumerate() {
        if g.to_bits() != e.to_bits() {
            return Err(HarnessError::Mismatch {
                index,
                got: f64::from(g),
                expected: f64::from(e),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::Shape;
    use mlb_core::PipelineOptions;

    #[test]
    fn sum_runs_under_all_flows() {
        let i = Instance::new(Kind::Sum, Shape::nm(4, 8), Precision::F64);
        for flow in [
            Flow::Ours(PipelineOptions::full()),
            Flow::Ours(PipelineOptions::baseline()),
            Flow::MlirLike,
            Flow::ClangLike,
        ] {
            let outcome = compile_and_run(&i, flow, 7).unwrap_or_else(|e| panic!("{flow:?}: {e}"));
            assert_eq!(outcome.output.len(), 32);
        }
    }

    #[test]
    fn cluster_outputs_match_the_single_core_run_bit_for_bit() {
        for kind in Kind::all() {
            let shape = match kind {
                Kind::MatMul | Kind::MatMulT => Shape::nmk(4, 8, 8),
                _ => Shape::nm(4, 8),
            };
            let i = Instance::new(kind, shape, Precision::F64);
            let single = compile_and_run(&i, Flow::Ours(PipelineOptions::full()), 9)
                .unwrap_or_else(|e| panic!("{i} single-core: {e}"));
            for cores in [1usize, 2, 4] {
                let multi = compile_and_run_on_cluster(&i, PipelineOptions::full(), 9, cores)
                    .unwrap_or_else(|e| panic!("{i} on {cores} cores: {e}"));
                let got: Vec<u64> = multi.output.iter().map(|v| v.to_bits()).collect();
                let want: Vec<u64> = single.output.iter().map(|v| v.to_bits()).collect();
                assert_eq!(got, want, "{i} on {cores} cores");
                assert_eq!(multi.counters.per_core.len(), cores);
            }
        }
    }

    #[test]
    fn unshardable_kernel_runs_on_core0_only() {
        // M = 1 and N = 5: no parallel bound divides 4, so the kernel
        // must fall back to core 0 instead of computing garbage.
        let i = Instance::new(Kind::MatMul, Shape::nmk(1, 5, 7), Precision::F64);
        let outcome = compile_and_run_on_cluster(&i, PipelineOptions::full(), 5, 4).unwrap();
        assert!(outcome.counters.per_core[0].flops > 0);
        for hart in 1..4 {
            assert_eq!(
                outcome.counters.per_core[hart].flops, 0,
                "core {hart} must idle through a reduction-only kernel"
            );
        }
    }

    #[test]
    fn oversized_operands_are_rejected_cleanly() {
        let err = place_buffers(&[TCDM_SIZE], 8).unwrap_err();
        assert!(matches!(err, HarnessError::Placement(_)), "{err}");
        assert!(err.to_string().contains("TCDM"), "{err}");
    }

    #[test]
    fn placement_overflow_is_an_error_not_a_panic() {
        let err = place_buffers(&[usize::MAX], 8).unwrap_err();
        assert!(matches!(err, HarnessError::Placement(_)), "{err}");
        assert!(err.to_string().contains("overflow"), "{err}");
    }

    #[test]
    fn placement_is_back_to_back_and_aligned() {
        let addrs = place_buffers(&[3, 4], 8).unwrap();
        assert_eq!(addrs, vec![TCDM_BASE, TCDM_BASE + 24]);
        let addrs = place_buffers(&[3, 4], 4).unwrap();
        assert_eq!(addrs, vec![TCDM_BASE, TCDM_BASE + 16]);
    }

    #[test]
    fn fill_passes_the_scalar_argument() {
        let i = Instance::new(Kind::Fill, Shape::nm(4, 4), Precision::F64);
        let outcome = compile_and_run(&i, Flow::Ours(PipelineOptions::full()), 3).unwrap();
        assert_eq!(outcome.output, vec![FILL_VALUE; 16]);
    }
}
