//! Stage-level differential testing: interprets the module after every
//! pipeline pass against the host reference, bisecting a miscompile to
//! the first pass whose output diverges.
//!
//! The interpreter executes each [`Stage`] snapshot with the exact TCDM
//! operand layout the simulator harness uses ([`place_buffers`] and
//! [`random_inputs_f64`]/[`random_inputs_f32`] with the same seed), so a
//! divergence found here reproduces 1:1 under `mlb_sim`. Every stage
//! must match the host reference bit-for-bit — under either
//! multiply-accumulate rounding, since the peephole pass legitimately
//! replaces two-rounding `mul + add` chains with single-rounding
//! `fmadd`s partway through the pipeline.

use std::fmt;

use mlb_core::{compile_with_stages_tweaked, Flow, Stage};
use mlb_ir::{
    Context, ExecRegistry, Flow as ExecFlow, Interpreter, OpId, PassError, PassManager, Type, Value,
};

use crate::harness::{place_buffers, random_inputs_f32, random_inputs_f64, FILL_VALUE};
use crate::reference::{reference_with, FmaMode};
use crate::suite::{Instance, Precision};

/// Builds the combined execution registry covering every dialect of the
/// pipeline, from `linalg` down to `rv_cf`.
pub fn exec_registry() -> ExecRegistry {
    let mut reg = ExecRegistry::new();
    mlb_dialects::register_exec(&mut reg);
    mlb_riscv::register_exec(&mut reg);
    reg
}

/// A bisected miscompile: the first pipeline stage whose interpreted
/// output differs from the host reference.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The pass whose output first diverged.
    pub stage: String,
    /// Its position in the checked stage sequence (0 = the input IR).
    pub stage_index: usize,
    /// How many stages the pipeline produced in total.
    pub num_stages: usize,
    /// The operand seed of the failing run.
    pub seed: u64,
    /// First differing output element.
    pub index: usize,
    /// The interpreted value at that element.
    pub got: f64,
    /// The (fused) host-reference value at that element.
    pub expected: f64,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "first divergence after pass `{}` (stage {}/{}, seed {}): \
             output[{}] = {}, reference {}",
            self.stage,
            self.stage_index,
            self.num_stages.saturating_sub(1),
            self.seed,
            self.index,
            self.got,
            self.expected
        )
    }
}

/// Error produced by the stage-level differential tester.
#[derive(Debug)]
pub enum DifftestError {
    /// The pipeline itself failed before producing all stages.
    Compile(PassError),
    /// The operands do not fit in the TCDM.
    Placement(String),
    /// A stage could not be interpreted (missing semantics, trap, fuel).
    Interp {
        /// The stage that failed to interpret.
        stage: String,
        /// Its position in the checked stage sequence.
        stage_index: usize,
        /// The interpreter's error message.
        message: String,
    },
    /// A stage interpreted fine but disagreed with the reference.
    Divergence(Divergence),
}

impl fmt::Display for DifftestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DifftestError::Compile(e) => write!(f, "compile: {e}"),
            DifftestError::Placement(e) => write!(f, "place operands: {e}"),
            DifftestError::Interp { stage, stage_index, message } => {
                write!(f, "interpreting stage {stage_index} (after `{stage}`): {message}")
            }
            DifftestError::Divergence(d) => d.fmt(f),
        }
    }
}

impl std::error::Error for DifftestError {}

/// A clean differential run: every stage matched the reference.
#[derive(Debug)]
pub struct DifftestOutcome {
    /// Names of the checked stages, in pipeline order (`"input"` first).
    pub stages: Vec<&'static str>,
}

/// The operand buffers of one differential run, at the run's precision.
enum Operands {
    F64(Vec<Vec<f64>>),
    F32(Vec<Vec<f32>>),
}

/// Differentially tests one kernel instance: compiles it with `flow`,
/// interprets the module after every pipeline pass on the seeded operand
/// layout, and checks each stage's output bit-for-bit against the host
/// reference.
///
/// # Errors
///
/// [`DifftestError::Divergence`] identifies the first pass whose output
/// disagrees; the other variants are infrastructure failures.
pub fn difftest_instance(
    instance: &Instance,
    flow: Flow,
    seed: u64,
) -> Result<DifftestOutcome, DifftestError> {
    difftest_instance_tweaked(instance, flow, seed, &|_| {})
}

/// [`difftest_instance`] with a hook that may alter the pass pipeline
/// before it runs — the fault-injection entry point of the harness's
/// self-test (insert a deliberately wrong pass, check the bisection
/// blames exactly it).
///
/// # Errors
///
/// Same conditions as [`difftest_instance`].
pub fn difftest_instance_tweaked(
    instance: &Instance,
    flow: Flow,
    seed: u64,
    tweak: &dyn Fn(&mut PassManager),
) -> Result<DifftestOutcome, DifftestError> {
    let mut ctx = Context::new();
    let module = instance.build_module(&mut ctx);
    let (_compilation, stages) = compile_with_stages_tweaked(&mut ctx, module, flow, tweak)
        .map_err(DifftestError::Compile)?;

    let sizes = instance.buffer_sizes();
    let esz = instance.precision.bits() / 8;
    let addrs = place_buffers(&sizes, esz).map_err(|e| DifftestError::Placement(e.to_string()))?;
    let num_inputs = sizes.len() - 1;
    let out_len = sizes[num_inputs];
    let out_addr = addrs[num_inputs];

    // Host references at both multiply-accumulate roundings, as element
    // bit patterns. `display` keeps the fused values for reporting.
    let (operands, fused, unfused, display): (Operands, Vec<u64>, Vec<u64>, Vec<f64>);
    match instance.precision {
        Precision::F64 => {
            let inputs = random_inputs_f64(&sizes[..num_inputs], seed);
            let f = reference_with(instance, &inputs, FILL_VALUE, FmaMode::Fused);
            let u = reference_with(instance, &inputs, FILL_VALUE, FmaMode::Unfused);
            fused = f.iter().map(|v| v.to_bits()).collect();
            unfused = u.iter().map(|v| v.to_bits()).collect();
            display = f;
            operands = Operands::F64(inputs);
        }
        Precision::F32 => {
            let inputs = random_inputs_f32(&sizes[..num_inputs], seed);
            let f = reference_with(instance, &inputs, FILL_VALUE as f32, FmaMode::Fused);
            let u = reference_with(instance, &inputs, FILL_VALUE as f32, FmaMode::Unfused);
            fused = f.iter().map(|v| u64::from(v.to_bits())).collect();
            unfused = u.iter().map(|v| u64::from(v.to_bits())).collect();
            display = f.iter().map(|&v| f64::from(v)).collect();
            operands = Operands::F32(inputs);
        }
    }

    // Multi-core flows are interpreted once per hart over one shared
    // memory image, so the check covers the sharded kernel exactly as
    // the cluster runs it.
    let cores = match flow {
        Flow::Ours(opts) => opts.cores.max(1),
        _ => 1,
    };
    let reg = exec_registry();
    let num_stages = stages.len();
    let mut checked = Vec::with_capacity(num_stages);
    for (stage_index, stage) in stages.iter().enumerate() {
        let got = run_stage(&reg, stage, instance, &addrs, &operands, out_addr, out_len, cores)
            .map_err(|message| DifftestError::Interp {
                stage: stage.pass.to_string(),
                stage_index,
                message,
            })?;
        if got != fused && got != unfused {
            let (index, &bits) =
                got.iter().enumerate().find(|&(i, &b)| b != fused[i]).unwrap_or((0, &0));
            return Err(DifftestError::Divergence(Divergence {
                stage: stage.pass.to_string(),
                stage_index,
                num_stages,
                seed,
                index,
                got: match instance.precision {
                    Precision::F64 => f64::from_bits(bits),
                    Precision::F32 => f64::from(f32::from_bits(bits as u32)),
                },
                expected: display[index],
            }));
        }
        checked.push(stage.pass);
    }
    Ok(DifftestOutcome { stages: checked })
}

/// Interprets one stage snapshot and returns the output buffer as
/// element bit patterns.
///
/// A stage is re-run once per hart (over one shared memory image) iff
/// its module reads the hart id: before `distribute-to-cores` the
/// kernel is hart-independent and a second execution of, say, a fused
/// reduction would double-accumulate — so only sharded stages are
/// interpreted cluster-style.
#[allow(clippy::too_many_arguments)]
fn run_stage(
    reg: &ExecRegistry,
    stage: &Stage,
    instance: &Instance,
    addrs: &[u32],
    operands: &Operands,
    out_addr: u32,
    out_len: usize,
    cores: usize,
) -> Result<Vec<u64>, String> {
    let ctx = &stage.ctx;
    let symbol = instance.symbol();
    let func_op = find_kernel(ctx, stage.module, &symbol)
        .ok_or_else(|| format!("no function `{symbol}` in the module"))?;

    let harts =
        if cores > 1 && !ctx.walk_named(stage.module, mlb_riscv::rv_snitch::HARTID).is_empty() {
            cores
        } else {
            1
        };

    let mut image: Vec<u8> = Vec::new();
    for hart in 0..harts {
        let mut it = Interpreter::new();
        it.hart = hart as i64;
        if hart == 0 {
            match operands {
                Operands::F64(inputs) => {
                    for (input, &addr) in inputs.iter().zip(addrs) {
                        it.write_f64_slice(addr, input)?;
                    }
                }
                Operands::F32(inputs) => {
                    for (input, &addr) in inputs.iter().zip(addrs) {
                        it.write_f32_slice(addr, input)?;
                    }
                }
            }
        } else {
            it.swap_mem(&mut image);
        }

        bind_arguments(&mut it, ctx, func_op, instance, addrs)?;

        let region = ctx.op(func_op).regions[0];
        let blocks = ctx.region_blocks(region).to_vec();
        if blocks.len() == 1 {
            match reg.run_block(&mut it, ctx, blocks[0]).map_err(|e| e.to_string())? {
                ExecFlow::Return => {}
                other => return Err(format!("function body ended with {other:?}, not a return")),
            }
        } else {
            reg.run_cfg(&mut it, ctx, region).map_err(|e| e.to_string())?;
        }
        it.swap_mem(&mut image);
    }

    let mut it = Interpreter::new();
    it.swap_mem(&mut image);
    let mut out = Vec::with_capacity(out_len);
    match instance.precision {
        Precision::F64 => {
            for i in 0..out_len {
                out.push(u64::from_le_bytes(it.read_bytes::<8>(out_addr + 8 * i as u32)?));
            }
        }
        Precision::F32 => {
            for i in 0..out_len {
                out.push(u64::from(u32::from_le_bytes(
                    it.read_bytes::<4>(out_addr + 4 * i as u32)?,
                )));
            }
        }
    }
    Ok(out)
}

/// Finds the kernel function (`func.func` or `rv_func.func`) named
/// `symbol` under `module`. Shared with the graph-level difftest.
pub(crate) fn find_kernel(ctx: &Context, module: OpId, symbol: &str) -> Option<OpId> {
    for func in ctx.walk_named(module, mlb_dialects::func::FUNC) {
        if mlb_dialects::func::symbol_name(ctx, func) == Some(symbol) {
            return Some(func);
        }
    }
    ctx.walk_named(module, mlb_riscv::rv_func::FUNC)
        .into_iter()
        .find(|&func| mlb_riscv::rv_func::symbol_name(ctx, func) == Some(symbol))
}

/// Binds the kernel's entry-block arguments the way the simulator
/// harness sets up a call: buffer addresses for pointer-like arguments
/// (in [`place_buffers`] order) and the Fill scalar for float arguments,
/// at any pipeline level (memref/float types before register lowering,
/// pinned or unpinned register types after).
fn bind_arguments(
    it: &mut Interpreter,
    ctx: &Context,
    func_op: OpId,
    instance: &Instance,
    addrs: &[u32],
) -> Result<(), String> {
    let entry = *ctx.region_blocks(ctx.op(func_op).regions[0]).first().ok_or("empty function")?;
    let args = ctx.block_args(entry).to_vec();
    let mut next_addr = addrs.iter();
    for arg in args {
        match ctx.value_type(arg) {
            Type::MemRef(_) | Type::IntRegister(_) => {
                let &addr =
                    next_addr.next().ok_or("more pointer arguments than operand buffers")?;
                it.set(ctx, arg, Value::Int(i64::from(addr)))?;
            }
            Type::F64 => it.set(ctx, arg, Value::F64(FILL_VALUE))?,
            Type::F32 => it.set(ctx, arg, Value::F32(FILL_VALUE as f32))?,
            Type::FpRegister(_) => {
                let bits = match instance.precision {
                    Precision::F64 => FILL_VALUE.to_bits(),
                    Precision::F32 => {
                        u64::from((FILL_VALUE as f32).to_bits()) | 0xFFFF_FFFF_0000_0000
                    }
                };
                it.set(ctx, arg, Value::Bits(bits))?;
            }
            other => return Err(format!("unsupported kernel argument type {other}")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{Kind, Shape};
    use mlb_core::PipelineOptions;
    use mlb_ir::{DialectRegistry, Pass};

    #[test]
    fn every_kernel_passes_every_stage_under_both_flows() {
        for kind in Kind::all() {
            let shape = match kind {
                Kind::MatMul | Kind::MatMulT => Shape::nmk(2, 4, 3),
                _ => Shape::nm(3, 4),
            };
            let instance = Instance::new(kind, shape, Precision::F64);
            for flow in [Flow::Ours(PipelineOptions::full()), Flow::MlirLike] {
                let outcome = difftest_instance(&instance, flow, 11)
                    .unwrap_or_else(|e| panic!("{instance} under {flow:?}: {e}"));
                assert!(
                    outcome.stages.len() > 5,
                    "{instance}: only {} stages",
                    outcome.stages.len()
                );
                assert_eq!(outcome.stages[0], "input");
            }
        }
    }

    #[test]
    fn multi_core_kernels_pass_every_stage() {
        for kind in Kind::all() {
            let shape = match kind {
                Kind::MatMul | Kind::MatMulT => Shape::nmk(4, 8, 8),
                _ => Shape::nm(4, 8),
            };
            let instance = Instance::new(kind, shape, Precision::F64);
            for cores in [2usize, 4] {
                let mut opts = PipelineOptions::full();
                opts.cores = cores;
                difftest_instance(&instance, Flow::Ours(opts), 11)
                    .unwrap_or_else(|e| panic!("{instance} on {cores} cores: {e}"));
            }
        }
    }

    #[test]
    fn f32_kernels_pass_every_stage() {
        for kind in [Kind::Sum, Kind::Relu, Kind::MatMulT] {
            let shape = match kind {
                Kind::MatMulT => Shape::nmk(2, 4, 4),
                _ => Shape::nm(4, 4),
            };
            let instance = Instance::new(kind, shape, Precision::F32);
            difftest_instance(&instance, Flow::Ours(PipelineOptions::full()), 5)
                .unwrap_or_else(|e| panic!("{instance}: {e}"));
        }
    }

    /// A deliberately miscompiling pass: turns every `arith.addf` into a
    /// subtraction, silently changing semantics mid-pipeline.
    struct SabotageAddf;

    impl Pass for SabotageAddf {
        fn name(&self) -> &'static str {
            "sabotage-addf"
        }
        fn run(
            &self,
            ctx: &mut Context,
            _registry: &DialectRegistry,
            root: OpId,
        ) -> Result<(), mlb_ir::PassError> {
            for op in ctx.walk(root) {
                if ctx.op(op).name == mlb_dialects::arith::ADDF {
                    ctx.op_mut(op).name = mlb_dialects::arith::SUBF.to_string();
                }
            }
            Ok(())
        }
    }

    #[test]
    fn injected_miscompile_is_bisected_to_its_exact_stage() {
        // Sum has no multiply-accumulate, so fused and unfused references
        // agree and the only way to diverge is a genuine miscompile.
        let instance = Instance::new(Kind::Sum, Shape::nm(4, 4), Precision::F64);
        let err =
            difftest_instance_tweaked(&instance, Flow::Ours(PipelineOptions::full()), 3, &|pm| {
                pm.insert(2, SabotageAddf);
            })
            .unwrap_err();
        let DifftestError::Divergence(d) = err else { panic!("expected divergence, got {err}") };
        assert_eq!(d.stage, "sabotage-addf", "{d}");
        // Stage 0 is the input module, stages 1..3 are the passes before
        // the sabotage; the divergence appears exactly at its output.
        assert_eq!(d.stage_index, 3, "{d}");
        assert_eq!(d.seed, 3);
        assert!(d.to_string().contains("first divergence after pass `sabotage-addf`"), "{d}");
    }

    #[test]
    fn clean_runs_report_the_stage_list() {
        let instance = Instance::new(Kind::Fill, Shape::nm(4, 4), Precision::F64);
        let outcome = difftest_instance(&instance, Flow::Ours(PipelineOptions::full()), 1).unwrap();
        assert!(outcome.stages.contains(&"input"));
        assert!(outcome.stages.iter().any(|s| s.contains("allocate")), "{:?}", outcome.stages);
    }
}
