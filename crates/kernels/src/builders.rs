//! `linalg`-level IR builders for the kernel suite.
//!
//! Each builder creates one `func.func` containing the kernel as
//! `linalg` operations — the input of the micro-kernel compiler
//! (Section 4.1: kernels enter as `linalg.generic`, reductions preceded
//! by a `linalg.fill` zeroing the output, "the form used by most MLIR
//! DNN frontends").

use mlb_dialects::{arith, builtin, func, linalg};
use mlb_ir::{AffineExpr, AffineMap, Context, IteratorType, OpId, Type};

use crate::suite::{Instance, Kind, Precision, Shape};

/// Initial value used when fusing/filling max-pool outputs: an integral
/// constant (materializable without a constant pool) far below any input.
pub const MAX_POOL_INIT: f64 = -1.0e9;

impl Instance {
    /// Builds a module containing this kernel at the `linalg` level.
    pub fn build_module(&self, ctx: &mut Context) -> OpId {
        let (module, top) = builtin::build_module(ctx);
        let elem = match self.precision {
            Precision::F64 => Type::F64,
            Precision::F32 => Type::F32,
        };
        let Shape { n, m, k } = self.shape;
        match self.kind {
            Kind::Fill => {
                let z_ty = Type::memref(vec![n, m], elem.clone());
                let (_f, entry) =
                    func::build_func(ctx, top, &self.symbol(), vec![elem, z_ty], vec![]);
                let value = ctx.block_args(entry)[0];
                let z = ctx.block_args(entry)[1];
                linalg::build_fill(ctx, entry, value, z);
                func::build_return(ctx, entry, vec![]);
            }
            Kind::Sum => {
                let buf = Type::memref(vec![n, m], elem);
                let (_f, entry) = func::build_func(
                    ctx,
                    top,
                    &self.symbol(),
                    vec![buf.clone(), buf.clone(), buf],
                    vec![],
                );
                let x = ctx.block_args(entry)[0];
                let y = ctx.block_args(entry)[1];
                let z = ctx.block_args(entry)[2];
                let id = AffineMap::identity(2);
                linalg::build_generic(
                    ctx,
                    entry,
                    vec![x, y],
                    vec![z],
                    vec![id.clone(), id.clone(), id],
                    vec![IteratorType::Parallel, IteratorType::Parallel],
                    None,
                    |ctx, body, args| vec![arith::binary(ctx, body, arith::ADDF, args[0], args[1])],
                );
                func::build_return(ctx, entry, vec![]);
            }
            Kind::Relu => {
                let buf = Type::memref(vec![n, m], elem.clone());
                let (_f, entry) =
                    func::build_func(ctx, top, &self.symbol(), vec![buf.clone(), buf], vec![]);
                let x = ctx.block_args(entry)[0];
                let z = ctx.block_args(entry)[1];
                let zero = arith::constant_float(ctx, entry, 0.0, elem);
                let id = AffineMap::identity(2);
                linalg::build_generic(
                    ctx,
                    entry,
                    vec![x],
                    vec![z],
                    vec![id.clone(), id],
                    vec![IteratorType::Parallel, IteratorType::Parallel],
                    None,
                    |ctx, body, args| {
                        vec![arith::binary(ctx, body, arith::MAXIMUMF, args[0], zero)]
                    },
                );
                func::build_return(ctx, entry, vec![]);
            }
            Kind::Conv3x3 => {
                let x_ty = Type::memref(vec![n + 2, m + 2], elem.clone());
                let w_ty = Type::memref(vec![3, 3], elem.clone());
                let z_ty = Type::memref(vec![n, m], elem.clone());
                let (_f, entry) =
                    func::build_func(ctx, top, &self.symbol(), vec![x_ty, w_ty, z_ty], vec![]);
                let x = ctx.block_args(entry)[0];
                let w = ctx.block_args(entry)[1];
                let z = ctx.block_args(entry)[2];
                let zero = arith::constant_float(ctx, entry, 0.0, elem);
                linalg::build_fill(ctx, entry, zero, z);
                // dims: (row, col, kh, kw)
                let x_map = AffineMap::new(
                    4,
                    0,
                    vec![
                        AffineExpr::dim(0).add(AffineExpr::dim(2)),
                        AffineExpr::dim(1).add(AffineExpr::dim(3)),
                    ],
                );
                let w_map = AffineMap::projection(4, &[2, 3]);
                let z_map = AffineMap::projection(4, &[0, 1]);
                linalg::build_generic(
                    ctx,
                    entry,
                    vec![x, w],
                    vec![z],
                    vec![x_map, w_map, z_map],
                    vec![
                        IteratorType::Parallel,
                        IteratorType::Parallel,
                        IteratorType::Reduction,
                        IteratorType::Reduction,
                    ],
                    None,
                    |ctx, body, args| {
                        let p = arith::binary(ctx, body, arith::MULF, args[0], args[1]);
                        vec![arith::binary(ctx, body, arith::ADDF, p, args[2])]
                    },
                );
                func::build_return(ctx, entry, vec![]);
            }
            Kind::MaxPool3x3 | Kind::SumPool3x3 => {
                let x_ty = Type::memref(vec![n + 2, m + 2], elem.clone());
                let z_ty = Type::memref(vec![n, m], elem.clone());
                let (_f, entry) =
                    func::build_func(ctx, top, &self.symbol(), vec![x_ty, z_ty], vec![]);
                let x = ctx.block_args(entry)[0];
                let z = ctx.block_args(entry)[1];
                let init = if self.kind == Kind::MaxPool3x3 { MAX_POOL_INIT } else { 0.0 };
                let init_v = arith::constant_float(ctx, entry, init, elem);
                linalg::build_fill(ctx, entry, init_v, z);
                let x_map = AffineMap::new(
                    4,
                    0,
                    vec![
                        AffineExpr::dim(0).add(AffineExpr::dim(2)),
                        AffineExpr::dim(1).add(AffineExpr::dim(3)),
                    ],
                );
                let z_map = AffineMap::projection(4, &[0, 1]);
                let combine =
                    if self.kind == Kind::MaxPool3x3 { arith::MAXIMUMF } else { arith::ADDF };
                linalg::build_generic(
                    ctx,
                    entry,
                    vec![x],
                    vec![z],
                    vec![x_map, z_map],
                    vec![
                        IteratorType::Parallel,
                        IteratorType::Parallel,
                        IteratorType::Reduction,
                        IteratorType::Reduction,
                    ],
                    Some(vec![n, m, 3, 3]),
                    |ctx, body, args| vec![arith::binary(ctx, body, combine, args[0], args[1])],
                );
                func::build_return(ctx, entry, vec![]);
            }
            Kind::MatMul | Kind::MatMulT => {
                let a_ty = Type::memref(vec![n, k], elem.clone());
                let b_ty = if self.kind == Kind::MatMul {
                    Type::memref(vec![k, m], elem.clone())
                } else {
                    Type::memref(vec![m, k], elem.clone())
                };
                let c_ty = Type::memref(vec![n, m], elem.clone());
                let (_f, entry) =
                    func::build_func(ctx, top, &self.symbol(), vec![a_ty, b_ty, c_ty], vec![]);
                let a = ctx.block_args(entry)[0];
                let b = ctx.block_args(entry)[1];
                let c = ctx.block_args(entry)[2];
                let zero = arith::constant_float(ctx, entry, 0.0, elem);
                linalg::build_fill(ctx, entry, zero, c);
                // dims: (row, col, k)
                let a_map = AffineMap::projection(3, &[0, 2]);
                let b_map = if self.kind == Kind::MatMul {
                    AffineMap::projection(3, &[2, 1])
                } else {
                    AffineMap::projection(3, &[1, 2])
                };
                let c_map = AffineMap::projection(3, &[0, 1]);
                linalg::build_generic(
                    ctx,
                    entry,
                    vec![a, b],
                    vec![c],
                    vec![a_map, b_map, c_map],
                    vec![IteratorType::Parallel, IteratorType::Parallel, IteratorType::Reduction],
                    None,
                    |ctx, body, args| {
                        let p = arith::binary(ctx, body, arith::MULF, args[0], args[1]);
                        vec![arith::binary(ctx, body, arith::ADDF, p, args[2])]
                    },
                );
                func::build_return(ctx, entry, vec![]);
            }
        }
        module
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlb_core::full_registry;

    #[test]
    fn every_kernel_builds_and_verifies() {
        let registry = full_registry();
        for kind in Kind::all() {
            let shape = match kind {
                Kind::MatMul | Kind::MatMulT => Shape::nmk(2, 4, 8),
                _ => Shape::nm(4, 4),
            };
            let instance = Instance::new(kind, shape, Precision::F64);
            let mut ctx = Context::new();
            let module = instance.build_module(&mut ctx);
            registry.verify(&ctx, module).unwrap_or_else(|e| panic!("{kind}: {e}"));
        }
    }

    #[test]
    fn f32_variants_build() {
        let registry = full_registry();
        for kind in [Kind::Sum, Kind::Relu, Kind::MatMulT] {
            let shape = match kind {
                Kind::MatMulT => Shape::nmk(2, 4, 8),
                _ => Shape::nm(4, 8),
            };
            let instance = Instance::new(kind, shape, Precision::F32);
            let mut ctx = Context::new();
            let module = instance.build_module(&mut ctx);
            registry.verify(&ctx, module).unwrap_or_else(|e| panic!("{kind}: {e}"));
        }
    }
}
