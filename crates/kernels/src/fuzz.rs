//! Seed-driven randomized instance generation for the differential
//! tester, with shrinking.
//!
//! Uses a hand-rolled [`SplitMix64`] generator so a fuzz run is exactly
//! reproducible from its seed alone, independent of any RNG crate.

use std::fmt;

use mlb_core::{Flow, PipelineOptions};

use crate::difftest::difftest_instance;
use crate::graph::{graph_difftest, Layer, LayerGraph};
use crate::suite::{Instance, Kind, Precision, Shape};

/// The splitmix64 generator: tiny, fast, and statistically solid for
/// test-case generation (Steele et al., "Fast splittable pseudorandom
/// number generators").
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value in `[lo, hi]` (inclusive). Modulo bias is irrelevant at
    /// test-generation ranges.
    pub fn in_range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo + 1)
    }

    /// Picks one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.next_u64() as usize % items.len()]
    }
}

/// A minimized fuzz counterexample.
#[derive(Debug)]
pub struct FuzzFailure {
    /// The instance that first failed.
    pub instance: Instance,
    /// The shrunk instance (smallest found that still fails).
    pub shrunk: Instance,
    /// The flow it failed under.
    pub flow: Flow,
    /// The operand seed of the failing run.
    pub seed: u64,
    /// The failure of the shrunk instance.
    pub error: String,
}

impl fmt::Display for FuzzFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fuzz failure: {} under {:?} with operand seed {} (shrunk from {}): {}",
            self.shrunk, self.flow, self.seed, self.instance, self.error
        )
    }
}

/// The flows a fuzz run draws from.
fn flows() -> [Flow; 4] {
    [
        Flow::Ours(PipelineOptions::full()),
        Flow::Ours(PipelineOptions::baseline()),
        Flow::MlirLike,
        Flow::ClangLike,
    ]
}

/// Generates one random instance + flow + operand seed from `rng`.
fn random_case(rng: &mut SplitMix64) -> (Instance, Flow, u64) {
    let kind = *rng.pick(&Kind::all());
    // f32 kernels exercise the packed-SIMD path; keep to the kinds the
    // suite supports at that precision.
    let precision = if matches!(kind, Kind::Sum | Kind::Relu | Kind::MatMulT)
        && rng.next_u64().is_multiple_of(3)
    {
        Precision::F32
    } else {
        Precision::F64
    };
    let n = rng.in_range(1, 6) as i64;
    let m = rng.in_range(1, 8) as i64;
    let shape = match kind {
        Kind::MatMul | Kind::MatMulT => Shape::nmk(n, m, rng.in_range(1, 8) as i64),
        _ => Shape::nm(n, m),
    };
    let flow = *rng.pick(&flows());
    let seed = rng.next_u64();
    (Instance::new(kind, shape, precision), flow, seed)
}

fn check(instance: &Instance, flow: Flow, seed: u64) -> Result<(), String> {
    difftest_instance(instance, flow, seed).map(|_| ()).map_err(|e| e.to_string())
}

/// Candidate evaluations a shrink is allowed to spend. Each evaluation
/// is a full compile-and-interpret differential run, so the budget caps
/// shrinking cost on shapes whose neighbours are expensive to check.
const SHRINK_BUDGET: usize = 64;

/// Shrinks a failing instance: repeatedly halves, then decrements, each
/// shape dimension while the failure persists, evaluating at most
/// `budget` candidates.
fn shrink(instance: Instance, flow: Flow, seed: u64, mut budget: usize) -> (Instance, String) {
    let mut current = instance;
    let mut error = check(&current, flow, seed).expect_err("shrink starts from a failure");
    loop {
        let Shape { n, m, k } = current.shape;
        let mut candidates = Vec::new();
        for (dn, dm, dk) in [
            (n / 2, m, k),
            (n, m / 2, k),
            (n, m, k / 2),
            (n - 1, m, k),
            (n, m - 1, k),
            (n, m, k - 1),
        ] {
            if dn >= 1 && dm >= 1 && (current.shape.k == 0 || dk >= 1) {
                let shape =
                    if current.shape.k == 0 { Shape::nm(dn, dm) } else { Shape::nmk(dn, dm, dk) };
                if shape != current.shape {
                    candidates.push(Instance::new(current.kind, shape, current.precision));
                }
            }
        }
        let mut advanced = false;
        for candidate in candidates {
            if budget == 0 {
                return (current, error);
            }
            budget -= 1;
            if let Err(e) = check(&candidate, flow, seed) {
                current = candidate;
                error = e;
                advanced = true;
                break;
            }
        }
        if !advanced {
            return (current, error);
        }
    }
}

/// The deterministic `(instance, flow, operand seed)` cases a
/// [`fuzz`] run with the same `seed` draws, without executing anything.
/// The engine-equivalence suite replays this exact corpus under both
/// simulator engines.
pub fn fuzz_corpus(seed: u64, count: usize) -> Vec<(Instance, Flow, u64)> {
    let mut rng = SplitMix64::new(seed);
    (0..count).map(|_| random_case(&mut rng)).collect()
}

/// Runs `count` randomized differential tests derived from `seed`.
/// Returns the number of cases run, or the first (shrunk) failure.
///
/// # Errors
///
/// The minimized counterexample, when any generated case fails.
pub fn fuzz(seed: u64, count: usize) -> Result<usize, Box<FuzzFailure>> {
    let mut rng = SplitMix64::new(seed);
    for _ in 0..count {
        let (instance, flow, case_seed) = random_case(&mut rng);
        if let Err(error) = check(&instance, flow, case_seed) {
            let _ = error;
            let (shrunk, error) = shrink(instance, flow, case_seed, SHRINK_BUDGET);
            return Err(Box::new(FuzzFailure { instance, shrunk, flow, seed: case_seed, error }));
        }
    }
    Ok(count)
}

/// Generates one random 2–4 layer chain with small shapes.
fn random_graph(case: usize, rng: &mut SplitMix64) -> LayerGraph {
    let n_layers = rng.in_range(2, 4) as usize;
    let r = *rng.pick(&[2i64, 4]);
    let c = *rng.pick(&[2i64, 4, 8]);
    let layers: Vec<Layer> = (0..n_layers)
        .map(|_| match rng.in_range(0, 2) {
            0 => Layer::Sum,
            1 => Layer::Relu,
            _ => Layer::MatMulT { width: *rng.pick(&[2i64, 4]) },
        })
        .collect();
    LayerGraph::new(format!("fuzz{case}"), (r, c), layers)
        .expect("generated graphs are structurally valid")
}

/// Runs `count` randomized layer-chain differential tests derived from
/// `seed`: each case runs the graph-level difftest both fused and
/// unfused (at a random core count) and checks the two final outputs
/// agree bit-for-bit — fusion only reorders where intermediates live,
/// never the arithmetic.
///
/// # Errors
///
/// A message naming the failing case, its graph, and the divergence.
pub fn fuzz_graphs(seed: u64, count: usize) -> Result<usize, String> {
    let mut rng = SplitMix64::new(seed);
    for case in 0..count {
        let graph = random_graph(case, &mut rng);
        let cores = *rng.pick(&[1usize, 2]);
        let case_seed = rng.next_u64();
        let fused = graph_difftest(&graph, true, cores, case_seed)
            .map_err(|e| format!("case {case} ({graph}, {cores} cores): fused: {e}"))?;
        let unfused = graph_difftest(&graph, false, cores, case_seed)
            .map_err(|e| format!("case {case} ({graph}, {cores} cores): unfused: {e}"))?;
        let a: Vec<u64> = fused.outputs.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = unfused.outputs.iter().map(|v| v.to_bits()).collect();
        if a != b {
            return Err(format!(
                "case {case} ({graph}, {cores} cores): fused and unfused graph outputs \
                 disagree (seed {case_seed})"
            ));
        }
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_fuzz_smoke_is_clean() {
        assert_eq!(fuzz_graphs(0xBEEF, 3).unwrap_or_else(|e| panic!("{e}")), 3);
    }

    #[test]
    fn splitmix_is_deterministic_and_spread() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_eq!(xs.iter().collect::<std::collections::HashSet<_>>().len(), 8);
        let mut c = SplitMix64::new(43);
        assert_ne!(xs[0], c.next_u64());
        for _ in 0..100 {
            let v = c.in_range(1, 6);
            assert!((1..=6).contains(&v));
        }
    }

    #[test]
    fn generated_cases_are_reproducible() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..16 {
            let (ia, fa, sa) = random_case(&mut a);
            let (ib, fb, sb) = random_case(&mut b);
            assert_eq!((ia, fa, sa), (ib, fb, sb));
        }
    }

    #[test]
    fn short_fuzz_run_is_clean() {
        // CI runs the long (>= 50 case) sweep via `mlbc difftest`; this
        // keeps a quick smoke in the unit suite.
        assert_eq!(fuzz(0xC0FFEE, 8).unwrap_or_else(|e| panic!("{e}")), 8);
    }

    #[test]
    fn shrink_minimizes_a_failing_shape() {
        // Shrinking only needs `check` to fail; drive it with an
        // impossible TCDM footprint so every smaller-but-still-large
        // shape keeps failing until the placement fits.
        let huge = Instance::new(Kind::Sum, Shape::nm(4096, 4096), Precision::F64);
        let flow = Flow::Ours(PipelineOptions::full());
        assert!(check(&huge, flow, 1).is_err());
        // A small budget keeps the test fast: the halving chain is all
        // cheap placement failures, and only a couple of the final
        // boundary candidates run a full differential check.
        let (shrunk, error) = shrink(huge, flow, 1, 16);
        assert!(shrunk.shape.n * shrunk.shape.m < 4096 * 4096, "{shrunk} did not shrink");
        assert!(!error.is_empty());
    }
}
