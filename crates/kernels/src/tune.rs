//! Schedule search space for the autotuner (`mlbc tune`).
//!
//! The paper hand-picks one schedule per Table-1 kernel; this module
//! enumerates the space those choices live in — pipeline flow,
//! unroll-and-jam factor, shard dimension and core count — so the
//! service can race the variants on the simulator and report the best
//! one. Everything here is deterministic: the enumeration order is a
//! pure function of the instance and [`TuneParams`], which is what lets
//! tune results be memoized under a content-addressed key and lets a
//! fixed budget reproduce bit-identical reports across worker counts.
//!
//! [`SEARCH_SPACE_VERSION`] is part of that cache key. Bump it whenever
//! the enumeration (or the fitness definition) changes meaning, so
//! stale tune payloads can never be served for a new search space.

use mlb_core::{Flow, PipelineOptions};

use crate::suite::Instance;

/// Version tag of the search-space enumeration, spelled into every tune
/// cache key. Bump on any change to [`enumerate_schedules`] or to the
/// fitness definition.
pub const SEARCH_SPACE_VERSION: u32 = 1;

/// Caller-facing knobs of a tuning run. Both fields are part of the
/// tune cache key: different budgets explore different prefixes of the
/// space and must not alias.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuneParams {
    /// Largest cluster width to consider (widths tried: 1, 2, 4, capped
    /// here). Clamped to at least 1.
    pub cores_max: usize,
    /// Maximum number of schedule variants to evaluate. The enumeration
    /// is truncated to this many entries; the flow defaults always come
    /// first so they survive any sane budget.
    pub budget: usize,
}

impl Default for TuneParams {
    fn default() -> TuneParams {
        TuneParams { cores_max: 4, budget: 24 }
    }
}

/// One point of the search space: a label (stable, human-readable, part
/// of the report) and the fully-specified compilation flow to evaluate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleVariant {
    /// Stable display name, e.g. `ours-c2-s1-u4`.
    pub label: String,
    /// The flow that realises this schedule.
    pub flow: Flow,
}

/// Enumerates the schedule space for `instance`, deterministically.
///
/// The first three variants are the hand-written defaults of the three
/// flows (`ours-default`, `mlir`, `clang`) — putting them first means
/// the tuner's best pick can never be slower than any flow's default,
/// by construction, for every budget ≥ 3. After the defaults come the
/// `ours` variants, ordered by core count, then shard dimension, then
/// unroll choice. The list is truncated to `params.budget` entries.
pub fn enumerate_schedules(instance: &Instance, params: TuneParams) -> Vec<ScheduleVariant> {
    let cores_max = params.cores_max.max(1);
    let default = PipelineOptions::full();
    let mut variants = vec![
        ScheduleVariant { label: "ours-default".to_string(), flow: Flow::Ours(default) },
        ScheduleVariant { label: "mlir".to_string(), flow: Flow::MlirLike },
        ScheduleVariant { label: "clang".to_string(), flow: Flow::ClangLike },
    ];
    for cores in [1usize, 2, 4] {
        if cores > cores_max {
            break;
        }
        // `None` is the pass's automatic shard pick; forcing dims 0 and
        // 1 covers row- vs column-sharding. An unsafe forced dim falls
        // back to the automatic choice inside the pass, so every
        // variant here is sound (at worst redundant).
        let shard_dims: &[Option<usize>] =
            if cores == 1 { &[None] } else { &[None, Some(0), Some(1)] };
        for &shard in shard_dims {
            for unroll in unroll_choices(instance) {
                let mut opts = default;
                opts.cores = cores;
                opts.shard_dim = shard;
                match unroll {
                    Unroll::Off => opts.unroll_and_jam = false,
                    Unroll::Auto => {}
                    Unroll::Factor(f) => opts.unroll_factor = Some(f),
                }
                if Flow::Ours(opts) == variants[0].flow {
                    continue; // the default is already listed first
                }
                let s = shard.map_or_else(|| "a".to_string(), |d| d.to_string());
                let u = match unroll {
                    Unroll::Off => "off".to_string(),
                    Unroll::Auto => "auto".to_string(),
                    Unroll::Factor(f) => f.to_string(),
                };
                variants.push(ScheduleVariant {
                    label: format!("ours-c{cores}-s{s}-u{u}"),
                    flow: Flow::Ours(opts),
                });
            }
        }
    }
    variants.truncate(params.budget.max(1));
    variants
}

/// Unroll-and-jam choice for one variant.
#[derive(Debug, Clone, Copy)]
enum Unroll {
    /// Pass disabled.
    Off,
    /// Pass enabled, factor chosen from the FPU pipeline depth.
    Auto,
    /// Pass enabled with a forced interleave factor.
    Factor(i64),
}

/// The unroll choices worth evaluating for `instance`: off, automatic,
/// and each forced factor in 2..=8 dividing the interleave bound (the
/// last parallel dimension, whose bound is `shape.m`). Kernels without
/// a reduction never unroll, so only off/auto are listed for them
/// (they compile identically; the pair documents that the axis was
/// searched).
fn unroll_choices(instance: &Instance) -> Vec<Unroll> {
    let mut choices = vec![Unroll::Off, Unroll::Auto];
    if instance.kind.has_reduction() {
        let m = instance.shape.m;
        choices.extend((2..=8).filter(|f| m % f == 0).map(Unroll::Factor));
    }
    choices
}

/// Bytes of TCDM the harness allocates for `instance`'s operand
/// buffers: each buffer is rounded up to 8-byte alignment and they are
/// placed back-to-back. Schedule-independent (sharding rebases offsets
/// inside the same buffers), so it is a per-instance axis of the Pareto
/// report, not a per-variant one — but it still varies across the
/// precision/shape points a batch tunes.
pub fn tcdm_footprint(instance: &Instance) -> u64 {
    let elem_bytes = u64::from(instance.precision.bits()) / 8;
    instance.buffer_sizes().iter().map(|&s| (s as u64 * elem_bytes).next_multiple_of(8)).sum()
}

/// One evaluated schedule, as the tuner's fitness harness sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TunePoint {
    /// The variant's label from [`enumerate_schedules`].
    pub label: String,
    /// Fitness: aggregate cluster cycles (max over cores, i.e. the
    /// cluster's critical path) of the simulated run.
    pub cycles: u64,
    /// Cluster width the variant runs on.
    pub cores: usize,
    /// TCDM bytes the run occupies ([`tcdm_footprint`]).
    pub tcdm_bytes: u64,
}

/// The Pareto front of `points` over (cycles, cores, tcdm_bytes), all
/// minimized. A point survives iff no other point is at least as good
/// on every axis and strictly better on one; exact duplicates keep
/// their first occurrence. The front is returned sorted by
/// (cycles, cores, tcdm_bytes, label) so reports are byte-stable
/// regardless of input order.
pub fn pareto_front(points: &[TunePoint]) -> Vec<TunePoint> {
    let dominates = |a: &TunePoint, b: &TunePoint| {
        a.cycles <= b.cycles
            && a.cores <= b.cores
            && a.tcdm_bytes <= b.tcdm_bytes
            && (a.cycles < b.cycles || a.cores < b.cores || a.tcdm_bytes < b.tcdm_bytes)
    };
    let mut front: Vec<TunePoint> = Vec::new();
    for (i, p) in points.iter().enumerate() {
        let dominated = points.iter().enumerate().any(|(j, q)| {
            dominates(q, p)
                || (j < i
                    && q.cycles == p.cycles
                    && q.cores == p.cores
                    && q.tcdm_bytes == p.tcdm_bytes)
        });
        if !dominated {
            front.push(p.clone());
        }
    }
    front.sort_by(|a, b| {
        (a.cycles, a.cores, a.tcdm_bytes, &a.label).cmp(&(
            b.cycles,
            b.cores,
            b.tcdm_bytes,
            &b.label,
        ))
    });
    front
}

/// The single best point: fewest cycles, ties broken by fewer cores,
/// then smaller footprint, then label — a total order, so the winner is
/// unique and reproducible.
pub fn best_point(points: &[TunePoint]) -> Option<&TunePoint> {
    points.iter().min_by(|a, b| {
        (a.cycles, a.cores, a.tcdm_bytes, &a.label).cmp(&(
            b.cycles,
            b.cores,
            b.tcdm_bytes,
            &b.label,
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{Kind, Precision, Shape};

    fn matmul() -> Instance {
        Instance::new(Kind::MatMul, Shape::nmk(8, 16, 16), Precision::F64)
    }

    #[test]
    fn defaults_come_first_and_space_is_deterministic() {
        let params = TuneParams::default();
        let a = enumerate_schedules(&matmul(), params);
        let b = enumerate_schedules(&matmul(), params);
        assert_eq!(a, b);
        assert_eq!(a[0].label, "ours-default");
        assert_eq!(a[0].flow, Flow::Ours(PipelineOptions::full()));
        assert_eq!(a[1].flow, Flow::MlirLike);
        assert_eq!(a[2].flow, Flow::ClangLike);
        assert!(a.len() <= params.budget);
    }

    #[test]
    fn labels_are_unique_and_flows_do_not_alias_the_default() {
        let variants = enumerate_schedules(&matmul(), TuneParams { cores_max: 4, budget: 999 });
        let mut labels: Vec<&str> = variants.iter().map(|v| v.label.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), variants.len(), "duplicate labels");
        let defaults =
            variants.iter().filter(|v| v.flow == Flow::Ours(PipelineOptions::full())).count();
        assert_eq!(defaults, 1, "the default schedule must appear exactly once");
    }

    #[test]
    fn budget_truncates_and_cores_max_caps_widths() {
        let small = enumerate_schedules(&matmul(), TuneParams { cores_max: 4, budget: 5 });
        assert_eq!(small.len(), 5);
        let narrow = enumerate_schedules(&matmul(), TuneParams { cores_max: 2, budget: 999 });
        for v in &narrow {
            if let Flow::Ours(o) = v.flow {
                assert!(o.cores <= 2, "{} exceeds cores_max", v.label);
            }
        }
        let wide = enumerate_schedules(&matmul(), TuneParams { cores_max: 4, budget: 999 });
        assert!(wide.len() > narrow.len());
    }

    #[test]
    fn non_reduction_kernels_skip_forced_unroll_factors() {
        let fill = Instance::new(Kind::Fill, Shape::nm(4, 8), Precision::F64);
        let variants = enumerate_schedules(&fill, TuneParams { cores_max: 1, budget: 999 });
        for v in &variants {
            if let Flow::Ours(o) = v.flow {
                assert_eq!(o.unroll_factor, None, "{} forces a factor on Fill", v.label);
            }
        }
    }

    #[test]
    fn unroll_factors_divide_the_interleave_bound() {
        let variants = enumerate_schedules(&matmul(), TuneParams { cores_max: 1, budget: 999 });
        for v in &variants {
            if let Flow::Ours(o) = v.flow {
                if let Some(f) = o.unroll_factor {
                    assert_eq!(16 % f, 0, "{}: factor {f} does not divide m", v.label);
                }
            }
        }
    }

    #[test]
    fn tcdm_footprint_rounds_buffers_to_8_bytes() {
        // MatMul 2x4x3 f64: buffers 6, 12, 8 elements → 48 + 96 + 64.
        let i = Instance::new(Kind::MatMul, Shape::nmk(2, 4, 3), Precision::F64);
        assert_eq!(tcdm_footprint(&i), 48 + 96 + 64);
        // f32 Fill 3x3: 9 elements · 4 bytes = 36 → rounded to 40.
        let f = Instance::new(Kind::Fill, Shape::nm(3, 3), Precision::F32);
        assert_eq!(tcdm_footprint(&f), 40);
    }

    fn pt(label: &str, cycles: u64, cores: usize, tcdm: u64) -> TunePoint {
        TunePoint { label: label.to_string(), cycles, cores, tcdm_bytes: tcdm }
    }

    #[test]
    fn pareto_front_keeps_exactly_the_nondominated_points() {
        let points = vec![
            pt("fast-wide", 100, 4, 64),
            pt("slow-narrow", 400, 1, 64),
            pt("dominated", 450, 1, 64), // slow-narrow beats it
            pt("mid", 200, 2, 64),
            pt("dup", 200, 2, 64), // exact duplicate of mid — dropped
        ];
        let front = pareto_front(&points);
        let labels: Vec<&str> = front.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, vec!["fast-wide", "mid", "slow-narrow"]);
    }

    #[test]
    fn best_point_breaks_ties_deterministically() {
        let points =
            vec![pt("b", 100, 2, 64), pt("a", 100, 2, 64), pt("c", 100, 1, 64), pt("d", 90, 4, 64)];
        assert_eq!(best_point(&points).unwrap().label, "d");
        let tied = vec![pt("b", 100, 2, 64), pt("a", 100, 2, 64)];
        assert_eq!(best_point(&tied).unwrap().label, "a");
    }
}
