//! The line-delimited JSON protocol of `mlbc serve`.
//!
//! One request per input line, one response per output line, in request
//! order. A request looks like:
//!
//! ```json
//! {"id":1,"job":"simulate","kernel":"matmul","n":2,"m":4,"k":3,
//!  "precision":"f64","flow":"ours","driver":"worklist","seed":7,
//!  "cores":2,"opts":{"preset":"full","frep":false}}
//! ```
//!
//! Only `job`, `kernel`, `n` and `m` are required (`k` too for matrix
//! kernels); everything else defaults to the full single-core pipeline
//! with the worklist driver and seed 0. The response echoes the id,
//! carries the content digest of the job's cache key, says whether the
//! payload was served from cache, and embeds either the payload or the
//! job's error:
//!
//! ```json
//! {"id":1,"digest":"…32 hex…","cache":"miss","ok":true,"result":{…}}
//! {"id":2,"digest":"…32 hex…","cache":"miss","ok":false,"error":"…"}
//! ```

use mlb_core::{Flow, PipelineOptions};
use mlb_kernels::{GraphPreset, Instance, Kind, Precision, Shape};

use crate::job::{driver_name, parse_driver, JobKind, JobRequest};
use crate::json::Json;
use crate::service::JobResponse;

/// The protocol spelling of a kernel (its assembly symbol).
pub fn kind_name(kind: Kind) -> &'static str {
    match kind {
        Kind::Fill => "fill",
        Kind::Sum => "sum",
        Kind::Relu => "relu",
        Kind::Conv3x3 => "conv3x3",
        Kind::MaxPool3x3 => "maxpool3x3",
        Kind::SumPool3x3 => "sumpool3x3",
        Kind::MatMul => "matmul",
        Kind::MatMulT => "matmult",
    }
}

/// Parses the protocol spelling of a kernel.
///
/// # Errors
///
/// Names the unknown kernel.
pub fn parse_kind(name: &str) -> Result<Kind, String> {
    Kind::all()
        .into_iter()
        .find(|&k| kind_name(k) == name)
        .ok_or_else(|| format!("unknown kernel `{name}`"))
}

/// Largest accepted shape dimension. Keeps every size computation the
/// pipeline does on `n`/`m`/`k` (element counts, byte offsets, flop
/// totals — products of up to three dims times 16) far from `i64`
/// overflow; unvalidated `u64 → i64` casts used to wrap huge wire
/// values into *negative* dimensions.
pub const MAX_DIM: u64 = 1 << 20;
/// Largest accepted cluster width (the hardware models 1/2/4; anything
/// beyond this is certainly a protocol error, not a bigger cluster).
pub const MAX_CORES: u64 = 64;
/// Largest accepted forced unroll factor.
pub const MAX_UNROLL: u64 = 64;
/// Largest accepted forced shard dimension (iteration spaces here have
/// at most 4 dimensions).
pub const MAX_SHARD_DIM: u64 = 7;
/// Largest accepted tune budget (variant evaluations per request).
pub const MAX_BUDGET: u64 = 4096;
/// Largest accepted graph batch (requests per batched-inference job).
pub const MAX_BATCH: u64 = 256;

/// The placeholder instance carried by graph requests — the graph's
/// layers, not this instance, determine what is compiled, but
/// [`JobRequest`] always carries one; pinning it keeps graph cache keys
/// injective.
pub fn graph_instance() -> Instance {
    Instance::new(Kind::Fill, Shape::nm(1, 1), Precision::F64)
}

fn get_u64(doc: &Json, key: &str, default: u64) -> Result<u64, String> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => v.as_u64().ok_or_else(|| format!("`{key}` must be a non-negative integer")),
    }
}

/// `get_u64` with an inclusive range check, so out-of-range values are
/// rejected at the protocol boundary instead of wrapping or ballooning
/// deeper in the pipeline.
fn get_range(doc: &Json, key: &str, default: u64, min: u64, max: u64) -> Result<u64, String> {
    let value = get_u64(doc, key, default)?;
    if value < min || value > max {
        return Err(format!("`{key}` must be between {min} and {max}, got {value}"));
    }
    Ok(value)
}

fn get_bool(doc: &Json, key: &str, default: bool) -> Result<bool, String> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => v.as_bool().ok_or_else(|| format!("`{key}` must be a boolean")),
    }
}

fn get_str<'a>(doc: &'a Json, key: &str, default: &'a str) -> Result<&'a str, String> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => v.as_str().ok_or_else(|| format!("`{key}` must be a string")),
    }
}

/// Parses one request line. `default_id` is used when the line carries
/// no explicit `id` (the serve loop passes the line number).
///
/// # Errors
///
/// A description of the first malformed or missing field.
pub fn parse_request(line: &str, default_id: u64) -> Result<JobRequest, String> {
    let doc = Json::parse(line)?;
    let mut kind = JobKind::parse(
        doc.get("job").and_then(Json::as_str).ok_or("`job` is required (a string)")?,
    )?;
    if let JobKind::Tune(params) = &mut kind {
        params.cores_max =
            get_range(&doc, "cores_max", params.cores_max as u64, 1, MAX_CORES)? as usize;
        params.budget = get_range(&doc, "budget", params.budget as u64, 1, MAX_BUDGET)? as usize;
    } else if doc.get("cores_max").is_some() || doc.get("budget").is_some() {
        return Err("`cores_max`/`budget` apply only to tune jobs".to_string());
    }
    if kind == JobKind::Stats {
        // A stats job interrogates the running service; it describes no
        // kernel, so kernel/flow/graph fields are rejected rather than
        // silently dropped. The placeholder instance and pinned
        // flow/driver/seed keep the request's cache key injective even
        // though a stats payload is never cached.
        for key in [
            "kernel",
            "n",
            "m",
            "k",
            "precision",
            "opts",
            "flow",
            "cores",
            "driver",
            "seed",
            "graph",
            "batch",
            "fused",
        ] {
            if doc.get(key).is_some() {
                return Err(format!("stats jobs take only `id`, not `{key}`"));
            }
        }
        return Ok(JobRequest {
            id: get_u64(&doc, "id", default_id)?,
            kind,
            instance: graph_instance(),
            flow: Flow::Ours(PipelineOptions::full()),
            driver: parse_driver("worklist")?,
            seed: 0,
        });
    }
    if let JobKind::Graph(params) = &mut kind {
        let name = get_str(&doc, "graph", GraphPreset::Nsnet2.name())?;
        params.preset =
            GraphPreset::parse(name).ok_or_else(|| format!("unknown graph `{name}`"))?;
        params.batch = get_range(&doc, "batch", 1, 1, MAX_BATCH)? as usize;
        params.fused = get_bool(&doc, "fused", true)?;
        // A graph job compiles its stages from the graph's own layers;
        // kernel fields and pipeline option overrides are meaningless
        // and rejected rather than silently dropped.
        for key in ["kernel", "n", "m", "k", "precision", "opts"] {
            if doc.get(key).is_some() {
                return Err(format!("graph jobs take `graph`/`batch`/`fused`, not `{key}`"));
            }
        }
        if get_str(&doc, "flow", "ours")? != "ours" {
            return Err("graph jobs run only the `ours` flow".to_string());
        }
        let mut opts = PipelineOptions::full();
        opts.cores = get_range(&doc, "cores", 1, 1, MAX_CORES)? as usize;
        return Ok(JobRequest {
            id: get_u64(&doc, "id", default_id)?,
            kind,
            instance: graph_instance(),
            flow: Flow::Ours(opts),
            driver: parse_driver(get_str(&doc, "driver", "worklist")?)?,
            seed: get_u64(&doc, "seed", 0)?,
        });
    } else if ["graph", "batch", "fused"].iter().any(|k| doc.get(k).is_some()) {
        return Err("`graph`/`batch`/`fused` apply only to graph jobs".to_string());
    }
    let kernel = parse_kind(
        doc.get("kernel").and_then(Json::as_str).ok_or("`kernel` is required (a string)")?,
    )?;
    let n = doc.get("n").and_then(Json::as_u64).ok_or("`n` is required (a positive integer)")?;
    let m = doc.get("m").and_then(Json::as_u64).ok_or("`m` is required (a positive integer)")?;
    let k = get_range(&doc, "k", 0, 0, MAX_DIM)?;
    if n == 0 || m == 0 {
        return Err("`n` and `m` must be positive".to_string());
    }
    if n > MAX_DIM || m > MAX_DIM {
        return Err(format!("`n` and `m` must be at most {MAX_DIM}"));
    }
    if matches!(kernel, Kind::MatMul | Kind::MatMulT) && k == 0 {
        return Err("matrix kernels need a positive `k`".to_string());
    }
    let precision = match get_str(&doc, "precision", "f64")? {
        "f64" => Precision::F64,
        "f32" => Precision::F32,
        other => return Err(format!("unknown precision `{other}`")),
    };
    let driver = parse_driver(get_str(&doc, "driver", "worklist")?)?;
    let cores = get_range(&doc, "cores", 1, 1, MAX_CORES)? as usize;
    let flow = match get_str(&doc, "flow", "ours")? {
        "ours" => {
            let mut opts = parse_opts(doc.get("opts"))?;
            opts.cores = cores;
            Flow::Ours(opts)
        }
        name @ ("mlir" | "clang") => {
            if cores > 1 {
                return Err(format!("flow `{name}` has no distribute-to-cores; drop `cores`"));
            }
            if doc.get("opts").is_some() {
                return Err(format!("flow `{name}` takes no `opts`"));
            }
            if name == "mlir" {
                Flow::MlirLike
            } else {
                Flow::ClangLike
            }
        }
        other => return Err(format!("unknown flow `{other}`")),
    };
    Ok(JobRequest {
        id: get_u64(&doc, "id", default_id)?,
        kind,
        instance: Instance::new(kernel, Shape { n: n as i64, m: m as i64, k: k as i64 }, precision),
        flow,
        driver,
        seed: get_u64(&doc, "seed", 0)?,
    })
}

fn parse_opts(opts: Option<&Json>) -> Result<PipelineOptions, String> {
    let Some(doc) = opts else { return Ok(PipelineOptions::full()) };
    if !matches!(doc, Json::Obj(_)) {
        return Err("`opts` must be an object".to_string());
    }
    let mut options = match get_str(doc, "preset", "full")? {
        "full" => PipelineOptions::full(),
        "baseline" => PipelineOptions::baseline(),
        other => return Err(format!("unknown preset `{other}`")),
    };
    options.streams = get_bool(doc, "streams", options.streams)?;
    options.scalar_replacement = get_bool(doc, "scalar_replacement", options.scalar_replacement)?;
    options.frep = get_bool(doc, "frep", options.frep)?;
    options.fuse_fill = get_bool(doc, "fuse_fill", options.fuse_fill)?;
    options.fuse_elementwise = get_bool(doc, "fuse_elementwise", options.fuse_elementwise)?;
    options.unroll_and_jam = get_bool(doc, "unroll_and_jam", options.unroll_and_jam)?;
    options.stream_pattern_opts =
        get_bool(doc, "stream_pattern_opts", options.stream_pattern_opts)?;
    if doc.get("unroll_factor").is_some() {
        options.unroll_factor = Some(get_range(doc, "unroll_factor", 1, 1, MAX_UNROLL)? as i64);
    }
    if doc.get("shard_dim").is_some() {
        options.shard_dim = Some(get_range(doc, "shard_dim", 0, 0, MAX_SHARD_DIM)? as usize);
    }
    Ok(options)
}

/// Serializes a request back to its protocol line (used by the demo
/// batch generator; `parse_request` inverts it).
pub fn request_json(request: &JobRequest) -> Json {
    if request.kind == JobKind::Stats {
        return Json::obj(vec![("id", request.id.into()), ("job", "stats".into())]);
    }
    if let JobKind::Graph(params) = request.kind {
        let mut pairs = vec![
            ("id", request.id.into()),
            ("job", "graph".into()),
            ("graph", params.preset.name().into()),
            ("batch", params.batch.into()),
            ("fused", params.fused.into()),
        ];
        if request.cores() != 1 {
            pairs.push(("cores", request.cores().into()));
        }
        pairs.push(("driver", driver_name(request.driver).into()));
        pairs.push(("seed", request.seed.into()));
        return Json::obj(pairs);
    }
    let mut pairs = vec![
        ("id", request.id.into()),
        ("job", request.kind.name().into()),
        ("kernel", kind_name(request.instance.kind).into()),
        ("n", (request.instance.shape.n as u64).into()),
        ("m", (request.instance.shape.m as u64).into()),
    ];
    if request.instance.shape.k != 0 {
        pairs.push(("k", (request.instance.shape.k as u64).into()));
    }
    pairs.push(("precision", format!("f{}", request.instance.precision.bits()).into()));
    match request.flow {
        Flow::Ours(opts) => {
            pairs.push(("flow", "ours".into()));
            if opts.cores != 1 {
                pairs.push(("cores", opts.cores.into()));
            }
            let full = PipelineOptions::full();
            let mut over: Vec<(&str, Json)> = Vec::new();
            if opts.streams != full.streams {
                over.push(("streams", opts.streams.into()));
            }
            if opts.scalar_replacement != full.scalar_replacement {
                over.push(("scalar_replacement", opts.scalar_replacement.into()));
            }
            if opts.frep != full.frep {
                over.push(("frep", opts.frep.into()));
            }
            if opts.fuse_fill != full.fuse_fill {
                over.push(("fuse_fill", opts.fuse_fill.into()));
            }
            if opts.fuse_elementwise != full.fuse_elementwise {
                over.push(("fuse_elementwise", opts.fuse_elementwise.into()));
            }
            if opts.unroll_and_jam != full.unroll_and_jam {
                over.push(("unroll_and_jam", opts.unroll_and_jam.into()));
            }
            if opts.stream_pattern_opts != full.stream_pattern_opts {
                over.push(("stream_pattern_opts", opts.stream_pattern_opts.into()));
            }
            if let Some(factor) = opts.unroll_factor {
                over.push(("unroll_factor", (factor as u64).into()));
            }
            if let Some(dim) = opts.shard_dim {
                over.push(("shard_dim", dim.into()));
            }
            if !over.is_empty() {
                pairs.push(("opts", Json::obj(over)));
            }
        }
        Flow::MlirLike => pairs.push(("flow", "mlir".into())),
        Flow::ClangLike => pairs.push(("flow", "clang".into())),
    }
    pairs.push(("driver", driver_name(request.driver).into()));
    pairs.push(("seed", request.seed.into()));
    if let JobKind::Tune(params) = request.kind {
        pairs.push(("cores_max", params.cores_max.into()));
        pairs.push(("budget", params.budget.into()));
    }
    Json::obj(pairs)
}

/// Serializes a response to its protocol line. Fully deterministic: no
/// timing or scheduling data beyond the (advisory) cache flag.
pub fn response_json(response: &JobResponse) -> Json {
    let mut pairs = vec![
        ("id", response.id.into()),
        ("digest", response.digest.as_str().into()),
        ("cache", if response.cached { "hit" } else { "miss" }.into()),
    ];
    match &response.payload {
        Ok(result) => {
            pairs.push(("ok", true.into()));
            pairs.push(("result", result.clone()));
        }
        Err(message) => {
            pairs.push(("ok", false.into()));
            pairs.push(("error", message.as_str().into()));
        }
    }
    Json::obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlb_ir::DriverMode;

    #[test]
    fn minimal_request_gets_defaults() {
        let req = parse_request(r#"{"job":"compile","kernel":"sum","n":3,"m":4}"#, 9).unwrap();
        assert_eq!(req.id, 9);
        assert_eq!(req.kind, JobKind::Compile);
        assert_eq!(req.instance.kind, Kind::Sum);
        assert_eq!(req.instance.precision, Precision::F64);
        assert_eq!(req.flow, Flow::Ours(PipelineOptions::full()));
        assert_eq!(req.driver, DriverMode::Worklist);
        assert_eq!(req.seed, 0);
    }

    #[test]
    fn full_request_roundtrips() {
        let mut opts = PipelineOptions::baseline();
        opts.streams = true;
        opts.unroll_factor = Some(4);
        opts.shard_dim = Some(1);
        opts.cores = 4;
        let req = JobRequest {
            id: 17,
            kind: JobKind::Simulate,
            instance: Instance::new(Kind::MatMulT, Shape::nmk(2, 8, 4), Precision::F32),
            flow: Flow::Ours(opts),
            driver: DriverMode::LegacyRewalk,
            seed: 123,
        };
        let line = request_json(&req).to_string();
        let parsed = parse_request(&line, 0).unwrap();
        assert_eq!(parsed, req);
        assert_eq!(parsed.result_key(), req.result_key());
    }

    #[test]
    fn comparison_flows_roundtrip() {
        for flow in [Flow::MlirLike, Flow::ClangLike] {
            let req = JobRequest {
                id: 2,
                kind: JobKind::Difftest,
                instance: Instance::new(Kind::Relu, Shape::nm(3, 3), Precision::F64),
                flow,
                driver: DriverMode::Worklist,
                seed: 5,
            };
            let parsed = parse_request(&request_json(&req).to_string(), 0).unwrap();
            assert_eq!(parsed, req);
        }
    }

    #[test]
    fn tune_request_roundtrips() {
        let req = JobRequest {
            id: 5,
            kind: JobKind::Tune(mlb_kernels::TuneParams { cores_max: 2, budget: 11 }),
            instance: Instance::new(Kind::MatMul, Shape::nmk(8, 16, 16), Precision::F64),
            flow: Flow::Ours(PipelineOptions::full()),
            driver: DriverMode::Worklist,
            seed: 3,
        };
        let line = request_json(&req).to_string();
        let parsed = parse_request(&line, 0).unwrap();
        assert_eq!(parsed, req);
        assert_eq!(parsed.result_key(), req.result_key());
        // Omitted knobs fall back to the defaults.
        let bare =
            parse_request(r#"{"job":"tune","kernel":"matmul","n":8,"m":16,"k":16}"#, 0).unwrap();
        assert_eq!(bare.kind, JobKind::Tune(mlb_kernels::TuneParams::default()));
    }

    #[test]
    fn graph_request_roundtrips() {
        use crate::job::GraphParams;
        let mut opts = PipelineOptions::full();
        opts.cores = 4;
        let req = JobRequest {
            id: 21,
            kind: JobKind::Graph(GraphParams {
                preset: GraphPreset::EltwiseChain,
                batch: 8,
                fused: false,
            }),
            instance: graph_instance(),
            flow: Flow::Ours(opts),
            driver: DriverMode::Worklist,
            seed: 42,
        };
        let line = request_json(&req).to_string();
        let parsed = parse_request(&line, 0).unwrap();
        assert_eq!(parsed, req);
        assert_eq!(parsed.result_key(), req.result_key());
        // A bare graph job defaults to nsnet2, batch 1, fused.
        let bare = parse_request(r#"{"job":"graph"}"#, 3).unwrap();
        assert_eq!(bare.kind, JobKind::Graph(GraphParams::default()));
        assert_eq!(bare.id, 3);
        assert_eq!(bare.instance, graph_instance());
    }

    #[test]
    fn stats_request_roundtrips_and_rejects_kernel_fields() {
        let bare = parse_request(r#"{"job":"stats"}"#, 11).unwrap();
        assert_eq!(bare.kind, JobKind::Stats);
        assert_eq!(bare.id, 11);
        assert_eq!(bare.instance, graph_instance());
        assert_eq!(bare.seed, 0);
        let line = request_json(&bare).to_string();
        let parsed = parse_request(&line, 0).unwrap();
        assert_eq!(parsed, bare);
        for (line, needle) in [
            (r#"{"job":"stats","kernel":"sum"}"#, "not `kernel`"),
            (r#"{"job":"stats","n":4}"#, "not `n`"),
            (r#"{"job":"stats","cores":2}"#, "not `cores`"),
            (r#"{"job":"stats","seed":1}"#, "not `seed`"),
            (r#"{"job":"stats","graph":"nsnet2"}"#, "not `graph`"),
            (r#"{"job":"stats","budget":5}"#, "only to tune"),
        ] {
            let err = parse_request(line, 0).unwrap_err();
            assert!(err.contains(needle), "`{line}`: `{err}` should mention `{needle}`");
        }
    }

    #[test]
    fn fuse_elementwise_opt_parses_and_roundtrips() {
        let req = parse_request(
            r#"{"job":"compile","kernel":"sum","n":3,"m":4,"opts":{"fuse_elementwise":true}}"#,
            0,
        )
        .unwrap();
        let Flow::Ours(opts) = req.flow else { panic!("ours flow expected") };
        assert!(opts.fuse_elementwise);
        let parsed = parse_request(&request_json(&req).to_string(), 0).unwrap();
        assert_eq!(parsed, req);
        assert_ne!(
            req.result_key(),
            parse_request(r#"{"job":"compile","kernel":"sum","n":3,"m":4}"#, 0)
                .unwrap()
                .result_key(),
            "the toggle must be spelled into the cache key"
        );
    }

    #[test]
    fn malformed_graph_requests_are_described() {
        for (line, needle) in [
            (r#"{"job":"graph","graph":"nope"}"#, "unknown graph"),
            (r#"{"job":"graph","batch":0}"#, "`batch`"),
            (r#"{"job":"graph","batch":257}"#, "`batch`"),
            (r#"{"job":"graph","kernel":"sum"}"#, "not `kernel`"),
            (r#"{"job":"graph","n":4}"#, "not `n`"),
            (r#"{"job":"graph","opts":{}}"#, "not `opts`"),
            (r#"{"job":"graph","flow":"mlir"}"#, "only the `ours` flow"),
            (r#"{"job":"graph","fused":"yes"}"#, "`fused`"),
            (r#"{"job":"graph","cores":65}"#, "`cores`"),
            (r#"{"job":"compile","kernel":"sum","n":3,"m":4,"batch":2}"#, "only to graph"),
            (r#"{"job":"simulate","kernel":"sum","n":3,"m":4,"fused":true}"#, "only to graph"),
        ] {
            let err = parse_request(line, 0).unwrap_err();
            assert!(err.contains(needle), "`{line}`: `{err}` should mention `{needle}`");
        }
    }

    #[test]
    fn malformed_requests_are_described() {
        for (line, needle) in [
            ("{", "expected"),
            (r#"{"kernel":"sum","n":3,"m":4}"#, "`job` is required"),
            (r#"{"job":"compile","kernel":"nope","n":3,"m":4}"#, "unknown kernel"),
            (r#"{"job":"compile","kernel":"sum","n":0,"m":4}"#, "positive"),
            (r#"{"job":"compile","kernel":"matmul","n":3,"m":4}"#, "`k`"),
            (r#"{"job":"compile","kernel":"sum","n":3,"m":4,"flow":"mlir","cores":2}"#, "cores"),
            (r#"{"job":"compile","kernel":"sum","n":3,"m":4,"flow":"clang","opts":{}}"#, "opts"),
            (r#"{"job":"compile","kernel":"sum","n":3,"m":4,"precision":"f16"}"#, "precision"),
            (r#"{"job":"compile","kernel":"sum","n":3,"m":4,"driver":"magic"}"#, "driver"),
            (r#"{"job":"warm","kernel":"sum","n":3,"m":4}"#, "job kind"),
            // Range validation: huge dims used to wrap into negative
            // `Shape` fields through `as i64`; now they are protocol
            // errors, as are oversized knobs.
            (r#"{"job":"compile","kernel":"sum","n":3,"m":99999999999999999999}"#, "`m`"),
            (r#"{"job":"compile","kernel":"sum","n":18446744073709551615,"m":4}"#, "`n`"),
            (r#"{"job":"compile","kernel":"sum","n":2097152,"m":4}"#, "at most"),
            (r#"{"job":"compile","kernel":"matmul","n":3,"m":4,"k":2097152}"#, "between"),
            (r#"{"job":"simulate","kernel":"sum","n":3,"m":4,"cores":0}"#, "`cores`"),
            (r#"{"job":"simulate","kernel":"sum","n":3,"m":4,"cores":65}"#, "`cores`"),
            (
                r#"{"job":"compile","kernel":"sum","n":3,"m":4,"opts":{"unroll_factor":0}}"#,
                "`unroll_factor`",
            ),
            (
                r#"{"job":"compile","kernel":"sum","n":3,"m":4,"opts":{"shard_dim":8}}"#,
                "`shard_dim`",
            ),
            (r#"{"job":"tune","kernel":"sum","n":3,"m":4,"cores_max":0}"#, "`cores_max`"),
            (r#"{"job":"tune","kernel":"sum","n":3,"m":4,"budget":5000}"#, "`budget`"),
            (r#"{"job":"compile","kernel":"sum","n":3,"m":4,"budget":5}"#, "only to tune"),
        ] {
            let err = parse_request(line, 0).unwrap_err();
            assert!(err.contains(needle), "`{line}`: `{err}` should mention `{needle}`");
        }
    }

    #[test]
    fn dims_at_the_bound_still_parse() {
        let line = format!(r#"{{"job":"compile","kernel":"sum","n":{MAX_DIM},"m":4}}"#);
        let req = parse_request(&line, 0).unwrap();
        assert_eq!(req.instance.shape.n, MAX_DIM as i64);
        assert!(req.instance.shape.n > 0, "bounded dims can never wrap negative");
    }

    #[test]
    fn response_lines_carry_errors() {
        let ok = JobResponse {
            id: 1,
            digest: "ab".repeat(16),
            cached: true,
            payload: Ok(Json::obj(vec![("x", 1u64.into())])),
        };
        let line = response_json(&ok).to_string();
        let doc = Json::parse(&line).unwrap();
        assert_eq!(doc.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("cache").unwrap().as_str(), Some("hit"));
        assert_eq!(doc.get("result").unwrap().get("x").unwrap().as_u64(), Some(1));

        let err = JobResponse {
            id: 2,
            digest: "cd".repeat(16),
            cached: false,
            payload: Err("boom".into()),
        };
        let doc = Json::parse(&response_json(&err).to_string()).unwrap();
        assert_eq!(doc.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(doc.get("error").unwrap().as_str(), Some("boom"));
        assert!(doc.get("result").is_none());
    }
}
