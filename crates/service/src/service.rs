//! The re-entrant compile service.
//!
//! [`CompileService`] owns a [`WorkerPool`] and two content-addressed
//! LRU caches:
//!
//! * the **artifact cache** maps a [`JobRequest::compile_key`] to the
//!   finished [`Compilation`], so a `simulate` job reuses the assembly a
//!   `compile` job (or an earlier simulate of the same kernel) already
//!   produced, and
//! * the **result cache** maps a [`JobRequest::result_key`] to the
//!   job's JSON payload, so resubmitting a batch is pure lookup.
//!
//! Every job runs on a fresh per-request [`Context`] carrying the
//! request's [`DriverMode`] — nothing in the pipeline is process-global
//! anymore, which is what makes concurrent workers sound. Failures
//! (compile errors, simulation faults, harness mismatches, and even
//! panics) fail only their own job: they are reported in the response
//! and are **never** inserted into either cache, so a transient fault
//! cannot poison future lookups. Payloads contain no wall-clock or
//! scheduling data, so a batch's payload stream is byte-identical no
//! matter how many workers raced over it.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use mlb_core::{compile, Compilation, Flow};
use mlb_ir::Context;
use mlb_kernels::{
    difftest_instance, run_compiled, run_compiled_on_cluster, run_compiled_traced, Profile,
};
use mlb_sim::PerfCounters;

use crate::cache::{CacheStats, LruCache};
use crate::job::{fnv1a128_hex, JobKind, JobRequest};
use crate::json::Json;
use crate::pool::WorkerPool;

/// Sizing knobs of a [`CompileService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Capacity of each cache layer, in entries.
    pub cache_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig { workers: 4, cache_capacity: 256 }
    }
}

/// The answer to one [`JobRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct JobResponse {
    /// The request's `id`, echoed.
    pub id: u64,
    /// Content digest of the request's result key.
    pub digest: String,
    /// Whether the payload came from the result cache. *Not* part of
    /// the determinism contract: concurrent duplicate jobs may all miss
    /// where a sequential run would hit, but their payloads agree.
    pub cached: bool,
    /// The deterministic payload, or the job's error. Errors are never
    /// cached.
    pub payload: Result<Json, String>,
}

impl JobResponse {
    /// The payload (or error) as canonical one-line JSON — the string
    /// the concurrency-equivalence suite compares byte-for-byte.
    pub fn payload_text(&self) -> String {
        match &self.payload {
            Ok(json) => json.to_string(),
            Err(message) => format!("error:{message}"),
        }
    }
}

#[derive(Debug)]
struct Caches {
    artifacts: LruCache<Arc<Compilation>>,
    results: LruCache<Json>,
}

/// A long-lived, re-entrant compile/simulate/difftest/profile service.
#[derive(Debug)]
pub struct CompileService {
    pool: WorkerPool,
    caches: Arc<Mutex<Caches>>,
}

impl CompileService {
    /// Builds a service with `config.workers` threads and empty caches.
    pub fn new(config: ServiceConfig) -> CompileService {
        CompileService {
            pool: WorkerPool::new(config.workers),
            caches: Arc::new(Mutex::new(Caches {
                artifacts: LruCache::new(config.cache_capacity),
                results: LruCache::new(config.cache_capacity),
            })),
        }
    }

    /// The number of worker threads.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Lifetime statistics of the (artifact, result) cache layers.
    pub fn cache_stats(&self) -> (CacheStats, CacheStats) {
        let caches = lock(&self.caches);
        (caches.artifacts.stats(), caches.results.stats())
    }

    /// Runs every request over the worker pool and returns the
    /// responses *in request order*, regardless of completion order.
    pub fn run_batch(&self, requests: &[JobRequest]) -> Vec<JobResponse> {
        let slots: Arc<(Mutex<Vec<Option<JobResponse>>>, Condvar)> =
            Arc::new((Mutex::new(vec![None; requests.len()]), Condvar::new()));
        for (index, &request) in requests.iter().enumerate() {
            let slots = Arc::clone(&slots);
            let caches = Arc::clone(&self.caches);
            self.pool.execute(move || {
                let response = process(request, &caches);
                let (results, signal) = &*slots;
                let mut guard = match results.lock() {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
                guard[index] = Some(response);
                signal.notify_all();
            });
        }
        let (results, signal) = &*slots;
        let mut guard = results.lock().expect("slot writers never panic");
        while guard.iter().any(Option::is_none) {
            guard = signal.wait(guard).expect("slot writers never panic");
        }
        guard.iter_mut().map(|slot| slot.take().expect("all slots filled")).collect()
    }

    /// Convenience for tests and the CLI: a single job, inline.
    pub fn run_one(&self, request: JobRequest) -> JobResponse {
        process(request, &self.caches)
    }
}

fn lock(caches: &Arc<Mutex<Caches>>) -> MutexGuard<'_, Caches> {
    // A worker can only panic *outside* the lock (job bodies run before
    // insertion, and insertion itself doesn't run job code), so a
    // poisoned mutex still guards consistent data; recover it.
    match caches.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn process(request: JobRequest, caches: &Arc<Mutex<Caches>>) -> JobResponse {
    let result_key = request.result_key();
    let digest = fnv1a128_hex(result_key.as_bytes());
    if let Some(payload) = lock(caches).results.get(&result_key) {
        return JobResponse { id: request.id, digest, cached: true, payload: Ok(payload.clone()) };
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| compute(request, caches)));
    let payload = match outcome {
        Ok(Ok(json)) => {
            lock(caches).results.insert(result_key, json.clone());
            Ok(json)
        }
        Ok(Err(message)) => Err(message),
        // `as_ref()` reaches the payload inside the box; a bare `&panic`
        // would coerce the `Box` itself to `&dyn Any` and never downcast.
        Err(panic) => Err(format!("panic: {}", panic_message(panic.as_ref()))),
    };
    JobResponse { id: request.id, digest, cached: false, payload }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

/// Fetches (or compiles and caches) the request's compilation artifact.
fn artifact(request: &JobRequest, caches: &Arc<Mutex<Caches>>) -> Result<Arc<Compilation>, String> {
    let compile_key = request.compile_key();
    if let Some(hit) = lock(caches).artifacts.get(&compile_key) {
        return Ok(Arc::clone(hit));
    }
    // Compile outside the lock: concurrent duplicate misses waste a
    // compile but keep the caches responsive and are idempotent.
    let mut ctx = Context::new();
    ctx.set_driver_mode(request.driver);
    let module = request.instance.build_module(&mut ctx);
    let compilation =
        Arc::new(compile(&mut ctx, module, request.flow).map_err(|e| format!("compile: {e}"))?);
    lock(caches).artifacts.insert(compile_key, Arc::clone(&compilation));
    Ok(compilation)
}

fn compute(request: JobRequest, caches: &Arc<Mutex<Caches>>) -> Result<Json, String> {
    if let Flow::Ours(opts) = request.flow {
        if opts.cores == 0 {
            return Err("cores must be at least 1".to_string());
        }
    }
    match request.kind {
        JobKind::DebugPanic => {
            panic!("debug-panic job {} panicked on purpose", request.id)
        }
        JobKind::Compile => {
            let artifact = artifact(&request, caches)?;
            Ok(compilation_json(&artifact))
        }
        JobKind::Simulate => {
            let artifact = artifact(&request, caches)?;
            let cores = request.cores();
            if cores > 1 {
                let outcome = run_compiled_on_cluster(
                    &request.instance,
                    (*artifact).clone(),
                    request.seed,
                    cores,
                )
                .map_err(|e| format!("cluster run: {e}"))?;
                Ok(Json::obj(vec![
                    ("cores", cores.into()),
                    ("aggregate", counters_json(&outcome.counters.aggregate)),
                    (
                        "per_core_cycles",
                        Json::Arr(
                            outcome.counters.per_core.iter().map(|c| c.cycles.into()).collect(),
                        ),
                    ),
                    ("barriers", outcome.counters.barriers.into()),
                    ("output_digest", output_digest(&outcome.output).into()),
                ]))
            } else {
                let outcome = run_compiled(&request.instance, (*artifact).clone(), request.seed)
                    .map_err(|e| format!("run: {e}"))?;
                Ok(Json::obj(vec![
                    ("cores", 1u64.into()),
                    ("counters", counters_json(&outcome.counters)),
                    ("output_digest", output_digest(&outcome.output).into()),
                ]))
            }
        }
        JobKind::Difftest => {
            let outcome = difftest_instance(&request.instance, request.flow, request.seed)
                .map_err(|e| format!("difftest: {e}"))?;
            Ok(Json::obj(vec![
                ("stages", Json::Arr(outcome.stages.iter().map(|&s| s.into()).collect())),
                ("num_stages", outcome.stages.len().into()),
            ]))
        }
        JobKind::Profile => {
            if request.cores() > 1 {
                return Err("profile jobs run single-core; drop `cores`".to_string());
            }
            let artifact = artifact(&request, caches)?;
            let (outcome, trace) =
                run_compiled_traced(&request.instance, (*artifact).clone(), request.seed)
                    .map_err(|e| format!("run: {e}"))?;
            let profile = Profile::from_trace(&trace, &artifact.source_map);
            Ok(Json::obj(vec![
                ("total_cycles", profile.total_cycles.into()),
                ("unattributed_cycles", profile.unattributed_cycles.into()),
                (
                    "rows",
                    Json::Arr(
                        profile
                            .rows
                            .iter()
                            .map(|(location, row)| {
                                Json::obj(vec![
                                    ("location", location.as_str().into()),
                                    ("cycles", row.cycles.into()),
                                    ("instructions", row.instructions.into()),
                                    ("flops", row.flops.into()),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("cycles", outcome.counters.cycles.into()),
            ]))
        }
    }
}

fn compilation_json(compilation: &Compilation) -> Json {
    Json::obj(vec![
        ("assembly", compilation.assembly.as_str().into()),
        (
            "functions",
            Json::Arr(
                compilation
                    .functions
                    .iter()
                    .map(|(name, stats)| {
                        Json::obj(vec![
                            ("name", name.as_str().into()),
                            ("int_regs", stats.int_used.len().into()),
                            ("fp_regs", stats.fp_used.len().into()),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("passes", Json::Arr(compilation.passes.iter().map(|&p| p.into()).collect())),
        (
            "source_map",
            Json::Arr(compilation.source_map.iter().map(|l| l.to_string().into()).collect()),
        ),
    ])
}

fn counters_json(counters: &PerfCounters) -> Json {
    Json::obj(vec![
        ("cycles", counters.cycles.into()),
        ("instructions", counters.instructions.into()),
        ("flops", counters.flops.into()),
        ("fpu_instrs", counters.fpu_instrs.into()),
        ("fmadd", counters.fmadd.into()),
        ("frep", counters.frep.into()),
        ("ssr_reads", counters.ssr_reads.into()),
        ("ssr_writes", counters.ssr_writes.into()),
        ("fpu_utilization", counters.fpu_utilization().into()),
    ])
}

/// Digest of the verified kernel output (bit patterns, not rounded
/// text), so payloads witness the exact simulation result compactly.
fn output_digest(output: &[f64]) -> String {
    let mut bytes = Vec::with_capacity(output.len() * 8);
    for value in output {
        bytes.extend_from_slice(&value.to_bits().to_le_bytes());
    }
    fnv1a128_hex(&bytes)
}
