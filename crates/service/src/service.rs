//! The re-entrant compile service.
//!
//! [`CompileService`] owns a [`WorkerPool`] and three content-addressed
//! LRU caches:
//!
//! * the **artifact cache** maps a [`JobRequest::compile_key`] to the
//!   finished [`Compilation`], so a `simulate` job reuses the assembly a
//!   `compile` job (or an earlier simulate of the same kernel) already
//!   produced,
//! * the **predecode cache** maps `predecode|` + the artifact's cache
//!   key to the simulator's dense [`ExecProgram`], so the N simulate
//!   leaves of one tune variant predecode once and a warm re-tune
//!   predecodes zero times, and
//! * the **result cache** maps a [`JobRequest::result_key`] to the
//!   job's JSON payload, so resubmitting a batch is pure lookup.
//!
//! Every job runs on a fresh per-request [`Context`] carrying the
//! request's [`DriverMode`] — nothing in the pipeline is process-global
//! anymore, which is what makes concurrent workers sound. Failures
//! (compile errors, simulation faults, harness mismatches, and even
//! panics) fail only their own job: they are reported in the response
//! and are **never** inserted into either cache, so a transient fault
//! cannot poison future lookups. Payloads contain no wall-clock or
//! scheduling data, so a batch's payload stream is byte-identical no
//! matter how many workers raced over it.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use mlb_core::{compile, Compilation, Flow};
use mlb_ir::{parse_module_with_locations, print_op, Context};
use mlb_kernels::{
    best_point, difftest_instance, enumerate_schedules, pareto_front, predecode, run_planned,
    run_predecoded, run_predecoded_on_cluster, run_predecoded_traced, stage_options,
    tcdm_footprint, GraphRunConfig, GraphStage, Profile, ScheduleVariant, TuneParams, TunePoint,
    SEARCH_SPACE_VERSION,
};
use mlb_sim::{ExecProgram, PerfCounters, StallHistogram};

use crate::cache::{CacheStats, LruCache};
use crate::job::{fnv1a128_hex, GraphParams, JobKind, JobRequest};
use crate::json::Json;
use crate::pool::{lock_unpoisoned, wait_unpoisoned, WorkerPool};
use crate::protocol::request_json;

/// Sizing knobs of a [`CompileService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Capacity of each cache layer, in entries.
    pub cache_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig { workers: 4, cache_capacity: 256 }
    }
}

/// The answer to one [`JobRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct JobResponse {
    /// The request's `id`, echoed.
    pub id: u64,
    /// Content digest of the request's result key.
    pub digest: String,
    /// Whether the payload came from the result cache. *Not* part of
    /// the determinism contract: concurrent duplicate jobs may all miss
    /// where a sequential run would hit, but their payloads agree.
    pub cached: bool,
    /// The deterministic payload, or the job's error. Errors are never
    /// cached.
    pub payload: Result<Json, String>,
}

impl JobResponse {
    /// The payload (or error) as canonical one-line JSON — the string
    /// the concurrency-equivalence suite compares byte-for-byte.
    pub fn payload_text(&self) -> String {
        match &self.payload {
            Ok(json) => json.to_string(),
            Err(message) => format!("error:{message}"),
        }
    }
}

#[derive(Debug)]
struct Caches {
    artifacts: LruCache<Arc<Compilation>>,
    execs: LruCache<Arc<ExecProgram>>,
    results: LruCache<Json>,
}

/// A long-lived, re-entrant compile/simulate/difftest/profile service.
#[derive(Debug)]
pub struct CompileService {
    pool: WorkerPool,
    caches: Arc<Mutex<Caches>>,
}

impl CompileService {
    /// Builds a service with `config.workers` threads and empty caches.
    pub fn new(config: ServiceConfig) -> CompileService {
        CompileService {
            pool: WorkerPool::new(config.workers),
            caches: Arc::new(Mutex::new(Caches {
                artifacts: LruCache::new(config.cache_capacity),
                execs: LruCache::new(config.cache_capacity),
                results: LruCache::new(config.cache_capacity),
            })),
        }
    }

    /// The number of worker threads.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Lifetime statistics of the (artifact, predecode, result) cache
    /// layers.
    pub fn cache_stats(&self) -> (CacheStats, CacheStats, CacheStats) {
        let caches = lock(&self.caches);
        (caches.artifacts.stats(), caches.execs.stats(), caches.results.stats())
    }

    /// Runs every request over the worker pool and returns the
    /// responses *in request order*, regardless of completion order.
    ///
    /// Tune requests fan out here, on the calling thread: the plan
    /// phase enumerates each tune's schedule variants, the wave phase
    /// races every direct job and every (deduplicated) tune leaf over
    /// the pool at once, and the reduce phase folds each tune's leaf
    /// payloads into its report. Fanning out outside the workers means
    /// a tune request can never deadlock waiting for pool capacity its
    /// own leaves are consuming.
    pub fn run_batch(&self, requests: &[JobRequest]) -> Vec<JobResponse> {
        enum Plan {
            /// An ordinary job; its slot is filled by the wave.
            Direct,
            /// Pre-answered (a tune or graph report served from cache).
            Ready(JobResponse),
            /// A tune fan-out reduced from leaf slots after the wave.
            Fan(TuneParams, Vec<(ScheduleVariant, JobRequest)>),
            /// A graph fan-out: per-stage compile leaves warm the
            /// artifact and predecode caches in parallel during the
            /// wave; the batched run itself happens in the reduce phase
            /// on the calling thread, where every stage is a cache hit.
            GraphFan,
        }
        let mut plans: Vec<Plan> = Vec::with_capacity(requests.len());
        let mut leaves: Vec<JobRequest> = Vec::new();
        let mut leaf_index: HashMap<String, usize> = HashMap::new();
        for &request in requests {
            match request.kind {
                JobKind::Tune(params) => {
                    let key = request.result_key();
                    if let Some(payload) = lock(&self.caches).results.get(&key) {
                        plans.push(Plan::Ready(JobResponse {
                            id: request.id,
                            digest: fnv1a128_hex(key.as_bytes()),
                            cached: true,
                            payload: Ok(payload.clone()),
                        }));
                        continue;
                    }
                    let pairs = tune_leaves(&request, params);
                    for (_, leaf) in &pairs {
                        if let std::collections::hash_map::Entry::Vacant(slot) =
                            leaf_index.entry(leaf.result_key())
                        {
                            slot.insert(leaves.len());
                            leaves.push(*leaf);
                        }
                    }
                    plans.push(Plan::Fan(params, pairs));
                }
                JobKind::Graph(params) => {
                    let key = request.result_key();
                    if let Some(payload) = lock(&self.caches).results.get(&key) {
                        plans.push(Plan::Ready(JobResponse {
                            id: request.id,
                            digest: fnv1a128_hex(key.as_bytes()),
                            cached: true,
                            payload: Ok(payload.clone()),
                        }));
                        continue;
                    }
                    for leaf in graph_leaves(&request, params) {
                        if let std::collections::hash_map::Entry::Vacant(slot) =
                            leaf_index.entry(leaf.result_key())
                        {
                            slot.insert(leaves.len());
                            leaves.push(leaf);
                        }
                    }
                    plans.push(Plan::GraphFan);
                }
                _ => plans.push(Plan::Direct),
            }
        }

        // The wave: slot `i < requests.len()` belongs to request `i`,
        // slots after that to the deduplicated tune leaves. Pre-answered
        // and fan-out slots start filled (fan-outs with a placeholder
        // the reduce phase overwrites) so the wait below only blocks on
        // real work.
        let total = requests.len() + leaves.len();
        let mut initial: Vec<Option<JobResponse>> = Vec::with_capacity(total);
        for (plan, request) in plans.iter().zip(requests) {
            initial.push(match plan {
                Plan::Direct => None,
                Plan::Ready(response) => Some(response.clone()),
                Plan::Fan(..) | Plan::GraphFan => Some(JobResponse {
                    id: request.id,
                    digest: request.digest(),
                    cached: false,
                    payload: Err("fan-out pending".to_string()),
                }),
            });
        }
        initial.resize(total, None);
        let slots: Arc<(Mutex<Vec<Option<JobResponse>>>, Condvar)> =
            Arc::new((Mutex::new(initial), Condvar::new()));
        let submit = |index: usize, request: JobRequest| {
            let slots = Arc::clone(&slots);
            let caches = Arc::clone(&self.caches);
            self.pool.execute(move || {
                let response = process(request, &caches);
                let (results, signal) = &*slots;
                lock_unpoisoned(results)[index] = Some(response);
                signal.notify_all();
            });
        };
        for (index, (plan, &request)) in plans.iter().zip(requests).enumerate() {
            if matches!(plan, Plan::Direct) {
                submit(index, request);
            }
        }
        for (offset, &leaf) in leaves.iter().enumerate() {
            submit(requests.len() + offset, leaf);
        }
        let (results, signal) = &*slots;
        let mut guard = lock_unpoisoned(results);
        while guard.iter().any(Option::is_none) {
            guard = wait_unpoisoned(signal, guard);
        }
        let filled: Vec<JobResponse> =
            guard.iter_mut().map(|slot| slot.take().expect("all slots filled")).collect();
        drop(guard);

        // Reduce: fold each tune's leaf payloads (fetched by pair index
        // through the dedup map) into its report; everything else is
        // already in its slot.
        plans
            .iter()
            .zip(requests)
            .enumerate()
            .map(|(index, (plan, &request))| match plan {
                Plan::Direct | Plan::Ready(_) => filled[index].clone(),
                // The leaves already warmed every stage artifact, so
                // this recomputation is compile-free; it also memoizes
                // the graph payload under the request's result key.
                Plan::GraphFan => process(request, &self.caches),
                Plan::Fan(params, pairs) => {
                    let payload_of = |pair: usize| {
                        let key = pairs[pair].1.result_key();
                        filled[requests.len() + leaf_index[&key]].payload.clone()
                    };
                    let payload = reduce_tune(&request, *params, pairs, &payload_of, &self.caches);
                    JobResponse { id: request.id, digest: request.digest(), cached: false, payload }
                }
            })
            .collect()
    }

    /// Convenience for tests and the CLI: a single job, inline. Tune
    /// requests fan out sequentially on the calling thread.
    pub fn run_one(&self, request: JobRequest) -> JobResponse {
        if let JobKind::Tune(params) = request.kind {
            let key = request.result_key();
            let digest = fnv1a128_hex(key.as_bytes());
            if let Some(payload) = lock(&self.caches).results.get(&key) {
                return JobResponse {
                    id: request.id,
                    digest,
                    cached: true,
                    payload: Ok(payload.clone()),
                };
            }
            let pairs = tune_leaves(&request, params);
            let payloads: Vec<Result<Json, String>> =
                pairs.iter().map(|(_, leaf)| process(*leaf, &self.caches).payload).collect();
            let payload =
                reduce_tune(&request, params, &pairs, &|pair| payloads[pair].clone(), &self.caches);
            return JobResponse { id: request.id, digest, cached: false, payload };
        }
        process(request, &self.caches)
    }
}

/// The simulate leaf of every schedule variant of `request`'s search
/// space, in enumeration order. Leaves inherit the tune request's
/// instance, driver and seed; their ids are never exposed.
fn tune_leaves(request: &JobRequest, params: TuneParams) -> Vec<(ScheduleVariant, JobRequest)> {
    enumerate_schedules(&request.instance, params)
        .into_iter()
        .map(|variant| {
            let leaf = JobRequest {
                id: 0,
                kind: JobKind::Simulate,
                instance: request.instance,
                flow: variant.flow,
                driver: request.driver,
                seed: request.seed,
            };
            (variant, leaf)
        })
        .collect()
}

/// The per-stage compile leaves of one graph request. Single-layer
/// stages fan out as plain `Compile` jobs of their suite instance, so
/// their artifacts share the cache with ordinary kernel jobs; fused
/// stages fan out as internal `GraphStage` leaves. Planning failures
/// (e.g. a TCDM overflow) yield no leaves — the reduce phase recomputes
/// the plan and reports the error as the graph job's own failure.
fn graph_leaves(request: &JobRequest, params: GraphParams) -> Vec<JobRequest> {
    let graph = params.preset.graph();
    let Ok(plan) = graph.plan(params.fused, false) else { return Vec::new() };
    plan.stages
        .iter()
        .enumerate()
        .map(|(index, stage)| {
            if stage.is_fused() {
                JobRequest { id: 0, kind: JobKind::GraphStage(params, index as u8), ..*request }
            } else {
                JobRequest {
                    id: 0,
                    kind: JobKind::Compile,
                    instance: stage.layers[0].instance(stage.input_shape),
                    flow: Flow::Ours(stage_options(stage, request.cores())),
                    driver: request.driver,
                    seed: 0,
                }
            }
        })
        .collect()
}

/// The artifact-cache key of one *fused* graph stage. Fused stage
/// modules are built from the graph's layers rather than a suite
/// instance, so they get their own key family; the embedded compile
/// key spells the stage's actual pipeline options (fusion on, the
/// request's cluster width) and driver.
fn graph_stage_key(
    params: GraphParams,
    stage_index: usize,
    stage: &GraphStage,
    request: &JobRequest,
) -> String {
    let probe = JobRequest { flow: Flow::Ours(stage_options(stage, request.cores())), ..*request };
    format!(
        "graphstage|graph={}|fused={}|stage={stage_index}|{}",
        params.preset.name(),
        u8::from(params.fused),
        probe.compile_key()
    )
}

/// Fetches (or compiles, predecodes and caches) the artifact and dense
/// execution program of one graph stage.
fn graph_stage_exec(
    params: GraphParams,
    stage_index: usize,
    stage: &GraphStage,
    request: &JobRequest,
    caches: &Arc<Mutex<Caches>>,
) -> Result<(Arc<Compilation>, Arc<ExecProgram>), String> {
    let (key, compiled) = if stage.is_fused() {
        let key = graph_stage_key(params, stage_index, stage, request);
        // Probe with the guard confined to its own statement: an if-let
        // scrutinee's guard would live through the miss branch and
        // self-deadlock on the insert below.
        let hit = lock(caches).artifacts.get(&key).map(Arc::clone);
        let compiled = if let Some(hit) = hit {
            hit
        } else {
            let mut ctx = Context::new();
            ctx.set_driver_mode(request.driver);
            let module = stage.build_module(&mut ctx);
            let flow = Flow::Ours(stage_options(stage, request.cores()));
            let compiled = Arc::new(
                compile(&mut ctx, module, flow)
                    .map_err(|e| format!("stage `{}`: compile: {e}", stage.symbol))?,
            );
            lock(caches).artifacts.insert(key.clone(), Arc::clone(&compiled));
            compiled
        };
        (key, compiled)
    } else {
        let leaf = JobRequest {
            id: 0,
            kind: JobKind::Compile,
            instance: stage.layers[0].instance(stage.input_shape),
            flow: Flow::Ours(stage_options(stage, request.cores())),
            driver: request.driver,
            seed: 0,
        };
        let compiled =
            artifact(&leaf, caches).map_err(|e| format!("stage `{}`: {e}", stage.symbol))?;
        (leaf.compile_key(), compiled)
    };
    let exec = predecoded_exec(&key, &compiled, caches)
        .map_err(|e| format!("stage `{}`: {e}", stage.symbol))?;
    Ok((compiled, exec))
}

/// The fitness read out of a simulate leaf payload: aggregate cluster
/// cycles for multi-core runs (the cluster's critical path), plain
/// cycles for single-core ones.
fn leaf_cycles(payload: &Json, cores: usize) -> Option<u64> {
    if cores > 1 {
        payload.get("aggregate")?.get("cycles")?.as_u64()
    } else {
        payload.get("counters")?.get("cycles")?.as_u64()
    }
}

fn point_json(point: &TunePoint) -> Json {
    Json::obj(vec![
        ("label", point.label.as_str().into()),
        ("cycles", point.cycles.into()),
        ("cores", point.cores.into()),
        ("tcdm_bytes", point.tcdm_bytes.into()),
    ])
}

/// Folds the leaf payloads of one tune fan-out into its report and
/// memoizes it under the tune result key. Deterministic: every field
/// derives from leaf payloads (themselves scheduling-free) through
/// total-order tie-breaks, so worker count and completion order can
/// never change a byte.
fn reduce_tune(
    request: &JobRequest,
    params: TuneParams,
    pairs: &[(ScheduleVariant, JobRequest)],
    payload_of: &dyn Fn(usize) -> Result<Json, String>,
    caches: &Arc<Mutex<Caches>>,
) -> Result<Json, String> {
    let footprint = tcdm_footprint(&request.instance);
    let mut points: Vec<TunePoint> = Vec::new();
    let mut variants: Vec<Json> = Vec::new();
    let mut failed: Vec<Json> = Vec::new();
    for (pair, (variant, leaf)) in pairs.iter().enumerate() {
        match payload_of(pair) {
            Ok(payload) => {
                let cycles = leaf_cycles(&payload, leaf.cores()).ok_or_else(|| {
                    format!("tune: variant `{}` returned no cycle counter", variant.label)
                })?;
                points.push(TunePoint {
                    label: variant.label.clone(),
                    cycles,
                    cores: leaf.cores(),
                    tcdm_bytes: footprint,
                });
                variants.push(Json::obj(vec![
                    ("label", variant.label.as_str().into()),
                    ("cycles", cycles.into()),
                    ("cores", leaf.cores().into()),
                ]));
            }
            Err(message) => failed.push(Json::obj(vec![
                ("label", variant.label.as_str().into()),
                ("error", message.as_str().into()),
            ])),
        }
    }
    let Some(best) = best_point(&points).cloned() else {
        return Err("tune: every schedule variant failed".to_string());
    };
    let best_leaf = pairs
        .iter()
        .find(|(variant, _)| variant.label == best.label)
        .map(|(_, leaf)| *leaf)
        .expect("the best point names an enumerated variant");
    let why = winner_profile(&best_leaf, caches);
    let payload = Json::obj(vec![
        ("space_version", u64::from(SEARCH_SPACE_VERSION).into()),
        ("cores_max", params.cores_max.into()),
        ("budget", params.budget.into()),
        ("evaluated", points.len().into()),
        ("failed", Json::Arr(failed)),
        ("tcdm_bytes", footprint.into()),
        (
            "best",
            Json::obj(vec![
                ("label", best.label.as_str().into()),
                ("cycles", best.cycles.into()),
                ("cores", best.cores.into()),
                // Ready to resubmit as a plain simulate job. The id is
                // a neutral 0 — the payload is shared through the tune
                // cache, so it must not embed any one caller's id.
                ("request", request_json(&JobRequest { id: 0, ..best_leaf })),
            ]),
        ),
        ("pareto", Json::Arr(pareto_front(&points).iter().map(point_json).collect())),
        ("variants", Json::Arr(variants)),
        ("why", why),
    ]);
    lock(caches).results.insert(request.result_key(), payload.clone());
    Ok(payload)
}

/// The per-line stall attribution explaining the winner: a single-core
/// profile of the winning schedule (multi-core winners are profiled at
/// width 1 with automatic sharding — the stall structure of the kernel
/// body, which is what the schedule changes, is per-core). Failures
/// degrade to `null` rather than failing the tune.
fn winner_profile(best_leaf: &JobRequest, caches: &Arc<Mutex<Caches>>) -> Json {
    let flow = match best_leaf.flow {
        Flow::Ours(mut opts) => {
            opts.cores = 1;
            opts.shard_dim = None;
            Flow::Ours(opts)
        }
        other => other,
    };
    let probe = JobRequest { id: 0, kind: JobKind::Profile, flow, ..*best_leaf };
    match process(probe, caches).payload {
        Ok(profile) => profile,
        Err(_) => Json::Null,
    }
}

fn lock(caches: &Arc<Mutex<Caches>>) -> MutexGuard<'_, Caches> {
    // A worker can only panic *outside* the lock (job bodies run before
    // insertion, and insertion itself doesn't run job code), so a
    // poisoned mutex still guards consistent data; recover it.
    lock_unpoisoned(caches)
}

fn process(request: JobRequest, caches: &Arc<Mutex<Caches>>) -> JobResponse {
    let result_key = request.result_key();
    let digest = fnv1a128_hex(result_key.as_bytes());
    if let Some(payload) = lock(caches).results.get(&result_key) {
        return JobResponse { id: request.id, digest, cached: true, payload: Ok(payload.clone()) };
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| compute(request, caches)));
    let payload = match outcome {
        Ok(Ok(json)) => {
            lock(caches).results.insert(result_key, json.clone());
            Ok(json)
        }
        Ok(Err(message)) => Err(message),
        // `as_ref()` reaches the payload inside the box; a bare `&panic`
        // would coerce the `Box` itself to `&dyn Any` and never downcast.
        Err(panic) => Err(format!("panic: {}", panic_message(panic.as_ref()))),
    };
    JobResponse { id: request.id, digest, cached: false, payload }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

/// Fetches (or compiles and caches) the request's compilation artifact.
fn artifact(request: &JobRequest, caches: &Arc<Mutex<Caches>>) -> Result<Arc<Compilation>, String> {
    let compile_key = request.compile_key();
    if let Some(hit) = lock(caches).artifacts.get(&compile_key) {
        return Ok(Arc::clone(hit));
    }
    // Compile outside the lock: concurrent duplicate misses waste a
    // compile but keep the caches responsive and are idempotent.
    let mut ctx = Context::new();
    ctx.set_driver_mode(request.driver);
    let module = request.instance.build_module(&mut ctx);
    let compilation =
        Arc::new(compile(&mut ctx, module, request.flow).map_err(|e| format!("compile: {e}"))?);
    lock(caches).artifacts.insert(compile_key, Arc::clone(&compilation));
    Ok(compilation)
}

/// Fetches (or compiles and caches) a *location-carrying* artifact for
/// profile jobs: the built module is printed and re-parsed with source
/// locations attached, so the profiler can attribute cycles and stalls
/// to `linalg`-level lines instead of `<unknown>`. Cached under its own
/// key — a located compilation's `source_map` differs from the plain
/// one's, and compile payloads embed that map, so the two artifact
/// flavours must never alias a cache slot.
fn located_artifact(
    request: &JobRequest,
    caches: &Arc<Mutex<Caches>>,
) -> Result<Arc<Compilation>, String> {
    let compile_key = format!("withlocs|{}", request.compile_key());
    if let Some(hit) = lock(caches).artifacts.get(&compile_key) {
        return Ok(Arc::clone(hit));
    }
    let source = {
        let mut ctx = Context::new();
        let module = request.instance.build_module(&mut ctx);
        print_op(&ctx, module)
    };
    let label = format!("{}.mlir", request.instance.symbol());
    let mut ctx = Context::new();
    ctx.set_driver_mode(request.driver);
    let module = parse_module_with_locations(&mut ctx, &source, &label)
        .map_err(|e| format!("reparse for profile: {e}"))?;
    let compilation =
        Arc::new(compile(&mut ctx, module, request.flow).map_err(|e| format!("compile: {e}"))?);
    lock(caches).artifacts.insert(compile_key, Arc::clone(&compilation));
    Ok(compilation)
}

/// Fetches (or predecodes and caches) the simulator's dense execution
/// artifact for a compilation. Keyed alongside the compilation —
/// `predecode|` + the artifact's own cache key — so the N simulate
/// leaves of one tune variant predecode once, and a warm re-tune (every
/// artifact already cached) predecodes zero times.
fn predecoded_exec(
    artifact_key: &str,
    artifact: &Compilation,
    caches: &Arc<Mutex<Caches>>,
) -> Result<Arc<ExecProgram>, String> {
    let exec_key = format!("predecode|{artifact_key}");
    if let Some(hit) = lock(caches).execs.get(&exec_key) {
        return Ok(Arc::clone(hit));
    }
    // Predecode outside the lock, mirroring `artifact`: duplicate
    // concurrent misses waste a predecode but stay idempotent.
    let exec = Arc::new(predecode(artifact).map_err(|e| format!("predecode: {e}"))?);
    lock(caches).execs.insert(exec_key, Arc::clone(&exec));
    Ok(exec)
}

fn compute(request: JobRequest, caches: &Arc<Mutex<Caches>>) -> Result<Json, String> {
    if let Flow::Ours(opts) = request.flow {
        if opts.cores == 0 {
            return Err("cores must be at least 1".to_string());
        }
    }
    match request.kind {
        JobKind::DebugPanic => {
            panic!("debug-panic job {} panicked on purpose", request.id)
        }
        // Tune requests are expanded by `run_batch`/`run_one` before any
        // worker sees them; reaching here means a caller bypassed both.
        JobKind::Tune(_) => {
            Err("tune jobs fan out in run_batch/run_one; not directly computable".to_string())
        }
        JobKind::Compile => {
            let artifact = artifact(&request, caches)?;
            Ok(compilation_json(&artifact))
        }
        JobKind::Graph(params) => {
            let graph = params.preset.graph();
            let cfg = GraphRunConfig {
                fused: params.fused,
                batch: params.batch,
                cores: request.cores(),
                seed: request.seed,
                engine: None,
            };
            let double = cfg.batch > 1 && cfg.cores > 1;
            let plan = graph.plan(params.fused, double).map_err(|e| format!("graph plan: {e}"))?;
            let mut execs = Vec::with_capacity(plan.stages.len());
            for (index, stage) in plan.stages.iter().enumerate() {
                let (_, exec) = graph_stage_exec(params, index, stage, &request, caches)?;
                execs.push(exec);
            }
            let refs: Vec<&ExecProgram> = execs.iter().map(Arc::as_ref).collect();
            let outcome = run_planned(&plan, &cfg, &refs).map_err(|e| format!("graph run: {e}"))?;
            let stages = outcome
                .stage_symbols
                .iter()
                .zip(&outcome.stage_cycles)
                .map(|(symbol, &cycles)| {
                    Json::obj(vec![("symbol", symbol.as_str().into()), ("cycles", cycles.into())])
                })
                .collect();
            let flat: Vec<f64> = outcome.outputs.iter().flatten().copied().collect();
            Ok(Json::obj(vec![
                ("graph", params.preset.name().into()),
                ("fused", params.fused.into()),
                ("batch", params.batch.into()),
                ("cores", cfg.cores.into()),
                ("stages", Json::Arr(stages)),
                ("total_cycles", outcome.total_cycles.into()),
                ("cycles_per_request", outcome.cycles_per_request.into()),
                ("double_buffered", outcome.double_buffered.into()),
                ("tcdm_bytes", outcome.tcdm_bytes.into()),
                (
                    "pipeline",
                    Json::obj(vec![
                        ("fill_cycles", outcome.estimate.fill_cycles.into()),
                        ("bottleneck_cycles", outcome.estimate.bottleneck_cycles.into()),
                        ("sequential_cycles", outcome.estimate.sequential_cycles.into()),
                        ("pipelined_cycles", outcome.estimate.pipelined_cycles.into()),
                    ]),
                ),
                ("output_digest", output_digest(&flat).into()),
            ]))
        }
        JobKind::GraphStage(params, stage_index) => {
            let graph = params.preset.graph();
            let plan = graph.plan(params.fused, false).map_err(|e| format!("graph plan: {e}"))?;
            let stage = plan.stages.get(stage_index as usize).ok_or_else(|| {
                format!("graph `{}` has no stage {stage_index}", params.preset.name())
            })?;
            let (compiled, _) =
                graph_stage_exec(params, stage_index as usize, stage, &request, caches)?;
            Ok(compilation_json(&compiled))
        }
        JobKind::Simulate => {
            let artifact = artifact(&request, caches)?;
            let exec = predecoded_exec(&request.compile_key(), &artifact, caches)?;
            let cores = request.cores();
            if cores > 1 {
                let outcome =
                    run_predecoded_on_cluster(&request.instance, &exec, request.seed, cores)
                        .map_err(|e| format!("cluster run: {e}"))?;
                Ok(Json::obj(vec![
                    ("cores", cores.into()),
                    ("aggregate", counters_json(&outcome.counters.aggregate)),
                    (
                        "per_core_cycles",
                        Json::Arr(
                            outcome.counters.per_core.iter().map(|c| c.cycles.into()).collect(),
                        ),
                    ),
                    ("barriers", outcome.counters.barriers.into()),
                    ("output_digest", output_digest(&outcome.output).into()),
                ]))
            } else {
                let outcome = run_predecoded(&request.instance, &exec, request.seed)
                    .map_err(|e| format!("run: {e}"))?;
                Ok(Json::obj(vec![
                    ("cores", 1u64.into()),
                    ("counters", counters_json(&outcome.counters)),
                    ("output_digest", output_digest(&outcome.output).into()),
                ]))
            }
        }
        JobKind::Difftest => {
            let outcome = difftest_instance(&request.instance, request.flow, request.seed)
                .map_err(|e| format!("difftest: {e}"))?;
            Ok(Json::obj(vec![
                ("stages", Json::Arr(outcome.stages.iter().map(|&s| s.into()).collect())),
                ("num_stages", outcome.stages.len().into()),
            ]))
        }
        JobKind::Profile => {
            if request.cores() > 1 {
                return Err("profile jobs run single-core; drop `cores`".to_string());
            }
            let artifact = located_artifact(&request, caches)?;
            let exec =
                predecoded_exec(&format!("withlocs|{}", request.compile_key()), &artifact, caches)?;
            let (outcome, trace) = run_predecoded_traced(&request.instance, &exec, request.seed)
                .map_err(|e| format!("run: {e}"))?;
            let profile = Profile::from_trace(&trace, &artifact.source_map);
            Ok(Json::obj(vec![
                ("total_cycles", profile.total_cycles.into()),
                ("unattributed_cycles", profile.unattributed_cycles.into()),
                (
                    "rows",
                    Json::Arr(
                        profile
                            .rows
                            .iter()
                            .map(|(location, row)| {
                                Json::obj(vec![
                                    ("location", location.as_str().into()),
                                    ("cycles", row.cycles.into()),
                                    ("instructions", row.instructions.into()),
                                    ("flops", row.flops.into()),
                                    ("stalls", stalls_json(&row.stalls)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("cycles", outcome.counters.cycles.into()),
            ]))
        }
    }
}

fn compilation_json(compilation: &Compilation) -> Json {
    Json::obj(vec![
        ("assembly", compilation.assembly.as_str().into()),
        (
            "functions",
            Json::Arr(
                compilation
                    .functions
                    .iter()
                    .map(|(name, stats)| {
                        Json::obj(vec![
                            ("name", name.as_str().into()),
                            ("int_regs", stats.int_used.len().into()),
                            ("fp_regs", stats.fp_used.len().into()),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("passes", Json::Arr(compilation.passes.iter().map(|&p| p.into()).collect())),
        (
            "source_map",
            Json::Arr(compilation.source_map.iter().map(|l| l.to_string().into()).collect()),
        ),
    ])
}

fn stalls_json(stalls: &StallHistogram) -> Json {
    Json::obj(vec![
        ("raw_int", stalls.raw_int.into()),
        ("raw_fp", stalls.raw_fp.into()),
        ("fpu_busy", stalls.fpu_busy.into()),
        ("branch_redirect", stalls.branch_redirect.into()),
        ("ssr_backpressure", stalls.ssr_backpressure.into()),
    ])
}

fn counters_json(counters: &PerfCounters) -> Json {
    Json::obj(vec![
        ("cycles", counters.cycles.into()),
        ("instructions", counters.instructions.into()),
        ("flops", counters.flops.into()),
        ("fpu_instrs", counters.fpu_instrs.into()),
        ("fmadd", counters.fmadd.into()),
        ("frep", counters.frep.into()),
        ("ssr_reads", counters.ssr_reads.into()),
        ("ssr_writes", counters.ssr_writes.into()),
        ("fpu_utilization", counters.fpu_utilization().into()),
    ])
}

/// Digest of the verified kernel output (bit patterns, not rounded
/// text), so payloads witness the exact simulation result compactly.
fn output_digest(output: &[f64]) -> String {
    let mut bytes = Vec::with_capacity(output.len() * 8);
    for value in output {
        bytes.extend_from_slice(&value.to_bits().to_le_bytes());
    }
    fnv1a128_hex(&bytes)
}
