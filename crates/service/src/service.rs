//! The re-entrant compile service.
//!
//! [`CompileService`] owns a [`WorkerPool`] and three content-addressed
//! LRU caches:
//!
//! * the **artifact cache** maps a [`JobRequest::compile_key`] to the
//!   finished [`Compilation`], so a `simulate` job reuses the assembly a
//!   `compile` job (or an earlier simulate of the same kernel) already
//!   produced,
//! * the **predecode cache** maps `predecode|` + the artifact's cache
//!   key to the simulator's dense [`ExecProgram`], so the N simulate
//!   leaves of one tune variant predecode once and a warm re-tune
//!   predecodes zero times, and
//! * the **result cache** maps a [`JobRequest::result_key`] to the
//!   job's JSON payload, so resubmitting a batch is pure lookup.
//!
//! Every job runs on a fresh per-request [`Context`] carrying the
//! request's [`DriverMode`] — nothing in the pipeline is process-global
//! anymore, which is what makes concurrent workers sound. Failures
//! (compile errors, simulation faults, harness mismatches, and even
//! panics) fail only their own job: they are reported in the response
//! and are **never** inserted into either cache, so a transient fault
//! cannot poison future lookups. Payloads contain no wall-clock or
//! scheduling data, so a batch's payload stream is byte-identical no
//! matter how many workers raced over it.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use mlb_core::{compile, Compilation, Flow};
use mlb_ir::{parse_module_with_locations, print_op, Context};
use mlb_kernels::{
    best_point, difftest_instance, enumerate_schedules, pareto_front, predecode, run_planned,
    run_predecoded, run_predecoded_on_cluster, run_predecoded_traced, stage_options,
    tcdm_footprint, GraphRunConfig, GraphStage, Profile, ScheduleVariant, TuneParams, TunePoint,
    SEARCH_SPACE_VERSION,
};
use mlb_sim::{ExecProgram, PerfCounters, StallHistogram};

use crate::cache::{CacheStats, LruCache};
use crate::job::{fnv1a128_hex, GraphParams, JobKind, JobRequest};
use crate::json::Json;
use crate::pool::{current_dequeued_us, current_worker, WorkerPool};
use crate::protocol::request_json;
use crate::sync::{lock_unpoisoned, wait_unpoisoned};
use crate::telemetry::{CacheLayer, JobCtx, JobToken, Phase, Telemetry};

/// Sizing knobs of a [`CompileService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Capacity of each cache layer, in entries.
    pub cache_capacity: usize,
    /// Whether to record telemetry (job lifecycle spans, cache events,
    /// worker busy timelines). Telemetry observes execution but never
    /// touches payloads, so responses are byte-identical either way;
    /// the cost is a short mutex-guarded append per recorded event.
    pub telemetry: bool,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig { workers: 4, cache_capacity: 256, telemetry: true }
    }
}

/// The answer to one [`JobRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct JobResponse {
    /// The request's `id`, echoed.
    pub id: u64,
    /// Content digest of the request's result key.
    pub digest: String,
    /// Whether the payload came from the result cache. *Not* part of
    /// the determinism contract: concurrent duplicate jobs may all miss
    /// where a sequential run would hit, but their payloads agree.
    pub cached: bool,
    /// The deterministic payload, or the job's error. Errors are never
    /// cached.
    pub payload: Result<Json, String>,
}

impl JobResponse {
    /// The payload (or error) as canonical one-line JSON — the string
    /// the concurrency-equivalence suite compares byte-for-byte.
    pub fn payload_text(&self) -> String {
        match &self.payload {
            Ok(json) => json.to_string(),
            Err(message) => format!("error:{message}"),
        }
    }
}

#[derive(Debug)]
struct Caches {
    artifacts: LruCache<Arc<Compilation>>,
    execs: LruCache<Arc<ExecProgram>>,
    results: LruCache<Json>,
}

/// State every job path can reach: the cache layers and the (optional)
/// telemetry recorder. One `Arc` of this is shared between the service
/// handle and every worker closure.
#[derive(Debug)]
struct Shared {
    caches: Mutex<Caches>,
    telemetry: Option<Arc<Telemetry>>,
}

impl Shared {
    fn caches(&self) -> MutexGuard<'_, Caches> {
        // A worker can only panic *outside* the lock (job bodies run
        // before insertion, and insertion itself doesn't run job code),
        // so a poisoned mutex still guards consistent data; recover it.
        lock_unpoisoned(&self.caches)
    }

    /// Records one cache-layer lookup outcome, attributed to the
    /// current thread's worker track. Called exactly once per
    /// `LruCache::get`, so telemetry's event counts reconcile with the
    /// caches' own hit/miss counters.
    fn note_cache(&self, layer: CacheLayer, hit: bool) {
        if let Some(telemetry) = &self.telemetry {
            telemetry.cache_access(layer, hit, current_worker());
        }
    }

    fn stats_snapshot(&self) -> (CacheStats, CacheStats, CacheStats) {
        let caches = self.caches();
        (caches.artifacts.stats(), caches.execs.stats(), caches.results.stats())
    }
}

/// A long-lived, re-entrant compile/simulate/difftest/profile service.
#[derive(Debug)]
pub struct CompileService {
    pool: WorkerPool,
    shared: Arc<Shared>,
}

impl CompileService {
    /// Builds a service with `config.workers` threads and empty caches.
    pub fn new(config: ServiceConfig) -> CompileService {
        let telemetry = config.telemetry.then(|| Arc::new(Telemetry::new(config.workers.max(1))));
        CompileService {
            pool: WorkerPool::with_telemetry(config.workers, telemetry.clone()),
            shared: Arc::new(Shared {
                caches: Mutex::new(Caches {
                    artifacts: LruCache::with_sizer(config.cache_capacity, compilation_bytes),
                    execs: LruCache::with_sizer(config.cache_capacity, exec_bytes),
                    results: LruCache::with_sizer(config.cache_capacity, json_bytes),
                }),
                telemetry,
            }),
        }
    }

    /// The number of worker threads.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// The telemetry recorder, when [`ServiceConfig::telemetry`] is on.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.shared.telemetry.as_deref()
    }

    /// Lifetime statistics of the (artifact, predecode, result) cache
    /// layers.
    pub fn cache_stats(&self) -> (CacheStats, CacheStats, CacheStats) {
        self.shared.stats_snapshot()
    }

    /// Runs every request over the worker pool and returns the
    /// responses *in request order*, regardless of completion order.
    ///
    /// Tune requests fan out here, on the calling thread: the plan
    /// phase enumerates each tune's schedule variants, the wave phase
    /// races every direct job and every (deduplicated) tune leaf over
    /// the pool at once, and the reduce phase folds each tune's leaf
    /// payloads into its report. Fanning out outside the workers means
    /// a tune request can never deadlock waiting for pool capacity its
    /// own leaves are consuming.
    pub fn run_batch(&self, requests: &[JobRequest]) -> Vec<JobResponse> {
        enum Plan {
            /// An ordinary job; its slot is filled by the wave.
            Direct,
            /// Pre-answered (a tune or graph report served from cache).
            Ready(JobResponse),
            /// A tune fan-out reduced from leaf slots after the wave.
            Fan(TuneParams, Vec<(ScheduleVariant, JobRequest)>),
            /// A graph fan-out: per-stage compile leaves warm the
            /// artifact and predecode caches in parallel during the
            /// wave; the batched run itself happens in the reduce phase
            /// on the calling thread, where every stage is a cache hit.
            GraphFan,
        }
        let telemetry = self.shared.telemetry.as_deref();
        let tokens: Vec<Option<JobToken>> = requests
            .iter()
            .map(|request| telemetry.map(|t| t.job_submitted(request.id, request.kind.name())))
            .collect();
        let mut plans: Vec<Plan> = Vec::with_capacity(requests.len());
        let mut leaves: Vec<JobRequest> = Vec::new();
        let mut leaf_tokens: Vec<Option<JobToken>> = Vec::new();
        let mut leaf_index: HashMap<String, usize> = HashMap::new();
        for (&request, &token) in requests.iter().zip(&tokens) {
            match request.kind {
                JobKind::Tune(params) => {
                    let key = request.result_key();
                    let hit = self.shared.caches().results.get(&key).cloned();
                    self.shared.note_cache(CacheLayer::Result, hit.is_some());
                    if let Some(payload) = hit {
                        finish(telemetry, token, true, true);
                        plans.push(Plan::Ready(JobResponse {
                            id: request.id,
                            digest: fnv1a128_hex(key.as_bytes()),
                            cached: true,
                            payload: Ok(payload),
                        }));
                        continue;
                    }
                    // Fan-out parents live on the calling thread from
                    // planning through reduction; their exec span opens
                    // here so the expand/reduce phases nest inside it.
                    start(telemetry, token);
                    let job_ctx = ctx_for(telemetry, token);
                    let pairs = {
                        let _expand = job_ctx.phase(Phase::Expand);
                        tune_leaves(&request, params)
                    };
                    for (_, leaf) in &pairs {
                        if let std::collections::hash_map::Entry::Vacant(slot) =
                            leaf_index.entry(leaf.result_key())
                        {
                            slot.insert(leaves.len());
                            leaf_tokens
                                .push(telemetry.map(|t| t.job_submitted(0, leaf.kind.name())));
                            leaves.push(*leaf);
                        }
                    }
                    plans.push(Plan::Fan(params, pairs));
                }
                JobKind::Graph(params) => {
                    let key = request.result_key();
                    let hit = self.shared.caches().results.get(&key).cloned();
                    self.shared.note_cache(CacheLayer::Result, hit.is_some());
                    if let Some(payload) = hit {
                        finish(telemetry, token, true, true);
                        plans.push(Plan::Ready(JobResponse {
                            id: request.id,
                            digest: fnv1a128_hex(key.as_bytes()),
                            cached: true,
                            payload: Ok(payload),
                        }));
                        continue;
                    }
                    start(telemetry, token);
                    let job_ctx = ctx_for(telemetry, token);
                    let stage_leaves = {
                        let _expand = job_ctx.phase(Phase::Expand);
                        graph_leaves(&request, params)
                    };
                    for leaf in stage_leaves {
                        if let std::collections::hash_map::Entry::Vacant(slot) =
                            leaf_index.entry(leaf.result_key())
                        {
                            slot.insert(leaves.len());
                            leaf_tokens
                                .push(telemetry.map(|t| t.job_submitted(0, leaf.kind.name())));
                            leaves.push(leaf);
                        }
                    }
                    plans.push(Plan::GraphFan);
                }
                _ => plans.push(Plan::Direct),
            }
        }

        // The wave: slot `i < requests.len()` belongs to request `i`,
        // slots after that to the deduplicated tune leaves. Pre-answered
        // and fan-out slots start filled (fan-outs with a placeholder
        // the reduce phase overwrites) so the wait below only blocks on
        // real work.
        let total = requests.len() + leaves.len();
        let mut initial: Vec<Option<JobResponse>> = Vec::with_capacity(total);
        for (plan, request) in plans.iter().zip(requests) {
            initial.push(match plan {
                Plan::Direct => None,
                Plan::Ready(response) => Some(response.clone()),
                Plan::Fan(..) | Plan::GraphFan => Some(JobResponse {
                    id: request.id,
                    digest: request.digest(),
                    cached: false,
                    payload: Err("fan-out pending".to_string()),
                }),
            });
        }
        initial.resize(total, None);
        let slots: Arc<(Mutex<Vec<Option<JobResponse>>>, Condvar)> =
            Arc::new((Mutex::new(initial), Condvar::new()));
        let submit = |index: usize, request: JobRequest, token: Option<JobToken>| {
            let slots = Arc::clone(&slots);
            let shared = Arc::clone(&self.shared);
            self.pool.execute(move || {
                let response = process_job(request, &shared, token);
                let (results, signal) = &*slots;
                lock_unpoisoned(results)[index] = Some(response);
                signal.notify_all();
            });
        };
        for (index, (plan, &request)) in plans.iter().zip(requests).enumerate() {
            if matches!(plan, Plan::Direct) {
                submit(index, request, tokens[index]);
            }
        }
        for (offset, &leaf) in leaves.iter().enumerate() {
            submit(requests.len() + offset, leaf, leaf_tokens[offset]);
        }
        let (results, signal) = &*slots;
        let mut guard = lock_unpoisoned(results);
        while guard.iter().any(Option::is_none) {
            guard = wait_unpoisoned(signal, guard);
        }
        let filled: Vec<JobResponse> =
            guard.iter_mut().map(|slot| slot.take().expect("all slots filled")).collect();
        drop(guard);

        // Reduce: fold each tune's leaf payloads (fetched by pair index
        // through the dedup map) into its report; everything else is
        // already in its slot.
        plans
            .iter()
            .zip(requests)
            .enumerate()
            .map(|(index, (plan, &request))| match plan {
                Plan::Direct | Plan::Ready(_) => filled[index].clone(),
                // The leaves already warmed every stage artifact, so
                // this recomputation is compile-free; it also memoizes
                // the graph payload under the request's result key.
                Plan::GraphFan => process_job(request, &self.shared, tokens[index]),
                Plan::Fan(params, pairs) => {
                    let payload_of = |pair: usize| {
                        let key = pairs[pair].1.result_key();
                        filled[requests.len() + leaf_index[&key]].payload.clone()
                    };
                    let job_ctx = ctx_for(telemetry, tokens[index]);
                    let payload = {
                        let _reduce = job_ctx.phase(Phase::Reduce);
                        reduce_tune(&request, *params, pairs, &payload_of, &self.shared)
                    };
                    finish(telemetry, tokens[index], false, payload.is_ok());
                    JobResponse { id: request.id, digest: request.digest(), cached: false, payload }
                }
            })
            .collect()
    }

    /// Convenience for tests and the CLI: a single job, inline. Tune
    /// requests fan out sequentially on the calling thread.
    pub fn run_one(&self, request: JobRequest) -> JobResponse {
        let telemetry = self.shared.telemetry.as_deref();
        let token = telemetry.map(|t| t.job_submitted(request.id, request.kind.name()));
        if let JobKind::Tune(params) = request.kind {
            let key = request.result_key();
            let digest = fnv1a128_hex(key.as_bytes());
            let hit = self.shared.caches().results.get(&key).cloned();
            self.shared.note_cache(CacheLayer::Result, hit.is_some());
            if let Some(payload) = hit {
                finish(telemetry, token, true, true);
                return JobResponse { id: request.id, digest, cached: true, payload: Ok(payload) };
            }
            start(telemetry, token);
            let job_ctx = ctx_for(telemetry, token);
            let pairs = {
                let _expand = job_ctx.phase(Phase::Expand);
                tune_leaves(&request, params)
            };
            let payloads: Vec<Result<Json, String>> = pairs
                .iter()
                .map(|(_, leaf)| {
                    let leaf_token = telemetry.map(|t| t.job_submitted(0, leaf.kind.name()));
                    process_job(*leaf, &self.shared, leaf_token).payload
                })
                .collect();
            let payload = {
                let _reduce = job_ctx.phase(Phase::Reduce);
                reduce_tune(&request, params, &pairs, &|pair| payloads[pair].clone(), &self.shared)
            };
            finish(telemetry, token, false, payload.is_ok());
            return JobResponse { id: request.id, digest, cached: false, payload };
        }
        process_job(request, &self.shared, token)
    }
}

/// The [`JobCtx`] for a (possibly absent) recorder/token pair.
fn ctx_for<'a>(telemetry: Option<&'a Telemetry>, token: Option<JobToken>) -> JobCtx<'a> {
    match (telemetry, token) {
        (Some(telemetry), Some(token)) => JobCtx::new(telemetry, token),
        _ => JobCtx::disabled(),
    }
}

/// Opens a job's exec span on the current thread (no-op without a
/// recorder). Idempotent: the first call wins, so a fan-out parent
/// started at planning time is not restarted by its reduce-phase run.
fn start(telemetry: Option<&Telemetry>, token: Option<JobToken>) {
    if let (Some(telemetry), Some(token)) = (telemetry, token) {
        telemetry.job_started(token, current_worker());
    }
}

/// Closes a job's lifecycle (no-op without a recorder). When the job
/// ran on a pool worker, this also stamps the worker's busy span
/// (dequeue → now) — it must happen here, on the worker, before the
/// job's completion is signalled: a caller woken by that signal may
/// snapshot telemetry immediately, and the span has to already be in it.
fn finish(telemetry: Option<&Telemetry>, token: Option<JobToken>, cached: bool, ok: bool) {
    if let (Some(telemetry), Some(token)) = (telemetry, token) {
        telemetry.job_finished(token, cached, ok);
        if let (Some(worker), Some(dequeued_us)) = (current_worker(), current_dequeued_us()) {
            telemetry.worker_busy_span(worker, dequeued_us, telemetry.now_us());
        }
    }
}

/// The simulate leaf of every schedule variant of `request`'s search
/// space, in enumeration order. Leaves inherit the tune request's
/// instance, driver and seed; their ids are never exposed.
fn tune_leaves(request: &JobRequest, params: TuneParams) -> Vec<(ScheduleVariant, JobRequest)> {
    enumerate_schedules(&request.instance, params)
        .into_iter()
        .map(|variant| {
            let leaf = JobRequest {
                id: 0,
                kind: JobKind::Simulate,
                instance: request.instance,
                flow: variant.flow,
                driver: request.driver,
                seed: request.seed,
            };
            (variant, leaf)
        })
        .collect()
}

/// The per-stage compile leaves of one graph request. Single-layer
/// stages fan out as plain `Compile` jobs of their suite instance, so
/// their artifacts share the cache with ordinary kernel jobs; fused
/// stages fan out as internal `GraphStage` leaves. Planning failures
/// (e.g. a TCDM overflow) yield no leaves — the reduce phase recomputes
/// the plan and reports the error as the graph job's own failure.
fn graph_leaves(request: &JobRequest, params: GraphParams) -> Vec<JobRequest> {
    let graph = params.preset.graph();
    let Ok(plan) = graph.plan(params.fused, false) else { return Vec::new() };
    plan.stages
        .iter()
        .enumerate()
        .map(|(index, stage)| {
            if stage.is_fused() {
                JobRequest { id: 0, kind: JobKind::GraphStage(params, index as u8), ..*request }
            } else {
                JobRequest {
                    id: 0,
                    kind: JobKind::Compile,
                    instance: stage.layers[0].instance(stage.input_shape),
                    flow: Flow::Ours(stage_options(stage, request.cores())),
                    driver: request.driver,
                    seed: 0,
                }
            }
        })
        .collect()
}

/// The artifact-cache key of one *fused* graph stage. Fused stage
/// modules are built from the graph's layers rather than a suite
/// instance, so they get their own key family; the embedded compile
/// key spells the stage's actual pipeline options (fusion on, the
/// request's cluster width) and driver.
fn graph_stage_key(
    params: GraphParams,
    stage_index: usize,
    stage: &GraphStage,
    request: &JobRequest,
) -> String {
    let probe = JobRequest { flow: Flow::Ours(stage_options(stage, request.cores())), ..*request };
    format!(
        "graphstage|graph={}|fused={}|stage={stage_index}|{}",
        params.preset.name(),
        u8::from(params.fused),
        probe.compile_key()
    )
}

/// Fetches (or compiles, predecodes and caches) the artifact and dense
/// execution program of one graph stage.
fn graph_stage_exec(
    params: GraphParams,
    stage_index: usize,
    stage: &GraphStage,
    request: &JobRequest,
    shared: &Shared,
    job_ctx: JobCtx<'_>,
) -> Result<(Arc<Compilation>, Arc<ExecProgram>), String> {
    let (key, compiled) = if stage.is_fused() {
        let key = graph_stage_key(params, stage_index, stage, request);
        // Probe with the guard confined to its own statement: an if-let
        // scrutinee's guard would live through the miss branch and
        // self-deadlock on the insert below.
        let hit = shared.caches().artifacts.get(&key).map(Arc::clone);
        shared.note_cache(CacheLayer::Artifact, hit.is_some());
        let compiled = if let Some(hit) = hit {
            hit
        } else {
            let _compile = job_ctx.phase(Phase::Compile);
            let mut ctx = Context::new();
            ctx.set_driver_mode(request.driver);
            let module = stage.build_module(&mut ctx);
            let flow = Flow::Ours(stage_options(stage, request.cores()));
            let compiled = Arc::new(
                compile(&mut ctx, module, flow)
                    .map_err(|e| format!("stage `{}`: compile: {e}", stage.symbol))?,
            );
            shared.caches().artifacts.insert(key.clone(), Arc::clone(&compiled));
            compiled
        };
        (key, compiled)
    } else {
        let leaf = JobRequest {
            id: 0,
            kind: JobKind::Compile,
            instance: stage.layers[0].instance(stage.input_shape),
            flow: Flow::Ours(stage_options(stage, request.cores())),
            driver: request.driver,
            seed: 0,
        };
        let compiled = artifact(&leaf, shared, job_ctx)
            .map_err(|e| format!("stage `{}`: {e}", stage.symbol))?;
        (leaf.compile_key(), compiled)
    };
    let exec = predecoded_exec(&key, &compiled, shared, job_ctx)
        .map_err(|e| format!("stage `{}`: {e}", stage.symbol))?;
    Ok((compiled, exec))
}

/// The fitness read out of a simulate leaf payload: aggregate cluster
/// cycles for multi-core runs (the cluster's critical path), plain
/// cycles for single-core ones.
fn leaf_cycles(payload: &Json, cores: usize) -> Option<u64> {
    if cores > 1 {
        payload.get("aggregate")?.get("cycles")?.as_u64()
    } else {
        payload.get("counters")?.get("cycles")?.as_u64()
    }
}

fn point_json(point: &TunePoint) -> Json {
    Json::obj(vec![
        ("label", point.label.as_str().into()),
        ("cycles", point.cycles.into()),
        ("cores", point.cores.into()),
        ("tcdm_bytes", point.tcdm_bytes.into()),
    ])
}

/// Folds the leaf payloads of one tune fan-out into its report and
/// memoizes it under the tune result key. Deterministic: every field
/// derives from leaf payloads (themselves scheduling-free) through
/// total-order tie-breaks, so worker count and completion order can
/// never change a byte.
fn reduce_tune(
    request: &JobRequest,
    params: TuneParams,
    pairs: &[(ScheduleVariant, JobRequest)],
    payload_of: &dyn Fn(usize) -> Result<Json, String>,
    shared: &Shared,
) -> Result<Json, String> {
    let footprint = tcdm_footprint(&request.instance);
    let mut points: Vec<TunePoint> = Vec::new();
    let mut variants: Vec<Json> = Vec::new();
    let mut failed: Vec<Json> = Vec::new();
    for (pair, (variant, leaf)) in pairs.iter().enumerate() {
        match payload_of(pair) {
            Ok(payload) => {
                let cycles = leaf_cycles(&payload, leaf.cores()).ok_or_else(|| {
                    format!("tune: variant `{}` returned no cycle counter", variant.label)
                })?;
                points.push(TunePoint {
                    label: variant.label.clone(),
                    cycles,
                    cores: leaf.cores(),
                    tcdm_bytes: footprint,
                });
                variants.push(Json::obj(vec![
                    ("label", variant.label.as_str().into()),
                    ("cycles", cycles.into()),
                    ("cores", leaf.cores().into()),
                ]));
            }
            Err(message) => failed.push(Json::obj(vec![
                ("label", variant.label.as_str().into()),
                ("error", message.as_str().into()),
            ])),
        }
    }
    let Some(best) = best_point(&points).cloned() else {
        return Err("tune: every schedule variant failed".to_string());
    };
    let best_leaf = pairs
        .iter()
        .find(|(variant, _)| variant.label == best.label)
        .map(|(_, leaf)| *leaf)
        .expect("the best point names an enumerated variant");
    let why = winner_profile(&best_leaf, shared);
    let payload = Json::obj(vec![
        ("space_version", u64::from(SEARCH_SPACE_VERSION).into()),
        ("cores_max", params.cores_max.into()),
        ("budget", params.budget.into()),
        ("evaluated", points.len().into()),
        ("failed", Json::Arr(failed)),
        ("tcdm_bytes", footprint.into()),
        (
            "best",
            Json::obj(vec![
                ("label", best.label.as_str().into()),
                ("cycles", best.cycles.into()),
                ("cores", best.cores.into()),
                // Ready to resubmit as a plain simulate job. The id is
                // a neutral 0 — the payload is shared through the tune
                // cache, so it must not embed any one caller's id.
                ("request", request_json(&JobRequest { id: 0, ..best_leaf })),
            ]),
        ),
        ("pareto", Json::Arr(pareto_front(&points).iter().map(point_json).collect())),
        ("variants", Json::Arr(variants)),
        ("why", why),
    ]);
    shared.caches().results.insert(request.result_key(), payload.clone());
    Ok(payload)
}

/// The per-line stall attribution explaining the winner: a single-core
/// profile of the winning schedule (multi-core winners are profiled at
/// width 1 with automatic sharding — the stall structure of the kernel
/// body, which is what the schedule changes, is per-core). Failures
/// degrade to `null` rather than failing the tune.
fn winner_profile(best_leaf: &JobRequest, shared: &Shared) -> Json {
    let flow = match best_leaf.flow {
        Flow::Ours(mut opts) => {
            opts.cores = 1;
            opts.shard_dim = None;
            Flow::Ours(opts)
        }
        other => other,
    };
    let probe = JobRequest { id: 0, kind: JobKind::Profile, flow, ..*best_leaf };
    match process_job(probe, shared, None).payload {
        Ok(profile) => profile,
        Err(_) => Json::Null,
    }
}

fn process_job(request: JobRequest, shared: &Shared, token: Option<JobToken>) -> JobResponse {
    let telemetry = shared.telemetry.as_deref();
    start(telemetry, token);
    let job_ctx = ctx_for(telemetry, token);
    let result_key = request.result_key();
    let digest = fnv1a128_hex(result_key.as_bytes());
    // A stats payload describes the service's current moment, not a
    // computation; caching one would freeze it, so stats jobs bypass
    // the result layer in both directions.
    let cacheable = !matches!(request.kind, JobKind::Stats);
    if cacheable {
        let hit = shared.caches().results.get(&result_key).cloned();
        shared.note_cache(CacheLayer::Result, hit.is_some());
        if let Some(payload) = hit {
            finish(telemetry, token, true, true);
            return JobResponse { id: request.id, digest, cached: true, payload: Ok(payload) };
        }
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| compute(request, shared, job_ctx)));
    let payload = match outcome {
        Ok(Ok(json)) => {
            if cacheable {
                shared.caches().results.insert(result_key, json.clone());
            }
            Ok(json)
        }
        Ok(Err(message)) => Err(message),
        // `as_ref()` reaches the payload inside the box; a bare `&panic`
        // would coerce the `Box` itself to `&dyn Any` and never downcast.
        Err(panic) => Err(format!("panic: {}", panic_message(panic.as_ref()))),
    };
    finish(telemetry, token, false, payload.is_ok());
    JobResponse { id: request.id, digest, cached: false, payload }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

/// Fetches (or compiles and caches) the request's compilation artifact.
fn artifact(
    request: &JobRequest,
    shared: &Shared,
    job_ctx: JobCtx<'_>,
) -> Result<Arc<Compilation>, String> {
    let compile_key = request.compile_key();
    let hit = shared.caches().artifacts.get(&compile_key).map(Arc::clone);
    shared.note_cache(CacheLayer::Artifact, hit.is_some());
    if let Some(hit) = hit {
        return Ok(hit);
    }
    // Compile outside the lock: concurrent duplicate misses waste a
    // compile but keep the caches responsive and are idempotent.
    let _compile = job_ctx.phase(Phase::Compile);
    let mut ctx = Context::new();
    ctx.set_driver_mode(request.driver);
    let module = request.instance.build_module(&mut ctx);
    let compilation =
        Arc::new(compile(&mut ctx, module, request.flow).map_err(|e| format!("compile: {e}"))?);
    shared.caches().artifacts.insert(compile_key, Arc::clone(&compilation));
    Ok(compilation)
}

/// Fetches (or compiles and caches) a *location-carrying* artifact for
/// profile jobs: the built module is printed and re-parsed with source
/// locations attached, so the profiler can attribute cycles and stalls
/// to `linalg`-level lines instead of `<unknown>`. Cached under its own
/// key — a located compilation's `source_map` differs from the plain
/// one's, and compile payloads embed that map, so the two artifact
/// flavours must never alias a cache slot.
fn located_artifact(
    request: &JobRequest,
    shared: &Shared,
    job_ctx: JobCtx<'_>,
) -> Result<Arc<Compilation>, String> {
    let compile_key = format!("withlocs|{}", request.compile_key());
    let hit = shared.caches().artifacts.get(&compile_key).map(Arc::clone);
    shared.note_cache(CacheLayer::Artifact, hit.is_some());
    if let Some(hit) = hit {
        return Ok(hit);
    }
    let _compile = job_ctx.phase(Phase::Compile);
    let source = {
        let mut ctx = Context::new();
        let module = request.instance.build_module(&mut ctx);
        print_op(&ctx, module)
    };
    let label = format!("{}.mlir", request.instance.symbol());
    let mut ctx = Context::new();
    ctx.set_driver_mode(request.driver);
    let module = parse_module_with_locations(&mut ctx, &source, &label)
        .map_err(|e| format!("reparse for profile: {e}"))?;
    let compilation =
        Arc::new(compile(&mut ctx, module, request.flow).map_err(|e| format!("compile: {e}"))?);
    shared.caches().artifacts.insert(compile_key, Arc::clone(&compilation));
    Ok(compilation)
}

/// Fetches (or predecodes and caches) the simulator's dense execution
/// artifact for a compilation. Keyed alongside the compilation —
/// `predecode|` + the artifact's own cache key — so the N simulate
/// leaves of one tune variant predecode once, and a warm re-tune (every
/// artifact already cached) predecodes zero times.
fn predecoded_exec(
    artifact_key: &str,
    artifact: &Compilation,
    shared: &Shared,
    job_ctx: JobCtx<'_>,
) -> Result<Arc<ExecProgram>, String> {
    let exec_key = format!("predecode|{artifact_key}");
    let hit = shared.caches().execs.get(&exec_key).map(Arc::clone);
    shared.note_cache(CacheLayer::Predecode, hit.is_some());
    if let Some(hit) = hit {
        return Ok(hit);
    }
    // Predecode outside the lock, mirroring `artifact`: duplicate
    // concurrent misses waste a predecode but stay idempotent.
    let _predecode = job_ctx.phase(Phase::Predecode);
    let exec = Arc::new(predecode(artifact).map_err(|e| format!("predecode: {e}"))?);
    shared.caches().execs.insert(exec_key, Arc::clone(&exec));
    Ok(exec)
}

fn compute(request: JobRequest, shared: &Shared, job_ctx: JobCtx<'_>) -> Result<Json, String> {
    if let Flow::Ours(opts) = request.flow {
        if opts.cores == 0 {
            return Err("cores must be at least 1".to_string());
        }
    }
    match request.kind {
        JobKind::DebugPanic => {
            panic!("debug-panic job {} panicked on purpose", request.id)
        }
        // Tune requests are expanded by `run_batch`/`run_one` before any
        // worker sees them; reaching here means a caller bypassed both.
        JobKind::Tune(_) => {
            Err("tune jobs fan out in run_batch/run_one; not directly computable".to_string())
        }
        JobKind::Compile => {
            let artifact = artifact(&request, shared, job_ctx)?;
            Ok(compilation_json(&artifact))
        }
        JobKind::Stats => {
            let (artifacts, execs, results) = shared.stats_snapshot();
            let mut fields = vec![(
                "caches",
                Json::obj(vec![
                    ("artifact", cache_stats_json(&artifacts)),
                    ("predecode", cache_stats_json(&execs)),
                    ("result", cache_stats_json(&results)),
                ]),
            )];
            match &shared.telemetry {
                Some(telemetry) => fields.push(("telemetry", telemetry.summary_json())),
                None => fields.push(("telemetry", Json::Bool(false))),
            }
            Ok(Json::obj(fields))
        }
        JobKind::Graph(params) => {
            let graph = params.preset.graph();
            let cfg = GraphRunConfig {
                fused: params.fused,
                batch: params.batch,
                cores: request.cores(),
                seed: request.seed,
                engine: None,
            };
            let double = cfg.batch > 1 && cfg.cores > 1;
            let plan = graph.plan(params.fused, double).map_err(|e| format!("graph plan: {e}"))?;
            let mut execs = Vec::with_capacity(plan.stages.len());
            for (index, stage) in plan.stages.iter().enumerate() {
                let (_, exec) = graph_stage_exec(params, index, stage, &request, shared, job_ctx)?;
                execs.push(exec);
            }
            let refs: Vec<&ExecProgram> = execs.iter().map(Arc::as_ref).collect();
            let outcome = {
                let _simulate = job_ctx.phase(Phase::Simulate);
                run_planned(&plan, &cfg, &refs).map_err(|e| format!("graph run: {e}"))?
            };
            let stages = outcome
                .stage_symbols
                .iter()
                .zip(&outcome.stage_cycles)
                .map(|(symbol, &cycles)| {
                    Json::obj(vec![("symbol", symbol.as_str().into()), ("cycles", cycles.into())])
                })
                .collect();
            let flat: Vec<f64> = outcome.outputs.iter().flatten().copied().collect();
            Ok(Json::obj(vec![
                ("graph", params.preset.name().into()),
                ("fused", params.fused.into()),
                ("batch", params.batch.into()),
                ("cores", cfg.cores.into()),
                ("stages", Json::Arr(stages)),
                ("total_cycles", outcome.total_cycles.into()),
                ("cycles_per_request", outcome.cycles_per_request.into()),
                ("double_buffered", outcome.double_buffered.into()),
                ("tcdm_bytes", outcome.tcdm_bytes.into()),
                (
                    "pipeline",
                    Json::obj(vec![
                        ("fill_cycles", outcome.estimate.fill_cycles.into()),
                        ("bottleneck_cycles", outcome.estimate.bottleneck_cycles.into()),
                        ("sequential_cycles", outcome.estimate.sequential_cycles.into()),
                        ("pipelined_cycles", outcome.estimate.pipelined_cycles.into()),
                    ]),
                ),
                ("output_digest", output_digest(&flat).into()),
            ]))
        }
        JobKind::GraphStage(params, stage_index) => {
            let graph = params.preset.graph();
            let plan = graph.plan(params.fused, false).map_err(|e| format!("graph plan: {e}"))?;
            let stage = plan.stages.get(stage_index as usize).ok_or_else(|| {
                format!("graph `{}` has no stage {stage_index}", params.preset.name())
            })?;
            let (compiled, _) =
                graph_stage_exec(params, stage_index as usize, stage, &request, shared, job_ctx)?;
            Ok(compilation_json(&compiled))
        }
        JobKind::Simulate => {
            let artifact = artifact(&request, shared, job_ctx)?;
            let exec = predecoded_exec(&request.compile_key(), &artifact, shared, job_ctx)?;
            let cores = request.cores();
            if cores > 1 {
                let outcome = {
                    let _simulate = job_ctx.phase(Phase::Simulate);
                    run_predecoded_on_cluster(&request.instance, &exec, request.seed, cores)
                        .map_err(|e| format!("cluster run: {e}"))?
                };
                Ok(Json::obj(vec![
                    ("cores", cores.into()),
                    ("aggregate", counters_json(&outcome.counters.aggregate)),
                    (
                        "per_core_cycles",
                        Json::Arr(
                            outcome.counters.per_core.iter().map(|c| c.cycles.into()).collect(),
                        ),
                    ),
                    ("barriers", outcome.counters.barriers.into()),
                    ("output_digest", output_digest(&outcome.output).into()),
                ]))
            } else {
                let outcome = {
                    let _simulate = job_ctx.phase(Phase::Simulate);
                    run_predecoded(&request.instance, &exec, request.seed)
                        .map_err(|e| format!("run: {e}"))?
                };
                Ok(Json::obj(vec![
                    ("cores", 1u64.into()),
                    ("counters", counters_json(&outcome.counters)),
                    ("output_digest", output_digest(&outcome.output).into()),
                ]))
            }
        }
        JobKind::Difftest => {
            let outcome = {
                let _simulate = job_ctx.phase(Phase::Simulate);
                difftest_instance(&request.instance, request.flow, request.seed)
                    .map_err(|e| format!("difftest: {e}"))?
            };
            Ok(Json::obj(vec![
                ("stages", Json::Arr(outcome.stages.iter().map(|&s| s.into()).collect())),
                ("num_stages", outcome.stages.len().into()),
            ]))
        }
        JobKind::Profile => {
            if request.cores() > 1 {
                return Err("profile jobs run single-core; drop `cores`".to_string());
            }
            let artifact = located_artifact(&request, shared, job_ctx)?;
            let exec = predecoded_exec(
                &format!("withlocs|{}", request.compile_key()),
                &artifact,
                shared,
                job_ctx,
            )?;
            let (outcome, trace) = {
                let _simulate = job_ctx.phase(Phase::Simulate);
                run_predecoded_traced(&request.instance, &exec, request.seed)
                    .map_err(|e| format!("run: {e}"))?
            };
            let profile = Profile::from_trace(&trace, &artifact.source_map);
            Ok(Json::obj(vec![
                ("total_cycles", profile.total_cycles.into()),
                ("unattributed_cycles", profile.unattributed_cycles.into()),
                (
                    "rows",
                    Json::Arr(
                        profile
                            .rows
                            .iter()
                            .map(|(location, row)| {
                                Json::obj(vec![
                                    ("location", location.as_str().into()),
                                    ("cycles", row.cycles.into()),
                                    ("instructions", row.instructions.into()),
                                    ("flops", row.flops.into()),
                                    ("stalls", stalls_json(&row.stalls)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("cycles", outcome.counters.cycles.into()),
            ]))
        }
    }
}

/// Estimated resident bytes of a cached compilation artifact: the
/// assembly text plus the per-function register tables and the
/// source-map/pass vectors. An estimate, not an allocator census — the
/// telemetry counters only need relative magnitude.
fn compilation_bytes(compilation: &Arc<Compilation>) -> usize {
    let functions: usize = compilation
        .functions
        .iter()
        .map(|(name, stats)| name.len() + std::mem::size_of_val(stats))
        .sum();
    compilation.assembly.len()
        + functions
        + std::mem::size_of_val(compilation.passes.as_slice())
        + std::mem::size_of_val(compilation.source_map.as_slice())
}

/// Estimated resident bytes of a predecoded program. The predecode
/// tables (step plan, frep classes, tail weights) are parallel to the
/// instruction stream, so four machine-word-sized rows per instruction
/// is a close, cheap bound.
fn exec_bytes(exec: &Arc<ExecProgram>) -> usize {
    let program = exec.program();
    let symbols: usize =
        program.symbols.keys().map(|name| name.len() + std::mem::size_of::<usize>()).sum();
    std::mem::size_of_val(program.instrs.as_slice()) * 4 + symbols
}

/// Estimated resident bytes of a cached result payload: string content
/// plus a small per-node overhead.
fn json_bytes(json: &Json) -> usize {
    match json {
        Json::Null | Json::Bool(_) | Json::Num(_) => 8,
        Json::Str(text) => text.len() + 8,
        Json::Arr(items) => 8 + items.iter().map(json_bytes).sum::<usize>(),
        Json::Obj(fields) => {
            8 + fields.iter().map(|(key, value)| key.len() + json_bytes(value)).sum::<usize>()
        }
    }
}

/// Serializes one cache layer's [`CacheStats`] counters, as reported by
/// the `stats` job and `mlbc serve --metrics-json`.
pub fn cache_stats_json(stats: &CacheStats) -> Json {
    Json::obj(vec![
        ("lookups", stats.lookups().into()),
        ("hits", stats.hits.into()),
        ("misses", stats.misses.into()),
        ("insertions", stats.insertions.into()),
        ("evictions", stats.evictions.into()),
        ("resident_bytes", stats.resident_bytes.into()),
    ])
}

fn compilation_json(compilation: &Compilation) -> Json {
    Json::obj(vec![
        ("assembly", compilation.assembly.as_str().into()),
        (
            "functions",
            Json::Arr(
                compilation
                    .functions
                    .iter()
                    .map(|(name, stats)| {
                        Json::obj(vec![
                            ("name", name.as_str().into()),
                            ("int_regs", stats.int_used.len().into()),
                            ("fp_regs", stats.fp_used.len().into()),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("passes", Json::Arr(compilation.passes.iter().map(|&p| p.into()).collect())),
        (
            "source_map",
            Json::Arr(compilation.source_map.iter().map(|l| l.to_string().into()).collect()),
        ),
    ])
}

fn stalls_json(stalls: &StallHistogram) -> Json {
    Json::obj(vec![
        ("raw_int", stalls.raw_int.into()),
        ("raw_fp", stalls.raw_fp.into()),
        ("fpu_busy", stalls.fpu_busy.into()),
        ("branch_redirect", stalls.branch_redirect.into()),
        ("ssr_backpressure", stalls.ssr_backpressure.into()),
    ])
}

fn counters_json(counters: &PerfCounters) -> Json {
    Json::obj(vec![
        ("cycles", counters.cycles.into()),
        ("instructions", counters.instructions.into()),
        ("flops", counters.flops.into()),
        ("fpu_instrs", counters.fpu_instrs.into()),
        ("fmadd", counters.fmadd.into()),
        ("frep", counters.frep.into()),
        ("ssr_reads", counters.ssr_reads.into()),
        ("ssr_writes", counters.ssr_writes.into()),
        ("fpu_utilization", counters.fpu_utilization().into()),
    ])
}

/// Digest of the verified kernel output (bit patterns, not rounded
/// text), so payloads witness the exact simulation result compactly.
fn output_digest(output: &[f64]) -> String {
    let mut bytes = Vec::with_capacity(output.len() * 8);
    for value in output {
        bytes.extend_from_slice(&value.to_bits().to_le_bytes());
    }
    fnv1a128_hex(&bytes)
}
