//! A shared Chrome trace-event writer.
//!
//! Both trace exports in the tree — the per-hart simulator timeline
//! behind `mlbc profile --chrome-trace` and the service-run timeline
//! behind `mlbc serve --trace-out` — emit the same trace-event JSON
//! flavour understood by `chrome://tracing` and Perfetto. This writer
//! centralizes that emission (and, through [`crate::json::Json`], the
//! one string-escaping implementation) so the two exports stay
//! byte-compatible and can be merged into a single timeline by
//! concatenating their event lists with [`TraceWriter::extend`].
//!
//! Only the event phases the tree actually uses are modelled: complete
//! spans (`"X"`), instant events (`"i"`) and thread/process metadata
//! (`"M"`). Timestamps and durations are interpreted by the viewer in
//! microseconds; the profiler maps simulator cycles onto that axis
//! 1:1, the service uses real microseconds since service start.

use crate::json::Json;

/// Accumulates Chrome trace events and renders them as one JSON
/// document (`{"traceEvents": [...], "displayTimeUnit": "ms"}`).
#[derive(Debug, Default)]
pub struct TraceWriter {
    events: Vec<Json>,
}

impl TraceWriter {
    /// Creates an empty writer.
    pub fn new() -> TraceWriter {
        TraceWriter::default()
    }

    /// The number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were recorded yet.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Names the process `pid` in the viewer's track list.
    pub fn process_name(&mut self, pid: u64, name: &str) {
        self.metadata(pid, None, "process_name", name);
    }

    /// Names thread `tid` of process `pid` in the viewer's track list.
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        self.metadata(pid, Some(tid), "thread_name", name);
    }

    fn metadata(&mut self, pid: u64, tid: Option<u64>, kind: &str, name: &str) {
        let mut fields = vec![
            ("name".to_string(), Json::Str(kind.to_string())),
            ("ph".to_string(), Json::Str("M".to_string())),
            ("pid".to_string(), Json::Num(pid as f64)),
        ];
        if let Some(tid) = tid {
            fields.push(("tid".to_string(), Json::Num(tid as f64)));
        }
        fields.push((
            "args".to_string(),
            Json::Obj(vec![("name".to_string(), Json::Str(name.to_string()))]),
        ));
        self.events.push(Json::Obj(fields));
    }

    /// Records a complete span (`ph: "X"`) on track `(pid, tid)`.
    pub fn span(&mut self, pid: u64, tid: u64, name: &str, cat: &str, ts: u64, dur: u64) {
        self.span_event(pid, tid, name, cat, ts, dur, None);
    }

    /// Records a complete span carrying an `args` object.
    #[allow(clippy::too_many_arguments)]
    pub fn span_with_args(
        &mut self,
        pid: u64,
        tid: u64,
        name: &str,
        cat: &str,
        ts: u64,
        dur: u64,
        args: Json,
    ) {
        self.span_event(pid, tid, name, cat, ts, dur, Some(args));
    }

    #[allow(clippy::too_many_arguments)]
    fn span_event(
        &mut self,
        pid: u64,
        tid: u64,
        name: &str,
        cat: &str,
        ts: u64,
        dur: u64,
        args: Option<Json>,
    ) {
        let mut fields = vec![
            ("name".to_string(), Json::Str(name.to_string())),
            ("cat".to_string(), Json::Str(cat.to_string())),
            ("ph".to_string(), Json::Str("X".to_string())),
            ("ts".to_string(), Json::Num(ts as f64)),
            ("dur".to_string(), Json::Num(dur as f64)),
            ("pid".to_string(), Json::Num(pid as f64)),
            ("tid".to_string(), Json::Num(tid as f64)),
        ];
        if let Some(args) = args {
            fields.push(("args".to_string(), args));
        }
        self.events.push(Json::Obj(fields));
    }

    /// Records an instant event (`ph: "i"`, thread scope) on track
    /// `(pid, tid)`.
    pub fn instant(&mut self, pid: u64, tid: u64, name: &str, cat: &str, ts: u64) {
        self.instant_with_args(pid, tid, name, cat, ts, None);
    }

    /// Records an instant event carrying an optional `args` object.
    pub fn instant_with_args(
        &mut self,
        pid: u64,
        tid: u64,
        name: &str,
        cat: &str,
        ts: u64,
        args: Option<Json>,
    ) {
        let mut fields = vec![
            ("name".to_string(), Json::Str(name.to_string())),
            ("cat".to_string(), Json::Str(cat.to_string())),
            ("ph".to_string(), Json::Str("i".to_string())),
            ("s".to_string(), Json::Str("t".to_string())),
            ("ts".to_string(), Json::Num(ts as f64)),
            ("pid".to_string(), Json::Num(pid as f64)),
            ("tid".to_string(), Json::Num(tid as f64)),
        ];
        if let Some(args) = args {
            fields.push(("args".to_string(), args));
        }
        self.events.push(Json::Obj(fields));
    }

    /// Appends every event of `other`, preserving order. Merging a
    /// profiler trace into a service trace (distinct `pid`s) yields one
    /// combined timeline.
    pub fn extend(&mut self, other: TraceWriter) {
        self.events.extend(other.events);
    }

    /// Renders the accumulated events as the trace-file JSON document.
    pub fn into_json(self) -> Json {
        Json::Obj(vec![
            ("traceEvents".to_string(), Json::Arr(self.events)),
            ("displayTimeUnit".to_string(), Json::Str("ms".to_string())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_round_trips_through_the_json_parser() {
        let mut writer = TraceWriter::new();
        writer.process_name(1, "svc \"quoted\"");
        writer.thread_name(1, 2, "worker 1");
        writer.span(1, 2, "compile #7", "job", 10, 25);
        writer.span_with_args(
            1,
            2,
            "simulate",
            "phase",
            12,
            8,
            Json::Obj(vec![("cores".to_string(), Json::Num(4.0))]),
        );
        writer.instant(1, 2, "artifact hit", "cache", 11);
        assert_eq!(writer.len(), 5);
        assert!(!writer.is_empty());
        let text = writer.into_json().to_string();
        let parsed = Json::parse(&text).expect("trace output must be valid Json");
        let events = parsed.get("traceEvents").and_then(Json::as_array).expect("traceEvents");
        assert_eq!(events.len(), 5);
        for event in events {
            let ph = event.get("ph").and_then(Json::as_str).expect("every event has ph");
            if ph == "X" {
                assert!(event.get("dur").and_then(Json::as_u64).is_some(), "span dur >= 0");
            }
        }
        assert_eq!(
            parsed.get("displayTimeUnit").and_then(Json::as_str),
            Some("ms"),
            "viewer unit hint"
        );
    }

    #[test]
    fn extend_concatenates_event_lists() {
        let mut service = TraceWriter::new();
        service.span(1, 0, "job", "job", 0, 5);
        let mut sim = TraceWriter::new();
        sim.span(2, 0, "hart", "sim", 0, 9);
        service.extend(sim);
        assert_eq!(service.len(), 2);
    }
}
