//! A fixed-size worker thread pool over a shared job queue.
//!
//! Jobs are boxed closures drained from one `mpsc` channel guarded by a
//! mutex (the classic "channel of boxed thunks" pool — no external
//! crates). Every job runs under `catch_unwind`, so a panicking job
//! neither kills its worker nor wedges the queue: the worker logs
//! nothing, keeps its thread, and picks up the next job. Result
//! delivery and panic *reporting* are the submitting side's business —
//! the service wraps each job so that its panic is converted into an
//! error response before the pool ever sees it unwinding.
//!
//! When built with a [`Telemetry`] recorder, the pool publishes each
//! thread's worker index through [`current_worker`] and the dequeue
//! timestamp of the in-flight job through [`current_dequeued_us`], so
//! code running inside a job can attribute its records to the right
//! track and stamp its own busy span (dequeue → complete) *before* it
//! signals completion — if the pool recorded the span after the job
//! returned, a caller woken by the job could snapshot telemetry that
//! does not yet contain it.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::sync::lock_unpoisoned;
use crate::telemetry::Telemetry;

type Job = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
    static DEQUEUED_US: Cell<Option<u64>> = const { Cell::new(None) };
}

/// The pool worker index of the current thread, if it is a pool worker
/// (`None` on caller/submitter threads).
pub fn current_worker() -> Option<usize> {
    WORKER_INDEX.with(Cell::get)
}

/// The telemetry timestamp at which the current thread's in-flight job
/// was dequeued (`None` off-pool or when the pool has no recorder).
pub fn current_dequeued_us() -> Option<u64> {
    DEQUEUED_US.with(Cell::get)
}

/// A pool of worker threads executing submitted closures.
#[derive(Debug)]
pub struct WorkerPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads (at least one) waiting for jobs.
    pub fn new(workers: usize) -> WorkerPool {
        WorkerPool::with_telemetry(workers, None)
    }

    /// Spawns `workers` threads that stamp a busy span per executed job
    /// into `telemetry` (when given).
    pub fn with_telemetry(workers: usize, telemetry: Option<Arc<Telemetry>>) -> WorkerPool {
        let workers = workers.max(1);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let handles = (0..workers)
            .map(|index| {
                let receiver = Arc::clone(&receiver);
                let telemetry = telemetry.clone();
                std::thread::Builder::new()
                    .name(format!("mlb-service-worker-{index}"))
                    .spawn(move || worker_loop(index, &receiver, telemetry.as_deref()))
                    .expect("spawn service worker")
            })
            .collect();
        WorkerPool { sender: Some(sender), workers: handles }
    }

    /// The number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Queues `job` for execution on some worker.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.sender
            .as_ref()
            .expect("pool sender lives until drop")
            .send(Box::new(job))
            .expect("workers outlive the pool handle");
    }
}

fn worker_loop(index: usize, receiver: &Arc<Mutex<Receiver<Job>>>, telemetry: Option<&Telemetry>) {
    WORKER_INDEX.with(|cell| cell.set(Some(index)));
    loop {
        // Holding the lock only while receiving lets other workers pull
        // jobs concurrently with this one executing.
        let job = lock_unpoisoned(receiver).recv();
        match job {
            Ok(job) => {
                DEQUEUED_US.with(|cell| cell.set(telemetry.map(Telemetry::now_us)));
                let _ = catch_unwind(AssertUnwindSafe(job));
                DEQUEUED_US.with(|cell| cell.set(None));
            }
            Err(_) => return, // all senders dropped: orderly shutdown
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        drop(self.sender.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::wait_unpoisoned;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Condvar;

    fn run_all(pool: &WorkerPool, jobs: usize, body: impl Fn(usize) + Send + Sync + 'static) {
        let done = Arc::new((Mutex::new(0usize), Condvar::new()));
        let body = Arc::new(body);
        for i in 0..jobs {
            let done = Arc::clone(&done);
            let body = Arc::clone(&body);
            pool.execute(move || {
                body(i);
                let (count, signal) = &*done;
                *lock_unpoisoned(count) += 1;
                signal.notify_all();
            });
        }
        let (count, signal) = &*done;
        let mut guard = lock_unpoisoned(count);
        while *guard < jobs {
            guard = wait_unpoisoned(signal, guard);
        }
    }

    #[test]
    fn executes_every_job() {
        let pool = WorkerPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        run_all(&pool, 100, move |_| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn survives_panicking_jobs() {
        let pool = WorkerPool::new(2);
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence expected panics
        let panics = Arc::new(AtomicUsize::new(0));
        let p = Arc::clone(&panics);
        for _ in 0..8 {
            let p = Arc::clone(&p);
            pool.execute(move || {
                p.fetch_add(1, Ordering::SeqCst);
                panic!("injected");
            });
        }
        // The pool must still process ordinary jobs afterwards.
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        run_all(&pool, 10, move |_| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        std::panic::set_hook(hook);
        assert_eq!(counter.load(Ordering::SeqCst), 10);
        assert_eq!(panics.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn pool_completion_tracking_survives_a_panicking_job() {
        let pool = WorkerPool::new(2);
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        // Jobs that panic *while holding* a shared lock leave it
        // poisoned; run_all's own bookkeeping must keep working and
        // later jobs must still complete.
        let shared = Arc::new(Mutex::new(0usize));
        for _ in 0..4 {
            let shared = Arc::clone(&shared);
            pool.execute(move || {
                let _guard = shared.lock();
                panic!("injected while locked");
            });
        }
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        run_all(&pool, 10, move |_| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        std::panic::set_hook(hook);
        assert_eq!(counter.load(Ordering::SeqCst), 10);
        *lock_unpoisoned(&shared) += 1; // the shared lock is usable too
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        run_all(&pool, 3, move |_| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn telemetry_pool_publishes_worker_identity_and_dequeue_time() {
        let telemetry = Arc::new(Telemetry::new(2));
        let pool = WorkerPool::with_telemetry(2, Some(Arc::clone(&telemetry)));
        assert_eq!(current_worker(), None, "submitter threads have no worker index");
        assert_eq!(current_dequeued_us(), None, "no in-flight job off-pool");
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s = Arc::clone(&seen);
        run_all(&pool, 16, move |_| {
            s.lock().unwrap().push((current_worker(), current_dequeued_us()));
        });
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 16);
        for (worker, dequeued) in seen.iter() {
            assert!(matches!(worker, Some(0 | 1)), "jobs run on pool threads");
            let dequeued = dequeued.expect("dequeue time published while a job runs");
            assert!(dequeued <= telemetry.now_us());
        }
    }

    #[test]
    fn untracked_pool_publishes_no_dequeue_time() {
        let pool = WorkerPool::new(1);
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s = Arc::clone(&seen);
        run_all(&pool, 4, move |_| {
            s.lock().unwrap().push(current_dequeued_us());
        });
        assert!(seen.lock().unwrap().iter().all(Option::is_none));
    }
}
