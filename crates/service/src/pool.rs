//! A fixed-size worker thread pool over a shared job queue.
//!
//! Jobs are boxed closures drained from one `mpsc` channel guarded by a
//! mutex (the classic "channel of boxed thunks" pool — no external
//! crates). Every job runs under `catch_unwind`, so a panicking job
//! neither kills its worker nor wedges the queue: the worker logs
//! nothing, keeps its thread, and picks up the next job. Result
//! delivery and panic *reporting* are the submitting side's business —
//! the service wraps each job so that its panic is converted into an
//! error response before the pool ever sees it unwinding.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Locks `mutex`, recovering from poisoning.
///
/// Every mutex in the service guards data that is only mutated *outside*
/// job bodies (queue handoff, counter bumps, cache bookkeeping), so a
/// panic that poisons one leaves the protected state consistent — the
/// poison flag is pure collateral of `catch_unwind` and is safe to
/// clear. Without this, a single panicking job could wedge every thread
/// that later touches the same lock, defeating the pool's containment.
pub fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Waits on `condvar`, recovering the guard from poisoning (same
/// reasoning as [`lock_unpoisoned`]).
pub fn wait_unpoisoned<'a, T>(condvar: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    match condvar.wait(guard) {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A pool of worker threads executing submitted closures.
#[derive(Debug)]
pub struct WorkerPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads (at least one) waiting for jobs.
    pub fn new(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let handles = (0..workers)
            .map(|index| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("mlb-service-worker-{index}"))
                    .spawn(move || worker_loop(&receiver))
                    .expect("spawn service worker")
            })
            .collect();
        WorkerPool { sender: Some(sender), workers: handles }
    }

    /// The number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Queues `job` for execution on some worker.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.sender
            .as_ref()
            .expect("pool sender lives until drop")
            .send(Box::new(job))
            .expect("workers outlive the pool handle");
    }
}

fn worker_loop(receiver: &Arc<Mutex<Receiver<Job>>>) {
    loop {
        // Holding the lock only while receiving lets other workers pull
        // jobs concurrently with this one executing.
        let job = lock_unpoisoned(receiver).recv();
        match job {
            Ok(job) => {
                let _ = catch_unwind(AssertUnwindSafe(job));
            }
            Err(_) => return, // all senders dropped: orderly shutdown
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        drop(self.sender.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Condvar;

    fn run_all(pool: &WorkerPool, jobs: usize, body: impl Fn(usize) + Send + Sync + 'static) {
        let done = Arc::new((Mutex::new(0usize), Condvar::new()));
        let body = Arc::new(body);
        for i in 0..jobs {
            let done = Arc::clone(&done);
            let body = Arc::clone(&body);
            pool.execute(move || {
                body(i);
                let (count, signal) = &*done;
                *lock_unpoisoned(count) += 1;
                signal.notify_all();
            });
        }
        let (count, signal) = &*done;
        let mut guard = lock_unpoisoned(count);
        while *guard < jobs {
            guard = wait_unpoisoned(signal, guard);
        }
    }

    #[test]
    fn executes_every_job() {
        let pool = WorkerPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        run_all(&pool, 100, move |_| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn survives_panicking_jobs() {
        let pool = WorkerPool::new(2);
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence expected panics
        let panics = Arc::new(AtomicUsize::new(0));
        let p = Arc::clone(&panics);
        for _ in 0..8 {
            let p = Arc::clone(&p);
            pool.execute(move || {
                p.fetch_add(1, Ordering::SeqCst);
                panic!("injected");
            });
        }
        // The pool must still process ordinary jobs afterwards.
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        run_all(&pool, 10, move |_| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        std::panic::set_hook(hook);
        assert_eq!(counter.load(Ordering::SeqCst), 10);
        assert_eq!(panics.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn helpers_recover_from_a_poisoned_counter() {
        let pair = Arc::new((Mutex::new(0usize), Condvar::new()));
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence the expected panic
        let p = Arc::clone(&pair);
        let _ = std::thread::spawn(move || {
            let _guard = p.0.lock().unwrap();
            panic!("poison the counter mid-update");
        })
        .join();
        std::panic::set_hook(hook);
        assert!(pair.0.is_poisoned(), "the panicking thread must poison the mutex");
        // Both helpers must see through the poison: the data is still
        // consistent, only the flag is set.
        *lock_unpoisoned(&pair.0) = 7;
        let p = Arc::clone(&pair);
        let notifier = std::thread::spawn(move || {
            *lock_unpoisoned(&p.0) = 8;
            p.1.notify_all();
        });
        let mut guard = lock_unpoisoned(&pair.0);
        while *guard != 8 {
            guard = wait_unpoisoned(&pair.1, guard);
        }
        drop(guard);
        notifier.join().unwrap();
    }

    #[test]
    fn pool_completion_tracking_survives_a_panicking_job() {
        let pool = WorkerPool::new(2);
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        // Jobs that panic *while holding* a shared lock leave it
        // poisoned; run_all's own bookkeeping must keep working and
        // later jobs must still complete.
        let shared = Arc::new(Mutex::new(0usize));
        for _ in 0..4 {
            let shared = Arc::clone(&shared);
            pool.execute(move || {
                let _guard = shared.lock();
                panic!("injected while locked");
            });
        }
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        run_all(&pool, 10, move |_| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        std::panic::set_hook(hook);
        assert_eq!(counter.load(Ordering::SeqCst), 10);
        *lock_unpoisoned(&shared) += 1; // the shared lock is usable too
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        run_all(&pool, 3, move |_| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 3);
    }
}
