//! Minimal JSON value, writer and parser.
//!
//! The build environment has no access to external crates, so both the
//! observability output of `mlbc --trace-json` and the line-delimited
//! protocol of `mlbc serve` are produced (and parsed back) by this
//! small hand-rolled module. It covers all of JSON except that object
//! keys keep insertion order (no map semantics) and non-finite numbers
//! serialize as `null`.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}
impl From<u128> for Json {
    fn from(v: u128) -> Json {
        Json::Num(v as f64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as an integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= (1u64 << 53) as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        let pad = |out: &mut String, n: usize| out.push_str(&"  ".repeat(n));
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    pad(out, indent + 1);
                    out.push_str(&format!("{}: ", Json::Str(k.clone())));
                    v.write_pretty(out, indent + 1);
                    out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
                }
                pad(out, indent);
                out.push('}');
            }
            other => out.push_str(&other.to_string()),
        }
    }

    /// Parses a JSON document (a single value with optional surrounding
    /// whitespace).
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(value)
    }
}

/// Compact serialization (valid JSON on one line).
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) if n.is_finite() => write!(f, "{n}"),
            Json::Num(_) => f.write_str("null"),
            Json::Str(s) => {
                f.write_str("\"")?;
                for c in s.chars() {
                    match c {
                        '"' => f.write_str("\\\"")?,
                        '\\' => f.write_str("\\\\")?,
                        '\n' => f.write_str("\\n")?,
                        '\r' => f.write_str("\\r")?,
                        '\t' => f.write_str("\\t")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => write!(f, "{c}")?,
                    }
                }
                f.write_str("\"")
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", Json::Str(k.clone()))?;
                }
                f.write_str("}")
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or("unexpected end of input")? {
            b'n' => self.literal("null", Json::Null),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'"' => Ok(Json::Str(self.string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    pairs.push((key, self.value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(pairs));
                        }
                        _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
                    }
                }
            }
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain (non-escape, non-quote) bytes whole,
            // so multi-byte UTF-8 passes through untouched.
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string")?,
            );
            match self.peek().ok_or("unterminated string")? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek().ok_or("unterminated escape")? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs: combine a high surrogate
                            // with the following `\uXXXX` low surrogate.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                let combined = 0x10000
                                    + ((code - 0xD800) << 10)
                                    + low.checked_sub(0xDC00).ok_or("invalid low surrogate")?;
                                char::from_u32(combined).ok_or("invalid surrogate pair")?
                            } else {
                                char::from_u32(code).ok_or("invalid \\u escape")?
                            };
                            out.push(c);
                            continue;
                        }
                        other => return Err(format!("invalid escape `\\{}`", other as char)),
                    }
                    self.pos += 1;
                }
                _ => unreachable!(),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or("truncated \\u escape")?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape")?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_reparses() {
        let doc = Json::obj(vec![
            ("name", "vec\"sum\n".into()),
            ("count", 42u64.into()),
            ("ratio", 0.5.into()),
            ("neg", (-3.0).into()),
            ("ok", true.into()),
            ("nothing", Json::Null),
            ("items", vec![Json::from(1u64), Json::from("two")].into()),
            ("empty", Json::Arr(vec![])),
            ("nested", Json::obj(vec![("k", Json::Obj(vec![]))])),
        ]);
        for text in [doc.to_string(), doc.pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn accessors() {
        let doc = Json::parse(r#"{"a": [1, 2.5], "b": "x", "c": false}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(doc.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(doc.get("a").unwrap().as_array().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(doc.get("b").unwrap().as_str(), Some("x"));
        assert_eq!(doc.get("c").unwrap().as_bool(), Some(false));
        assert!(doc.get("missing").is_none());
        assert_eq!(doc.get("b").unwrap().as_u64(), None);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#""a\tbé😀""#).unwrap();
        assert_eq!(v.as_str(), Some("a\tbé😀"));
        // Non-ASCII passes through the writer unescaped but intact.
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"abc", "{\"a\" 1}", "tru", "1 2", "{\"a\":}"] {
            assert!(Json::parse(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }
}
