//! A small string-keyed LRU cache with hit/miss accounting.
//!
//! Keys are the *canonical encodings* of cache lookups ([`crate::job`]),
//! not their digests: the encoding is injective by construction, so two
//! distinct jobs can never alias a slot no matter how the (display-only)
//! digest behaves. Recency is tracked with a monotone tick instead of a
//! linked list — capacities in this service are small enough that the
//! `O(len)` eviction scan is noise next to a single compile.
//!
//! Each cache can carry a *sizer* estimating a value's resident bytes;
//! the running total is maintained across insertions, overwrites and
//! evictions so the telemetry layer can report how much memory each
//! layer holds without walking the entries.

use std::collections::HashMap;

/// Counters describing the lifetime behaviour of one cache.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Values stored (including overwrites of a live key).
    pub insertions: u64,
    /// Entries displaced to respect the capacity bound.
    pub evictions: u64,
    /// Estimated bytes held by live entries (0 without a sizer).
    pub resident_bytes: u64,
}

impl CacheStats {
    /// Total lookups: by construction always `hits + misses`, so the
    /// per-layer counters reconcile exactly with the lookup total.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit fraction in percent (0 when nothing was looked up yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 * 100.0 / total as f64
        }
    }

    /// Whether the hit rate is at least `min_percent`, computed without
    /// division so boundary cases can't be decided by float rounding
    /// (`hits/total ≥ p/100  ⟺  hits·100 ≥ total·p`). Zero lookups
    /// never meet a positive threshold — "no data" is not "100% hits".
    pub fn meets_hit_rate(&self, min_percent: u64) -> bool {
        let total = self.lookups();
        if total == 0 {
            return min_percent == 0;
        }
        self.hits.saturating_mul(100) >= total.saturating_mul(min_percent)
    }
}

/// A least-recently-used map from canonical key strings to values.
#[derive(Debug)]
pub struct LruCache<V> {
    capacity: usize,
    entries: HashMap<String, Entry<V>>,
    tick: u64,
    stats: CacheStats,
    sizer: fn(&V) -> usize,
}

#[derive(Debug)]
struct Entry<V> {
    value: V,
    used: u64,
    bytes: u64,
}

impl<V> LruCache<V> {
    /// Creates a cache holding at most `capacity` entries (a capacity of
    /// zero disables storage entirely: every lookup misses). Resident
    /// bytes stay 0; use [`LruCache::with_sizer`] to track them.
    pub fn new(capacity: usize) -> LruCache<V> {
        LruCache::with_sizer(capacity, |_| 0)
    }

    /// Creates a cache that estimates each value's resident bytes with
    /// `sizer`, keeping [`CacheStats::resident_bytes`] current across
    /// insertions, overwrites and evictions.
    pub fn with_sizer(capacity: usize, sizer: fn(&V) -> usize) -> LruCache<V> {
        LruCache { capacity, entries: HashMap::new(), tick: 0, stats: CacheStats::default(), sizer }
    }

    /// The number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The accounting counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up `key`, marking the entry most-recently-used on a hit and
    /// counting the outcome either way.
    pub fn get(&mut self, key: &str) -> Option<&V> {
        self.tick += 1;
        match self.entries.get_mut(key) {
            Some(entry) => {
                entry.used = self.tick;
                self.stats.hits += 1;
                Some(&entry.value)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stores `value` under `key`, evicting the least-recently-used
    /// entry if the cache is at capacity and `key` is new.
    pub fn insert(&mut self, key: String, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        self.stats.insertions += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some(oldest) =
                self.entries.iter().min_by_key(|(_, entry)| entry.used).map(|(k, _)| k.clone())
            {
                if let Some(evicted) = self.entries.remove(&oldest) {
                    self.stats.resident_bytes =
                        self.stats.resident_bytes.saturating_sub(evicted.bytes);
                }
                self.stats.evictions += 1;
            }
        }
        let bytes = (self.sizer)(&value) as u64;
        if let Some(replaced) = self.entries.insert(key, Entry { value, used: self.tick, bytes }) {
            self.stats.resident_bytes = self.stats.resident_bytes.saturating_sub(replaced.bytes);
        }
        self.stats.resident_bytes += bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_refreshes_recency() {
        let mut cache = LruCache::new(2);
        cache.insert("a".into(), 1);
        cache.insert("b".into(), 2);
        assert_eq!(cache.get("a"), Some(&1));
        cache.insert("c".into(), 3); // evicts b, not the just-touched a
        assert_eq!(cache.get("a"), Some(&1));
        assert_eq!(cache.get("b"), None);
        assert_eq!(cache.get("c"), Some(&3));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn overwrite_does_not_evict() {
        let mut cache = LruCache::new(2);
        cache.insert("a".into(), 1);
        cache.insert("b".into(), 2);
        cache.insert("a".into(), 10);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.get("a"), Some(&10));
        assert_eq!(cache.get("b"), Some(&2));
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut cache = LruCache::new(0);
        cache.insert("a".into(), 1);
        assert_eq!(cache.get("a"), None);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().resident_bytes, 0);
    }

    #[test]
    fn hit_rate_is_in_percent() {
        let mut cache = LruCache::new(4);
        assert_eq!(cache.stats().hit_rate(), 0.0);
        cache.insert("a".into(), 1);
        cache.get("a");
        cache.get("a");
        cache.get("x");
        assert!((cache.stats().hit_rate() - 200.0 / 3.0).abs() < 1e-9);
        assert_eq!(cache.stats().lookups(), 3);
        assert_eq!(cache.stats().lookups(), cache.stats().hits + cache.stats().misses);
    }

    #[test]
    fn resident_bytes_track_insert_overwrite_and_evict() {
        let mut cache: LruCache<String> = LruCache::with_sizer(2, |v: &String| v.len());
        assert_eq!(cache.stats().resident_bytes, 0);
        cache.insert("a".into(), "xxxx".into()); // 4 bytes
        cache.insert("b".into(), "yy".into()); // +2 = 6
        assert_eq!(cache.stats().resident_bytes, 6);
        cache.insert("a".into(), "z".into()); // overwrite: 6 - 4 + 1 = 3
        assert_eq!(cache.stats().resident_bytes, 3);
        assert_eq!(cache.len(), 2);
        cache.insert("c".into(), "wwwwwwww".into()); // evicts b: 3 - 2 + 8 = 9
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().resident_bytes, 9);
        // Without a sizer the byte estimate stays 0 by design.
        let mut untracked: LruCache<String> = LruCache::new(2);
        untracked.insert("a".into(), "xxxx".into());
        assert_eq!(untracked.stats().resident_bytes, 0);
    }

    #[test]
    fn hit_rate_gate_has_exact_boundaries() {
        // Zero lookups: no positive threshold is met, but 0 is.
        let empty = CacheStats::default();
        assert_eq!(empty.hit_rate(), 0.0);
        assert!(empty.meets_hit_rate(0));
        assert!(!empty.meets_hit_rate(1));
        assert!(!empty.meets_hit_rate(100));
        // 2/3 hits is 66.67%: the 66 gate passes, the 67 gate fails —
        // exactly, with no float epsilon in the comparison.
        let two_thirds = CacheStats { hits: 2, misses: 1, ..CacheStats::default() };
        assert!(two_thirds.meets_hit_rate(66));
        assert!(!two_thirds.meets_hit_rate(67));
        // 9/10 meets exactly 90 (the serve/tune default gate).
        let nine_tenths = CacheStats { hits: 9, misses: 1, ..CacheStats::default() };
        assert!(nine_tenths.meets_hit_rate(90));
        assert!(!nine_tenths.meets_hit_rate(91));
        // All hits meets 100; one miss doesn't.
        let all = CacheStats { hits: 5, misses: 0, ..CacheStats::default() };
        assert!(all.meets_hit_rate(100));
        let one_miss = CacheStats { hits: 99, misses: 1, ..CacheStats::default() };
        assert!(!one_miss.meets_hit_rate(100));
        // Huge counters must not overflow the cross-multiplication.
        let huge = CacheStats { hits: u64::MAX / 2, misses: 1, ..CacheStats::default() };
        assert!(huge.meets_hit_rate(99));
    }
}
