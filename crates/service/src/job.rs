//! The service's job model and content-addressed cache keys.
//!
//! A [`JobRequest`] fully determines its result: kernel instance, flow
//! (with every pipeline toggle), rewrite-driver mode, cluster width and
//! operand seed. The cache keys are *canonical encodings* of exactly
//! those fields — every field is spelled into the string with a
//! distinct, unambiguous tag, so the encoding is injective and two
//! different requests can never collide. The 128-bit FNV digest derived
//! from the key is for display and the wire protocol only; it is never
//! used for lookup.

use std::fmt;

use mlb_core::Flow;
use mlb_ir::DriverMode;
use mlb_kernels::{GraphPreset, Instance, TuneParams, SEARCH_SPACE_VERSION};

/// Parameters of a batched layer-graph job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphParams {
    /// Which preset graph to run.
    pub preset: GraphPreset,
    /// Requests per batch.
    pub batch: usize,
    /// Whether adjacent element-wise layers are fused into one stage.
    pub fused: bool,
}

impl Default for GraphParams {
    fn default() -> GraphParams {
        GraphParams { preset: GraphPreset::Nsnet2, batch: 1, fused: true }
    }
}

/// What a job asks the service to do with its kernel instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// Compile only: assembly, register stats, passes, source map.
    Compile,
    /// Compile (or reuse the cached artifact) and run on the simulator,
    /// verifying against the host reference; counters and output digest.
    Simulate,
    /// Stage-level differential test against the host reference.
    Difftest,
    /// Traced simulation folded into a source-attributed cycle profile.
    Profile,
    /// Schedule autotuning: fan out one simulate job per schedule
    /// variant of the instance, reduce to the best schedule plus a
    /// Pareto front. The request's `flow` is the baseline the report
    /// compares against (its options seed the search space).
    Tune(TuneParams),
    /// Batched layer-graph inference: fan out one compile job per graph
    /// stage (warming the artifact and predecode caches in parallel),
    /// then run the whole batch on one cluster and report per-stage and
    /// per-request cycles. The request's `instance` is ignored — the
    /// protocol pins it to a fixed placeholder so graph keys stay
    /// injective; the cluster width comes from the flow's `cores`.
    Graph(GraphParams),
    /// Internal leaf of a graph fan-out: compile and predecode one
    /// *fused* stage of the preset graph (single-layer stages fan out
    /// as plain `Compile` jobs of their suite instance, sharing cached
    /// artifacts with ordinary kernel jobs). Never parsed from the
    /// wire; `run_batch`'s plan phase synthesizes these.
    GraphStage(GraphParams, u8),
    /// In-band service interrogation: report the telemetry summary and
    /// per-layer cache counters of the *running* service. The kernel
    /// fields are pinned to the same placeholder the protocol uses for
    /// graph jobs; the response is never cached (a stats payload
    /// describes a moment, not a computation).
    Stats,
    /// Deliberately panics in the worker — the failure-injection job
    /// used to prove panic containment; never useful in production.
    DebugPanic,
}

impl JobKind {
    /// The protocol spelling of the kind.
    pub fn name(self) -> &'static str {
        match self {
            JobKind::Compile => "compile",
            JobKind::Simulate => "simulate",
            JobKind::Difftest => "difftest",
            JobKind::Profile => "profile",
            JobKind::Tune(_) => "tune",
            JobKind::Graph(_) => "graph",
            JobKind::GraphStage(..) => "graph-stage",
            JobKind::Stats => "stats",
            JobKind::DebugPanic => "debug-panic",
        }
    }

    /// Parses the protocol spelling. `tune` parses to default
    /// [`TuneParams`]; the protocol layer fills in `cores_max`/`budget`
    /// from their own request fields.
    ///
    /// # Errors
    ///
    /// Names the unknown kind.
    pub fn parse(name: &str) -> Result<JobKind, String> {
        match name {
            "compile" => Ok(JobKind::Compile),
            "simulate" => Ok(JobKind::Simulate),
            "difftest" => Ok(JobKind::Difftest),
            "profile" => Ok(JobKind::Profile),
            "tune" => Ok(JobKind::Tune(TuneParams::default())),
            "graph" => Ok(JobKind::Graph(GraphParams::default())),
            "stats" => Ok(JobKind::Stats),
            "debug-panic" => Ok(JobKind::DebugPanic),
            other => Err(format!("unknown job kind `{other}`")),
        }
    }
}

impl fmt::Display for JobKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One unit of work submitted to the service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobRequest {
    /// Caller-chosen identifier, echoed in the response.
    pub id: u64,
    /// What to do.
    pub kind: JobKind,
    /// The kernel to do it to.
    pub instance: Instance,
    /// The compilation flow. For [`Flow::Ours`] the embedded
    /// [`PipelineOptions::cores`] is the cluster width; widths above 1
    /// are rejected for the comparison flows (no `distribute-to-cores`).
    pub flow: Flow,
    /// The rewrite-driver mode each per-request [`mlb_ir::Context`] is
    /// configured with.
    pub driver: DriverMode,
    /// Operand seed for simulation/difftest/profile runs.
    pub seed: u64,
}

impl JobRequest {
    /// The cluster width the job simulates on (1 for comparison flows).
    pub fn cores(&self) -> usize {
        match self.flow {
            Flow::Ours(opts) => opts.cores,
            Flow::MlirLike | Flow::ClangLike => 1,
        }
    }

    /// The canonical encoding of everything that determines the
    /// *compilation artifact* (kernel, flow, options, driver). Shared by
    /// all job kinds so e.g. a `simulate` job reuses the artifact a
    /// `compile` job already produced.
    pub fn compile_key(&self) -> String {
        let i = &self.instance;
        format!(
            "kernel={sym}|n={n}|m={m}|k={k}|prec=f{bits}|{flow}|driver={driver}",
            sym = i.symbol(),
            n = i.shape.n,
            m = i.shape.m,
            k = i.shape.k,
            bits = i.precision.bits(),
            flow = encode_flow(self.flow),
            driver = driver_name(self.driver),
        )
    }

    /// The canonical encoding of everything that determines the *job
    /// result*: the compile key plus the job kind and operand seed. A
    /// tune job additionally spells its search-space version and search
    /// knobs, so re-tunes after a space change (or with a different
    /// budget) can never alias a stale report.
    pub fn result_key(&self) -> String {
        match self.kind {
            JobKind::Tune(p) => format!(
                "job=tune|space=v{}|coresmax={}|budget={}|seed={}|{}",
                SEARCH_SPACE_VERSION,
                p.cores_max,
                p.budget,
                self.seed,
                self.compile_key()
            ),
            JobKind::Graph(p) => format!(
                "job=graph|graph={}|batch={}|fused={}|seed={}|{}",
                p.preset.name(),
                p.batch,
                u8::from(p.fused),
                self.seed,
                self.compile_key()
            ),
            // Stage leaves are pure compiles: neither the batch size nor
            // the operand seed changes the artifact, so both are left
            // out of the key and every batch/seed shares the compile.
            JobKind::GraphStage(p, stage) => format!(
                "job=graph-stage|graph={}|fused={}|stage={stage}|{}",
                p.preset.name(),
                u8::from(p.fused),
                self.compile_key()
            ),
            _ => format!("job={}|seed={}|{}", self.kind.name(), self.seed, self.compile_key()),
        }
    }

    /// The content digest of the result key, as sent on the wire.
    pub fn digest(&self) -> String {
        fnv1a128_hex(self.result_key().as_bytes())
    }
}

/// The protocol spelling of a driver mode.
pub fn driver_name(mode: DriverMode) -> &'static str {
    match mode {
        DriverMode::Worklist => "worklist",
        DriverMode::LegacyRewalk => "legacy",
    }
}

/// Parses the protocol spelling of a driver mode.
///
/// # Errors
///
/// Names the unknown mode.
pub fn parse_driver(name: &str) -> Result<DriverMode, String> {
    match name {
        "worklist" => Ok(DriverMode::Worklist),
        "legacy" => Ok(DriverMode::LegacyRewalk),
        other => Err(format!("unknown driver `{other}`")),
    }
}

fn encode_flow(flow: Flow) -> String {
    match flow {
        Flow::Ours(o) => format!(
            "flow=ours|streams={}|scalrep={}|frep={}|fusefill={}|fuseelt={}|uaj={}|ufac={}|spo={}|sdim={}|cores={}",
            u8::from(o.streams),
            u8::from(o.scalar_replacement),
            u8::from(o.frep),
            u8::from(o.fuse_fill),
            u8::from(o.fuse_elementwise),
            u8::from(o.unroll_and_jam),
            o.unroll_factor.map_or_else(|| "auto".to_string(), |f| f.to_string()),
            u8::from(o.stream_pattern_opts),
            o.shard_dim.map_or_else(|| "auto".to_string(), |d| d.to_string()),
            o.cores,
        ),
        Flow::MlirLike => "flow=mlir".to_string(),
        Flow::ClangLike => "flow=clang".to_string(),
    }
}

/// 128-bit FNV-1a over `bytes`, as 32 lowercase hex digits.
pub fn fnv1a128_hex(bytes: &[u8]) -> String {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u128::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    format!("{hash:032x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlb_core::PipelineOptions;
    use mlb_kernels::{Kind, Precision, Shape};

    fn request() -> JobRequest {
        JobRequest {
            id: 1,
            kind: JobKind::Simulate,
            instance: Instance::new(Kind::MatMul, Shape::nmk(2, 4, 3), Precision::F64),
            flow: Flow::Ours(PipelineOptions::full()),
            driver: DriverMode::Worklist,
            seed: 7,
        }
    }

    #[test]
    fn result_key_spells_every_field() {
        let key = request().result_key();
        for part in [
            "job=simulate",
            "seed=7",
            "kernel=matmul",
            "n=2|m=4|k=3",
            "prec=f64",
            "flow=ours",
            "cores=1",
            "driver=worklist",
        ] {
            assert!(key.contains(part), "`{part}` missing from `{key}`");
        }
    }

    #[test]
    fn each_field_changes_the_key() {
        let base = request();
        let base_key = base.result_key();
        let mut no_frep = PipelineOptions::full();
        no_frep.frep = false;
        let mut quad = PipelineOptions::full();
        quad.cores = 4;
        let mut forced_shard = PipelineOptions::full();
        forced_shard.shard_dim = Some(1);
        let mut fuse_elt = PipelineOptions::full();
        fuse_elt.fuse_elementwise = true;
        let variants = vec![
            JobRequest { kind: JobKind::Profile, ..base },
            JobRequest { kind: JobKind::Stats, ..base },
            JobRequest { kind: JobKind::Tune(TuneParams::default()), ..base },
            JobRequest { kind: JobKind::Graph(GraphParams::default()), ..base },
            JobRequest { kind: JobKind::GraphStage(GraphParams::default(), 0), ..base },
            JobRequest { flow: Flow::Ours(fuse_elt), ..base },
            JobRequest { seed: 8, ..base },
            JobRequest { flow: Flow::Ours(forced_shard), ..base },
            JobRequest {
                instance: Instance::new(Kind::MatMulT, base.instance.shape, Precision::F64),
                ..base
            },
            JobRequest { flow: Flow::MlirLike, ..base },
            JobRequest { driver: DriverMode::LegacyRewalk, ..base },
            JobRequest { flow: Flow::Ours(no_frep), ..base },
            JobRequest { flow: Flow::Ours(quad), ..base },
        ];
        for v in variants {
            assert_ne!(v.result_key(), base_key, "{v:?} must not alias the base request");
        }
    }

    #[test]
    fn unroll_factor_auto_and_forced_differ() {
        let mut forced = PipelineOptions::full();
        forced.unroll_factor = Some(4);
        let a = JobRequest { flow: Flow::Ours(PipelineOptions::full()), ..request() };
        let b = JobRequest { flow: Flow::Ours(forced), ..request() };
        assert_ne!(a.result_key(), b.result_key());
    }

    #[test]
    fn tune_keys_spell_space_version_and_knobs() {
        let base = request();
        let tune =
            JobRequest { kind: JobKind::Tune(TuneParams { cores_max: 2, budget: 9 }), ..base };
        let key = tune.result_key();
        for part in ["job=tune", "space=v1", "coresmax=2", "budget=9", "seed=7"] {
            assert!(key.contains(part), "`{part}` missing from `{key}`");
        }
        let wider =
            JobRequest { kind: JobKind::Tune(TuneParams { cores_max: 4, budget: 9 }), ..base };
        let bigger =
            JobRequest { kind: JobKind::Tune(TuneParams { cores_max: 2, budget: 10 }), ..base };
        assert_ne!(tune.result_key(), wider.result_key());
        assert_ne!(tune.result_key(), bigger.result_key());
    }

    #[test]
    fn graph_keys_spell_preset_batch_and_fusion() {
        use mlb_kernels::GraphPreset;
        let base = request();
        let params = GraphParams { preset: GraphPreset::Nsnet2, batch: 8, fused: true };
        let graph = JobRequest { kind: JobKind::Graph(params), ..base };
        let key = graph.result_key();
        for part in ["job=graph", "graph=nsnet2", "batch=8", "fused=1", "seed=7"] {
            assert!(key.contains(part), "`{part}` missing from `{key}`");
        }
        let unfused =
            JobRequest { kind: JobKind::Graph(GraphParams { fused: false, ..params }), ..base };
        let other_preset = JobRequest {
            kind: JobKind::Graph(GraphParams { preset: GraphPreset::EltwiseChain, ..params }),
            ..base
        };
        let bigger =
            JobRequest { kind: JobKind::Graph(GraphParams { batch: 16, ..params }), ..base };
        for v in [&unfused, &other_preset, &bigger] {
            assert_ne!(v.result_key(), key);
        }
        // Stage-compile leaves share across batch sizes and seeds: the
        // artifact depends on neither.
        let leaf = |batch, seed| JobRequest {
            kind: JobKind::GraphStage(GraphParams { batch, ..params }, 1),
            seed,
            ..base
        };
        assert_eq!(leaf(8, 7).result_key(), leaf(16, 99).result_key());
        assert_ne!(
            leaf(8, 7).result_key(),
            JobRequest { kind: JobKind::GraphStage(params, 2), ..base }.result_key()
        );
    }

    #[test]
    fn graph_stage_is_not_a_wire_kind() {
        assert!(JobKind::parse("graph-stage").is_err());
        assert_eq!(JobKind::parse("graph").unwrap(), JobKind::Graph(GraphParams::default()));
    }

    #[test]
    fn digest_is_stable_hex() {
        let d = request().digest();
        assert_eq!(d.len(), 32);
        assert!(d.bytes().all(|b| b.is_ascii_hexdigit()));
        assert_eq!(d, request().digest());
        // Known vector: FNV-1a 128 of the empty string is the offset basis.
        assert_eq!(fnv1a128_hex(b""), "6c62272e07bb014262b821756295c58d");
    }
}
