#![warn(missing_docs)]

//! The re-entrant compile service behind `mlbc serve`.
//!
//! Long-running sessions submit compile/simulate/difftest/profile jobs
//! as line-delimited JSON; the service schedules them over a worker
//! thread pool and memoizes results in a content-addressed cache keyed
//! on the full job identity (kernel instance, flow and its pipeline
//! options, rewrite-driver mode, cluster width, operand seed). The
//! compiler itself stays a library: every job builds a fresh
//! [`mlb_ir::Context`], so requests neither share nor leak state — the
//! property the concurrency-equivalence suite pins down by comparing a
//! multi-worker batch byte-for-byte against a sequential one.

pub mod cache;
pub mod job;
pub mod json;
pub mod pool;
pub mod protocol;
pub mod service;
pub mod sync;
pub mod telemetry;
pub mod trace;

pub use cache::{CacheStats, LruCache};
pub use job::{driver_name, fnv1a128_hex, parse_driver, GraphParams, JobKind, JobRequest};
pub use pool::{current_dequeued_us, current_worker, WorkerPool};
pub use protocol::{
    graph_instance, kind_name, parse_kind, parse_request, request_json, response_json, MAX_BATCH,
    MAX_BUDGET, MAX_CORES, MAX_DIM, MAX_SHARD_DIM, MAX_UNROLL,
};
pub use service::{cache_stats_json, CompileService, JobResponse, ServiceConfig};
pub use sync::{lock_unpoisoned, wait_unpoisoned};
pub use telemetry::{percentile, CacheLayer, JobRecord, Phase, Telemetry};
pub use trace::TraceWriter;
