//! Mutex-poisoning recovery helpers shared by the pool, the caches and
//! the telemetry recorder.
//!
//! Every mutex in the service guards data that is only mutated *outside*
//! job bodies (queue handoff, counter bumps, cache bookkeeping, span
//! records), so a panic that poisons one leaves the protected state
//! consistent — the poison flag is pure collateral of `catch_unwind`
//! and is safe to clear. Without this, a single panicking job could
//! wedge every thread that later touches the same lock, defeating the
//! pool's containment.

use std::sync::{Condvar, Mutex, MutexGuard};

/// Locks `mutex`, recovering from poisoning.
pub fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Waits on `condvar`, recovering the guard from poisoning (same
/// reasoning as [`lock_unpoisoned`]).
pub fn wait_unpoisoned<'a, T>(condvar: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    match condvar.wait(guard) {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn helpers_recover_from_a_poisoned_counter() {
        let pair = Arc::new((Mutex::new(0usize), Condvar::new()));
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence the expected panic
        let p = Arc::clone(&pair);
        let _ = std::thread::spawn(move || {
            let _guard = p.0.lock().unwrap();
            panic!("poison the counter mid-update");
        })
        .join();
        std::panic::set_hook(hook);
        assert!(pair.0.is_poisoned(), "the panicking thread must poison the mutex");
        // Both helpers must see through the poison: the data is still
        // consistent, only the flag is set.
        *lock_unpoisoned(&pair.0) = 7;
        let p = Arc::clone(&pair);
        let notifier = std::thread::spawn(move || {
            *lock_unpoisoned(&p.0) = 8;
            p.1.notify_all();
        });
        let mut guard = lock_unpoisoned(&pair.0);
        while *guard != 8 {
            guard = wait_unpoisoned(&pair.1, guard);
        }
        drop(guard);
        notifier.join().unwrap();
    }
}
